// Entry point for the `sketchsample` command-line tool; see tools/cli.h.
#include "tools/cli.h"

int main(int argc, char** argv) {
  return sketchsample::cli::RunCli(argc, argv);
}
