#!/usr/bin/env bash
# End-to-end smoke test of the query-serving sketch service over real HTTP
# (docs/SERVICE.md), run by the service-smoke CI job and runnable locally:
#
#   tools/service_smoke.sh <work_dir> [build_dir]
#
# Everything is fixed-seed and bounded-duration. Three scenarios:
#
#   1. Bit-exactness: ingest a zipf dataset through POST /ingest, then
#      require every query endpoint to answer byte-identically to
#      `sketchsample offline` over the same file and configuration.
#   2. Query load: a short multi-threaded loadgen run; any failed request
#      fails the smoke (loadgen exits non-zero on errors > 0).
#   3. Kill -9 + resume: checkpoint while ingesting, SIGKILL the server
#      mid-stream, resume a fresh server from the checkpoint, re-push the
#      stream, and require the same byte-identical answers — modulo the
#      "sequence" field, a per-process snapshot counter (docs/SERVICE.md).
#
# Server stdout/err land in <work_dir>/*.log|err for CI artifact upload.
set -euo pipefail

work="${1:?usage: service_smoke.sh <work_dir> [build_dir]}"
build_dir="${2:-build}"
cli="$build_dir/tools/sketchsample"
loadgen="$build_dir/tools/loadgen"
mkdir -p "$work"

# Fixed configuration — must stay identical between serve and offline.
tuples=50000
domain=20000
gen_seed=20090402
engine_flags=(
  --buckets=512 --rows=3 --scheme=eh3 --seed=33
  --shards=2 --shed-p=0.5 --shed-seed=42
  --distinct-k=256 --quantile-k=200 --subpop-k=256 --snapshot-every=8192
)
keys="17,4242,9999"
quantiles="0.5,0.9,0.99"
subpop_filters="mod:10-3;range:0-99"

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

start_server() {  # start_server <port_file> <log_prefix> [extra serve flags...]
  local port_file="$1" log_prefix="$2"
  shift 2
  rm -f "$port_file"
  "$cli" serve "${engine_flags[@]}" \
    --port=0 --port-file="$port_file" --run-seconds=300 "$@" \
    >"$work/$log_prefix.log" 2>"$work/$log_prefix.err" &
  pids+=("$!")
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    sleep 0.2
  done
  [ -s "$port_file" ] || { echo "FAIL: server never wrote $port_file" >&2
                           cat "$work/$log_prefix.err" >&2; exit 1; }
}

strip_sequence() { sed -E 's/"sequence":[0-9]+/"sequence":_/g' "$1"; }

echo "== generate dataset (${tuples} zipf tuples, seed ${gen_seed})"
"$cli" generate --kind=zipf --out="$work/data.txt" \
  --tuples="$tuples" --domain="$domain" --skew=1.0 --seed="$gen_seed"

echo "== offline reference answers"
"$cli" offline "${engine_flags[@]}" --in="$work/data.txt" --keys="$keys" \
  --quantiles="$quantiles" --subpop-filters="$subpop_filters" \
  >"$work/offline.txt" 2>"$work/offline.err"

echo "== scenario 1: HTTP ingest must match offline byte for byte"
start_server "$work/port.txt" serve
port="$(cat "$work/port.txt")"
"$loadgen" --port="$port" --ingest-file="$work/data.txt" --close=true \
  --wait-done=true --once=true --keys="$keys" --distinct-weight=1 \
  --quantiles="$quantiles" --subpop-filters="$subpop_filters" \
  >"$work/online.txt"
if ! diff -u "$work/offline.txt" "$work/online.txt"; then
  echo "FAIL: online answers diverge from offline" >&2
  exit 1
fi
echo "   bit-exact: OK"

echo "== scenario 2: query load (fixed seed, bounded duration)"
"$loadgen" --port="$port" --threads=2 --seconds=2 --seed=1 \
  --selfjoin-weight=2 --point-weight=2 --distinct-weight=1 --stats-weight=1 \
  --quantile-weight=1 --subpop-weight=1 \
  --key-domain="$domain" --json_out="$work/BENCH_loadgen.json"

echo "== scenario 3: kill -9 mid-ingest, resume from checkpoint"
start_server "$work/port2.txt" serve2 \
  --checkpoint-every=8192 --checkpoint-out="$work/ckpt.bin"
port2="$(cat "$work/port2.txt")"
crash_pid="${pids[-1]}"
# Ingest without closing, wait until snapshots (and the phase-locked
# checkpoints) cover most of the stream, then SIGKILL — no shutdown path.
"$loadgen" --port="$port2" --ingest-file="$work/data.txt" \
  --wait-position=40960 >/dev/null
for _ in $(seq 1 50); do
  [ -s "$work/ckpt.bin" ] && break
  sleep 0.2
done
[ -s "$work/ckpt.bin" ] || { echo "FAIL: no checkpoint written" >&2; exit 1; }
kill -9 "$crash_pid"
wait "$crash_pid" 2>/dev/null || true

start_server "$work/port3.txt" serve3 --resume="$work/ckpt.bin"
port3="$(cat "$work/port3.txt")"
# Resume contract: the producer re-pushes from the beginning; restore
# fast-forwards past the checkpointed prefix bit-exactly.
"$loadgen" --port="$port3" --ingest-file="$work/data.txt" --close=true \
  --wait-done=true --once=true --keys="$keys" --distinct-weight=1 \
  --quantiles="$quantiles" --subpop-filters="$subpop_filters" \
  >"$work/resumed.txt"
strip_sequence "$work/offline.txt" >"$work/offline_noseq.txt"
strip_sequence "$work/resumed.txt" >"$work/resumed_noseq.txt"
if ! diff -u "$work/offline_noseq.txt" "$work/resumed_noseq.txt"; then
  echo "FAIL: resumed answers diverge from offline (beyond sequence)" >&2
  exit 1
fi
echo "   kill -9 + resume bit-exact (modulo sequence): OK"

echo "service smoke: all scenarios passed"
