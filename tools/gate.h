// Bench regression gating: compares two BENCH_*.json reports (see
// bench/report.h for the schema) and decides whether the current run
// regressed relative to the baseline.
//
// Rules:
//   * Points are matched by exact label-set equality (order-insensitive).
//     A baseline point missing from the current report is a failure
//     (coverage regression); extra current points are noted only.
//   * Throughput ("updates_per_sec" / "items_per_second") is gated on
//     aggregates, never on individual points (fast-profile points run for
//     microseconds; per-point wall-clock is jitter). Points with a
//     "seconds" metric feed a duration-weighted total-rate comparison that
//     engages only when the baseline measured at least `min_gate_seconds`
//     overall; points without one (google-benchmark micro points, each
//     already run for its own min-time) feed a geometric-mean ratio. A drop
//     beyond `throughput_tolerance` (default 15%) fails. Wall-clock is only
//     comparable on the same machine, so differing "host" stamps skip the
//     check with a note unless `force_throughput` is set.
//   * Accuracy ("mean_rel_error" with "stderr_rel_error"): the current mean
//     may exceed the baseline mean by at most
//     `error_sigmas * sqrt(base_se^2 + cur_se^2) + error_abs_slack`.
//     With the default 3 sigmas, a same-seed rerun always passes while a
//     genuine estimator regression beyond trial noise fails.
//   * Latency: any metric named `*_latency_ns` (the service bench's p50/p99
//     query latencies) is gated per point, lower-is-better: the current
//     value may exceed the baseline by at most `latency_tolerance`
//     (default 50% — tail percentiles jitter more than means). Latency is
//     wall-clock, so the same host guard as throughput applies; a baseline
//     latency metric missing from the current report is a coverage failure.
#ifndef SKETCHSAMPLE_TOOLS_GATE_H_
#define SKETCHSAMPLE_TOOLS_GATE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/util/json.h"

namespace sketchsample {
namespace gate {

struct Options {
  double throughput_tolerance = 0.15;  ///< max allowed fractional drop
  double error_sigmas = 3.0;           ///< noise bound width in std errors
  double error_abs_slack = 1e-12;      ///< absolute slack for exact-zero cases
  /// Minimum total baseline wall-clock (summed point "seconds") for the
  /// duration-weighted throughput gate to engage; below it the report is
  /// jitter-dominated and only a note is emitted.
  double min_gate_seconds = 0.25;
  double latency_tolerance = 0.50;  ///< max allowed fractional increase
  bool check_throughput = true;
  bool check_errors = true;
  bool check_latency = true;
  bool force_throughput = false;  ///< gate wall-clock across differing hosts
};

struct Result {
  bool ok = true;
  std::vector<std::string> failures;
  std::vector<std::string> notes;
};

/// Returns an error message when `report` does not conform to the bench
/// report schema (version 1), std::nullopt when it is valid.
std::optional<std::string> ValidateReport(const JsonValue& report);

/// Reads and parses `path`; on any I/O, JSON, or schema error returns
/// std::nullopt and fills `*error`.
std::optional<JsonValue> LoadReport(const std::string& path,
                                    std::string* error);

/// Compares a validated baseline/current report pair.
Result Compare(const JsonValue& baseline, const JsonValue& current,
               const Options& options);

/// Convenience: load both files, validate, compare. Parse/schema problems
/// surface as failures with ok=false.
Result GateFiles(const std::string& baseline_path,
                 const std::string& current_path, const Options& options);

}  // namespace gate
}  // namespace sketchsample

#endif  // SKETCHSAMPLE_TOOLS_GATE_H_
