// Bench regression gating: compares two BENCH_*.json reports (see
// bench/report.h for the schema) and decides whether the current run
// regressed relative to the baseline.
//
// Rules:
//   * Points are matched by exact label-set equality (order-insensitive).
//     A baseline point missing from the current report is a failure
//     (coverage regression); extra current points are noted only.
//   * Throughput ("updates_per_sec" / "items_per_second") is gated on
//     aggregates, never on individual points (fast-profile points run for
//     microseconds; per-point wall-clock is jitter). Points with a
//     "seconds" metric feed a duration-weighted total-rate comparison that
//     engages only when the baseline measured at least `min_gate_seconds`
//     overall; points without one (google-benchmark micro points, each
//     already run for its own min-time) feed a geometric-mean ratio. A drop
//     beyond `throughput_tolerance` (default 15%) fails. Wall-clock is only
//     comparable on the same machine, so differing "host" stamps skip the
//     check with a note unless `force_throughput` is set.
//   * Accuracy ("mean_rel_error" with "stderr_rel_error"): the current mean
//     may exceed the baseline mean by at most
//     `error_sigmas * sqrt(base_se^2 + cur_se^2) + error_abs_slack`.
//     With the default 3 sigmas, a same-seed rerun always passes while a
//     genuine estimator regression beyond trial noise fails.
//   * Latency: any metric named `*_latency_ns` (the service bench's p50/p99
//     query latencies) is gated per point, lower-is-better: the current
//     value may exceed the baseline by at most `latency_tolerance`
//     (default 50% — tail percentiles jitter more than means). Latency is
//     wall-clock, so the same host guard as throughput applies; a baseline
//     latency metric missing from the current report is a coverage failure.
#ifndef SKETCHSAMPLE_TOOLS_GATE_H_
#define SKETCHSAMPLE_TOOLS_GATE_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/util/json.h"

namespace sketchsample {
namespace gate {

struct Options {
  double throughput_tolerance = 0.15;  ///< max allowed fractional drop
  double error_sigmas = 3.0;           ///< noise bound width in std errors
  double error_abs_slack = 1e-12;      ///< absolute slack for exact-zero cases
  /// Minimum total baseline wall-clock (summed point "seconds") for the
  /// duration-weighted throughput gate to engage; below it the report is
  /// jitter-dominated and only a note is emitted.
  double min_gate_seconds = 0.25;
  double latency_tolerance = 0.50;  ///< max allowed fractional increase
  bool check_throughput = true;
  bool check_errors = true;
  bool check_latency = true;
  bool force_throughput = false;  ///< gate wall-clock across differing hosts
};

struct Result {
  bool ok = true;
  std::vector<std::string> failures;
  std::vector<std::string> notes;
};

/// Returns an error message when `report` does not conform to the bench
/// report schema (version 1), std::nullopt when it is valid.
std::optional<std::string> ValidateReport(const JsonValue& report);

/// Reads and parses `path`; on any I/O, JSON, or schema error returns
/// std::nullopt and fills `*error`.
std::optional<JsonValue> LoadReport(const std::string& path,
                                    std::string* error);

/// Compares a validated baseline/current report pair.
Result Compare(const JsonValue& baseline, const JsonValue& current,
               const Options& options);

/// Convenience: load both files, validate, compare. Parse/schema problems
/// surface as failures with ok=false.
Result GateFiles(const std::string& baseline_path,
                 const std::string& current_path, const Options& options);

/// Within-report ratio rule: requires metric(numerator point) >=
/// min_ratio * metric(denominator point) inside ONE report. Both points come
/// from the same run on the same machine, so the check is host-independent —
/// this is how absolute speed-up claims (e.g. "the AVX-512 fused kernel is
/// at least 2x the scalar fused kernel") are enforced in CI even though the
/// committed baselines were recorded elsewhere.
///
/// Rules are loaded from a JSON file (bench/rules/<report>.json):
///
///   {
///     "schema_version": 1,
///     "report": "bench_update_throughput",
///     "rules": [
///       {
///         "description": "avx512 fused kernel >= 2x scalar",
///         "metric": "updates_per_sec",
///         "min_ratio": 2.0,
///         "require_isa": "avx512",          // optional; see below
///         "numerator":   {"benchmark": "BM_FagmsFusedIsa/avx512"},
///         "denominator": {"benchmark": "BM_FagmsFusedIsa/scalar"}
///       }, ...
///     ]
///   }
///
/// A rule's numerator/denominator each select the unique report point whose
/// labels contain all the listed key=value pairs; zero or multiple matches
/// fail the rule (coverage regression — a vector kernel silently falling off
/// the dispatch table must not pass). `require_isa` skips the rule (with a
/// note) when the report's "config.isa" stamp is below the named level in
/// the scalar < avx2 < avx512 order: an AVX-512 rule cannot fail on a host
/// that cannot run AVX-512, but engages everywhere the level is reachable.
struct RatioRule {
  std::string description;
  std::string metric = "updates_per_sec";
  double min_ratio = 1.0;
  std::string require_isa;  // empty = always engaged
  std::vector<std::pair<std::string, std::string>> numerator_labels;
  std::vector<std::pair<std::string, std::string>> denominator_labels;
};

/// Returns an error message when `rules` does not conform to the rules
/// schema above, std::nullopt when valid. The optional top-level "report"
/// field, when present, must be a string.
std::optional<std::string> ValidateRules(const JsonValue& rules);

/// Reads and parses a rules file; on any I/O, JSON, or schema error returns
/// std::nullopt and fills `*error`. When `declared_report` is non-null it
/// receives the file's top-level "report" field (empty when absent) — the
/// benchmark series the rules were written against. Callers should refuse
/// to evaluate rules against a report with a different "name": every
/// selector would miss and each rule would misreport as a coverage
/// regression, when the actual problem is a mismatched file pairing.
std::optional<std::vector<RatioRule>> LoadRules(
    const std::string& path, std::string* error,
    std::string* declared_report = nullptr);

/// Evaluates every rule against a single (validated) report.
Result CheckRules(const JsonValue& report, const std::vector<RatioRule>& rules);

}  // namespace gate
}  // namespace sketchsample

#endif  // SKETCHSAMPLE_TOOLS_GATE_H_
