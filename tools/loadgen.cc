// HTTP load driver for the sketch service (`sketchsample serve`).
//
// Three composable phases, all over src/service/client.h keep-alive
// connections:
//
//   1. Ingest (--ingest-file): POSTs the file's tuples to /ingest in
//      batches, optionally closing ingest afterwards (--close). Reports
//      ingest tuples/sec.
//   2. Wait (--wait-position / --wait-done): polls /stats until the
//      published snapshot covers the given position (or ingest finishes),
//      so later queries see a deterministic final state.
//   3. Query load (--seconds > 0): N threads fire a seeded random mix of
//      /query/* requests for the duration and report throughput plus
//      p50/p90/p99 latency. --json_out writes the schema-v1 BENCH report
//      the CI latency gate consumes.
//
// --once instead prints one `endpoint body` line per enabled endpoint in
// exactly the `sketchsample offline` output format — the service-smoke job
// diffs the two byte for byte.
//
// Resilience drills: --chaos-profile injects deterministic client-side
// socket faults (short counts, resets, delays — src/service/chaos.h);
// --overload treats 429/503 as shed work rather than errors and reports
// goodput (admitted req/sec) vs shed plus admitted-only tail latency;
// --deadline-ms stamps X-Deadline-Ms on every query; retried ingest is
// exactly-once via sequence-numbered chunks (IngestClient).
// lint:allow-file(raw-atomic-confined): load-driver worker coordination
// (shared counters, stop flag) across real OS threads hammering a live
// server; a measurement harness, not a checked primitive.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/report.h"
#include "src/service/chaos.h"
#include "src/service/client.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "tools/cli.h"

namespace sketchsample {
namespace {

uint64_t PercentileNs(std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[idx];
}

struct QueryMix {
  // Cumulative weights over the endpoint list; a uniform draw in
  // [0, total) picks the first entry whose cumulative weight exceeds it.
  std::vector<std::pair<std::string, double>> cumulative;
  double total = 0;

  void Add(const std::string& endpoint, double weight) {
    if (weight <= 0) return;
    total += weight;
    cumulative.emplace_back(endpoint, total);
  }
  const std::string& Pick(double u) const {
    for (const auto& [endpoint, bound] : cumulative) {
      if (u * total < bound) return endpoint;
    }
    return cumulative.back().first;
  }
};

struct WorkerResult {
  uint64_t requests = 0;
  uint64_t errors = 0;    // transport failures or unexpected statuses
  uint64_t admitted = 0;  // 200s
  uint64_t shed = 0;      // 429/503 (overload mode: shed work, not errors)
  std::vector<uint64_t> latencies_ns;  // admitted requests only
};

struct WorkerConfig {
  QueryMix mix;
  uint64_t key_domain = 1;
  std::string level_suffix;
  double seconds = 0;
  bool overload = false;  // count 429/503 as shed instead of errors
  int deadline_ms = 0;    // stamp X-Deadline-Ms on every request
  ClientRetryPolicy retry;
};

void QueryWorker(const std::string& host, int port, const WorkerConfig& config,
                 uint64_t seed, const std::atomic<bool>* stop,
                 WorkerResult* result) {
  HttpClient client(host, port);
  ClientRetryPolicy policy = config.retry;
  policy.jitter_seed = seed;  // per-worker deterministic jitter stream
  client.set_retry_policy(policy);
  HttpClient::Headers headers;
  if (config.deadline_ms > 0) {
    headers.emplace_back("X-Deadline-Ms", std::to_string(config.deadline_ms));
  }
  Xoshiro256 rng(seed);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config.seconds));
  result->latencies_ns.reserve(1 << 16);
  while (std::chrono::steady_clock::now() < deadline &&
         !stop->load(std::memory_order_relaxed)) {
    const std::string& endpoint = config.mix.Pick(rng.NextDouble());
    std::string target = "/query/" + endpoint;
    bool have_param = false;
    if (endpoint == "point") {
      target += "?key=" + std::to_string(rng() % config.key_domain);
      have_param = true;
    } else if (endpoint == "quantile") {
      target += "?q=" + std::to_string(rng.NextDouble());
      have_param = true;
    } else if (endpoint == "subpop") {
      // Rotate through the ten mod-10 residue classes — a filter family
      // that always parses and exercises both saturated and sparse matches.
      target += "?filter=mod:10-" + std::to_string(rng() % 10);
      have_param = true;
    } else if (endpoint == "stats") {
      target = "/stats";
    }
    if (!config.level_suffix.empty() && endpoint != "stats") {
      target += (have_param ? "&" : "?") + config.level_suffix;
    }
    const auto start = std::chrono::steady_clock::now();
    const HttpClient::Response response =
        client.Request("GET", target, std::string(), headers);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ++result->requests;
    if (response.ok && response.status == 200) {
      ++result->admitted;
      // Admitted-only latency: shed requests return in microseconds and
      // would make an overloaded service look faster than a healthy one.
      result->latencies_ns.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    } else if (config.overload && response.ok &&
               (response.status == 429 || response.status == 503 ||
                response.status == 408)) {
      ++result->shed;
    } else {
      ++result->errors;
    }
  }
}

// Polls /stats until the published snapshot reaches `position` (or, with
// position == 0, until ingest_done). Returns false on timeout.
bool WaitForSnapshot(HttpClient& client, uint64_t position, bool wait_done,
                     double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    const HttpClient::Response response = client.Get("/stats");
    if (response.ok && response.status == 200) {
      const auto body = JsonValue::Parse(response.body);
      if (body.has_value()) {
        bool done = body->Get("ingest_done") != nullptr &&
                    body->Get("ingest_done")->is_bool() &&
                    body->Get("ingest_done")->AsBool();
        uint64_t snapshot_position = 0;
        if (const JsonValue* snapshot = body->Get("snapshot");
            snapshot != nullptr) {
          snapshot_position = static_cast<uint64_t>(
              snapshot->GetNumber("position").value_or(0));
        }
        if (position > 0 ? snapshot_position >= position : (!wait_done || done)) {
          return true;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.Define("host", "127.0.0.1", "service address");
  flags.Define("port", "0", "service port (required)");
  flags.Define("ingest-file", "", "dataset file to POST to /ingest first");
  flags.Define("ingest-batch", "4096", "tuples per /ingest POST");
  flags.Define("close", "false", "POST /ingest/close after the ingest phase");
  flags.Define("wait-position", "0",
               "poll /stats until the snapshot covers this position");
  flags.Define("wait-done", "false", "poll /stats until ingest_done");
  flags.Define("wait-seconds", "30", "timeout for the wait phase");
  flags.Define("threads", "1", "query worker threads");
  flags.Define("seconds", "0", "query-phase duration (0 = skip)");
  flags.Define("selfjoin-weight", "1", "mix weight of /query/selfjoin");
  flags.Define("join-weight", "0", "mix weight of /query/join");
  flags.Define("point-weight", "1", "mix weight of /query/point");
  flags.Define("distinct-weight", "0", "mix weight of /query/distinct");
  flags.Define("quantile-weight", "0", "mix weight of /query/quantile");
  flags.Define("subpop-weight", "0", "mix weight of /query/subpop");
  flags.Define("stats-weight", "0", "mix weight of /stats");
  flags.Define("key-domain", "100000", "point-query keys drawn from [0, N)");
  flags.Define("level", "", "explicit ?level= on every query (empty: default)");
  flags.Define("seed", "1", "request-mix randomness seed");
  flags.Define("once", "false",
               "print one `endpoint body` line per enabled endpoint "
               "(offline-comparable) instead of running load");
  flags.Define("keys", "", "--once: comma-separated point-query keys");
  flags.Define("quantiles", "",
               "--once: comma-separated ranks for quantile-query lines");
  flags.Define("subpop-filters", "",
               "--once: semicolon-separated kind:a-b subpop filters");
  flags.Define("json_out", "",
               "write a schema-v1 BENCH report of the query phase here");
  flags.Define("deadline-ms", "0",
               "stamp X-Deadline-Ms on every query (0 = server default)");
  flags.Define("chaos-profile", "none",
               "client-side socket fault injection: none | mild | harsh");
  flags.Define("chaos-seed", "0",
               "chaos seed (0: SKETCHSAMPLE_CHAOS_SEED env or 77)");
  flags.Define("overload", "false",
               "overload drill: 429/503/408 count as shed work, not errors; "
               "success requires admitted > 0 instead of zero errors");
  flags.Define("retry-attempts", "2", "client attempts per request (>= 1)");
  flags.Define("retry-base-ms", "10", "base backoff between attempts");
  flags.Define("max-error-rate", "0",
               "tolerated hard-error fraction of all requests");
  flags.Define("ingest-session", "1",
               "X-Ingest-Session id for exactly-once ingest chunks");
  if (!flags.Parse(argc, argv)) return 1;

  const std::string host = flags.GetString("host");
  const int port = static_cast<int>(flags.GetInt("port"));
  if (port <= 0) {
    std::fprintf(stderr, "loadgen: --port is required\n");
    return 1;
  }

  // Client-side chaos: every loadgen socket operation runs under the
  // injector, so the drill exercises the client's retry/backoff machinery
  // and the server's partial-IO handling at once.
  std::optional<ScopedChaosInjector> chaos;
  const ChaosProfile chaos_profile =
      ChaosProfile::FromName(flags.GetString("chaos-profile"));
  if (chaos_profile.Active()) {
    uint64_t chaos_seed = static_cast<uint64_t>(flags.GetInt("chaos-seed"));
    if (chaos_seed == 0) chaos_seed = ChaosSeedFromEnv(77);
    chaos.emplace(chaos_profile, chaos_seed);
    std::fprintf(stderr, "loadgen: chaos profile %s seed %llu\n",
                 flags.GetString("chaos-profile").c_str(),
                 static_cast<unsigned long long>(chaos_seed));
  }

  ClientRetryPolicy retry;
  retry.max_attempts =
      std::max<int>(1, static_cast<int>(flags.GetInt("retry-attempts")));
  retry.base_backoff_ms = static_cast<int>(flags.GetInt("retry-base-ms"));

  HttpClient control(host, port);
  ClientRetryPolicy control_retry = retry;
  control_retry.jitter_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  control.set_retry_policy(control_retry);

  // ---- Phase 1: ingest ----------------------------------------------------
  double ingest_tps = 0;
  const std::string ingest_file = flags.GetString("ingest-file");
  if (!ingest_file.empty()) {
    const std::vector<uint64_t> values = cli::ReadValuesFile(ingest_file);
    const size_t batch =
        std::max<size_t>(1, static_cast<size_t>(flags.GetInt("ingest-batch")));
    // Sequence-numbered chunks: the server deduplicates replays, so a chunk
    // retried after an ambiguous transport failure lands exactly once.
    IngestClient ingest(
        &control, static_cast<uint64_t>(flags.GetInt("ingest-session")));
    const auto start = std::chrono::steady_clock::now();
    std::string body;
    for (size_t off = 0; off < values.size(); off += batch) {
      const size_t n = std::min(batch, values.size() - off);
      body.clear();
      for (size_t i = 0; i < n; ++i) {
        body += std::to_string(values[off + i]);
        body.push_back('\n');
      }
      const HttpClient::Response response = ingest.Post(body);
      if (!response.ok || response.status != 200) {
        std::fprintf(stderr, "loadgen: ingest POST failed (status %d): %s\n",
                     response.status,
                     response.ok ? response.body.c_str()
                                 : response.error.c_str());
        return 1;
      }
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    ingest_tps = elapsed > 0 ? static_cast<double>(values.size()) / elapsed : 0;
    std::fprintf(stderr, "loadgen: ingested %zu tuples (%.3g tuples/sec)\n",
                 values.size(), ingest_tps);
  }
  if (flags.GetBool("close")) {
    const HttpClient::Response response = control.Post("/ingest/close", "");
    if (!response.ok || response.status != 200) {
      std::fprintf(stderr, "loadgen: /ingest/close failed\n");
      return 1;
    }
  }

  // ---- Phase 2: wait ------------------------------------------------------
  const uint64_t wait_position =
      static_cast<uint64_t>(flags.GetInt("wait-position"));
  const bool wait_done = flags.GetBool("wait-done");
  if (wait_position > 0 || wait_done) {
    if (!WaitForSnapshot(control, wait_position, wait_done,
                         flags.GetDouble("wait-seconds"))) {
      std::fprintf(stderr, "loadgen: timed out waiting for snapshot\n");
      return 1;
    }
  }

  const std::string level = flags.GetString("level");
  const std::string level_suffix = level.empty() ? "" : "level=" + level;

  // ---- --once: offline-comparable endpoint dump ---------------------------
  if (flags.GetBool("once")) {
    const auto fetch = [&](const std::string& target,
                           const std::string& prefix) {
      std::string full = target;
      if (!level_suffix.empty()) {
        full += (full.find('?') == std::string::npos ? "?" : "&") +
                level_suffix;
      }
      const HttpClient::Response response = control.Get(full);
      if (!response.ok || response.status != 200) {
        std::fprintf(stderr, "loadgen: GET %s failed (status %d)\n",
                     full.c_str(), response.status);
        return false;
      }
      // The service suffixes bodies with a curl-friendly newline; the JSON
      // itself is what must match `sketchsample offline` byte for byte.
      std::string body = response.body;
      while (!body.empty() && body.back() == '\n') body.pop_back();
      std::printf("%s %s\n", prefix.c_str(), body.c_str());
      return true;
    };
    if (!fetch("/query/selfjoin", "selfjoin")) return 1;
    if (flags.GetDouble("join-weight") > 0 && !fetch("/query/join", "join")) {
      return 1;
    }
    for (const int64_t key : flags.GetIntList("keys")) {
      const std::string text = std::to_string(key);
      if (!fetch("/query/point?key=" + text, "point:" + text)) return 1;
    }
    if (flags.GetDouble("distinct-weight") > 0 &&
        !fetch("/query/distinct", "distinct")) {
      return 1;
    }
    const auto each_token = [](const std::string& list, char sep,
                               const auto& fn) {
      size_t start = 0;
      while (start < list.size()) {
        const size_t pos = list.find(sep, start);
        const size_t end = pos == std::string::npos ? list.size() : pos;
        if (!fn(list.substr(start, end - start))) return false;
        if (pos == std::string::npos) break;
        start = pos + 1;
      }
      return true;
    };
    if (!each_token(flags.GetString("quantiles"), ',',
                    [&](const std::string& q) {
                      return fetch("/query/quantile?q=" + q, "quantile:" + q);
                    })) {
      return 1;
    }
    if (!each_token(flags.GetString("subpop-filters"), ';',
                    [&](const std::string& filter) {
                      return fetch("/query/subpop?filter=" + filter,
                                   "subpop:" + filter);
                    })) {
      return 1;
    }
    return 0;
  }

  // ---- Phase 3: query load ------------------------------------------------
  const double seconds = flags.GetDouble("seconds");
  if (seconds <= 0) return 0;

  WorkerConfig config;
  config.mix.Add("selfjoin", flags.GetDouble("selfjoin-weight"));
  config.mix.Add("join", flags.GetDouble("join-weight"));
  config.mix.Add("point", flags.GetDouble("point-weight"));
  config.mix.Add("distinct", flags.GetDouble("distinct-weight"));
  config.mix.Add("quantile", flags.GetDouble("quantile-weight"));
  config.mix.Add("subpop", flags.GetDouble("subpop-weight"));
  config.mix.Add("stats", flags.GetDouble("stats-weight"));
  if (config.mix.cumulative.empty()) {
    std::fprintf(stderr, "loadgen: all mix weights are zero\n");
    return 1;
  }
  config.key_domain =
      std::max<uint64_t>(1, static_cast<uint64_t>(flags.GetInt("key-domain")));
  config.level_suffix = level_suffix;
  config.seconds = seconds;
  config.overload = flags.GetBool("overload");
  config.deadline_ms = static_cast<int>(flags.GetInt("deadline-ms"));
  config.retry = retry;

  const int threads = std::max<int>(1, static_cast<int>(flags.GetInt("threads")));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(QueryWorker, host, port, std::cref(config),
                         MixSeed(seed, static_cast<uint64_t>(t)), &stop,
                         &results[static_cast<size_t>(t)]);
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  uint64_t requests = 0, errors = 0, admitted = 0, shed = 0;
  std::vector<uint64_t> latencies;
  for (const WorkerResult& result : results) {
    requests += result.requests;
    errors += result.errors;
    admitted += result.admitted;
    shed += result.shed;
    latencies.insert(latencies.end(), result.latencies_ns.begin(),
                     result.latencies_ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps =
      elapsed > 0 ? static_cast<double>(requests) / elapsed : 0;
  const double goodput =
      elapsed > 0 ? static_cast<double>(admitted) / elapsed : 0;
  const uint64_t p50 = PercentileNs(latencies, 0.50);
  const uint64_t p90 = PercentileNs(latencies, 0.90);
  const uint64_t p99 = PercentileNs(latencies, 0.99);
  std::printf(
      "loadgen: %llu requests in %.3gs (%.6g req/sec, %llu errors)\n"
      "goodput: %llu admitted (%.6g req/sec), %llu shed\n"
      "admitted latency ns: p50 %llu  p90 %llu  p99 %llu\n",
      static_cast<unsigned long long>(requests), elapsed, qps,
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(admitted), goodput,
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(p50),
      static_cast<unsigned long long>(p90),
      static_cast<unsigned long long>(p99));

  const std::string json_out = flags.GetString("json_out");
  if (!json_out.empty()) {
    bench::BenchReport report("loadgen");
    report.SetConfig("threads", static_cast<double>(threads));
    report.SetConfig("seconds", seconds);
    report.SetConfig("seed", static_cast<double>(seed));
    report.SetConfig("overload", config.overload ? 1.0 : 0.0);
    bench::BenchPoint& point = report.AddPoint();
    point.Label("phase", "query");
    point.Metric("requests", static_cast<double>(requests));
    point.Metric("errors", static_cast<double>(errors));
    point.Metric("admitted", static_cast<double>(admitted));
    point.Metric("shed", static_cast<double>(shed));
    point.Metric("requests_per_sec", qps);
    point.Metric("goodput_per_sec", goodput);
    point.Metric("seconds", elapsed);
    point.Metric("p50_latency_ns", static_cast<double>(p50));
    point.Metric("p90_latency_ns", static_cast<double>(p90));
    point.Metric("p99_latency_ns", static_cast<double>(p99));
    if (ingest_tps > 0) {
      bench::BenchPoint& ingest = report.AddPoint();
      ingest.Label("phase", "ingest");
      ingest.Metric("updates_per_sec", ingest_tps);
    }
    if (!report.WriteFile(json_out)) return 1;
  }

  // Success: hard errors within budget, and under an overload drill the
  // service must still have answered something (no total starvation).
  const double error_rate =
      requests > 0 ? static_cast<double>(errors) / static_cast<double>(requests)
                   : 0;
  if (error_rate > flags.GetDouble("max-error-rate")) return 1;
  if (config.overload && admitted == 0 && requests > 0) return 1;
  return 0;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
