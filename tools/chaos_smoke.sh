#!/usr/bin/env bash
# Socket-level chaos smoke for the query service (docs/ROBUSTNESS.md,
# "query-side shedding"), run by the chaos-smoke CI job and runnable
# locally:
#
#   tools/chaos_smoke.sh <work_dir> [build_dir]
#
# The seed comes from SKETCHSAMPLE_CHAOS_SEED (default below); CI draws a
# fresh one per run and uploads it on failure, so any failing sequence of
# partial reads/writes, resets, and delays reproduces bit-exactly. Unlike
# the fault-injection soak, socket chaos never corrupts data — it only
# mangles the transport — so byte-exactness against `sketchsample offline`
# IS asserted here. Two scenarios:
#
#   1. Exactly-once under chaos: ingest through a harsh chaos transport on
#      both sides (client retries with sequenced chunks, server dedups),
#      then require every query endpoint to answer byte-identically to
#      offline over the same data.
#   2. Overload storm: 8x more query threads than the admission budget,
#      still under chaos. The server must shed (429/503/408) instead of
#      wedging and keep goodput above zero. A low-concurrency recovery
#      phase then lets the AIMD admit rate probe back up to 1.0, after
#      which a clean probe must be admitted, and SIGTERM must shut the
#      server down in an orderly fashion.
set -euo pipefail

work="${1:?usage: chaos_smoke.sh <work_dir> [build_dir]}"
build_dir="${2:-build}"
cli="$build_dir/tools/sketchsample"
loadgen="$build_dir/tools/loadgen"
mkdir -p "$work"

seed="${SKETCHSAMPLE_CHAOS_SEED:-20090402}"
echo "chaos smoke: seed $seed"

# Fixed engine configuration — must stay identical between serve and
# offline (mirrors tools/service_smoke.sh).
tuples=30000
domain=20000
gen_seed=20090402
engine_flags=(
  --buckets=512 --rows=3 --scheme=eh3 --seed=33
  --shards=2 --shed-p=0.5 --shed-seed=42
  --distinct-k=256 --snapshot-every=8192
)
keys="17,4242,9999"

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

start_server() {  # start_server <port_file> <log_prefix> [extra serve flags...]
  local port_file="$1" log_prefix="$2"
  shift 2
  rm -f "$port_file"
  "$cli" serve "${engine_flags[@]}" \
    --port=0 --port-file="$port_file" --run-seconds=300 "$@" \
    >"$work/$log_prefix.log" 2>"$work/$log_prefix.err" &
  pids+=("$!")
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    sleep 0.2
  done
  [ -s "$port_file" ] || { echo "FAIL: server never wrote $port_file" >&2
                           cat "$work/$log_prefix.err" >&2; exit 1; }
}

echo "== generate dataset (${tuples} zipf tuples, seed ${gen_seed})"
"$cli" generate --kind=zipf --out="$work/data.txt" \
  --tuples="$tuples" --domain="$domain" --skew=1.0 --seed="$gen_seed"

echo "== offline reference answers"
"$cli" offline "${engine_flags[@]}" --in="$work/data.txt" --keys="$keys" \
  >"$work/offline.txt" 2>"$work/offline.err"

echo "== scenario 1: exactly-once ingest + byte-exact answers under harsh chaos"
start_server "$work/port.txt" serve \
  --chaos-profile=harsh --chaos-seed="$seed"
port="$(cat "$work/port.txt")"
"$loadgen" --port="$port" --ingest-file="$work/data.txt" --close=true \
  --wait-done=true --once=true --keys="$keys" --distinct-weight=1 \
  --chaos-profile=harsh --chaos-seed="$seed" \
  --retry-attempts=10 --retry-base-ms=5 \
  >"$work/online.txt"
if ! diff -u "$work/offline.txt" "$work/online.txt"; then
  echo "FAIL: answers over a chaos transport diverge from offline" >&2
  exit 1
fi
echo "   bit-exact through retries and dedup: OK"

echo "== scenario 2: 8x overload storm against a 2-slot admission budget"
start_server "$work/port2.txt" serve2 \
  --chaos-profile=harsh --chaos-seed="$seed" \
  --admission-capacity=2 --deadline-ms=2000
port2="$(cat "$work/port2.txt")"
# Sheds (429/503/408) are expected and healthy here; hard transport errors
# past the retry budget are tolerated up to 5% under harsh chaos.
"$loadgen" --port="$port2" --threads=16 --seconds=5 --seed="$seed" \
  --overload=true --deadline-ms=1000 --key-domain="$domain" \
  --chaos-profile=mild --chaos-seed="$seed" \
  --retry-attempts=4 --retry-base-ms=2 --max-error-rate=0.05 \
  --json_out="$work/BENCH_chaos_loadgen.json"

# Recovery: a single-threaded trickle keeps the window peak under the
# admission headroom, so the AIMD controller probes its admit rate back up
# to 1.0 (one additive step per window). Sheds early in this phase are
# expected; admitted goodput must still be nonzero.
"$loadgen" --port="$port2" --threads=1 --seconds=3 --seed="$seed" \
  --overload=true --key-domain="$domain" \
  --retry-attempts=10 --retry-base-ms=2 --max-error-rate=0.05 \
  --json_out="$work/BENCH_recovery_loadgen.json"

# The server survived the storm and recovered: a clean probe is admitted,
# and SIGTERM shuts it down in an orderly fashion.
"$loadgen" --port="$port2" --once=true --keys=17 --retry-attempts=10 \
  >"$work/final.txt"
storm_pid="${pids[-1]}"
kill -TERM "$storm_pid"
wait "$storm_pid"
echo "   shed under overload, stayed alive, clean shutdown: OK"

echo "chaos smoke: all scenarios passed (seed $seed)"
