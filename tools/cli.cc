#include "tools/cli.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "src/core/confidence.h"
#include "src/core/sketch_estimators.h"
#include "src/core/sketch_over_sample.h"
#include "src/data/frequency_vector.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/heavy_hitters.h"
#include "src/sketch/kmv.h"
#include "src/data/tpch_lite.h"
#include "src/data/zipf.h"
#include "src/sampling/with_replacement.h"
#include "src/sampling/without_replacement.h"
#include "src/sketch/serialize.h"
#include "src/stream/checkpoint.h"
#include "src/stream/faults.h"
#include "src/stream/operators.h"
#include "src/stream/pipeline.h"
#include "src/stream/shard_engine.h"
#include "src/stream/shed_controller.h"
#include "src/stream/source.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "tools/serve.h"

namespace sketchsample {
namespace cli {

std::vector<uint64_t> ReadValuesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open dataset file: " + path);
  }
  std::vector<uint64_t> values;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    try {
      size_t consumed = 0;
      const unsigned long long v = std::stoull(line, &consumed);
      while (consumed < line.size() &&
             (line[consumed] == ' ' || line[consumed] == '\r' ||
              line[consumed] == '\t')) {
        ++consumed;
      }
      if (consumed != line.size()) throw std::invalid_argument(line);
      values.push_back(v);
    } catch (const std::exception&) {
      throw std::runtime_error(path + ":" + std::to_string(line_number) +
                               ": malformed value '" + line + "'");
    }
  }
  return values;
}

void WriteValuesFile(const std::string& path,
                     const std::vector<uint64_t>& values) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write dataset file: " + path);
  }
  for (uint64_t v : values) out << v << '\n';
  if (!out) {
    throw std::runtime_error("short write to dataset file: " + path);
  }
}

std::vector<uint8_t> ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open sketch file: " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

void WriteBinaryFile(const std::string& path,
                     const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot write sketch file: " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("short write to sketch file: " + path);
  }
}

namespace {

void PrintTopUsage() {
  std::fprintf(stderr,
               "usage: sketchsample "
               "<generate|exact|estimate|sketch|combine|stats|topk|range|"
               "stream|serve|offline> [flags]\n"
               "run a subcommand with --help for its flags\n");
}

SketchParams SketchParamsFromFlags(const Flags& flags) {
  SketchParams params;
  params.rows = static_cast<size_t>(flags.GetInt("rows"));
  params.buckets = static_cast<size_t>(flags.GetInt("buckets"));
  params.scheme = XiSchemeFromName(flags.GetString("scheme"));
  params.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  return params;
}

void DefineSketchFlags(Flags& flags) {
  flags.Define("buckets", "5000", "F-AGMS buckets per row");
  flags.Define("rows", "1", "F-AGMS rows");
  flags.Define("scheme", "eh3", "xi scheme");
  flags.Define("seed", "1", "sketch seed");
}

int CmdGenerate(int argc, char** argv) {
  Flags flags;
  flags.Define("kind", "zipf", "zipf | tpch-orders | tpch-lineitem");
  flags.Define("out", "", "output dataset file (required)");
  flags.Define("domain", "100000", "zipf: domain size");
  flags.Define("tuples", "1000000", "zipf: number of tuples");
  flags.Define("skew", "1.0", "zipf: coefficient");
  flags.Define("scale", "0.01", "tpch: scale factor");
  flags.Define("seed", "1", "generator seed");
  flags.Define("shuffle", "true", "emit tuples in random order");
  if (!flags.Parse(argc, argv)) return 1;
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 1;
  }
  const uint64_t seed = flags.GetInt("seed");
  const std::string kind = flags.GetString("kind");

  std::vector<uint64_t> values;
  if (kind == "zipf") {
    ZipfSampler sampler(static_cast<size_t>(flags.GetInt("domain")),
                        flags.GetDouble("skew"));
    Xoshiro256 rng(seed);
    values = sampler.Stream(static_cast<size_t>(flags.GetInt("tuples")), rng);
  } else if (kind == "tpch-orders" || kind == "tpch-lineitem") {
    const TpchLiteData data = GenerateTpchLite(flags.GetDouble("scale"), seed);
    values = kind == "tpch-orders" ? data.orders : data.lineitem;
  } else {
    std::fprintf(stderr, "generate: unknown --kind '%s'\n", kind.c_str());
    return 1;
  }
  if (flags.GetBool("shuffle")) {
    Xoshiro256 rng(MixSeed(seed, 0x5f));
    Shuffle(values, rng);
  }
  WriteValuesFile(out, values);
  std::printf("wrote %zu values to %s\n", values.size(), out.c_str());
  return 0;
}

int CmdExact(int argc, char** argv) {
  Flags flags;
  flags.Define("agg", "selfjoin", "selfjoin | join");
  flags.Define("in", "", "dataset file (required)");
  flags.Define("in-g", "", "second dataset file (join only)");
  if (!flags.Parse(argc, argv)) return 1;
  const std::string agg = flags.GetString("agg");
  const auto values_f = ReadValuesFile(flags.GetString("in"));
  const FrequencyVector f = FrequencyVector::FromStream(values_f);
  if (agg == "selfjoin") {
    std::printf("%.17g\n", ExactSelfJoinSize(f));
    return 0;
  }
  if (agg == "join") {
    const auto values_g = ReadValuesFile(flags.GetString("in-g"));
    const FrequencyVector g = FrequencyVector::FromStream(values_g);
    std::printf("%.17g\n", ExactJoinSize(f, g));
    return 0;
  }
  std::fprintf(stderr, "exact: unknown --agg '%s'\n", agg.c_str());
  return 1;
}

int CmdEstimate(int argc, char** argv) {
  Flags flags;
  flags.Define("agg", "selfjoin", "selfjoin | join");
  flags.Define("in", "", "dataset file (required)");
  flags.Define("in-g", "", "second dataset file (join only)");
  flags.Define("sampling", "none", "none | bernoulli | wr | wor");
  flags.Define("p", "0.1", "bernoulli keep-probability");
  flags.Define("fraction", "0.1", "wr/wor sample fraction");
  flags.Define("sampler-seed", "7", "sampling randomness seed");
  DefineSketchFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const std::string agg = flags.GetString("agg");
  const std::string sampling = flags.GetString("sampling");
  const SketchParams params = SketchParamsFromFlags(flags);
  const uint64_t sampler_seed = flags.GetInt("sampler-seed");

  const auto stream_f = ReadValuesFile(flags.GetString("in"));
  std::vector<uint64_t> stream_g;
  const bool join = agg == "join";
  if (join) {
    stream_g = ReadValuesFile(flags.GetString("in-g"));
  } else if (agg != "selfjoin") {
    std::fprintf(stderr, "estimate: unknown --agg '%s'\n", agg.c_str());
    return 1;
  }

  double estimate = 0;
  if (sampling == "none") {
    if (join) {
      estimate = FagmsJoinEstimate(stream_f, stream_g, params);
    } else {
      estimate = FagmsSelfJoinEstimate(stream_f, params);
    }
  } else if (sampling == "bernoulli") {
    const double p = flags.GetDouble("p");
    BernoulliSketchEstimator<FagmsSketch> ef(p, params,
                                             MixSeed(sampler_seed, 1));
    ef.ProcessStreamWithSkips(stream_f);
    if (join) {
      BernoulliSketchEstimator<FagmsSketch> eg(p, params,
                                               MixSeed(sampler_seed, 2));
      eg.ProcessStreamWithSkips(stream_g);
      estimate = ef.EstimateJoin(eg);
    } else {
      estimate = ef.EstimateSelfJoin();
    }
  } else if (sampling == "wr" || sampling == "wor") {
    const double fraction = flags.GetDouble("fraction");
    const SamplingScheme scheme = sampling == "wr"
                                      ? SamplingScheme::kWithReplacement
                                      : SamplingScheme::kWithoutReplacement;
    Xoshiro256 rng(sampler_seed);
    auto sample_of = [&](const std::vector<uint64_t>& stream) {
      const uint64_t m = std::max<uint64_t>(
          2, static_cast<uint64_t>(fraction *
                                   static_cast<double>(stream.size())));
      return scheme == SamplingScheme::kWithReplacement
                 ? SampleWithReplacement(stream, m, rng)
                 : SampleWithoutReplacement(stream, m, rng);
    };
    SampledStreamEstimator<FagmsSketch> ef(scheme, stream_f.size(), params);
    ef.UpdateAll(sample_of(stream_f));
    if (join) {
      SampledStreamEstimator<FagmsSketch> eg(scheme, stream_g.size(),
                                             params);
      eg.UpdateAll(sample_of(stream_g));
      estimate = ef.EstimateJoin(eg);
    } else {
      estimate = ef.EstimateSelfJoin();
    }
  } else {
    std::fprintf(stderr, "estimate: unknown --sampling '%s'\n",
                 sampling.c_str());
    return 1;
  }
  std::printf("%.17g\n", estimate);
  return 0;
}

int CmdSketch(int argc, char** argv) {
  Flags flags;
  flags.Define("in", "", "dataset file (required)");
  flags.Define("out", "", "output sketch file (required)");
  DefineSketchFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const std::string out = flags.GetString("out");
  if (flags.GetString("in").empty() || out.empty()) {
    std::fprintf(stderr, "sketch: --in and --out are required\n");
    return 1;
  }
  const auto stream = ReadValuesFile(flags.GetString("in"));
  const FagmsSketch sketch =
      BuildFagmsSketch(stream, SketchParamsFromFlags(flags));
  WriteBinaryFile(out, SerializeSketch(sketch));
  std::printf("sketched %zu tuples into %s (%zu bytes)\n", stream.size(),
              out.c_str(), SerializeSketch(sketch).size());
  return 0;
}

int CmdCombine(int argc, char** argv) {
  Flags flags;
  flags.Define("agg", "selfjoin", "selfjoin | join | merge");
  flags.Define("a", "", "first sketch file (required)");
  flags.Define("b", "", "second sketch file (join/merge)");
  flags.Define("out", "", "merge: output sketch file");
  if (!flags.Parse(argc, argv)) return 1;
  const std::string agg = flags.GetString("agg");
  FagmsSketch a = DeserializeFagms(ReadBinaryFile(flags.GetString("a")));
  if (agg == "selfjoin") {
    std::printf("%.17g\n", a.EstimateSelfJoin());
    return 0;
  }
  FagmsSketch b = DeserializeFagms(ReadBinaryFile(flags.GetString("b")));
  if (agg == "join") {
    std::printf("%.17g\n", a.EstimateJoin(b));
    return 0;
  }
  if (agg == "merge") {
    a.Merge(b);
    WriteBinaryFile(flags.GetString("out"), SerializeSketch(a));
    std::printf("merged sketch written to %s\n",
                flags.GetString("out").c_str());
    return 0;
  }
  std::fprintf(stderr, "combine: unknown --agg '%s'\n", agg.c_str());
  return 1;
}

int CmdStats(int argc, char** argv) {
  Flags flags;
  flags.Define("in", "", "dataset file (required)");
  flags.Define("kmv-k", "1024", "KMV minima retained");
  DefineSketchFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const auto values = ReadValuesFile(flags.GetString("in"));
  if (values.empty()) {
    std::fprintf(stderr, "stats: dataset is empty\n");
    return 1;
  }
  KmvSketch kmv(static_cast<size_t>(flags.GetInt("kmv-k")),
                flags.GetInt("seed"));
  FagmsSketch f2(SketchParamsFromFlags(flags));
  for (uint64_t v : values) {
    kmv.Update(v);
    f2.Update(v);
  }
  std::printf("count    %zu\n", values.size());
  std::printf("distinct %.17g\n", kmv.EstimateDistinct());
  std::printf("f2       %.17g\n", f2.EstimateSelfJoin());
  return 0;
}

int CmdTopK(int argc, char** argv) {
  Flags flags;
  flags.Define("in", "", "dataset file (required)");
  flags.Define("k", "10", "number of heavy hitters to report");
  flags.Define("domain", "0",
               "key domain size (0 = max value in the file + 1)");
  flags.Define("p", "1", "Bernoulli keep-probability applied while reading");
  flags.Define("sampler-seed", "7", "sampling randomness seed");
  DefineSketchFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const auto values = ReadValuesFile(flags.GetString("in"));
  size_t domain = static_cast<size_t>(flags.GetInt("domain"));
  if (domain == 0) {
    for (uint64_t v : values) {
      domain = std::max<size_t>(domain, static_cast<size_t>(v) + 1);
    }
  }
  SketchParams params = SketchParamsFromFlags(flags);
  params.rows = std::max<size_t>(params.rows, 5);  // medians need rows

  const double p = flags.GetDouble("p");
  FagmsSketch sketch(params);
  BernoulliSampler sampler(p, flags.GetInt("sampler-seed"));
  for (uint64_t v : values) {
    if (p >= 1.0 || sampler.Keep()) sketch.Update(v);
  }
  const auto top = TopKFrequent(sketch, domain,
                                static_cast<size_t>(flags.GetInt("k")),
                                1.0 / p);
  for (const auto& hitter : top) {
    std::printf("%llu %.6g\n",
                static_cast<unsigned long long>(hitter.key),
                hitter.estimated_frequency);
  }
  return 0;
}

int CmdRange(int argc, char** argv) {
  Flags flags;
  flags.Define("in", "", "dataset file (required)");
  flags.Define("log-universe", "20", "keys must be < 2^log-universe");
  flags.Define("lo", "0", "range lower bound (inclusive)");
  flags.Define("hi", "0", "range upper bound (inclusive)");
  flags.Define("quantile", "-1",
               "when in (0,1]: report the quantile key instead of a range");
  DefineSketchFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const auto values = ReadValuesFile(flags.GetString("in"));
  DyadicRangeSketch sketch(static_cast<int>(flags.GetInt("log-universe")),
                           SketchParamsFromFlags(flags));
  for (uint64_t v : values) sketch.Update(v);
  const double quantile = flags.GetDouble("quantile");
  if (quantile > 0.0) {
    std::printf("%llu\n", static_cast<unsigned long long>(
                              sketch.EstimateQuantile(quantile)));
    return 0;
  }
  std::printf("%.17g\n",
              sketch.EstimateRange(flags.GetInt("lo"), flags.GetInt("hi")));
  return 0;
}

// The --shards=N path of `stream`: same stream, same honest reporting, but
// ingested by the multi-threaded ShardEngine — positional Bernoulli
// shedding (seeded by --shed-seed, identical tuples kept at any shard
// count), one partial sketch per worker, merged at the end. Checkpoints
// carry the per-shard section, so a resume may use a different --shards.
// Faults stay on the pull path (FaultInjectingSource), exactly as in the
// single-threaded pipeline.
int RunShardedStream(const Flags& flags, const std::vector<uint64_t>& values,
                     const SketchParams& params, ShedController* controller) {
  ShardEngineOptions eopts;
  eopts.shards = static_cast<size_t>(flags.GetInt("shards"));
  eopts.shed_p = flags.GetDouble("shed-p");
  eopts.seed = static_cast<uint64_t>(flags.GetInt("shed-seed"));
  eopts.controller = controller;
  eopts.max_tuples = static_cast<uint64_t>(flags.GetInt("max-tuples"));
  eopts.stall_retries = static_cast<uint64_t>(flags.GetInt("stall-retries"));

  std::optional<FileCheckpointSink> checkpoint_sink;
  const std::string checkpoint_out = flags.GetString("checkpoint-out");
  const uint64_t checkpoint_every =
      static_cast<uint64_t>(flags.GetInt("checkpoint-every"));
  if (checkpoint_every > 0 && !checkpoint_out.empty()) {
    checkpoint_sink.emplace(checkpoint_out);
    eopts.checkpoint_sink = &*checkpoint_sink;
    eopts.checkpoint_every = checkpoint_every;
  }

  ShardEngine<FagmsSketch> engine(FagmsSketch(params), eopts);

  VectorSource vector_source(values);
  StreamSource* source = &vector_source;
  const FaultProfile profile =
      FaultProfile::FromName(flags.GetString("fault-profile"));
  uint64_t fault_seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
  if (fault_seed == 0) fault_seed = FaultSeedFromEnv(77);
  std::optional<FaultInjectingSource> faulty;
  if (profile.Active()) {
    faulty.emplace(&vector_source, profile, fault_seed);
    source = &*faulty;
  }

  const std::string resume_path = flags.GetString("resume");
  if (!resume_path.empty()) {
    engine.Restore(DeserializeCheckpoint(ReadBinaryFile(resume_path)),
                   *source);
  }

  const ShardEngineStats stats = engine.Run(*source);

  const FrequencyVector f = FrequencyVector::FromStream(values);
  const JoinStatistics join_stats = ComputeJoinStatistics(f, f);
  const double realized_p =
      engine.total_seen() > 0
          ? static_cast<double>(engine.total_kept()) /
                static_cast<double>(engine.total_seen())
          : engine.p();
  const double estimate = RealizedSelfJoinEstimate(
      engine.merged().EstimateSelfJoin(), realized_p, engine.total_kept());
  const ConfidenceInterval ci =
      RealizedSelfJoinInterval(estimate, join_stats, realized_p,
                               params.buckets, flags.GetDouble("level"));

  std::printf("shards      %llu\n",
              static_cast<unsigned long long>(eopts.shards));
  std::printf("tuples      %llu\n",
              static_cast<unsigned long long>(engine.total_seen()));
  std::printf("kept        %llu\n",
              static_cast<unsigned long long>(engine.total_kept()));
  std::printf("realized_p  %.17g\n", realized_p);
  std::printf("final_p     %.17g\n", stats.final_p);
  std::printf("windows     %llu\n",
              static_cast<unsigned long long>(
                  controller ? controller->windows() : stats.windows));
  std::printf("checkpoints %llu\n",
              static_cast<unsigned long long>(stats.checkpoints));
  std::printf("tps         %.17g\n", stats.TuplesPerSecond());
  if (profile.Active()) {
    std::printf("faults      %llu\n",
                static_cast<unsigned long long>(faulty->faults_injected()));
    std::printf("fault_seed  %llu\n",
                static_cast<unsigned long long>(fault_seed));
  }
  std::printf("estimate    %.17g\n", estimate);
  std::printf("exact       %.17g\n", ExactSelfJoinSize(f));
  std::printf("ci          %.17g %.17g\n", ci.low, ci.high);
  std::printf("outcome     %s\n", stats.ended     ? "ended"
                                  : stats.stalled ? "stalled"
                                                  : "stopped");
  return 0;
}

// Runs the robust streaming pipeline end to end: source (file or synthetic
// Zipf) → optional fault injection → Bernoulli shed stage (optionally
// retargeted per window by a ShedController) → F-AGMS sketch sink, with
// periodic checkpoints and checkpoint resume. Reports the realized-rate-
// corrected self-join estimate with its Eq 26 confidence interval alongside
// the exact answer, so accuracy-vs-load curves fall out of a flag sweep.
int CmdStream(int argc, char** argv) {
  Flags flags;
  flags.Define("in", "", "dataset file (empty: synthetic zipf stream)");
  flags.Define("domain", "100000", "zipf: domain size");
  flags.Define("tuples", "1000000", "zipf: number of tuples");
  flags.Define("skew", "1.0", "zipf: coefficient");
  flags.Define("source-seed", "1", "zipf source seed");
  flags.Define("shed-p", "1", "initial Bernoulli keep-probability");
  flags.Define("shed-seed", "7", "shed stage randomness seed");
  flags.Define("shed-budget", "0",
               "adaptive: kept-tuple budget per window (deterministic)");
  flags.Define("shed-target-tps", "0",
               "adaptive: wall-clock kept-tuples/sec target "
               "(nondeterministic; shed-budget takes precedence)");
  flags.Define("shed-window", "8192", "controller window in offered tuples");
  flags.Define("min-p", "0.05", "adaptive floor for the shed rate");
  flags.Define("checkpoint-every", "0",
               "checkpoint period in tuples (0 = off)");
  flags.Define("checkpoint-out", "", "checkpoint file (atomically replaced)");
  flags.Define("resume", "", "checkpoint file to resume from");
  flags.Define("fault-profile", "none", "none | mild | harsh");
  flags.Define("fault-seed", "0",
               "fault seed (0: SKETCHSAMPLE_FAULT_SEED env or 77)");
  flags.Define("stall-retries", "64",
               "zero-length pulls to ride out before degrading");
  flags.Define("max-tuples", "0",
               "stop after this many tuples (0 = run to end; simulates a "
               "mid-stream kill for checkpoint testing)");
  flags.Define("shards", "0",
               "worker shards for the multi-threaded engine (0 = classic "
               "single-threaded pipeline; N >= 1 routes through ShardEngine "
               "with positional shedding keyed by --shed-seed)");
  flags.Define("level", "0.95", "confidence level for the error bars");
  DefineSketchFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;

  // Materialize the input stream: exact statistics (for the honest error
  // bars and the printed exact answer) need the full frequency vector, and
  // a VectorSource over deterministic contents is what makes checkpoint
  // resume from a separate process reconstruct the same stream.
  std::vector<uint64_t> values;
  if (!flags.GetString("in").empty()) {
    values = ReadValuesFile(flags.GetString("in"));
  } else {
    ZipfSampler sampler(static_cast<size_t>(flags.GetInt("domain")),
                        flags.GetDouble("skew"));
    Xoshiro256 rng(flags.GetInt("source-seed"));
    values = sampler.Stream(static_cast<size_t>(flags.GetInt("tuples")), rng);
  }
  if (values.empty()) {
    std::fprintf(stderr, "stream: input stream is empty\n");
    return 1;
  }

  const SketchParams params = SketchParamsFromFlags(flags);
  const double shed_p = flags.GetDouble("shed-p");
  const double budget = flags.GetDouble("shed-budget");
  const double target_tps = flags.GetDouble("shed-target-tps");
  const bool adaptive = budget > 0.0 || target_tps > 0.0;

  std::optional<ShedController> controller;
  if (adaptive) {
    ShedControllerOptions copts;
    copts.initial_p = shed_p;
    copts.min_p = flags.GetDouble("min-p");
    copts.capacity_per_window = budget;
    copts.target_tps = target_tps;
    copts.window_tuples = static_cast<uint64_t>(flags.GetInt("shed-window"));
    controller.emplace(copts);  // validates the knobs, throws on nonsense
  }

  if (flags.GetInt("shards") > 0) {
    return RunShardedStream(flags, values, params,
                            controller ? &*controller : nullptr);
  }

  // Resume: restore the sketch from the checkpoint blob; shed/controller
  // states are restored below, after the source exists to fast-forward.
  const std::string resume_path = flags.GetString("resume");
  PipelineCheckpoint cp;
  const bool resuming = !resume_path.empty();
  if (resuming) cp = DeserializeCheckpoint(ReadBinaryFile(resume_path));
  FagmsSketch sketch = resuming && !cp.sketch.empty()
                           ? DeserializeFagms(cp.sketch)
                           : FagmsSketch(params);
  SinkOperator sink = MakeSketchSink(sketch);
  ShedOperator shed(shed_p, flags.GetInt("shed-seed"), &sink);

  VectorSource vector_source(values);
  StreamSource* source = &vector_source;
  const FaultProfile profile =
      FaultProfile::FromName(flags.GetString("fault-profile"));
  uint64_t fault_seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
  if (fault_seed == 0) fault_seed = FaultSeedFromEnv(77);
  std::optional<FaultInjectingSource> faulty;
  if (profile.Active()) {
    faulty.emplace(&vector_source, profile, fault_seed);
    source = &*faulty;
  }
  if (resuming) {
    RestorePipelineComponents(cp, *source, &shed,
                              controller ? &*controller : nullptr);
  }

  PipelineOptions opts;
  opts.max_tuples = static_cast<uint64_t>(flags.GetInt("max-tuples"));
  opts.initial_tuples = resuming ? cp.source_tuples : 0;
  opts.stall_retries = static_cast<uint64_t>(flags.GetInt("stall-retries"));
  opts.shed = &shed;  // also snapshotted by checkpoints in fixed-p mode
  if (adaptive) opts.controller = &*controller;
  const std::string checkpoint_out = flags.GetString("checkpoint-out");
  const uint64_t checkpoint_every =
      static_cast<uint64_t>(flags.GetInt("checkpoint-every"));
  std::optional<FileCheckpointSink> checkpoint_sink;
  SketchSnapshot<FagmsSketch> snapshot(sketch);
  if (checkpoint_every > 0 && !checkpoint_out.empty()) {
    checkpoint_sink.emplace(checkpoint_out);
    opts.checkpoint_sink = &*checkpoint_sink;
    opts.snapshot = &snapshot;
    opts.checkpoint_every = checkpoint_every;
  }

  const PipelineStats stats = RunPipeline(*source, shed, opts);

  // Honest reporting for the adaptive run: correct at the realized rate
  // (Props 13/14) and widen the interval per Eq 26 evaluated there.
  const FrequencyVector f = FrequencyVector::FromStream(values);
  const JoinStatistics join_stats = ComputeJoinStatistics(f, f);
  const double realized_p = shed.realized_rate();
  const double estimate = RealizedSelfJoinEstimate(
      sketch.EstimateSelfJoin(), realized_p, shed.forwarded());
  const ConfidenceInterval ci =
      RealizedSelfJoinInterval(estimate, join_stats, realized_p,
                               params.buckets, flags.GetDouble("level"));

  std::printf("tuples      %llu\n",
              static_cast<unsigned long long>(shed.seen()));
  std::printf("kept        %llu\n",
              static_cast<unsigned long long>(shed.forwarded()));
  std::printf("realized_p  %.17g\n", realized_p);
  std::printf("final_p     %.17g\n", stats.final_p);
  std::printf("windows     %llu\n",
              static_cast<unsigned long long>(
                  controller ? controller->windows() : stats.windows));
  std::printf("checkpoints %llu\n",
              static_cast<unsigned long long>(stats.checkpoints));
  if (profile.Active()) {
    std::printf("faults      %llu\n",
                static_cast<unsigned long long>(faulty->faults_injected()));
    std::printf("fault_seed  %llu\n",
                static_cast<unsigned long long>(fault_seed));
  }
  std::printf("estimate    %.17g\n", estimate);
  std::printf("exact       %.17g\n", ExactSelfJoinSize(f));
  std::printf("ci          %.17g %.17g\n", ci.low, ci.high);
  std::printf("outcome     %s\n", stats.ended     ? "ended"
                                  : stats.stalled ? "stalled"
                                                  : "stopped");
  return 0;
}

}  // namespace

int RunCli(int argc, char** argv) {
  if (argc < 2) {
    PrintTopUsage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so subcommands see their own flags as argv[1..].
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  try {
    if (command == "generate") return CmdGenerate(sub_argc, sub_argv);
    if (command == "exact") return CmdExact(sub_argc, sub_argv);
    if (command == "estimate") return CmdEstimate(sub_argc, sub_argv);
    if (command == "sketch") return CmdSketch(sub_argc, sub_argv);
    if (command == "combine") return CmdCombine(sub_argc, sub_argv);
    if (command == "stats") return CmdStats(sub_argc, sub_argv);
    if (command == "topk") return CmdTopK(sub_argc, sub_argv);
    if (command == "range") return CmdRange(sub_argc, sub_argv);
    if (command == "stream") return CmdStream(sub_argc, sub_argv);
    if (command == "serve") return CmdServe(sub_argc, sub_argv);
    if (command == "offline") return CmdOffline(sub_argc, sub_argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sketchsample %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand: %s\n", command.c_str());
  PrintTopUsage();
  return 1;
}

}  // namespace cli
}  // namespace sketchsample
