// Testable entry point for the bench_gate CLI (tools/bench_gate.cc is a
// thin main() wrapper). Split out so the exit-code contract — 0 no
// regression, 1 regression detected, 2 usage or malformed input — is
// itself under unit test (tests/bench_gate_test.cc).
#ifndef SKETCHSAMPLE_TOOLS_BENCH_GATE_MAIN_H_
#define SKETCHSAMPLE_TOOLS_BENCH_GATE_MAIN_H_

namespace sketchsample {
namespace gate {

/// Runs the bench_gate CLI: parses --flags and two positional report
/// paths from argv, loads/validates both reports, compares them, and
/// prints notes/failures to stderr. Returns the process exit code.
int BenchGateMain(int argc, char** argv);

}  // namespace gate
}  // namespace sketchsample

#endif  // SKETCHSAMPLE_TOOLS_BENCH_GATE_MAIN_H_
