#!/usr/bin/env bash
# Runs every figure-reproduction bench in the fast profile and collects the
# BENCH_*.json reports into one directory, for committing as baselines
# (bench/baselines/) or gating in CI (tools/bench_gate).
#
# Usage: tools/run_bench_suite.sh <out_dir> [build_dir]
#
# Profile knobs (environment):
#   BENCH_REPS      trials per point            (default 3)
#   BENCH_TUPLES    tuples per relation         (default 100000)
#   BENCH_SCALE     TPC-H scale factor, figs7/8 (default 0.05)
#   BENCH_MC        Monte-Carlo trials, ext_generic_variance (default 200)
#   BENCH_MIN_TIME  google-benchmark min seconds per point,
#                   bench_update_throughput (default 0.05)
#   BENCH_SERVICE_SECONDS  per-phase query duration, bench_service
#                   (default 1)
set -euo pipefail

out_dir="${1:?usage: run_bench_suite.sh <out_dir> [build_dir]}"
build_dir="${2:-build}"
reps="${BENCH_REPS:-3}"
tuples="${BENCH_TUPLES:-100000}"
scale="${BENCH_SCALE:-0.05}"
mc="${BENCH_MC:-200}"
min_time="${BENCH_MIN_TIME:-0.05}"
service_seconds="${BENCH_SERVICE_SECONDS:-1}"

mkdir -p "$out_dir"

run() {
  local name="$1"
  shift
  echo "=== $name" >&2
  "$build_dir/bench/$name" "$@" --json_out="$out_dir/$name.json" >/dev/null
}

common=(--reps="$reps" --tuples="$tuples")

run fig1_sjoin_variance_decomposition --tuples="$tuples"
run fig2_selfjoin_variance_decomposition --tuples="$tuples"
run fig3_bernoulli_sjoin_error "${common[@]}"
run fig4_bernoulli_selfjoin_error "${common[@]}"
run fig5_wr_sjoin_error "${common[@]}"
run fig6_wr_selfjoin_error "${common[@]}"
run fig7_wor_tpch_sjoin_error "${common[@]}" --scale_factor="$scale"
run fig8_wor_tpch_selfjoin_error "${common[@]}" --scale_factor="$scale"
run bench_sketch_ablation "${common[@]}"
run bench_shard_scaling "${common[@]}"
run bench_service --tuples="$tuples" --seconds="$service_seconds"
# Also carries the SIMD dispatch series (BM_FagmsFusedIsa/<isa>, the
# BM_FagmsRoofline/<isa>/<buckets> working-set sweep, and the layout
# trial); those points register per reachable ISA level, so exporting
# SKETCHSAMPLE_ISA here caps which series the report contains. The ratio
# requirements between them live in bench/rules/ (docs/BENCHMARKS.md).
run bench_update_throughput --benchmark_min_time="$min_time"
run ext_decomposition_wr_wor --tuples="$tuples"
run ext_generic_variance --mc_trials="$mc"

echo "bench suite: $(ls "$out_dir" | wc -l) reports in $out_dir" >&2
