// The `serve` and `offline` subcommands of the sketchsample CLI.
//
//   serve   — long-running query service: HTTP endpoints over a live shard
//             engine (src/service/service.h). Prints "listening on
//             HOST:PORT" once ready; runs until SIGINT/SIGTERM or
//             --run-seconds.
//   offline — runs the *same* engine + response builders over the same
//             stream without a server and prints each endpoint's exact
//             JSON body, one per line. The service-smoke CI job diffs
//             these against live HTTP responses byte for byte.
#ifndef SKETCHSAMPLE_TOOLS_SERVE_H_
#define SKETCHSAMPLE_TOOLS_SERVE_H_

namespace sketchsample {
namespace cli {

int CmdServe(int argc, char** argv);
int CmdOffline(int argc, char** argv);

}  // namespace cli
}  // namespace sketchsample

#endif  // SKETCHSAMPLE_TOOLS_SERVE_H_
