#include "tools/bench_gate_main.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/util/flags.h"
#include "tools/gate.h"

namespace sketchsample {
namespace gate {

int BenchGateMain(int argc, char** argv) {
  Flags flags;
  flags.Define("throughput_tolerance", "0.15",
               "max fractional updates/sec drop before failing");
  flags.Define("error_sigmas", "3",
               "allowed mean_rel_error increase, in combined stderr units");
  flags.Define("min_gate_seconds", "0.25",
               "minimum baseline measured seconds for the duration-weighted "
               "throughput gate to engage");
  flags.Define("latency_tolerance", "0.5",
               "max fractional *_latency_ns increase before failing");
  flags.Define("no_throughput", "false", "skip the throughput gate entirely");
  flags.Define("no_errors", "false", "skip the accuracy gate entirely");
  flags.Define("no_latency", "false", "skip the latency gate entirely");
  flags.Define("force_throughput", "false",
               "gate throughput even when reports come from different hosts");
  flags.Define("rules", "",
               "optional within-report ratio rules JSON (bench/rules/*.json) "
               "evaluated against the CURRENT report; host-independent, so "
               "it gates even when baseline throughput is skipped");

  // Split positional file arguments from --flags before handing the rest to
  // the Flags parser (which treats unknown positionals as errors).
  std::vector<char*> flag_args = {argv[0]};
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flag_args.push_back(argv[i]);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (!flags.Parse(static_cast<int>(flag_args.size()), flag_args.data())) {
    return 2;
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_gate [--flags] baseline.json current.json\n");
    flags.PrintUsage(argv[0]);
    return 2;
  }

  Options options;
  options.throughput_tolerance = flags.GetDouble("throughput_tolerance");
  options.error_sigmas = flags.GetDouble("error_sigmas");
  options.min_gate_seconds = flags.GetDouble("min_gate_seconds");
  options.latency_tolerance = flags.GetDouble("latency_tolerance");
  options.check_throughput = !flags.GetBool("no_throughput");
  options.check_errors = !flags.GetBool("no_errors");
  options.check_latency = !flags.GetBool("no_latency");
  options.force_throughput = flags.GetBool("force_throughput");

  // Load both reports first: unreadable/malformed/schema-invalid input is a
  // usage error (exit 2), distinct from a detected regression (exit 1).
  std::string error;
  const auto baseline = LoadReport(files[0], &error);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "bench_gate: %s\n", error.c_str());
    return 2;
  }
  const auto current = LoadReport(files[1], &error);
  if (!current.has_value()) {
    std::fprintf(stderr, "bench_gate: %s\n", error.c_str());
    return 2;
  }

  Result result = Compare(*baseline, *current, options);

  if (const std::string rules_path = flags.GetString("rules");
      !rules_path.empty()) {
    std::string declared_report;
    const auto rules = LoadRules(rules_path, &error, &declared_report);
    if (!rules.has_value()) {
      std::fprintf(stderr, "bench_gate: %s\n", error.c_str());
      return 2;
    }
    // A rules file written against a different benchmark series would miss
    // on every selector and misreport each rule as a coverage regression
    // (exit 1). The actual problem is a mismatched file pairing — a usage
    // error, so it gets its own diagnostic and exit 2.
    const std::string current_name =
        current->GetString("name").value_or("");
    if (!declared_report.empty() && declared_report != current_name) {
      std::fprintf(stderr,
                   "bench_gate: %s targets benchmark series '%s', which is "
                   "absent from the current report (named '%s'); pass the "
                   "matching BENCH_%s.json or the right rules file\n",
                   rules_path.c_str(), declared_report.c_str(),
                   current_name.c_str(), declared_report.c_str());
      return 2;
    }
    Result rule_result = CheckRules(*current, *rules);
    result.ok = result.ok && rule_result.ok;
    for (std::string& failure : rule_result.failures) {
      result.failures.push_back(std::move(failure));
    }
    for (std::string& note : rule_result.notes) {
      result.notes.push_back(std::move(note));
    }
  }

  for (const std::string& note : result.notes) {
    std::fprintf(stderr, "note: %s\n", note.c_str());
  }
  if (!result.ok) {
    for (const std::string& failure : result.failures) {
      std::fprintf(stderr, "FAIL: %s\n", failure.c_str());
    }
    std::fprintf(stderr, "bench_gate: %zu regression check(s) failed\n",
                 result.failures.size());
    return 1;
  }
  std::printf("bench_gate: %s vs %s OK\n", files[0].c_str(),
              files[1].c_str());
  return 0;
}

}  // namespace gate
}  // namespace sketchsample
