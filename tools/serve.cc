// lint:allow-file(raw-atomic-confined): signal-handler stop flag — a
// sig_atomic_t-style std::atomic<bool> flipped from a SIGINT handler; real
// OS signal delivery, nothing the model checker can interleave.
#include "tools/serve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/data/zipf.h"
#include "src/prng/xi.h"
#include "src/sketch/serialize.h"
#include "src/service/chaos.h"
#include "src/service/server.h"
#include "src/service/service.h"
#include "src/stream/checkpoint.h"
#include "src/stream/faults.h"
#include "src/stream/shed_controller.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "tools/cli.h"

namespace sketchsample {
namespace cli {
namespace {

// ---------------------------------------------------------------------------
// Shared flag surface: `serve` and `offline` accept the same engine
// configuration, which is what makes their outputs comparable bit for bit.
// ---------------------------------------------------------------------------

void DefineEngineFlags(Flags& flags) {
  flags.Define("buckets", "5000", "F-AGMS buckets per row");
  flags.Define("rows", "1", "F-AGMS rows");
  flags.Define("scheme", "eh3", "xi scheme");
  flags.Define("seed", "1", "sketch seed");
  flags.Define("shards", "1", "worker lanes of the ingest engine");
  flags.Define("shed-p", "1", "initial Bernoulli keep-probability");
  flags.Define("shed-seed", "7", "positional shed randomness seed");
  flags.Define("shed-budget", "0",
               "adaptive: kept-tuple budget per window (deterministic)");
  flags.Define("shed-target-tps", "0",
               "adaptive: wall-clock kept-tuples/sec target "
               "(nondeterministic; shed-budget takes precedence)");
  flags.Define("shed-window", "8192", "controller window in offered tuples");
  flags.Define("min-p", "0.05", "adaptive floor for the shed rate");
  flags.Define("distinct-k", "0",
               "auxiliary KMV distinct counter size (0 = disabled)");
  flags.Define("quantile-k", "0",
               "KLL quantile sketch parameter (0 = /query/quantile disabled)");
  flags.Define("subpop-k", "0",
               "keyed bottom-k subpopulation sketch size "
               "(0 = /query/subpop disabled)");
  flags.Define("snapshot-every", "8192",
               "publish a query snapshot every N routed tuples");
  flags.Define("checkpoint-every", "0",
               "checkpoint period in tuples (0 = off)");
  flags.Define("checkpoint-out", "", "checkpoint file (atomically replaced)");
  flags.Define("resume", "", "checkpoint file to restore before ingesting");
  flags.Define("fault-profile", "none", "none | mild | harsh");
  flags.Define("fault-seed", "0",
               "fault seed (0: SKETCHSAMPLE_FAULT_SEED env or 77)");
  flags.Define("max-tuples", "0",
               "stop ingesting after this many tuples (0 = run to close; "
               "simulates a mid-stream kill for checkpoint testing)");
  flags.Define("join-sketch", "",
               "serialized F-AGMS file for /query/join (same shape/seed)");
  flags.Define("moments-f", "",
               "exact pre-shed moments of the stream, 'F1,F2,F3,F4' "
               "(empty: plug-in estimates)");
  flags.Define("moments-g", "",
               "exact moments of the join reference stream, 'G1,G2,G3,G4'");
  flags.Define("level", "0.95", "default confidence level");
  flags.Define("freshness-lag", "0",
               "stamp answers degraded when the snapshot trails ingest by "
               "more than this many tuples (0 = unbounded)");
}

void DefineStreamFlags(Flags& flags) {
  flags.Define("in", "", "dataset file to feed (empty: no file feed)");
  flags.Define("tuples", "0", "zipf feed: number of tuples (0 = no zipf)");
  flags.Define("domain", "100000", "zipf feed: domain size");
  flags.Define("skew", "1.0", "zipf feed: coefficient");
  flags.Define("source-seed", "1", "zipf feed: source seed");
}

std::optional<StreamMoments> MomentsFromFlag(const Flags& flags,
                                             const std::string& name) {
  if (flags.GetString(name).empty()) return std::nullopt;
  const std::vector<double> values = flags.GetDoubleList(name);
  if (values.size() != 4) {
    throw std::runtime_error("--" + name + " needs exactly four moments");
  }
  return StreamMoments{values[0], values[1], values[2], values[3]};
}

// Everything whose address the engine holds must outlive the service, so
// the setup owns controller, checkpoint sink, and fault profile alongside
// the options that point at them.
struct ServiceSetup {
  std::optional<ShedController> controller;
  std::optional<FileCheckpointSink> checkpoint_sink;
  FaultProfile fault_profile;
  uint64_t fault_seed = 0;
  SketchServiceOptions options;
};

ServiceSetup BuildServiceSetup(const Flags& flags) {
  ServiceSetup setup;
  SketchServiceOptions& opts = setup.options;

  opts.sketch.rows = static_cast<size_t>(flags.GetInt("rows"));
  opts.sketch.buckets = static_cast<size_t>(flags.GetInt("buckets"));
  opts.sketch.scheme = XiSchemeFromName(flags.GetString("scheme"));
  opts.sketch.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  ShardEngineOptions& eopts = opts.engine;
  eopts.shards = static_cast<size_t>(flags.GetInt("shards"));
  eopts.shed_p = flags.GetDouble("shed-p");
  eopts.seed = static_cast<uint64_t>(flags.GetInt("shed-seed"));
  eopts.max_tuples = static_cast<uint64_t>(flags.GetInt("max-tuples"));
  eopts.distinct_k = static_cast<size_t>(flags.GetInt("distinct-k"));
  eopts.quantile_k = static_cast<size_t>(flags.GetInt("quantile-k"));
  eopts.subpop_k = static_cast<size_t>(flags.GetInt("subpop-k"));

  const double budget = flags.GetDouble("shed-budget");
  const double target_tps = flags.GetDouble("shed-target-tps");
  if (budget > 0.0 || target_tps > 0.0) {
    ShedControllerOptions copts;
    copts.initial_p = eopts.shed_p;
    copts.min_p = flags.GetDouble("min-p");
    copts.capacity_per_window = budget;
    copts.target_tps = target_tps;
    copts.window_tuples = static_cast<uint64_t>(flags.GetInt("shed-window"));
    setup.controller.emplace(copts);
    eopts.controller = &*setup.controller;
  }

  const std::string checkpoint_out = flags.GetString("checkpoint-out");
  const uint64_t checkpoint_every =
      static_cast<uint64_t>(flags.GetInt("checkpoint-every"));
  if (checkpoint_every > 0 && !checkpoint_out.empty()) {
    setup.checkpoint_sink.emplace(checkpoint_out);
    eopts.checkpoint_sink = &*setup.checkpoint_sink;
    eopts.checkpoint_every = checkpoint_every;
  }

  setup.fault_profile = FaultProfile::FromName(flags.GetString("fault-profile"));
  if (setup.fault_profile.Active()) {
    setup.fault_seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
    if (setup.fault_seed == 0) setup.fault_seed = FaultSeedFromEnv(77);
    eopts.fault_profile = &setup.fault_profile;
    eopts.fault_seed = setup.fault_seed;
  }

  opts.snapshot_every = static_cast<uint64_t>(flags.GetInt("snapshot-every"));
  opts.default_level = flags.GetDouble("level");
  opts.freshness_lag = static_cast<uint64_t>(flags.GetInt("freshness-lag"));
  const std::string join_sketch = flags.GetString("join-sketch");
  if (!join_sketch.empty()) opts.join_sketch = ReadBinaryFile(join_sketch);
  opts.moments_f = MomentsFromFlag(flags, "moments-f");
  opts.moments_g = MomentsFromFlag(flags, "moments-g");
  const std::string resume = flags.GetString("resume");
  if (!resume.empty()) opts.resume = ReadBinaryFile(resume);
  return setup;
}

std::vector<uint64_t> FeedValues(const Flags& flags) {
  if (!flags.GetString("in").empty()) {
    return ReadValuesFile(flags.GetString("in"));
  }
  const size_t tuples = static_cast<size_t>(flags.GetInt("tuples"));
  if (tuples == 0) return {};
  ZipfSampler sampler(static_cast<size_t>(flags.GetInt("domain")),
                      flags.GetDouble("skew"));
  Xoshiro256 rng(static_cast<uint64_t>(flags.GetInt("source-seed")));
  return sampler.Stream(tuples, rng);
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

std::atomic<bool> g_stop{false};

void StopSignalHandler(int) { g_stop.store(true, std::memory_order_relaxed); }

// Pushes `values` into the service, paced to `rate` tuples/sec (0 = full
// speed). Push blocks on backpressure, so an unpaced feed still cannot
// outrun the engine by more than the push buffer.
void FeedService(SketchService& service, const std::vector<uint64_t>& values,
                 double rate, bool close_after) {
  const auto start = std::chrono::steady_clock::now();
  size_t sent = 0;
  const size_t batch = 4096;
  while (sent < values.size() && !g_stop.load(std::memory_order_relaxed)) {
    const size_t n = std::min(batch, values.size() - sent);
    const size_t accepted = service.Push(values.data() + sent, n);
    sent += accepted;
    if (accepted < n) break;  // ingest closed under us
    if (rate > 0.0) {
      const auto due =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(static_cast<double>(sent) /
                                                    rate));
      std::this_thread::sleep_until(due);
    }
  }
  if (close_after) service.CloseIngest();
}

int RunServe(const Flags& flags) {
  ServiceSetup setup = BuildServiceSetup(flags);
  SketchService service(setup.options);

  Router router;
  service.Register(router);

  // Server-socket chaos for resilience drills: deterministic partial
  // reads/writes, resets, and delays injected under the given profile.
  std::optional<ScopedChaosInjector> chaos;
  const ChaosProfile chaos_profile =
      ChaosProfile::FromName(flags.GetString("chaos-profile"));
  if (chaos_profile.Active()) {
    uint64_t chaos_seed = static_cast<uint64_t>(flags.GetInt("chaos-seed"));
    if (chaos_seed == 0) chaos_seed = ChaosSeedFromEnv(77);
    chaos.emplace(chaos_profile, chaos_seed);
    std::fprintf(stderr, "serve: chaos profile %s seed %llu\n",
                 flags.GetString("chaos-profile").c_str(),
                 static_cast<unsigned long long>(chaos_seed));
  }

  HttpServerOptions sopts;
  sopts.bind_address = flags.GetString("bind");
  sopts.port = static_cast<int>(flags.GetInt("port"));
  sopts.max_connections = static_cast<size_t>(flags.GetInt("max-connections"));
  sopts.recv_timeout_ms = static_cast<int>(flags.GetInt("recv-timeout-ms"));
  sopts.default_deadline_ms = static_cast<int>(flags.GetInt("deadline-ms"));
  sopts.max_deadline_ms = static_cast<int>(flags.GetInt("max-deadline-ms"));
  if (sopts.max_connections > setup.options.max_readers) {
    // Reader slots must cover every live connection (slot == connection).
    sopts.max_connections = setup.options.max_readers;
  }
  std::optional<AdmissionController> admission;
  const int admission_capacity =
      static_cast<int>(flags.GetInt("admission-capacity"));
  if (admission_capacity > 0) {
    AdmissionOptions aopts;
    aopts.capacity = static_cast<size_t>(admission_capacity);
    aopts.window_requests =
        static_cast<uint64_t>(flags.GetInt("admission-window"));
    aopts.min_admit = flags.GetDouble("admission-min");
    admission.emplace(aopts);
    sopts.admission = &*admission;
  }
  HttpServer server(&router, sopts);
  server.Start();
  service.Start();

  const std::string port_file = flags.GetString("port-file");
  if (!port_file.empty()) {
    WriteValuesFile(port_file, {static_cast<uint64_t>(server.port())});
  }
  std::printf("listening on %s:%d\n", sopts.bind_address.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, StopSignalHandler);
  std::signal(SIGTERM, StopSignalHandler);
  std::signal(SIGPIPE, SIG_IGN);

  std::thread feeder;
  const std::vector<uint64_t> values = FeedValues(flags);
  if (!values.empty()) {
    const double rate = flags.GetDouble("ingest-rate");
    const bool close_after = flags.GetBool("close-after-feed");
    feeder = std::thread(
        [&service, &values, rate, close_after] {
          FeedService(service, values, rate, close_after);
        });
  }

  const double run_seconds = flags.GetDouble("run-seconds");
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(run_seconds));
  while (!g_stop.load(std::memory_order_relaxed)) {
    if (run_seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Orderly shutdown: stop accepting queries, close ingest, join feeder.
  server.Stop();
  g_stop.store(true, std::memory_order_relaxed);
  service.Stop();
  if (feeder.joinable()) feeder.join();

  const HttpServerStats stats = server.stats();
  std::fprintf(stderr,
               "serve: %llu requests, %llu connections (%llu rejected), "
               "%llu admission rejects, %llu deadline expiries, "
               "%llu parse errors, %llu tuples ingested\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.connections_rejected),
               static_cast<unsigned long long>(stats.admission_rejected),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               static_cast<unsigned long long>(stats.parse_errors),
               static_cast<unsigned long long>(service.pushed()));
  const std::string error = service.ingest_error();
  if (!error.empty()) {
    std::fprintf(stderr, "serve: ingest error: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int CmdServe(int argc, char** argv) {
  Flags flags;
  flags.Define("bind", "127.0.0.1", "listen address");
  flags.Define("port", "0", "listen port (0 = ephemeral)");
  flags.Define("port-file", "",
               "write the bound port here (for scripts using --port=0)");
  flags.Define("max-connections", "64", "live connection cap");
  flags.Define("recv-timeout-ms", "10000", "idle connection timeout");
  flags.Define("deadline-ms", "5000",
               "per-request wall-clock budget across read/compute/write "
               "(0 = no deadlines)");
  flags.Define("max-deadline-ms", "30000",
               "cap for the client X-Deadline-Ms header");
  flags.Define("admission-capacity", "0",
               "AIMD admission controller inflight budget (0 = disabled)");
  flags.Define("admission-window", "128",
               "admission controller window in offered requests");
  flags.Define("admission-min", "0.05", "admission rate floor");
  flags.Define("chaos-profile", "none",
               "server-socket fault injection: none | mild | harsh");
  flags.Define("chaos-seed", "0",
               "chaos seed (0: SKETCHSAMPLE_CHAOS_SEED env or 77)");
  flags.Define("ingest-rate", "0",
               "file/zipf feed pacing in tuples/sec (0 = full speed)");
  flags.Define("close-after-feed", "true",
               "close ingest when the file/zipf feed ends");
  flags.Define("run-seconds", "0", "exit after this long (0 = until signal)");
  DefineStreamFlags(flags);
  DefineEngineFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  return RunServe(flags);
}

// ---------------------------------------------------------------------------
// offline — the ground truth the service-smoke job diffs HTTP bodies
// against. Runs the identical SketchService (push source, shard engine,
// snapshot publication, response builders) without a server, then prints
// each endpoint's exact JSON body:
//
//   selfjoin {...}
//   join {...}            (with --join-sketch)
//   point:<key> {...}     (per --keys entry)
//   distinct {...}        (with --distinct-k > 0)
//   quantile:<q> {...}    (per --quantiles entry, with --quantile-k > 0)
//   subpop:<filter> {...} (per --subpop-filters entry, with --subpop-k > 0)
// ---------------------------------------------------------------------------

int CmdOffline(int argc, char** argv) {
  Flags flags;
  flags.Define("keys", "", "comma-separated keys for point-query lines");
  flags.Define("quantiles", "",
               "comma-separated ranks in [0, 1] for quantile-query lines");
  flags.Define("subpop-filters", "",
               "semicolon-separated kind:a-b filters for subpop-query lines");
  DefineStreamFlags(flags);
  DefineEngineFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;

  ServiceSetup setup = BuildServiceSetup(flags);
  SketchService service(setup.options);
  service.Start();

  const std::vector<uint64_t> values = FeedValues(flags);
  if (values.empty()) {
    std::fprintf(stderr, "offline: need --in or --tuples to feed\n");
    return 1;
  }
  size_t sent = 0;
  while (sent < values.size()) {
    sent += service.Push(values.data() + sent,
                         std::min<size_t>(4096, values.size() - sent));
  }
  service.CloseIngest();
  while (!service.ingest_done()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string error = service.ingest_error();
  if (!error.empty()) {
    std::fprintf(stderr, "offline: ingest error: %s\n", error.c_str());
    return 1;
  }

  auto guard = service.registry().Read(0);
  if (!guard) {
    std::fprintf(stderr, "offline: no snapshot published\n");
    return 1;
  }
  const double level = setup.options.default_level;
  // Same freshness context as the sealed online service: all pushed tuples
  // are covered by the final snapshot, so staleness is 0 and degraded is
  // false — matching bytes with online answers on the same state.
  QueryFreshness fresh;
  fresh.pushed = service.pushed();
  fresh.freshness_lag = setup.options.freshness_lag;
  std::printf("selfjoin %s\n",
              SelfJoinResponseJson(*guard, setup.options.moments_f, level,
                                   fresh)
                  .Dump()
                  .c_str());
  if (!setup.options.join_sketch.empty()) {
    const FagmsSketch reference =
        DeserializeFagms(setup.options.join_sketch);
    std::printf("join %s\n",
                JoinResponseJson(*guard, reference, setup.options.moments_f,
                                 setup.options.moments_g, level, fresh)
                    .Dump()
                    .c_str());
  }
  for (const int64_t key : flags.GetIntList("keys")) {
    std::printf("point:%llu %s\n", static_cast<unsigned long long>(key),
                PointResponseJson(*guard, static_cast<uint64_t>(key),
                                  setup.options.moments_f, level, fresh)
                    .Dump()
                    .c_str());
  }
  if (guard->distinct.has_value()) {
    std::printf("distinct %s\n",
                DistinctResponseJson(*guard, level, fresh).Dump().c_str());
  }
  const std::string quantiles = flags.GetString("quantiles");
  if (!quantiles.empty()) {
    if (!guard->quantile.has_value()) {
      std::fprintf(stderr, "offline: --quantiles needs --quantile-k > 0\n");
      return 1;
    }
    size_t start = 0;
    while (start < quantiles.size()) {
      const size_t comma = quantiles.find(',', start);
      const size_t end =
          comma == std::string::npos ? quantiles.size() : comma;
      const std::string token = quantiles.substr(start, end - start);
      char* parse_end = nullptr;
      const double q = std::strtod(token.c_str(), &parse_end);
      if (token.empty() || parse_end == nullptr || *parse_end != '\0' ||
          !std::isfinite(q) || q < 0.0 || q > 1.0) {
        std::fprintf(stderr,
                     "offline: --quantiles entry '%s' is not in [0, 1]\n",
                     token.c_str());
        return 1;
      }
      std::printf("quantile:%s %s\n", token.c_str(),
                  QuantileResponseJson(*guard, q, level, fresh).Dump().c_str());
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  const std::string filters = flags.GetString("subpop-filters");
  if (!filters.empty()) {
    if (!guard->subpop.has_value()) {
      std::fprintf(stderr, "offline: --subpop-filters needs --subpop-k > 0\n");
      return 1;
    }
    size_t start = 0;
    while (start < filters.size()) {
      const size_t semi = filters.find(';', start);
      const size_t end = semi == std::string::npos ? filters.size() : semi;
      const std::string token = filters.substr(start, end - start);
      SubpopPredicate pred;
      try {
        pred = ParseSubpopFilter(token);
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "offline: --subpop-filters entry '%s': %s\n",
                     token.c_str(), error.what());
        return 1;
      }
      std::printf(
          "subpop:%s %s\n", pred.ToString().c_str(),
          SubpopResponseJson(*guard, pred, level, fresh).Dump().c_str());
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  }
  return 0;
}

}  // namespace cli
}  // namespace sketchsample
