// bench_gate: CI regression gate over two BENCH_*.json reports.
//
//   bench_gate [flags] baseline.json current.json
//
// Exit codes: 0 = no regression, 1 = regression detected, 2 = usage or
// malformed input. See tools/gate.h for the comparison rules and
// docs/BENCHMARKS.md for how CI records baselines. The implementation
// lives in tools/bench_gate_main.cc so the exit-code contract is unit
// tested.
#include "tools/bench_gate_main.h"

int main(int argc, char** argv) {
  return sketchsample::gate::BenchGateMain(argc, argv);
}
