#!/usr/bin/env python3
"""Repo-specific invariant linter.

Enforces rules no generic static analyzer knows about — the contracts that
keep the estimator algebra reproducible and the batch kernels fast:

  forbidden-rng          Entropy-seeded or libc randomness (``rand``,
                         ``srand``, ``std::random_device``) is banned
                         everywhere: every experiment must be a
                         deterministic function of its master seed. Driver
                         randomness comes from src/util/rng.h, scheme
                         randomness from src/prng/.
  hot-path-std-function  ``std::function`` is banned in the per-tuple
                         layers (src/sketch, src/prng, src/sampling,
                         src/stream): type-erased dispatch on the update
                         path is exactly what the batched kernels removed.
                         Per-chunk uses carry an explicit waiver.
  batch-kernel-modulo    The hardware ``%`` operator is banned inside
                         ``*Batch`` kernel bodies; bucket reduction must go
                         through the Granlund-Montgomery mulhi path
                         (PairwiseHash::FastModBuckets) or bitmasks.
  mutator-metrics        Every public sketch mutator (``Update``,
                         ``UpdateBatch``, ``Merge``) defined in src/sketch,
                         every stream operator/source mutator
                         (``OnTuple``, ``OnTuples``, ``OnWindow``, ``Next``,
                         ``NextChunk``) defined in src/stream, and every
                         shard-engine entry point (``Run``, ``Restore``,
                         ``WriteCheckpoint``) defined in
                         src/stream/shard_engine must contain a
                         SKETCHSAMPLE_METRIC_* hook so production counters
                         never silently lose coverage.
  simd-intrinsics-confined  Raw ``<immintrin.h>`` includes and ``_mm*``/
                         ``__m256``/``__m512`` intrinsic tokens are allowed
                         only in the per-ISA kernel TUs
                         (``src/prng/simd/kernels_*.cc``); everything else
                         must go through the runtime-dispatched
                         ``simd::Kernels()`` table, which carries the cpuid
                         guard and the scalar bit-exactness contract.
  simd-scalar-twin       Every kernel slot a vector table registers with a
                         designated initializer must also be registered in
                         the scalar table (``kernels_scalar.cc``): the
                         scalar twin is the reference implementation the
                         dispatch tests compare against and the guaranteed
                         fallback on non-x86 hosts.
  direct-include         Library code (src/, tools/) that names a common
                         standard-library symbol must directly include its
                         canonical header instead of leaning on transitive
                         includes, which break silently under refactors.
  raw-atomic-confined    Raw ``std::atomic`` / ``std::memory_order`` tokens
                         are confined to the atomics-policy seam
                         (src/util/atomics_policy.h) and the metrics
                         counters (src/util/metrics.*). Everything else
                         writes against an atomics policy so the model
                         checker (src/mc/) can instantiate it — a raw
                         atomic elsewhere is concurrency the checker
                         cannot see. Harnesses that legitimately drive
                         real threads carry a file-level waiver.
  tsan-supp-rationale    Every suppression entry in tsan.supp must be
                         preceded by a ``# rationale:`` comment naming the
                         third-party component it silences. The file is
                         intentionally empty; suppressions must not creep
                         in silently.
  self-contained-header  Every first-party header must compile as its own
                         translation unit (include-what-you-use hygiene).

Waivers: append ``lint:allow(<rule>)`` in a comment on the offending line
(or the line directly above) together with a justification. Waivers are
for cold paths with a measured reason, not for convenience. A whole file
can be waived with ``lint:allow-file(<rule>)`` in a comment anywhere in
the file — reserved for rules whose unit of exemption really is the file
(e.g. a multi-threaded test harness under raw-atomic-confined).

Usage:
  tools/lint_invariants.py [--root DIR] [--no-headers] [--cxx BIN] [FILE...]

With FILE arguments, only those files are scanned (header rule still runs
only on listed headers). Exit codes: 0 clean, 1 violations, 2 internal
error. Adding a rule: write a ``check_*`` function returning a list of
Violation, register it in CHECKS, document it in docs/STATIC_ANALYSIS.md,
and add a self-test to tests/lint_invariants_test.py.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass

SCAN_DIRS = ("src", "tools", "bench", "tests", "examples")
CPP_SUFFIXES = (".h", ".cc")
WAIVER_RE = re.compile(r"lint:allow\(([a-z-]+(?:,\s*[a-z-]+)*)\)")
FILE_WAIVER_RE = re.compile(r"lint:allow-file\(([a-z-]+(?:,\s*[a-z-]+)*)\)")

# Directories whose code runs per tuple; std::function here is a hot-path
# dispatch bug unless explicitly waived.
HOT_PATH_DIRS = ("src/sketch", "src/prng", "src/sampling", "src/stream")

# The one place allowed to define driver randomness primitives.
RNG_HOME = "src/util/rng.h"


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Replaced characters become spaces (newlines survive), so regex line/column
    positions in the result map 1:1 onto the original file.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def waived(lines: list[str], lineno: int, rule: str) -> bool:
    """True when `rule` is waived on `lineno` or the line above (1-based)."""
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(lines):
            m = WAIVER_RE.search(lines[idx])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return True
    return False


def file_waived(text: str, rule: str) -> bool:
    """True when `rule` is waived for the whole file via lint:allow-file."""
    for m in FILE_WAIVER_RE.finditer(text):
        if rule in [r.strip() for r in m.group(1).split(",")]:
            return True
    return False


@dataclass
class SourceFile:
    path: str  # repo-relative, forward slashes
    root: str  # absolute repo root (for sibling-file lookups)
    text: str  # original contents
    code: str  # comments/strings blanked
    lines: list[str]  # original lines, for waiver lookup

    @classmethod
    def load(cls, root: str, rel: str) -> "SourceFile":
        with open(os.path.join(root, rel), encoding="utf-8") as fh:
            text = fh.read()
        return cls(
            path=rel,
            root=root,
            text=text,
            code=strip_comments_and_strings(text),
            lines=text.splitlines(),
        )


# --------------------------------------------------------------------------
# forbidden-rng
# --------------------------------------------------------------------------

FORBIDDEN_RNG = [
    # (pattern over comment-stripped code, human name)
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\brandom_device\b"), "random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd\s*::\s*s?rand\s*\("), "std::rand()/std::srand()"),
]


def check_forbidden_rng(f: SourceFile) -> list[Violation]:
    if f.path == RNG_HOME:
        return []
    found = []
    for pattern, name in FORBIDDEN_RNG:
        for m in pattern.finditer(f.code):
            lineno = line_of(f.code, m.start())
            if waived(f.lines, lineno, "forbidden-rng"):
                continue
            found.append(
                Violation(
                    f.path,
                    lineno,
                    "forbidden-rng",
                    f"{name} breaks seeded reproducibility; derive seeds via "
                    "MixSeed/Xoshiro256 (src/util/rng.h)",
                )
            )
    return found


# --------------------------------------------------------------------------
# hot-path-std-function
# --------------------------------------------------------------------------


def check_hot_path_std_function(f: SourceFile) -> list[Violation]:
    if not f.path.startswith(HOT_PATH_DIRS):
        return []
    found = []
    for m in re.finditer(r"\bstd\s*::\s*function\b", f.code):
        lineno = line_of(f.code, m.start())
        if waived(f.lines, lineno, "hot-path-std-function"):
            continue
        found.append(
            Violation(
                f.path,
                lineno,
                "hot-path-std-function",
                "std::function in a per-tuple layer; use a template "
                "parameter, virtual batch call, or waive with a per-chunk "
                "cost argument",
            )
        )
    return found


# --------------------------------------------------------------------------
# batch-kernel-modulo
# --------------------------------------------------------------------------

BATCH_DEF_RE = re.compile(r"\b(\w*Batch)\s*\(")


def _batch_kernel_bodies(code: str):
    """Yields (name, body_start, body_end) for *Batch function definitions.

    A match is a definition (not a call) when, after the balanced parameter
    list and any qualifiers (const/noexcept/override/...), the next
    significant character is '{'.
    """
    for m in BATCH_DEF_RE.finditer(code):
        pos = m.end() - 1  # at '('
        depth = 0
        n = len(code)
        while pos < n:
            if code[pos] == "(":
                depth += 1
            elif code[pos] == ")":
                depth -= 1
                if depth == 0:
                    break
            pos += 1
        if pos >= n:
            continue
        pos += 1
        # Skip qualifier tokens up to '{' or a terminator.
        while pos < n and code[pos] not in "{;,)=":
            pos += 1
        if pos >= n or code[pos] != "{":
            continue
        body_start = pos
        depth = 0
        while pos < n:
            if code[pos] == "{":
                depth += 1
            elif code[pos] == "}":
                depth -= 1
                if depth == 0:
                    yield m.group(1), body_start, pos
                    break
            pos += 1


MODULO_RE = re.compile(r"%(?![=%])|%=")


def check_batch_kernel_modulo(f: SourceFile) -> list[Violation]:
    if not f.path.startswith("src"):
        return []
    found = []
    for name, start, end in _batch_kernel_bodies(f.code):
        body = f.code[start:end]
        for m in MODULO_RE.finditer(body):
            lineno = line_of(f.code, start + m.start())
            if waived(f.lines, lineno, "batch-kernel-modulo"):
                continue
            found.append(
                Violation(
                    f.path,
                    lineno,
                    "batch-kernel-modulo",
                    f"hardware % inside batch kernel {name}(); use "
                    "PairwiseHash::FastModBuckets (mulhi magic) or a bitmask",
                )
            )
    return found


# --------------------------------------------------------------------------
# mutator-metrics
# --------------------------------------------------------------------------

# Per-directory mutator vocabularies. src/sketch mutates counters; the
# src/stream operator/source layer mutates per-tuple pipeline state (shed
# decisions, fault injection, controller windows) and must stay just as
# observable in production. The shard engine's entry points mutate the
# merged sketch and checkpoint/controller state across worker threads, so
# they carry the same obligation; its scope is listed first because prefix
# matching takes the first hit and src/stream would shadow it.
MUTATOR_SCOPES = (
    ("src/stream/shard_engine", "Run|Restore|WriteCheckpoint"),
    ("src/sketch", "Update|UpdateBatch|Merge"),
    ("src/stream", "OnTuples|OnTuple|OnWindow|NextChunk|Next"),
)


def check_mutator_metrics(f: SourceFile) -> list[Violation]:
    methods = next(
        (
            methods
            for prefix, methods in MUTATOR_SCOPES
            if f.path.startswith(prefix)
        ),
        None,
    )
    if methods is None or not f.path.endswith(".cc"):
        return []
    # The optional <T> matches member definitions of class templates
    # (ShardEngine<SketchT>::Run); nested template arguments are out of
    # scope for this regex and would need a balanced-angle-bracket walk.
    mutator_def_re = re.compile(r"\b(\w+(?:<\w+>)?)::(%s)\s*\(" % methods)
    forward_re = re.compile(r"\b(%s)\s*\(" % methods)
    found = []
    for m in mutator_def_re.finditer(f.code):
        cls, method = m.group(1), m.group(2)
        # Walk from the '(' to the body, mirroring _batch_kernel_bodies.
        pos = m.end() - 1
        depth = 0
        n = len(f.code)
        while pos < n:
            if f.code[pos] == "(":
                depth += 1
            elif f.code[pos] == ")":
                depth -= 1
                if depth == 0:
                    break
            pos += 1
        pos += 1
        while pos < n and f.code[pos] not in "{;,)=":
            pos += 1
        if pos >= n or f.code[pos] != "{":
            continue  # declaration, not definition
        body_start = pos
        depth = 0
        while pos < n:
            if f.code[pos] == "{":
                depth += 1
            elif f.code[pos] == "}":
                depth -= 1
                if depth == 0:
                    break
            pos += 1
        body = f.code[body_start:pos]
        lineno = line_of(f.code, m.start())
        if "SKETCHSAMPLE_METRIC" in body:
            continue
        # Thin forwarding wrappers (a body that just calls another public
        # mutator, e.g. Update -> UpdateBatch or Next -> NextChunk) inherit
        # the callee's hook.
        if forward_re.search(body):
            continue
        if waived(f.lines, lineno, "mutator-metrics"):
            continue
        found.append(
            Violation(
                f.path,
                lineno,
                "mutator-metrics",
                f"{cls}::{method}() has no SKETCHSAMPLE_METRIC_* hook; "
                "instrument it (see src/util/metrics.h) so production "
                "counters cover every mutation path",
            )
        )
    return found


# --------------------------------------------------------------------------
# direct-include
# --------------------------------------------------------------------------

# Curated high-precision map: symbol pattern -> canonical header. Only
# symbols whose home header is unambiguous are listed; the goal is catching
# transitive-include reliance, not reimplementing include-what-you-use.
DIRECT_INCLUDE_RULES = [
    (re.compile(r"\bstd\s*::\s*vector\b"), "vector"),
    (re.compile(r"\bstd\s*::\s*string\b"), "string"),
    (re.compile(r"\bstd\s*::\s*optional\b"), "optional"),
    (re.compile(r"\bstd\s*::\s*function\b"), "functional"),
    (re.compile(r"\bstd\s*::\s*(?:multi)?map\b"), "map"),
    (re.compile(r"\bstd\s*::\s*(?:multi)?set\b"), "set"),
    (re.compile(r"\bstd\s*::\s*unordered_map\b"), "unordered_map"),
    (re.compile(r"\bstd\s*::\s*unordered_set\b"), "unordered_set"),
    (re.compile(r"\bstd\s*::\s*(?:shared_ptr|unique_ptr|make_shared|make_unique|weak_ptr)\b"), "memory"),
    (re.compile(r"\bstd\s*::\s*atomic\b"), "atomic"),
    (re.compile(r"\bstd\s*::\s*(?:mutex|lock_guard|unique_lock|scoped_lock)\b"), "mutex"),
    (re.compile(r"\bstd\s*::\s*thread\b"), "thread"),
    (re.compile(r"\bstd\s*::\s*(?:sort|stable_sort|nth_element|min|max|clamp|fill|copy|shuffle|lower_bound|upper_bound|accumulate(?!\w))\b"), "algorithm"),
    (re.compile(r"\bstd\s*::\s*(?:sqrt|log|log2|exp|pow|fabs|isnan|isfinite|ceil|floor|lround|llround)\b"), "cmath"),
    (re.compile(r"\bstd\s*::\s*(?:move|forward|swap|pair|exchange)\b"), "utility"),
    (re.compile(r"\bstd\s*::\s*numeric_limits\b"), "limits"),
    (re.compile(r"\bstd\s*::\s*(?:ifstream|ofstream|fstream)\b"), "fstream"),
    (re.compile(r"\bstd\s*::\s*(?:stringstream|ostringstream|istringstream)\b"), "sstream"),
    (re.compile(r"\bstd\s*::\s*(?:invalid_argument|runtime_error|out_of_range|logic_error)\b"), "stdexcept"),
    (re.compile(r"\b(?:std\s*::\s*)?u?int(?:8|16|32|64)_t\b"), "cstdint"),
]

# std::accumulate actually lives in <numeric>; handled separately to keep
# the algorithm pattern simple.
ACCUMULATE_RE = re.compile(r"\bstd\s*::\s*(?:accumulate|iota|reduce)\b")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^>"]+)[>"]', re.MULTILINE)


def check_direct_include(f: SourceFile) -> list[Violation]:
    if not f.path.startswith(("src", "tools")):
        return []
    includes = set(INCLUDE_RE.findall(f.text))
    # A source file directly including its own header inherits that header's
    # includes as part of its interface contract; only same-named pairs get
    # this grace, everything else must include directly.
    own_header = f.path[:-3] + ".h" if f.path.endswith(".cc") else None
    inherited: set[str] = set()
    if own_header and own_header in includes:
        try:
            with open(
                os.path.join(f.root, own_header), encoding="utf-8"
            ) as fh:
                inherited = set(INCLUDE_RE.findall(fh.read()))
        except OSError:
            pass
    available = includes | inherited
    found = []
    rules = DIRECT_INCLUDE_RULES + [(ACCUMULATE_RE, "numeric")]
    for pattern, header in rules:
        if header in available:
            continue
        m = pattern.search(f.code)
        if m is None:
            continue
        lineno = line_of(f.code, m.start())
        if waived(f.lines, lineno, "direct-include"):
            continue
        found.append(
            Violation(
                f.path,
                lineno,
                "direct-include",
                f"uses {m.group(0)} without direct #include <{header}> "
                "(transitive includes break silently under refactors)",
            )
        )
    return found


# --------------------------------------------------------------------------
# simd-intrinsics-confined
# --------------------------------------------------------------------------

# The per-ISA kernel translation units — the only files allowed to touch raw
# vector intrinsics. Everything else (including dispatch.h/kernels.h, which
# must stay compilable without -m flags for the self-contained-header rule)
# goes through the simd::KernelTable function pointers.
SIMD_KERNEL_FILE_RE = re.compile(r"^src/prng/simd/kernels_[a-z0-9_]+\.cc$")

SIMD_INTRINSIC_TOKEN_RE = re.compile(
    r"\b__m(?:128|256|512)[id]?\b|\b_mm(?:256|512)?_\w+\s*\("
)


def check_simd_intrinsics_confined(f: SourceFile) -> list[Violation]:
    """Raw <immintrin.h> usage is confined to the per-ISA kernel TUs.

    Intrinsics scattered through the tree defeat the dispatch layer twice
    over: the code stops working on hosts without the ISA (no runtime cpuid
    guard), and the scalar-twin bit-exactness contract stops covering it.
    """
    if SIMD_KERNEL_FILE_RE.match(f.path):
        return []
    found = []
    for m in re.finditer(r'#\s*include\s*[<"](immintrin\.h|x86intrin\.h)[">]', f.code):
        lineno = line_of(f.code, m.start())
        if waived(f.lines, lineno, "simd-intrinsics-confined"):
            continue
        found.append(
            Violation(
                f.path,
                lineno,
                "simd-intrinsics-confined",
                f"includes <{m.group(1)}> outside src/prng/simd/kernels_*.cc; "
                "vector code must live in the dispatched kernel TUs",
            )
        )
    for m in SIMD_INTRINSIC_TOKEN_RE.finditer(f.code):
        lineno = line_of(f.code, m.start())
        if waived(f.lines, lineno, "simd-intrinsics-confined"):
            continue
        found.append(
            Violation(
                f.path,
                lineno,
                "simd-intrinsics-confined",
                f"raw vector intrinsic '{m.group(0).rstrip('(').strip()}' outside "
                "src/prng/simd/kernels_*.cc; go through simd::Kernels()",
            )
        )
    return found


# --------------------------------------------------------------------------
# simd-scalar-twin
# --------------------------------------------------------------------------

SIMD_SCALAR_TABLE = "src/prng/simd/kernels_scalar.cc"

# Designated-initializer fields of a KernelTable literal: `.field = value`.
KERNEL_TABLE_FIELD_RE = re.compile(r"^\s*\.([a-z0-9_]+)\s*=", re.MULTILINE)


def check_simd_scalar_twin(f: SourceFile) -> list[Violation]:
    """Every vector kernel slot must have a scalar twin in the scalar table.

    The dispatch contract (src/prng/simd/dispatch.h) promises that capping
    SKETCHSAMPLE_ISA=scalar reproduces any vector level bit-for-bit. That
    only holds if no vector table registers a kernel slot the scalar table
    does not: such a slot would have no reference implementation to test
    against and no fallback on non-x86 hosts. Table literals use designated
    initializers, so the slot sets are parsed syntactically.
    """
    if not SIMD_KERNEL_FILE_RE.match(f.path) or f.path == SIMD_SCALAR_TABLE:
        return []
    try:
        with open(os.path.join(f.root, SIMD_SCALAR_TABLE), encoding="utf-8") as fh:
            scalar_code = strip_comments_and_strings(fh.read())
    except OSError:
        return [
            Violation(
                f.path,
                1,
                "simd-scalar-twin",
                f"cannot read {SIMD_SCALAR_TABLE} to verify scalar twins",
            )
        ]
    scalar_fields = set(KERNEL_TABLE_FIELD_RE.findall(scalar_code))
    found = []
    for m in KERNEL_TABLE_FIELD_RE.finditer(f.code):
        field = m.group(1)
        if field in scalar_fields or field == "name":
            continue
        lineno = line_of(f.code, m.start(1))
        if waived(f.lines, lineno, "simd-scalar-twin"):
            continue
        found.append(
            Violation(
                f.path,
                lineno,
                "simd-scalar-twin",
                f"vector kernel slot '.{field}' has no scalar twin registered "
                f"in {SIMD_SCALAR_TABLE}; the scalar table is the reference "
                "semantics every ISA level is tested against",
            )
        )
    return found


# --------------------------------------------------------------------------
# raw-atomic-confined
# --------------------------------------------------------------------------

# The only files allowed to name std::atomic / std::memory_order directly:
# the atomics-policy seam itself, and the metrics counters (monotonic
# relaxed counters with no inter-thread protocol — nothing for the model
# checker to check).
RAW_ATOMIC_HOMES = (
    "src/util/atomics_policy.h",
    "src/util/metrics.h",
    "src/util/metrics.cc",
)

RAW_ATOMIC_RE = re.compile(r"\bstd\s*::\s*(atomic\w*|memory_order\w*)\b")


def check_raw_atomic_confined(f: SourceFile) -> list[Violation]:
    """Raw std::atomic use is confined to the atomics-policy seam.

    Concurrency primitives are written against an atomics policy
    (src/util/atomics_policy.h) so the model checker (src/mc/) can swap in
    instrumented atomics and exhaustively explore their interleavings. A
    raw std::atomic anywhere else is synchronization the checker cannot
    see — it gets neither interleaving coverage nor mutation testing.
    Multi-threaded test/bench harnesses that drive *real* threads around a
    checked primitive carry a file-level waiver with a rationale.
    """
    if f.path in RAW_ATOMIC_HOMES:
        return []
    if file_waived(f.text, "raw-atomic-confined"):
        return []
    found = []
    for m in RAW_ATOMIC_RE.finditer(f.code):
        lineno = line_of(f.code, m.start())
        if waived(f.lines, lineno, "raw-atomic-confined"):
            continue
        found.append(
            Violation(
                f.path,
                lineno,
                "raw-atomic-confined",
                f"raw std::{m.group(1)} outside the atomics-policy seam; "
                "write against a Policy template parameter "
                "(src/util/atomics_policy.h) so src/mc/ can model-check it, "
                "or add a file-level waiver with a rationale",
            )
        )
    return found


CHECKS = [
    check_forbidden_rng,
    check_hot_path_std_function,
    check_batch_kernel_modulo,
    check_mutator_metrics,
    check_direct_include,
    check_simd_intrinsics_confined,
    check_simd_scalar_twin,
    check_raw_atomic_confined,
]


# --------------------------------------------------------------------------
# tsan-supp-rationale
# --------------------------------------------------------------------------

TSAN_SUPP = "tsan.supp"


def check_tsan_supp_rationale(root: str) -> list[Violation]:
    """Every tsan.supp entry needs a '# rationale:' comment above it.

    The suppression file is intentionally empty: first-party races are bugs,
    not suppressions. If an entry ever appears (third-party library noise),
    it must be preceded — within its contiguous comment block — by a line
    starting '# rationale:' naming the component and why the race is benign
    or out of our control. This keeps suppressions from creeping in during
    a rushed CI fix.
    """
    path = os.path.join(root, TSAN_SUPP)
    if not os.path.isfile(path):
        return []
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    found = []
    has_rationale = False  # in the comment block immediately above
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            has_rationale = False
        elif line.startswith("#"):
            if line[1:].strip().lower().startswith("rationale:"):
                has_rationale = True
        else:
            if not has_rationale:
                found.append(
                    Violation(
                        TSAN_SUPP,
                        lineno,
                        "tsan-supp-rationale",
                        f"suppression entry '{line}' has no '# rationale:' "
                        "comment in the block above it; name the third-party "
                        "component and why the report is benign",
                    )
                )
            # One rationale covers the entries until the next blank line.
    return found


# --------------------------------------------------------------------------
# self-contained-header
# --------------------------------------------------------------------------


def check_headers(root: str, headers: list[str], cxx: str) -> list[Violation]:
    """Compiles each header as a standalone TU with -fsyntax-only."""
    found = []
    with tempfile.TemporaryDirectory(prefix="lint_hdr_") as tmp:
        tu = os.path.join(tmp, "tu.cc")
        for rel in headers:
            with open(tu, "w", encoding="utf-8") as fh:
                fh.write(f'#include "{rel}"\n')
            proc = subprocess.run(
                [
                    cxx,
                    "-std=c++20",
                    "-fsyntax-only",
                    "-Wall",
                    "-Wextra",
                    "-Werror",
                    f"-I{root}",
                    tu,
                ],
                capture_output=True,
                text=True,
                check=False,
            )
            if proc.returncode != 0:
                detail = proc.stderr.strip().splitlines()
                head = detail[0] if detail else "compile failed"
                found.append(
                    Violation(
                        rel,
                        1,
                        "self-contained-header",
                        f"header does not compile standalone: {head}",
                    )
                )
    return found


def collect_files(root: str) -> list[str]:
    files = []
    for base in SCAN_DIRS:
        top = os.path.join(root, base)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(CPP_SUFFIXES):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(rel.replace(os.sep, "/"))
    return sorted(files)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=None, help="repo root (default: this script's ../)"
    )
    parser.add_argument(
        "--no-headers",
        action="store_true",
        help="skip the self-contained-header compile check",
    )
    parser.add_argument(
        "--cxx",
        default=os.environ.get("CXX") or "c++",
        help="compiler for the header check (default: $CXX or c++)",
    )
    parser.add_argument(
        "files", nargs="*", help="restrict the scan to these repo-relative files"
    )
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    )

    scan_tsan_supp = True
    if args.files:
        files = [f.replace(os.sep, "/") for f in args.files]
        missing = [f for f in files if not os.path.isfile(os.path.join(root, f))]
        if missing:
            print(f"lint_invariants: no such file: {', '.join(missing)}", file=sys.stderr)
            return 2
        scan_tsan_supp = TSAN_SUPP in files
        files = [f for f in files if f.endswith(CPP_SUFFIXES)]
    else:
        files = collect_files(root)

    violations: list[Violation] = []
    if scan_tsan_supp:
        violations.extend(check_tsan_supp_rationale(root))
    for rel in files:
        try:
            src = SourceFile.load(root, rel)
        except (OSError, UnicodeDecodeError) as err:
            print(f"lint_invariants: cannot read {rel}: {err}", file=sys.stderr)
            return 2
        for check in CHECKS:
            violations.extend(check(src))

    if not args.no_headers:
        headers = [f for f in files if f.endswith(".h")]
        if shutil.which(args.cxx) is None:
            print(
                f"lint_invariants: compiler '{args.cxx}' not found; "
                "skipping self-contained-header check",
                file=sys.stderr,
            )
        else:
            violations.extend(check_headers(root, headers, args.cxx))

    for v in sorted(violations, key=lambda v: (v.path, v.line, v.rule)):
        print(v)
    if violations:
        print(
            f"lint_invariants: {len(violations)} violation(s) across "
            f"{len({v.path for v in violations})} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_invariants: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
