#!/usr/bin/env bash
# Runs clang-tidy over the project's compile database with the repo's
# curated .clang-tidy check set, treating every finding as an error
# (zero-warning policy — see docs/STATIC_ANALYSIS.md).
#
# Usage:
#   tools/run_tidy.sh [BUILD_DIR] [FILE...]
#
#   BUILD_DIR   directory holding compile_commands.json (default: build).
#               Configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
#   FILE...     restrict the run to these sources (incremental mode, used
#               by the per-PR CI job). Default: every first-party .cc in
#               the compile database.
#
# Environment:
#   CLANG_TIDY  clang-tidy binary (default: clang-tidy)
#   TIDY_JOBS   parallel jobs (default: nproc)
#   TIDY_LOG    when set, tee full diagnostics into this file (CI uploads
#               it as an artifact)
set -euo pipefail

build_dir="${1:-build}"
shift || true

clang_tidy="${CLANG_TIDY:-clang-tidy}"
jobs="${TIDY_JOBS:-$(nproc)}"
log="${TIDY_LOG:-}"

if ! command -v "$clang_tidy" >/dev/null 2>&1; then
  echo "run_tidy.sh: '$clang_tidy' not found (set CLANG_TIDY)" >&2
  exit 2
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy.sh: $build_dir/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# File list: explicit arguments (incremental mode), or every first-party
# translation unit in the compile database. Headers are covered through
# the TUs that include them via HeaderFilterRegex.
files=()
if [ "$#" -gt 0 ]; then
  for f in "$@"; do
    case "$f" in
      *.cc) files+=("$f") ;;
      *.h)  ;;  # headers are checked through including TUs
      *)    echo "run_tidy.sh: skipping non-C++ file $f" >&2 ;;
    esac
  done
  if [ "${#files[@]}" -eq 0 ]; then
    echo "run_tidy.sh: no .cc files to check"
    exit 0
  fi
else
  while IFS= read -r f; do
    files+=("$f")
  done < <(python3 - "$build_dir/compile_commands.json" <<'EOF'
import json, os, sys
root = os.getcwd()
for entry in json.load(open(sys.argv[1])):
    path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    rel = os.path.relpath(path, root)
    if not rel.startswith(".."):
        print(rel)
EOF
)
fi

echo "run_tidy.sh: checking ${#files[@]} file(s) with $clang_tidy ($jobs jobs)"

run() {
  printf '%s\0' "${files[@]}" |
    xargs -0 -n 1 -P "$jobs" \
      "$clang_tidy" -p "$build_dir" --quiet --warnings-as-errors='*'
}

status=0
if [ -n "$log" ]; then
  run 2>&1 | tee "$log" || status=$?
else
  run || status=$?
fi

if [ "$status" -ne 0 ]; then
  echo "run_tidy.sh: clang-tidy reported findings (zero-warning policy)" >&2
  exit 1
fi
echo "run_tidy.sh: clean"
