#!/usr/bin/env bash
# Runs clang-tidy over the project's compile database with the repo's
# curated .clang-tidy check set, treating every finding as an error
# (zero-warning policy — see docs/STATIC_ANALYSIS.md).
#
# Usage:
#   tools/run_tidy.sh [BUILD_DIR] [FILE...]
#
#   BUILD_DIR   directory holding compile_commands.json (default: build).
#               Configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
#   FILE...     restrict the run to these sources (incremental mode, used
#               by the per-PR CI job). Default: every first-party .cc in
#               the compile database.
#
# Environment:
#   CLANG_TIDY  clang-tidy binary (default: clang-tidy)
#   TIDY_JOBS   parallel jobs (default: nproc)
#   TIDY_LOG    when set, tee full diagnostics into this file (CI uploads
#               it as an artifact)
set -euo pipefail

build_dir="${1:-build}"
shift || true

clang_tidy="${CLANG_TIDY:-clang-tidy}"
jobs="${TIDY_JOBS:-$(nproc)}"
log="${TIDY_LOG:-}"

if ! command -v "$clang_tidy" >/dev/null 2>&1; then
  echo "run_tidy.sh: '$clang_tidy' not found (set CLANG_TIDY)" >&2
  exit 2
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy.sh: $build_dir/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# File list: explicit arguments (incremental mode), or every first-party
# translation unit in the compile database. Headers have no compile-database
# entry of their own, so a changed header is expanded to every TU that
# reaches it (transitively, via intermediate headers); HeaderFilterRegex
# then surfaces the header's own diagnostics from those TUs.
files=()
if [ "$#" -gt 0 ]; then
  # Incremental mode still always re-checks the lock-free concurrency
  # layer: the model checker plus the primitives refactored over the
  # atomics policy. These are the files the concurrency-* check family
  # exists for, they are small (cheap to re-tidy), and a change elsewhere
  # can alter which of their template instantiations exist.
  set -- "$@" \
    src/mc/explore.cc src/mc/fiber.cc src/mc/sched.cc src/mc/atomic.h \
    src/prng/simd/dispatch.cc \
    src/util/atomics_policy.h src/util/once_latch.h src/util/spsc_queue.h \
    src/service/snapshot.h
  headers=()
  for f in "$@"; do
    case "$f" in
      *.cc) files+=("$f") ;;
      *.h)  headers+=("$f") ;;
      *)    echo "run_tidy.sh: skipping non-C++ file $f" >&2 ;;
    esac
  done
  # BFS over includers: includes are repo-relative ("src/x/y.h"), so a
  # fixed-string grep finds every direct includer; headers found along the
  # way are queued so header-only include chains still reach a TU.
  seen_headers=" "
  while [ "${#headers[@]}" -gt 0 ]; do
    h="${headers[0]}"
    headers=("${headers[@]:1}")
    case "$seen_headers" in *" $h "*) continue ;; esac
    seen_headers="$seen_headers$h "
    includers="$(grep -rl --include='*.cc' --include='*.h' \
                   -F "#include \"$h\"" \
                   src tools bench tests examples 2>/dev/null || true)"
    if [ -z "$includers" ]; then
      echo "run_tidy.sh: warning: no TU includes $h; header not analyzed" >&2
      continue
    fi
    while IFS= read -r inc; do
      case "$inc" in
        *.cc) files+=("$inc") ;;
        *.h)  headers+=("$inc") ;;
      esac
    done <<<"$includers"
  done
  if [ "${#files[@]}" -eq 0 ]; then
    echo "run_tidy.sh: no .cc files to check"
    exit 0
  fi
  mapfile -t files < <(printf '%s\n' "${files[@]}" | sort -u)
else
  while IFS= read -r f; do
    files+=("$f")
  done < <(python3 - "$build_dir/compile_commands.json" <<'EOF'
import json, os, sys
root = os.getcwd()
for entry in json.load(open(sys.argv[1])):
    path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    rel = os.path.relpath(path, root)
    if not rel.startswith(".."):
        print(rel)
EOF
)
fi

echo "run_tidy.sh: checking ${#files[@]} file(s) with $clang_tidy ($jobs jobs)"

run() {
  printf '%s\0' "${files[@]}" |
    xargs -0 -n 1 -P "$jobs" \
      "$clang_tidy" -p "$build_dir" --quiet --warnings-as-errors='*'
}

status=0
if [ -n "$log" ]; then
  run 2>&1 | tee "$log" || status=$?
else
  run || status=$?
fi

if [ "$status" -ne 0 ]; then
  echo "run_tidy.sh: clang-tidy reported findings (zero-warning policy)" >&2
  exit 1
fi
echo "run_tidy.sh: clean"
