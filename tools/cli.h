// The `sketchsample` command-line tool: dataset generation, exact
// aggregates, sketch-over-sample estimation, and sketch file management
// from the shell. The entry point is exposed here (rather than living in
// main.cc) so the test suite can drive every subcommand in-process.
//
// Subcommands:
//   generate  — write a synthetic dataset (one value per line)
//   exact     — exact self-join / join of dataset files
//   estimate  — sketch-over-sample estimate of self-join / join
//   sketch    — build an F-AGMS sketch of a file and serialize it
//   combine   — estimate aggregates from serialized sketch files
//   stats     — per-file planner statistics (count, distinct, F2)
//   topk      — top-k most frequent values via Count-Sketch point queries
//   range     — range-frequency / quantile queries via a dyadic sketch
//   stream    — robust pipeline run: adaptive load shedding, fault
//               injection, checkpoint/resume, honest error bars
//   serve     — long-running HTTP query service over a live shard engine
//               (tools/serve.h; endpoints in docs/SERVICE.md)
//   offline   — the same engine + response builders without a server;
//               prints the exact JSON the service would return
//
// Run `sketchsample <subcommand> --help` for per-command flags.
#ifndef SKETCHSAMPLE_TOOLS_CLI_H_
#define SKETCHSAMPLE_TOOLS_CLI_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sketchsample {
namespace cli {

/// Reads a dataset file: one non-negative integer value per line; blank
/// lines and lines starting with '#' are skipped. Throws std::runtime_error
/// on unreadable files or malformed lines.
std::vector<uint64_t> ReadValuesFile(const std::string& path);

/// Writes a dataset file in the ReadValuesFile format.
void WriteValuesFile(const std::string& path,
                     const std::vector<uint64_t>& values);

/// Reads / writes raw binary files (serialized sketches).
std::vector<uint8_t> ReadBinaryFile(const std::string& path);
void WriteBinaryFile(const std::string& path,
                     const std::vector<uint8_t>& bytes);

/// Runs the tool; argv[1] selects the subcommand. Returns the process exit
/// code (0 on success). All output goes to stdout, errors to stderr.
int RunCli(int argc, char** argv);

}  // namespace cli
}  // namespace sketchsample

#endif  // SKETCHSAMPLE_TOOLS_CLI_H_
