#include "tools/gate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

namespace sketchsample {
namespace gate {

namespace {

/// Canonical point identity: sorted label key=value pairs.
std::string LabelKey(const JsonValue& point) {
  std::map<std::string, std::string> sorted;
  if (const JsonValue* labels = point.Get("labels");
      labels != nullptr && labels->is_object()) {
    for (const auto& [k, v] : labels->AsObject()) {
      sorted[k] = v.is_string() ? v.AsString() : v.Dump();
    }
  }
  std::string key;
  for (const auto& [k, v] : sorted) {
    key += k;
    key.push_back('=');
    key += v;
    key.push_back(';');
  }
  return key;
}

std::optional<double> PointMetric(const JsonValue& point,
                                  const std::string& name) {
  const JsonValue* metrics = point.Get("metrics");
  if (metrics == nullptr) return std::nullopt;
  return metrics->GetNumber(name);
}

std::string Describe(const std::string& report_name,
                     const std::string& label_key) {
  return report_name + " point {" +
         (label_key.empty() ? std::string("<unlabelled>") : label_key) + "}";
}

const char* const kThroughputKeys[] = {"updates_per_sec", "items_per_second"};

constexpr const char kLatencySuffix[] = "_latency_ns";

bool IsLatencyMetric(const std::string& name) {
  constexpr size_t suffix_len = sizeof(kLatencySuffix) - 1;
  return name.size() > suffix_len &&
         name.compare(name.size() - suffix_len, suffix_len, kLatencySuffix) ==
             0;
}

}  // namespace

std::optional<std::string> ValidateReport(const JsonValue& report) {
  if (!report.is_object()) return "report root is not a JSON object";
  const auto version = report.GetNumber("schema_version");
  if (!version.has_value()) return "missing numeric schema_version";
  if (*version != 1) {
    return "unsupported schema_version " + std::to_string(*version);
  }
  if (!report.GetString("name").has_value()) return "missing string name";
  const JsonValue* points = report.Get("points");
  if (points == nullptr || !points->is_array()) {
    return "missing points array";
  }
  for (size_t i = 0; i < points->AsArray().size(); ++i) {
    const JsonValue& point = points->AsArray()[i];
    if (!point.is_object()) {
      return "points[" + std::to_string(i) + "] is not an object";
    }
    const JsonValue* labels = point.Get("labels");
    if (labels == nullptr || !labels->is_object()) {
      return "points[" + std::to_string(i) + "] missing labels object";
    }
    const JsonValue* metrics = point.Get("metrics");
    if (metrics == nullptr || !metrics->is_object()) {
      return "points[" + std::to_string(i) + "] missing metrics object";
    }
    for (const auto& [k, v] : metrics->AsObject()) {
      if (!v.is_number()) {
        return "points[" + std::to_string(i) + "] metric '" + k +
               "' is not a number";
      }
    }
  }
  return std::nullopt;
}

std::optional<JsonValue> LoadReport(const std::string& path,
                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  if (!parsed.has_value()) {
    if (error != nullptr) *error = path + ": malformed JSON";
    return std::nullopt;
  }
  if (auto problem = ValidateReport(*parsed); problem.has_value()) {
    if (error != nullptr) *error = path + ": " + *problem;
    return std::nullopt;
  }
  return parsed;
}

Result Compare(const JsonValue& baseline, const JsonValue& current,
               const Options& options) {
  Result result;
  const std::string name = baseline.GetString("name").value_or("?");

  if (auto cur_name = current.GetString("name");
      cur_name.has_value() && *cur_name != name) {
    result.failures.push_back("report name mismatch: baseline '" + name +
                              "' vs current '" + *cur_name + "'");
  }

  const std::string base_host = baseline.GetString("host").value_or("unknown");
  const std::string cur_host = current.GetString("host").value_or("unknown");
  bool throughput_comparable = options.check_throughput;
  if (throughput_comparable && !options.force_throughput &&
      (base_host != cur_host || base_host == "unknown")) {
    throughput_comparable = false;
    result.notes.push_back(
        name + ": skipping throughput gate (baseline host '" + base_host +
        "' vs current host '" + cur_host +
        "'; wall-clock is machine-specific, use --force_throughput to gate "
        "anyway)");
  }
  // Latency shares throughput's host guard: nanosecond percentiles from a
  // different machine gate nothing (coverage is still checked below).
  bool latency_comparable = options.check_latency;
  if (latency_comparable && !options.force_throughput &&
      (base_host != cur_host || base_host == "unknown")) {
    latency_comparable = false;
    if (!options.check_throughput) {
      result.notes.push_back(name +
                             ": skipping latency gate (host mismatch '" +
                             base_host + "' vs '" + cur_host + "')");
    }
  }

  std::map<std::string, const JsonValue*> current_points;
  for (const JsonValue& point : current.Get("points")->AsArray()) {
    current_points[LabelKey(point)] = &point;
  }

  // Per-point wall-clock is noisy (fast-profile points run for
  // microseconds), so throughput gates on aggregates, not points:
  //   * Points carrying a "seconds" metric (the fig benches) contribute
  //     duration-weighted totals; the gate compares total-updates /
  //     total-seconds and only engages when the baseline measured at least
  //     `min_gate_seconds` of wall-clock overall — less than that is jitter,
  //     which gets a note instead of a verdict.
  //   * Points without "seconds" (google-benchmark micro points, each
  //     already measured for its own min-time) contribute to a geometric
  //     mean of per-point cur/base ratios.
  struct ThroughputAgg {
    double base_updates = 0, base_seconds = 0;
    double cur_updates = 0, cur_seconds = 0;
    double log_ratio_sum = 0;
    size_t weighted_points = 0;
    size_t geomean_points = 0;
    double worst_drop = 0;
    std::string worst_key;
  };
  std::map<std::string, ThroughputAgg> throughput;

  size_t matched = 0;
  for (const JsonValue& base_point : baseline.Get("points")->AsArray()) {
    const std::string key = LabelKey(base_point);
    const auto it = current_points.find(key);
    if (it == current_points.end()) {
      result.failures.push_back(Describe(name, key) +
                                " missing from current report");
      continue;
    }
    ++matched;
    const JsonValue& cur_point = *it->second;

    if (throughput_comparable) {
      for (const char* metric : kThroughputKeys) {
        const auto base = PointMetric(base_point, metric);
        const auto cur = PointMetric(cur_point, metric);
        if (!base.has_value() || !cur.has_value() || *base <= 0 || *cur <= 0) {
          continue;
        }
        ThroughputAgg& agg = throughput[metric];
        const auto base_sec = PointMetric(base_point, "seconds");
        const auto cur_sec = PointMetric(cur_point, "seconds");
        if (base_sec.has_value() && cur_sec.has_value() && *base_sec > 0 &&
            *cur_sec > 0) {
          agg.base_updates += *base * *base_sec;
          agg.base_seconds += *base_sec;
          agg.cur_updates += *cur * *cur_sec;
          agg.cur_seconds += *cur_sec;
          ++agg.weighted_points;
        } else {
          agg.log_ratio_sum += std::log(*cur / *base);
          ++agg.geomean_points;
        }
        const double drop = (*base - *cur) / *base;
        if (drop > agg.worst_drop) {
          agg.worst_drop = drop;
          agg.worst_key = key;
        }
      }
    }

    if (options.check_latency) {
      // Per-point, lower-is-better: percentiles come from thousands of
      // request samples, so unlike raw wall-clock throughput they are
      // stable enough to gate individually.
      const JsonValue* base_metrics = base_point.Get("metrics");
      for (const auto& [metric, value] : base_metrics->AsObject()) {
        if (!IsLatencyMetric(metric) || !value.is_number() ||
            value.AsNumber() <= 0) {
          continue;
        }
        const auto cur = PointMetric(cur_point, metric);
        if (!cur.has_value()) {
          result.failures.push_back(
              Describe(name, key) + " " + metric +
              " present in baseline but missing from current report "
              "(latency coverage regression)");
          continue;
        }
        if (!latency_comparable || *cur <= 0) continue;
        const double base_value = value.AsNumber();
        const double increase = (*cur - base_value) / base_value;
        if (increase > options.latency_tolerance) {
          char buf[200];
          std::snprintf(buf, sizeof(buf),
                        " %s worsened %.1f%%: %.6g -> %.6g ns "
                        "(tolerance %.0f%%)",
                        metric.c_str(), 100 * increase, base_value, *cur,
                        100 * options.latency_tolerance);
          result.failures.push_back(Describe(name, key) + buf);
        }
      }
    }

    if (options.check_errors) {
      const auto base_mean = PointMetric(base_point, "mean_rel_error");
      const auto cur_mean = PointMetric(cur_point, "mean_rel_error");
      if (base_mean.has_value() && !cur_mean.has_value()) {
        // A gated metric silently disappearing is a coverage regression:
        // without this check a bench that stops reporting accuracy would
        // pass the gate forever.
        result.failures.push_back(
            Describe(name, key) +
            " mean_rel_error present in baseline but missing from current "
            "report (accuracy coverage regression)");
      }
      if (base_mean.has_value() && cur_mean.has_value()) {
        const double base_se =
            PointMetric(base_point, "stderr_rel_error").value_or(0.0);
        const double cur_se =
            PointMetric(cur_point, "stderr_rel_error").value_or(0.0);
        const double noise =
            std::sqrt(base_se * base_se + cur_se * cur_se);
        const double bound = *base_mean + options.error_sigmas * noise +
                             options.error_abs_slack;
        if (*cur_mean > bound) {
          char buf[200];
          std::snprintf(
              buf, sizeof(buf),
              " mean_rel_error worsened beyond noise: %.6g -> %.6g "
              "(bound %.6g = base + %.1f*stderr)",
              *base_mean, *cur_mean, bound, options.error_sigmas);
          result.failures.push_back(Describe(name, key) + buf);
        }
      }
    }
  }

  for (const auto& [metric, agg] : throughput) {
    char buf[240];
    if (agg.weighted_points > 0) {
      if (agg.base_seconds < options.min_gate_seconds) {
        std::snprintf(buf, sizeof(buf),
                      "%s: %s not gated (baseline measured %.3gs total, "
                      "below the %.3gs floor; wall-clock jitter dominates)",
                      name.c_str(), metric.c_str(), agg.base_seconds,
                      options.min_gate_seconds);
        result.notes.push_back(buf);
      } else {
        const double base_rate = agg.base_updates / agg.base_seconds;
        const double cur_rate = agg.cur_updates / agg.cur_seconds;
        const double drop = (base_rate - cur_rate) / base_rate;
        if (drop > options.throughput_tolerance) {
          std::snprintf(
              buf, sizeof(buf),
              "%s: %s dropped %.1f%% (duration-weighted over %zu point(s), "
              "%.3g -> %.3g, tolerance %.0f%%; worst point {%s} -%.1f%%)",
              name.c_str(), metric.c_str(), 100 * drop, agg.weighted_points,
              base_rate, cur_rate, 100 * options.throughput_tolerance,
              agg.worst_key.c_str(), 100 * agg.worst_drop);
          result.failures.push_back(buf);
        }
      }
    }
    if (agg.geomean_points > 0) {
      const double geomean_ratio = std::exp(
          agg.log_ratio_sum / static_cast<double>(agg.geomean_points));
      const double drop = 1.0 - geomean_ratio;
      if (drop > options.throughput_tolerance) {
        std::snprintf(buf, sizeof(buf),
                      "%s: %s dropped %.1f%% (geomean over %zu point(s), "
                      "tolerance %.0f%%; worst point {%s} -%.1f%%)",
                      name.c_str(), metric.c_str(), 100 * drop,
                      agg.geomean_points, 100 * options.throughput_tolerance,
                      agg.worst_key.c_str(), 100 * agg.worst_drop);
        result.failures.push_back(buf);
      }
    }
  }

  if (current_points.size() > matched) {
    result.notes.push_back(
        name + ": current report has " +
        std::to_string(current_points.size() - matched) +
        " point(s) not present in the baseline (not gated)");
  }

  result.ok = result.failures.empty();
  return result;
}

namespace {

/// scalar < avx2 < avx512; -1 for unknown names (never satisfies a
/// requirement, so a typo in require_isa keeps the rule engaged and fails
/// loudly on the missing level instead of silently passing).
int IsaRank(const std::string& name) {
  if (name == "scalar") return 0;
  if (name == "avx2") return 1;
  if (name == "avx512") return 2;
  return -1;
}

std::string LabelsToString(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    if (out.size() > 1) out += ", ";
    out += k + "=" + v;
  }
  return out + "}";
}

/// The unique point whose labels contain every (key, value) pair in
/// `selector`. Returns nullptr (with *problem set) on zero or >1 matches.
const JsonValue* FindUniquePoint(
    const JsonValue& report,
    const std::vector<std::pair<std::string, std::string>>& selector,
    std::string* problem) {
  const JsonValue* found = nullptr;
  for (const JsonValue& point : report.Get("points")->AsArray()) {
    const JsonValue* labels = point.Get("labels");
    bool matches = true;
    for (const auto& [k, v] : selector) {
      const auto value = labels->GetString(k);
      if (!value.has_value() || *value != v) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;
    if (found != nullptr) {
      *problem = "matches multiple points";
      return nullptr;
    }
    found = &point;
  }
  if (found == nullptr) *problem = "matches no point";
  return found;
}

std::optional<std::string> ParseSelector(
    const JsonValue& rule, const char* field,
    std::vector<std::pair<std::string, std::string>>* out) {
  const JsonValue* selector = rule.Get(field);
  if (selector == nullptr || !selector->is_object()) {
    return std::string("missing ") + field + " labels object";
  }
  if (selector->AsObject().empty()) {
    return std::string(field) + " selector is empty";
  }
  for (const auto& [k, v] : selector->AsObject()) {
    if (!v.is_string()) {
      return std::string(field) + " label '" + k + "' is not a string";
    }
    out->emplace_back(k, v.AsString());
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> ValidateRules(const JsonValue& rules) {
  if (!rules.is_object()) return "rules root is not a JSON object";
  const auto version = rules.GetNumber("schema_version");
  if (!version.has_value()) return "missing numeric schema_version";
  if (*version != 1) {
    return "unsupported schema_version " + std::to_string(*version);
  }
  if (const JsonValue* report = rules.Get("report");
      report != nullptr && !report->is_string()) {
    return "report field is not a string";
  }
  const JsonValue* list = rules.Get("rules");
  if (list == nullptr || !list->is_array()) return "missing rules array";
  for (size_t i = 0; i < list->AsArray().size(); ++i) {
    const JsonValue& rule = list->AsArray()[i];
    const std::string where = "rules[" + std::to_string(i) + "] ";
    if (!rule.is_object()) return where + "is not an object";
    if (!rule.GetNumber("min_ratio").has_value()) {
      return where + "missing numeric min_ratio";
    }
    RatioRule parsed;
    if (auto problem = ParseSelector(rule, "numerator",
                                     &parsed.numerator_labels)) {
      return where + *problem;
    }
    if (auto problem = ParseSelector(rule, "denominator",
                                     &parsed.denominator_labels)) {
      return where + *problem;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<RatioRule>> LoadRules(const std::string& path,
                                                std::string* error,
                                                std::string* declared_report) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  if (!parsed.has_value()) {
    if (error != nullptr) *error = path + ": malformed JSON";
    return std::nullopt;
  }
  if (auto problem = ValidateRules(*parsed); problem.has_value()) {
    if (error != nullptr) *error = path + ": " + *problem;
    return std::nullopt;
  }
  if (declared_report != nullptr) {
    *declared_report = parsed->GetString("report").value_or("");
  }
  std::vector<RatioRule> rules;
  for (const JsonValue& rule : parsed->Get("rules")->AsArray()) {
    RatioRule out;
    out.description = rule.GetString("description").value_or("");
    out.metric = rule.GetString("metric").value_or("updates_per_sec");
    out.min_ratio = *rule.GetNumber("min_ratio");
    out.require_isa = rule.GetString("require_isa").value_or("");
    ParseSelector(rule, "numerator", &out.numerator_labels);
    ParseSelector(rule, "denominator", &out.denominator_labels);
    rules.push_back(std::move(out));
  }
  return rules;
}

Result CheckRules(const JsonValue& report,
                  const std::vector<RatioRule>& rules) {
  Result result;
  const std::string name = report.GetString("name").value_or("?");
  std::string report_isa = "scalar";
  if (const JsonValue* config = report.Get("config");
      config != nullptr && config->is_object()) {
    report_isa = config->GetString("isa").value_or("scalar");
  }

  for (const RatioRule& rule : rules) {
    const std::string what =
        name + " rule '" +
        (rule.description.empty() ? LabelsToString(rule.numerator_labels) + " / " +
                                        LabelsToString(rule.denominator_labels)
                                  : rule.description) +
        "'";
    if (!rule.require_isa.empty() &&
        IsaRank(report_isa) < IsaRank(rule.require_isa)) {
      result.notes.push_back(what + " skipped: requires ISA level '" +
                             rule.require_isa + "', report ran at '" +
                             report_isa + "'");
      continue;
    }
    std::string problem;
    const JsonValue* numerator =
        FindUniquePoint(report, rule.numerator_labels, &problem);
    if (numerator == nullptr) {
      result.failures.push_back(what + ": numerator " +
                                LabelsToString(rule.numerator_labels) + " " +
                                problem + " (coverage regression)");
      continue;
    }
    const JsonValue* denominator =
        FindUniquePoint(report, rule.denominator_labels, &problem);
    if (denominator == nullptr) {
      result.failures.push_back(what + ": denominator " +
                                LabelsToString(rule.denominator_labels) + " " +
                                problem + " (coverage regression)");
      continue;
    }
    const auto num = PointMetric(*numerator, rule.metric);
    const auto den = PointMetric(*denominator, rule.metric);
    if (!num.has_value() || !den.has_value() || *den <= 0 || *num <= 0) {
      result.failures.push_back(what + ": metric '" + rule.metric +
                                "' missing or non-positive in matched points");
      continue;
    }
    const double ratio = *num / *den;
    if (ratio < rule.min_ratio) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    ": ratio %.3f below required %.3f (%s %.6g vs %.6g)",
                    ratio, rule.min_ratio, rule.metric.c_str(), *num, *den);
      result.failures.push_back(what + buf);
    }
  }
  result.ok = result.failures.empty();
  return result;
}

Result GateFiles(const std::string& baseline_path,
                 const std::string& current_path, const Options& options) {
  Result result;
  std::string error;
  const auto baseline = LoadReport(baseline_path, &error);
  if (!baseline.has_value()) {
    result.ok = false;
    result.failures.push_back(error);
    return result;
  }
  const auto current = LoadReport(current_path, &error);
  if (!current.has_value()) {
    result.ok = false;
    result.failures.push_back(error);
    return result;
  }
  return Compare(*baseline, *current, options);
}

}  // namespace gate
}  // namespace sketchsample
