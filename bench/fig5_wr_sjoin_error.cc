// Figure 5 reproduction: size-of-join relative error vs the WITH-REPLACEMENT
// sample fraction (sample size / population size), one curve per Zipf skew.
//
// Expected shape: error decreases with the fraction and stabilizes around a
// fraction of ~0.1 — sketching more WR samples past that point buys nothing.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  bench::ExperimentConfig defaults;
  defaults.domain = 100000;
  defaults.tuples = 1000000;
  defaults.buckets = 5000;
  defaults.reps = 25;
  bench::DefineCommonFlags(flags, defaults, "fig5_wr_sjoin_error");
  flags.Define("fractions", "0.001,0.005,0.01,0.05,0.1,0.25,0.5,1",
               "sample size as a fraction of the population size");
  flags.Define("skews", "0.5,1,2", "Zipf coefficients (one curve each)");
  if (!flags.Parse(argc, argv)) return 1;
  const auto config = bench::ReadCommonFlags(flags);
  const auto fractions = flags.GetDoubleList("fractions");
  const auto skews = flags.GetDoubleList("skews");
  bench::BenchReport report = bench::MakeReport("fig5_wr_sjoin_error", config);

  std::printf(
      "Figure 5: size-of-join relative error vs WR sample fraction\n"
      "domain=%zu tuples=%llu buckets=%zu reps=%d\n\n",
      config.domain, static_cast<unsigned long long>(config.tuples),
      config.buckets, config.reps);

  std::vector<std::string> header = {"fraction"};
  for (double skew : skews) header.push_back("skew=" + FormatG(skew));
  TablePrinter table(header);

  // Pre-build the populations per skew.
  std::vector<std::vector<uint64_t>> streams_f, streams_g;
  std::vector<double> truths;
  for (double skew : skews) {
    const FrequencyVector f = ZipfMultinomialFrequencies(
        config.domain, config.tuples, skew, MixSeed(config.seed, 0xda7af));
    const FrequencyVector g = ZipfMultinomialFrequencies(
        config.domain, config.tuples, skew, MixSeed(config.seed, 0xda7a9));
    truths.push_back(ExactJoinSize(f, g));
    streams_f.push_back(f.ToTupleStream());
    streams_g.push_back(g.ToTupleStream());
  }

  for (double fraction : fractions) {
    std::vector<double> row = {fraction};
    for (size_t k = 0; k < skews.size(); ++k) {
      const uint64_t mf = std::max<uint64_t>(
          2, static_cast<uint64_t>(fraction *
                                   static_cast<double>(streams_f[k].size())));
      const uint64_t mg = std::max<uint64_t>(
          2, static_cast<uint64_t>(fraction *
                                   static_cast<double>(streams_g[k].size())));
      const bench::TimedTrials trials = bench::RunTrialsTimed(
          config.reps, truths[k], [&](int rep) {
            return bench::WrJoinTrial(
                streams_f[k], streams_g[k], mf, mg,
                bench::TrialSketchParams(config, rep),
                MixSeed(config.seed, 0xf5000 + rep));
          });
      row.push_back(trials.errors.mean_error);
      bench::AddErrorPoint(report, trials, static_cast<double>(mf + mg))
          .Label("fraction", fraction)
          .Label("skew", skews[k]);
    }
    table.AddRow(row);
  }
  table.Print();
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
