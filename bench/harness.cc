#include "bench/harness.h"

#include "src/core/corrections.h"
#include "src/core/sketch_estimators.h"
#include "src/core/sketch_over_sample.h"
#include "src/data/zipf.h"
#include "src/sampling/coefficients.h"
#include "src/sampling/with_replacement.h"
#include "src/sampling/without_replacement.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace sketchsample {
namespace bench {

void DefineCommonFlags(Flags& flags, const ExperimentConfig& defaults,
                       const std::string& bench_name) {
  if (!bench_name.empty()) DefineReportFlags(flags, bench_name);
  flags.Define("domain", std::to_string(defaults.domain),
               "join-attribute domain size |I|");
  flags.Define("tuples", std::to_string(defaults.tuples),
               "tuples per relation");
  flags.Define("buckets", std::to_string(defaults.buckets),
               "F-AGMS buckets per row");
  flags.Define("rows", std::to_string(defaults.rows), "F-AGMS rows");
  flags.Define("reps", std::to_string(defaults.reps),
               "independent trials per point");
  flags.Define("seed", std::to_string(defaults.seed), "master seed");
  flags.Define("scheme", defaults.scheme,
               "xi scheme: eh3|bch3|bch5|cw2|cw4|tabulation");
}

ExperimentConfig ReadCommonFlags(const Flags& flags) {
  ExperimentConfig c;
  c.domain = static_cast<size_t>(flags.GetInt("domain"));
  c.tuples = static_cast<uint64_t>(flags.GetInt("tuples"));
  c.buckets = static_cast<size_t>(flags.GetInt("buckets"));
  c.rows = static_cast<size_t>(flags.GetInt("rows"));
  c.reps = static_cast<int>(flags.GetInt("reps"));
  c.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  c.scheme = flags.GetString("scheme");
  ApplyMetricsFlag(flags);
  return c;
}

SketchParams TrialSketchParams(const ExperimentConfig& config, int rep) {
  SketchParams p;
  p.rows = config.rows;
  p.buckets = config.buckets;
  p.scheme = XiSchemeFromName(config.scheme);
  p.seed = MixSeed(config.seed, 0xbe11c000 + static_cast<uint64_t>(rep));
  return p;
}

ErrorSummary RunTrials(int reps, double truth,
                       const std::function<double(int)>& trial) {
  std::vector<double> estimates;
  estimates.reserve(reps);
  for (int rep = 0; rep < reps; ++rep) estimates.push_back(trial(rep));
  return SummarizeErrors(estimates, truth);
}

TimedTrials RunTrialsTimed(int reps, double truth,
                           const std::function<double(int)>& trial) {
  TimedTrials out;
  Timer timer;
  out.errors = RunTrials(reps, truth, trial);
  out.seconds = timer.ElapsedSeconds();
  return out;
}

BenchReport MakeReport(const std::string& bench_name,
                       const ExperimentConfig& config) {
  bench::BenchReport report(bench_name);
  report.SetConfig("domain", static_cast<double>(config.domain));
  report.SetConfig("tuples", static_cast<double>(config.tuples));
  report.SetConfig("buckets", static_cast<double>(config.buckets));
  report.SetConfig("rows", static_cast<double>(config.rows));
  report.SetConfig("reps", static_cast<double>(config.reps));
  report.SetConfig("seed", static_cast<double>(config.seed));
  report.SetConfig("scheme", config.scheme);
  return report;
}

BenchPoint& AddErrorPoint(BenchReport& report, const TimedTrials& trials,
                          double updates_per_trial) {
  BenchPoint& point = report.AddPoint();
  point.Errors(trials.errors);
  if (updates_per_trial > 0) {
    point.Throughput(updates_per_trial * trials.errors.trials, trials.seconds);
  } else if (trials.seconds > 0) {
    point.Metric("seconds", trials.seconds);
  }
  return point;
}

double BernoulliJoinTrial(const std::vector<uint64_t>& stream_f,
                          const std::vector<uint64_t>& stream_g, double p,
                          double q, const SketchParams& params,
                          uint64_t trial_seed) {
  BernoulliSketchEstimator<FagmsSketch> ef(p, params, MixSeed(trial_seed, 1));
  BernoulliSketchEstimator<FagmsSketch> eg(q, params, MixSeed(trial_seed, 2));
  ef.ProcessStreamWithSkips(stream_f);
  eg.ProcessStreamWithSkips(stream_g);
  return ef.EstimateJoin(eg);
}

double BernoulliSelfJoinTrial(const std::vector<uint64_t>& stream_f, double p,
                              const SketchParams& params,
                              uint64_t trial_seed) {
  BernoulliSketchEstimator<FagmsSketch> ef(p, params, MixSeed(trial_seed, 3));
  ef.ProcessStreamWithSkips(stream_f);
  return ef.EstimateSelfJoin();
}

double WrJoinTrial(const std::vector<uint64_t>& relation_f,
                   const std::vector<uint64_t>& relation_g,
                   uint64_t sample_f, uint64_t sample_g,
                   const SketchParams& params, uint64_t trial_seed) {
  Xoshiro256 rng(MixSeed(trial_seed, 4));
  SampledStreamEstimator<FagmsSketch> ef(SamplingScheme::kWithReplacement,
                                         relation_f.size(), params);
  SampledStreamEstimator<FagmsSketch> eg(SamplingScheme::kWithReplacement,
                                         relation_g.size(), params);
  ef.UpdateAll(SampleWithReplacement(relation_f, sample_f, rng));
  eg.UpdateAll(SampleWithReplacement(relation_g, sample_g, rng));
  return ef.EstimateJoin(eg);
}

double WrSelfJoinTrial(const std::vector<uint64_t>& relation_f,
                       uint64_t sample_size, const SketchParams& params,
                       uint64_t trial_seed) {
  Xoshiro256 rng(MixSeed(trial_seed, 5));
  SampledStreamEstimator<FagmsSketch> ef(SamplingScheme::kWithReplacement,
                                         relation_f.size(), params);
  ef.UpdateAll(SampleWithReplacement(relation_f, sample_size, rng));
  return ef.EstimateSelfJoin();
}

double WorJoinTrial(const std::vector<uint64_t>& relation_f,
                    const std::vector<uint64_t>& relation_g,
                    uint64_t sample_f, uint64_t sample_g,
                    const SketchParams& params, uint64_t trial_seed) {
  Xoshiro256 rng(MixSeed(trial_seed, 6));
  SampledStreamEstimator<FagmsSketch> ef(SamplingScheme::kWithoutReplacement,
                                         relation_f.size(), params);
  SampledStreamEstimator<FagmsSketch> eg(SamplingScheme::kWithoutReplacement,
                                         relation_g.size(), params);
  ef.UpdateAll(SampleWithoutReplacement(relation_f, sample_f, rng));
  eg.UpdateAll(SampleWithoutReplacement(relation_g, sample_g, rng));
  return ef.EstimateJoin(eg);
}

double WorSelfJoinTrial(const std::vector<uint64_t>& relation_f,
                        uint64_t sample_size, const SketchParams& params,
                        uint64_t trial_seed) {
  Xoshiro256 rng(MixSeed(trial_seed, 7));
  SampledStreamEstimator<FagmsSketch> ef(SamplingScheme::kWithoutReplacement,
                                         relation_f.size(), params);
  ef.UpdateAll(SampleWithoutReplacement(relation_f, sample_size, rng));
  return ef.EstimateSelfJoin();
}

}  // namespace bench
}  // namespace sketchsample
