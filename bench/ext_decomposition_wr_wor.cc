// Extension: the Figure 1/2 variance decompositions for WITH-REPLACEMENT
// and WITHOUT-REPLACEMENT sampling (the paper plots them only for
// Bernoulli). Size-of-join uses the closed forms (Eq 27/28 with the
// corrected coefficients); self-join uses the generic engine (the formulas
// the paper omits).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/core/decomposition.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  bench::ExperimentConfig defaults;
  defaults.domain = 100000;
  defaults.tuples = 1000000;
  defaults.buckets = 5000;
  bench::DefineCommonFlags(flags, defaults, "ext_decomposition_wr_wor");
  flags.Define("fractions", "0.01,0.1,0.5", "sample fractions");
  flags.Define("skews", "0,0.25,0.5,0.75,1,1.5,2,3,5", "Zipf coefficients");
  if (!flags.Parse(argc, argv)) return 1;
  const auto config = bench::ReadCommonFlags(flags);
  const auto fractions = flags.GetDoubleList("fractions");
  const auto skews = flags.GetDoubleList("skews");
  bench::BenchReport report = bench::MakeReport("ext_decomposition_wr_wor", config);

  std::printf(
      "Extension: WR/WOR variance decompositions (Figures 1-2 for the "
      "other sampling schemes)\n"
      "domain=%zu tuples=%llu n=%zu\n\n",
      config.domain, static_cast<unsigned long long>(config.tuples),
      config.buckets);

  for (const SamplingScheme scheme : {SamplingScheme::kWithReplacement,
                                      SamplingScheme::kWithoutReplacement}) {
    for (const bool self_join : {false, true}) {
      std::printf("%s %s\n", SamplingSchemeName(scheme),
                  self_join ? "SELF-JOIN" : "SIZE OF JOIN");
      for (double fraction : fractions) {
        std::printf("sample fraction = %g\n", fraction);
        TablePrinter table({"skew", "sampling%", "sketch%", "interaction%",
                            "total_variance"});
        for (double skew : skews) {
          const FrequencyVector f =
              ZipfFrequencies(config.domain, config.tuples, skew);
          SamplingSpec spec;
          spec.scheme = scheme;
          spec.sample_size_f = std::max<uint64_t>(
              2, static_cast<uint64_t>(
                     fraction * static_cast<double>(config.tuples)));
          spec.sample_size_g = spec.sample_size_f;
          const VarianceTerms v =
              self_join
                  ? CombinedSelfJoinVariance(spec, f, config.buckets)
                  : CombinedJoinVariance(spec, f, f, config.buckets);
          table.AddRow({skew, 100.0 * v.SamplingFraction(),
                        100.0 * v.SketchFraction(),
                        100.0 * v.InteractionFraction(), v.Total()});
          report.AddPoint()
              .Label("scheme", SamplingSchemeName(scheme))
              .Label("query", self_join ? "self_join" : "join")
              .Label("fraction", fraction)
              .Label("skew", skew)
              .Metric("sampling_fraction", v.SamplingFraction())
              .Metric("sketch_fraction", v.SketchFraction())
              .Metric("interaction_fraction", v.InteractionFraction())
              .Metric("total_variance", v.Total());
        }
        table.Print();
        std::printf("\n");
      }
    }
  }
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
