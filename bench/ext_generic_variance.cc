// E12 (extension): the WR/WOR SELF-JOIN variance decompositions the paper
// omits "due to lack of space", produced by the generic factorial-moment
// engine, with a Monte-Carlo validation column.
//
// For each sampling fraction and skew, the table reports the predicted
// standard deviation of the corrected sketch-over-sample self-join estimator
// (n averaged basic estimators) next to the standard deviation measured from
// real AGMS/CW4 pipeline runs. Prediction and measurement should agree
// within Monte-Carlo noise — this is the experiment that backs the novel
// formulas.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/core/corrections.h"
#include "src/core/generic_variance.h"
#include "src/core/sketch_estimators.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/sampling/coefficients.h"
#include "src/sampling/with_replacement.h"
#include "src/sampling/without_replacement.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  bench::DefineReportFlags(flags, "ext_generic_variance");
  flags.Define("domain", "100", "domain size (small: MC uses AGMS/CW4)");
  flags.Define("tuples", "2000", "tuples in the relation");
  flags.Define("rows", "8", "averaged AGMS basic estimators n");
  flags.Define("mc_trials", "1500", "Monte-Carlo trials per point");
  flags.Define("fractions", "0.05,0.1,0.25,0.5", "sample fractions");
  flags.Define("skews", "0,1,2", "Zipf coefficients");
  flags.Define("seed", "123", "master seed");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyMetricsFlag(flags);
  const size_t domain = flags.GetInt("domain");
  const uint64_t tuples = flags.GetInt("tuples");
  const size_t rows = flags.GetInt("rows");
  const int mc_trials = static_cast<int>(flags.GetInt("mc_trials"));
  const auto fractions = flags.GetDoubleList("fractions");
  const auto skews = flags.GetDoubleList("skews");
  const uint64_t seed = flags.GetInt("seed");
  bench::BenchReport report("ext_generic_variance");
  report.SetConfig("domain", static_cast<double>(domain));
  report.SetConfig("tuples", static_cast<double>(tuples));
  report.SetConfig("rows", static_cast<double>(rows));
  report.SetConfig("mc_trials", static_cast<double>(mc_trials));
  report.SetConfig("seed", static_cast<double>(seed));

  std::printf(
      "Extension E12: WR/WOR self-join variance (formulas omitted by the "
      "paper),\n"
      "generic-engine prediction vs Monte-Carlo measurement "
      "(AGMS, CW4, n=%zu, %d trials)\n"
      "domain=%zu tuples=%llu; values are std deviations of the corrected "
      "estimator\n\n",
      rows, mc_trials, domain, static_cast<unsigned long long>(tuples));

  for (const bool wr : {true, false}) {
    std::printf("%s self-join\n", wr ? "WITH-replacement" : "WITHOUT-replacement");
    TablePrinter table({"skew", "fraction", "predicted_sd", "measured_sd",
                        "ratio", "sampling%", "sketch+interaction%"});
    for (double skew : skews) {
      const FrequencyVector f = ZipfFrequencies(domain, tuples, skew);
      const auto stream = f.ToTupleStream();
      for (double fraction : fractions) {
        const uint64_t m = std::max<uint64_t>(
            2, static_cast<uint64_t>(fraction * static_cast<double>(tuples)));
        const auto coef = ComputeCoefficients(tuples, m);
        const Correction correction =
            wr ? WrSelfJoinCorrection(coef) : WorSelfJoinCorrection(coef);
        const auto model =
            wr ? FrequencyMomentModel::WithReplacement(f, m)
               : FrequencyMomentModel::WithoutReplacement(f, m);
        const auto gv = ComputeGenericSelfJoinVariance(
            model, correction.scale, correction.shift,
            /*random_shift=*/false);
        const double predicted_var = gv.VarianceAveraged(rows);

        RunningStats mc;
        for (int t = 0; t < mc_trials; ++t) {
          Xoshiro256 rng(MixSeed(seed, 0xe12000 + t));
          SketchParams params;
          params.rows = rows;
          params.scheme = XiScheme::kCw4;
          params.seed = MixSeed(seed, 0xe12f00 + t);
          const auto sample =
              wr ? SampleWithReplacement(stream, m, rng)
                 : SampleWithoutReplacement(stream, m, rng);
          mc.Add(correction.Apply(
              BuildAgmsSketch(sample, params).EstimateSelfJoin()));
        }
        const double measured_sd = mc.StdDev();
        const double predicted_sd = std::sqrt(predicted_var);
        const double total = gv.VarianceAveraged(rows);
        table.AddRow({skew, fraction, predicted_sd, measured_sd,
                      measured_sd / predicted_sd,
                      100.0 * gv.sampling_term / total,
                      100.0 * (gv.bracket / static_cast<double>(rows)) /
                          total});
        report.AddPoint()
            .Label("scheme", wr ? "wr" : "wor")
            .Label("skew", skew)
            .Label("fraction", fraction)
            .Metric("predicted_sd", predicted_sd)
            .Metric("measured_sd", measured_sd)
            .Metric("sd_ratio", measured_sd / predicted_sd);
      }
    }
    table.Print();
    std::printf("\n");
  }
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
