// Drop-in replacement for BENCHMARK_MAIN() that, in addition to the normal
// google-benchmark console output, captures every run and writes the
// BENCH_<name>.json report consumed by tools/bench_gate.
//
// Usage (instead of BENCHMARK_MAIN()):
//
//   SKETCHSAMPLE_BENCHMARK_MAIN("bench_update_throughput");
//
// The JSON path defaults to BENCH_<name>.json in the working directory and
// can be overridden (or disabled with an empty value) via --json_out=...;
// all other arguments pass through to google-benchmark untouched.
#ifndef SKETCHSAMPLE_BENCH_MICRO_MAIN_H_
#define SKETCHSAMPLE_BENCH_MICRO_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/prng/simd/dispatch.h"

namespace sketchsample {
namespace bench {

/// Console reporter that also records per-benchmark timing rows. Aggregate
/// rows (mean/median/stddev under --benchmark_repetitions) are excluded so
/// a report always contains one point per benchmark instance.
class CapturingConsoleReporter : public ::benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    std::string label;
    double ns_per_op = 0.0;
    double items_per_second = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Row row;
      row.name = run.benchmark_name();
      row.label = run.report_label;
      if (run.iterations > 0) {
        row.ns_per_op = run.real_accumulated_time /
                        static_cast<double>(run.iterations) * 1e9;
      }
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) row.items_per_second = it->second;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

inline int RunMicroBenchmarks(const std::string& bench_name, int argc,
                              char** argv) {
  std::string json_out = "BENCH_" + bench_name + ".json";
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    constexpr char kJsonOut[] = "--json_out=";
    if (std::strncmp(argv[i], kJsonOut, sizeof(kJsonOut) - 1) == 0) {
      json_out = argv[i] + sizeof(kJsonOut) - 1;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int passthrough_argc = static_cast<int>(passthrough.size());
  ::benchmark::Initialize(&passthrough_argc, passthrough.data());
  if (::benchmark::ReportUnrecognizedArguments(passthrough_argc,
                                               passthrough.data())) {
    return 1;
  }

  CapturingConsoleReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);

  BenchReport report(bench_name);
  // Stamp the dispatch level the run actually used (detected capability
  // capped by SKETCHSAMPLE_ISA): bench/rules/ ratio rules engage only when
  // the report's level reaches the rule's `require_isa`.
  report.SetConfig("isa",
                   simd::IsaLevelName(simd::ActiveIsaLevel()));
  for (const auto& row : reporter.rows()) {
    BenchPoint& point = report.AddPoint();
    point.Label("benchmark", row.name);
    if (!row.label.empty()) point.Label("label", row.label);
    point.Metric("ns_per_op", row.ns_per_op);
    if (row.items_per_second > 0) {
      // Gate key: updates_per_sec (same key the figure binaries emit).
      point.Metric("updates_per_sec", row.items_per_second);
      point.Metric("items_per_second", row.items_per_second);
    }
  }
  if (!report.WriteFile(json_out)) return 1;
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace sketchsample

#define SKETCHSAMPLE_BENCHMARK_MAIN(bench_name)                          \
  int main(int argc, char** argv) {                                      \
    return ::sketchsample::bench::RunMicroBenchmarks(bench_name, argc,   \
                                                     argv);              \
  }                                                                      \
  int main(int, char**)  // swallow the trailing semicolon

#endif  // SKETCHSAMPLE_BENCH_MICRO_MAIN_H_
