// Figure 7 reproduction: size-of-join relative error of
// lineitem ⋈_orderkey orders on TPC-H-lite data vs the WITHOUT-REPLACEMENT
// sampling rate (online-aggregation scan fraction).
//
// Expected shape (§VII-C/D): the error decreases to a minimum around a 10%
// sampling rate and then *increases* again as more data is sketched —
// the F-AGMS "extreme behavior": more sketched tuples mean more bucket
// contention, which widens the estimate spread once the sample already
// captures the distribution.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/data/frequency_vector.h"
#include "src/data/tpch_lite.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  bench::ExperimentConfig defaults;
  defaults.buckets = 1000;
  defaults.reps = 40;
  bench::DefineCommonFlags(flags, defaults, "fig7_wor_tpch_sjoin_error");
  flags.Define("scale_factor", "0.2",
               "TPC-H scale factor (1.0 = paper's SF-1: 1.5M orders)");
  flags.Define("rates", "0.01,0.02,0.05,0.1,0.2,0.4,0.6,0.8,1",
               "WOR sampling rates (scan fractions)");
  if (!flags.Parse(argc, argv)) return 1;
  const auto config = bench::ReadCommonFlags(flags);
  const double scale_factor = flags.GetDouble("scale_factor");
  const auto rates = flags.GetDoubleList("rates");
  bench::BenchReport report = bench::MakeReport("fig7_wor_tpch_sjoin_error", config);
  report.SetConfig("scale_factor", scale_factor);

  const TpchLiteData data = GenerateTpchLite(scale_factor, config.seed);
  const double truth = ExactJoinSize(data.lineitem_freq, data.orders_freq);

  std::printf(
      "Figure 7: |lineitem JOIN orders| relative error vs WOR sampling "
      "rate (TPC-H-lite)\n"
      "scale_factor=%g orders=%zu lineitems=%zu buckets=%zu reps=%d "
      "true_join=%.0f\n\n",
      scale_factor, data.orders.size(), data.lineitem.size(), config.buckets,
      config.reps, truth);

  TablePrinter table({"rate", "mean_error", "median_error", "p90_error"});
  for (double rate : rates) {
    const uint64_t ml = std::max<uint64_t>(
        2,
        static_cast<uint64_t>(rate *
                              static_cast<double>(data.lineitem.size())));
    const uint64_t mo = std::max<uint64_t>(
        2,
        static_cast<uint64_t>(rate * static_cast<double>(data.orders.size())));
    const bench::TimedTrials trials = bench::RunTrialsTimed(
        config.reps, truth, [&](int rep) {
          return bench::WorJoinTrial(data.lineitem, data.orders, ml, mo,
                                     bench::TrialSketchParams(config, rep),
                                     MixSeed(config.seed, 0xf7000 + rep));
        });
    const ErrorSummary& summary = trials.errors;
    table.AddRow(
        {rate, summary.mean_error, summary.median_error, summary.p90_error});
    bench::AddErrorPoint(report, trials, static_cast<double>(ml + mo))
        .Label("rate", rate);
  }
  table.Print();
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
