// E10: sketch-family ablation at equal space (the ref [4] comparison that
// motivates the paper's choice of F-AGMS for all experiments).
//
// Compares AGMS (n basic estimators), F-AGMS (1 row × n buckets), Count-Min
// (rows × buckets at the same total counters), and FastCount on self-join
// and join accuracy across skew. Expected shape: F-AGMS dominates across
// skews (especially high skew); Count-Min collapses at low skew (its
// additive overestimate is huge for flat distributions); AGMS is accurate
// but orders of magnitude slower per update (see bench_update_throughput).
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/sketch/agms.h"
#include "src/sketch/countmin.h"
#include "src/sketch/fagms.h"
#include "src/sketch/fastcount.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

template <typename SketchT>
SketchT Build(const std::vector<uint64_t>& stream, const SketchParams& p) {
  SketchT sketch(p);
  for (uint64_t v : stream) sketch.Update(v);
  return sketch;
}

int Main(int argc, char** argv) {
  Flags flags;
  bench::ExperimentConfig defaults;
  defaults.domain = 50000;
  defaults.tuples = 200000;
  defaults.buckets = 1024;  // total space budget per sketch (counters)
  defaults.reps = 15;
  bench::DefineCommonFlags(flags, defaults, "bench_sketch_ablation");
  flags.Define("skews", "0,0.5,1,1.5,2,3", "Zipf coefficients");
  flags.Define("agms_rows", "64",
               "basic AGMS estimators (kept smaller: updates are O(rows))");
  if (!flags.Parse(argc, argv)) return 1;
  const auto config = bench::ReadCommonFlags(flags);
  const auto skews = flags.GetDoubleList("skews");
  const size_t agms_rows = static_cast<size_t>(flags.GetInt("agms_rows"));
  bench::BenchReport report = bench::MakeReport("bench_sketch_ablation", config);
  report.SetConfig("agms_rows", static_cast<double>(agms_rows));

  std::printf(
      "Sketch ablation: mean relative error at equal space "
      "(%zu counters; AGMS uses %zu estimators)\n"
      "domain=%zu tuples=%llu reps=%d\n\n",
      config.buckets, agms_rows, config.domain,
      static_cast<unsigned long long>(config.tuples), config.reps);

  for (const bool self_join : {true, false}) {
    std::printf("%s\n", self_join ? "SELF-JOIN SIZE" : "SIZE OF JOIN");
    TablePrinter table({"skew", "AGMS", "F-AGMS", "CountMin", "FastCount"});
    for (double skew : skews) {
      const FrequencyVector f = ZipfMultinomialFrequencies(
          config.domain, config.tuples, skew, MixSeed(config.seed, 0xda7af));
      const FrequencyVector g = ZipfMultinomialFrequencies(
          config.domain, config.tuples, skew, MixSeed(config.seed, 0xda7a9));
      const double truth =
          self_join ? ExactSelfJoinSize(f) : ExactJoinSize(f, g);
      const auto sf = f.ToTupleStream();
      const auto sg = g.ToTupleStream();

      auto run = [&](auto maker, const SketchParams& params,
                     const char* sketch_name) {
        const bench::TimedTrials trials = bench::RunTrialsTimed(
            config.reps, truth, [&](int rep) {
              SketchParams p = params;
              p.seed = MixSeed(config.seed, 0xab1a + rep);
              return maker(p);
            });
        const double updates_per_trial = static_cast<double>(
            self_join ? sf.size() : sf.size() + sg.size());
        bench::AddErrorPoint(report, trials, updates_per_trial)
            .Label("query", self_join ? "self_join" : "join")
            .Label("sketch", sketch_name)
            .Label("skew", skew);
        return trials.errors.mean_error;
      };

      SketchParams agms;
      agms.rows = agms_rows;
      agms.scheme = XiScheme::kEh3;
      const double agms_err = run(
          [&](const SketchParams& p) {
            auto a = Build<AgmsSketch>(sf, p);
            if (self_join) return a.EstimateSelfJoin();
            auto b = Build<AgmsSketch>(sg, p);
            return a.EstimateJoin(b);
          },
          agms, "agms");

      SketchParams hashed;
      hashed.rows = 1;
      hashed.buckets = config.buckets;
      hashed.scheme = XiScheme::kEh3;
      const double fagms_err = run(
          [&](const SketchParams& p) {
            auto a = Build<FagmsSketch>(sf, p);
            if (self_join) return a.EstimateSelfJoin();
            auto b = Build<FagmsSketch>(sg, p);
            return a.EstimateJoin(b);
          },
          hashed, "fagms");

      SketchParams cm;
      cm.rows = 4;
      cm.buckets = config.buckets / 4;  // same total counters
      const double cm_err = run(
          [&](const SketchParams& p) {
            auto a = Build<CountMinSketch>(sf, p);
            if (self_join) return a.EstimateSelfJoin();
            auto b = Build<CountMinSketch>(sg, p);
            return a.EstimateJoin(b);
          },
          cm, "countmin");

      SketchParams fc;
      fc.rows = 1;
      fc.buckets = config.buckets;
      const double fc_err = run(
          [&](const SketchParams& p) {
            auto a = Build<FastCountSketch>(sf, p);
            if (self_join) return a.EstimateSelfJoin();
            auto b = Build<FastCountSketch>(sg, p);
            return a.EstimateJoin(b);
          },
          fc, "fastcount");

      table.AddRow({skew, agms_err, fagms_err, cm_err, fc_err});
    }
    table.Print();
    std::printf("\n");
  }
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
