// Update-cost micro-benchmarks for the auxiliary structures: KMV distinct
// counting, dyadic range sketches, tumbling windows, and heavy-hitter
// extraction. These quantify what an online-aggregation engine pays to
// collect planner statistics during a scan (§VI-C "with little
// computational overhead").
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/micro_main.h"
#include "src/data/zipf.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/heavy_hitters.h"
#include "src/sketch/kmv.h"
#include "src/stream/window.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

constexpr size_t kDomain = 1 << 16;
constexpr size_t kStream = 1 << 16;

const std::vector<uint64_t>& Stream() {
  static const std::vector<uint64_t> stream = [] {
    ZipfSampler sampler(kDomain, 1.0);
    Xoshiro256 rng(3);
    return sampler.Stream(kStream, rng);
  }();
  return stream;
}

SketchParams Params() {
  SketchParams p;
  p.rows = 1;
  p.buckets = 4096;
  p.scheme = XiScheme::kEh3;
  p.seed = 5;
  return p;
}

void BM_KmvUpdate(benchmark::State& state) {
  KmvSketch sketch(static_cast<size_t>(state.range(0)), 7);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Stream()[i]);
    i = (i + 1) % Stream().size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KmvUpdate)->Arg(256)->Arg(4096);

void BM_DyadicUpdate(benchmark::State& state) {
  DyadicRangeSketch sketch(static_cast<int>(state.range(0)), Params());
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Stream()[i]);
    i = (i + 1) % Stream().size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DyadicUpdate)->Arg(16)->Arg(32);

void BM_DyadicRangeQuery(benchmark::State& state) {
  DyadicRangeSketch sketch(16, Params());
  for (uint64_t key : Stream()) sketch.Update(key);
  Xoshiro256 rng(9);
  double sink = 0;
  for (auto _ : state) {
    const uint64_t lo = rng.NextBounded(kDomain / 2);
    sink += sketch.EstimateRange(lo, lo + kDomain / 4);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DyadicRangeQuery);

void BM_TumblingWindowUpdate(benchmark::State& state) {
  TumblingWindowSketch window(/*window_size=*/8192,
                              static_cast<size_t>(state.range(0)), Params());
  size_t i = 0;
  for (auto _ : state) {
    window.Update(Stream()[i]);
    i = (i + 1) % Stream().size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TumblingWindowUpdate)->Arg(2)->Arg(8);

void BM_TopKExtraction(benchmark::State& state) {
  SketchParams p = Params();
  p.rows = 5;
  FagmsSketch sketch(p);
  for (uint64_t key : Stream()) sketch.Update(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopKFrequent(sketch, kDomain, 100));
  }
  state.SetItemsProcessed(state.iterations() * kDomain);
}
BENCHMARK(BM_TopKExtraction);

}  // namespace
}  // namespace sketchsample

SKETCHSAMPLE_BENCHMARK_MAIN("bench_structures");
