// Figure 4 reproduction: empirical relative error of the sketch-over-
// Bernoulli-sample SELF-JOIN estimator vs Zipf skew, one curve per sampling
// probability.
//
// Expected shape: flat in p for skew < ~1; at high skew small p hurts
// (sampling variance dominates F2 for skewed data — Fig 2's prediction).
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  bench::ExperimentConfig defaults;
  defaults.domain = 100000;
  defaults.tuples = 1000000;
  defaults.buckets = 5000;
  defaults.reps = 25;
  bench::DefineCommonFlags(flags, defaults, "fig4_bernoulli_selfjoin_error");
  flags.Define("ps", "0.001,0.01,0.1,1", "Bernoulli probabilities");
  flags.Define("skews", "0,0.5,1,1.5,2,2.5,3,3.5,4,4.5,5",
               "Zipf coefficients");
  if (!flags.Parse(argc, argv)) return 1;
  const auto config = bench::ReadCommonFlags(flags);
  const auto ps = flags.GetDoubleList("ps");
  const auto skews = flags.GetDoubleList("skews");
  bench::BenchReport report =
      bench::MakeReport("fig4_bernoulli_selfjoin_error", config);

  std::printf(
      "Figure 4: self-join size relative error vs skew (Bernoulli "
      "sampling)\n"
      "domain=%zu tuples=%llu buckets=%zu reps=%d\n"
      "columns: mean relative error at each sampling probability\n\n",
      config.domain, static_cast<unsigned long long>(config.tuples),
      config.buckets, config.reps);

  std::vector<std::string> header = {"skew"};
  for (double p : ps) header.push_back("p=" + FormatG(p));
  TablePrinter table(header);

  for (double skew : skews) {
    const FrequencyVector f = ZipfMultinomialFrequencies(
        config.domain, config.tuples, skew, MixSeed(config.seed, 0xda7af));
    const double truth = ExactSelfJoinSize(f);
    const auto stream_f = f.ToTupleStream();

    std::vector<double> row = {skew};
    for (double p : ps) {
      const bench::TimedTrials trials = bench::RunTrialsTimed(
          config.reps, truth, [&](int rep) {
            return bench::BernoulliSelfJoinTrial(
                stream_f, p, bench::TrialSketchParams(config, rep),
                MixSeed(config.seed, 0xf4000 + rep));
          });
      row.push_back(trials.errors.mean_error);
      bench::AddErrorPoint(report, trials,
                           static_cast<double>(stream_f.size()))
          .Label("skew", skew)
          .Label("p", p);
    }
    table.AddRow(row);
  }
  table.Print();
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
