// Figure 8 reproduction: second frequency moment of lineitem.l_orderkey on
// TPC-H-lite data vs the WOR sampling rate.
//
// Expected shape (§VII-C): error decreases with the sampling rate and
// stabilizes for rates above ~10%.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/data/frequency_vector.h"
#include "src/data/tpch_lite.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  bench::ExperimentConfig defaults;
  defaults.buckets = 1000;
  defaults.reps = 40;
  bench::DefineCommonFlags(flags, defaults, "fig8_wor_tpch_selfjoin_error");
  flags.Define("scale_factor", "0.2",
               "TPC-H scale factor (1.0 = paper's SF-1)");
  flags.Define("rates", "0.01,0.02,0.05,0.1,0.2,0.4,0.6,0.8,1",
               "WOR sampling rates (scan fractions)");
  if (!flags.Parse(argc, argv)) return 1;
  const auto config = bench::ReadCommonFlags(flags);
  const double scale_factor = flags.GetDouble("scale_factor");
  const auto rates = flags.GetDoubleList("rates");
  bench::BenchReport report =
      bench::MakeReport("fig8_wor_tpch_selfjoin_error", config);
  report.SetConfig("scale_factor", scale_factor);

  const TpchLiteData data = GenerateTpchLite(scale_factor, config.seed);
  const double truth = ExactSelfJoinSize(data.lineitem_freq);

  std::printf(
      "Figure 8: F2(lineitem.l_orderkey) relative error vs WOR sampling "
      "rate (TPC-H-lite)\n"
      "scale_factor=%g lineitems=%zu buckets=%zu reps=%d true_f2=%.0f\n\n",
      scale_factor, data.lineitem.size(), config.buckets, config.reps,
      truth);

  TablePrinter table({"rate", "mean_error", "median_error", "p90_error"});
  for (double rate : rates) {
    const uint64_t m = std::max<uint64_t>(
        2,
        static_cast<uint64_t>(rate *
                              static_cast<double>(data.lineitem.size())));
    const bench::TimedTrials trials = bench::RunTrialsTimed(
        config.reps, truth, [&](int rep) {
          return bench::WorSelfJoinTrial(
              data.lineitem, m, bench::TrialSketchParams(config, rep),
              MixSeed(config.seed, 0xf8000 + rep));
        });
    const ErrorSummary& summary = trials.errors;
    table.AddRow(
        {rate, summary.mean_error, summary.median_error, summary.p90_error});
    bench::AddErrorPoint(report, trials, static_cast<double>(m))
        .Label("rate", rate);
  }
  table.Print();
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
