// Shard-scaling benchmark for the multi-threaded ingest engine
// (src/stream/shard_engine.h): throughput and accuracy of the router +
// SPSC-ring + per-worker-partial + merge path as the worker count grows,
// with and without load shedding.
//
// Two properties are measured per (shards, p) point:
//
//   * Throughput (tuples/sec through the full engine). Scaling with shard
//     count is machine-specific — a single-core host serializes the
//     workers and shows flat-to-slightly-negative scaling from the
//     routing overhead, while an N-core host approaches linear speedup
//     until the router saturates. The bench gate therefore only compares
//     throughput against a baseline recorded on the same host.
//   * Accuracy (self-join relative error after the Bernoulli correction).
//     Positional shedding makes the merged sketch a bit-exact function of
//     the root seed, independent of the shard count, so the error column
//     must be IDENTICAL down each p column — any divergence means the
//     partition/merge algebra broke, and the gate catches it as an
//     accuracy regression on the next run.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/core/corrections.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/stream/shard_engine.h"
#include "src/stream/source.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  bench::ExperimentConfig defaults;
  defaults.domain = 100000;
  defaults.tuples = 1000000;
  defaults.buckets = 5000;
  defaults.reps = 3;
  bench::DefineCommonFlags(flags, defaults, "bench_shard_scaling");
  flags.Define("shards", "1,2,4,8", "worker shard counts to sweep");
  flags.Define("ps", "1,0.1", "Bernoulli shedding probabilities");
  flags.Define("chunk", "4096", "tuples per routed chunk");
  flags.Define("queue_chunks", "8", "SPSC ring capacity in chunks");
  if (!flags.Parse(argc, argv)) return 1;
  const auto config = bench::ReadCommonFlags(flags);
  const auto shard_counts = flags.GetDoubleList("shards");
  const auto ps = flags.GetDoubleList("ps");
  const auto chunk = static_cast<size_t>(flags.GetInt("chunk"));
  const auto queue_chunks = static_cast<size_t>(flags.GetInt("queue_chunks"));
  bench::BenchReport report = bench::MakeReport("bench_shard_scaling", config);
  report.SetConfig("chunk", static_cast<double>(chunk));
  report.SetConfig("queue_chunks", static_cast<double>(queue_chunks));

  const FrequencyVector f = ZipfMultinomialFrequencies(
      config.domain, config.tuples, 1.0, MixSeed(config.seed, 0x5ca1e));
  const double truth = f.F2();
  const auto stream = f.ToTupleStream();

  std::printf(
      "Shard scaling: engine throughput + self-join error vs worker count\n"
      "domain=%zu tuples=%llu buckets=%zu reps=%d chunk=%zu\n"
      "columns per p: tuples/sec, speedup vs 1 shard, mean rel error\n"
      "(error must be identical down a column: the merge is bit-exact)\n\n",
      config.domain, static_cast<unsigned long long>(config.tuples),
      config.buckets, config.reps, chunk);

  std::vector<std::string> header = {"shards"};
  for (double p : ps) {
    header.push_back("tps p=" + FormatG(p));
    header.push_back("spdup p=" + FormatG(p));
    header.push_back("err p=" + FormatG(p));
  }
  TablePrinter table(header);

  // rate[p-index] at shards=1, the speedup denominator.
  std::vector<double> base_rate(ps.size(), 0.0);
  for (double shards_f : shard_counts) {
    const size_t shards = static_cast<size_t>(shards_f);
    std::vector<double> row = {static_cast<double>(shards)};
    for (size_t pi = 0; pi < ps.size(); ++pi) {
      const double p = ps[pi];
      // The engine timing lives inside the trial lambda; sketch seeds vary
      // per rep while the shed seed is fixed, so the estimate for a given
      // rep is the same at every shard count (bit-exact partitioning).
      uint64_t kept = 0;
      const bench::TimedTrials trials = bench::RunTrialsTimed(
          config.reps, truth, [&](int rep) {
            ShardEngineOptions opts;
            opts.shards = shards;
            opts.chunk_tuples = chunk;
            opts.queue_chunks = queue_chunks;
            opts.shed_p = p;
            opts.seed = MixSeed(config.seed, 0x5eed);
            FagmsSketch proto(bench::TrialSketchParams(config, rep));
            ShardEngine<FagmsSketch> engine(proto, opts);
            VectorSource source(stream);
            engine.Run(source);
            kept = engine.total_kept();
            return BernoulliSelfJoinCorrection(p, kept)
                .Apply(engine.merged().EstimateSelfJoin());
          });
      const double updates =
          static_cast<double>(stream.size()) * config.reps;
      const double rate =
          trials.seconds > 0 ? updates / trials.seconds : 0.0;
      if (shards == 1) base_rate[pi] = rate;
      const double speedup =
          base_rate[pi] > 0 ? rate / base_rate[pi] : 0.0;
      row.push_back(rate);
      row.push_back(speedup);
      row.push_back(trials.errors.mean_error);
      bench::AddErrorPoint(report, trials, static_cast<double>(stream.size()))
          .Label("shards", static_cast<double>(shards))
          .Label("p", p)
          .Metric("speedup_vs_1shard", speedup)
          .Metric("kept_fraction",
                  static_cast<double>(kept) /
                      static_cast<double>(stream.size()));
    }
    table.AddRow(row);
  }
  table.Print();
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
