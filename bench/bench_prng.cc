// E11: ξ-generation cost ablation (ref [17]).
//
// Per-key Sign() latency of every implemented scheme. The ordering the
// reference predicts: BCH3 < EH3 ≈ Tabulation < CW2 < CW4 << BCH5 (the
// GF(2^64) cube is the expensive step in this portable build).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/micro_main.h"
#include "src/prng/hash.h"
#include "src/prng/xi.h"

namespace sketchsample {
namespace {

void BM_XiSign(benchmark::State& state) {
  const auto scheme = static_cast<XiScheme>(state.range(0));
  const auto xi = MakeXiFamily(scheme, 1234567);
  uint64_t key = 0x12345678;
  int64_t sum = 0;
  for (auto _ : state) {
    // Vary the key so the compiler cannot hoist the hash.
    key = key * 6364136223846793005ULL + 1442695040888963407ULL;
    sum += xi->Sign(key);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(XiSchemeName(scheme));
}
BENCHMARK(BM_XiSign)
    ->Arg(static_cast<int>(XiScheme::kBch3))
    ->Arg(static_cast<int>(XiScheme::kEh3))
    ->Arg(static_cast<int>(XiScheme::kBch5))
    ->Arg(static_cast<int>(XiScheme::kCw2))
    ->Arg(static_cast<int>(XiScheme::kCw4))
    ->Arg(static_cast<int>(XiScheme::kTabulation));

void BM_PairwiseBucketHash(benchmark::State& state) {
  PairwiseHash hash(9, 5000);
  uint64_t key = 0xabcdef;
  uint64_t sum = 0;
  for (auto _ : state) {
    key = key * 6364136223846793005ULL + 1442695040888963407ULL;
    sum += hash.Bucket(key);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairwiseBucketHash);

}  // namespace
}  // namespace sketchsample

SKETCHSAMPLE_BENCHMARK_MAIN("bench_prng");
