// Structured benchmark reporting: every bench binary emits, alongside its
// human-readable table, one machine-readable `BENCH_<name>.json` file that
// the regression gate (tools/bench_gate) and CI consume.
//
// Schema (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "name": "fig3_bernoulli_sjoin_error",
//     "git_sha": "<sha or 'unknown'>",
//     "host": "<hostname>",
//     "timestamp_unix": 1720000000,
//     "config": {"domain": 100000, "tuples": 1000000, ...},
//     "points": [
//       {
//         "labels": {"skew": "1", "p": "0.1"},
//         "metrics": {
//           "mean_rel_error": 0.031, "stderr_rel_error": 0.004,
//           "median_rel_error": ..., "p90_rel_error": ...,
//           "updates_per_sec": 8.9e7, "ns_per_update": 11.2,
//           "seconds": 1.73
//         }
//       }, ...
//     ],
//     "metrics_registry": {...},     // optional util/metrics snapshot
//     "peak_rss_bytes": 123456789
//   }
//
// Points are matched across two report files by exact `labels` equality, so
// labels must identify a point stably (sweep coordinates), while `metrics`
// carry the measured values being compared.
#ifndef SKETCHSAMPLE_BENCH_REPORT_H_
#define SKETCHSAMPLE_BENCH_REPORT_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace bench {

/// One measured point of a sweep: identifying labels + metric values.
struct BenchPoint {
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> metrics;

  BenchPoint& Label(std::string key, std::string value);
  BenchPoint& Label(std::string key, double value);  // formatted %.6g
  BenchPoint& Metric(std::string key, double value);

  /// Records the standard error-summary metrics (mean/stderr/median/p90
  /// relative error plus trial count).
  BenchPoint& Errors(const ErrorSummary& summary);

  /// Records timing for `updates` sketch/sampling updates over `seconds`.
  BenchPoint& Throughput(double updates, double seconds);
};

/// Accumulates config and points, then serializes to the schema above.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void SetConfig(const std::string& key, double value);
  void SetConfig(const std::string& key, const std::string& value);

  BenchPoint& AddPoint();

  /// Attaches the current util/metrics registry snapshot under
  /// "metrics_registry".
  void AttachMetricsRegistry();

  const std::string& name() const { return name_; }
  size_t num_points() const { return points_.size(); }

  /// Serializes with environment stamps (git SHA, host, time, peak RSS).
  JsonValue ToJson() const;

  /// Writes ToJson() to `path` (pretty-printed). Returns false and prints
  /// to stderr on I/O failure. An empty path is a no-op success, so callers
  /// can pass the --json_out flag value straight through.
  bool WriteFile(const std::string& path) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, JsonValue>> config_;
  std::deque<BenchPoint> points_;  // deque: AddPoint() references are stable
  std::optional<JsonValue> metrics_registry_;
};

/// Registers the --json_out flag (defaulting to BENCH_<name>.json) and the
/// --metrics instrumentation toggle.
void DefineReportFlags(Flags& flags, const std::string& bench_name);

/// Reads --json_out back after parsing.
std::string ReportPathFromFlags(const Flags& flags);

/// Turns the metrics registry on when --metrics was passed. Called by
/// ReadCommonFlags; binaries with bespoke flags call it directly.
void ApplyMetricsFlag(const Flags& flags);

/// Environment probes used for report stamping (exposed for tests).
std::string GitSha();
std::string HostName();
uint64_t PeakRssBytes();

}  // namespace bench
}  // namespace sketchsample

#endif  // SKETCHSAMPLE_BENCH_REPORT_H_
