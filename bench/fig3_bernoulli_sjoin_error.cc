// Figure 3 reproduction: empirical relative error of the sketch-over-
// Bernoulli-samples SIZE-OF-JOIN estimator vs Zipf skew, one curve per
// sampling probability (p = 1.0 is plain full-stream sketching).
//
// Expected shape: for skew < ~3 the error is essentially flat in p — a 0.1%
// sample sketches as accurately as the full stream; only at high skew do
// curves separate.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  bench::ExperimentConfig defaults;
  defaults.domain = 100000;
  defaults.tuples = 1000000;
  defaults.buckets = 5000;
  defaults.reps = 25;
  bench::DefineCommonFlags(flags, defaults, "fig3_bernoulli_sjoin_error");
  flags.Define("ps", "0.001,0.01,0.1,1", "Bernoulli probabilities");
  flags.Define("skews", "0,0.5,1,1.5,2,2.5,3,3.5,4,4.5,5",
               "Zipf coefficients");
  if (!flags.Parse(argc, argv)) return 1;
  const auto config = bench::ReadCommonFlags(flags);
  const auto ps = flags.GetDoubleList("ps");
  const auto skews = flags.GetDoubleList("skews");
  bench::BenchReport report = bench::MakeReport("fig3_bernoulli_sjoin_error", config);

  std::printf(
      "Figure 3: size-of-join relative error vs skew (Bernoulli sampling)\n"
      "domain=%zu tuples=%llu buckets=%zu reps=%d\n"
      "columns: mean relative error at each sampling probability\n\n",
      config.domain, static_cast<unsigned long long>(config.tuples),
      config.buckets, config.reps);

  std::vector<std::string> header = {"skew"};
  for (double p : ps) header.push_back("p=" + FormatG(p));
  TablePrinter table(header);

  for (double skew : skews) {
    // Independently drawn relations (§VII: "generated completely
    // independent"); the true join size is computed from the realized
    // counts, so it is exact for each generated dataset.
    const FrequencyVector f = ZipfMultinomialFrequencies(
        config.domain, config.tuples, skew, MixSeed(config.seed, 0xda7af));
    const FrequencyVector g = ZipfMultinomialFrequencies(
        config.domain, config.tuples, skew, MixSeed(config.seed, 0xda7a9));
    const double truth = ExactJoinSize(f, g);
    // Materialize the tuple streams once per skew; the randomness across
    // trials comes from sketch seeds and sampling coins.
    const auto stream_f = f.ToTupleStream();
    const auto stream_g = g.ToTupleStream();

    std::vector<double> row = {skew};
    for (double p : ps) {
      const bench::TimedTrials trials = bench::RunTrialsTimed(
          config.reps, truth, [&](int rep) {
            return bench::BernoulliJoinTrial(
                stream_f, stream_g, p, p,
                bench::TrialSketchParams(config, rep),
                MixSeed(config.seed, 0xf3000 + rep));
          });
      row.push_back(trials.errors.mean_error);
      bench::AddErrorPoint(
          report, trials,
          static_cast<double>(stream_f.size() + stream_g.size()))
          .Label("skew", skew)
          .Label("p", p);
    }
    table.AddRow(row);
  }
  table.Print();
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
