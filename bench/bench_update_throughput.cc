// E9: sketch-update throughput — the speed-up claim of §VI-A / §VII-E.
//
// Measures the per-arriving-tuple cost of:
//   * full F-AGMS sketching (p = 1 baseline),
//   * coin-flip Bernoulli shedding in front of the sketch,
//   * geometric-skip shedding (Olken skips, ref [18]).
//
// The paper's claim: with skip-based sampling the work is proportional to
// the number of *kept* tuples, so throughput improves by ≈ 1/p (10x for a
// 10% sample, up to 1000x for p = 0.001). Coin-flip shedding still pays one
// RNG draw per tuple and saturates well below that.
//
// google-benchmark reports time per processed stream chunk; the per-tuple
// figure is time / kTuplesPerIteration.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/micro_main.h"
#include "src/core/sketch_over_sample.h"
#include "src/data/zipf.h"
#include "src/prng/cw.h"
#include "src/prng/hash.h"
#include "src/prng/simd/dispatch.h"
#include "src/sketch/agms.h"
#include "src/sketch/fagms.h"
#include "src/stream/parallel.h"
#include "src/util/aligned.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

constexpr size_t kTuplesPerIteration = 1 << 16;
constexpr size_t kDomain = 100000;

SketchParams Params() {
  SketchParams p;
  p.rows = 1;
  p.buckets = 5000;
  p.scheme = XiScheme::kEh3;
  p.seed = 42;
  return p;
}

const std::vector<uint64_t>& Stream() {
  static const std::vector<uint64_t> stream = [] {
    ZipfSampler sampler(kDomain, 1.0);
    Xoshiro256 rng(7);
    return sampler.Stream(kTuplesPerIteration, rng);
  }();
  return stream;
}

void BM_FullSketching(benchmark::State& state) {
  FagmsSketch sketch(Params());
  for (auto _ : state) {
    for (uint64_t v : Stream()) sketch.Update(v);
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
}
BENCHMARK(BM_FullSketching);

// Scalar vs batched F-AGMS update kernels (the devirtualized SignBatch /
// BucketBatch block path). Same sketch state, same stream, bit-identical
// counters; the batch variant's win is the headline number for the kernel
// work. Arg 0 = EH3 (cheap signs: win mostly from dispatch/bucket batching),
// Arg 1 = CW4 (3 mulmods per sign: win dominated by pipelined mulmod chains).
XiScheme SchemeArg(int64_t arg) {
  return arg == 0 ? XiScheme::kEh3 : XiScheme::kCw4;
}

void BM_FagmsUpdateScalar(benchmark::State& state) {
  SketchParams p = Params();
  p.scheme = SchemeArg(state.range(0));
  FagmsSketch sketch(p);
  for (auto _ : state) {
    for (uint64_t v : Stream()) sketch.Update(v);
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.SetLabel(XiSchemeName(p.scheme));
}
BENCHMARK(BM_FagmsUpdateScalar)->Arg(0)->Arg(1);

void BM_FagmsUpdateBatch(benchmark::State& state) {
  SketchParams p = Params();
  p.scheme = SchemeArg(state.range(0));
  FagmsSketch sketch(p);
  for (auto _ : state) {
    sketch.UpdateBatch(Stream());
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.SetLabel(XiSchemeName(p.scheme));
}
BENCHMARK(BM_FagmsUpdateBatch)->Arg(0)->Arg(1);

// --------------------------------------------------------------------------
// ISA-dispatched kernel series (src/prng/simd/). Registered dynamically so a
// report only contains points for levels the host (as capped by
// SKETCHSAMPLE_ISA) can actually run: committed baselines carry the levels
// every CI host reaches, and higher levels show up as extra, ungated points.

std::vector<simd::IsaLevel> CappedLevels() {
  std::vector<simd::IsaLevel> levels = {simd::IsaLevel::kScalar};
  if (simd::ActiveIsaLevel() >= simd::IsaLevel::kAvx2) {
    levels.push_back(simd::IsaLevel::kAvx2);
  }
  if (simd::ActiveIsaLevel() >= simd::IsaLevel::kAvx512) {
    levels.push_back(simd::IsaLevel::kAvx512);
  }
  return levels;
}

// The fused CW4 F-AGMS row kernel at one pinned ISA level — the tentpole
// series. The scalar point is the previous fused kernel (the scalar twin is
// the PR-6 code moved verbatim), so the <level>/scalar ratio measures the
// vector speed-up host-independently; bench/rules/ gates it.
void FagmsFusedIsaBody(benchmark::State& state, simd::IsaLevel level) {
  simd::ScopedIsaForTesting scoped(level);
  SketchParams p = Params();
  p.scheme = XiScheme::kCw4;
  FagmsSketch sketch(p);
  for (auto _ : state) {
    sketch.UpdateBatch(Stream());
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.SetLabel(simd::IsaLevelName(level));
}

// Roofline series: keys/s of the fused CW4 kernel as the counter working
// set sweeps from L1-resident to DRAM-resident. Buckets are uniform random
// so every cache level is actually exercised; rows = 1, so the working set
// is buckets * 8 bytes.
constexpr size_t kRooflineBuckets[] = {
    1 << 10,  // 8 KiB   — L1
    1 << 13,  // 64 KiB  — L2
    1 << 16,  // 512 KiB — L2/LLC
    1 << 19,  // 4 MiB   — LLC
    1 << 22,  // 32 MiB  — DRAM
};

const std::vector<uint64_t>& UniformStream() {
  static const std::vector<uint64_t> stream = [] {
    Xoshiro256 rng(321);
    std::vector<uint64_t> keys(kTuplesPerIteration);
    for (uint64_t& k : keys) k = rng();
    return keys;
  }();
  return stream;
}

void FagmsRooflineBody(benchmark::State& state, simd::IsaLevel level,
                       size_t buckets) {
  simd::ScopedIsaForTesting scoped(level);
  SketchParams p;
  p.rows = 1;
  p.buckets = buckets;
  p.scheme = XiScheme::kCw4;
  p.seed = 42;
  FagmsSketch sketch(p);
  for (auto _ : state) {
    sketch.UpdateBatch(UniformStream());
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.counters["ws_bytes"] = static_cast<double>(buckets * sizeof(double));
  state.SetLabel(simd::IsaLevelName(level));
}

const bool kIsaBenchmarksRegistered = [] {
  for (simd::IsaLevel level : CappedLevels()) {
    const std::string isa = simd::IsaLevelName(level);
    ::benchmark::RegisterBenchmark(
        ("BM_FagmsFusedIsa/" + isa).c_str(),
        [level](benchmark::State& state) { FagmsFusedIsaBody(state, level); });
    for (size_t buckets : kRooflineBuckets) {
      ::benchmark::RegisterBenchmark(
          ("BM_FagmsRoofline/" + isa + "/" + std::to_string(buckets)).c_str(),
          [level, buckets](benchmark::State& state) {
            FagmsRooflineBody(state, level, buckets);
          });
    }
  }
  return true;
}();

// Layout trial backing the row-major decision (DESIGN.md §2): identical
// precomputed (bucket, signed-weight) update streams scattered into the two
// candidate counter layouts. Row-major keeps each row's updates inside one
// contiguous `buckets`-sized region (the layout every query walks
// sequentially); interleaving rows (counter[bucket * rows + row]) spreads a
// row across the whole array. Only the scatter is timed.
void LayoutTrialBody(benchmark::State& state, bool interleaved) {
  constexpr size_t kRows = 4;
  constexpr size_t kBuckets = 1 << 14;  // 512 KiB counters: past L1 and L2
  const std::vector<uint64_t>& keys = UniformStream();
  std::vector<uint64_t> buckets(kRows * keys.size());
  std::vector<double> weights(kRows * keys.size());
  {
    Cw4Xi xi(88);
    std::vector<int8_t> signs(keys.size());
    for (size_t r = 0; r < kRows; ++r) {
      PairwiseHash hash(77 + r, kBuckets);
      hash.BucketBatch(keys.data(), keys.size(), buckets.data() + r * keys.size());
      xi.SignBatch(keys.data(), keys.size(), signs.data());
      for (size_t i = 0; i < keys.size(); ++i) {
        weights[r * keys.size() + i] = static_cast<double>(signs[i]);
      }
    }
  }
  CounterVector counters(kRows * kBuckets, 0.0);
  for (auto _ : state) {
    for (size_t r = 0; r < kRows; ++r) {
      const uint64_t* b = buckets.data() + r * keys.size();
      const double* w = weights.data() + r * keys.size();
      if (interleaved) {
        double* base = counters.data() + r;
        for (size_t i = 0; i < keys.size(); ++i) {
          base[b[i] * kRows] += w[i];
        }
      } else {
        double* row = counters.data() + r * kBuckets;
        for (size_t i = 0; i < keys.size(); ++i) {
          row[b[i]] += w[i];
        }
      }
    }
  }
  benchmark::DoNotOptimize(counters.data());
  state.SetItemsProcessed(state.iterations() * kRows * keys.size());
  state.SetLabel(interleaved ? "interleaved" : "row_major");
}

void BM_FagmsLayoutRowMajor(benchmark::State& state) {
  LayoutTrialBody(state, /*interleaved=*/false);
}
BENCHMARK(BM_FagmsLayoutRowMajor);

void BM_FagmsLayoutInterleaved(benchmark::State& state) {
  LayoutTrialBody(state, /*interleaved=*/true);
}
BENCHMARK(BM_FagmsLayoutInterleaved);

void BM_CoinFlipShedding(benchmark::State& state) {
  const double p =
      1.0 / static_cast<double>(state.range(0));  // range = 1/p
  BernoulliSketchEstimator<FagmsSketch> est(p, Params(), 3);
  for (auto _ : state) {
    for (uint64_t v : Stream()) est.Update(v);
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.counters["p"] = p;
}
BENCHMARK(BM_CoinFlipShedding)->Arg(10)->Arg(100)->Arg(1000);

void BM_GeometricSkipShedding(benchmark::State& state) {
  const double p = 1.0 / static_cast<double>(state.range(0));
  BernoulliSketchEstimator<FagmsSketch> est(p, Params(), 5);
  for (auto _ : state) {
    est.ProcessStreamWithSkips(Stream());
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.counters["p"] = p;
}
BENCHMARK(BM_GeometricSkipShedding)->Arg(10)->Arg(100)->Arg(1000);

// AGMS update cost: the motivation for F-AGMS. Each update touches every
// row, so per-tuple cost grows linearly with rows; materialized sign tables
// (one bit per domain value per row) recover most of the CW4 evaluation
// cost on bounded domains.
void BM_AgmsUpdate(benchmark::State& state) {
  SketchParams p;
  p.rows = static_cast<size_t>(state.range(0));
  p.scheme = XiScheme::kCw4;
  p.seed = 9;
  if (state.range(1)) p.materialize_domain = kDomain;
  AgmsSketch sketch(p);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Stream()[i]);
    i = (i + 1) % Stream().size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(1) ? "materialized" : "direct_cw4");
}
BENCHMARK(BM_AgmsUpdate)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({128, 0})
    ->Args({128, 1});

// Parallel sharded sketching (§VI-C): wall-clock scaling across threads.
void BM_ParallelFagmsBuild(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ParallelBuildFagms(Stream(), Params(), threads));
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
}
BENCHMARK(BM_ParallelFagmsBuild)->Arg(1)->Arg(2)->Arg(4);

// The pure sampling front-end without any sketch, to separate sampling cost
// from sketching cost.
void BM_SkipSamplingOnly(benchmark::State& state) {
  const double p = 1.0 / static_cast<double>(state.range(0));
  GeometricSkipSampler sampler(p, 11);
  uint64_t sink = 0;
  for (auto _ : state) {
    size_t pos = sampler.NextSkip();
    while (pos < Stream().size()) {
      sink += Stream()[pos];
      pos += 1 + sampler.NextSkip();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
}
BENCHMARK(BM_SkipSamplingOnly)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace sketchsample

SKETCHSAMPLE_BENCHMARK_MAIN("bench_update_throughput");
