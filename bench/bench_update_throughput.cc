// E9: sketch-update throughput — the speed-up claim of §VI-A / §VII-E.
//
// Measures the per-arriving-tuple cost of:
//   * full F-AGMS sketching (p = 1 baseline),
//   * coin-flip Bernoulli shedding in front of the sketch,
//   * geometric-skip shedding (Olken skips, ref [18]).
//
// The paper's claim: with skip-based sampling the work is proportional to
// the number of *kept* tuples, so throughput improves by ≈ 1/p (10x for a
// 10% sample, up to 1000x for p = 0.001). Coin-flip shedding still pays one
// RNG draw per tuple and saturates well below that.
//
// google-benchmark reports time per processed stream chunk; the per-tuple
// figure is time / kTuplesPerIteration.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/micro_main.h"
#include "src/core/sketch_over_sample.h"
#include "src/data/zipf.h"
#include "src/sketch/agms.h"
#include "src/sketch/fagms.h"
#include "src/stream/parallel.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

constexpr size_t kTuplesPerIteration = 1 << 16;
constexpr size_t kDomain = 100000;

SketchParams Params() {
  SketchParams p;
  p.rows = 1;
  p.buckets = 5000;
  p.scheme = XiScheme::kEh3;
  p.seed = 42;
  return p;
}

const std::vector<uint64_t>& Stream() {
  static const std::vector<uint64_t> stream = [] {
    ZipfSampler sampler(kDomain, 1.0);
    Xoshiro256 rng(7);
    return sampler.Stream(kTuplesPerIteration, rng);
  }();
  return stream;
}

void BM_FullSketching(benchmark::State& state) {
  FagmsSketch sketch(Params());
  for (auto _ : state) {
    for (uint64_t v : Stream()) sketch.Update(v);
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
}
BENCHMARK(BM_FullSketching);

// Scalar vs batched F-AGMS update kernels (the devirtualized SignBatch /
// BucketBatch block path). Same sketch state, same stream, bit-identical
// counters; the batch variant's win is the headline number for the kernel
// work. Arg 0 = EH3 (cheap signs: win mostly from dispatch/bucket batching),
// Arg 1 = CW4 (3 mulmods per sign: win dominated by pipelined mulmod chains).
XiScheme SchemeArg(int64_t arg) {
  return arg == 0 ? XiScheme::kEh3 : XiScheme::kCw4;
}

void BM_FagmsUpdateScalar(benchmark::State& state) {
  SketchParams p = Params();
  p.scheme = SchemeArg(state.range(0));
  FagmsSketch sketch(p);
  for (auto _ : state) {
    for (uint64_t v : Stream()) sketch.Update(v);
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.SetLabel(XiSchemeName(p.scheme));
}
BENCHMARK(BM_FagmsUpdateScalar)->Arg(0)->Arg(1);

void BM_FagmsUpdateBatch(benchmark::State& state) {
  SketchParams p = Params();
  p.scheme = SchemeArg(state.range(0));
  FagmsSketch sketch(p);
  for (auto _ : state) {
    sketch.UpdateBatch(Stream());
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.SetLabel(XiSchemeName(p.scheme));
}
BENCHMARK(BM_FagmsUpdateBatch)->Arg(0)->Arg(1);

void BM_CoinFlipShedding(benchmark::State& state) {
  const double p =
      1.0 / static_cast<double>(state.range(0));  // range = 1/p
  BernoulliSketchEstimator<FagmsSketch> est(p, Params(), 3);
  for (auto _ : state) {
    for (uint64_t v : Stream()) est.Update(v);
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.counters["p"] = p;
}
BENCHMARK(BM_CoinFlipShedding)->Arg(10)->Arg(100)->Arg(1000);

void BM_GeometricSkipShedding(benchmark::State& state) {
  const double p = 1.0 / static_cast<double>(state.range(0));
  BernoulliSketchEstimator<FagmsSketch> est(p, Params(), 5);
  for (auto _ : state) {
    est.ProcessStreamWithSkips(Stream());
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
  state.counters["p"] = p;
}
BENCHMARK(BM_GeometricSkipShedding)->Arg(10)->Arg(100)->Arg(1000);

// AGMS update cost: the motivation for F-AGMS. Each update touches every
// row, so per-tuple cost grows linearly with rows; materialized sign tables
// (one bit per domain value per row) recover most of the CW4 evaluation
// cost on bounded domains.
void BM_AgmsUpdate(benchmark::State& state) {
  SketchParams p;
  p.rows = static_cast<size_t>(state.range(0));
  p.scheme = XiScheme::kCw4;
  p.seed = 9;
  if (state.range(1)) p.materialize_domain = kDomain;
  AgmsSketch sketch(p);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(Stream()[i]);
    i = (i + 1) % Stream().size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(1) ? "materialized" : "direct_cw4");
}
BENCHMARK(BM_AgmsUpdate)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({128, 0})
    ->Args({128, 1});

// Parallel sharded sketching (§VI-C): wall-clock scaling across threads.
void BM_ParallelFagmsBuild(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ParallelBuildFagms(Stream(), Params(), threads));
  }
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
}
BENCHMARK(BM_ParallelFagmsBuild)->Arg(1)->Arg(2)->Arg(4);

// The pure sampling front-end without any sketch, to separate sampling cost
// from sketching cost.
void BM_SkipSamplingOnly(benchmark::State& state) {
  const double p = 1.0 / static_cast<double>(state.range(0));
  GeometricSkipSampler sampler(p, 11);
  uint64_t sink = 0;
  for (auto _ : state) {
    size_t pos = sampler.NextSkip();
    while (pos < Stream().size()) {
      sink += Stream()[pos];
      pos += 1 + sampler.NextSkip();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kTuplesPerIteration);
}
BENCHMARK(BM_SkipSamplingOnly)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace sketchsample

SKETCHSAMPLE_BENCHMARK_MAIN("bench_update_throughput");
