// Service-path benchmark: ingest and query throughput of the full
// query-serving stack (src/service/) — PushSource → ShardEngine with
// phase-locked snapshot publication → RcuCell → HTTP server → hardened
// parser → response builders — measured over real loopback sockets with
// the keep-alive client the load driver uses.
//
// Three phases, each its own report point:
//
//   phase=ingest          tuples/sec through POST-path ingestion alone
//                         (service.Push, no HTTP overhead), engine at
//                         shed-p with snapshots publishing.
//   phase=query           req/sec + p50/p90/p99 latency of the query mix
//                         against a sealed snapshot (ingest closed).
//   phase=mixed           both at once: a feeder thread cycles the stream
//                         through ingest while query threads hammer the
//                         endpoints — the SF-sketch "fat ingest stage,
//                         slim query stage" claim, measured. Two points
//                         (side=ingest / side=query).
//   phase=overload        8× query threads against an admission-controlled,
//                         deadline-enforcing server: goodput and
//                         admitted-only tail latency while shedding, gated
//                         against phase=query by bench/rules/
//                         bench_service.json.
//
// The bench gate consumes the report: updates_per_sec points aggregate
// into the duration-weighted combined ingest+query throughput, and every
// *_latency_ns metric gates per point (tools/gate.h).
// lint:allow-file(raw-atomic-confined): benchmark worker coordination
// across real OS threads over loopback sockets; measurement harness.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/report.h"
#include "src/data/zipf.h"
#include "src/service/admission.h"
#include "src/service/client.h"
#include "src/service/server.h"
#include "src/service/service.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

struct QueryPhaseResult {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t admitted = 0;  // 200s; the latency percentiles cover only these
  uint64_t shed = 0;      // 429/503/408 — admission or deadline rejects
  double seconds = 0;
  uint64_t p50_ns = 0, p90_ns = 0, p99_ns = 0;
  double qps() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  }
  double goodput() const {
    return seconds > 0 ? static_cast<double>(admitted) / seconds : 0;
  }
};

uint64_t PercentileNs(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[idx];
}

// Rotates selfjoin / point / distinct GETs for `seconds` against `port`,
// one keep-alive connection per thread.
QueryPhaseResult RunQueryPhase(int port, int threads, double seconds,
                               uint64_t key_domain, uint64_t seed) {
  std::vector<std::vector<uint64_t>> latencies(
      static_cast<size_t>(threads));
  std::vector<uint64_t> requests(static_cast<size_t>(threads), 0);
  std::vector<uint64_t> errors(static_cast<size_t>(threads), 0);
  std::vector<uint64_t> admitted(static_cast<size_t>(threads), 0);
  std::vector<uint64_t> shed(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      HttpClient client("127.0.0.1", port);
      Xoshiro256 rng(MixSeed(seed, static_cast<uint64_t>(t)));
      auto& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(1 << 16);
      const auto deadline =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
      while (std::chrono::steady_clock::now() < deadline) {
        std::string target;
        switch (rng() % 4) {
          case 0:
            target = "/query/selfjoin";
            break;
          case 1:
          case 2:
            target = "/query/point?key=" + std::to_string(rng() % key_domain);
            break;
          default:
            target = "/query/distinct";
            break;
        }
        const auto t0 = std::chrono::steady_clock::now();
        const HttpClient::Response response = client.Get(target);
        const auto dt = std::chrono::steady_clock::now() - t0;
        ++requests[static_cast<size_t>(t)];
        if (response.ok && response.status == 200) {
          ++admitted[static_cast<size_t>(t)];
          // Admitted-only latency: a fast 429 must not flatter the tail.
          lat.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                  .count()));
        } else if (response.ok && (response.status == 429 ||
                                   response.status == 503 ||
                                   response.status == 408)) {
          ++shed[static_cast<size_t>(t)];
        } else {
          ++errors[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  QueryPhaseResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::vector<uint64_t> all;
  for (size_t t = 0; t < latencies.size(); ++t) {
    result.requests += requests[t];
    result.errors += errors[t];
    result.admitted += admitted[t];
    result.shed += shed[t];
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
  }
  std::sort(all.begin(), all.end());
  result.p50_ns = PercentileNs(all, 0.50);
  result.p90_ns = PercentileNs(all, 0.90);
  result.p99_ns = PercentileNs(all, 0.99);
  return result;
}

SketchServiceOptions ServiceOptions(const Flags& flags) {
  SketchServiceOptions options;
  options.sketch.buckets = static_cast<size_t>(flags.GetInt("buckets"));
  options.sketch.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.engine.shards = static_cast<size_t>(flags.GetInt("shards"));
  options.engine.shed_p = flags.GetDouble("shed_p");
  options.engine.seed = MixSeed(flags.GetInt("seed"), 0x5eed);
  options.engine.distinct_k = static_cast<size_t>(flags.GetInt("distinct_k"));
  options.snapshot_every =
      static_cast<uint64_t>(flags.GetInt("snapshot_every"));
  return options;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.Define("tuples", "200000", "stream length for the ingest phases");
  flags.Define("domain", "100000", "zipf domain (also the point-key domain)");
  flags.Define("skew", "1.0", "zipf coefficient");
  flags.Define("buckets", "5000", "F-AGMS buckets");
  flags.Define("seed", "20090402", "master seed");
  flags.Define("threads", "2", "query worker threads");
  flags.Define("seconds", "1", "duration of each query phase");
  flags.Define("shards", "2", "engine worker lanes");
  flags.Define("shed_p", "0.1", "Bernoulli keep-probability");
  flags.Define("distinct_k", "1024", "KMV distinct counter size");
  flags.Define("snapshot_every", "8192", "snapshot publication period");
  bench::DefineReportFlags(flags, "bench_service");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyMetricsFlag(flags);

  const uint64_t tuples = static_cast<uint64_t>(flags.GetInt("tuples"));
  const uint64_t domain = static_cast<uint64_t>(flags.GetInt("domain"));
  const int threads = static_cast<int>(flags.GetInt("threads"));
  const double seconds = flags.GetDouble("seconds");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  ZipfSampler sampler(static_cast<size_t>(domain), flags.GetDouble("skew"));
  Xoshiro256 rng(MixSeed(seed, 0x5ca1e));
  const std::vector<uint64_t> stream =
      sampler.Stream(static_cast<size_t>(tuples), rng);

  bench::BenchReport report("bench_service");
  report.SetConfig("tuples", static_cast<double>(tuples));
  report.SetConfig("domain", static_cast<double>(domain));
  report.SetConfig("threads", static_cast<double>(threads));
  report.SetConfig("seconds", seconds);
  report.SetConfig("shards", flags.GetDouble("shards"));
  report.SetConfig("shed_p", flags.GetDouble("shed_p"));

  TablePrinter table(
      {"phase", "tuples/s", "req/s", "p50 ns", "p99 ns", "errors"});

  // ---- phase=ingest -------------------------------------------------------
  {
    SketchService service(ServiceOptions(flags));
    service.Start();
    const auto start = std::chrono::steady_clock::now();
    size_t sent = 0;
    while (sent < stream.size()) {
      sent += service.Push(stream.data() + sent,
                           std::min<size_t>(4096, stream.size() - sent));
    }
    service.CloseIngest();
    while (!service.ingest_done()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double rate =
        elapsed > 0 ? static_cast<double>(tuples) / elapsed : 0;
    report.AddPoint()
        .Label("phase", "ingest")
        .Metric("updates_per_sec", rate)
        .Metric("seconds", elapsed);
    table.AddRow({0, rate, 0, 0, 0, 0});
    service.Stop();
  }

  // ---- phase=query --------------------------------------------------------
  {
    SketchService service(ServiceOptions(flags));
    Router router;
    service.Register(router);
    HttpServer server(&router, HttpServerOptions{});
    server.Start();
    service.Start();
    size_t sent = 0;
    while (sent < stream.size()) {
      sent += service.Push(stream.data() + sent,
                           std::min<size_t>(4096, stream.size() - sent));
    }
    service.CloseIngest();
    while (!service.ingest_done()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const QueryPhaseResult result = RunQueryPhase(
        server.port(), threads, seconds, domain, MixSeed(seed, 0xbeef));
    report.AddPoint()
        .Label("phase", "query")
        .Metric("updates_per_sec", result.qps())
        .Metric("seconds", result.seconds)
        .Metric("requests", static_cast<double>(result.requests))
        .Metric("errors", static_cast<double>(result.errors))
        .Metric("p50_latency_ns", static_cast<double>(result.p50_ns))
        .Metric("p90_latency_ns", static_cast<double>(result.p90_ns))
        .Metric("p99_latency_ns", static_cast<double>(result.p99_ns));
    table.AddRow({1, 0, result.qps(), static_cast<double>(result.p50_ns),
                  static_cast<double>(result.p99_ns),
                  static_cast<double>(result.errors)});
    server.Stop();
    service.Stop();
  }

  // ---- phase=mixed --------------------------------------------------------
  {
    SketchService service(ServiceOptions(flags));
    Router router;
    service.Register(router);
    HttpServer server(&router, HttpServerOptions{});
    server.Start();
    service.Start();
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> fed{0};
    // Cycles the stream through ingest at full speed for the whole query
    // window; Push's backpressure keeps the feeder honest.
    std::thread feeder([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        size_t sent = 0;
        while (sent < stream.size() &&
               !stop.load(std::memory_order_relaxed)) {
          const size_t accepted =
              service.Push(stream.data() + sent,
                           std::min<size_t>(4096, stream.size() - sent));
          sent += accepted;
          fed.fetch_add(accepted, std::memory_order_relaxed);
        }
      }
    });
    const auto start = std::chrono::steady_clock::now();
    const QueryPhaseResult result = RunQueryPhase(
        server.port(), threads, seconds, domain, MixSeed(seed, 0xcafe));
    const double ingest_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    stop.store(true, std::memory_order_relaxed);
    service.CloseIngest();  // unblocks a feeder stuck in Push
    feeder.join();
    const double ingest_rate =
        ingest_seconds > 0
            ? static_cast<double>(fed.load(std::memory_order_relaxed)) /
                  ingest_seconds
            : 0;
    report.AddPoint()
        .Label("phase", "mixed")
        .Label("side", "ingest")
        .Metric("updates_per_sec", ingest_rate)
        .Metric("seconds", ingest_seconds);
    report.AddPoint()
        .Label("phase", "mixed")
        .Label("side", "query")
        .Metric("updates_per_sec", result.qps())
        .Metric("seconds", result.seconds)
        .Metric("requests", static_cast<double>(result.requests))
        .Metric("errors", static_cast<double>(result.errors))
        .Metric("p50_latency_ns", static_cast<double>(result.p50_ns))
        .Metric("p90_latency_ns", static_cast<double>(result.p90_ns))
        .Metric("p99_latency_ns", static_cast<double>(result.p99_ns));
    table.AddRow({2, ingest_rate, result.qps(),
                  static_cast<double>(result.p50_ns),
                  static_cast<double>(result.p99_ns),
                  static_cast<double>(result.errors)});
    server.Stop();
    service.Stop();
  }

  // ---- phase=overload -----------------------------------------------------
  // 8× the query-phase thread count against an admission-controlled server
  // with deadlines on: the resilience claim, measured. Goodput (admitted
  // req/sec) and admitted-only p99 are gated by bench/rules/
  // bench_service.json against the healthy phase=query point — overload may
  // shed, but admitted work must stay fast and nonzero.
  {
    SketchService service(ServiceOptions(flags));
    Router router;
    service.Register(router);
    AdmissionOptions aopts;
    aopts.capacity = static_cast<size_t>(std::max(threads, 1));
    AdmissionController admission(aopts);
    HttpServerOptions sopts;
    sopts.default_deadline_ms = 2000;
    sopts.admission = &admission;
    HttpServer server(&router, sopts);
    server.Start();
    service.Start();
    size_t sent = 0;
    while (sent < stream.size()) {
      sent += service.Push(stream.data() + sent,
                           std::min<size_t>(4096, stream.size() - sent));
    }
    service.CloseIngest();
    while (!service.ingest_done()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const QueryPhaseResult result = RunQueryPhase(
        server.port(), threads * 8, seconds, domain, MixSeed(seed, 0xfade));
    report.AddPoint()
        .Label("phase", "overload")
        .Label("side", "admitted")
        .Metric("updates_per_sec", result.goodput())
        .Metric("seconds", result.seconds)
        .Metric("requests", static_cast<double>(result.requests))
        .Metric("admitted", static_cast<double>(result.admitted))
        .Metric("shed", static_cast<double>(result.shed))
        .Metric("errors", static_cast<double>(result.errors))
        .Metric("p50_latency_ns", static_cast<double>(result.p50_ns))
        .Metric("p90_latency_ns", static_cast<double>(result.p90_ns))
        .Metric("p99_latency_ns", static_cast<double>(result.p99_ns));
    table.AddRow({3, 0, result.goodput(),
                  static_cast<double>(result.p50_ns),
                  static_cast<double>(result.p99_ns),
                  static_cast<double>(result.errors)});
    server.Stop();
    service.Stop();
  }

  std::printf(
      "Service-path throughput (phase 0=ingest 1=query 2=mixed 3=overload "
      "goodput; see file comment)\n");
  table.Print();
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
