// Figure 1 reproduction: relative contribution of the sampling / sketch /
// interaction terms to the variance of the averaged sketch-over-Bernoulli
// size-of-join estimator (Eq 25), as a function of the Zipf skew, for
// several sampling probabilities.
//
// This experiment is purely analytic: the variance terms are evaluated
// exactly from the Zipf frequency vectors, exactly as the paper's
// "simulations to determine the relative contribution of each of the terms"
// (§V-B). Expected shape: the interaction term dominates at low skew; the
// sketch term takes over as skew grows; the sampling term matters most for
// small p.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/core/variance.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace sketchsample {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  bench::ExperimentConfig defaults;
  defaults.domain = 100000;
  defaults.tuples = 1000000;
  defaults.buckets = 5000;
  bench::DefineCommonFlags(flags, defaults,
                           "fig1_sjoin_variance_decomposition");
  flags.Define("ps", "0.001,0.01,0.1,0.5", "Bernoulli probabilities");
  flags.Define("skews", "0,0.25,0.5,0.75,1,1.25,1.5,2,2.5,3,4,5",
               "Zipf coefficients");
  if (!flags.Parse(argc, argv)) return 1;
  const auto config = bench::ReadCommonFlags(flags);
  const auto ps = flags.GetDoubleList("ps");
  const auto skews = flags.GetDoubleList("skews");
  bench::BenchReport report =
      bench::MakeReport("fig1_sjoin_variance_decomposition", config);

  std::printf(
      "Figure 1: size-of-join variance decomposition "
      "(Bernoulli, Eq 25)\n"
      "domain=%zu tuples=%llu n=%zu (averaged basic estimators)\n\n",
      config.domain, static_cast<unsigned long long>(config.tuples),
      config.buckets);

  for (double p : ps) {
    std::printf("p = q = %g\n", p);
    TablePrinter table(
        {"skew", "sampling%", "sketch%", "interaction%", "total_variance"});
    for (double skew : skews) {
      const FrequencyVector f =
          ZipfFrequencies(config.domain, config.tuples, skew);
      const FrequencyVector g =
          ZipfFrequencies(config.domain, config.tuples, skew);
      const JoinStatistics s = ComputeJoinStatistics(f, g);
      const VarianceTerms v =
          BernoulliJoinVariance(s, p, p, config.buckets);
      table.AddRow({skew, 100.0 * v.SamplingFraction(),
                    100.0 * v.SketchFraction(),
                    100.0 * v.InteractionFraction(), v.Total()});
      report.AddPoint()
          .Label("skew", skew)
          .Label("p", p)
          .Metric("sampling_fraction", v.SamplingFraction())
          .Metric("sketch_fraction", v.SketchFraction())
          .Metric("interaction_fraction", v.InteractionFraction())
          .Metric("total_variance", v.Total());
    }
    table.Print();
    std::printf("\n");
  }
  return report.WriteFile(bench::ReportPathFromFlags(flags)) ? 0 : 1;
}

}  // namespace
}  // namespace sketchsample

int main(int argc, char** argv) { return sketchsample::Main(argc, argv); }
