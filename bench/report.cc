#include "bench/report.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "src/util/metrics.h"
#include "src/util/table.h"

namespace sketchsample {
namespace bench {

BenchPoint& BenchPoint::Label(std::string key, std::string value) {
  labels.emplace_back(std::move(key), std::move(value));
  return *this;
}

BenchPoint& BenchPoint::Label(std::string key, double value) {
  return Label(std::move(key), FormatG(value));
}

BenchPoint& BenchPoint::Metric(std::string key, double value) {
  metrics.emplace_back(std::move(key), value);
  return *this;
}

BenchPoint& BenchPoint::Errors(const ErrorSummary& summary) {
  Metric("trials", static_cast<double>(summary.trials));
  Metric("mean_rel_error", summary.mean_error);
  Metric("stderr_rel_error", summary.error_stderr);
  Metric("median_rel_error", summary.median_error);
  Metric("p90_rel_error", summary.p90_error);
  return *this;
}

BenchPoint& BenchPoint::Throughput(double updates, double seconds) {
  Metric("seconds", seconds);
  if (seconds > 0 && updates > 0) {
    Metric("updates_per_sec", updates / seconds);
    Metric("ns_per_update", seconds * 1e9 / updates);
  }
  return *this;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::SetConfig(const std::string& key, double value) {
  config_.emplace_back(key, JsonValue::Number(value));
}

void BenchReport::SetConfig(const std::string& key, const std::string& value) {
  config_.emplace_back(key, JsonValue::String(value));
}

BenchPoint& BenchReport::AddPoint() {
  points_.emplace_back();
  return points_.back();
}

void BenchReport::AttachMetricsRegistry() {
  metrics_registry_ = metrics::Registry::Global().ToJson();
}

JsonValue BenchReport::ToJson() const {
  JsonValue root = JsonValue::Object();
  root.Set("schema_version", JsonValue::Number(1));
  root.Set("name", JsonValue::String(name_));
  root.Set("git_sha", JsonValue::String(GitSha()));
  root.Set("host", JsonValue::String(HostName()));
  root.Set("timestamp_unix",
           JsonValue::Number(static_cast<double>(std::time(nullptr))));
  JsonValue config = JsonValue::Object();
  for (const auto& [key, value] : config_) config.Set(key, value);
  root.Set("config", std::move(config));
  JsonValue points = JsonValue::Array();
  for (const auto& point : points_) {
    JsonValue p = JsonValue::Object();
    JsonValue labels = JsonValue::Object();
    for (const auto& [key, value] : point.labels) {
      labels.Set(key, JsonValue::String(value));
    }
    p.Set("labels", std::move(labels));
    JsonValue metrics_obj = JsonValue::Object();
    for (const auto& [key, value] : point.metrics) {
      metrics_obj.Set(key, JsonValue::Number(value));
    }
    p.Set("metrics", std::move(metrics_obj));
    points.Append(std::move(p));
  }
  root.Set("points", std::move(points));
  if (metrics_registry_.has_value()) {
    root.Set("metrics_registry", *metrics_registry_);
  } else if (metrics::Enabled()) {
    // Instrumentation ran but the binary never attached an explicit
    // snapshot: embed the live registry so the counts aren't lost.
    root.Set("metrics_registry", metrics::Registry::Global().ToJson());
  }
  root.Set("peak_rss_bytes",
           JsonValue::Number(static_cast<double>(PeakRssBytes())));
  return root;
}

bool BenchReport::WriteFile(const std::string& path) const {
  if (path.empty()) return true;
  const std::string body = ToJson().Dump(2) + "\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench report: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "bench report: short write to %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "bench report: wrote %s (%zu points)\n", path.c_str(),
               points_.size());
  return ok;
}

void DefineReportFlags(Flags& flags, const std::string& bench_name) {
  flags.Define("json_out", "BENCH_" + bench_name + ".json",
               "machine-readable report path (empty string disables)");
  flags.Define("metrics", "false",
               "enable hot-path instrumentation counters/timers and embed "
               "the snapshot in the report");
}

void ApplyMetricsFlag(const Flags& flags) {
  if (flags.GetBool("metrics")) metrics::SetEnabled(true);
}

std::string ReportPathFromFlags(const Flags& flags) {
  return flags.GetString("json_out");
}

std::string GitSha() {
  // CI sets the env var (cheap + works in detached worktrees); local runs
  // fall back to asking git, and "unknown" keeps the report valid anywhere.
  if (const char* env = std::getenv("SKETCHSAMPLE_GIT_SHA");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  if (const char* env = std::getenv("GITHUB_SHA");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64] = {0};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    ::pclose(pipe);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    if (sha.size() == 40) return sha;
  }
  return "unknown";
}

std::string HostName() {
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
  return "unknown";
}

uint64_t PeakRssBytes() {
  struct rusage usage;
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is KiB on Linux.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

}  // namespace bench
}  // namespace sketchsample
