// Unit + property tests for src/prng: field arithmetic, ξ families, hashes.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "src/prng/bch.h"
#include "src/prng/cw.h"
#include "src/prng/eh3.h"
#include "src/prng/hash.h"
#include "src/prng/mersenne61.h"
#include "src/prng/tabulation.h"
#include "src/prng/xi.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

// ---------------------------------------------------------------------------
// Mersenne-61 field arithmetic.
// ---------------------------------------------------------------------------

TEST(Mersenne61Test, ModReducesCorrectly) {
  EXPECT_EQ(Mod61(0), 0u);
  EXPECT_EQ(Mod61(kMersenne61), 0u);
  EXPECT_EQ(Mod61(kMersenne61 + 1), 1u);
  EXPECT_EQ(Mod61(kMersenne61 - 1), kMersenne61 - 1);
  EXPECT_EQ(Mod61(~0ull), (~0ull) % kMersenne61);
}

TEST(Mersenne61Test, AddMatchesBigInteger) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = UniformMod61(rng);
    const uint64_t b = UniformMod61(rng);
    const uint64_t expected = static_cast<uint64_t>(
        (static_cast<__uint128_t>(a) + b) % kMersenne61);
    EXPECT_EQ(AddMod61(a, b), expected);
  }
}

TEST(Mersenne61Test, MulMatchesBigInteger) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = UniformMod61(rng);
    const uint64_t b = UniformMod61(rng);
    const uint64_t expected = static_cast<uint64_t>(
        (static_cast<__uint128_t>(a) * b) % kMersenne61);
    EXPECT_EQ(MulMod61(a, b), expected);
  }
}

TEST(Mersenne61Test, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for a != 0.
  Xoshiro256 rng(3);
  for (int i = 0; i < 20; ++i) {
    uint64_t a = UniformMod61(rng);
    if (a == 0) a = 1;
    EXPECT_EQ(PowMod61(a, kMersenne61 - 1), 1u);
  }
}

TEST(Mersenne61Test, PowEdgeCases) {
  EXPECT_EQ(PowMod61(5, 0), 1u);
  EXPECT_EQ(PowMod61(5, 1), 5u);
  EXPECT_EQ(PowMod61(5, 3), 125u);
  EXPECT_EQ(PowMod61(0, 5), 0u);
}

TEST(Mersenne61Test, UniformStaysInField) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(UniformMod61(rng), kMersenne61);
}

// ---------------------------------------------------------------------------
// GF(2^64) carry-less multiplication.
// ---------------------------------------------------------------------------

TEST(Gf64Test, IdentityAndZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    const uint64_t a = rng();
    EXPECT_EQ(Gf64Mul(a, 1), a);
    EXPECT_EQ(Gf64Mul(1, a), a);
    EXPECT_EQ(Gf64Mul(a, 0), 0u);
  }
}

TEST(Gf64Test, Commutative) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng(), b = rng();
    EXPECT_EQ(Gf64Mul(a, b), Gf64Mul(b, a));
  }
}

TEST(Gf64Test, Associative) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng(), b = rng(), c = rng();
    EXPECT_EQ(Gf64Mul(Gf64Mul(a, b), c), Gf64Mul(a, Gf64Mul(b, c)));
  }
}

TEST(Gf64Test, DistributesOverXor) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng(), b = rng(), c = rng();
    EXPECT_EQ(Gf64Mul(a, b ^ c), Gf64Mul(a, b) ^ Gf64Mul(a, c));
  }
}

TEST(Gf64Test, KnownReduction) {
  // x^63 * x = x^64 = x^4 + x^3 + x + 1 under the chosen polynomial.
  EXPECT_EQ(Gf64Mul(1ull << 63, 2), (1ull << 4) | (1ull << 3) | 2 | 1);
}

// ---------------------------------------------------------------------------
// ξ families: interface basics.
// ---------------------------------------------------------------------------

class XiSchemeTest : public ::testing::TestWithParam<XiScheme> {};

TEST_P(XiSchemeTest, ProducesOnlyPlusMinusOne) {
  auto xi = MakeXiFamily(GetParam(), 99);
  for (uint64_t key = 0; key < 1000; ++key) {
    const int s = xi->Sign(key);
    EXPECT_TRUE(s == 1 || s == -1) << "key " << key;
  }
}

TEST_P(XiSchemeTest, DeterministicUnderSeed) {
  auto a = MakeXiFamily(GetParam(), 123);
  auto b = MakeXiFamily(GetParam(), 123);
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(a->Sign(key), b->Sign(key));
  }
}

TEST_P(XiSchemeTest, CloneMatchesOriginal) {
  auto xi = MakeXiFamily(GetParam(), 77);
  auto clone = xi->Clone();
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(xi->Sign(key), clone->Sign(key));
  }
  EXPECT_EQ(xi->Scheme(), clone->Scheme());
}

TEST_P(XiSchemeTest, SeedsProduceDifferentFamilies) {
  auto a = MakeXiFamily(GetParam(), 1);
  auto b = MakeXiFamily(GetParam(), 2);
  int agree = 0;
  constexpr int kKeys = 2048;
  for (uint64_t key = 0; key < kKeys; ++key) {
    agree += (a->Sign(key) == b->Sign(key));
  }
  // Independent families agree on about half the keys.
  EXPECT_GT(agree, kKeys / 4);
  EXPECT_LT(agree, 3 * kKeys / 4);
}

TEST_P(XiSchemeTest, SignsAreBalancedAcrossKeys) {
  auto xi = MakeXiFamily(GetParam(), 4242);
  double sum = 0;
  constexpr int kKeys = 1 << 14;
  for (uint64_t key = 0; key < kKeys; ++key) sum += xi->Sign(key);
  // For a random family the normalized sum is ~ N(0, 1/sqrt(kKeys)).
  EXPECT_LT(std::abs(sum) / kKeys, 0.06);
}

TEST_P(XiSchemeTest, RoundTripsThroughNames) {
  const XiScheme scheme = GetParam();
  EXPECT_EQ(XiSchemeFromName(XiSchemeName(scheme)), scheme);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, XiSchemeTest,
                         ::testing::Values(XiScheme::kBch3, XiScheme::kEh3,
                                           XiScheme::kBch5, XiScheme::kCw2,
                                           XiScheme::kCw4,
                                           XiScheme::kTabulation),
                         [](const auto& info) {
                           return XiSchemeName(info.param);
                         });

TEST(XiRegistryTest, UnknownNameThrows) {
  EXPECT_THROW(XiSchemeFromName("nope"), std::invalid_argument);
}

TEST(XiRegistryTest, NamesAreCaseInsensitive) {
  EXPECT_EQ(XiSchemeFromName("cw4"), XiScheme::kCw4);
  EXPECT_EQ(XiSchemeFromName("CW4"), XiScheme::kCw4);
  EXPECT_EQ(XiSchemeFromName("tab"), XiScheme::kTabulation);
}

TEST(XiRegistryTest, IndependenceLevels) {
  EXPECT_EQ(MakeXiFamily(XiScheme::kBch3, 1)->IndependenceLevel(), 3);
  EXPECT_EQ(MakeXiFamily(XiScheme::kEh3, 1)->IndependenceLevel(), 3);
  EXPECT_EQ(MakeXiFamily(XiScheme::kBch5, 1)->IndependenceLevel(), 5);
  EXPECT_EQ(MakeXiFamily(XiScheme::kCw2, 1)->IndependenceLevel(), 2);
  EXPECT_EQ(MakeXiFamily(XiScheme::kCw4, 1)->IndependenceLevel(), 4);
  EXPECT_EQ(MakeXiFamily(XiScheme::kTabulation, 1)->IndependenceLevel(), 3);
}

// ---------------------------------------------------------------------------
// ξ families: k-wise independence moment checks.
//
// For a k-wise independent ±1 family, the product ξ_{i1}···ξ_{ij} of up to k
// distinct entries has expectation 0 over the seed. We estimate these
// expectations by averaging over many seeded families; with S seeds the
// standard error is 1/sqrt(S).
// ---------------------------------------------------------------------------

double ProductMoment(XiScheme scheme, const std::vector<uint64_t>& keys,
                     int seeds) {
  double sum = 0;
  for (int s = 0; s < seeds; ++s) {
    auto xi = MakeXiFamily(scheme, MixSeed(0xabcdef, s));
    int prod = 1;
    for (uint64_t key : keys) prod *= xi->Sign(key);
    sum += prod;
  }
  return sum / seeds;
}

class XiMomentTest : public ::testing::TestWithParam<XiScheme> {
 protected:
  static constexpr int kSeeds = 20000;
  static constexpr double kTol = 0.05;  // ~7 standard errors
};

TEST_P(XiMomentTest, FirstMomentVanishes) {
  for (uint64_t key : {0ull, 1ull, 17ull, 123456789ull}) {
    EXPECT_LT(std::abs(ProductMoment(GetParam(), {key}, kSeeds)), kTol)
        << "key " << key;
  }
}

TEST_P(XiMomentTest, SecondCrossMomentVanishes) {
  EXPECT_LT(std::abs(ProductMoment(GetParam(), {1, 2}, kSeeds)), kTol);
  EXPECT_LT(std::abs(ProductMoment(GetParam(), {0, 1023}, kSeeds)), kTol);
}

TEST_P(XiMomentTest, SquareIsOne) {
  auto xi = MakeXiFamily(GetParam(), 5);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(xi->Sign(key) * xi->Sign(key), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, XiMomentTest,
                         ::testing::Values(XiScheme::kBch3, XiScheme::kEh3,
                                           XiScheme::kBch5, XiScheme::kCw2,
                                           XiScheme::kCw4,
                                           XiScheme::kTabulation),
                         [](const auto& info) {
                           return XiSchemeName(info.param);
                         });

class XiThreeWiseTest : public ::testing::TestWithParam<XiScheme> {};

TEST_P(XiThreeWiseTest, ThirdCrossMomentVanishes) {
  EXPECT_LT(std::abs(ProductMoment(GetParam(), {1, 2, 3}, 20000)), 0.05);
  EXPECT_LT(std::abs(ProductMoment(GetParam(), {5, 600, 70000}, 20000)),
            0.05);
}

INSTANTIATE_TEST_SUITE_P(ThreeWiseSchemes, XiThreeWiseTest,
                         ::testing::Values(XiScheme::kBch3, XiScheme::kEh3,
                                           XiScheme::kBch5, XiScheme::kCw4,
                                           XiScheme::kTabulation),
                         [](const auto& info) {
                           return XiSchemeName(info.param);
                         });

class XiFourWiseTest : public ::testing::TestWithParam<XiScheme> {};

TEST_P(XiFourWiseTest, FourthCrossMomentVanishes) {
  // Includes the XOR-closed quadruple {1,2,3,0} (1^2^3 = 0) on which the
  // 3-wise linear schemes are constant — the canonical 4-wise witness.
  EXPECT_LT(std::abs(ProductMoment(GetParam(), {0, 1, 2, 3}, 20000)), 0.05);
  EXPECT_LT(std::abs(ProductMoment(GetParam(), {4, 9, 16, 25}, 20000)), 0.05);
}

INSTANTIATE_TEST_SUITE_P(FourWiseSchemes, XiFourWiseTest,
                         ::testing::Values(XiScheme::kBch5, XiScheme::kCw4),
                         [](const auto& info) {
                           return XiSchemeName(info.param);
                         });

TEST(XiBch3Test, XorClosedQuadrupleIsDegenerate) {
  // Demonstrates *why* AGMS needs 4-wise independence: for the linear BCH3
  // scheme the product over an XOR-closed quadruple is +1 for every seed.
  double sum = 0;
  constexpr int kSeeds = 1000;
  for (int s = 0; s < kSeeds; ++s) {
    auto xi = MakeXiFamily(XiScheme::kBch3, MixSeed(7, s));
    sum += xi->Sign(0) * xi->Sign(1) * xi->Sign(2) * xi->Sign(3);
  }
  EXPECT_DOUBLE_EQ(sum / kSeeds, 1.0);
}

// ---------------------------------------------------------------------------
// Pairwise bucket hash.
// ---------------------------------------------------------------------------

TEST(PairwiseHashTest, StaysInRange) {
  PairwiseHash h(3, 17);
  for (uint64_t key = 0; key < 10000; ++key) EXPECT_LT(h.Bucket(key), 17u);
}

TEST(PairwiseHashTest, DeterministicAndSeedSensitive) {
  PairwiseHash a(5, 64), b(5, 64), c(6, 64);
  int differs = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.Bucket(key), b.Bucket(key));
    differs += (a.Bucket(key) != c.Bucket(key));
  }
  EXPECT_GT(differs, 500);
}

TEST(PairwiseHashTest, RoughlyUniform) {
  PairwiseHash h(11, 10);
  std::vector<int> hist(10, 0);
  constexpr int kKeys = 100000;
  for (uint64_t key = 0; key < kKeys; ++key) ++hist[h.Bucket(key)];
  for (int count : hist) EXPECT_NEAR(count, kKeys / 10, 1500);
}

TEST(PairwiseHashTest, CollisionRateMatchesPairwiseIndependence) {
  // Over random key pairs, Pr[h(x) = h(y)] ≈ 1/b.
  constexpr uint64_t kBuckets = 32;
  int collisions = 0;
  constexpr int kPairs = 20000;
  Xoshiro256 rng(31);
  PairwiseHash h(13, kBuckets);
  for (int i = 0; i < kPairs; ++i) {
    const uint64_t x = rng(), y = rng();
    if (x != y && h.Bucket(x) == h.Bucket(y)) ++collisions;
  }
  EXPECT_NEAR(static_cast<double>(collisions) / kPairs, 1.0 / kBuckets,
              0.01);
}

TEST(PairwiseHashTest, ZeroBucketsThrows) {
  EXPECT_THROW(PairwiseHash(1, 0), std::invalid_argument);
}

TEST(PairwiseHashTest, SingleBucketAlwaysZero) {
  PairwiseHash h(9, 1);
  for (uint64_t key = 0; key < 100; ++key) EXPECT_EQ(h.Bucket(key), 0u);
}

}  // namespace
}  // namespace sketchsample
