// Tests for the unknown-population i.i.d. stream estimators (§V limit).
#include <gtest/gtest.h>

#include <vector>

#include "src/core/iid.h"
#include "src/data/zipf.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

SketchParams Params(uint64_t seed, size_t buckets = 4096) {
  SketchParams p;
  p.rows = 1;
  p.buckets = buckets;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

double ExactCollisionProbability(const std::vector<double>& probs) {
  double kappa = 0;
  for (double p : probs) kappa += p * p;
  return kappa;
}

TEST(IidStreamTest, RequiresSamples) {
  IidStreamEstimator est(Params(1));
  EXPECT_THROW(est.EstimateCollisionProbability(), std::logic_error);
  est.Update(1);
  EXPECT_THROW(est.EstimateCollisionProbability(), std::logic_error);
  IidStreamEstimator empty(Params(1));
  EXPECT_THROW(est.EstimateMatchProbability(empty), std::logic_error);
}

TEST(IidStreamTest, CollisionProbabilityIsAccurate) {
  constexpr size_t kDomain = 2000;
  constexpr double kSkew = 1.0;
  const auto probs = ZipfProbabilities(kDomain, kSkew);
  const double truth = ExactCollisionProbability(probs);
  ZipfSampler sampler(kDomain, kSkew);

  std::vector<double> estimates;
  for (int rep = 0; rep < 25; ++rep) {
    Xoshiro256 rng(MixSeed(5, rep));
    IidStreamEstimator est(Params(MixSeed(6, rep)));
    for (int i = 0; i < 30000; ++i) est.Update(sampler.Next(rng));
    estimates.push_back(est.EstimateCollisionProbability());
  }
  EXPECT_LT(SummarizeErrors(estimates, truth).mean_error, 0.1);
}

TEST(IidStreamTest, CollisionProbabilityIsUnbiased) {
  // Small-sample unbiasedness (the m(m−1) correction matters here).
  constexpr size_t kDomain = 20;
  const auto probs = ZipfProbabilities(kDomain, 1.0);
  const double truth = ExactCollisionProbability(probs);
  ZipfSampler sampler(kDomain, 1.0);

  RunningStats stats;
  for (int rep = 0; rep < 3000; ++rep) {
    Xoshiro256 rng(MixSeed(7, rep));
    IidStreamEstimator est(Params(MixSeed(8, rep), 512));
    for (int i = 0; i < 50; ++i) est.Update(sampler.Next(rng));
    stats.Add(est.EstimateCollisionProbability());
  }
  EXPECT_NEAR(stats.Mean(), truth, 6.0 * stats.StdError());
}

TEST(IidStreamTest, MatchProbabilityIsAccurate) {
  constexpr size_t kDomain = 2000;
  const auto pf = ZipfProbabilities(kDomain, 1.0);
  const auto pg = ZipfProbabilities(kDomain, 0.5);
  double truth = 0;
  for (size_t i = 0; i < kDomain; ++i) truth += pf[i] * pg[i];

  ZipfSampler sf(kDomain, 1.0), sg(kDomain, 0.5);
  std::vector<double> estimates;
  for (int rep = 0; rep < 25; ++rep) {
    Xoshiro256 rng_f(MixSeed(9, rep)), rng_g(MixSeed(10, rep));
    const SketchParams params = Params(MixSeed(11, rep));
    IidStreamEstimator ef(params), eg(params);
    for (int i = 0; i < 20000; ++i) ef.Update(sf.Next(rng_f));
    for (int i = 0; i < 25000; ++i) eg.Update(sg.Next(rng_g));
    estimates.push_back(ef.EstimateMatchProbability(eg));
  }
  EXPECT_LT(SummarizeErrors(estimates, truth).mean_error, 0.15);
}

TEST(IidStreamTest, EffectiveSupportOfUniformIsDomainSize) {
  constexpr size_t kDomain = 1000;
  ZipfSampler sampler(kDomain, 0.0);  // uniform
  Xoshiro256 rng(12);
  IidStreamEstimator est(Params(13, 8192));
  for (int i = 0; i < 50000; ++i) est.Update(sampler.Next(rng));
  EXPECT_NEAR(est.EstimateEffectiveSupport(), 1000.0, 100.0);
}

TEST(IidStreamTest, SampleCountTracked) {
  IidStreamEstimator est(Params(14));
  for (int i = 0; i < 17; ++i) est.Update(3);
  EXPECT_EQ(est.samples_seen(), 17u);
}

TEST(IidStreamTest, DegenerateSingleValueStream) {
  // All samples identical: κ estimate should be ≈ 1 (exactly 1 with a
  // single-value stream since Σf'² = m² and (m² − m)/(m(m−1)) = 1).
  IidStreamEstimator est(Params(15));
  for (int i = 0; i < 100; ++i) est.Update(42);
  EXPECT_NEAR(est.EstimateCollisionProbability(), 1.0, 1e-9);
  EXPECT_NEAR(est.EstimateEffectiveSupport(), 1.0, 1e-9);
}

}  // namespace
}  // namespace sketchsample
