// API-level tests for the headline sketch-over-sample estimator classes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/sketch_over_sample.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

SketchParams FagmsParams(uint64_t seed, size_t buckets = 2048) {
  SketchParams p;
  p.rows = 1;
  p.buckets = buckets;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

TEST(BernoulliEstimatorTest, TracksSeenAndSampledCounts) {
  BernoulliSketchEstimator<FagmsSketch> est(0.5, FagmsParams(1), 99);
  for (uint64_t v = 0; v < 1000; ++v) est.Update(v);
  EXPECT_EQ(est.tuples_seen(), 1000u);
  EXPECT_GT(est.tuples_sampled(), 350u);
  EXPECT_LT(est.tuples_sampled(), 650u);
}

TEST(BernoulliEstimatorTest, FullSamplingEqualsPlainSketching) {
  const FrequencyVector f = ZipfFrequencies(200, 3000, 1.0);
  const auto stream = f.ToTupleStream();
  BernoulliSketchEstimator<FagmsSketch> est(1.0, FagmsParams(7), 3);
  for (uint64_t v : stream) est.Update(v);
  EXPECT_EQ(est.tuples_sampled(), stream.size());
  // With p = 1 the correction is the identity, so the estimate equals the
  // raw sketch estimate, which should be close to the truth.
  EXPECT_LT(RelativeError(est.EstimateSelfJoin(), f.F2()), 0.1);
}

TEST(BernoulliEstimatorTest, JoinEstimateIsAccurate) {
  const FrequencyVector f = ZipfFrequencies(200, 20000, 1.0);
  const FrequencyVector g = ZipfFrequencies(200, 20000, 0.8);
  const double truth = ExactJoinSize(f, g);
  Xoshiro256 shuffler(5);
  auto sf = f.ToTupleStream();
  auto sg = g.ToTupleStream();
  Shuffle(sf, shuffler);
  Shuffle(sg, shuffler);

  std::vector<double> estimates;
  for (int rep = 0; rep < 20; ++rep) {
    const SketchParams params = FagmsParams(MixSeed(17, rep));
    BernoulliSketchEstimator<FagmsSketch> ef(0.2, params, MixSeed(18, rep));
    BernoulliSketchEstimator<FagmsSketch> eg(0.2, params, MixSeed(19, rep));
    for (uint64_t v : sf) ef.Update(v);
    for (uint64_t v : sg) eg.Update(v);
    estimates.push_back(ef.EstimateJoin(eg));
  }
  EXPECT_LT(SummarizeErrors(estimates, truth).mean_error, 0.2);
}

TEST(BernoulliEstimatorTest, SkipPathIsStatisticallyEquivalent) {
  const FrequencyVector f = ZipfFrequencies(100, 5000, 1.0);
  const auto stream = f.ToTupleStream();
  constexpr double kP = 0.1;

  RunningStats coin_est, skip_est, coin_kept, skip_kept;
  for (int rep = 0; rep < 60; ++rep) {
    const SketchParams params = FagmsParams(MixSeed(31, rep), 1024);
    BernoulliSketchEstimator<FagmsSketch> coin(kP, params, MixSeed(32, rep));
    BernoulliSketchEstimator<FagmsSketch> skip(kP, params, MixSeed(33, rep));
    for (uint64_t v : stream) coin.Update(v);
    skip.ProcessStreamWithSkips(stream);
    EXPECT_EQ(skip.tuples_seen(), stream.size());
    coin_est.Add(coin.EstimateSelfJoin());
    skip_est.Add(skip.EstimateSelfJoin());
    coin_kept.Add(static_cast<double>(coin.tuples_sampled()));
    skip_kept.Add(static_cast<double>(skip.tuples_sampled()));
  }
  EXPECT_NEAR(coin_kept.Mean(), skip_kept.Mean(),
              4.0 * (coin_kept.StdError() + skip_kept.StdError()));
  EXPECT_NEAR(coin_est.Mean(), skip_est.Mean(),
              4.0 * (coin_est.StdError() + skip_est.StdError()));
}

TEST(BernoulliEstimatorTest, WorksWithAgmsSketch) {
  const FrequencyVector f = ZipfFrequencies(50, 2000, 1.5);
  SketchParams params;
  params.rows = 128;
  params.scheme = XiScheme::kCw4;
  params.seed = 11;
  BernoulliSketchEstimator<AgmsSketch> est(0.5, params, 42);
  for (uint64_t v : f.ToTupleStream()) est.Update(v);
  EXPECT_LT(RelativeError(est.EstimateSelfJoin(), f.F2()), 0.5);
}

TEST(SampledStreamEstimatorTest, RejectsBernoulliScheme) {
  EXPECT_THROW(SampledStreamEstimator<FagmsSketch>(
                   SamplingScheme::kBernoulli, 100, FagmsParams(1)),
               std::invalid_argument);
}

TEST(SampledStreamEstimatorTest, RejectsEmptyPopulation) {
  EXPECT_THROW(SampledStreamEstimator<FagmsSketch>(
                   SamplingScheme::kWithReplacement, 0, FagmsParams(1)),
               std::invalid_argument);
}

TEST(SampledStreamEstimatorTest, WrSelfJoinFromGenerativeStream) {
  // The stream is an i.i.d. WR sample from a known population; the
  // estimator must recover the population's F2.
  const FrequencyVector f = ZipfFrequencies(100, 10000, 1.0);
  const auto relation = f.ToTupleStream();
  std::vector<double> estimates;
  for (int rep = 0; rep < 25; ++rep) {
    Xoshiro256 rng(MixSeed(51, rep));
    SampledStreamEstimator<FagmsSketch> est(
        SamplingScheme::kWithReplacement, relation.size(),
        FagmsParams(MixSeed(52, rep)));
    for (int k = 0; k < 2000; ++k) {
      est.Update(relation[rng.NextBounded(relation.size())]);
    }
    EXPECT_EQ(est.sample_size(), 2000u);
    EXPECT_NEAR(est.SampleFraction(), 0.2, 1e-12);
    estimates.push_back(est.EstimateSelfJoin());
  }
  EXPECT_LT(SummarizeErrors(estimates, f.F2()).mean_error, 0.2);
}

TEST(SampledStreamEstimatorTest, WorPrefixScanConvergesToExact) {
  // Online aggregation: scanning the whole shuffled relation must converge
  // to the exact answer (α = 1 -> identity correction, sketch error only).
  const FrequencyVector f = ZipfFrequencies(100, 5000, 0.8);
  auto stream = f.ToTupleStream();
  Xoshiro256 rng(3);
  Shuffle(stream, rng);

  SampledStreamEstimator<FagmsSketch> est(
      SamplingScheme::kWithoutReplacement, stream.size(),
      FagmsParams(9, 4096));
  est.UpdateAll(stream);
  // Full scan: only sketch error remains, and with buckets ~ domain the
  // sketch is near-exact.
  EXPECT_LT(RelativeError(est.EstimateSelfJoin(), f.F2()), 0.05);
}

TEST(SampledStreamEstimatorTest, WorProgressiveEstimatesImprove) {
  const FrequencyVector f = ZipfFrequencies(200, 20000, 1.0);
  const double truth = f.F2();

  RunningStats err_early, err_late;
  for (int rep = 0; rep < 20; ++rep) {
    auto stream = f.ToTupleStream();
    Xoshiro256 rng(MixSeed(61, rep));
    Shuffle(stream, rng);
    SampledStreamEstimator<FagmsSketch> est(
        SamplingScheme::kWithoutReplacement, stream.size(),
        FagmsParams(MixSeed(62, rep), 4096));
    size_t pos = 0;
    for (; pos < stream.size() / 100; ++pos) est.Update(stream[pos]);
    err_early.Add(RelativeError(est.EstimateSelfJoin(), truth));
    for (; pos < stream.size() / 2; ++pos) est.Update(stream[pos]);
    err_late.Add(RelativeError(est.EstimateSelfJoin(), truth));
  }
  EXPECT_LT(err_late.Mean(), err_early.Mean());
}

TEST(SampledStreamEstimatorTest, WrJoinAcrossTwoStreams) {
  const FrequencyVector f = ZipfFrequencies(100, 8000, 1.0);
  const FrequencyVector g = ZipfFrequencies(100, 6000, 0.5);
  const double truth = ExactJoinSize(f, g);
  const auto rf = f.ToTupleStream();
  const auto rg = g.ToTupleStream();

  std::vector<double> estimates;
  for (int rep = 0; rep < 25; ++rep) {
    const SketchParams params = FagmsParams(MixSeed(71, rep));
    Xoshiro256 rng(MixSeed(72, rep));
    SampledStreamEstimator<FagmsSketch> ef(
        SamplingScheme::kWithReplacement, rf.size(), params);
    SampledStreamEstimator<FagmsSketch> eg(
        SamplingScheme::kWithReplacement, rg.size(), params);
    for (int k = 0; k < 1500; ++k) {
      ef.Update(rf[rng.NextBounded(rf.size())]);
      eg.Update(rg[rng.NextBounded(rg.size())]);
    }
    estimates.push_back(ef.EstimateJoin(eg));
  }
  EXPECT_LT(SummarizeErrors(estimates, truth).mean_error, 0.25);
}

TEST(SampledStreamEstimatorTest, MixedSchemesThrow) {
  const SketchParams params = FagmsParams(1);
  SampledStreamEstimator<FagmsSketch> wr(SamplingScheme::kWithReplacement,
                                         100, params);
  SampledStreamEstimator<FagmsSketch> wor(
      SamplingScheme::kWithoutReplacement, 100, params);
  wr.Update(1);
  wr.Update(2);
  wor.Update(1);
  wor.Update(2);
  EXPECT_THROW(wr.EstimateJoin(wor), std::invalid_argument);
}

TEST(SampledStreamEstimatorTest, SelfJoinNeedsTwoTuples) {
  SampledStreamEstimator<FagmsSketch> est(
      SamplingScheme::kWithoutReplacement, 100, FagmsParams(1));
  est.Update(1);
  EXPECT_THROW(est.EstimateSelfJoin(), std::invalid_argument);
}

}  // namespace
}  // namespace sketchsample
