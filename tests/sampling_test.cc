// Unit + property tests for src/sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/sampling/bernoulli.h"
#include "src/sampling/coefficients.h"
#include "src/sampling/with_replacement.h"
#include "src/sampling/without_replacement.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

// ---------------------------------------------------------------------------
// Coefficients (Eq 8).
// ---------------------------------------------------------------------------

TEST(CoefficientsTest, MatchesDefinition) {
  const auto c = ComputeCoefficients(100, 20);
  EXPECT_DOUBLE_EQ(c.alpha, 0.2);
  EXPECT_DOUBLE_EQ(c.alpha1, 19.0 / 99.0);
  EXPECT_DOUBLE_EQ(c.alpha2, 19.0 / 100.0);
  EXPECT_EQ(c.population, 100u);
  EXPECT_EQ(c.sample, 20u);
}

TEST(CoefficientsTest, FullSample) {
  const auto c = ComputeCoefficients(50, 50);
  EXPECT_DOUBLE_EQ(c.alpha, 1.0);
  EXPECT_DOUBLE_EQ(c.alpha1, 1.0);
  EXPECT_DOUBLE_EQ(c.alpha2, 49.0 / 50.0);
}

TEST(CoefficientsTest, SingletonPopulation) {
  const auto c = ComputeCoefficients(1, 1);
  EXPECT_DOUBLE_EQ(c.alpha, 1.0);
  EXPECT_DOUBLE_EQ(c.alpha1, 1.0);  // convention
}

TEST(CoefficientsTest, EmptyPopulationThrows) {
  EXPECT_THROW(ComputeCoefficients(0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Bernoulli sampling.
// ---------------------------------------------------------------------------

TEST(BernoulliSamplerTest, RejectsBadProbability) {
  EXPECT_THROW(BernoulliSampler(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(BernoulliSampler(1.1, 1), std::invalid_argument);
}

TEST(BernoulliSamplerTest, ExtremeProbabilities) {
  std::vector<uint64_t> stream(1000, 7);
  BernoulliSampler none(0.0, 1);
  EXPECT_TRUE(none.Sample(stream).empty());
  BernoulliSampler all(1.0, 1);
  EXPECT_EQ(all.Sample(stream).size(), 1000u);
}

TEST(BernoulliSamplerTest, SampleSizeIsBinomial) {
  constexpr size_t kN = 2000;
  constexpr double kP = 0.3;
  std::vector<uint64_t> stream(kN, 1);
  RunningStats sizes;
  for (int rep = 0; rep < 300; ++rep) {
    BernoulliSampler sampler(kP, MixSeed(10, rep));
    sizes.Add(static_cast<double>(sampler.Sample(stream).size()));
  }
  EXPECT_NEAR(sizes.Mean(), kN * kP, 4.0 * std::sqrt(kN * kP * (1 - kP)) /
                                         std::sqrt(300.0));
  EXPECT_NEAR(sizes.Variance(), kN * kP * (1 - kP),
              0.35 * kN * kP * (1 - kP));
}

TEST(BernoulliSamplerTest, PreservesOrder) {
  std::vector<uint64_t> stream(100);
  std::iota(stream.begin(), stream.end(), 0);
  BernoulliSampler sampler(0.5, 3);
  const auto sample = sampler.Sample(stream);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
}

TEST(GeometricSkipTest, RejectsBadProbability) {
  EXPECT_THROW(GeometricSkipSampler(0.0, 1), std::invalid_argument);
  EXPECT_THROW(GeometricSkipSampler(1.5, 1), std::invalid_argument);
}

TEST(GeometricSkipTest, ProbabilityOneKeepsEverything) {
  GeometricSkipSampler sampler(1.0, 1);
  std::vector<uint64_t> stream(100, 9);
  EXPECT_EQ(sampler.Sample(stream).size(), 100u);
  EXPECT_EQ(sampler.NextSkip(), 0u);
}

TEST(GeometricSkipTest, SkipsAreGeometric) {
  constexpr double kP = 0.2;
  GeometricSkipSampler sampler(kP, 5);
  RunningStats skips;
  for (int i = 0; i < 50000; ++i) {
    skips.Add(static_cast<double>(sampler.NextSkip()));
  }
  // Geometric(p) on {0,1,...}: mean (1-p)/p, variance (1-p)/p².
  EXPECT_NEAR(skips.Mean(), (1 - kP) / kP, 0.1);
  EXPECT_NEAR(skips.Variance(), (1 - kP) / (kP * kP), 1.5);
}

TEST(GeometricSkipTest, MatchesCoinFlipLaw) {
  // The two Bernoulli implementations must agree in distribution: compare
  // mean kept count and per-value inclusion frequency.
  constexpr size_t kN = 1000;
  constexpr double kP = 0.1;
  std::vector<uint64_t> stream(kN);
  std::iota(stream.begin(), stream.end(), 0);

  RunningStats coin_sizes, skip_sizes;
  std::vector<int> coin_hits(kN, 0), skip_hits(kN, 0);
  constexpr int kReps = 400;
  for (int rep = 0; rep < kReps; ++rep) {
    BernoulliSampler coin(kP, MixSeed(100, rep));
    GeometricSkipSampler skip(kP, MixSeed(200, rep));
    const auto a = coin.Sample(stream);
    const auto b = skip.Sample(stream);
    coin_sizes.Add(static_cast<double>(a.size()));
    skip_sizes.Add(static_cast<double>(b.size()));
    for (uint64_t v : a) ++coin_hits[v];
    for (uint64_t v : b) ++skip_hits[v];
  }
  EXPECT_NEAR(coin_sizes.Mean(), skip_sizes.Mean(),
              5.0 * std::sqrt(kN * kP / kReps) * 2);
  // Aggregate per-position inclusion counts agree on average.
  const double coin_avg =
      std::accumulate(coin_hits.begin(), coin_hits.end(), 0.0) / kN;
  const double skip_avg =
      std::accumulate(skip_hits.begin(), skip_hits.end(), 0.0) / kN;
  EXPECT_NEAR(coin_avg, kReps * kP, 3.0);
  EXPECT_NEAR(skip_avg, kReps * kP, 3.0);
}

// ---------------------------------------------------------------------------
// Sampling with replacement.
// ---------------------------------------------------------------------------

TEST(WithReplacementTest, ExactSampleSize) {
  std::vector<uint64_t> relation = {1, 2, 3};
  Xoshiro256 rng(1);
  EXPECT_EQ(SampleWithReplacement(relation, 100, rng).size(), 100u);
  EXPECT_TRUE(SampleWithReplacement(relation, 0, rng).empty());
}

TEST(WithReplacementTest, EmptyRelationThrows) {
  std::vector<uint64_t> empty;
  Xoshiro256 rng(1);
  EXPECT_THROW(SampleWithReplacement(empty, 1, rng), std::invalid_argument);
}

TEST(WithReplacementTest, CanExceedPopulationSize) {
  std::vector<uint64_t> relation = {5};
  Xoshiro256 rng(2);
  const auto sample = SampleWithReplacement(relation, 10, rng);
  EXPECT_EQ(sample.size(), 10u);
  for (uint64_t v : sample) EXPECT_EQ(v, 5u);
}

TEST(WithReplacementTest, MarginalsAreProportional) {
  // Value 0 appears 3x as often as value 1 in the relation.
  std::vector<uint64_t> relation;
  for (int i = 0; i < 300; ++i) relation.push_back(0);
  for (int i = 0; i < 100; ++i) relation.push_back(1);
  Xoshiro256 rng(3);
  const auto sample = SampleWithReplacement(relation, 40000, rng);
  const double zeros = static_cast<double>(
      std::count(sample.begin(), sample.end(), 0ull));
  EXPECT_NEAR(zeros / 40000.0, 0.75, 0.02);
}

TEST(WithReplacementTest, FrequencyPathMatchesTuplePath) {
  FrequencyVector freq(std::vector<uint64_t>{30, 0, 10, 60});
  Xoshiro256 rng(4);
  const auto sample =
      SampleWithReplacementFromFrequencies(freq, 50000, rng);
  EXPECT_EQ(sample.size(), 50000u);
  const FrequencyVector got = FrequencyVector::FromStream(sample, 4);
  EXPECT_EQ(got.count(1), 0u);
  EXPECT_NEAR(static_cast<double>(got.count(3)) / 50000.0, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(got.count(0)) / 50000.0, 0.3, 0.02);
}

TEST(WithReplacementTest, FrequencyPathEmptyThrows) {
  FrequencyVector empty(5);
  Xoshiro256 rng(5);
  EXPECT_THROW(SampleWithReplacementFromFrequencies(empty, 1, rng),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sampling without replacement.
// ---------------------------------------------------------------------------

TEST(WithoutReplacementTest, ExactSizeAndSubset) {
  std::vector<uint64_t> relation(100);
  std::iota(relation.begin(), relation.end(), 1000);
  Xoshiro256 rng(1);
  const auto sample = SampleWithoutReplacement(relation, 30, rng);
  EXPECT_EQ(sample.size(), 30u);
  // Each position picked at most once -> values are distinct here because
  // the relation has distinct values.
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t v : sample) {
    EXPECT_GE(v, 1000u);
    EXPECT_LT(v, 1100u);
  }
}

TEST(WithoutReplacementTest, ClampsToPopulation) {
  std::vector<uint64_t> relation = {1, 2, 3};
  Xoshiro256 rng(2);
  const auto sample = SampleWithoutReplacement(relation, 10, rng);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(WithoutReplacementTest, EveryElementEquallyLikely) {
  std::vector<uint64_t> relation(20);
  std::iota(relation.begin(), relation.end(), 0);
  std::vector<int> hits(20, 0);
  constexpr int kReps = 20000;
  for (int rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng(MixSeed(50, rep));
    for (uint64_t v : SampleWithoutReplacement(relation, 5, rng)) ++hits[v];
  }
  // Each element is included with probability 5/20 = 0.25.
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / kReps, 0.25, 0.02);
  }
}

TEST(ReservoirSamplerTest, FillsThenMaintainsCapacity) {
  ReservoirSampler reservoir(10, 1);
  for (uint64_t v = 0; v < 5; ++v) reservoir.Offer(v);
  EXPECT_EQ(reservoir.sample().size(), 5u);
  for (uint64_t v = 5; v < 1000; ++v) reservoir.Offer(v);
  EXPECT_EQ(reservoir.sample().size(), 10u);
  EXPECT_EQ(reservoir.seen(), 1000u);
}

TEST(ReservoirSamplerTest, UniformInclusionProbability) {
  constexpr uint64_t kStream = 100;
  constexpr uint64_t kCapacity = 10;
  std::vector<int> hits(kStream, 0);
  constexpr int kReps = 20000;
  for (int rep = 0; rep < kReps; ++rep) {
    ReservoirSampler reservoir(kCapacity, MixSeed(60, rep));
    for (uint64_t v = 0; v < kStream; ++v) reservoir.Offer(v);
    for (uint64_t v : reservoir.sample()) ++hits[v];
  }
  for (uint64_t v = 0; v < kStream; ++v) {
    EXPECT_NEAR(static_cast<double>(hits[v]) / kReps, 0.1, 0.015)
        << "element " << v;
  }
}

TEST(PrefixScanTest, ShuffledPrefixHasHypergeometricFrequencies) {
  // The first m tuples of a shuffled relation form a WOR sample: check the
  // mean sampled frequency of a heavy value matches α·f_i.
  FrequencyVector freq(std::vector<uint64_t>{400, 100});
  RunningStats heavy;
  constexpr uint64_t kPrefix = 100;
  for (int rep = 0; rep < 500; ++rep) {
    auto stream = freq.ToTupleStream();
    Xoshiro256 rng(MixSeed(70, rep));
    Shuffle(stream, rng);
    const double zeros = static_cast<double>(
        std::count(stream.begin(), stream.begin() + kPrefix, 0ull));
    heavy.Add(zeros);
  }
  // α = 100/500 = 0.2; E = 0.2 * 400 = 80.
  EXPECT_NEAR(heavy.Mean(), 80.0, 1.5);
}

}  // namespace
}  // namespace sketchsample
