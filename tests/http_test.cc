// Hostile-input tests for the HTTP/1.1 message layer (src/service/http.h).
//
// The parser is held to the same standard as the checkpoint deserializer:
// truncated heads, oversized bodies, pipelined garbage, smuggling vectors,
// and malformed framing must all produce a typed error status — never a
// crash, an over-read, or an unbounded buffer. Each test feeds raw bytes
// exactly as a socket would deliver them.

#include "src/service/http.h"

#include <string>

#include "gtest/gtest.h"

namespace sketchsample {
namespace {

// Feeds the whole string at once and returns the parser for inspection.
HttpRequestParser FeedAll(const std::string& bytes,
                          const HttpLimits& limits = HttpLimits()) {
  HttpRequestParser parser(limits);
  parser.Feed(bytes.data(), bytes.size());
  return parser;
}

TEST(HttpParserTest, ParsesMinimalGet) {
  HttpRequestParser parser = FeedAll("GET /stats HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/stats");
  EXPECT_TRUE(request.query.empty());
  EXPECT_EQ(request.version_minor, 1);
  EXPECT_TRUE(request.keep_alive);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpParserTest, ParsesQueryParametersInOrder) {
  HttpRequestParser parser =
      FeedAll("GET /query/point?key=42&level=0.99&key=7 HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.path, "/query/point");
  ASSERT_EQ(request.query.size(), 3u);
  EXPECT_EQ(request.query[0].first, "key");
  EXPECT_EQ(request.query[0].second, "42");
  EXPECT_EQ(request.query[1].first, "level");
  EXPECT_EQ(request.query[1].second, "0.99");
  // First value wins for lookups; arrival order is preserved.
  ASSERT_NE(request.QueryParam("key"), nullptr);
  EXPECT_EQ(*request.QueryParam("key"), "42");
  EXPECT_EQ(request.QueryParam("missing"), nullptr);
}

TEST(HttpParserTest, PercentDecodesPathAndQuery) {
  HttpRequestParser parser =
      FeedAll("GET /qu%65ry/point?ke%79=%34%32 HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.path, "/query/point");
  ASSERT_EQ(request.query.size(), 1u);
  EXPECT_EQ(request.query[0].first, "key");
  EXPECT_EQ(request.query[0].second, "42");
}

TEST(HttpParserTest, BytewiseFeedMatchesBulkFeed) {
  const std::string wire =
      "POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\n1 2 3";
  HttpRequestParser parser{HttpLimits()};
  HttpRequest request;
  for (char c : wire) {
    ASSERT_TRUE(parser.Feed(&c, 1));
  }
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "1 2 3");
}

TEST(HttpParserTest, TruncatedHeadIsIncompleteNotError) {
  HttpRequestParser parser = FeedAll("GET /stats HTTP/1.1\r\nHost: x");
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_FALSE(parser.error());
  EXPECT_EQ(parser.buffered(), std::string("GET /stats HTTP/1.1\r\nHost: x").size());
}

TEST(HttpParserTest, TruncatedBodyIsIncompleteNotError) {
  HttpRequestParser parser =
      FeedAll("POST /ingest HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345");
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_FALSE(parser.error());
  // The missing bytes arrive later; the request then completes.
  parser.Feed("67890", 5);
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.body, "1234567890");
}

TEST(HttpParserTest, PipelinedRequestsComeOutInOrder) {
  HttpRequestParser parser = FeedAll(
      "GET /query/selfjoin HTTP/1.1\r\n\r\n"
      "POST /ingest HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
      "GET /stats HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.path, "/query/selfjoin");
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.path, "/ingest");
  EXPECT_EQ(request.body, "abc");
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.path, "/stats");
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_FALSE(parser.error());
}

TEST(HttpParserTest, PipelinedGarbageAfterValidRequestPoisonsStream) {
  HttpRequestParser parser = FeedAll(
      "GET /stats HTTP/1.1\r\n\r\n"
      "\x01\x02garbage that is not HTTP\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.path, "/stats");
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_TRUE(parser.error());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, ErrorStatePoisonsFurtherFeeds) {
  HttpRequestParser parser = FeedAll("NOT-HTTP\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  ASSERT_TRUE(parser.error());
  // A poisoned connection discards everything; no resync is attempted.
  EXPECT_FALSE(parser.Feed("GET / HTTP/1.1\r\n\r\n", 18));
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpParserTest, RejectsMalformedRequestLines) {
  const char* cases[] = {
      "GET\r\n\r\n",                        // no target
      "GET /stats\r\n\r\n",                 // no version
      "GET /stats HTTP/1.1 extra\r\n\r\n",  // trailing junk
      "GET  /stats HTTP/1.1\r\n\r\n",       // double space → empty token
      "G<T /stats HTTP/1.1\r\n\r\n",        // non-token method byte
      "GET stats HTTP/1.1\r\n\r\n",         // not origin-form
      "GET http://h/stats HTTP/1.1\r\n\r\n",  // absolute-form rejected
      "GET /stats HTTPX\r\n\r\n",           // mangled version
  };
  for (const char* wire : cases) {
    HttpRequestParser parser = FeedAll(wire);
    HttpRequest request;
    EXPECT_FALSE(parser.Next(&request)) << wire;
    EXPECT_TRUE(parser.error()) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(HttpParserTest, RejectsUnsupportedHttpVersionWith505) {
  HttpRequestParser parser = FeedAll("GET /stats HTTP/2.0\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, AcceptsHttp10AndDefaultsToClose) {
  HttpRequestParser parser = FeedAll("GET /stats HTTP/1.0\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.version_minor, 0);
  EXPECT_FALSE(request.keep_alive);
}

TEST(HttpParserTest, ConnectionHeaderControlsKeepAlive) {
  HttpRequestParser close11 =
      FeedAll("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(close11.Next(&request));
  EXPECT_FALSE(request.keep_alive);

  HttpRequestParser keep10 =
      FeedAll("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
  ASSERT_TRUE(keep10.Next(&request));
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpParserTest, RejectsControlBytesInTarget) {
  HttpRequestParser parser = FeedAll("GET /sta\tts HTTP/1.1\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsMalformedPercentEncoding) {
  const char* cases[] = {
      "GET /a%2 HTTP/1.1\r\n\r\n",     // truncated escape
      "GET /a%zz HTTP/1.1\r\n\r\n",    // non-hex digits
      "GET /a%00b HTTP/1.1\r\n\r\n",   // decoded NUL
      "GET /a%1fb HTTP/1.1\r\n\r\n",   // decoded control byte
      "GET /a?k=%7f HTTP/1.1\r\n\r\n",  // decoded DEL in query
  };
  for (const char* wire : cases) {
    HttpRequestParser parser = FeedAll(wire);
    HttpRequest request;
    EXPECT_FALSE(parser.Next(&request)) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(HttpParserTest, RejectsNulByteInHead) {
  std::string wire = "GET /stats HTTP/1.1\r\nX: a";
  wire.push_back('\0');
  wire += "b\r\n\r\n";
  HttpRequestParser parser = FeedAll(wire);
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, NulByteTripsEvenBeforeHeadCompletes) {
  std::string wire = "GET /stats HTTP/1.1\r\nX: ";
  wire.push_back('\0');
  HttpRequestParser parser = FeedAll(wire);
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_TRUE(parser.error());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsBareLfLineEndings) {
  HttpRequestParser parser =
      FeedAll("GET /stats HTTP/1.1\r\nA: 1\nB: 2\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, HeaderNamesAreLowercasedAndValuesTrimmed) {
  HttpRequestParser parser =
      FeedAll("GET / HTTP/1.1\r\nX-Thing:  \t padded \t \r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.Next(&request));
  ASSERT_EQ(request.headers.count("x-thing"), 1u);
  EXPECT_EQ(request.headers.at("x-thing"), "padded");
}

TEST(HttpParserTest, RejectsSmugglingShapedHeaders) {
  // Whitespace before the colon (obs-fold / smuggling vector).
  HttpRequestParser space = FeedAll("GET / HTTP/1.1\r\nHost : x\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(space.Next(&request));
  EXPECT_EQ(space.error_status(), 400);

  // Colonless header line.
  HttpRequestParser colonless = FeedAll("GET / HTTP/1.1\r\nnocolon\r\n\r\n");
  EXPECT_FALSE(colonless.Next(&request));
  EXPECT_EQ(colonless.error_status(), 400);

  // Conflicting duplicate Content-Length values.
  HttpRequestParser dupes = FeedAll(
      "POST /ingest HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: "
      "9\r\n\r\n");
  EXPECT_FALSE(dupes.Next(&request));
  EXPECT_EQ(dupes.error_status(), 400);
}

TEST(HttpParserTest, AgreeingDuplicateContentLengthIsAccepted) {
  HttpRequestParser parser = FeedAll(
      "POST /ingest HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: "
      "2\r\n\r\nok");
  HttpRequest request;
  ASSERT_TRUE(parser.Next(&request));
  EXPECT_EQ(request.body, "ok");
}

TEST(HttpParserTest, RejectsTransferEncodingWith501) {
  HttpRequestParser parser = FeedAll(
      "POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, RejectsMalformedContentLength) {
  const char* cases[] = {
      "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length:\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
  };
  for (const char* wire : cases) {
    HttpRequestParser parser = FeedAll(wire);
    HttpRequest request;
    EXPECT_FALSE(parser.Next(&request)) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(HttpParserTest, OversizedBodyDeclarationFailsWith413) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  HttpRequestParser parser = FeedAll(
      "POST /ingest HTTP/1.1\r\nContent-Length: 65\r\n\r\n", limits);
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, OversizedRequestLineFailsWith414) {
  HttpLimits limits;
  limits.max_request_line = 64;
  std::string wire = "GET /" + std::string(128, 'a') + " HTTP/1.1\r\n\r\n";
  HttpRequestParser parser = FeedAll(wire, limits);
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(HttpParserTest, OversizedHeadFailsWith431EvenWithoutTerminator) {
  HttpLimits limits;
  limits.max_header_bytes = 256;
  // A slow-drip client that never sends \r\n\r\n must still be bounded.
  std::string wire = "GET /stats HTTP/1.1\r\nX: " + std::string(512, 'a');
  HttpRequestParser parser = FeedAll(wire, limits);
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.error_status(), 431);
  EXPECT_EQ(parser.buffered(), 0u);  // buffer released on poison
}

TEST(HttpParserTest, TooManyHeadersFailsWith431) {
  HttpLimits limits;
  limits.max_headers = 4;
  std::string wire = "GET /stats HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) {
    wire += "h" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  HttpRequestParser parser = FeedAll(wire, limits);
  HttpRequest request;
  EXPECT_FALSE(parser.Next(&request));
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, ConnectionBufferHardCapBoundsMemory) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 128;
  HttpRequestParser parser{limits};
  // Total feed larger than head+body+slack must fail, not grow the buffer.
  const std::string chunk(1024, 'x');
  bool accepted = true;
  for (int i = 0; i < 8 && accepted; ++i) {
    accepted = parser.Feed(chunk.data(), chunk.size());
  }
  EXPECT_FALSE(accepted);
  EXPECT_TRUE(parser.error());
  EXPECT_EQ(parser.error_status(), 400);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpResponseTest, SerializeEmitsFraming) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"ok\":true}";
  const std::string wire = response.Serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);

  response.keep_alive = false;
  EXPECT_NE(response.Serialize().find("Connection: close\r\n"),
            std::string::npos);
}

TEST(HttpResponseTest, ErrorResponseIsJsonWithTrailingNewline) {
  const HttpResponse response = ErrorResponse(404, "no such route");
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(response.body, "{\"error\":\"no such route\"}\n");
}

TEST(HttpResponseTest, StatusTextCoversServiceStatuses) {
  EXPECT_STREQ(HttpStatusText(200), "OK");
  EXPECT_STREQ(HttpStatusText(409), "Conflict");
  EXPECT_STREQ(HttpStatusText(431), "Request Header Fields Too Large");
  EXPECT_STREQ(HttpStatusText(505), "HTTP Version Not Supported");
  EXPECT_STREQ(HttpStatusText(299), "Unknown");
}

TEST(PercentDecodeTest, RejectsRawControlBytes) {
  std::string out;
  EXPECT_TRUE(PercentDecode("plain-text_~", &out));
  EXPECT_EQ(out, "plain-text_~");
  EXPECT_FALSE(PercentDecode(std::string("a\x01b", 3), &out));
  EXPECT_FALSE(PercentDecode("trailing%", &out));
}

}  // namespace
}  // namespace sketchsample
