// Tests for the online-aggregation engine substrate: tables, random scans,
// progressive queries, planner statistics.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "src/data/frequency_vector.h"
#include "src/data/tpch_lite.h"
#include "src/data/zipf.h"
#include "src/engine/online_query.h"
#include "src/engine/scan.h"
#include "src/engine/table.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

// ---------------------------------------------------------------------------
// Table.
// ---------------------------------------------------------------------------

TEST(TableTest, ConstructionValidation) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  EXPECT_THROW(Table({"a", "a"}), std::invalid_argument);
  EXPECT_NO_THROW(Table({"a", "b"}));
}

TEST(TableTest, AppendAndAccessRows) {
  Table table({"key", "value"});
  table.AppendRow({1, 10});
  table.AppendRow({2, 20});
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.value(0, 0), 1u);
  EXPECT_EQ(table.value(1, 1), 20u);
  EXPECT_EQ(table.column("value")[1], 20u);
  EXPECT_THROW(table.AppendRow({1}), std::invalid_argument);
  EXPECT_THROW(table.ColumnIndex("missing"), std::out_of_range);
}

TEST(TableTest, AppendColumnsBulk) {
  Table table({"a", "b"});
  table.AppendColumns({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_EQ(table.value(2, 1), 6u);
  EXPECT_THROW(table.AppendColumns({{1}, {2, 3}}), std::invalid_argument);
  EXPECT_THROW(table.AppendColumns({{1}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RandomOrderScan.
// ---------------------------------------------------------------------------

TEST(RandomOrderScanTest, VisitsEveryRowOnce) {
  Table table({"k"});
  for (uint64_t v = 0; v < 500; ++v) table.AppendRow({v});
  RandomOrderScan scan(table, 1);
  std::set<size_t> seen;
  while (auto row = scan.NextRow()) {
    EXPECT_TRUE(seen.insert(*row).second) << "row repeated";
  }
  EXPECT_EQ(seen.size(), 500u);
  EXPECT_TRUE(scan.Done());
  EXPECT_DOUBLE_EQ(scan.Progress(), 1.0);
  EXPECT_FALSE(scan.NextRow().has_value());
}

TEST(RandomOrderScanTest, OrderDependsOnSeed) {
  Table table({"k"});
  for (uint64_t v = 0; v < 100; ++v) table.AppendRow({v});
  RandomOrderScan a(table, 1), b(table, 2);
  int differs = 0;
  for (int i = 0; i < 100; ++i) {
    differs += (*a.NextRow() != *b.NextRow());
  }
  EXPECT_GT(differs, 50);
}

TEST(RandomOrderScanTest, PrefixIsUniformSample) {
  // Each row should appear in a length-20 prefix with probability 20/100.
  Table table({"k"});
  for (uint64_t v = 0; v < 100; ++v) table.AppendRow({v});
  std::vector<int> hits(100, 0);
  constexpr int kReps = 20000;
  for (int rep = 0; rep < kReps; ++rep) {
    RandomOrderScan scan(table, MixSeed(7, rep));
    for (int i = 0; i < 20; ++i) ++hits[*scan.NextRow()];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / kReps, 0.2, 0.02);
  }
}

TEST(RandomOrderScanTest, EmptyTable) {
  Table table({"k"});
  RandomOrderScan scan(table, 1);
  EXPECT_TRUE(scan.Done());
  EXPECT_DOUBLE_EQ(scan.Progress(), 1.0);
  EXPECT_FALSE(scan.NextRow().has_value());
}

// ---------------------------------------------------------------------------
// Online queries.
// ---------------------------------------------------------------------------

OnlineQueryOptions Options(uint64_t seed, size_t buckets = 4096) {
  OnlineQueryOptions options;
  options.sketch.rows = 1;
  options.sketch.buckets = buckets;
  options.sketch.scheme = XiScheme::kEh3;
  options.sketch.seed = seed;
  options.num_blocks = 8;
  options.scan_seed = MixSeed(seed, 99);
  return options;
}

Table TableFromColumn(const std::vector<uint64_t>& values,
                      const std::string& name) {
  Table table({name});
  for (uint64_t v : values) table.AppendRow({v});
  return table;
}

TEST(OnlineSelfJoinQueryTest, ConvergesEarlyAndAccurately) {
  const FrequencyVector f = ZipfFrequencies(2000, 50000, 1.0);
  const Table table = TableFromColumn(f.ToTupleStream(), "a");

  OnlineSelfJoinQuery query(table, "a", Options(3));
  const ProgressiveReport report = query.RunToConvergence(0.05, 1000);
  EXPECT_LT(query.Progress(), 1.0) << "should converge before a full scan";
  EXPECT_LT(RelativeError(report.estimate, f.F2()), 0.15);
  EXPECT_LE(report.ci.HalfWidth(), 0.05 * report.estimate * 1.0001);
}

TEST(OnlineSelfJoinQueryTest, FullScanIfNeverConverged) {
  const FrequencyVector f = ZipfFrequencies(100, 2000, 0.5);
  const Table table = TableFromColumn(f.ToTupleStream(), "a");
  OnlineSelfJoinQuery query(table, "a", Options(5, 256));
  // Impossible precision: runs to the end of the scan and stops.
  query.RunToConvergence(1e-12, 500);
  EXPECT_TRUE(query.Done());
}

TEST(OnlineJoinQueryTest, TpchJoinEstimate) {
  const TpchLiteData data = GenerateTpchLite(0.01, 11);
  Table lineitem({"l_orderkey"});
  for (uint64_t v : data.lineitem) lineitem.AppendRow({v});
  Table orders({"o_orderkey"});
  for (uint64_t v : data.orders) orders.AppendRow({v});
  const double truth = ExactJoinSize(data.lineitem_freq, data.orders_freq);

  OnlineJoinQuery query(lineitem, "l_orderkey", orders, "o_orderkey",
                        Options(13, 8192));
  const ProgressiveReport report = query.RunToConvergence(0.1, 2000);
  EXPECT_LT(RelativeError(report.estimate, truth), 0.2);
}

TEST(OnlineJoinQueryTest, ScansBothTablesCompletely) {
  Table f = TableFromColumn(std::vector<uint64_t>(100, 1), "a");
  Table g = TableFromColumn(std::vector<uint64_t>(300, 1), "b");
  OnlineJoinQuery query(f, "a", g, "b", Options(17, 512));
  while (!query.Done()) query.Step(64);
  const ProgressiveReport report = query.Report();
  EXPECT_EQ(report.tuples_scanned, 400u);
  // Degenerate single-value join: |F||G| = 30000, sketch is exact here.
  EXPECT_NEAR(report.estimate, 30000.0, 1.0);
}

TEST(OnlineJoinQueryTest, EmptyTableRejected) {
  Table empty({"a"});
  Table ok = TableFromColumn({1, 2, 3}, "b");
  EXPECT_THROW(OnlineJoinQuery(empty, "a", ok, "b", Options(1)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ScanStatisticsCollector.
// ---------------------------------------------------------------------------

TEST(ScanStatisticsTest, CollectsPerColumnStatistics) {
  // Column 0: 200 distinct uniform-ish values; column 1: 10 distinct heavy.
  Table table({"wide", "narrow"});
  Xoshiro256 rng(19);
  for (int i = 0; i < 20000; ++i) {
    table.AppendRow({rng.NextBounded(200), rng.NextBounded(10)});
  }

  SketchParams params;
  params.rows = 1;
  params.buckets = 2048;
  params.seed = 21;
  ScanStatisticsCollector stats(table, params, 512);

  RandomOrderScan scan(table, 23);
  // Scan only 25% of the table.
  for (int i = 0; i < 5000; ++i) stats.ConsumeRow(*scan.NextRow());
  EXPECT_EQ(stats.rows_seen(), 5000u);

  EXPECT_NEAR(stats.EstimateDistinct(0), 200.0, 30.0);
  EXPECT_NEAR(stats.EstimateDistinct(1), 10.0, 0.5);

  // Exact full-table F2 for comparison.
  const FrequencyVector wide =
      FrequencyVector::FromStream(table.column(0), 200);
  const FrequencyVector narrow =
      FrequencyVector::FromStream(table.column(1), 10);
  EXPECT_LT(RelativeError(stats.EstimateSelfJoin(0), wide.F2()), 0.2);
  EXPECT_LT(RelativeError(stats.EstimateSelfJoin(1), narrow.F2()), 0.2);
}

}  // namespace
}  // namespace sketchsample
