// Tests for multi-way join AGMS sketches (the ref [9] extension).
#include <gtest/gtest.h>

#include <vector>

#include "src/sampling/bernoulli.h"
#include "src/sketch/multiway.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

// A tiny binary relation as a list of (a, b) tuples.
using BinaryRelation = std::vector<std::pair<uint64_t, uint64_t>>;
using UnaryRelation = std::vector<uint64_t>;

// Exact chain join |R1(a) ⋈ R2(a,b) ⋈ R3(b)| by nested loops.
double ExactChainJoin(const UnaryRelation& r1, const BinaryRelation& r2,
                      const UnaryRelation& r3) {
  double total = 0;
  for (uint64_t a : r1) {
    for (const auto& [a2, b2] : r2) {
      if (a2 != a) continue;
      for (uint64_t b : r3) {
        if (b == b2) total += 1;
      }
    }
  }
  return total;
}

struct ChainWorkload {
  UnaryRelation r1;
  BinaryRelation r2;
  UnaryRelation r3;
  double exact;
};

ChainWorkload MakeChainWorkload(uint64_t seed) {
  Xoshiro256 rng(seed);
  ChainWorkload w;
  for (int i = 0; i < 60; ++i) w.r1.push_back(rng.NextBounded(8));
  for (int i = 0; i < 80; ++i) {
    w.r2.emplace_back(rng.NextBounded(8), rng.NextBounded(6));
  }
  for (int i = 0; i < 50; ++i) w.r3.push_back(rng.NextBounded(6));
  w.exact = ExactChainJoin(w.r1, w.r2, w.r3);
  return w;
}

TEST(MultiwayTest, ConstructionValidation) {
  EXPECT_THROW(MultiwayAgmsSketch({}, 4, XiScheme::kCw4, 1),
               std::invalid_argument);
  EXPECT_THROW(MultiwayAgmsSketch({0, 0}, 4, XiScheme::kCw4, 1),
               std::invalid_argument);
  EXPECT_THROW(MultiwayAgmsSketch({0}, 0, XiScheme::kCw4, 1),
               std::invalid_argument);
}

TEST(MultiwayTest, UpdateArityChecked) {
  MultiwayAgmsSketch sketch({0, 1}, 4, XiScheme::kCw4, 1);
  EXPECT_THROW(sketch.Update({1}), std::invalid_argument);
  EXPECT_NO_THROW(sketch.Update({1, 2}));
}

TEST(MultiwayTest, TwoWayJoinIsUnbiased) {
  // Sanity: the two-relation special case must estimate the ordinary join.
  UnaryRelation f, g;
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) f.push_back(rng.NextBounded(10));
  for (int i = 0; i < 120; ++i) g.push_back(rng.NextBounded(10));
  double exact = 0;
  for (uint64_t a : f) {
    for (uint64_t b : g) exact += (a == b);
  }

  RunningStats stats;
  for (int rep = 0; rep < 1500; ++rep) {
    const uint64_t seed = MixSeed(10, rep);
    MultiwayAgmsSketch sf({0}, 8, XiScheme::kCw4, seed);
    MultiwayAgmsSketch sg({0}, 8, XiScheme::kCw4, seed);
    for (uint64_t a : f) sf.Update({a});
    for (uint64_t b : g) sg.Update({b});
    stats.Add(EstimateMultiwayJoin({&sf, &sg}));
  }
  EXPECT_NEAR(stats.Mean(), exact, 6.0 * stats.StdError());
}

TEST(MultiwayTest, ThreeWayChainJoinIsUnbiased) {
  const ChainWorkload w = MakeChainWorkload(3);
  ASSERT_GT(w.exact, 0.0);

  RunningStats stats;
  for (int rep = 0; rep < 3000; ++rep) {
    const uint64_t seed = MixSeed(20, rep);
    MultiwayAgmsSketch s1({0}, 8, XiScheme::kCw4, seed);
    MultiwayAgmsSketch s2({0, 1}, 8, XiScheme::kCw4, seed);
    MultiwayAgmsSketch s3({1}, 8, XiScheme::kCw4, seed);
    for (uint64_t a : w.r1) s1.Update({a});
    for (const auto& [a, b] : w.r2) s2.Update({a, b});
    for (uint64_t b : w.r3) s3.Update({b});
    stats.Add(EstimateMultiwayJoin({&s1, &s2, &s3}));
  }
  EXPECT_NEAR(stats.Mean(), w.exact, 6.0 * stats.StdError());
}

TEST(MultiwayTest, ThreeWayJoinOverBernoulliSamplesIsUnbiased) {
  // The §V extension: sample each relation independently, sketch the
  // samples, scale by the product of inverse keep-probabilities.
  const ChainWorkload w = MakeChainWorkload(4);
  ASSERT_GT(w.exact, 0.0);
  const std::vector<double> ps = {0.5, 0.7, 0.6};

  RunningStats stats;
  for (int rep = 0; rep < 4000; ++rep) {
    const uint64_t seed = MixSeed(30, rep);
    MultiwayAgmsSketch s1({0}, 8, XiScheme::kCw4, seed);
    MultiwayAgmsSketch s2({0, 1}, 8, XiScheme::kCw4, seed);
    MultiwayAgmsSketch s3({1}, 8, XiScheme::kCw4, seed);
    BernoulliSampler b1(ps[0], MixSeed(31, rep));
    BernoulliSampler b2(ps[1], MixSeed(32, rep));
    BernoulliSampler b3(ps[2], MixSeed(33, rep));
    for (uint64_t a : w.r1) {
      if (b1.Keep()) s1.Update({a});
    }
    for (const auto& [a, b] : w.r2) {
      if (b2.Keep()) s2.Update({a, b});
    }
    for (uint64_t b : w.r3) {
      if (b3.Keep()) s3.Update({b});
    }
    stats.Add(EstimateMultiwayJoinOverSamples({&s1, &s2, &s3}, ps));
  }
  EXPECT_NEAR(stats.Mean(), w.exact, 6.0 * stats.StdError());
}

TEST(MultiwayTest, AveragingMoreRowsShrinksError) {
  const ChainWorkload w = MakeChainWorkload(5);
  auto mean_abs_error = [&](size_t rows) {
    RunningStats err;
    for (int rep = 0; rep < 400; ++rep) {
      const uint64_t seed = MixSeed(rows * 7919, rep);
      MultiwayAgmsSketch s1({0}, rows, XiScheme::kCw4, seed);
      MultiwayAgmsSketch s2({0, 1}, rows, XiScheme::kCw4, seed);
      MultiwayAgmsSketch s3({1}, rows, XiScheme::kCw4, seed);
      for (uint64_t a : w.r1) s1.Update({a});
      for (const auto& [a, b] : w.r2) s2.Update({a, b});
      for (uint64_t b : w.r3) s3.Update({b});
      err.Add(std::abs(EstimateMultiwayJoin({&s1, &s2, &s3}) - w.exact));
    }
    return err.Mean();
  };
  EXPECT_LT(mean_abs_error(64), mean_abs_error(2));
}

TEST(MultiwayTest, MergeEqualsUnion) {
  MultiwayAgmsSketch a({0, 1}, 6, XiScheme::kEh3, 9);
  MultiwayAgmsSketch b({0, 1}, 6, XiScheme::kEh3, 9);
  MultiwayAgmsSketch whole({0, 1}, 6, XiScheme::kEh3, 9);
  Xoshiro256 rng(10);
  for (int i = 0; i < 50; ++i) {
    const std::vector<uint64_t> keys = {rng.NextBounded(16),
                                        rng.NextBounded(16)};
    (i % 2 ? a : b).Update(keys);
    whole.Update(keys);
  }
  a.Merge(b);
  EXPECT_EQ(a.counters(), whole.counters());
}

TEST(MultiwayTest, IncompatibleEstimatesThrow) {
  MultiwayAgmsSketch a({0}, 4, XiScheme::kCw4, 1);
  MultiwayAgmsSketch b({0}, 4, XiScheme::kCw4, 2);  // different seed
  EXPECT_THROW(EstimateMultiwayJoin({&a, &b}), std::invalid_argument);
  MultiwayAgmsSketch c({0}, 8, XiScheme::kCw4, 1);  // different rows
  EXPECT_THROW(EstimateMultiwayJoin({&a, &c}), std::invalid_argument);
  EXPECT_THROW(EstimateMultiwayJoin({}), std::invalid_argument);
}

TEST(MultiwayTest, SampledEstimateValidatesProbabilities) {
  MultiwayAgmsSketch a({0}, 4, XiScheme::kCw4, 1);
  MultiwayAgmsSketch b({0}, 4, XiScheme::kCw4, 1);
  EXPECT_THROW(EstimateMultiwayJoinOverSamples({&a, &b}, {0.5}),
               std::invalid_argument);
  EXPECT_THROW(EstimateMultiwayJoinOverSamples({&a, &b}, {0.5, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(EstimateMultiwayJoinOverSamples({&a, &b}, {0.5, 1.5}),
               std::invalid_argument);
}

TEST(MultiwayTest, CopyIsDeepAndCompatible) {
  MultiwayAgmsSketch a({0, 1}, 4, XiScheme::kEh3, 3);
  a.Update({1, 2});
  MultiwayAgmsSketch b = a;
  b.Update({3, 4});
  EXPECT_NE(a.counters(), b.counters());
  EXPECT_TRUE(a.CompatibleWith(b));
  EXPECT_EQ(b.arity(), 2u);
}

}  // namespace
}  // namespace sketchsample
