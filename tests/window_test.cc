// Tests for tumbling-window sketching.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/sketch_estimators.h"
#include "src/data/zipf.h"
#include "src/stream/window.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

SketchParams Params(uint64_t seed) {
  SketchParams p;
  p.rows = 1;
  p.buckets = 1024;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

TEST(TumblingWindowTest, ConstructionValidation) {
  EXPECT_THROW(TumblingWindowSketch(0, 2, Params(1)), std::invalid_argument);
  EXPECT_THROW(TumblingWindowSketch(10, 0, Params(1)),
               std::invalid_argument);
}

TEST(TumblingWindowTest, BeforeFirstExpiryEqualsPlainSketch) {
  TumblingWindowSketch window(100, 3, Params(2));
  FagmsSketch plain(Params(2));
  Xoshiro256 rng(3);
  for (int i = 0; i < 250; ++i) {  // fills 2.5 of 3 windows — nothing expires
    const uint64_t key = rng.NextBounded(50);
    window.Update(key);
    plain.Update(key);
  }
  EXPECT_EQ(window.tuples_in_window(), 250u);
  EXPECT_EQ(window.WindowSketch().counters(), plain.counters());
}

TEST(TumblingWindowTest, ExpiryMatchesSuffixSketch) {
  // After expiry, the window sketch must equal a sketch built over exactly
  // the covered suffix of the stream.
  constexpr uint64_t kWindowSize = 100;
  constexpr size_t kWindowCount = 3;
  constexpr size_t kStream = 1000;  // 10 windows -> 7 expiries

  std::vector<uint64_t> stream;
  Xoshiro256 rng(4);
  for (size_t i = 0; i < kStream; ++i) stream.push_back(rng.NextBounded(64));

  TumblingWindowSketch window(kWindowSize, kWindowCount, Params(5));
  for (uint64_t key : stream) window.Update(key);

  // 1000 consumed: windows covering tuples [700, 1000).
  EXPECT_EQ(window.tuples_in_window(), kWindowSize * kWindowCount);
  FagmsSketch suffix(Params(5));
  for (size_t i = kStream - kWindowSize * kWindowCount; i < kStream; ++i) {
    suffix.Update(stream[i]);
  }
  EXPECT_EQ(window.WindowSketch().counters(), suffix.counters());
  EXPECT_EQ(window.tuples_seen(), kStream);
}

TEST(TumblingWindowTest, MidWindowCoverage) {
  // Stop mid-window: the covered range is the active partial window plus
  // the (count-1) full ones behind it.
  constexpr uint64_t kWindowSize = 50;
  constexpr size_t kWindowCount = 2;
  std::vector<uint64_t> stream;
  Xoshiro256 rng(6);
  for (size_t i = 0; i < 175; ++i) stream.push_back(rng.NextBounded(32));

  TumblingWindowSketch window(kWindowSize, kWindowCount, Params(7));
  for (uint64_t key : stream) window.Update(key);

  // 175 = 3 full windows + 25; covered: window [100,150) + partial [150,175).
  EXPECT_EQ(window.tuples_in_window(), 75u);
  FagmsSketch suffix(Params(7));
  for (size_t i = 100; i < 175; ++i) suffix.Update(stream[i]);
  EXPECT_EQ(window.WindowSketch().counters(), suffix.counters());
}

TEST(TumblingWindowTest, SelfJoinTracksWindowedTruth) {
  constexpr uint64_t kWindowSize = 2000;
  constexpr size_t kWindowCount = 4;
  ZipfSampler sampler(500, 1.0);
  Xoshiro256 rng(8);
  std::vector<uint64_t> stream;
  for (int i = 0; i < 30000; ++i) stream.push_back(sampler.Next(rng));

  TumblingWindowSketch window(kWindowSize, kWindowCount, Params(9));
  for (uint64_t key : stream) window.Update(key);

  // Exact windowed self-join of the covered suffix.
  const size_t covered = window.tuples_in_window();
  FrequencyVector freq(500);
  for (size_t i = stream.size() - covered; i < stream.size(); ++i) {
    freq.Add(stream[i]);
  }
  const double truth = freq.F2();
  EXPECT_LT(std::abs(window.EstimateSelfJoin() - truth) / truth, 0.15);
}

TEST(TumblingWindowTest, FrequencyQueryReflectsOnlyWindow) {
  TumblingWindowSketch window(100, 1, Params(10));
  for (int i = 0; i < 100; ++i) window.Update(7);  // fills window 1
  for (int i = 0; i < 100; ++i) window.Update(9);  // expires the 7s
  EXPECT_NEAR(window.EstimateFrequency(9), 100.0, 10.0);
  EXPECT_NEAR(window.EstimateFrequency(7), 0.0, 10.0);
}

}  // namespace
}  // namespace sketchsample
