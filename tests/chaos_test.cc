// Overload-resilience tests for the service under socket-level chaos
// (src/service/chaos.h) and request deadlines (src/service/server.h):
//
//  - the injector itself: named presets, seed determinism of the fault
//    sequence, short-count clamping on real socketpairs;
//  - slow-loris header and body trickles against a live HttpServer, which
//    must answer 408 when the request's wall-clock budget expires instead
//    of letting the trickler camp on a slot;
//  - X-Deadline-Ms shrinking a request's own budget, and an expired
//    deadline answering 503 before any snapshot work;
//  - partial reads/writes and mid-stream resets between a real client and
//    server: byte-identical answers, transport retries with deterministic
//    backoff, and exactly-once ingest via X-Ingest-Session sequencing.
//
// Every fault sequence is a pure function of a literal seed, so failures
// reproduce bit-exactly; only the slow-loris tests use real time (the
// attacker's pacing cannot be injected under the victim's syscalls).

#include "src/service/chaos.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/service/client.h"
#include "src/service/router.h"
#include "src/service/server.h"
#include "src/service/service.h"
#include "src/util/json.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

constexpr uint64_t kChaosSeed = 0xc4a05u;

SketchServiceOptions SmallServiceOptions() {
  SketchServiceOptions options;
  options.sketch.rows = 3;
  options.sketch.buckets = 128;
  options.sketch.seed = 33;
  options.engine.shards = 2;
  options.engine.shed_p = 0.5;
  options.engine.seed = 42;
  options.engine.chunk_tuples = 512;
  options.engine.distinct_k = 64;
  options.engine.quantile_k = 64;
  options.engine.subpop_k = 32;
  options.snapshot_every = 2048;
  options.max_readers = 8;
  return options;
}

// Service + router + live HTTP server on an ephemeral port.
struct LiveService {
  explicit LiveService(const HttpServerOptions& server_options,
                       const SketchServiceOptions& service_options =
                           SmallServiceOptions())
      : service(service_options) {
    service.Register(router);
    server.emplace(&router, server_options);
    server->Start();
    service.Start();
  }
  ~LiveService() {
    server->Stop();
    service.Stop();
  }
  int port() const { return server->port(); }

  SketchService service;
  Router router;
  std::optional<HttpServer> server;
};

// Raw client socket for driving hostile byte timings the HttpClient would
// never produce.
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

void RawSend(int fd, const std::string& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
}

// Reads until EOF or the socket's receive timeout.
std::string RawDrain(int fd) {
  std::string out;
  char buf[1024];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  return out;
}

TEST(ChaosProfileTest, NamedPresetsAndUnknownNames) {
  EXPECT_FALSE(ChaosProfile::FromName("none").Active());
  const ChaosProfile mild = ChaosProfile::FromName("mild");
  const ChaosProfile harsh = ChaosProfile::FromName("harsh");
  EXPECT_TRUE(mild.Active());
  EXPECT_TRUE(harsh.Active());
  EXPECT_GT(harsh.partial_read_prob, mild.partial_read_prob);
  EXPECT_GT(harsh.reset_prob, mild.reset_prob);
  EXPECT_THROW(ChaosProfile::FromName("bogus"), std::invalid_argument);
  EXPECT_FALSE(ChaosProfile::FromName("").Active()) << "empty means none";
}

TEST(ChaosProfileTest, DefaultProfileIsInert) {
  EXPECT_FALSE(ChaosProfile().Active());
  // With no injector installed the seams are the plain syscalls.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_EQ(ChaosSend(sv[0], "abc", 3, 0), 3);
  char buf[8];
  ASSERT_EQ(ChaosRecv(sv[1], buf, sizeof(buf), 0), 3);
  EXPECT_EQ(std::string(buf, 3), "abc");
  ChaosOnClose(sv[0]);
  ::close(sv[0]);
  ::close(sv[1]);
}

// The core reproducibility contract: the same seed replays the exact fault
// sequence, operation by operation, independent of wall clock.
TEST(ChaosInjectorTest, SameSeedReplaysTheExactFaultSequence) {
  ChaosProfile profile;
  profile.partial_read_prob = 0.5;
  profile.reset_prob = 0.2;

  auto run = [&](uint64_t seed) {
    ChaosInjector injector(profile, seed);
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    std::vector<ssize_t> results;
    std::string received;
    for (int op = 0; op < 64; ++op) {
      EXPECT_EQ(::send(sv[1], "01234567", 8, 0), 8);
      char buf[8];
      const ssize_t r = injector.Recv(sv[0], buf, sizeof(buf), 0);
      results.push_back(r == -1 ? -errno : r);
      if (r > 0) received.append(buf, static_cast<size_t>(r));
      // Drain whatever the short count left behind so each op starts from
      // an identical socket state.
      ssize_t rest;
      while ((rest = ::recv(sv[0], buf, sizeof(buf), MSG_DONTWAIT)) > 0) {
        received.append(buf, static_cast<size_t>(rest));
      }
    }
    ::close(sv[0]);
    ::close(sv[1]);
    return std::make_pair(results, injector.injected());
  };

  const auto first = run(kChaosSeed);
  const auto replay = run(kChaosSeed);
  EXPECT_EQ(first.first, replay.first);
  EXPECT_EQ(first.second, replay.second);
  EXPECT_GT(first.second, 0u) << "the profile must actually fire";
  // Some ops were clamped short, some reset with ECONNRESET.
  bool saw_short = false;
  bool saw_reset = false;
  for (const ssize_t r : first.first) {
    if (r > 0 && r < 8) saw_short = true;
    if (r == -ECONNRESET) saw_reset = true;
  }
  EXPECT_TRUE(saw_short);
  EXPECT_TRUE(saw_reset);

  const auto reseeded = run(kChaosSeed ^ 0xdead);
  EXPECT_NE(first.first, reseeded.first)
      << "a different seed draws a different fault sequence";
}

TEST(ChaosInjectorTest, PartialWriteDeliversAPrefixShortCount) {
  ChaosProfile profile;
  profile.partial_write_prob = 1.0;
  ChaosInjector injector(profile, kChaosSeed);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string payload(100, 'x');
  const ssize_t sent = injector.Send(sv[0], payload.data(), payload.size(), 0);
  ASSERT_GT(sent, 0);
  ASSERT_LT(sent, static_cast<ssize_t>(payload.size()))
      << "probability 1 must clamp every multi-byte send";
  char buf[128];
  EXPECT_EQ(::recv(sv[1], buf, sizeof(buf), MSG_DONTWAIT), sent)
      << "exactly the clamped prefix reaches the peer";
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ChaosSeedTest, EnvOverrideFallsBackWhenUnsetOrMalformed) {
  ::unsetenv("SKETCHSAMPLE_CHAOS_SEED");
  EXPECT_EQ(ChaosSeedFromEnv(7), 7u);
  ::setenv("SKETCHSAMPLE_CHAOS_SEED", "12345", 1);
  EXPECT_EQ(ChaosSeedFromEnv(7), 12345u);
  ::setenv("SKETCHSAMPLE_CHAOS_SEED", "not-a-seed", 1);
  EXPECT_EQ(ChaosSeedFromEnv(7), 7u);
  ::unsetenv("SKETCHSAMPLE_CHAOS_SEED");
}

TEST(BackoffTest, DelaysAreDeterministicCappedAndJittered) {
  ClientRetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 200;
  policy.jitter_seed = 99;
  int last_raw = 0;
  for (int failures = 1; failures <= 12; ++failures) {
    const int delay = BackoffDelayMs(policy, failures, /*salt=*/failures);
    EXPECT_EQ(delay, BackoffDelayMs(policy, failures, failures))
        << "same position, same delay";
    const int raw =
        std::min(policy.max_backoff_ms, policy.base_backoff_ms
                                            << std::min(failures - 1, 20));
    EXPECT_GE(delay, raw / 2) << "jitter floor is half the raw delay";
    EXPECT_LE(delay, raw);
    EXPECT_GE(raw, last_raw) << "the schedule never shrinks";
    last_raw = raw;
  }
  // The cap holds even at absurd failure counts (no shift overflow).
  EXPECT_LE(BackoffDelayMs(policy, 1000, 0), policy.max_backoff_ms);
  // Different salts decorrelate the jitter at the same failure count.
  std::vector<int> delays;
  for (uint64_t salt = 0; salt < 32; ++salt) {
    delays.push_back(BackoffDelayMs(policy, 5, salt));
  }
  EXPECT_GT(std::set<int>(delays.begin(), delays.end()).size(), 1u);
  // A zero base disables backoff entirely.
  policy.base_backoff_ms = 0;
  EXPECT_EQ(BackoffDelayMs(policy, 3, 0), 0);
}

// A client that sends half a request line and then stalls must get 408 when
// the wall-clock budget expires — not camp on the slot until recv_timeout.
TEST(ServerDeadlineTest, SlowLorisHeaderTrickleGets408) {
  HttpServerOptions options;
  options.max_connections = 2;
  options.recv_timeout_ms = 100;
  options.default_deadline_ms = 400;
  LiveService live(options);

  const auto start = std::chrono::steady_clock::now();
  const int fd = RawConnect(live.port());
  RawSend(fd, "GET /stats HTT");  // the clock starts at the first byte
  const std::string response = RawDrain(fd);  // trickler never finishes
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ::close(fd);

  EXPECT_EQ(response.rfind("HTTP/1.1 408", 0), 0u) << response;
  EXPECT_NE(response.find("request read deadline exceeded"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_LT(elapsed, std::chrono::seconds(3))
      << "the 408 must arrive on budget expiry, not on idle timeout";
  EXPECT_GE(live.server->stats().deadline_exceeded, 1u);
}

// Same discipline for a body trickle: complete headers, dribbled body.
TEST(ServerDeadlineTest, BodyTrickleGets408AndFreesTheSlot) {
  HttpServerOptions options;
  options.max_connections = 2;
  options.recv_timeout_ms = 100;
  options.default_deadline_ms = 400;
  LiveService live(options);

  const int fd = RawConnect(live.port());
  RawSend(fd,
          "POST /ingest HTTP/1.1\r\nContent-Length: 1000\r\n\r\n123 45");
  const std::string response = RawDrain(fd);
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 408", 0), 0u) << response;
  EXPECT_EQ(live.service.pushed(), 0u)
      << "a half-read batch must never half-ingest";

  // The slot is free again: a well-formed request on a fresh connection
  // answers normally.
  HttpClient client("127.0.0.1", live.port());
  const HttpClient::Response ok = client.Get("/healthz");
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.status, 200);
}

// X-Deadline-Ms lets a request shrink its own budget: if the budget is
// already spent by the time the request is parsed, the query path answers
// 503 before touching a snapshot.
TEST(ServerDeadlineTest, XDeadlineMsShrinksTheBudget) {
  HttpServerOptions options;
  options.recv_timeout_ms = 100;
  options.default_deadline_ms = 10000;  // the default alone would not expire
  LiveService live(options);

  const int fd = RawConnect(live.port());
  RawSend(fd, "G");  // first byte starts the request clock
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  RawSend(fd,
          "ET /query/selfjoin HTTP/1.1\r\nX-Deadline-Ms: 50\r\n"
          "Connection: close\r\n\r\n");
  const std::string response = RawDrain(fd);
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 503", 0), 0u) << response;
  EXPECT_NE(response.find("deadline exceeded"), std::string::npos);
  EXPECT_NE(response.find("Retry-After:"), std::string::npos);
}

// Router-level version of the same check, with no sockets or sleeps.
TEST(RouterDeadlineTest, ExpiredDeadlineAnswers503BeforeSnapshotWork) {
  SketchService service(SmallServiceOptions());
  Router router;
  service.Register(router);
  HttpRequest request;
  request.method = "GET";
  request.path = "/query/selfjoin";

  RequestContext expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  const HttpResponse response = router.Dispatch(request, expired);
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("deadline exceeded"), std::string::npos);
  EXPECT_GE(response.retry_after_s, 1);

  // A live deadline answers normally, and stamps freshness fields.
  RequestContext alive;
  alive.deadline = std::chrono::steady_clock::now() +
                   std::chrono::seconds(30);
  const HttpResponse ok = router.Dispatch(request, alive);
  ASSERT_EQ(ok.status, 200);
  const std::optional<JsonValue> body = JsonValue::Parse(ok.body);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->GetNumber("staleness"), 0.0);
  EXPECT_FALSE(body->Get("degraded")->AsBool());

  // Admission saturation marks the answer degraded without changing the
  // estimate fields.
  RequestContext saturated;
  saturated.admission_saturated = true;
  const HttpResponse degraded = router.Dispatch(request, saturated);
  ASSERT_EQ(degraded.status, 200);
  const std::optional<JsonValue> degraded_body =
      JsonValue::Parse(degraded.body);
  ASSERT_TRUE(degraded_body.has_value());
  EXPECT_TRUE(degraded_body->Get("degraded")->AsBool());
  EXPECT_EQ(degraded_body->GetNumber("estimate"), body->GetNumber("estimate"));
}

// The quantile and subpop endpoints carry the same freshness contract as
// the PR-9 endpoints: admission saturation stamps `degraded` without
// perturbing a single estimate field, and a fresh answer stamps zero
// staleness.
TEST(RouterDeadlineTest, QuantileAndSubpopStampFreshnessUnderAdmissionShed) {
  SketchService service(SmallServiceOptions());
  Router router;
  service.Register(router);

  const struct {
    const char* path;
    const char* query;
  } endpoints[] = {
      {"/query/quantile", "q=0.5"},
      {"/query/subpop", "filter=mod:7-3"},
  };
  for (const auto& endpoint : endpoints) {
    HttpRequest request;
    request.method = "GET";
    request.path = endpoint.path;
    const std::string query(endpoint.query);
    const size_t eq = query.find('=');
    request.query.emplace_back(query.substr(0, eq), query.substr(eq + 1));

    RequestContext normal;
    const HttpResponse clean = router.Dispatch(request, normal);
    ASSERT_EQ(clean.status, 200) << endpoint.path << ": " << clean.body;
    const std::optional<JsonValue> clean_body = JsonValue::Parse(clean.body);
    ASSERT_TRUE(clean_body.has_value());
    EXPECT_EQ(clean_body->GetNumber("staleness"), 0.0) << endpoint.path;
    EXPECT_FALSE(clean_body->Get("degraded")->AsBool()) << endpoint.path;

    RequestContext saturated;
    saturated.admission_saturated = true;
    const HttpResponse degraded = router.Dispatch(request, saturated);
    ASSERT_EQ(degraded.status, 200) << endpoint.path;
    const std::optional<JsonValue> degraded_body =
        JsonValue::Parse(degraded.body);
    ASSERT_TRUE(degraded_body.has_value());
    EXPECT_TRUE(degraded_body->Get("degraded")->AsBool()) << endpoint.path;
    EXPECT_EQ(degraded_body->GetNumber("estimate"),
              clean_body->GetNumber("estimate"))
        << endpoint.path;

    RequestContext expired;
    expired.deadline =
        std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
    EXPECT_EQ(router.Dispatch(request, expired).status, 503) << endpoint.path;
  }
}

// Partial reads and writes on both sides of a live connection must never
// change a single response byte — the length-prefixed write loops reassemble
// exactly the same stream, just in more pieces.
TEST(ChaosHttpTest, PartialReadsAndWritesPreserveByteIdentity) {
  HttpServerOptions options;
  LiveService live(options);
  Xoshiro256 rng(5);
  std::vector<uint64_t> stream(20000);
  for (uint64_t& v : stream) v = rng() % 500;
  ASSERT_EQ(live.service.Push(stream.data(), stream.size()), stream.size());
  live.service.CloseIngest();
  while (!live.service.ingest_done()) std::this_thread::yield();

  std::string clean_selfjoin;
  std::string clean_point;
  std::string clean_quantile;
  std::string clean_subpop;
  {
    HttpClient client("127.0.0.1", live.port());
    clean_selfjoin = client.Get("/query/selfjoin").body;
    clean_point = client.Get("/query/point?key=7").body;
    clean_quantile = client.Get("/query/quantile?q=0.9").body;
    clean_subpop = client.Get("/query/subpop?filter=mod:7-3").body;
    ASSERT_FALSE(clean_selfjoin.empty());
    ASSERT_FALSE(clean_quantile.empty());
    ASSERT_FALSE(clean_subpop.empty());
  }

  ChaosProfile profile;
  profile.partial_read_prob = 0.75;
  profile.partial_write_prob = 0.75;
  ScopedChaosInjector chaos(profile, kChaosSeed);
  HttpClient client("127.0.0.1", live.port());
  for (int i = 0; i < 5; ++i) {
    const HttpClient::Response selfjoin = client.Get("/query/selfjoin");
    ASSERT_TRUE(selfjoin.ok) << selfjoin.error;
    ASSERT_EQ(selfjoin.status, 200);
    EXPECT_EQ(selfjoin.body, clean_selfjoin) << "iteration " << i;
    const HttpClient::Response point = client.Get("/query/point?key=7");
    ASSERT_TRUE(point.ok) << point.error;
    EXPECT_EQ(point.body, clean_point);
    const HttpClient::Response quantile = client.Get("/query/quantile?q=0.9");
    ASSERT_TRUE(quantile.ok) << quantile.error;
    EXPECT_EQ(quantile.body, clean_quantile);
    const HttpClient::Response subpop =
        client.Get("/query/subpop?filter=mod:7-3");
    ASSERT_TRUE(subpop.ok) << subpop.error;
    EXPECT_EQ(subpop.body, clean_subpop);
  }
  EXPECT_GT(chaos.injector()->injected(), 0u);
}

// Mid-stream connection resets kill the socket under the response; the
// client's deterministic backoff + reconnect must still land every request.
TEST(ChaosHttpTest, MidStreamResetsAreSurvivedByClientRetries) {
  HttpServerOptions options;
  LiveService live(options);

  ChaosProfile profile;
  profile.partial_read_prob = 0.3;
  profile.partial_write_prob = 0.3;
  profile.reset_prob = 0.08;
  ScopedChaosInjector chaos(profile, kChaosSeed);

  HttpClient client("127.0.0.1", live.port());
  ClientRetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 4;
  policy.jitter_seed = kChaosSeed;
  client.set_retry_policy(policy);

  for (int i = 0; i < 30; ++i) {
    const HttpClient::Response response = client.Get("/healthz");
    ASSERT_TRUE(response.ok) << "request " << i << ": " << response.error;
    ASSERT_EQ(response.status, 200);
  }
  EXPECT_GT(client.retries(), 0u)
      << "this seed must exercise the retry path at least once";
}

TEST(IngestDedupTest, SequencedChunksAckDuplicatesAndRejectGaps) {
  SketchService service(SmallServiceOptions());
  Router router;
  service.Register(router);
  RequestContext context;
  service.Start();

  auto ingest = [&](const std::string& body, const std::string& session,
                    const std::string& seq) {
    HttpRequest request;
    request.method = "POST";
    request.path = "/ingest";
    request.body = body;
    if (!session.empty()) request.headers["x-ingest-session"] = session;
    if (!seq.empty()) request.headers["x-ingest-seq"] = seq;
    return router.Dispatch(request, context);
  };

  // In-order chunks apply normally.
  EXPECT_EQ(ingest("1 2 3", "9", "0").status, 200);
  EXPECT_EQ(ingest("4 5", "9", "1").status, 200);
  EXPECT_EQ(service.pushed(), 5u);

  // A replay of an applied chunk is acked as a duplicate without pushing.
  const HttpResponse duplicate = ingest("4 5", "9", "1");
  EXPECT_EQ(duplicate.status, 200);
  const std::optional<JsonValue> ack = JsonValue::Parse(duplicate.body);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->Get("duplicate")->AsBool());
  EXPECT_EQ(ack->GetNumber("accepted"), 0.0);
  EXPECT_EQ(service.pushed(), 5u) << "a duplicate must not double-ingest";

  // A gap is a client bug: typed 409, nothing applied.
  const HttpResponse gap = ingest("6 7", "9", "5");
  EXPECT_EQ(gap.status, 409);
  EXPECT_NE(gap.body.find("ingest sequence gap: expected 2, got 5"),
            std::string::npos);
  EXPECT_EQ(service.pushed(), 5u);

  // Sessions are independent; malformed sequencing headers are 400s.
  EXPECT_EQ(ingest("6", "10", "0").status, 200);
  EXPECT_EQ(service.pushed(), 6u);
  EXPECT_EQ(ingest("7", "not-a-number", "0").status, 400);
  EXPECT_EQ(ingest("7", "11", "").status, 400)
      << "a session without a sequence number is malformed";
  EXPECT_EQ(service.pushed(), 6u);
  service.Stop();
}

// The end-to-end exactly-once contract: a sequenced producer retrying over
// a resetting, short-counting transport lands every tuple exactly once.
TEST(IngestDedupTest, RetriedIngestOverChaosTransportIsExactlyOnce) {
  HttpServerOptions options;
  LiveService live(options);

  constexpr int kChunks = 40;
  constexpr int kTuplesPerChunk = 25;
  {
    ChaosProfile profile;
    profile.partial_read_prob = 0.3;
    profile.partial_write_prob = 0.3;
    profile.reset_prob = 0.08;
    ScopedChaosInjector chaos(profile, kChaosSeed);

    HttpClient client("127.0.0.1", live.port());
    ClientRetryPolicy policy;
    policy.max_attempts = 10;
    policy.base_backoff_ms = 1;
    policy.max_backoff_ms = 4;
    policy.jitter_seed = kChaosSeed;
    client.set_retry_policy(policy);
    IngestClient ingest(&client, /*session=*/77);

    Xoshiro256 rng(11);
    for (int chunk = 0; chunk < kChunks; ++chunk) {
      std::string body;
      for (int i = 0; i < kTuplesPerChunk; ++i) {
        body += std::to_string(rng() % 1000);
        body += ' ';
      }
      const HttpClient::Response response = ingest.Post(body);
      ASSERT_TRUE(response.ok) << "chunk " << chunk << ": " << response.error;
      ASSERT_EQ(response.status, 200);
    }
    EXPECT_EQ(ingest.next_seq(), static_cast<uint64_t>(kChunks));
  }

  // Chaos uninstalled; seal the stream and check the books.
  HttpClient control("127.0.0.1", live.port());
  ASSERT_EQ(control.Post("/ingest/close", "").status, 200);
  while (!live.service.ingest_done()) std::this_thread::yield();
  EXPECT_EQ(live.service.pushed(),
            static_cast<uint64_t>(kChunks) * kTuplesPerChunk)
      << "retries must not double-ingest nor drop chunks";
}

}  // namespace
}  // namespace sketchsample
