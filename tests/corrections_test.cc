// Unit tests for src/core/corrections.h — the unbiasing scale/shift math.
#include <gtest/gtest.h>

#include "src/core/corrections.h"
#include "src/sampling/coefficients.h"

namespace sketchsample {
namespace {

TEST(CorrectionTest, ApplyIsAffine) {
  const Correction c{2.0, 3.0};
  EXPECT_DOUBLE_EQ(c.Apply(10.0), 17.0);
  EXPECT_DOUBLE_EQ(c.Apply(0.0), -3.0);
}

TEST(SchemeNameTest, AllNamed) {
  EXPECT_STREQ(SamplingSchemeName(SamplingScheme::kBernoulli), "bernoulli");
  EXPECT_STREQ(SamplingSchemeName(SamplingScheme::kWithReplacement), "wr");
  EXPECT_STREQ(SamplingSchemeName(SamplingScheme::kWithoutReplacement),
               "wor");
}

TEST(BernoulliCorrectionTest, JoinScale) {
  const Correction c = BernoulliJoinCorrection(0.1, 0.5);
  EXPECT_DOUBLE_EQ(c.scale, 20.0);
  EXPECT_DOUBLE_EQ(c.shift, 0.0);
}

TEST(BernoulliCorrectionTest, FullSamplingIsIdentity) {
  const Correction join = BernoulliJoinCorrection(1.0, 1.0);
  EXPECT_DOUBLE_EQ(join.Apply(123.0), 123.0);
  const Correction self = BernoulliSelfJoinCorrection(1.0, 1000);
  EXPECT_DOUBLE_EQ(self.Apply(123.0), 123.0);
}

TEST(BernoulliCorrectionTest, SelfJoinShiftUsesSampleSize) {
  const Correction c = BernoulliSelfJoinCorrection(0.5, 100);
  EXPECT_DOUBLE_EQ(c.scale, 4.0);
  EXPECT_DOUBLE_EQ(c.shift, 0.5 / 0.25 * 100);
}

TEST(BernoulliCorrectionTest, InvalidProbabilityThrows) {
  EXPECT_THROW(BernoulliJoinCorrection(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(BernoulliJoinCorrection(0.5, 1.5), std::invalid_argument);
  EXPECT_THROW(BernoulliSelfJoinCorrection(-0.1, 10), std::invalid_argument);
}

TEST(WrCorrectionTest, JoinScaleIsInverseAlphaBeta) {
  const auto cf = ComputeCoefficients(1000, 100);
  const auto cg = ComputeCoefficients(500, 250);
  const Correction c = WrJoinCorrection(cf, cg);
  EXPECT_DOUBLE_EQ(c.scale, 1.0 / (0.1 * 0.5));
}

TEST(WrCorrectionTest, SelfJoinMatchesPaperFormula) {
  const auto cf = ComputeCoefficients(1000, 100);
  const Correction c = WrSelfJoinCorrection(cf);
  EXPECT_DOUBLE_EQ(c.scale, 1.0 / (cf.alpha * cf.alpha2));
  EXPECT_DOUBLE_EQ(c.shift, 1000.0 / cf.alpha2);
}

TEST(WrCorrectionTest, TinySampleThrows) {
  const auto cf = ComputeCoefficients(1000, 1);
  EXPECT_THROW(WrSelfJoinCorrection(cf), std::invalid_argument);
}

TEST(WorCorrectionTest, SelfJoinMatchesPaperFormula) {
  const auto cf = ComputeCoefficients(100, 20);
  const Correction c = WorSelfJoinCorrection(cf);
  EXPECT_DOUBLE_EQ(c.scale, 1.0 / (cf.alpha * cf.alpha1));
  EXPECT_DOUBLE_EQ(c.shift, (1.0 - cf.alpha1) / cf.alpha1 * 100.0);
}

TEST(WorCorrectionTest, FullScanIsExact) {
  // When the whole relation is scanned (α = α₁ = 1) the correction is the
  // identity: online aggregation converges to the exact answer.
  const auto cf = ComputeCoefficients(100, 100);
  const Correction c = WorSelfJoinCorrection(cf);
  EXPECT_DOUBLE_EQ(c.Apply(777.0), 777.0);
}

TEST(WorCorrectionTest, TinySampleThrows) {
  const auto cf = ComputeCoefficients(1000, 1);
  EXPECT_THROW(WorSelfJoinCorrection(cf), std::invalid_argument);
}

// Exactness at the sampling level: applying the self-join correction to the
// *expected* raw value must return the true self-join size. The expectations
// are computed symbolically here for a tiny frequency vector.
TEST(CorrectionExactnessTest, BernoulliSelfJoinUnbiasedInExpectation) {
  // f = {3, 2}: F2 = 13, F1 = 5. E[Σf'²] = Σ p²f² + p(1−p)f = 13p² + 5p(1−p).
  // E[|F'|] = 5p. Corrected: (13p² + 5p(1−p))/p² − (1−p)/p²·5p = 13. ✓
  const double p = 0.3;
  const double raw_expect = 13 * p * p + 5 * p * (1 - p);
  const double sample_size_expect = 5 * p;
  const Correction c = BernoulliSelfJoinCorrection(p, 1);
  // Apply with the shift recomputed for the expected sample size:
  const double est =
      c.scale * raw_expect - (1 - p) / (p * p) * sample_size_expect;
  EXPECT_NEAR(est, 13.0, 1e-12);
}

TEST(CorrectionExactnessTest, WrSelfJoinUnbiasedInExpectation) {
  // f = {3, 2}, N = 5, m = 4. E[Σf'²] = Σ m p_i(1−p_i) + (m p_i)² with
  // p_i = f_i/N.
  const double m = 4, n = 5;
  double raw_expect = 0;
  for (double fi : {3.0, 2.0}) {
    const double pi = fi / n;
    raw_expect += m * pi * (1 - pi) + m * pi * m * pi;
  }
  const auto coef = ComputeCoefficients(5, 4);
  const double est = WrSelfJoinCorrection(coef).Apply(raw_expect);
  EXPECT_NEAR(est, 13.0, 1e-12);
}

TEST(CorrectionExactnessTest, WorSelfJoinUnbiasedInExpectation) {
  // Multivariate hypergeometric: E[f'(f'−1)] = m(m−1) f(f−1)/(N(N−1)).
  const double m = 3, n = 5;
  double raw_expect = 0;
  for (double fi : {3.0, 2.0}) {
    const double mean = m * fi / n;
    const double fact2 = m * (m - 1) * fi * (fi - 1) / (n * (n - 1));
    raw_expect += fact2 + mean;  // E[f'²] = E[f'(f'−1)] + E[f']
  }
  const auto coef = ComputeCoefficients(5, 3);
  const double est = WorSelfJoinCorrection(coef).Apply(raw_expect);
  EXPECT_NEAR(est, 13.0, 1e-12);
}

}  // namespace
}  // namespace sketchsample
