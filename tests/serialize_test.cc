// Tests for sketch binary serialization.
#include <gtest/gtest.h>

#include <vector>

#include "src/data/zipf.h"
#include "src/sketch/serialize.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

SketchParams Params(uint64_t seed, size_t rows = 3, size_t buckets = 64) {
  SketchParams p;
  p.rows = rows;
  p.buckets = buckets;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

template <typename SketchT>
SketchT BuildPopulated(const SketchParams& params) {
  SketchT sketch(params);
  Xoshiro256 rng(99);
  for (int i = 0; i < 500; ++i) sketch.Update(rng.NextBounded(1000));
  return sketch;
}

TEST(SerializeTest, AgmsRoundTripPreservesEstimates) {
  SketchParams p = Params(1);
  p.buckets = 0;  // ignored by AGMS, must round-trip anyway
  const AgmsSketch original = BuildPopulated<AgmsSketch>(p);
  const AgmsSketch restored = DeserializeAgms(SerializeSketch(original));
  EXPECT_EQ(restored.counters(), original.counters());
  EXPECT_DOUBLE_EQ(restored.EstimateSelfJoin(), original.EstimateSelfJoin());
  EXPECT_TRUE(restored.CompatibleWith(original));
}

TEST(SerializeTest, FagmsRoundTripPreservesEstimates) {
  const FagmsSketch original = BuildPopulated<FagmsSketch>(Params(2));
  const FagmsSketch restored = DeserializeFagms(SerializeSketch(original));
  EXPECT_EQ(restored.counters(), original.counters());
  EXPECT_DOUBLE_EQ(restored.EstimateSelfJoin(), original.EstimateSelfJoin());
  EXPECT_DOUBLE_EQ(restored.EstimateFrequency(7),
                   original.EstimateFrequency(7));
}

TEST(SerializeTest, CountMinRoundTrip) {
  const CountMinSketch original = BuildPopulated<CountMinSketch>(Params(3));
  const CountMinSketch restored =
      DeserializeCountMin(SerializeSketch(original));
  EXPECT_EQ(restored.counters(), original.counters());
  EXPECT_DOUBLE_EQ(restored.EstimateFrequency(5),
                   original.EstimateFrequency(5));
}

TEST(SerializeTest, FastCountRoundTrip) {
  const FastCountSketch original =
      BuildPopulated<FastCountSketch>(Params(4));
  const FastCountSketch restored =
      DeserializeFastCount(SerializeSketch(original));
  EXPECT_EQ(restored.counters(), original.counters());
  EXPECT_DOUBLE_EQ(restored.EstimateSelfJoin(), original.EstimateSelfJoin());
}

TEST(SerializeTest, PeekIdentifiesKind) {
  EXPECT_EQ(PeekSketchKind(
                SerializeSketch(BuildPopulated<FagmsSketch>(Params(5)))),
            SketchKind::kFagms);
  SketchParams p = Params(5);
  EXPECT_EQ(PeekSketchKind(SerializeSketch(AgmsSketch(p))),
            SketchKind::kAgms);
  EXPECT_EQ(PeekSketchKind(SerializeSketch(CountMinSketch(p))),
            SketchKind::kCountMin);
  EXPECT_EQ(PeekSketchKind(SerializeSketch(FastCountSketch(p))),
            SketchKind::kFastCount);
}

TEST(SerializeTest, KindMismatchThrows) {
  const auto buffer = SerializeSketch(BuildPopulated<FagmsSketch>(Params(6)));
  EXPECT_THROW(DeserializeAgms(buffer), std::invalid_argument);
  EXPECT_THROW(DeserializeCountMin(buffer), std::invalid_argument);
}

TEST(SerializeTest, CorruptionIsDetected) {
  auto buffer = SerializeSketch(BuildPopulated<FagmsSketch>(Params(7)));
  // Flip one payload byte.
  buffer[buffer.size() / 2] ^= 0xff;
  EXPECT_THROW(DeserializeFagms(buffer), std::invalid_argument);
}

TEST(SerializeTest, TruncationIsDetected) {
  auto buffer = SerializeSketch(BuildPopulated<FagmsSketch>(Params(8)));
  buffer.resize(buffer.size() / 2);
  EXPECT_THROW(DeserializeFagms(buffer), std::invalid_argument);
}

TEST(SerializeTest, GarbageIsRejected) {
  std::vector<uint8_t> garbage(100, 0x5a);
  EXPECT_THROW(DeserializeFagms(garbage), std::invalid_argument);
  EXPECT_THROW(PeekSketchKind({}), std::invalid_argument);
}

TEST(SerializeTest, ShardedSketchingMergesAfterTransport) {
  // The distributed pattern: shards sketch partitions, serialize, a
  // coordinator deserializes and merges; the result must equal sketching
  // the whole stream locally.
  const SketchParams params = Params(9);
  const FrequencyVector data = ZipfFrequencies(500, 5000, 1.0);
  const auto stream = data.ToTupleStream();

  FagmsSketch local(params);
  std::vector<std::vector<uint8_t>> wires;
  constexpr size_t kShards = 4;
  for (size_t shard = 0; shard < kShards; ++shard) {
    FagmsSketch partial(params);
    for (size_t i = shard; i < stream.size(); i += kShards) {
      partial.Update(stream[i]);
      local.Update(stream[i]);
    }
    wires.push_back(SerializeSketch(partial));
  }

  FagmsSketch merged = DeserializeFagms(wires[0]);
  for (size_t shard = 1; shard < kShards; ++shard) {
    merged.Merge(DeserializeFagms(wires[shard]));
  }
  EXPECT_EQ(merged.counters(), local.counters());
  EXPECT_DOUBLE_EQ(merged.EstimateSelfJoin(), local.EstimateSelfJoin());
}

TEST(SerializeTest, LoadCountersValidatesSize) {
  FagmsSketch sketch(Params(10));
  EXPECT_THROW(sketch.LoadCounters(std::vector<double>(7, 0.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sketchsample
