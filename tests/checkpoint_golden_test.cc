// Golden-file compatibility for the SKCP checkpoint wire format.
//
// One committed blob per flag combination the format has grown through:
//
//   v1_base.skcp             flags 0          (source position + sketch)
//   v1_shed_controller.skcp  bits 0|1         (shed + controller state)
//   v1_shards.skcp           bit 2            (shard section)
//   v1_shard_distinct.skcp   bits 2|3         (per-shard KMV distinct blobs)
//   v1_quantile_subpop.skcp  bits 2|3|4       (KLL + keyed-KMV subpop)
//
// Each golden is regenerated in-process from a deterministic recipe and
// must match the committed file byte for byte; deserializing the file and
// re-serializing the result must also reproduce the exact bytes. Together
// those two checks pin the wire format: any serializer change that would
// silently orphan deployed checkpoints fails here first, and the nightly
// forward-compat job replays the previous release's committed blobs
// against HEAD's deserializer using this same test binary.
//
// Regeneration (after an INTENTIONAL format change):
//   SKETCHSAMPLE_WRITE_GOLDEN=1 ./checkpoint_golden_test
// then commit the rewritten tests/golden/*.skcp alongside the format bump.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/sketch/fagms.h"
#include "src/sketch/kll.h"
#include "src/sketch/kmv.h"
#include "src/sketch/serialize.h"
#include "src/stream/checkpoint.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

#ifndef SKETCHSAMPLE_GOLDEN_DIR
#error "SKETCHSAMPLE_GOLDEN_DIR must point at tests/golden"
#endif

// The nightly forward-compat job points this binary at a golden directory
// extracted from the previous release instead of the working tree's.
std::string GoldenDir() {
  const char* override_dir = std::getenv("SKETCHSAMPLE_GOLDEN_DIR_OVERRIDE");
  if (override_dir != nullptr && override_dir[0] != '\0') {
    return override_dir;
  }
  return SKETCHSAMPLE_GOLDEN_DIR;
}

std::string GoldenPath(const std::string& name) {
  return GoldenDir() + "/" + name;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open golden file " << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Deterministic golden recipes. Every value below is a pure function of
// fixed seeds — no clocks, no platform-dependent state — so regeneration on
// any machine reproduces the committed bytes exactly.
// ---------------------------------------------------------------------------

FagmsSketch MakeFagms(uint64_t salt, size_t updates) {
  SketchParams params;
  params.rows = 3;
  params.buckets = 16;
  params.scheme = XiScheme::kEh3;
  params.seed = 42;
  FagmsSketch sketch(params);
  for (uint64_t i = 0; i < updates; ++i) {
    sketch.Update(MixSeed(salt, i) % 97);
  }
  return sketch;
}

KmvSketch MakeKmv(uint64_t salt, size_t updates) {
  KmvSketch kmv(8, 7);
  for (uint64_t i = 0; i < updates; ++i) kmv.Update(MixSeed(salt, i) % 211);
  return kmv;
}

KeyedKmvSketch MakeKeyedKmv(uint64_t salt, size_t updates) {
  KeyedKmvSketch kmv(8, 11);
  for (uint64_t i = 0; i < updates; ++i) {
    kmv.Update(MixSeed(salt, i) % 211);
  }
  return kmv;
}

KllSketch MakeKll(uint64_t salt, size_t updates) {
  KllSketch kll(16, 13);
  for (uint64_t i = 0; i < updates; ++i) kll.Update(MixSeed(salt, i) % 1009);
  return kll;
}

PipelineCheckpoint BaseCheckpoint() {
  PipelineCheckpoint cp;
  cp.source_tuples = 12345;
  cp.sketch = SerializeSketch(MakeFagms(1, 200));
  return cp;
}

PipelineCheckpoint ShedControllerCheckpoint() {
  PipelineCheckpoint cp = BaseCheckpoint();
  cp.has_shed = true;
  cp.shed.p = 0.25;
  cp.shed.skip = 3;
  cp.shed.seen = 12345;
  cp.shed.forwarded = 3099;
  cp.shed.has_skipper = true;
  cp.shed.coin_rng = {11, 22, 33, 44};
  cp.shed.skip_rng = {55, 66, 77, 88};
  cp.has_controller = true;
  cp.controller.p = 0.25;
  cp.controller.backlog = 17.5;
  cp.controller.windows = 4;
  cp.controller.offered = 12345;
  cp.controller.kept = 3099;
  return cp;
}

PipelineCheckpoint ShardCheckpoint() {
  PipelineCheckpoint cp;
  cp.source_tuples = 8192;
  cp.has_shards = true;
  cp.shard_p = 0.5;
  for (uint64_t s = 0; s < 2; ++s) {
    ShardCheckpointState shard;
    shard.seen = 4096;
    shard.kept = 2048 + s;
    shard.sketch = SerializeSketch(MakeFagms(100 + s, 64));
    cp.shards.push_back(std::move(shard));
  }
  cp.sketch = SerializeSketch(MakeFagms(2, 128));
  return cp;
}

PipelineCheckpoint ShardDistinctCheckpoint() {
  PipelineCheckpoint cp = ShardCheckpoint();
  cp.has_shard_distinct = true;
  for (uint64_t s = 0; s < cp.shards.size(); ++s) {
    cp.shards[s].distinct = SerializeSketch(MakeKmv(200 + s, 96));
  }
  return cp;
}

PipelineCheckpoint QuantileSubpopCheckpoint() {
  PipelineCheckpoint cp = ShardDistinctCheckpoint();
  cp.has_quantile_subpop = true;
  cp.quantile = SerializeSketch(MakeKll(3, 300));
  cp.has_shard_subpop = true;
  for (uint64_t s = 0; s < cp.shards.size(); ++s) {
    cp.shards[s].subpop = SerializeSketch(MakeKeyedKmv(300 + s, 96));
  }
  return cp;
}

struct GoldenCase {
  const char* file;
  PipelineCheckpoint (*make)();
};

const GoldenCase kGoldens[] = {
    {"v1_base.skcp", BaseCheckpoint},
    {"v1_shed_controller.skcp", ShedControllerCheckpoint},
    {"v1_shards.skcp", ShardCheckpoint},
    {"v1_shard_distinct.skcp", ShardDistinctCheckpoint},
    {"v1_quantile_subpop.skcp", QuantileSubpopCheckpoint},
};

bool WriteGoldenMode() {
  const char* env = std::getenv("SKETCHSAMPLE_WRITE_GOLDEN");
  return env != nullptr && env[0] == '1';
}

TEST(CheckpointGoldenTest, RegenerateWhenRequested) {
  if (!WriteGoldenMode()) GTEST_SKIP() << "SKETCHSAMPLE_WRITE_GOLDEN not set";
  for (const GoldenCase& golden : kGoldens) {
    WriteFileBytes(GoldenPath(golden.file),
                   SerializeCheckpoint(golden.make()));
  }
}

// The committed blob is exactly what today's serializer produces from the
// deterministic recipe — the write path has not drifted.
TEST(CheckpointGoldenTest, CommittedBytesMatchRegeneration) {
  if (WriteGoldenMode()) GTEST_SKIP();
  for (const GoldenCase& golden : kGoldens) {
    SCOPED_TRACE(golden.file);
    const std::vector<uint8_t> committed = ReadFileBytes(GoldenPath(golden.file));
    const std::vector<uint8_t> regenerated =
        SerializeCheckpoint(golden.make());
    EXPECT_EQ(committed, regenerated);
  }
}

// Deserialize → re-serialize is the identity on every golden: the read path
// loses nothing and the write path adds nothing.
TEST(CheckpointGoldenTest, RoundTripIsByteIdentity) {
  for (const GoldenCase& golden : kGoldens) {
    SCOPED_TRACE(golden.file);
    const std::vector<uint8_t> committed = ReadFileBytes(GoldenPath(golden.file));
    ASSERT_FALSE(committed.empty());
    const PipelineCheckpoint cp = DeserializeCheckpoint(committed);
    EXPECT_EQ(SerializeCheckpoint(cp), committed);
  }
}

// Forward compatibility: every .skcp blob present in the golden directory
// round-trips through HEAD's codec, whatever recipe list wrote it. Unlike
// the recipe-driven tests above, this scans the directory, so the nightly
// forward-compat job can point SKETCHSAMPLE_GOLDEN_DIR_OVERRIDE at the
// previous release's tests/golden/ — which may lack blobs for flag combos
// added since — and still exercise every blob that release shipped.
TEST(CheckpointGoldenTest, EveryBlobInDirectoryRoundTrips) {
  size_t blobs = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(GoldenDir())) {
    if (entry.path().extension() != ".skcp") continue;
    SCOPED_TRACE(entry.path().filename().string());
    const std::vector<uint8_t> committed =
        ReadFileBytes(entry.path().string());
    ASSERT_FALSE(committed.empty());
    const PipelineCheckpoint cp = DeserializeCheckpoint(committed);
    EXPECT_EQ(SerializeCheckpoint(cp), committed);
    ++blobs;
  }
  EXPECT_GT(blobs, 0u) << "golden directory " << GoldenDir()
                       << " holds no .skcp blobs";
}

// The embedded sketch blobs in the newest golden load through their typed
// deserializers — the golden pins semantic compatibility, not just framing.
TEST(CheckpointGoldenTest, EmbeddedBlobsLoadThroughTypedDeserializers) {
  const PipelineCheckpoint cp =
      DeserializeCheckpoint(ReadFileBytes(GoldenPath("v1_quantile_subpop.skcp")));
  ASSERT_TRUE(cp.has_quantile_subpop);
  ASSERT_TRUE(cp.has_shard_subpop);
  ASSERT_EQ(cp.shards.size(), 2u);

  const KllSketch kll = DeserializeKll(cp.quantile);
  const KllSketch expected_kll = MakeKll(3, 300);
  EXPECT_EQ(kll.n(), expected_kll.n());
  EXPECT_EQ(kll.compactions(), expected_kll.compactions());
  EXPECT_EQ(kll.EstimateQuantile(0.5), expected_kll.EstimateQuantile(0.5));

  for (uint64_t s = 0; s < cp.shards.size(); ++s) {
    const FagmsSketch partial = DeserializeFagms(cp.shards[s].sketch);
    EXPECT_TRUE(partial.CompatibleWith(MakeFagms(0, 0)));
    const KmvSketch distinct = DeserializeKmv(cp.shards[s].distinct);
    EXPECT_EQ(distinct.retained(), MakeKmv(200 + s, 96).retained());
    const KeyedKmvSketch subpop = DeserializeKmvKeyed(cp.shards[s].subpop);
    const KeyedKmvSketch expected = MakeKeyedKmv(300 + s, 96);
    ASSERT_EQ(subpop.retained(), expected.retained());
    const auto got_entries = subpop.Entries();
    const auto want_entries = expected.Entries();
    for (size_t i = 0; i < got_entries.size(); ++i) {
      EXPECT_EQ(got_entries[i].hash, want_entries[i].hash);
      EXPECT_EQ(got_entries[i].key, want_entries[i].key);
      EXPECT_EQ(got_entries[i].weight, want_entries[i].weight);
    }
  }
}

// ---------------------------------------------------------------------------
// Hostile variants of the committed blobs. Every mutation must surface as a
// typed CheckpointError (or std::invalid_argument from a typed sketch
// deserializer) — never a crash, never a silent partial load.
// ---------------------------------------------------------------------------

void RefitCrc(std::vector<uint8_t>& bytes) {
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
}

TEST(CheckpointGoldenTest, TruncatedGoldensRejected) {
  const std::vector<uint8_t> committed =
      ReadFileBytes(GoldenPath("v1_quantile_subpop.skcp"));
  // Every prefix must fail: the CRC footer catches most, the length checks
  // catch the rest. Step 7 keeps the loop cheap while hitting every
  // section boundary modulo alignment.
  for (size_t len = 0; len < committed.size(); len += 7) {
    std::vector<uint8_t> truncated(committed.begin(),
                                   committed.begin() + len);
    EXPECT_THROW(DeserializeCheckpoint(truncated), CheckpointError)
        << "prefix length " << len;
  }
}

TEST(CheckpointGoldenTest, FlagForgeryWithoutShardSectionRejected) {
  // Bit 4 requires bit 2; forging it onto the shardless golden must fail
  // before any quantile state is read.
  std::vector<uint8_t> bytes = ReadFileBytes(GoldenPath("v1_base.skcp"));
  bytes[16] |= 0x10;
  RefitCrc(bytes);
  EXPECT_THROW(DeserializeCheckpoint(bytes), CheckpointError);
}

// Inner-format (SKSA) footer: FNV-1a over every preceding byte, refitted
// so a mutation tests the structural validation behind the checksum.
void RefitSketchChecksum(std::vector<uint8_t>& blob) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i + sizeof(uint64_t) < blob.size(); ++i) {
    hash ^= blob[i];
    hash *= 0x100000001b3ULL;
  }
  std::memcpy(blob.data() + blob.size() - sizeof(uint64_t), &hash,
              sizeof(hash));
}

TEST(CheckpointGoldenTest, CorruptedEmbeddedKllBlobRejectedByTypedLoad) {
  // Framing stays valid (checksums refitted), but the KLL payload no longer
  // conserves weight — the typed deserializer must throw when the engine
  // restores it.
  PipelineCheckpoint cp =
      DeserializeCheckpoint(ReadFileBytes(GoldenPath("v1_quantile_subpop.skcp")));
  // SKSA header: magic(4) version(4) kind(4) rows(8) buckets(8) scheme(4)
  // seed(8) counter_count(8) = 48 bytes; the KLL payload leads with n.
  const size_t n_offset = 48;
  ASSERT_GE(cp.quantile.size(), n_offset + 2 * sizeof(uint64_t));
  uint64_t n = 0;
  std::memcpy(&n, cp.quantile.data() + n_offset, sizeof(n));
  n *= 2;  // breaks weight conservation without touching level structure
  std::memcpy(cp.quantile.data() + n_offset, &n, sizeof(n));
  RefitSketchChecksum(cp.quantile);
  EXPECT_THROW(DeserializeKll(cp.quantile), std::invalid_argument);
}

TEST(CheckpointGoldenTest, SubpopCountMismatchRejected) {
  // Forge the subpop blob count on the newest golden: the u64 sits
  // directly after the embedded KLL blob, located by scanning for those
  // exact bytes. A count that disagrees with the shard count must be
  // rejected before any blob is attributed to a shard.
  std::vector<uint8_t> bytes =
      ReadFileBytes(GoldenPath("v1_quantile_subpop.skcp"));
  const std::vector<uint8_t> kll_blob = SerializeSketch(MakeKll(3, 300));
  auto it = std::search(bytes.begin(), bytes.end(), kll_blob.begin(),
                        kll_blob.end());
  ASSERT_NE(it, bytes.end());
  const size_t count_offset =
      static_cast<size_t>(it - bytes.begin()) + kll_blob.size();
  ASSERT_LE(count_offset + sizeof(uint64_t), bytes.size());
  const uint64_t forged = 5;
  std::memcpy(bytes.data() + count_offset, &forged, sizeof(forged));
  RefitCrc(bytes);
  EXPECT_THROW(DeserializeCheckpoint(bytes), CheckpointError);
}

}  // namespace
}  // namespace sketchsample
