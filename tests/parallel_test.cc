// Tests for parallel sharded sketching.
#include <gtest/gtest.h>

#include "src/core/sketch_estimators.h"
#include "src/data/zipf.h"
#include "src/stream/parallel.h"

namespace sketchsample {
namespace {

SketchParams Params() {
  SketchParams p;
  p.rows = 3;
  p.buckets = 512;
  p.scheme = XiScheme::kEh3;
  p.seed = 5;
  return p;
}

TEST(ParallelBuildTest, MatchesSerialExactly) {
  const FrequencyVector f = ZipfFrequencies(1000, 50000, 1.0);
  const auto stream = f.ToTupleStream();
  const FagmsSketch serial = BuildFagmsSketch(stream, Params());
  for (size_t threads : {2, 3, 4, 8}) {
    const FagmsSketch parallel = ParallelBuildFagms(stream, Params(), threads);
    EXPECT_EQ(parallel.counters(), serial.counters())
        << threads << " threads";
  }
}

TEST(ParallelBuildTest, SingleThreadAndTinyStreams) {
  const std::vector<uint64_t> tiny = {1, 2, 3};
  const FagmsSketch serial = BuildFagmsSketch(tiny, Params());
  EXPECT_EQ(ParallelBuildFagms(tiny, Params(), 0).counters(),
            serial.counters());
  EXPECT_EQ(ParallelBuildFagms(tiny, Params(), 1).counters(),
            serial.counters());
  EXPECT_EQ(ParallelBuildFagms(tiny, Params(), 16).counters(),
            serial.counters());
}

TEST(ParallelBuildTest, EmptyStream) {
  const FagmsSketch sketch = ParallelBuildFagms({}, Params(), 4);
  EXPECT_DOUBLE_EQ(sketch.EstimateSelfJoin(), 0.0);
}

TEST(ParallelBuildTest, EstimatesRemainAccurate) {
  const FrequencyVector f = ZipfFrequencies(2000, 100000, 1.0);
  const auto stream = f.ToTupleStream();
  SketchParams p = Params();
  p.buckets = 4096;
  const FagmsSketch sketch = ParallelBuildFagms(stream, p, 4);
  EXPECT_LT(std::abs(sketch.EstimateSelfJoin() - f.F2()) / f.F2(), 0.1);
}

}  // namespace
}  // namespace sketchsample
