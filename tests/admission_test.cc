// Tests for the AIMD admission controller (src/service/admission.h): the
// query-path analogue of shed_controller_test. Covers the control law
// (proportional clamp down past capacity, additive probe up under
// headroom), the typed rejections (429 rate shed vs 503 hard cap, both
// with Retry-After), positional determinism of the admit/shed sequence,
// the min/max admit clamps, and — under the `tsan` ctest label — the
// admission-vs-ingest race: query threads gated by a shared controller
// while the service ingests live.

// lint:allow-file(raw-atomic-confined): stop flag coordinating the racing
// query/ingest threads in the TSan end-to-end test; harness-side only.
#include "src/service/admission.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/service/router.h"
#include "src/service/service.h"
#include "src/util/json.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

AdmissionOptions SmallOptions() {
  AdmissionOptions options;
  options.capacity = 4;
  options.window_requests = 8;
  return options;
}

TEST(AdmissionTest, AdmitsEverythingUnderCapacity) {
  AdmissionController controller(SmallOptions());
  for (int i = 0; i < 100; ++i) {
    AdmissionController::Decision decision = controller.Admit();
    ASSERT_TRUE(decision.admitted) << "request " << i;
    controller.OnDone();
  }
  const AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.offered, 100u);
  EXPECT_EQ(stats.admitted, 100u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.admit_rate, 1.0);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_FALSE(controller.saturated());
}

TEST(AdmissionTest, HardCapAnswers503WithRetryAfter) {
  AdmissionOptions options = SmallOptions();
  options.window_requests = 1000;  // no retarget during this test
  AdmissionController controller(options);
  // Default hard limit = 2 x capacity = 8. At admit rate 1.0 every request
  // below the cap is admitted; the ninth concurrent request must bounce.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(controller.Admit().admitted);
  }
  const AdmissionController::Decision overflow = controller.Admit();
  EXPECT_FALSE(overflow.admitted);
  EXPECT_EQ(overflow.status, 503);
  EXPECT_GE(overflow.retry_after_s, 1);
  EXPECT_LE(overflow.retry_after_s, options.retry_after_max_s);
  EXPECT_EQ(controller.stats().rejected, 1u);
  EXPECT_TRUE(controller.saturated()) << "at the hard cap";
  // Releasing one slot readmits.
  controller.OnDone();
  EXPECT_TRUE(controller.Admit().admitted);
}

TEST(AdmissionTest, ClampsDownPastCapacityAndProbesBackUp) {
  AdmissionOptions options = SmallOptions();  // capacity 4, window 8
  AdmissionController controller(options);

  // Overloaded window: hold 8 slots (= hard limit) so the window peak is
  // twice the capacity budget; the close clamps the rate proportionally.
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(controller.Admit().admitted);
  const double clamped = controller.stats().admit_rate;
  EXPECT_LT(clamped, 1.0);
  EXPECT_NEAR(clamped, 0.5, 1e-12) << "peak 8 vs capacity 4 halves the rate";
  EXPECT_TRUE(controller.saturated());

  // Drain. The next window still sees the old depth as its starting peak
  // (the controller carries inflight across the close), so run one flush
  // window before asserting on the recovery shape.
  for (int i = 0; i < 8; ++i) controller.OnDone();
  for (uint64_t i = 0; i < options.window_requests; ++i) {
    if (controller.Admit().admitted) controller.OnDone();
  }

  // Idle windows: the rate probes back up additively and monotonically.
  double last = controller.stats().admit_rate;
  int windows_to_recover = 0;
  while (controller.stats().admit_rate < options.max_admit &&
         windows_to_recover < 100) {
    for (uint64_t i = 0; i < options.window_requests; ++i) {
      if (controller.Admit().admitted) controller.OnDone();
    }
    const double rate = controller.stats().admit_rate;
    EXPECT_GE(rate, last) << "recovery is monotone";
    EXPECT_LE(rate - last, options.increase_step + 1e-12)
        << "recovery is additive, not multiplicative";
    last = rate;
    ++windows_to_recover;
  }
  EXPECT_EQ(controller.stats().admit_rate, options.max_admit);
  EXPECT_GT(windows_to_recover, 2) << "recovery takes multiple windows";
  EXPECT_FALSE(controller.saturated());
}

TEST(AdmissionTest, SustainedOverloadNeverDropsBelowMinAdmit) {
  AdmissionOptions options = SmallOptions();
  options.min_admit = 0.25;
  AdmissionController controller(options);
  for (int i = 0; i < 8; ++i) controller.Admit();  // pin inflight at the cap
  for (int i = 0; i < 1000; ++i) controller.Admit();
  const AdmissionController::Stats stats = controller.stats();
  EXPECT_GE(stats.admit_rate, options.min_admit);
  EXPECT_GT(stats.windows, 0u);
  // Every offered request is accounted for exactly once.
  EXPECT_EQ(stats.offered, stats.admitted + stats.shed + stats.rejected);
}

TEST(AdmissionTest, RateShedIs429AndPositionallyDeterministic) {
  // Pin the admit rate at 0.5 via the clamps so both controllers hold the
  // same rate for the whole arrival sequence.
  AdmissionOptions options;
  options.initial_admit = 0.5;
  options.min_admit = 0.5;
  options.max_admit = 0.5;
  options.capacity = 64;
  AdmissionController a(options);
  AdmissionController b(options);

  int shed = 0;
  for (int i = 0; i < 400; ++i) {
    const AdmissionController::Decision da = a.Admit();
    const AdmissionController::Decision db = b.Admit();
    ASSERT_EQ(da.admitted, db.admitted) << "arrival " << i;
    if (da.admitted) {
      a.OnDone();
      b.OnDone();
    } else {
      EXPECT_EQ(da.status, 429);
      EXPECT_EQ(da.retry_after_s, db.retry_after_s);
      EXPECT_GE(da.retry_after_s, 1);
      ++shed;
    }
  }
  // At rate 0.5 the positional draws shed about half the arrivals.
  EXPECT_GT(shed, 400 / 4);
  EXPECT_LT(shed, 3 * 400 / 4);

  // A different seed yields a different (but equally deterministic) pattern.
  AdmissionOptions reseeded = options;
  reseeded.seed ^= 0xabcdef;
  AdmissionController c(reseeded);
  int diverged = 0;
  AdmissionController replay(options);
  for (int i = 0; i < 400; ++i) {
    const bool base = replay.Admit().admitted;
    if (base) replay.OnDone();
    const bool other = c.Admit().admitted;
    if (other) c.OnDone();
    if (base != other) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(AdmissionTest, RetryAfterScalesWithShedSeverity) {
  AdmissionOptions gentle;
  gentle.capacity = 1;
  gentle.hard_limit = 1;
  AdmissionController full_rate(gentle);
  ASSERT_TRUE(full_rate.Admit().admitted);
  EXPECT_EQ(full_rate.Admit().retry_after_s, 1) << "severity 0 hints 1s";

  AdmissionOptions severe = gentle;
  severe.initial_admit = 0.1;
  severe.min_admit = 0.1;
  severe.max_admit = 0.1;
  AdmissionController low_rate(severe);
  AdmissionController::Decision rejected;
  for (int i = 0; i < 64; ++i) {
    rejected = low_rate.Admit();
    if (!rejected.admitted) break;
    low_rate.OnDone();
  }
  ASSERT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.retry_after_s, severe.retry_after_max_s)
      << "severity 0.9 saturates the hint";
}

// Admission racing live ingest, the way the HTTP server drives it: query
// threads Admit()/OnDone() around Router::Dispatch while the service's
// ingest thread runs — under TSan (ctest label `tsan`) this is the
// admission-vs-ingest data-race probe. Every admitted answer must carry a
// parseable body with the degraded/staleness stamps, and the controller's
// books must balance once the threads join.
TEST(AdmissionConcurrencyTest, AdmissionVsIngestRaceKeepsBooksConsistent) {
  SketchServiceOptions service_options;
  service_options.sketch.rows = 3;
  service_options.sketch.buckets = 128;
  service_options.sketch.seed = 33;
  service_options.engine.shards = 2;
  service_options.engine.shed_p = 0.5;
  service_options.engine.seed = 42;
  service_options.engine.chunk_tuples = 512;
  service_options.snapshot_every = 1024;
  service_options.max_readers = 8;
  SketchService service(service_options);
  Router router;
  service.Register(router);
  service.Start();

  AdmissionOptions admission_options;
  admission_options.capacity = 2;
  admission_options.window_requests = 32;
  AdmissionController admission(admission_options);

  constexpr size_t kQueryThreads = 3;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> threads;
  threads.reserve(kQueryThreads);
  for (size_t t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      HttpRequest request;
      request.method = "GET";
      request.path = "/query/selfjoin";
      while (!stop.load(std::memory_order_acquire)) {
        const AdmissionController::Decision decision = admission.Admit();
        if (!decision.admitted) continue;
        RequestContext context;
        context.reader_slot = t;
        context.admission = &admission;
        context.admission_saturated = admission.saturated();
        const HttpResponse response = router.Dispatch(request, context);
        admission.OnDone();
        ASSERT_EQ(response.status, 200);
        const std::optional<JsonValue> body = JsonValue::Parse(response.body);
        ASSERT_TRUE(body.has_value());
        ASSERT_TRUE(body->Get("degraded") != nullptr);
        ASSERT_TRUE(body->GetNumber("staleness").has_value());
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Xoshiro256 rng(7);
  std::vector<uint64_t> chunk(1024);
  for (int batch = 0; batch < 40; ++batch) {
    for (uint64_t& v : chunk) v = rng() % 1000;
    ASSERT_EQ(service.Push(chunk.data(), chunk.size()), chunk.size());
  }
  service.CloseIngest();
  while (!service.ingest_done()) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(service.ingest_error(), "");
  EXPECT_GT(answered.load(), 0u);
  const AdmissionController::Stats stats = admission.stats();
  EXPECT_EQ(stats.inflight, 0u) << "every Admit was paired with OnDone";
  EXPECT_EQ(stats.offered, stats.admitted + stats.shed + stats.rejected);
  EXPECT_GE(stats.admitted, answered.load());
}

}  // namespace
}  // namespace sketchsample
