// Turnstile (insert/delete) semantics across the linear sketches: after a
// sequence of inserts and matching deletes, estimates must reflect only the
// surviving tuples.
#include <gtest/gtest.h>

#include <vector>

#include "src/data/zipf.h"
#include "src/sketch/agms.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/fagms.h"
#include "src/sketch/fastcount.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

SketchParams Params(uint64_t seed) {
  SketchParams p;
  p.rows = 3;
  p.buckets = 512;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

// Applies a random insert/delete workload to any sketch with
// Update(key, weight) and mirrors it into an exact frequency vector.
template <typename SketchT>
FrequencyVector ApplyWorkload(SketchT& sketch, uint64_t seed,
                              size_t domain = 200, int operations = 5000) {
  FrequencyVector exact(domain);
  Xoshiro256 rng(seed);
  for (int i = 0; i < operations; ++i) {
    const uint64_t key = rng.NextBounded(domain);
    // Bias toward inserts so counts stay non-negative; delete only if the
    // key currently has mass.
    if (rng.NextDouble() < 0.7 || exact.count(key) == 0) {
      sketch.Update(key, 1.0);
      exact.Add(key);
    } else {
      sketch.Update(key, -1.0);
      exact.set_count(key, exact.count(key) - 1);
    }
  }
  return exact;
}

TEST(TurnstileTest, FagmsInsertDeleteCancelsExactly) {
  FagmsSketch sketch(Params(1));
  for (int i = 0; i < 100; ++i) sketch.Update(i % 10);
  for (int i = 0; i < 100; ++i) sketch.Update(i % 10, -1.0);
  for (double c : sketch.counters()) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateSelfJoin(), 0.0);
}

TEST(TurnstileTest, FagmsTracksMixedWorkload) {
  FagmsSketch sketch(Params(2));
  const FrequencyVector exact = ApplyWorkload(sketch, 3);
  ASSERT_GT(exact.F2(), 0.0);
  EXPECT_LT(std::abs(sketch.EstimateSelfJoin() - exact.F2()) / exact.F2(),
            0.2);
  // A surviving heavy key is recoverable by point query.
  size_t heavy = 0;
  for (size_t v = 1; v < exact.domain_size(); ++v) {
    if (exact.count(v) > exact.count(heavy)) heavy = v;
  }
  EXPECT_NEAR(sketch.EstimateFrequency(heavy),
              static_cast<double>(exact.count(heavy)),
              5.0 + 0.3 * static_cast<double>(exact.count(heavy)));
}

TEST(TurnstileTest, AgmsTracksMixedWorkload) {
  SketchParams p = Params(4);
  p.rows = 64;
  p.scheme = XiScheme::kCw4;
  AgmsSketch sketch(p);
  const FrequencyVector exact = ApplyWorkload(sketch, 5);
  EXPECT_LT(std::abs(sketch.EstimateSelfJoin() - exact.F2()) / exact.F2(),
            0.5);
}

TEST(TurnstileTest, FastCountTracksMixedWorkload) {
  SketchParams p = Params(6);
  // FastCount's variance on low-skew data scales like F1²/b; give it more
  // buckets than the ±1-signed sketches need for the same tolerance.
  p.buckets = 4096;
  FastCountSketch sketch(p);
  const FrequencyVector exact = ApplyWorkload(sketch, 7);
  EXPECT_LT(std::abs(sketch.EstimateSelfJoin() - exact.F2()) / exact.F2(),
            0.3);
}

TEST(TurnstileTest, DyadicRangeAfterDeletions) {
  DyadicRangeSketch sketch(8, Params(8));
  // Insert 0..255 once each, then delete the lower half.
  for (uint64_t v = 0; v < 256; ++v) sketch.Update(v);
  for (uint64_t v = 0; v < 128; ++v) sketch.Update(v, -1.0);
  EXPECT_NEAR(sketch.EstimateRange(0, 127), 0.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateRange(128, 255), 128.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateRange(0, 255), 128.0, 1e-9);
}

TEST(TurnstileTest, JoinOfTurnstileStreams) {
  // Join estimates remain unbiased when both inputs saw deletions.
  const SketchParams params = Params(9);
  FagmsSketch a(params), b(params);
  const FrequencyVector exact_a = ApplyWorkload(a, 10);
  const FrequencyVector exact_b = ApplyWorkload(b, 11);
  const double truth = ExactJoinSize(exact_a, exact_b);
  ASSERT_GT(truth, 0.0);
  EXPECT_LT(std::abs(a.EstimateJoin(b) - truth) / truth, 0.3);
}

}  // namespace
}  // namespace sketchsample
