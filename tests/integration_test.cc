// End-to-end integration tests: the three paper applications (§VI) run
// through the public API on realistic workloads, checking estimates against
// exact answers and analytic error predictions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/confidence.h"
#include "src/core/decomposition.h"
#include "src/core/sketch_over_sample.h"
#include "src/data/tpch_lite.h"
#include "src/data/zipf.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

SketchParams Fagms(uint64_t seed, size_t buckets = 4096) {
  SketchParams p;
  p.rows = 1;
  p.buckets = buckets;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

// Application 1 (§VI-A): load shedding in front of a sketch. A 10% Bernoulli
// sample must estimate the full-stream self-join within a few percent on a
// moderately skewed stream.
TEST(IntegrationTest, LoadSheddingRecoverFullStreamAggregates) {
  const FrequencyVector f = ZipfFrequencies(10000, 200000, 1.0);
  auto stream = f.ToTupleStream();
  Xoshiro256 rng(1);
  Shuffle(stream, rng);

  std::vector<double> estimates;
  for (int rep = 0; rep < 10; ++rep) {
    BernoulliSketchEstimator<FagmsSketch> est(0.1, Fagms(MixSeed(2, rep)),
                                              MixSeed(3, rep));
    est.ProcessStreamWithSkips(stream);
    estimates.push_back(est.EstimateSelfJoin());
  }
  EXPECT_LT(SummarizeErrors(estimates, f.F2()).mean_error, 0.10);
}

// Application 2 (§VI-B): estimating a generative model's properties from an
// i.i.d. stream of samples.
TEST(IntegrationTest, GenerativeModelF2FromIidStream) {
  const FrequencyVector population = ZipfFrequencies(5000, 100000, 1.2);
  const auto relation = population.ToTupleStream();

  std::vector<double> estimates;
  for (int rep = 0; rep < 10; ++rep) {
    Xoshiro256 rng(MixSeed(4, rep));
    SampledStreamEstimator<FagmsSketch> est(
        SamplingScheme::kWithReplacement, relation.size(),
        Fagms(MixSeed(5, rep)));
    for (int k = 0; k < 10000; ++k) {  // 10% sample fraction
      est.Update(relation[rng.NextBounded(relation.size())]);
    }
    estimates.push_back(est.EstimateSelfJoin());
  }
  EXPECT_LT(SummarizeErrors(estimates, population.F2()).mean_error, 0.10);
}

// Application 3 (§VI-C): online aggregation over TPC-H-lite. A 10% scan
// prefix must estimate |lineitem ⋈ orders| within a few percent.
TEST(IntegrationTest, OnlineAggregationTpchJoin) {
  const TpchLiteData data = GenerateTpchLite(0.02, 7);  // 30K orders
  const double truth = ExactJoinSize(data.lineitem_freq, data.orders_freq);

  std::vector<double> estimates;
  for (int rep = 0; rep < 10; ++rep) {
    const SketchParams params = Fagms(MixSeed(6, rep), 8192);
    SampledStreamEstimator<FagmsSketch> el(
        SamplingScheme::kWithoutReplacement, data.lineitem.size(), params);
    SampledStreamEstimator<FagmsSketch> eo(
        SamplingScheme::kWithoutReplacement, data.orders.size(), params);
    for (size_t i = 0; i < data.lineitem.size() / 10; ++i) {
      el.Update(data.lineitem[i]);
    }
    for (size_t i = 0; i < data.orders.size() / 10; ++i) {
      eo.Update(data.orders[i]);
    }
    estimates.push_back(el.EstimateJoin(eo));
  }
  EXPECT_LT(SummarizeErrors(estimates, truth).mean_error, 0.15);
}

// The paper's headline claim (§VII-E): at a 10% sampling rate, the combined
// estimator's error is close to the full-sketch estimator's error.
TEST(IntegrationTest, TenPercentSampleMatchesFullSketchAccuracy) {
  const FrequencyVector f = ZipfFrequencies(2000, 50000, 1.0);
  const FrequencyVector g = ZipfFrequencies(2000, 50000, 1.0);
  const double truth = ExactJoinSize(f, g);
  auto sf = f.ToTupleStream();
  auto sg = g.ToTupleStream();
  Xoshiro256 rng(8);
  Shuffle(sf, rng);
  Shuffle(sg, rng);

  std::vector<double> full, sampled;
  for (int rep = 0; rep < 15; ++rep) {
    const SketchParams params = Fagms(MixSeed(9, rep), 4096);
    {
      BernoulliSketchEstimator<FagmsSketch> ef(1.0, params, 1);
      BernoulliSketchEstimator<FagmsSketch> eg(1.0, params, 2);
      for (uint64_t v : sf) ef.Update(v);
      for (uint64_t v : sg) eg.Update(v);
      full.push_back(ef.EstimateJoin(eg));
    }
    {
      BernoulliSketchEstimator<FagmsSketch> ef(0.1, params,
                                               MixSeed(10, rep));
      BernoulliSketchEstimator<FagmsSketch> eg(0.1, params,
                                               MixSeed(11, rep));
      for (uint64_t v : sf) ef.Update(v);
      for (uint64_t v : sg) eg.Update(v);
      sampled.push_back(ef.EstimateJoin(eg));
    }
  }
  const double full_err = SummarizeErrors(full, truth).mean_error;
  const double sampled_err = SummarizeErrors(sampled, truth).mean_error;
  // "minimal error degradation": sampled error within a small additive and
  // multiplicative envelope of the full-sketch error.
  EXPECT_LT(sampled_err, std::max(3.0 * full_err, full_err + 0.05));
}

// Analytic error prediction matches observed error: the CLT interval built
// from the Eq 25 variance should cover the truth at roughly its level.
TEST(IntegrationTest, PredictedVarianceCalibratesObservedError) {
  const FrequencyVector f = ZipfFrequencies(500, 20000, 0.5);
  const FrequencyVector g = ZipfFrequencies(500, 20000, 0.5);
  const double truth = ExactJoinSize(f, g);
  const auto sf = f.ToTupleStream();
  const auto sg = g.ToTupleStream();
  constexpr double kP = 0.3;
  constexpr size_t kBuckets = 1024;

  SamplingSpec spec;
  spec.scheme = SamplingScheme::kBernoulli;
  spec.p = kP;
  spec.q = kP;
  // F-AGMS with b buckets behaves like ~b averaged AGMS estimators.
  const VarianceTerms v = CombinedJoinVariance(spec, f, g, kBuckets);

  int covered = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    const SketchParams params = Fagms(MixSeed(12, t), kBuckets);
    BernoulliSketchEstimator<FagmsSketch> ef(kP, params, MixSeed(13, t));
    BernoulliSketchEstimator<FagmsSketch> eg(kP, params, MixSeed(14, t));
    for (uint64_t x : sf) ef.Update(x);
    for (uint64_t x : sg) eg.Update(x);
    const auto ci = CltInterval(ef.EstimateJoin(eg), v.Total(), 0.95);
    covered += (ci.low <= truth && truth <= ci.high);
  }
  // F-AGMS is usually *better* than the AGMS analysis predicts, so coverage
  // at or above ~85% is the meaningful check here.
  EXPECT_GE(covered, kTrials * 85 / 100);
}

}  // namespace
}  // namespace sketchsample
