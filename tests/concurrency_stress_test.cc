// Concurrency stress tests for the parallel build path, exercised under
// ThreadSanitizer by the `tsan` preset/CI job (they also run — and assert
// bit-exactness — in the regular suites).
//
// What is hammered, and why:
//   * ParallelBuildFagms shares one immutable ξ/hash state across worker
//     threads via shared_ptr-const (src/stream/parallel.cc); a stray
//     mutable member in any ξ family would be a silent race that output
//     statistics cannot reveal (the paper's variance formulas assume exact
//     sign evaluations).
//   * Concurrent Merge() reductions: disjoint-pair tree merges are the
//     pattern distributed aggregation uses; they are race-free only while
//     sketch copies share no mutable state.
//   * The metrics registry is written from every instrumented hot path at
//     once; counters must stay coherent under concurrent Add/snapshot/
//     enable-toggle traffic.
// lint:allow-file(raw-atomic-confined): TSan stress harness driving real
// threads; raw atomics here are harness coordination, and TSan (not the
// model checker) is the oracle for this tier.
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/prng/xi.h"
#include "src/sketch/fagms.h"
#include "src/sketch/sketch.h"
#include "src/stream/checkpoint.h"
#include "src/stream/parallel.h"
#include "src/stream/shard_engine.h"
#include "src/stream/shed_controller.h"
#include "src/stream/source.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

std::vector<uint64_t> MakeStream(size_t n, uint64_t seed, uint64_t domain) {
  std::vector<uint64_t> stream(n);
  Xoshiro256 rng(seed);
  for (auto& key : stream) key = rng.NextBounded(domain);
  return stream;
}

// Every ξ scheme's const evaluation path runs concurrently inside
// ParallelBuildFagms; a data race in any family (e.g. an accidentally
// cached intermediate) trips TSan here and breaks bit-exactness below.
TEST(ConcurrencyStressTest, ParallelBuildMatchesSerialForEveryScheme) {
  const std::vector<uint64_t> stream = MakeStream(1 << 15, 42, 1 << 20);
  for (XiScheme scheme : {XiScheme::kEh3, XiScheme::kBch3, XiScheme::kBch5,
                          XiScheme::kCw2, XiScheme::kCw4}) {
    SketchParams params;
    params.rows = 5;
    params.buckets = 512;
    params.scheme = scheme;
    params.seed = 7;
    FagmsSketch serial(params);
    serial.UpdateBatch(stream);
    const FagmsSketch parallel = ParallelBuildFagms(stream, params, 8);
    EXPECT_EQ(serial.counters(), parallel.counters())
        << "scheme " << static_cast<int>(scheme);
  }
}

// Many worker shards update private counters while reader threads
// concurrently query a master copy sharing the same ξ/hash state: readers
// must never observe (or cause) writes in the shared immutable part.
TEST(ConcurrencyStressTest, ShardWritersWithConcurrentSharedStateReaders) {
  constexpr size_t kShards = 6;
  constexpr size_t kReaders = 3;
  constexpr size_t kKeysPerShard = 1 << 13;

  SketchParams params;
  params.rows = 3;
  params.buckets = 256;
  params.scheme = XiScheme::kCw4;
  params.seed = 11;

  FagmsSketch master(params);
  master.UpdateBatch(MakeStream(1 << 10, 5, 1 << 16));

  std::vector<FagmsSketch> shards(kShards, master);
  std::vector<std::vector<uint64_t>> streams;
  streams.reserve(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    streams.push_back(MakeStream(kKeysPerShard, 100 + s, 1 << 16));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&master, &stop, r] {
      double sink = 0;
      uint64_t key = r;
      while (!stop.load(std::memory_order_acquire)) {
        sink += master.EstimateSelfJoin();
        sink += master.EstimateFrequency(key++);
      }
      EXPECT_TRUE(sink == sink);  // consume, and reject NaN
    });
  }

  std::vector<std::thread> writers;
  writers.reserve(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    writers.emplace_back(
        [&shards, &streams, s] { shards[s].UpdateBatch(streams[s]); });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  // Bit-exactness: each shard started as a copy of the master (counters
  // U0) and appended its own stream, so it must equal a serial build of
  // U0 + stream_s — any divergence means the "shared immutable ξ state"
  // contract was violated somewhere under the concurrent traffic above.
  for (size_t s = 0; s < kShards; ++s) {
    FagmsSketch expected(params);
    expected.UpdateBatch(MakeStream(1 << 10, 5, 1 << 16));
    expected.UpdateBatch(streams[s]);
    EXPECT_EQ(shards[s].counters(), expected.counters()) << "shard " << s;
  }
}

// Disjoint-pair tree reduction: rounds of concurrent Merge() calls on
// non-overlapping sketch pairs, the way a distributed aggregator combines
// per-node sketches. Result must equal the serial left fold.
TEST(ConcurrencyStressTest, ConcurrentTreeMergeMatchesSerialFold) {
  constexpr size_t kLeaves = 16;  // power of two
  constexpr size_t kKeysPerLeaf = 1 << 12;

  SketchParams params;
  params.rows = 4;
  params.buckets = 128;
  params.scheme = XiScheme::kEh3;
  params.seed = 3;

  const FagmsSketch master(params);
  std::vector<FagmsSketch> leaves(kLeaves, master);
  std::vector<std::vector<uint64_t>> streams;
  streams.reserve(kLeaves);
  for (size_t i = 0; i < kLeaves; ++i) {
    streams.push_back(MakeStream(kKeysPerLeaf, 1000 + i, 1 << 18));
  }
  {
    std::vector<std::thread> builders;
    builders.reserve(kLeaves);
    for (size_t i = 0; i < kLeaves; ++i) {
      builders.emplace_back(
          [&leaves, &streams, i] { leaves[i].UpdateBatch(streams[i]); });
    }
    for (auto& b : builders) b.join();
  }

  for (size_t stride = 1; stride < kLeaves; stride *= 2) {
    std::vector<std::thread> mergers;
    for (size_t i = 0; i + stride < kLeaves; i += 2 * stride) {
      mergers.emplace_back(
          [&leaves, i, stride] { leaves[i].Merge(leaves[i + stride]); });
    }
    for (auto& m : mergers) m.join();
  }

  FagmsSketch serial(params);
  for (size_t i = 0; i < kLeaves; ++i) serial.UpdateBatch(streams[i]);
  EXPECT_EQ(serial.counters(), leaves.front().counters());
}

// The registry takes concurrent Add() traffic from instrumented hot paths,
// snapshot reads, first-use registrations, and enable toggles all at once.
TEST(ConcurrencyStressTest, MetricsRegistryUnderConcurrentTraffic) {
  constexpr size_t kWriters = 6;
  constexpr uint64_t kIters = 20000;

  const bool was_enabled = metrics::Enabled();
  metrics::SetEnabled(true);
  metrics::Registry& registry = metrics::Registry::Global();
  registry.GetCounter("stress.exact").Reset();

  std::atomic<bool> stop{false};
  std::thread snapshotter([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const JsonValue snapshot = registry.ToJson();
      ASSERT_TRUE(snapshot.is_object());
      (void)registry.Counters();
      (void)registry.Timers();
    }
  });
  std::thread toggler([&stop] {
    // Flipping the global switch mid-run is documented as safe; hot paths
    // must keep their load+branch coherent while it changes.
    bool on = true;
    while (!stop.load(std::memory_order_acquire)) {
      metrics::SetEnabled(on = !on);
      std::this_thread::yield();
    }
    metrics::SetEnabled(true);
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      // Exact counter: bypasses the enabled() gate, so the final count is
      // deterministic regardless of the toggler.
      metrics::Counter& exact = registry.GetCounter("stress.exact");
      for (uint64_t i = 0; i < kIters; ++i) {
        exact.Add(1);
        SKETCHSAMPLE_METRIC_INC("stress.gated");
        // First-use registration from several threads at once.
        registry.GetCounter("stress.lane." + std::to_string(i % 4 + w % 2))
            .Add(1);
        if (i % 1024 == 0) {
          SKETCHSAMPLE_METRIC_SCOPED_TIMER("stress.timer");
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  toggler.join();

  EXPECT_EQ(registry.GetCounter("stress.exact").Get(), kWriters * kIters);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("stress.exact").Get(), 0u);
  metrics::SetEnabled(was_enabled);
}

// --- Sharded ingest engine (src/stream/shard_engine.h) ------------------

SketchParams ShardEngineParams() {
  SketchParams params;
  params.rows = 3;
  params.buckets = 256;
  params.seed = 11;
  return params;
}

// Router, four workers, and the merge stage all running flat out with a
// deliberately tiny ring (capacity 2), so every buffer handoff crosses the
// full/empty boundaries where SPSC publication bugs live. The shards=1
// reference makes any race that corrupts data visible as a counter
// mismatch; TSan sees the access pattern itself.
TEST(ConcurrencyStressTest, ShardEngineRouterWorkersMergerUnderLoad) {
  const std::vector<uint64_t> stream = MakeStream(1 << 16, 21, 1 << 12);
  const FagmsSketch proto{ShardEngineParams()};

  ShardEngineOptions opts;
  opts.shards = 1;
  opts.shed_p = 0.6;
  opts.seed = 99;
  opts.chunk_tuples = 128;
  opts.queue_chunks = 2;
  ShardEngine<FagmsSketch> reference(proto, opts);
  {
    VectorSource source(stream);
    reference.Run(source);
  }

  opts.shards = 4;
  ShardEngine<FagmsSketch> engine(proto, opts);
  VectorSource source(stream);
  const ShardEngineStats stats = engine.Run(source);
  EXPECT_TRUE(stats.ended);
  EXPECT_EQ(engine.total_kept(), reference.total_kept());
  EXPECT_EQ(engine.merged().counters(), reference.merged().counters());
}

// A shed retarget (controller tick) racing workers that are still draining
// chunks routed at the old rate, with rings running full the whole time
// (ring backpressure feeds the congestion back into the controller). The
// result is scheduling-dependent by design; the assertions are the
// invariants that must hold under any interleaving.
TEST(ConcurrencyStressTest, ShardEngineShedRetargetRacingFullRing) {
  const std::vector<uint64_t> stream = MakeStream(1 << 16, 23, 1 << 12);

  ShedControllerOptions copts;
  copts.min_p = 0.05;
  copts.capacity_per_window = 1000;  // far below offered: constant overload
  copts.window_tuples = 4096;
  ShedController controller(copts);

  ShardEngineOptions opts;
  opts.shards = 4;
  opts.seed = 101;
  opts.chunk_tuples = 128;
  opts.queue_chunks = 2;
  opts.controller = &controller;
  opts.ring_backpressure = true;
  ShardEngine<FagmsSketch> engine(FagmsSketch(ShardEngineParams()), opts);
  VectorSource source(stream);
  const ShardEngineStats stats = engine.Run(source);

  EXPECT_TRUE(stats.ended);
  EXPECT_EQ(stats.tuples, stream.size());
  EXPECT_GT(stats.windows, 0u);
  EXPECT_LE(engine.total_kept(), engine.total_seen());
  EXPECT_GE(engine.p(), copts.min_p);
  EXPECT_LT(engine.p(), 1.0);  // the overload really did force shedding
  uint64_t shard_sum = 0;
  for (uint64_t kept : stats.shard_kept) shard_sum += kept;
  EXPECT_EQ(shard_sum, stats.kept);
}

// Checkpoint snapshots taken while ingest is in full flight: the quiesce
// barrier must publish every worker's partial state to the router before
// serialization reads it (TSan validates the happens-before edge), and the
// snapshots must be good enough to resume bit-exactly.
TEST(ConcurrencyStressTest, ShardEngineCheckpointSnapshotMidIngest) {
  const std::vector<uint64_t> stream = MakeStream(1 << 16, 27, 1 << 12);
  const FagmsSketch proto{ShardEngineParams()};

  ShardEngineOptions opts;
  opts.shards = 4;
  opts.shed_p = 0.5;
  opts.seed = 103;
  opts.chunk_tuples = 128;
  opts.queue_chunks = 2;
  ShardEngine<FagmsSketch> reference(proto, opts);
  {
    VectorSource source(stream);
    reference.Run(source);
  }

  LatestCheckpointSink sink;
  ShardEngineOptions kill = opts;
  kill.checkpoint_sink = &sink;
  kill.checkpoint_every = 3000;
  kill.max_tuples = 30000;
  ShardEngine<FagmsSketch> killed(proto, kill);
  {
    VectorSource source(stream);
    const ShardEngineStats stats = killed.Run(source);
    EXPECT_EQ(stats.checkpoints, 10u);
  }

  ShardEngineOptions resume = opts;
  resume.shards = 2;
  ShardEngine<FagmsSketch> resumed(proto, resume);
  VectorSource source(stream);
  resumed.Restore(DeserializeCheckpoint(sink.bytes()), source);
  resumed.Run(source);
  EXPECT_EQ(resumed.total_kept(), reference.total_kept());
  EXPECT_EQ(resumed.merged().counters(), reference.merged().counters());
}

}  // namespace
}  // namespace sketchsample
