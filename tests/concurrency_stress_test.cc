// Concurrency stress tests for the parallel build path, exercised under
// ThreadSanitizer by the `tsan` preset/CI job (they also run — and assert
// bit-exactness — in the regular suites).
//
// What is hammered, and why:
//   * ParallelBuildFagms shares one immutable ξ/hash state across worker
//     threads via shared_ptr-const (src/stream/parallel.cc); a stray
//     mutable member in any ξ family would be a silent race that output
//     statistics cannot reveal (the paper's variance formulas assume exact
//     sign evaluations).
//   * Concurrent Merge() reductions: disjoint-pair tree merges are the
//     pattern distributed aggregation uses; they are race-free only while
//     sketch copies share no mutable state.
//   * The metrics registry is written from every instrumented hot path at
//     once; counters must stay coherent under concurrent Add/snapshot/
//     enable-toggle traffic.
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/prng/xi.h"
#include "src/sketch/fagms.h"
#include "src/sketch/sketch.h"
#include "src/stream/parallel.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

std::vector<uint64_t> MakeStream(size_t n, uint64_t seed, uint64_t domain) {
  std::vector<uint64_t> stream(n);
  Xoshiro256 rng(seed);
  for (auto& key : stream) key = rng.NextBounded(domain);
  return stream;
}

// Every ξ scheme's const evaluation path runs concurrently inside
// ParallelBuildFagms; a data race in any family (e.g. an accidentally
// cached intermediate) trips TSan here and breaks bit-exactness below.
TEST(ConcurrencyStressTest, ParallelBuildMatchesSerialForEveryScheme) {
  const std::vector<uint64_t> stream = MakeStream(1 << 15, 42, 1 << 20);
  for (XiScheme scheme : {XiScheme::kEh3, XiScheme::kBch3, XiScheme::kBch5,
                          XiScheme::kCw2, XiScheme::kCw4}) {
    SketchParams params;
    params.rows = 5;
    params.buckets = 512;
    params.scheme = scheme;
    params.seed = 7;
    FagmsSketch serial(params);
    serial.UpdateBatch(stream);
    const FagmsSketch parallel = ParallelBuildFagms(stream, params, 8);
    EXPECT_EQ(serial.counters(), parallel.counters())
        << "scheme " << static_cast<int>(scheme);
  }
}

// Many worker shards update private counters while reader threads
// concurrently query a master copy sharing the same ξ/hash state: readers
// must never observe (or cause) writes in the shared immutable part.
TEST(ConcurrencyStressTest, ShardWritersWithConcurrentSharedStateReaders) {
  constexpr size_t kShards = 6;
  constexpr size_t kReaders = 3;
  constexpr size_t kKeysPerShard = 1 << 13;

  SketchParams params;
  params.rows = 3;
  params.buckets = 256;
  params.scheme = XiScheme::kCw4;
  params.seed = 11;

  FagmsSketch master(params);
  master.UpdateBatch(MakeStream(1 << 10, 5, 1 << 16));

  std::vector<FagmsSketch> shards(kShards, master);
  std::vector<std::vector<uint64_t>> streams;
  streams.reserve(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    streams.push_back(MakeStream(kKeysPerShard, 100 + s, 1 << 16));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&master, &stop, r] {
      double sink = 0;
      uint64_t key = r;
      while (!stop.load(std::memory_order_acquire)) {
        sink += master.EstimateSelfJoin();
        sink += master.EstimateFrequency(key++);
      }
      EXPECT_TRUE(sink == sink);  // consume, and reject NaN
    });
  }

  std::vector<std::thread> writers;
  writers.reserve(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    writers.emplace_back(
        [&shards, &streams, s] { shards[s].UpdateBatch(streams[s]); });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  // Bit-exactness: each shard started as a copy of the master (counters
  // U0) and appended its own stream, so it must equal a serial build of
  // U0 + stream_s — any divergence means the "shared immutable ξ state"
  // contract was violated somewhere under the concurrent traffic above.
  for (size_t s = 0; s < kShards; ++s) {
    FagmsSketch expected(params);
    expected.UpdateBatch(MakeStream(1 << 10, 5, 1 << 16));
    expected.UpdateBatch(streams[s]);
    EXPECT_EQ(shards[s].counters(), expected.counters()) << "shard " << s;
  }
}

// Disjoint-pair tree reduction: rounds of concurrent Merge() calls on
// non-overlapping sketch pairs, the way a distributed aggregator combines
// per-node sketches. Result must equal the serial left fold.
TEST(ConcurrencyStressTest, ConcurrentTreeMergeMatchesSerialFold) {
  constexpr size_t kLeaves = 16;  // power of two
  constexpr size_t kKeysPerLeaf = 1 << 12;

  SketchParams params;
  params.rows = 4;
  params.buckets = 128;
  params.scheme = XiScheme::kEh3;
  params.seed = 3;

  const FagmsSketch master(params);
  std::vector<FagmsSketch> leaves(kLeaves, master);
  std::vector<std::vector<uint64_t>> streams;
  streams.reserve(kLeaves);
  for (size_t i = 0; i < kLeaves; ++i) {
    streams.push_back(MakeStream(kKeysPerLeaf, 1000 + i, 1 << 18));
  }
  {
    std::vector<std::thread> builders;
    builders.reserve(kLeaves);
    for (size_t i = 0; i < kLeaves; ++i) {
      builders.emplace_back(
          [&leaves, &streams, i] { leaves[i].UpdateBatch(streams[i]); });
    }
    for (auto& b : builders) b.join();
  }

  for (size_t stride = 1; stride < kLeaves; stride *= 2) {
    std::vector<std::thread> mergers;
    for (size_t i = 0; i + stride < kLeaves; i += 2 * stride) {
      mergers.emplace_back(
          [&leaves, i, stride] { leaves[i].Merge(leaves[i + stride]); });
    }
    for (auto& m : mergers) m.join();
  }

  FagmsSketch serial(params);
  for (size_t i = 0; i < kLeaves; ++i) serial.UpdateBatch(streams[i]);
  EXPECT_EQ(serial.counters(), leaves.front().counters());
}

// The registry takes concurrent Add() traffic from instrumented hot paths,
// snapshot reads, first-use registrations, and enable toggles all at once.
TEST(ConcurrencyStressTest, MetricsRegistryUnderConcurrentTraffic) {
  constexpr size_t kWriters = 6;
  constexpr uint64_t kIters = 20000;

  const bool was_enabled = metrics::Enabled();
  metrics::SetEnabled(true);
  metrics::Registry& registry = metrics::Registry::Global();
  registry.GetCounter("stress.exact").Reset();

  std::atomic<bool> stop{false};
  std::thread snapshotter([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const JsonValue snapshot = registry.ToJson();
      ASSERT_TRUE(snapshot.is_object());
      (void)registry.Counters();
      (void)registry.Timers();
    }
  });
  std::thread toggler([&stop] {
    // Flipping the global switch mid-run is documented as safe; hot paths
    // must keep their load+branch coherent while it changes.
    bool on = true;
    while (!stop.load(std::memory_order_acquire)) {
      metrics::SetEnabled(on = !on);
      std::this_thread::yield();
    }
    metrics::SetEnabled(true);
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      // Exact counter: bypasses the enabled() gate, so the final count is
      // deterministic regardless of the toggler.
      metrics::Counter& exact = registry.GetCounter("stress.exact");
      for (uint64_t i = 0; i < kIters; ++i) {
        exact.Add(1);
        SKETCHSAMPLE_METRIC_INC("stress.gated");
        // First-use registration from several threads at once.
        registry.GetCounter("stress.lane." + std::to_string(i % 4 + w % 2))
            .Add(1);
        if (i % 1024 == 0) {
          SKETCHSAMPLE_METRIC_SCOPED_TIMER("stress.timer");
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  toggler.join();

  EXPECT_EQ(registry.GetCounter("stress.exact").Get(), kWriters * kIters);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("stress.exact").Get(), 0u);
  metrics::SetEnabled(was_enabled);
}

}  // namespace
}  // namespace sketchsample
