// End-to-end statistical validation of the sharded engine against the
// paper's closed forms (Props 13–16, Eqs 25–28).
//
// Every trial pushes a stream through a real multi-threaded ShardEngine —
// router, SPSC rings, positional shedding, per-worker partials, merge —
// and applies the matching correction. Across hundreds of seeded trials
// the empirical mean must hit the exact answer and the empirical variance
// must match the closed-form prediction:
//
//   * Bernoulli (load shedding): the engine's positional sampler does the
//     shedding at rate p (Eq 25 join, Eq 26 self-join).
//   * WR / WOR: the engine ingests a pre-drawn sample at p = 1 — the
//     stream *is* the sample, as in §VI-B/C (Eq 27, Eq 28).
//
// Variance acceptance uses a chi-square-style bound generalized to
// non-Gaussian data: for T trials the sample variance s² is asymptotically
// normal with Var(s²) = (m₄ − σ⁴)/T (the Gaussian case reduces to the
// familiar χ²_{T−1} interval, where m₄ = 3σ⁴). The test accepts
// |s² − σ²_pred| ≤ z·√((m₄ − s⁴)/T) with z = 6 — wide enough that the
// fixed seeds pass with margin, tight enough that a wrong correction or a
// broken merge (variance off by 2× or more) fails by many multiples.
//
// All randomness is seeded; a failure reproduces exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/confidence.h"
#include "src/core/corrections.h"
#include "src/core/variance.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/sampling/coefficients.h"
#include "src/sampling/with_replacement.h"
#include "src/sampling/without_replacement.h"
#include "src/sketch/agms.h"
#include "src/stream/shard_engine.h"
#include "src/stream/shed_controller.h"
#include "src/stream/source.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

constexpr size_t kDomain = 30;
constexpr size_t kTuples = 400;
constexpr size_t kRows = 4;     // averaged basic AGMS estimators
constexpr int kTrials = 320;    // ISSUE floor: >= 200 seeded trials
constexpr size_t kShards = 3;
constexpr double kSigmas = 6.0;

SketchParams AgmsParams(uint64_t seed) {
  SketchParams params;
  params.rows = kRows;
  params.scheme = XiScheme::kCw4;  // analysis assumes 4-wise independence
  params.seed = seed;
  return params;
}

// Pushes `stream` through a fresh 3-shard engine and returns the merged
// sketch (and the kept count): the full concurrent path, not a shortcut.
AgmsSketch RunThroughEngine(const std::vector<uint64_t>& stream,
                            const SketchParams& params, double p,
                            uint64_t root_seed, uint64_t* kept_out) {
  ShardEngineOptions opts;
  opts.shards = kShards;
  opts.chunk_tuples = 64;  // several chunks per shard even on tiny streams
  opts.shed_p = p;
  opts.seed = root_seed;
  ShardEngine<AgmsSketch> engine(AgmsSketch(params), opts);
  VectorSource source(stream);
  const ShardEngineStats stats = engine.Run(source);
  EXPECT_TRUE(stats.ended);
  if (kept_out != nullptr) *kept_out = engine.total_kept();
  return engine.merged();
}

struct MomentSummary {
  double mean = 0;
  double variance = 0;  // unbiased sample variance
  double m4 = 0;        // fourth central moment
  size_t n = 0;

  double MeanStdError() const { return std::sqrt(variance / n); }
  // Asymptotic standard error of the sample variance for arbitrary
  // (non-Gaussian) data: sqrt((m4 - s^4)/T).
  double VarianceStdError() const {
    return std::sqrt(std::max(0.0, m4 - variance * variance) / n);
  }
};

MomentSummary Summarize(const std::vector<double>& xs) {
  MomentSummary s;
  s.n = xs.size();
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(s.n);
  double m2 = 0;
  for (double x : xs) {
    const double d = x - s.mean;
    m2 += d * d;
    s.m4 += d * d * d * d;
  }
  s.variance = m2 / static_cast<double>(s.n - 1);
  s.m4 /= static_cast<double>(s.n);
  return s;
}

void ExpectMatchesClosedForm(const MomentSummary& s, double truth,
                             double predicted_variance, const char* what) {
  EXPECT_NEAR(s.mean, truth, kSigmas * s.MeanStdError()) << what;
  EXPECT_GT(predicted_variance, 0.0) << what;
  EXPECT_NEAR(s.variance, predicted_variance,
              kSigmas * s.VarianceStdError())
      << what << ": empirical " << s.variance << " vs predicted "
      << predicted_variance;
}

class StatisticalValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    f_ = ZipfFrequencies(kDomain, kTuples, 1.0);
    g_ = ZipfFrequencies(kDomain, kTuples, 0.5);
    stream_f_ = f_.ToTupleStream();
    stream_g_ = g_.ToTupleStream();
  }

  FrequencyVector f_, g_;
  std::vector<uint64_t> stream_f_, stream_g_;
};

// Eq 25 (Prop 13): sketch over Bernoulli samples, size of join. Both
// streams shed inside their own sharded engines at rates p and q.
TEST_F(StatisticalValidationTest, ShardedBernoulliJoinMatchesEq25) {
  constexpr double kP = 0.3, kQ = 0.5;
  std::vector<double> estimates;
  estimates.reserve(kTrials);
  const Correction correction = BernoulliJoinCorrection(kP, kQ);
  for (int t = 0; t < kTrials; ++t) {
    const SketchParams params = AgmsParams(MixSeed(1000, t));
    const AgmsSketch a =
        RunThroughEngine(stream_f_, params, kP, MixSeed(2000, t), nullptr);
    const AgmsSketch b =
        RunThroughEngine(stream_g_, params, kQ, MixSeed(3000, t), nullptr);
    estimates.push_back(correction.Apply(a.EstimateJoin(b)));
  }
  const JoinStatistics s = ComputeJoinStatistics(f_, g_);
  ExpectMatchesClosedForm(Summarize(estimates), ExactJoinSize(f_, g_),
                          BernoulliJoinVariance(s, kP, kQ, kRows).Total(),
                          "Eq 25");
}

// Eq 26 (Prop 14): sketch over a Bernoulli sample, self-join size.
TEST_F(StatisticalValidationTest, ShardedBernoulliSelfJoinMatchesEq26) {
  constexpr double kP = 0.4;
  std::vector<double> estimates;
  estimates.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    uint64_t kept = 0;
    const AgmsSketch a = RunThroughEngine(stream_f_, AgmsParams(MixSeed(5000, t)),
                                          kP, MixSeed(4000, t), &kept);
    estimates.push_back(
        BernoulliSelfJoinCorrection(kP, kept).Apply(a.EstimateSelfJoin()));
  }
  const JoinStatistics s = ComputeJoinStatistics(f_, f_);
  ExpectMatchesClosedForm(Summarize(estimates), f_.F2(),
                          BernoulliSelfJoinVariance(s, kP, kRows).Total(),
                          "Eq 26");
}

// Eq 26 confidence intervals must achieve (close to) nominal coverage:
// the fraction of trials whose interval covers the true self-join size may
// fall below the level only by binomial noise plus a small CLT allowance.
TEST_F(StatisticalValidationTest, ShardedSelfJoinIntervalsAchieveCoverage) {
  constexpr double kP = 0.4;
  constexpr double kLevel = 0.95;
  const JoinStatistics s = ComputeJoinStatistics(f_, f_);
  const double truth = f_.F2();
  int covered = 0;
  for (int t = 0; t < kTrials; ++t) {
    uint64_t kept = 0;
    const AgmsSketch a = RunThroughEngine(stream_f_, AgmsParams(MixSeed(7000, t)),
                                          kP, MixSeed(6000, t), &kept);
    const double realized_p =
        static_cast<double>(kept) / static_cast<double>(kTuples);
    const double estimate =
        RealizedSelfJoinEstimate(a.EstimateSelfJoin(), realized_p, kept);
    const ConfidenceInterval ci =
        RealizedSelfJoinInterval(estimate, s, realized_p, kRows, kLevel);
    EXPECT_LT(ci.low, ci.high) << t;
    if (ci.low <= truth && truth <= ci.high) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  // 5 sigma of binomial noise below nominal, plus 2% CLT slack (the
  // interval is a normal approximation of a skewed estimator).
  const double noise =
      5.0 * std::sqrt(kLevel * (1.0 - kLevel) / kTrials) + 0.02;
  EXPECT_GE(coverage, kLevel - noise) << "covered " << covered << "/"
                                      << kTrials;
}

// Eq 27 (Prop 15): sketch over WR samples, size of join. The engine
// ingests the pre-drawn sample at p = 1 — the stream is the sample.
TEST_F(StatisticalValidationTest, ShardedWrJoinMatchesEq27) {
  const uint64_t mf = kTuples / 4, mg = kTuples / 5;
  const SamplingCoefficients cf = ComputeCoefficients(kTuples, mf);
  const SamplingCoefficients cg = ComputeCoefficients(kTuples, mg);
  const Correction correction = WrJoinCorrection(cf, cg);
  std::vector<double> estimates;
  estimates.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    const SketchParams params = AgmsParams(MixSeed(8000, t));
    Xoshiro256 rng(MixSeed(9000, t));
    const AgmsSketch a =
        RunThroughEngine(SampleWithReplacement(stream_f_, mf, rng), params,
                         1.0, MixSeed(9100, t), nullptr);
    const AgmsSketch b =
        RunThroughEngine(SampleWithReplacement(stream_g_, mg, rng), params,
                         1.0, MixSeed(9200, t), nullptr);
    estimates.push_back(correction.Apply(a.EstimateJoin(b)));
  }
  const JoinStatistics s = ComputeJoinStatistics(f_, g_);
  ExpectMatchesClosedForm(Summarize(estimates), ExactJoinSize(f_, g_),
                          WrJoinVariance(s, cf, cg, kRows).Total(), "Eq 27");
}

// Eq 28 (Prop 16): sketch over WOR samples, size of join.
TEST_F(StatisticalValidationTest, ShardedWorJoinMatchesEq28) {
  const uint64_t mf = kTuples / 4, mg = kTuples / 3;
  const SamplingCoefficients cf = ComputeCoefficients(kTuples, mf);
  const SamplingCoefficients cg = ComputeCoefficients(kTuples, mg);
  const Correction correction = WorJoinCorrection(cf, cg);
  std::vector<double> estimates;
  estimates.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    const SketchParams params = AgmsParams(MixSeed(11000, t));
    Xoshiro256 rng(MixSeed(12000, t));
    const AgmsSketch a =
        RunThroughEngine(SampleWithoutReplacement(stream_f_, mf, rng), params,
                         1.0, MixSeed(12100, t), nullptr);
    const AgmsSketch b =
        RunThroughEngine(SampleWithoutReplacement(stream_g_, mg, rng), params,
                         1.0, MixSeed(12200, t), nullptr);
    estimates.push_back(correction.Apply(a.EstimateJoin(b)));
  }
  const JoinStatistics s = ComputeJoinStatistics(f_, g_);
  ExpectMatchesClosedForm(Summarize(estimates), ExactJoinSize(f_, g_),
                          WorJoinVariance(s, cf, cg, kRows).Total(), "Eq 28");
}

}  // namespace
}  // namespace sketchsample
