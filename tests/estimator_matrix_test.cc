// Cross-product coverage: sketch-over-sample estimators instantiated with
// every sketch family × every sampling scheme, on a common workload. The
// unbiased families (AGMS, F-AGMS, FastCount) must produce accurate
// corrected estimates; Count-Min must stay an over-estimate under join
// scaling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/sketch_over_sample.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

struct Workload {
  FrequencyVector f, g;
  std::vector<uint64_t> stream_f, stream_g;
  double join, f2;
};

const Workload& SharedWorkload() {
  static const Workload w = [] {
    Workload built;
    built.f = ZipfMultinomialFrequencies(300, 30000, 1.0, 1);
    built.g = ZipfMultinomialFrequencies(300, 30000, 1.0, 2);
    built.stream_f = built.f.ToTupleStream();
    built.stream_g = built.g.ToTupleStream();
    Xoshiro256 rng(3);
    Shuffle(built.stream_f, rng);
    Shuffle(built.stream_g, rng);
    built.join = ExactJoinSize(built.f, built.g);
    built.f2 = built.f.F2();
    return built;
  }();
  return w;
}

SketchParams Params(uint64_t seed) {
  SketchParams p;
  p.rows = 1;
  p.buckets = 2048;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

template <typename SketchT>
void ExpectBernoulliAccuracy(double tolerance) {
  const Workload& w = SharedWorkload();
  std::vector<double> joins, f2s;
  for (int rep = 0; rep < 15; ++rep) {
    SketchParams params = Params(MixSeed(11, rep));
    if constexpr (std::is_same_v<SketchT, AgmsSketch>) {
      params.rows = 256;
      params.scheme = XiScheme::kCw4;
      params.materialize_domain = 300;
    }
    BernoulliSketchEstimator<SketchT> ef(0.2, params, MixSeed(12, rep));
    BernoulliSketchEstimator<SketchT> eg(0.2, params, MixSeed(13, rep));
    for (uint64_t v : w.stream_f) ef.Update(v);
    for (uint64_t v : w.stream_g) eg.Update(v);
    joins.push_back(ef.EstimateJoin(eg));
    f2s.push_back(ef.EstimateSelfJoin());
  }
  EXPECT_LT(SummarizeErrors(joins, w.join).mean_error, tolerance) << "join";
  EXPECT_LT(SummarizeErrors(f2s, w.f2).mean_error, tolerance) << "self-join";
}

TEST(EstimatorMatrixTest, BernoulliWithFagms) {
  ExpectBernoulliAccuracy<FagmsSketch>(0.12);
}

TEST(EstimatorMatrixTest, BernoulliWithFastCount) {
  ExpectBernoulliAccuracy<FastCountSketch>(0.12);
}

TEST(EstimatorMatrixTest, BernoulliWithAgms) {
  // 256 averaged estimators: looser tolerance than 2048-bucket hashing.
  ExpectBernoulliAccuracy<AgmsSketch>(0.35);
}

TEST(EstimatorMatrixTest, BernoulliWithCountMinOverestimatesJoin) {
  const Workload& w = SharedWorkload();
  RunningStats joins;
  for (int rep = 0; rep < 10; ++rep) {
    const SketchParams params = Params(MixSeed(21, rep));
    BernoulliSketchEstimator<CountMinSketch> ef(0.3, params,
                                                MixSeed(22, rep));
    BernoulliSketchEstimator<CountMinSketch> eg(0.3, params,
                                                MixSeed(23, rep));
    for (uint64_t v : w.stream_f) ef.Update(v);
    for (uint64_t v : w.stream_g) eg.Update(v);
    joins.Add(ef.EstimateJoin(eg));
  }
  // Count-Min join estimates are one-sided: the mean stays above the truth.
  EXPECT_GT(joins.Mean(), w.join);
}

template <typename SketchT>
void ExpectFixedSizeAccuracy(SamplingScheme scheme, double tolerance) {
  const Workload& w = SharedWorkload();
  std::vector<double> joins, f2s;
  for (int rep = 0; rep < 15; ++rep) {
    const SketchParams params = Params(MixSeed(31, rep));
    Xoshiro256 rng(MixSeed(32, rep));
    SampledStreamEstimator<SketchT> ef(scheme, w.stream_f.size(), params);
    SampledStreamEstimator<SketchT> eg(scheme, w.stream_g.size(), params);
    const uint64_t m = w.stream_f.size() / 5;
    if (scheme == SamplingScheme::kWithReplacement) {
      for (uint64_t k = 0; k < m; ++k) {
        ef.Update(w.stream_f[rng.NextBounded(w.stream_f.size())]);
        eg.Update(w.stream_g[rng.NextBounded(w.stream_g.size())]);
      }
    } else {
      // WOR prefix of the pre-shuffled streams; different prefix per rep by
      // re-shuffling a copy.
      auto sf = w.stream_f;
      auto sg = w.stream_g;
      Shuffle(sf, rng);
      Shuffle(sg, rng);
      for (uint64_t k = 0; k < m; ++k) {
        ef.Update(sf[k]);
        eg.Update(sg[k]);
      }
    }
    joins.push_back(ef.EstimateJoin(eg));
    f2s.push_back(ef.EstimateSelfJoin());
  }
  EXPECT_LT(SummarizeErrors(joins, w.join).mean_error, tolerance) << "join";
  EXPECT_LT(SummarizeErrors(f2s, w.f2).mean_error, tolerance) << "self-join";
}

TEST(EstimatorMatrixTest, WrWithFagms) {
  ExpectFixedSizeAccuracy<FagmsSketch>(SamplingScheme::kWithReplacement,
                                       0.15);
}

TEST(EstimatorMatrixTest, WorWithFagms) {
  ExpectFixedSizeAccuracy<FagmsSketch>(SamplingScheme::kWithoutReplacement,
                                       0.15);
}

TEST(EstimatorMatrixTest, WrWithFastCount) {
  ExpectFixedSizeAccuracy<FastCountSketch>(SamplingScheme::kWithReplacement,
                                           0.15);
}

TEST(EstimatorMatrixTest, WorWithFastCount) {
  ExpectFixedSizeAccuracy<FastCountSketch>(
      SamplingScheme::kWithoutReplacement, 0.15);
}

}  // namespace
}  // namespace sketchsample
