// Unit tests for src/util: RNG, statistics, flags, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace sketchsample {
namespace {

TEST(Xoshiro256Test, DeterministicUnderSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleMeanIsHalf) {
  Xoshiro256 rng(9);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.NextDouble());
  EXPECT_NEAR(s.Mean(), 0.5, 0.01);
}

TEST(Xoshiro256Test, NextBoundedInRange) {
  Xoshiro256 rng(11);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(Xoshiro256Test, NextBoundedIsRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> hist(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.NextBounded(kBound)];
  for (uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(hist[v], kDraws / kBound, 500) << "value " << v;
  }
}

TEST(MixSeedTest, DistinctStreamsGiveDistinctSeeds) {
  const uint64_t base = 123;
  EXPECT_NE(MixSeed(base, 0), MixSeed(base, 1));
  EXPECT_NE(MixSeed(base, 0), MixSeed(base + 1, 0));
  EXPECT_EQ(MixSeed(base, 5), MixSeed(base, 5));
}

TEST(RunningStatsTest, MeanAndVarianceMatchDefinition) {
  RunningStats s;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), 6u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 3.5);  // unbiased variance of 1..6
}

TEST(RunningStatsTest, EmptyAndSingleton) {
  RunningStats s;
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.StdError(), 0.0);
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats a, b, all;
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.Mean();
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Mean(), mean);
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.Mean(), mean);
}

TEST(StatsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(5, 0), 5.0);
  EXPECT_DOUBLE_EQ(RelativeError(-110, -100), 0.1);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.125), 0.5);
}

TEST(StatsTest, SummarizeErrors) {
  const std::vector<double> estimates = {90, 100, 110, 120};
  const ErrorSummary s = SummarizeErrors(estimates, 100.0);
  EXPECT_EQ(s.trials, 4u);
  EXPECT_DOUBLE_EQ(s.mean_error, (0.1 + 0.0 + 0.1 + 0.2) / 4);
  EXPECT_DOUBLE_EQ(s.mean_estimate, 105.0);
  EXPECT_GT(s.estimate_variance, 0.0);
}

TEST(StatsTest, SummarizeErrorsEmpty) {
  const ErrorSummary s = SummarizeErrors({}, 100.0);
  EXPECT_EQ(s.trials, 0u);
  EXPECT_EQ(s.mean_error, 0.0);
}

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  Flags flags;
  flags.Define("alpha", "1.5", "alpha param")
      .Define("count", "10", "count param")
      .Define("name", "x", "name");
  const char* argv[] = {"prog", "--alpha=2.5", "--count", "20"};
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha"), 2.5);
  EXPECT_EQ(flags.GetInt("count"), 20);
  EXPECT_EQ(flags.GetString("name"), "x");  // default preserved
}

TEST(FlagsTest, RejectsUnknownFlag) {
  Flags flags;
  flags.Define("known", "1", "");
  const char* argv[] = {"prog", "--unknown=2"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, RejectsMissingValue) {
  Flags flags;
  flags.Define("known", "1", "");
  const char* argv[] = {"prog", "--known"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, ParsesLists) {
  Flags flags;
  flags.Define("ps", "0.1,0.5,1", "probability list");
  flags.Define("ns", "1,2,3", "int list");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)));
  const auto ps = flags.GetDoubleList("ps");
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps[1], 0.5);
  const auto ns = flags.GetIntList("ns");
  ASSERT_EQ(ns.size(), 3u);
  EXPECT_EQ(ns[2], 3);
}

TEST(FlagsTest, GetUndefinedThrows) {
  Flags flags;
  EXPECT_THROW(flags.GetString("nope"), std::invalid_argument);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"skew", "error"});
  t.AddRow({std::string("0"), std::string("0.125")});
  t.AddRow(std::vector<double>{1.5, 0.25});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("skew"), std::string::npos);
  EXPECT_NE(out.find("0.125"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({std::string("only")});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GT(timer.ElapsedNanos(), 0.0);
}

}  // namespace
}  // namespace sketchsample
