// Statistical validation of the two PR-10 query families over shed
// streams, end to end through the real 3-shard engine (router, SPSC rings,
// positional shedding, per-lane partials, position-ordered quantile fold,
// merge):
//
//   * Quantile claim: the service's total rank-error bound — KLL
//     compaction term z·sqrt(rank_error_var)/n_kept inflated by the
//     Bernoulli CLT term z·sqrt(q(1−q)(1−p̂)/(p̂·N)) at the realized rate —
//     covers the true (pre-shed) rank of the returned value at its nominal
//     level, for p ∈ {1, 0.25, 0.05}.
//   * Subpopulation claim: the Cohen–Kaplan Horvitz–Thompson estimate with
//     the stacked bottom-k + shedding variance, wrapped in its CLT
//     interval, covers the exact pre-shed subpopulation weight at its
//     nominal level, same three rates.
//
// Coverage acceptance follows the PR-5 discipline: with T seeded trials a
// nominal-level interval may undershoot by sampling noise, so accept
// coverage >= level − (5·sqrt(level(1−level)/T) + 0.02). All randomness is
// seeded; a failure reproduces exactly.
//
// A third test pins the bit-exactness acceptance criterion directly: the
// serialized quantile and subpop sketches are byte-identical at any shard
// count, because positional shedding fixes the kept set and the engine
// folds quantile updates in stream-position order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/confidence.h"
#include "src/core/subpop_estimators.h"
#include "src/data/zipf.h"
#include "src/sketch/fagms.h"
#include "src/sketch/serialize.h"
#include "src/stream/shard_engine.h"
#include "src/stream/source.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

constexpr int kTrials = 320;  // ISSUE floor: >= 320 seeded trials per claim
constexpr size_t kTuples = 1500;
constexpr size_t kShards = 3;
constexpr size_t kZipfDomain = 1000;
constexpr double kLevel = 0.95;
constexpr size_t kQuantileK = 128;
constexpr size_t kSubpopK = 128;
const double kRates[] = {1.0, 0.25, 0.05};

// PR-5 coverage-noise allowance: 5-sigma binomial noise on the empirical
// coverage plus a 2% asymptotic-approximation cushion.
double CoverageSlack(double level) {
  return 5.0 * std::sqrt(level * (1.0 - level) / kTrials) + 0.02;
}

SketchParams SmallFagms(uint64_t seed) {
  SketchParams params;
  params.rows = 1;
  params.buckets = 64;
  params.seed = seed;
  return params;
}

struct EngineAnswer {
  KllSketch quantile{8, 0};
  KeyedKmvSketch subpop{2, 0};
  uint64_t position = 0;
  uint64_t kept = 0;
};

// The full concurrent path — no shortcut around the engine.
EngineAnswer RunThroughEngine(const std::vector<uint64_t>& stream, double p,
                              uint64_t root_seed, size_t shards = kShards) {
  ShardEngineOptions opts;
  opts.shards = shards;
  opts.chunk_tuples = 64;  // several chunks per lane even on small streams
  opts.shed_p = p;
  opts.seed = root_seed;
  opts.quantile_k = kQuantileK;
  opts.quantile_fold_every = 256;  // many folds per run: boundaries matter
  opts.subpop_k = kSubpopK;
  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallFagms(root_seed)), opts);
  VectorSource source(stream);
  const ShardEngineStats stats = engine.Run(source);
  EXPECT_TRUE(stats.ended);
  EngineAnswer answer;
  answer.quantile = *engine.quantile();
  answer.subpop = *engine.subpop();
  answer.position = engine.total_seen();
  answer.kept = engine.total_kept();
  return answer;
}

// Exact rank interval of `value` in the pre-shed stream: a value occupies
// [count(< v), count(<= v)] / N, and any rank inside is exactly right.
void ExactRankInterval(const std::vector<uint64_t>& stream, uint64_t value,
                       double* lo, double* hi) {
  uint64_t below = 0, at_or_below = 0;
  for (uint64_t v : stream) {
    if (v < value) ++below;
    if (v <= value) ++at_or_below;
  }
  const double n = static_cast<double>(stream.size());
  *lo = static_cast<double>(below) / n;
  *hi = static_cast<double>(at_or_below) / n;
}

TEST(QuantileValidationTest, RankErrorBoundCoversTrueRankAtEveryRate) {
  const double z = NormalQuantile(0.5 * (1.0 + kLevel));
  const double probes[] = {0.1, 0.5, 0.9};
  for (const double p : kRates) {
    int covered = 0, total = 0;
    double worst_excess = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const uint64_t salt = MixSeed(0x514e544c, static_cast<uint64_t>(t));
      ZipfSampler sampler(kZipfDomain, 1.0);
      Xoshiro256 rng(MixSeed(salt, 1));
      const std::vector<uint64_t> stream = sampler.Stream(kTuples, rng);
      const EngineAnswer ans = RunThroughEngine(stream, p, MixSeed(salt, 2));
      if (ans.kept == 0) continue;
      const double realized =
          static_cast<double>(ans.kept) / static_cast<double>(ans.position);
      for (const double q : probes) {
        const double eps_sketch = z * ans.quantile.RankErrorStddev();
        double eps_sampling = 0.0;
        if (realized < 1.0) {
          eps_sampling =
              z * std::sqrt(q * (1.0 - q) * (1.0 - realized) /
                            (realized * static_cast<double>(ans.position)));
        }
        const double eps = eps_sketch + eps_sampling;
        const uint64_t value = ans.quantile.EstimateQuantile(q);
        double rank_lo = 0, rank_hi = 0;
        ExactRankInterval(stream, value, &rank_lo, &rank_hi);
        const double error =
            std::max({0.0, rank_lo - q, q - rank_hi});
        ++total;
        if (error <= eps) {
          ++covered;
        } else {
          worst_excess = std::max(worst_excess, error - eps);
        }
      }
    }
    ASSERT_GT(total, 0);
    const double coverage =
        static_cast<double>(covered) / static_cast<double>(total);
    EXPECT_GE(coverage, kLevel - CoverageSlack(kLevel))
        << "p = " << p << ": " << covered << "/" << total
        << " within bound, worst excess " << worst_excess;
  }
}

TEST(SubpopValidationTest, IntervalCoversExactWeightAtEveryRate) {
  // keys ≡ 1 (mod 3): about a third of the stream. The interval is a CLT
  // interval, so validate it in its CLT regime: near-uniform per-key
  // weights (skew 0 → each matched sample entry contributes comparably to
  // the Horvitz–Thompson sum). Under heavy zipf skew the sum is dominated
  // by a handful of keys and no plug-in CLT interval attains nominal
  // coverage at bottom-k sample sizes — a property of the estimator class,
  // not a bug this suite could catch. Across the three rates this hits
  // both estimator paths: at p = 1 and p = 0.25 the sketch saturates
  // (Horvitz–Thompson + threshold conditioning); at p = 0.05 few enough
  // distinct keys survive shedding that the exact-path/sampling-variance
  // branch is taken.
  const SubpopPredicate pred = ParseSubpopFilter("mod:3-1");
  for (const double p : kRates) {
    int covered = 0, total = 0;
    for (int t = 0; t < kTrials; ++t) {
      const uint64_t salt = MixSeed(0x53425050, static_cast<uint64_t>(t));
      ZipfSampler sampler(kZipfDomain, 0.0);
      Xoshiro256 rng(MixSeed(salt, 1));
      const std::vector<uint64_t> stream = sampler.Stream(kTuples, rng);
      uint64_t truth = 0;
      for (uint64_t v : stream) {
        if (pred.Matches(v)) ++truth;
      }
      const EngineAnswer ans = RunThroughEngine(stream, p, MixSeed(salt, 2));
      if (ans.kept == 0) continue;
      const double realized =
          static_cast<double>(ans.kept) / static_cast<double>(ans.position);
      const SubpopEstimate est =
          EstimateSubpopulation(ans.subpop, pred, realized);
      const ConfidenceInterval ci = SubpopInterval(est, kLevel);
      ++total;
      const double exact = static_cast<double>(truth);
      if (ci.low <= exact && exact <= ci.high) ++covered;
    }
    ASSERT_GT(total, 0);
    const double coverage =
        static_cast<double>(covered) / static_cast<double>(total);
    EXPECT_GE(coverage, kLevel - CoverageSlack(kLevel))
        << "p = " << p << ": " << covered << "/" << total << " covered";
  }
}

// Acceptance criterion, pinned directly: the quantile and subpop sketch
// states are byte-identical at any shard count. Positional shedding fixes
// the kept set independent of the partition, the keyed-KMV merge is an
// exact set union with summed weights, and the engine replays quantile
// updates in stream-position order regardless of which lane buffered them.
TEST(QuantileSubpopShardingTest, SketchBytesIdenticalAtAnyShardCount) {
  ZipfSampler sampler(kZipfDomain, 1.0);
  Xoshiro256 rng(123);
  const std::vector<uint64_t> stream = sampler.Stream(6000, rng);
  const EngineAnswer reference = RunThroughEngine(stream, 0.25, 99, 1);
  const std::vector<uint8_t> quantile_bytes =
      SerializeSketch(reference.quantile);
  const std::vector<uint8_t> subpop_bytes = SerializeSketch(reference.subpop);
  for (const size_t shards : {2u, 3u, 5u, 8u}) {
    const EngineAnswer answer = RunThroughEngine(stream, 0.25, 99, shards);
    EXPECT_EQ(answer.kept, reference.kept) << shards << " shards";
    EXPECT_EQ(SerializeSketch(answer.quantile), quantile_bytes)
        << shards << " shards";
    EXPECT_EQ(SerializeSketch(answer.subpop), subpop_bytes)
        << shards << " shards";
  }
}

}  // namespace
}  // namespace sketchsample
