// Tests for materialized ξ sign tables and their sketch integration.
#include <gtest/gtest.h>

#include "src/core/sketch_estimators.h"
#include "src/data/zipf.h"
#include "src/prng/materialized.h"
#include "src/prng/xi.h"

namespace sketchsample {
namespace {

TEST(MaterializedXiTest, MatchesBaseFamilyInsideDomain) {
  for (XiScheme scheme : {XiScheme::kCw4, XiScheme::kEh3, XiScheme::kBch5}) {
    const auto base = MakeXiFamily(scheme, 123);
    const auto materialized = MakeMaterializedXiFamily(scheme, 123, 4096);
    for (uint64_t key = 0; key < 4096; ++key) {
      ASSERT_EQ(materialized->Sign(key), base->Sign(key))
          << XiSchemeName(scheme) << " key " << key;
    }
  }
}

TEST(MaterializedXiTest, FallsBackOutsideDomain) {
  const auto base = MakeXiFamily(XiScheme::kCw4, 7);
  const auto materialized = MakeMaterializedXiFamily(XiScheme::kCw4, 7, 128);
  for (uint64_t key = 128; key < 1024; ++key) {
    ASSERT_EQ(materialized->Sign(key), base->Sign(key)) << key;
  }
}

TEST(MaterializedXiTest, ReportsBaseMetadata) {
  const auto materialized = MakeMaterializedXiFamily(XiScheme::kCw4, 7, 64);
  EXPECT_EQ(materialized->IndependenceLevel(), 4);
  EXPECT_EQ(materialized->Scheme(), XiScheme::kCw4);
}

TEST(MaterializedXiTest, CloneMatches) {
  const auto materialized =
      MakeMaterializedXiFamily(XiScheme::kTabulation, 11, 512);
  const auto clone = materialized->Clone();
  for (uint64_t key = 0; key < 1024; ++key) {
    ASSERT_EQ(materialized->Sign(key), clone->Sign(key)) << key;
  }
}

TEST(MaterializedXiTest, NullBaseThrows) {
  EXPECT_THROW(MaterializedXi(nullptr, 10), std::invalid_argument);
}

TEST(MaterializedXiTest, MemoryIsOneBitPerKeyPlusState) {
  MaterializedXi xi(MakeXiFamily(XiScheme::kCw4, 1), 1 << 16);
  // Dominated by the packed table (one bit per key); the remainder is the
  // wrapper plus the retained base family's parameters.
  EXPECT_GE(xi.MemoryBytes(), (1u << 16) / 8);
  EXPECT_LT(xi.MemoryBytes(), (1u << 16) / 8 + 256);
}

TEST(MaterializedXiTest, ZeroDomainIsPureFallback) {
  const auto base = MakeXiFamily(XiScheme::kEh3, 5);
  MaterializedXi xi(MakeXiFamily(XiScheme::kEh3, 5), 0);
  for (uint64_t key = 0; key < 100; ++key) {
    ASSERT_EQ(xi.Sign(key), base->Sign(key));
  }
}

TEST(MaterializedSketchTest, AgmsCountersIdenticalWithAndWithoutTables) {
  const FrequencyVector f = ZipfFrequencies(500, 3000, 1.0);
  const auto stream = f.ToTupleStream();

  SketchParams plain;
  plain.rows = 16;
  plain.scheme = XiScheme::kCw4;
  plain.seed = 77;
  SketchParams fast = plain;
  fast.materialize_domain = 500;

  const AgmsSketch a = BuildAgmsSketch(stream, plain);
  const AgmsSketch b = BuildAgmsSketch(stream, fast);
  EXPECT_EQ(a.counters(), b.counters());
}

TEST(MaterializedSketchTest, FagmsCountersIdenticalWithAndWithoutTables) {
  const FrequencyVector f = ZipfFrequencies(500, 3000, 1.0);
  const auto stream = f.ToTupleStream();

  SketchParams plain;
  plain.rows = 3;
  plain.buckets = 256;
  plain.scheme = XiScheme::kCw4;
  plain.seed = 78;
  SketchParams fast = plain;
  fast.materialize_domain = 500;

  const FagmsSketch a = BuildFagmsSketch(stream, plain);
  const FagmsSketch b = BuildFagmsSketch(stream, fast);
  EXPECT_EQ(a.counters(), b.counters());
}

}  // namespace
}  // namespace sketchsample
