// Model-checking specs for the three production lock-free primitives,
// instantiated with the mc::McAtomics policy so every interleaving and
// legally-stale read the C++ memory model permits is explored:
//
//   * SpscQueue  (src/util/spsc_queue.h):  no-loss / no-dup / FIFO, with
//     index wrap-around at small capacity;
//   * RcuCell    (src/service/snapshot.h): no reader ever dereferences a
//     reclaimed snapshot (canary deleter), reclamation completes at
//     quiescence;
//   * OnceLatch  (src/util/once_latch.h):  init runs exactly once, every
//     caller observes the same fully-constructed value.
//
// Smoke bounds keep each exploration in the tier-1 seconds budget; the
// nightly mc-deep job sets SKETCHSAMPLE_MC_DEEP=1 for larger element
// counts and thread counts (see .github/workflows/nightly.yml).

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <vector>

#include "src/mc/mc.h"
#include "src/service/snapshot.h"
#include "src/util/once_latch.h"
#include "src/util/spsc_queue.h"

namespace sketchsample {
namespace {

using mc::Env;
using mc::Explore;
using mc::McAtomics;
using mc::Options;
using mc::Result;

bool DeepMode() { return std::getenv("SKETCHSAMPLE_MC_DEEP") != nullptr; }

Options SpecOptions() {
  Options opts;
  if (DeepMode()) {
    opts.max_runs = 2000000;
    opts.max_steps = 100000;
  }
  return opts;
}

// ---------------------------------------------------------------------------
// SPSC ring: producer pushes 1..N through a capacity-2 ring (wrap-around
// included), consumer pops N values. FIFO order, nothing lost, nothing
// duplicated. Slots are Plain cells, so a protocol hole shows up as a data
// race on the slot as well as a value corruption.
TEST(McSpecTest, SpscQueueFifoNoLossNoDup) {
  const int n = DeepMode() ? 5 : 3;
  Result r = Explore(
      [n](Env& env) {
        SpscQueue<int, McAtomics> queue(2);
        std::vector<int> popped;
        env.Spawn([&] {
          for (int i = 1; i <= n; ++i) {
            int v = i;
            while (!queue.TryPush(v)) McAtomics::Yield();
          }
        });
        env.Spawn([&] {
          int out = 0;
          for (int i = 0; i < n; ++i) {
            while (!queue.TryPop(out)) McAtomics::Yield();
            popped.push_back(out);
          }
        });
        env.Join();
        MC_ASSERT(static_cast<int>(popped.size()) == n);
        for (int i = 0; i < n; ++i) {
          MC_ASSERT(popped[static_cast<size_t>(i)] == i + 1);  // FIFO, exact
        }
      },
      SpecOptions());
  EXPECT_FALSE(r.found) << r.report;
  EXPECT_GT(r.runs, 1u);
}

// The ring never overfills and SizeApprox never exceeds capacity at
// quiescence points.
TEST(McSpecTest, SpscQueueRespectsCapacity) {
  Result r = Explore(
      [](Env& env) {
        SpscQueue<int, McAtomics> queue(2);
        env.Spawn([&] {
          for (int i = 1; i <= 3; ++i) {
            int v = i;
            if (!queue.TryPush(v)) return;  // full is a legal outcome
          }
        });
        env.Spawn([&] {
          int out = 0;
          (void)queue.TryPop(out);
        });
        env.Join();
        MC_ASSERT(queue.SizeApprox() <= queue.capacity());
      },
      SpecOptions());
  EXPECT_FALSE(r.found) << r.report;
}

// ---------------------------------------------------------------------------
// RCU cell: the canary deleter poisons instead of freeing, so a reader
// holding a guard over a reclaimed snapshot trips either the canary
// assertion or a data race on the canary cell — use-after-reclaim becomes
// assertable instead of undefined behavior.
struct RcuNode {
  explicit RcuNode(int v) : freed(0, "rcu.canary"), value(v) {}
  mc::var<int> freed;
  int value;
};

struct CanaryDeleter {
  void operator()(const RcuNode* node) const {
    const_cast<RcuNode*>(node)->freed.Store(1);
  }
};

TEST(McSpecTest, RcuCellNoUseAfterReclaim) {
  const int publishes = DeepMode() ? 3 : 2;
  Result r = Explore(
      [publishes](Env& env) {
        // Pool-owned payloads: the cell's deleter poisons, the pool frame
        // destroys. Declared before the cell so the cell dies first.
        RcuNode n0(1);
        RcuNode n1(2);
        RcuNode n2(3);
        RcuNode n3(4);
        std::array<RcuNode*, 4> pool{&n0, &n1, &n2, &n3};
        RcuCell<RcuNode, McAtomics, CanaryDeleter> cell(1);
        env.Spawn([&] {
          for (int i = 0; i < publishes; ++i) {
            cell.Publish(std::unique_ptr<const RcuNode, CanaryDeleter>(
                pool[static_cast<size_t>(i)]));
          }
        });
        env.Spawn([&] {
          for (int i = 0; i < 2; ++i) {
            auto guard = cell.Read(0);
            if (guard) {
              // Holding the guard means the snapshot must not have been
              // reclaimed: the canary is still 0 and reading it is
              // race-free against the deleter's poison write.
              MC_ASSERT(guard->freed.Read() == 0);
              MC_ASSERT(guard->value >= 1);
            }
          }
        });
        env.Join();
        // Quiescence: no reader holds a guard, so one more publish must
        // drain the retired list completely (bounded reclamation).
        cell.Publish(std::unique_ptr<const RcuNode, CanaryDeleter>(&n3));
        MC_ASSERT(cell.retired_count() == 0);
      },
      SpecOptions());
  EXPECT_FALSE(r.found) << r.report;
  EXPECT_GT(r.runs, 1u);
}

// ---------------------------------------------------------------------------
// OnceLatch: N racing callers — init runs exactly once, everyone gets the
// published value. The latched value is a Plain cell, so a broken publish
// is a data race, not just a wrong number.
TEST(McSpecTest, OnceLatchInitExactlyOnceSameValue) {
  const int callers = DeepMode() ? 3 : 2;
  Result r = Explore(
      [callers](Env& env) {
        OnceLatch<int, McAtomics> latch;
        mc::var<int> init_count(0, "init_count");
        for (int c = 0; c < callers; ++c) {
          env.Spawn([&] {
            const int got = latch.Get([&] {
              init_count.Store(init_count.Read() + 1);
              return 7;
            });
            MC_ASSERT(got == 7);
          });
        }
        env.Join();
        MC_ASSERT(init_count.Read() == 1);
        MC_ASSERT(latch.Ready());
      },
      SpecOptions());
  EXPECT_FALSE(r.found) << r.report;
  EXPECT_GT(r.runs, 1u);
}

// Monotonicity: once a caller observed the latched value, later callers
// can never observe a different one (the dispatch table can never revert).
TEST(McSpecTest, OnceLatchMonotonic) {
  Result r = Explore(
      [](Env& env) {
        OnceLatch<int, McAtomics> latch;
        mc::var<int> seen_a(0, "seen_a");
        mc::var<int> seen_b(0, "seen_b");
        env.Spawn([&] { seen_a.Store(latch.Get([] { return 7; })); });
        env.Spawn([&] { seen_b.Store(latch.Get([] { return 9; })); });
        env.Join();
        // Exactly one init won; both callers observed the winner, and the
        // value can never revert afterwards.
        MC_ASSERT(seen_a.Read() == seen_b.Read());
        MC_ASSERT(seen_a.Read() == 7 || seen_a.Read() == 9);
        const int final_value = latch.Get([] { return -1; });
        MC_ASSERT(final_value == seen_a.Read());
      },
      SpecOptions());
  EXPECT_FALSE(r.found) << r.report;
}

}  // namespace
}  // namespace sketchsample
