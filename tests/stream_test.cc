// Tests for the streaming substrate: sources, operators, pipeline driver.
#include <gtest/gtest.h>

#include <vector>

#include "src/sketch/fagms.h"
#include "src/stream/operators.h"
#include "src/stream/pipeline.h"
#include "src/stream/source.h"

namespace sketchsample {
namespace {

TEST(VectorSourceTest, YieldsAllValuesThenEnds) {
  VectorSource source({1, 2, 3});
  EXPECT_EQ(source.Next(), 1u);
  EXPECT_EQ(source.Next(), 2u);
  EXPECT_EQ(source.Next(), 3u);
  EXPECT_FALSE(source.Next().has_value());
  EXPECT_FALSE(source.Next().has_value());  // stays exhausted
}

TEST(VectorSourceTest, EmptyVector) {
  VectorSource source({});
  EXPECT_FALSE(source.Next().has_value());
}

TEST(ZipfSourceTest, EmitsExactlyCountValues) {
  ZipfSource source(100, 1.0, 500, 42);
  size_t n = 0;
  while (source.Next()) ++n;
  EXPECT_EQ(n, 500u);
}

TEST(ZipfSourceTest, ValuesInDomain) {
  ZipfSource source(10, 2.0, 1000, 7);
  while (auto v = source.Next()) EXPECT_LT(*v, 10u);
}

TEST(SinkOperatorTest, CountsAndForwards) {
  std::vector<uint64_t> seen;
  SinkOperator sink([&](uint64_t v) { seen.push_back(v); });
  sink.OnTuple(5);
  sink.OnTuple(6);
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(seen, (std::vector<uint64_t>{5, 6}));
}

TEST(ShedOperatorTest, ForwardsBernoulliFraction) {
  SinkOperator sink([](uint64_t) {});
  ShedOperator shed(0.25, 3, &sink);
  for (uint64_t v = 0; v < 10000; ++v) shed.OnTuple(v);
  EXPECT_EQ(shed.seen(), 10000u);
  EXPECT_EQ(shed.forwarded(), sink.count());
  EXPECT_NEAR(static_cast<double>(shed.forwarded()), 2500.0, 250.0);
}

TEST(ShedOperatorTest, ProbabilityExtremes) {
  SinkOperator sink([](uint64_t) {});
  ShedOperator keep_all(1.0, 1, &sink);
  for (int i = 0; i < 100; ++i) keep_all.OnTuple(1);
  EXPECT_EQ(keep_all.forwarded(), 100u);

  SinkOperator sink2([](uint64_t) {});
  ShedOperator keep_none(0.0, 1, &sink2);
  for (int i = 0; i < 100; ++i) keep_none.OnTuple(1);
  EXPECT_EQ(keep_none.forwarded(), 0u);
}

TEST(PipelineTest, PumpsWholeSourceAndTimes) {
  VectorSource source(std::vector<uint64_t>(1000, 3));
  SinkOperator sink([](uint64_t) {});
  const PipelineStats stats = RunPipeline(source, sink);
  EXPECT_EQ(stats.tuples, 1000u);
  EXPECT_EQ(sink.count(), 1000u);
  EXPECT_GE(stats.seconds, 0.0);
  EXPECT_GE(stats.TuplesPerSecond(), 0.0);
}

TEST(PipelineTest, ShedThenSketchEndToEnd) {
  // The §VI-A deployment: source -> shed(p) -> sketch. The corrected
  // estimate must land near the truth.
  constexpr size_t kCount = 20000;
  ZipfSource source(100, 1.0, kCount, 11);

  SketchParams params;
  params.rows = 1;
  params.buckets = 2048;
  params.seed = 13;
  FagmsSketch sketch(params);
  SinkOperator sink([&](uint64_t v) { sketch.Update(v); });
  ShedOperator shed(0.2, 17, &sink);

  // Also track the exact frequencies to know the truth.
  std::vector<uint64_t> all;
  ZipfSource mirror(100, 1.0, kCount, 11);  // same seed -> same stream
  while (auto v = mirror.Next()) all.push_back(*v);
  const double truth = FrequencyVector::FromStream(all, 100).F2();

  RunPipeline(source, shed);
  const double raw = sketch.EstimateSelfJoin();
  const double corrected =
      raw / (0.2 * 0.2) -
      (1.0 - 0.2) / (0.2 * 0.2) * static_cast<double>(shed.forwarded());
  EXPECT_LT(std::abs(corrected - truth) / truth, 0.25);
}

}  // namespace
}  // namespace sketchsample
