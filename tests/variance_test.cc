// Property tests for the closed-form variance formulas (Eqs 6-28) against
// the independently derived generic factorial-moment engine, plus
// structural sanity checks.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/core/corrections.h"
#include "src/core/decomposition.h"
#include "src/core/generic_variance.h"
#include "src/core/variance.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"

namespace sketchsample {
namespace {

constexpr double kRelTol = 1e-9;

void ExpectRelClose(double actual, double expected, const char* what) {
  const double tol = kRelTol * std::max(1.0, std::abs(expected));
  EXPECT_NEAR(actual, expected, tol) << what;
}

// ---------------------------------------------------------------------------
// Sketch-only formulas on hand-computable inputs.
// ---------------------------------------------------------------------------

TEST(AgmsVarianceTest, JoinFormulaOnTinyInput) {
  // f = {1, 2}, g = {3, 1}: F2=5, G2=10, fg=5, f2g2=13.
  FrequencyVector f(std::vector<uint64_t>{1, 2});
  FrequencyVector g(std::vector<uint64_t>{3, 1});
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  EXPECT_DOUBLE_EQ(AgmsJoinVariance(s), 5 * 10 + 25 - 2 * 13);
}

TEST(AgmsVarianceTest, SelfJoinFormulaOnTinyInput) {
  // f = {1, 2}: F2 = 5, F4 = 17 -> 2(25 − 17) = 16.
  FrequencyVector f(std::vector<uint64_t>{1, 2});
  const JoinStatistics s = ComputeJoinStatistics(f, f);
  EXPECT_DOUBLE_EQ(AgmsSelfJoinVariance(s), 16.0);
}

TEST(AgmsVarianceTest, SingleValueHasZeroSelfJoinVariance) {
  // One distinct value: S² = f² deterministically.
  FrequencyVector f(std::vector<uint64_t>{7});
  const JoinStatistics s = ComputeJoinStatistics(f, f);
  EXPECT_DOUBLE_EQ(AgmsSelfJoinVariance(s), 0.0);
}

// ---------------------------------------------------------------------------
// Closed forms == generic engine across a parameter sweep.
// ---------------------------------------------------------------------------

class BernoulliVarianceSweep
    : public ::testing::TestWithParam<std::tuple<double, double, size_t>> {};

TEST_P(BernoulliVarianceSweep, JoinClosedFormMatchesGenericEngine) {
  const auto [skew, p, n] = GetParam();
  const double q = std::min(1.0, p * 1.7);
  const FrequencyVector f = ZipfFrequencies(60, 900, skew);
  const FrequencyVector g = ZipfFrequencies(60, 700, skew * 0.5);
  const JoinStatistics s = ComputeJoinStatistics(f, g);

  const VarianceTerms closed = BernoulliJoinVariance(s, p, q, n);
  const auto gv = ComputeGenericJoinVariance(
      FrequencyMomentModel::Bernoulli(f, p),
      FrequencyMomentModel::Bernoulli(g, q), 1.0 / (p * q));

  ExpectRelClose(closed.sampling, gv.sampling_term, "sampling term");
  ExpectRelClose(closed.Total(), gv.VarianceAveraged(n), "total variance");
  ExpectRelClose(gv.expectation, s.fg, "unbiasedness");
}

TEST_P(BernoulliVarianceSweep, SelfJoinClosedFormMatchesGenericEngine) {
  const auto [skew, p, n] = GetParam();
  const FrequencyVector f = ZipfFrequencies(60, 900, skew);
  const JoinStatistics s = ComputeJoinStatistics(f, f);

  const VarianceTerms closed = BernoulliSelfJoinVariance(s, p, n);
  const double b = (1.0 - p) / (p * p);
  const auto gv = ComputeGenericSelfJoinVariance(
      FrequencyMomentModel::Bernoulli(f, p), 1.0 / (p * p), b,
      /*random_shift=*/true);

  ExpectRelClose(closed.sampling, gv.sampling_term, "sampling term (Eq 7)");
  ExpectRelClose(closed.Total(), gv.VarianceAveraged(n), "total (Eq 26)");
  ExpectRelClose(gv.expectation, s.f2, "unbiasedness");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BernoulliVarianceSweep,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0),
                       ::testing::Values(0.01, 0.1, 0.5),
                       ::testing::Values(size_t{1}, size_t{100})),
    [](const auto& info) {
      return "skew" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_p" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_n" + std::to_string(std::get<2>(info.param));
    });

class FixedSizeVarianceSweep
    : public ::testing::TestWithParam<std::tuple<double, double, size_t>> {};

TEST_P(FixedSizeVarianceSweep, WrJoinClosedFormMatchesGenericEngine) {
  const auto [skew, fraction, n] = GetParam();
  const FrequencyVector f = ZipfFrequencies(60, 1000, skew);
  const FrequencyVector g = ZipfFrequencies(60, 800, skew);
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  const uint64_t mf = std::max<uint64_t>(2, 1000 * fraction);
  const uint64_t mg = std::max<uint64_t>(2, 800 * fraction);
  const auto cf = ComputeCoefficients(1000, mf);
  const auto cg = ComputeCoefficients(800, mg);

  const VarianceTerms closed = WrJoinVariance(s, cf, cg, n);
  const auto gv = ComputeGenericJoinVariance(
      FrequencyMomentModel::WithReplacement(f, mf),
      FrequencyMomentModel::WithReplacement(g, mg),
      1.0 / (cf.alpha * cg.alpha));

  ExpectRelClose(closed.sampling, gv.sampling_term, "sampling term (Eq 10)");
  ExpectRelClose(closed.Total(), gv.VarianceAveraged(n), "total (Eq 27)");
  ExpectRelClose(gv.expectation, s.fg, "unbiasedness");
}

TEST_P(FixedSizeVarianceSweep, WorJoinClosedFormMatchesGenericEngine) {
  const auto [skew, fraction, n] = GetParam();
  const FrequencyVector f = ZipfFrequencies(60, 1000, skew);
  const FrequencyVector g = ZipfFrequencies(60, 800, skew * 1.5);
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  const uint64_t mf = std::max<uint64_t>(2, 1000 * fraction);
  const uint64_t mg = std::max<uint64_t>(2, 800 * fraction);
  const auto cf = ComputeCoefficients(1000, mf);
  const auto cg = ComputeCoefficients(800, mg);

  const VarianceTerms closed = WorJoinVariance(s, cf, cg, n);
  const auto gv = ComputeGenericJoinVariance(
      FrequencyMomentModel::WithoutReplacement(f, mf),
      FrequencyMomentModel::WithoutReplacement(g, mg),
      1.0 / (cf.alpha * cg.alpha));

  ExpectRelClose(closed.sampling, gv.sampling_term, "sampling term (Eq 11)");
  ExpectRelClose(closed.Total(), gv.VarianceAveraged(n), "total (Eq 28)");
  ExpectRelClose(gv.expectation, s.fg, "unbiasedness");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FixedSizeVarianceSweep,
    ::testing::Combine(::testing::Values(0.0, 1.0, 3.0),
                       ::testing::Values(0.01, 0.1, 0.5, 1.0),
                       ::testing::Values(size_t{1}, size_t{64})),
    [](const auto& info) {
      return "skew" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_f" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_n" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Structural properties.
// ---------------------------------------------------------------------------

TEST(VarianceStructureTest, FullBernoulliSamplingLeavesOnlySketchTerm) {
  const FrequencyVector f = ZipfFrequencies(50, 500, 1.0);
  const FrequencyVector g = ZipfFrequencies(50, 500, 1.0);
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  const VarianceTerms v = BernoulliJoinVariance(s, 1.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(v.sampling, 0.0);
  EXPECT_DOUBLE_EQ(v.interaction, 0.0);
  EXPECT_DOUBLE_EQ(v.sketch, AgmsJoinVariance(s) / 10.0);
}

TEST(VarianceStructureTest, FullWorScanLeavesOnlySketchTerm) {
  const FrequencyVector f = ZipfFrequencies(50, 500, 1.0);
  const FrequencyVector g = ZipfFrequencies(50, 400, 0.5);
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  const auto cf = ComputeCoefficients(500, 500);
  const auto cg = ComputeCoefficients(400, 400);
  const VarianceTerms v = WorJoinVariance(s, cf, cg, 5);
  EXPECT_NEAR(v.sampling, 0.0, 1e-9 * s.fg * s.fg);
  EXPECT_NEAR(v.interaction, 0.0, 1e-9 * s.fg * s.fg);
  EXPECT_NEAR(v.sketch, AgmsJoinVariance(s) / 5.0, 1e-6);
}

TEST(VarianceStructureTest, WrVarianceNeverVanishes) {
  // Even a "full-size" WR sample keeps sampling variance (§III-E remark).
  const FrequencyVector f = ZipfFrequencies(50, 500, 1.0);
  const FrequencyVector g = ZipfFrequencies(50, 500, 1.0);
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  const auto cf = ComputeCoefficients(500, 500);
  const auto cg = ComputeCoefficients(500, 500);
  EXPECT_GT(WrJoinSamplingVariance(s, cf, cg), 0.0);
}

TEST(VarianceStructureTest, FractionsSumToOne) {
  const FrequencyVector f = ZipfFrequencies(50, 500, 1.0);
  const JoinStatistics s = ComputeJoinStatistics(f, f);
  const VarianceTerms v = BernoulliSelfJoinVariance(s, 0.1, 50);
  EXPECT_NEAR(v.SamplingFraction() + v.SketchFraction() +
                  v.InteractionFraction(),
              1.0, 1e-12);
}

TEST(VarianceStructureTest, AveragingShrinksSketchNotSampling) {
  const FrequencyVector f = ZipfFrequencies(50, 800, 1.5);
  const FrequencyVector g = ZipfFrequencies(50, 800, 1.5);
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  const VarianceTerms v1 = BernoulliJoinVariance(s, 0.2, 0.2, 1);
  const VarianceTerms v100 = BernoulliJoinVariance(s, 0.2, 0.2, 100);
  EXPECT_DOUBLE_EQ(v1.sampling, v100.sampling);
  EXPECT_NEAR(v1.sketch / 100.0, v100.sketch, 1e-9 * v1.sketch);
  EXPECT_NEAR(v1.interaction / 100.0, v100.interaction,
              1e-9 * std::abs(v1.interaction) + 1e-12);
  EXPECT_GT(v1.Total(), v100.Total());
}

TEST(VarianceStructureTest, InteractionDominatesUniformData) {
  // §V-B: for uniform frequencies with value below |I|, the interaction term
  // dominates the sketch term.
  FrequencyVector f(std::vector<uint64_t>(1000, 5));  // uniform, f_i = 5
  const JoinStatistics s = ComputeJoinStatistics(f, f);
  const VarianceTerms v = BernoulliSelfJoinVariance(s, 0.1, 1);
  EXPECT_GT(v.interaction, v.sketch);
}

TEST(VarianceStructureTest, SketchDominatesSkewedData) {
  // §V-B: for highly skewed data the sketch variance dominates.
  const FrequencyVector f = ZipfFrequencies(1000, 100000, 3.0);
  const JoinStatistics s = ComputeJoinStatistics(f, f);
  const VarianceTerms v = BernoulliSelfJoinVariance(s, 0.1, 1);
  EXPECT_GT(v.sketch, v.interaction);
  EXPECT_GT(v.sketch, v.sampling);
}

// ---------------------------------------------------------------------------
// Unified decomposition front-end.
// ---------------------------------------------------------------------------

TEST(DecompositionTest, MatchesDirectClosedFormsForJoin) {
  const FrequencyVector f = ZipfFrequencies(40, 400, 1.0);
  const FrequencyVector g = ZipfFrequencies(40, 300, 0.5);
  const JoinStatistics s = ComputeJoinStatistics(f, g);

  SamplingSpec bernoulli;
  bernoulli.scheme = SamplingScheme::kBernoulli;
  bernoulli.p = 0.2;
  bernoulli.q = 0.3;
  const VarianceTerms direct = BernoulliJoinVariance(s, 0.2, 0.3, 10);
  const VarianceTerms via = CombinedJoinVariance(bernoulli, f, g, 10);
  EXPECT_DOUBLE_EQ(via.Total(), direct.Total());

  SamplingSpec wor;
  wor.scheme = SamplingScheme::kWithoutReplacement;
  wor.sample_size_f = 100;
  wor.sample_size_g = 60;
  const auto cf = ComputeCoefficients(400, 100);
  const auto cg = ComputeCoefficients(300, 60);
  EXPECT_DOUBLE_EQ(CombinedJoinVariance(wor, f, g, 10).Total(),
                   WorJoinVariance(s, cf, cg, 10).Total());
}

TEST(DecompositionTest, WrSelfJoinTotalMatchesGenericEngine) {
  const FrequencyVector f = ZipfFrequencies(40, 400, 1.0);
  SamplingSpec spec;
  spec.scheme = SamplingScheme::kWithReplacement;
  spec.sample_size_f = 80;
  const VarianceTerms v = CombinedSelfJoinVariance(spec, f, 25);

  const auto coef = ComputeCoefficients(400, 80);
  const Correction c = WrSelfJoinCorrection(coef);
  const auto gv = ComputeGenericSelfJoinVariance(
      FrequencyMomentModel::WithReplacement(f, 80), c.scale, c.shift, false);
  ExpectRelClose(v.Total(), gv.VarianceAveraged(25), "WR self-join total");
}

TEST(DecompositionTest, WorSelfJoinFullScanSketchOnly) {
  const FrequencyVector f = ZipfFrequencies(40, 400, 1.0);
  const JoinStatistics s = ComputeJoinStatistics(f, f);
  SamplingSpec spec;
  spec.scheme = SamplingScheme::kWithoutReplacement;
  spec.sample_size_f = 400;
  const VarianceTerms v = CombinedSelfJoinVariance(spec, f, 8);
  EXPECT_NEAR(v.sampling, 0.0, 1e-6 * s.f2 * s.f2);
  EXPECT_NEAR(v.Total(), AgmsSelfJoinVariance(s) / 8.0,
              1e-6 * AgmsSelfJoinVariance(s));
}

}  // namespace
}  // namespace sketchsample
