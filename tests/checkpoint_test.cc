// Tests for checkpoint/recovery (src/stream/checkpoint.h): kill-and-resume
// must be bit-exact for every sketch type, and a corrupt checkpoint must
// throw CheckpointError — never crash, never load silently.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "src/sketch/agms.h"
#include "src/sketch/countmin.h"
#include "src/sketch/fagms.h"
#include "src/sketch/fastcount.h"
#include "src/sketch/serialize.h"
#include "src/stream/checkpoint.h"
#include "src/stream/operators.h"
#include "src/stream/pipeline.h"
#include "src/stream/shed_controller.h"
#include "src/stream/source.h"
#include "src/util/crc32.h"
#include "src/util/metrics.h"

namespace sketchsample {
namespace {

template <typename SketchT>
struct SketchTraits;

template <>
struct SketchTraits<AgmsSketch> {
  static AgmsSketch Deserialize(const std::vector<uint8_t>& b) {
    return DeserializeAgms(b);
  }
  static SketchParams Params() {
    SketchParams p;
    p.rows = 64;
    p.seed = 33;
    return p;
  }
};

template <>
struct SketchTraits<FagmsSketch> {
  static FagmsSketch Deserialize(const std::vector<uint8_t>& b) {
    return DeserializeFagms(b);
  }
  static SketchParams Params() {
    SketchParams p;
    p.rows = 3;
    p.buckets = 512;
    p.seed = 33;
    return p;
  }
};

template <>
struct SketchTraits<CountMinSketch> {
  static CountMinSketch Deserialize(const std::vector<uint8_t>& b) {
    return DeserializeCountMin(b);
  }
  static SketchParams Params() { return SketchTraits<FagmsSketch>::Params(); }
};

template <>
struct SketchTraits<FastCountSketch> {
  static FastCountSketch Deserialize(const std::vector<uint8_t>& b) {
    return DeserializeFastCount(b);
  }
  static SketchParams Params() { return SketchTraits<FagmsSketch>::Params(); }
};

// One adaptive, checkpointing pipeline deployment over a deterministic Zipf
// stream; every run with the same knobs sees the identical stream.
struct RunResult {
  std::vector<double> counters;
  uint64_t seen = 0;
  uint64_t forwarded = 0;
  double controller_p = 0;
  PipelineStats stats;
  std::vector<uint8_t> last_checkpoint;
};

constexpr uint64_t kCount = 60000;
constexpr uint64_t kWindow = 5000;
constexpr uint64_t kCheckpointEvery = 12000;

ShedControllerOptions ControllerOptions() {
  ShedControllerOptions copts;
  copts.capacity_per_window = 700.0;
  copts.window_tuples = kWindow;
  return copts;
}

template <typename SketchT>
RunResult RunWithKill(uint64_t kill_after) {
  ZipfSource source(1000, 1.0, kCount, 9);
  SketchT sketch(SketchTraits<SketchT>::Params());
  SinkOperator sink = MakeSketchSink(sketch);
  ShedOperator shed(1.0, 13, &sink);
  ShedController controller(ControllerOptions());
  SketchSnapshot<SketchT> snapshot(sketch);
  LatestCheckpointSink ckpt;

  PipelineOptions opts;
  opts.max_tuples = kill_after;
  opts.shed = &shed;
  opts.controller = &controller;
  opts.checkpoint_sink = &ckpt;
  opts.snapshot = &snapshot;
  opts.checkpoint_every = kCheckpointEvery;

  RunResult result;
  result.stats = RunPipeline(source, shed, opts);
  result.counters.assign(sketch.counters().begin(),
                          sketch.counters().end());
  result.seen = shed.seen();
  result.forwarded = shed.forwarded();
  result.controller_p = controller.p();
  result.last_checkpoint = ckpt.bytes();
  return result;
}

template <typename SketchT>
RunResult ResumeFrom(const std::vector<uint8_t>& checkpoint_bytes) {
  const PipelineCheckpoint cp = DeserializeCheckpoint(checkpoint_bytes);
  ZipfSource source(1000, 1.0, kCount, 9);  // fresh deterministic rebuild
  SketchT sketch = SketchTraits<SketchT>::Deserialize(cp.sketch);
  SinkOperator sink = MakeSketchSink(sketch);
  ShedOperator shed(1.0, 13, &sink);
  ShedController controller(ControllerOptions());
  RestorePipelineComponents(cp, source, &shed, &controller);

  SketchSnapshot<SketchT> snapshot(sketch);
  LatestCheckpointSink ckpt;
  PipelineOptions opts;
  opts.initial_tuples = cp.source_tuples;
  opts.shed = &shed;
  opts.controller = &controller;
  opts.checkpoint_sink = &ckpt;
  opts.snapshot = &snapshot;
  opts.checkpoint_every = kCheckpointEvery;

  RunResult result;
  result.stats = RunPipeline(source, shed, opts);
  result.counters.assign(sketch.counters().begin(),
                          sketch.counters().end());
  result.seen = shed.seen();
  result.forwarded = shed.forwarded();
  result.controller_p = controller.p();
  result.last_checkpoint = ckpt.bytes();
  return result;
}

template <typename SketchT>
class CheckpointResumeTest : public testing::Test {};

using SketchTypes =
    testing::Types<AgmsSketch, FagmsSketch, CountMinSketch, FastCountSketch>;
TYPED_TEST_SUITE(CheckpointResumeTest, SketchTypes);

TYPED_TEST(CheckpointResumeTest, KillAndResumeIsBitExact) {
  // Ground truth: one uninterrupted adaptive run.
  const RunResult full = RunWithKill<TypeParam>(0);
  ASSERT_TRUE(full.stats.ended);
  ASSERT_EQ(full.stats.checkpoints, kCount / kCheckpointEvery);

  // Kill mid-stream between two checkpoint boundaries, then resume from the
  // last checkpoint (taken at 24000) with freshly built components.
  const RunResult killed = RunWithKill<TypeParam>(29000);
  ASSERT_FALSE(killed.stats.ended);  // the cap is a kill, not an end
  ASSERT_FALSE(killed.last_checkpoint.empty());
  ASSERT_EQ(DeserializeCheckpoint(killed.last_checkpoint).source_tuples,
            24000u);

  const RunResult resumed = ResumeFrom<TypeParam>(killed.last_checkpoint);
  ASSERT_TRUE(resumed.stats.ended);

  // Bit-exact: identical counters, realized counts, and controller state —
  // not merely close.
  EXPECT_EQ(resumed.counters, full.counters);
  EXPECT_EQ(resumed.seen, full.seen);
  EXPECT_EQ(resumed.forwarded, full.forwarded);
  EXPECT_DOUBLE_EQ(resumed.controller_p, full.controller_p);
  EXPECT_DOUBLE_EQ(resumed.stats.final_p, full.stats.final_p);
  // The resumed run's own later checkpoints match the uninterrupted run's.
  EXPECT_EQ(resumed.last_checkpoint, full.last_checkpoint);
}

TEST(CheckpointFormatTest, RoundtripPreservesEveryField) {
  PipelineCheckpoint cp;
  cp.source_tuples = 123456;
  cp.has_shed = true;
  cp.shed.p = 0.25;
  cp.shed.skip = 7;
  cp.shed.seen = 1000;
  cp.shed.forwarded = 250;
  cp.shed.has_skipper = true;
  cp.shed.coin_rng = {1, 2, 3, 4};
  cp.shed.skip_rng = {5, 6, 7, 8};
  cp.has_controller = true;
  cp.controller.p = 0.25;
  cp.controller.backlog = 12.5;
  cp.controller.windows = 9;
  cp.controller.offered = 1000;
  cp.controller.kept = 250;
  cp.sketch = {0xDE, 0xAD, 0xBE, 0xEF};

  const PipelineCheckpoint back =
      DeserializeCheckpoint(SerializeCheckpoint(cp));
  EXPECT_EQ(back.source_tuples, cp.source_tuples);
  ASSERT_TRUE(back.has_shed);
  EXPECT_DOUBLE_EQ(back.shed.p, cp.shed.p);
  EXPECT_EQ(back.shed.skip, cp.shed.skip);
  EXPECT_EQ(back.shed.seen, cp.shed.seen);
  EXPECT_EQ(back.shed.forwarded, cp.shed.forwarded);
  EXPECT_EQ(back.shed.has_skipper, cp.shed.has_skipper);
  EXPECT_EQ(back.shed.coin_rng, cp.shed.coin_rng);
  EXPECT_EQ(back.shed.skip_rng, cp.shed.skip_rng);
  ASSERT_TRUE(back.has_controller);
  EXPECT_DOUBLE_EQ(back.controller.backlog, cp.controller.backlog);
  EXPECT_EQ(back.controller.windows, cp.controller.windows);
  EXPECT_EQ(back.sketch, cp.sketch);
}

// Wire-format offsets for the corruption table below (see checkpoint.h):
// magic 0..3 | version 4..7 | source_tuples 8..15 | flags 16 |
// shed: p 17..24, skip 25..32, seen 33..40, forwarded 41..48,
//       has_skipper 49, coin_rng 50..81, skip_rng 82..113 |
// controller: p 114..121, backlog 122..129, windows 130..137,
//             offered 138..145, kept 146..153 | sketch_len 154..161 | ...
std::vector<uint8_t> ValidCheckpointBytes() {
  PipelineCheckpoint cp;
  cp.source_tuples = 5000;
  cp.has_shed = true;
  cp.shed.p = 0.5;
  cp.shed.seen = 100;
  cp.shed.forwarded = 50;
  cp.shed.has_skipper = true;
  cp.has_controller = true;
  cp.controller.p = 0.5;
  cp.controller.offered = 100;
  cp.controller.kept = 50;
  cp.sketch = {1, 2, 3, 4, 5, 6, 7, 8};
  return SerializeCheckpoint(cp);
}

void PatchBytes(std::vector<uint8_t>& bytes, size_t offset,
                const void* data, size_t size) {
  ASSERT_LE(offset + size, bytes.size());
  std::memcpy(bytes.data() + offset, data, size);
}

// Recomputes the CRC32 footer so a mutation tests the validation behind
// the checksum, not merely the checksum itself.
void RefitCrc(std::vector<uint8_t>& bytes) {
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
}

TEST(CheckpointFormatTest, CorruptBuffersThrowNeverCrash) {
  const std::vector<uint8_t> valid = ValidCheckpointBytes();
  ASSERT_NO_THROW(DeserializeCheckpoint(valid));

  struct Case {
    const char* name;
    std::function<void(std::vector<uint8_t>&)> mutate;
    bool refit_crc;
  };
  const double bad_p = 2.0;
  const double nan_backlog = std::numeric_limits<double>::quiet_NaN();
  const uint64_t seen = 5, forwarded = 10;  // forwarded > seen
  const uint64_t huge_len = uint64_t{1} << 60;
  const uint32_t bad_version = 99;
  const Case cases[] = {
      {"empty buffer", [](std::vector<uint8_t>& b) { b.clear(); }, false},
      {"truncated to half",
       [](std::vector<uint8_t>& b) { b.resize(b.size() / 2); }, false},
      {"single bit flip (CRC mismatch)",
       [](std::vector<uint8_t>& b) { b[b.size() / 2] ^= 0x01; }, false},
      {"bad magic",
       [](std::vector<uint8_t>& b) { b[0] = 'X'; }, true},
      {"unsupported version",
       [&](std::vector<uint8_t>& b) { PatchBytes(b, 4, &bad_version, 4); },
       true},
      {"unknown flag bits",
       [](std::vector<uint8_t>& b) { b[16] |= 0x80; }, true},
      {"shed rate out of range",
       [&](std::vector<uint8_t>& b) { PatchBytes(b, 17, &bad_p, 8); }, true},
      {"shed forwarded exceeds seen",
       [&](std::vector<uint8_t>& b) {
         PatchBytes(b, 33, &seen, 8);
         PatchBytes(b, 41, &forwarded, 8);
       },
       true},
      {"invalid skipper flag",
       [](std::vector<uint8_t>& b) { b[49] = 7; }, true},
      {"controller rate out of range",
       [&](std::vector<uint8_t>& b) { PatchBytes(b, 114, &bad_p, 8); },
       true},
      {"controller backlog NaN",
       [&](std::vector<uint8_t>& b) { PatchBytes(b, 122, &nan_backlog, 8); },
       true},
      {"sketch length exceeds buffer",
       [&](std::vector<uint8_t>& b) { PatchBytes(b, 154, &huge_len, 8); },
       true},
      {"trailing bytes",
       [](std::vector<uint8_t>& b) {
         b.insert(b.end() - sizeof(uint32_t), 0xAA);
       },
       true},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    std::vector<uint8_t> bytes = valid;
    c.mutate(bytes);
    if (c.refit_crc) RefitCrc(bytes);
    EXPECT_THROW(DeserializeCheckpoint(bytes), CheckpointError);
  }
}

TEST(CheckpointFormatTest, SkipperWithZeroRateRejected) {
  // p == 0 with an armed skipper is an impossible state; a forged
  // checkpoint must not smuggle it in.
  std::vector<uint8_t> bytes = ValidCheckpointBytes();
  const double zero = 0.0;
  PatchBytes(bytes, 17, &zero, 8);
  RefitCrc(bytes);
  EXPECT_THROW(DeserializeCheckpoint(bytes), CheckpointError);
}

TEST(CheckpointFormatTest, ShardDistinctBlobsRoundtrip) {
  // Flag bit 3: per-shard KMV distinct-counter blobs riding next to the
  // partial sketches (src/stream/shard_engine.h distinct_k).
  PipelineCheckpoint cp;
  cp.source_tuples = 9000;
  cp.has_shards = true;
  cp.shard_p = 0.5;
  cp.has_shard_distinct = true;
  ShardCheckpointState a;
  a.seen = 5000;
  a.kept = 2500;
  a.sketch = {1, 2, 3};
  a.distinct = {9, 8, 7, 6};
  ShardCheckpointState b;
  b.seen = 4000;
  b.kept = 2000;
  b.sketch = {4, 5};
  b.distinct = {};  // an empty blob is legal (lane saw nothing yet)
  cp.shards = {a, b};

  const PipelineCheckpoint back =
      DeserializeCheckpoint(SerializeCheckpoint(cp));
  ASSERT_TRUE(back.has_shards);
  ASSERT_TRUE(back.has_shard_distinct);
  ASSERT_EQ(back.shards.size(), 2u);
  EXPECT_EQ(back.shards[0].seen, a.seen);
  EXPECT_EQ(back.shards[0].kept, a.kept);
  EXPECT_EQ(back.shards[0].sketch, a.sketch);
  EXPECT_EQ(back.shards[0].distinct, a.distinct);
  EXPECT_EQ(back.shards[1].distinct, b.distinct);
}

TEST(CheckpointFormatTest, ShardSectionWithoutDistinctLeavesBlobsEmpty) {
  PipelineCheckpoint cp;
  cp.has_shards = true;
  cp.shard_p = 1.0;
  ShardCheckpointState shard;
  shard.seen = 10;
  shard.kept = 10;
  shard.sketch = {1};
  cp.shards = {shard};

  const PipelineCheckpoint back =
      DeserializeCheckpoint(SerializeCheckpoint(cp));
  ASSERT_TRUE(back.has_shards);
  EXPECT_FALSE(back.has_shard_distinct);
  ASSERT_EQ(back.shards.size(), 1u);
  EXPECT_TRUE(back.shards[0].distinct.empty());
}

TEST(CheckpointFormatTest, DistinctFlagRequiresShardSection) {
  // Serializer side: distinct blobs without a shard section is a caller bug.
  PipelineCheckpoint cp;
  cp.has_shard_distinct = true;
  EXPECT_THROW(SerializeCheckpoint(cp), CheckpointError);

  // Deserializer side: a forged buffer with flag bit 3 set but bit 2 clear
  // must be rejected before any shard state is read.
  std::vector<uint8_t> bytes = ValidCheckpointBytes();
  bytes[16] |= 0x08;  // kFlagShardDistinct without kFlagShards
  RefitCrc(bytes);
  EXPECT_THROW(DeserializeCheckpoint(bytes), CheckpointError);
}

TEST(ShedOperatorStateTest, RestoredOperatorReplaysExactly) {
  std::vector<uint64_t> first(5000), second(5000);
  for (size_t i = 0; i < first.size(); ++i) {
    first[i] = i;
    second[i] = 100000 + i;
  }
  std::vector<uint64_t> out_a, out_b;
  SinkOperator sink_a([&](uint64_t v) { out_a.push_back(v); });
  SinkOperator sink_b([&](uint64_t v) { out_b.push_back(v); });

  ShedOperator shed_a(0.3, 55, &sink_a);
  shed_a.OnTuples(first.data(), first.size());
  shed_a.SetP(0.7);  // mid-stream retarget is part of the saved state
  shed_a.OnTuples(first.data(), first.size());
  const ShedOperatorState state = shed_a.SaveState();

  ShedOperator shed_b(0.3, 55, &sink_b);
  shed_b.RestoreState(state);
  EXPECT_EQ(shed_b.seen(), shed_a.seen());
  EXPECT_EQ(shed_b.p(), shed_a.p());

  shed_a.OnTuples(second.data(), second.size());
  shed_b.OnTuples(second.data(), second.size());
  out_a.clear();
  out_b.clear();
  shed_a.OnTuples(second.data(), second.size());
  shed_b.OnTuples(second.data(), second.size());
  EXPECT_EQ(out_a, out_b);  // identical coin/skip sequences after restore
  EXPECT_EQ(shed_a.forwarded(), shed_b.forwarded());
}

TEST(FileCheckpointSinkTest, WritesAtomicallyAndReplaces) {
  const std::string path = testing::TempDir() + "/sketchsample_ckpt.bin";
  FileCheckpointSink sink(path);

  PipelineCheckpoint cp;
  cp.source_tuples = 111;
  sink.Write(SerializeCheckpoint(cp), cp.source_tuples);
  cp.source_tuples = 222;
  sink.Write(SerializeCheckpoint(cp), cp.source_tuples);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(DeserializeCheckpoint(bytes).source_tuples, 222u);
  std::remove(path.c_str());
}

TEST(FileCheckpointSinkTest, UnwritablePathThrows) {
  FileCheckpointSink sink("/nonexistent-dir/ckpt.bin");
  PipelineCheckpoint cp;
  EXPECT_THROW(sink.Write(SerializeCheckpoint(cp), 0), std::runtime_error);
}

TEST(RestorePipelineComponentsTest, ShortSourceIsRejected) {
  PipelineCheckpoint cp;
  cp.source_tuples = 1000;
  VectorSource source(std::vector<uint64_t>(100, 1));  // too short
  EXPECT_THROW(RestorePipelineComponents(cp, source, nullptr, nullptr),
               CheckpointError);
}

TEST(CheckpointMetricsTest, WriteAndRestoreCountersAdvance) {
  metrics::SetEnabled(true);
  auto& writes =
      metrics::Registry::Global().GetCounter("stream.checkpoint.writes");
  auto& bytes_ctr =
      metrics::Registry::Global().GetCounter("stream.checkpoint.bytes");
  auto& restores =
      metrics::Registry::Global().GetCounter("stream.checkpoint.restores");
  const uint64_t w0 = writes.Get(), b0 = bytes_ctr.Get(),
                 r0 = restores.Get();

  PipelineCheckpoint cp;
  cp.source_tuples = 1;
  const std::vector<uint8_t> bytes = SerializeCheckpoint(cp);
  DeserializeCheckpoint(bytes);
  metrics::SetEnabled(false);

  EXPECT_EQ(writes.Get(), w0 + 1);
  EXPECT_EQ(bytes_ctr.Get(), b0 + bytes.size());
  EXPECT_EQ(restores.Get(), r0 + 1);
}

}  // namespace
}  // namespace sketchsample
