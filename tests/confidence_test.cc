// Tests for confidence-interval machinery (§II error-guarantee conventions).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/confidence.h"
#include "src/core/sketch_estimators.h"
#include "src/core/variance.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.84134474), 1.0, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.99865010), 3.0, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.001), -3.090232306, 1e-5);
}

TEST(NormalQuantileTest, Symmetry) {
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-8);
  }
}

TEST(NormalQuantileTest, RoundTripsThroughCdf) {
  for (double p : {0.001, 0.05, 0.2, 0.5, 0.8, 0.95, 0.999}) {
    const double x = NormalQuantile(p);
    const double cdf = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-8) << "p = " << p;
  }
}

TEST(NormalQuantileTest, DomainChecked) {
  EXPECT_THROW(NormalQuantile(0.0), std::invalid_argument);
  EXPECT_THROW(NormalQuantile(1.0), std::invalid_argument);
  EXPECT_THROW(NormalQuantile(-0.5), std::invalid_argument);
}

TEST(CltIntervalTest, WidthMatchesZScore) {
  const auto ci = CltInterval(100.0, 4.0, 0.95);
  EXPECT_NEAR(ci.HalfWidth(), 1.959963985 * 2.0, 1e-5);
  EXPECT_NEAR((ci.low + ci.high) / 2.0, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(ci.level, 0.95);
}

TEST(CltIntervalTest, ZeroVarianceCollapses) {
  const auto ci = CltInterval(42.0, 0.0, 0.9);
  EXPECT_DOUBLE_EQ(ci.low, 42.0);
  EXPECT_DOUBLE_EQ(ci.high, 42.0);
}

TEST(ChebyshevIntervalTest, WiderThanClt) {
  const auto clt = CltInterval(0.0, 1.0, 0.95);
  const auto cheb = ChebyshevInterval(0.0, 1.0, 0.95);
  EXPECT_GT(cheb.HalfWidth(), clt.HalfWidth());
  EXPECT_NEAR(cheb.HalfWidth(), std::sqrt(1.0 / 0.05), 1e-9);
}

TEST(IntervalTest, InvalidInputsThrow) {
  EXPECT_THROW(CltInterval(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(CltInterval(0, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(CltInterval(0, -1, 0.5), std::invalid_argument);
  EXPECT_THROW(ChebyshevInterval(0, 1, 1.5), std::invalid_argument);
  EXPECT_THROW(ChebyshevInterval(0, -2, 0.5), std::invalid_argument);
}

// Empirical coverage: the CLT interval built from the *analytic* AGMS
// variance should cover the true self-join size in roughly `level` of the
// trials (the averaged estimator is approximately normal).
TEST(CoverageTest, CltIntervalCoversAtNominalRate) {
  const FrequencyVector f = ZipfFrequencies(40, 600, 0.8);
  const double truth = f.F2();
  const JoinStatistics s = ComputeJoinStatistics(f, f);
  const auto stream = f.ToTupleStream();
  constexpr size_t kRows = 64;
  const double variance = AgmsSelfJoinVariance(s) / kRows;

  int covered = 0;
  constexpr int kTrials = 800;
  for (int t = 0; t < kTrials; ++t) {
    SketchParams params;
    params.rows = kRows;
    params.scheme = XiScheme::kCw4;
    params.seed = MixSeed(777, t);
    const double est =
        BuildAgmsSketch(stream, params).EstimateSelfJoin();
    const auto ci = CltInterval(est, variance, 0.95);
    covered += (ci.low <= truth && truth <= ci.high);
  }
  const double rate = static_cast<double>(covered) / kTrials;
  EXPECT_GT(rate, 0.90);
  EXPECT_LE(rate, 1.0);
}

// Chebyshev must cover at least at the nominal rate (it is conservative).
TEST(CoverageTest, ChebyshevIsConservative) {
  const FrequencyVector f = ZipfFrequencies(40, 600, 1.2);
  const double truth = f.F2();
  const JoinStatistics s = ComputeJoinStatistics(f, f);
  const auto stream = f.ToTupleStream();
  constexpr size_t kRows = 32;
  const double variance = AgmsSelfJoinVariance(s) / kRows;

  int covered = 0;
  constexpr int kTrials = 500;
  for (int t = 0; t < kTrials; ++t) {
    SketchParams params;
    params.rows = kRows;
    params.scheme = XiScheme::kCw4;
    params.seed = MixSeed(888, t);
    const double est =
        BuildAgmsSketch(stream, params).EstimateSelfJoin();
    const auto ci = ChebyshevInterval(est, variance, 0.9);
    covered += (ci.low <= truth && truth <= ci.high);
  }
  EXPECT_GT(static_cast<double>(covered) / kTrials, 0.9);
}

}  // namespace
}  // namespace sketchsample
