// Tests for the progressive online-aggregation estimators.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/progressive.h"
#include "src/data/frequency_vector.h"
#include "src/data/tpch_lite.h"
#include "src/data/zipf.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

SketchParams Params(uint64_t seed, size_t buckets = 2048) {
  SketchParams p;
  p.rows = 1;
  p.buckets = buckets;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

std::vector<uint64_t> ShuffledZipf(size_t domain, uint64_t tuples,
                                   double skew, uint64_t seed) {
  auto stream = ZipfFrequencies(domain, tuples, skew).ToTupleStream();
  Xoshiro256 rng(seed);
  Shuffle(stream, rng);
  return stream;
}

TEST(ProgressiveF2Test, ConstructionValidation) {
  EXPECT_THROW(ProgressiveF2Estimator(0, 4, Params(1)),
               std::invalid_argument);
  EXPECT_THROW(ProgressiveF2Estimator(100, 1, Params(1)),
               std::invalid_argument);
}

TEST(ProgressiveF2Test, ReportRequiresWarmup) {
  ProgressiveF2Estimator est(1000, 4, Params(1));
  est.Update(1);
  EXPECT_THROW(est.Report(0.95), std::logic_error);
  EXPECT_FALSE(est.HasConverged(0.1, 0.95));
  for (int i = 0; i < 8; ++i) est.Update(2);
  EXPECT_NO_THROW(est.Report(0.95));
}

TEST(ProgressiveF2Test, EstimateTracksTruthAndIntervalShrinks) {
  const size_t kDomain = 2000;
  const uint64_t kTuples = 40000;
  const auto stream = ShuffledZipf(kDomain, kTuples, 1.0, 3);
  const double truth =
      FrequencyVector::FromStream(stream, kDomain).F2();

  ProgressiveF2Estimator est(kTuples, 8, Params(5, 4096));
  size_t pos = 0;
  for (; pos < kTuples / 20; ++pos) est.Update(stream[pos]);
  const auto early = est.Report(0.95);
  for (; pos < kTuples / 2; ++pos) est.Update(stream[pos]);
  const auto late = est.Report(0.95);

  EXPECT_LT(late.ci.HalfWidth(), early.ci.HalfWidth());
  EXPECT_LT(RelativeError(late.estimate, truth), 0.15);
  EXPECT_NEAR(late.fraction_scanned, 0.5, 1e-9);
  EXPECT_EQ(late.tuples_scanned, kTuples / 2);
}

TEST(ProgressiveF2Test, ConvergenceStoppingRule) {
  const size_t kDomain = 2000;
  const uint64_t kTuples = 40000;
  const auto stream = ShuffledZipf(kDomain, kTuples, 1.0, 7);

  ProgressiveF2Estimator est(kTuples, 8, Params(9, 4096));
  uint64_t stopped_at = 0;
  for (uint64_t i = 0; i < kTuples; ++i) {
    est.Update(stream[i]);
    // Check periodically as an engine would.
    if (i > 100 && i % 500 == 0 && est.HasConverged(0.1, 0.95)) {
      stopped_at = i;
      break;
    }
  }
  ASSERT_GT(stopped_at, 0u) << "never converged";
  EXPECT_LT(stopped_at, kTuples) << "converged only at full scan";

  const double truth =
      FrequencyVector::FromStream(stream, kDomain).F2();
  const auto report = est.Report(0.95);
  // At the stopping point the estimate is within a loose multiple of the
  // requested precision.
  EXPECT_LT(RelativeError(report.estimate, truth), 0.3);
}

TEST(ProgressiveF2Test, CoverageIsAtLeastNominal) {
  // Batch-means intervals are conservative: coverage across independent
  // random scan orders should be >= the nominal level (small slack for MC
  // noise).
  const size_t kDomain = 500;
  const uint64_t kTuples = 10000;
  const FrequencyVector f = ZipfFrequencies(kDomain, kTuples, 1.0);
  const double truth = f.F2();

  int covered = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    auto stream = f.ToTupleStream();
    Xoshiro256 rng(MixSeed(31, t));
    Shuffle(stream, rng);
    ProgressiveF2Estimator est(kTuples, 8, Params(MixSeed(32, t), 2048));
    for (uint64_t i = 0; i < kTuples / 5; ++i) est.Update(stream[i]);
    const auto report = est.Report(0.9);
    covered += (report.ci.low <= truth && truth <= report.ci.high);
  }
  EXPECT_GE(covered, kTrials * 80 / 100);
}

TEST(ProgressiveJoinTest, ConstructionValidation) {
  EXPECT_THROW(ProgressiveJoinEstimator(0, 10, 4, Params(1)),
               std::invalid_argument);
  EXPECT_THROW(ProgressiveJoinEstimator(10, 10, 0, Params(1)),
               std::invalid_argument);
}

TEST(ProgressiveJoinTest, TpchScanConverges) {
  const TpchLiteData data = GenerateTpchLite(0.01, 17);
  const double truth = ExactJoinSize(data.lineitem_freq, data.orders_freq);

  ProgressiveJoinEstimator est(data.lineitem.size(), data.orders.size(), 8,
                               Params(21, 4096));
  // Scan both relations in lockstep proportionally.
  const double ratio = static_cast<double>(data.orders.size()) /
                       static_cast<double>(data.lineitem.size());
  size_t emitted_orders = 0;
  for (size_t i = 0; i < data.lineitem.size() / 4; ++i) {
    est.UpdateF(data.lineitem[i]);
    const size_t target =
        static_cast<size_t>(ratio * static_cast<double>(i + 1));
    while (emitted_orders < target && emitted_orders < data.orders.size()) {
      est.UpdateG(data.orders[emitted_orders++]);
    }
  }
  const auto report = est.Report(0.95);
  EXPECT_LT(RelativeError(report.estimate, truth), 0.2);
  EXPECT_GT(report.ci.HalfWidth(), 0.0);
  EXPECT_NEAR(report.fraction_scanned, 0.25, 0.01);
}

TEST(ProgressiveJoinTest, IntervalShrinksWithScan) {
  const size_t kDomain = 1000;
  const uint64_t kTuples = 20000;
  const auto f = ShuffledZipf(kDomain, kTuples, 0.8, 41);
  const auto g = ShuffledZipf(kDomain, kTuples, 0.8, 42);

  ProgressiveJoinEstimator est(kTuples, kTuples, 6, Params(43, 2048));
  size_t pos = 0;
  for (; pos < kTuples / 10; ++pos) {
    est.UpdateF(f[pos]);
    est.UpdateG(g[pos]);
  }
  const double early = est.Report(0.95).ci.HalfWidth();
  for (; pos < kTuples; ++pos) {
    est.UpdateF(f[pos]);
    est.UpdateG(g[pos]);
  }
  const double late = est.Report(0.95).ci.HalfWidth();
  EXPECT_LT(late, early);
}

}  // namespace
}  // namespace sketchsample
