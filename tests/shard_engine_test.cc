// Tests for the sharded multi-threaded ingest engine
// (src/stream/shard_engine.h). The load-bearing claims:
//
//  - Determinism: the same root seed produces bit-identical merged sketches
//    and estimates at every shard count and chunk size (positional
//    shedding + exact counter merges).
//  - Recovery: kill-and-resume from a shard-section checkpoint is
//    bit-exact, including resumes at a *different* shard count, and with
//    the adaptive controller in the loop (fixed-budget mode).
//  - Fault accounting: per-shard fault injection keeps the global
//    stream.faults.injected counter the exact sum of per-shard counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/sampling/bernoulli.h"
#include "src/sketch/agms.h"
#include "src/sketch/fagms.h"
#include "src/sketch/fastcount.h"
#include "src/sketch/kmv.h"
#include "src/stream/checkpoint.h"
#include "src/stream/faults.h"
#include "src/stream/shard_engine.h"
#include "src/stream/shed_controller.h"
#include "src/stream/source.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

constexpr uint64_t kRootSeed = 42;
constexpr uint64_t kSketchSeed = 33;

std::vector<uint64_t> MakeStream(size_t n, uint64_t seed, uint64_t domain) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng() % domain);
  return values;
}

SketchParams SmallParams() {
  SketchParams params;
  params.rows = 3;
  params.buckets = 128;
  params.seed = kSketchSeed;
  return params;
}

template <typename SketchT>
ShardEngineStats RunEngine(ShardEngine<SketchT>& engine,
                           const std::vector<uint64_t>& values) {
  VectorSource source(values);
  return engine.Run(source);
}

// --- Determinism matrix -------------------------------------------------

// For each sketch family: run the stream through 1, 2, 3, and 8 shards
// (and one deliberately odd chunk size) and demand bit-identical merged
// counters against the shards=1 reference.
template <typename SketchT, typename EqualFn>
void ExpectShardCountInvariance(const SketchT& proto, EqualFn equal) {
  const std::vector<uint64_t> values = MakeStream(50000, 7, 1000);
  ShardEngineOptions base;
  base.shed_p = 0.3;
  base.seed = kRootSeed;
  base.chunk_tuples = 512;

  ShardEngineOptions reference_opts = base;
  reference_opts.shards = 1;
  ShardEngine<SketchT> reference(proto, reference_opts);
  RunEngine(reference, values);

  for (const size_t shards : {2u, 3u, 8u}) {
    ShardEngineOptions opts = base;
    opts.shards = shards;
    ShardEngine<SketchT> engine(proto, opts);
    const ShardEngineStats stats = RunEngine(engine, values);
    EXPECT_EQ(engine.total_seen(), reference.total_seen()) << shards;
    EXPECT_EQ(engine.total_kept(), reference.total_kept()) << shards;
    EXPECT_EQ(stats.merges, shards);
    equal(reference.merged(), engine.merged(), shards);
  }

  // Chunk size must not matter either: position, not batching, decides.
  ShardEngineOptions odd = base;
  odd.shards = 3;
  odd.chunk_tuples = 97;
  ShardEngine<SketchT> engine(proto, odd);
  RunEngine(engine, values);
  EXPECT_EQ(engine.total_kept(), reference.total_kept());
  equal(reference.merged(), engine.merged(), 97u);
}

template <typename SketchT>
void ExpectCountersEqual(const SketchT& a, const SketchT& b, size_t tag) {
  const auto& lhs = a.counters();
  const auto& rhs = b.counters();
  ASSERT_EQ(lhs.size(), rhs.size()) << tag;
  for (size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_EQ(lhs[i], rhs[i]) << "counter " << i << " tag " << tag;
  }
}

TEST(ShardEngineTest, AgmsMergedCountersInvariantAcrossShardCounts) {
  SketchParams params;
  params.rows = 64;
  params.seed = kSketchSeed;
  ExpectShardCountInvariance(AgmsSketch(params),
                             ExpectCountersEqual<AgmsSketch>);
}

TEST(ShardEngineTest, FagmsMergedCountersInvariantAcrossShardCounts) {
  ExpectShardCountInvariance(FagmsSketch(SmallParams()),
                             ExpectCountersEqual<FagmsSketch>);
}

TEST(ShardEngineTest, FastCountMergedCountersInvariantAcrossShardCounts) {
  ExpectShardCountInvariance(FastCountSketch(SmallParams()),
                             ExpectCountersEqual<FastCountSketch>);
}

TEST(ShardEngineTest, KmvMergedMinimaInvariantAcrossShardCounts) {
  ExpectShardCountInvariance(
      KmvSketch(64, kSketchSeed),
      [](const KmvSketch& a, const KmvSketch& b, size_t tag) {
        ASSERT_TRUE(a.minima() == b.minima()) << tag;
        ASSERT_EQ(a.EstimateDistinct(), b.EstimateDistinct()) << tag;
      });
}

// The engine's kept set must be exactly what the positional sampler says:
// a sequential reference applying Keep(i) to every absolute position
// reproduces the merged sketch bit-for-bit.
TEST(ShardEngineTest, MatchesSequentialPositionalReference) {
  const std::vector<uint64_t> values = MakeStream(20000, 11, 500);
  const double p = 0.4;

  FagmsSketch reference(SmallParams());
  const PositionalBernoulliSampler sampler(p, kRootSeed);
  uint64_t reference_kept = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (sampler.Keep(i)) {
      reference.Update(values[i]);
      ++reference_kept;
    }
  }

  ShardEngineOptions opts;
  opts.shards = 4;
  opts.shed_p = p;
  opts.seed = kRootSeed;
  opts.chunk_tuples = 333;
  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()), opts);
  RunEngine(engine, values);

  EXPECT_EQ(engine.total_kept(), reference_kept);
  ExpectCountersEqual(reference, engine.merged(), 0);
}

// --- Checkpoint / recovery ---------------------------------------------

TEST(ShardEngineTest, KillAndResumeAtDifferentShardCountIsBitExact) {
  const std::vector<uint64_t> values = MakeStream(30000, 3, 2000);
  const FagmsSketch proto{SmallParams()};

  ShardEngineOptions opts;
  opts.shards = 3;
  opts.shed_p = 0.5;
  opts.seed = kRootSeed;
  opts.chunk_tuples = 256;

  ShardEngine<FagmsSketch> uninterrupted(proto, opts);
  RunEngine(uninterrupted, values);

  // Kill: stop at 12000 tuples, checkpointing every 4000 (the router caps
  // pulls at checkpoint boundaries, so the last checkpoint lands at
  // exactly 12000).
  LatestCheckpointSink sink;
  ShardEngineOptions kill = opts;
  kill.checkpoint_sink = &sink;
  kill.checkpoint_every = 4000;
  kill.max_tuples = 12000;
  ShardEngine<FagmsSketch> killed(proto, kill);
  const ShardEngineStats kill_stats = RunEngine(killed, values);
  EXPECT_EQ(kill_stats.checkpoints, 3u);
  EXPECT_EQ(sink.source_tuples(), 12000u);

  // Resume in a fresh engine with a different shard count and chunk size.
  for (const size_t shards : {1u, 2u, 8u}) {
    ShardEngineOptions resume_opts = opts;
    resume_opts.shards = shards;
    resume_opts.chunk_tuples = 128;
    ShardEngine<FagmsSketch> resumed(proto, resume_opts);
    VectorSource source(values);
    resumed.Restore(DeserializeCheckpoint(sink.bytes()), source);
    EXPECT_EQ(resumed.total_seen(), 12000u);
    resumed.Run(source);

    EXPECT_EQ(resumed.total_seen(), uninterrupted.total_seen()) << shards;
    EXPECT_EQ(resumed.total_kept(), uninterrupted.total_kept()) << shards;
    ExpectCountersEqual(uninterrupted.merged(), resumed.merged(), shards);
    ASSERT_EQ(resumed.merged().EstimateSelfJoin(),
              uninterrupted.merged().EstimateSelfJoin())
        << shards;
  }
}

// A double kill: resume, checkpoint again mid-resume, resume again. The
// restored base must survive the second snapshot (it rides in shard 0's
// entry), so the final state still covers the whole prefix.
TEST(ShardEngineTest, SecondKillAfterResumeStillCoversWholePrefix) {
  const std::vector<uint64_t> values = MakeStream(24000, 5, 1500);
  const FagmsSketch proto{SmallParams()};

  ShardEngineOptions opts;
  opts.shards = 2;
  opts.shed_p = 0.7;
  opts.seed = kRootSeed;
  opts.chunk_tuples = 200;

  ShardEngine<FagmsSketch> uninterrupted(proto, opts);
  RunEngine(uninterrupted, values);

  LatestCheckpointSink sink;
  ShardEngineOptions kill1 = opts;
  kill1.checkpoint_sink = &sink;
  kill1.checkpoint_every = 4000;
  kill1.max_tuples = 8000;
  ShardEngine<FagmsSketch> first(proto, kill1);
  RunEngine(first, values);

  ShardEngineOptions kill2 = opts;
  kill2.shards = 3;
  kill2.checkpoint_sink = &sink;
  kill2.checkpoint_every = 4000;
  kill2.max_tuples = 8000;  // runs 8000..16000, checkpoints at 12000, 16000
  ShardEngine<FagmsSketch> second(proto, kill2);
  {
    VectorSource source(values);
    second.Restore(DeserializeCheckpoint(sink.bytes()), source);
    second.Run(source);
  }
  EXPECT_EQ(sink.source_tuples(), 16000u);

  ShardEngineOptions resume_opts = opts;
  resume_opts.shards = 4;
  ShardEngine<FagmsSketch> final_engine(proto, resume_opts);
  VectorSource source(values);
  final_engine.Restore(DeserializeCheckpoint(sink.bytes()), source);
  final_engine.Run(source);

  EXPECT_EQ(final_engine.total_seen(), uninterrupted.total_seen());
  EXPECT_EQ(final_engine.total_kept(), uninterrupted.total_kept());
  ExpectCountersEqual(uninterrupted.merged(), final_engine.merged(), 0);
}

// Adaptive mode with the deterministic fixed budget (ring backpressure
// off): the p trajectory is a pure function of the realized counts, which
// are partition-independent — so shard counts must not change the result,
// and kill-and-resume must replay the same control decisions.
TEST(ShardEngineTest, AdaptiveFixedBudgetInvariantAcrossShardCounts) {
  const std::vector<uint64_t> values = MakeStream(40000, 13, 3000);
  const FagmsSketch proto{SmallParams()};

  ShedControllerOptions copts;
  copts.initial_p = 1.0;
  copts.min_p = 0.05;
  copts.capacity_per_window = 2500;
  copts.window_tuples = 4096;

  ShedController reference_controller(copts);
  ShardEngineOptions ref_opts;
  ref_opts.shards = 1;
  ref_opts.seed = kRootSeed;
  ref_opts.chunk_tuples = 512;
  ref_opts.controller = &reference_controller;
  ref_opts.ring_backpressure = false;
  ShardEngine<FagmsSketch> reference(proto, ref_opts);
  const ShardEngineStats ref_stats = RunEngine(reference, values);
  EXPECT_GT(ref_stats.windows, 0u);
  EXPECT_LT(reference.p(), 1.0);  // the budget forces shedding

  for (const size_t shards : {2u, 4u}) {
    ShedController controller(copts);
    ShardEngineOptions opts = ref_opts;
    opts.shards = shards;
    opts.controller = &controller;
    ShardEngine<FagmsSketch> engine(proto, opts);
    const ShardEngineStats stats = RunEngine(engine, values);
    EXPECT_EQ(stats.windows, ref_stats.windows) << shards;
    EXPECT_EQ(engine.p(), reference.p()) << shards;
    EXPECT_EQ(engine.total_kept(), reference.total_kept()) << shards;
    ExpectCountersEqual(reference.merged(), engine.merged(), shards);
  }
}

TEST(ShardEngineTest, AdaptiveKillAndResumeReplaysControlDecisions) {
  const std::vector<uint64_t> values = MakeStream(40000, 17, 3000);
  const FagmsSketch proto{SmallParams()};

  ShedControllerOptions copts;
  copts.capacity_per_window = 2500;
  copts.window_tuples = 4096;

  auto make_opts = [&](ShedController* controller) {
    ShardEngineOptions opts;
    opts.shards = 3;
    opts.seed = kRootSeed;
    opts.chunk_tuples = 512;
    opts.controller = controller;
    opts.ring_backpressure = false;
    return opts;
  };

  ShedController uninterrupted_controller(copts);
  ShardEngine<FagmsSketch> uninterrupted(
      proto, make_opts(&uninterrupted_controller));
  RunEngine(uninterrupted, values);

  LatestCheckpointSink sink;
  ShedController killed_controller(copts);
  ShardEngineOptions kill = make_opts(&killed_controller);
  kill.checkpoint_sink = &sink;
  kill.checkpoint_every = 6000;  // deliberately misaligned with windows
  kill.max_tuples = 18000;
  ShardEngine<FagmsSketch> killed(proto, kill);
  RunEngine(killed, values);
  EXPECT_EQ(sink.source_tuples(), 18000u);

  ShedController resumed_controller(copts);
  ShardEngineOptions resume_opts = make_opts(&resumed_controller);
  resume_opts.shards = 5;
  ShardEngine<FagmsSketch> resumed(proto, resume_opts);
  VectorSource source(values);
  resumed.Restore(DeserializeCheckpoint(sink.bytes()), source);
  EXPECT_EQ(resumed.p(), killed.p());  // controller p reinstated
  resumed.Run(source);

  EXPECT_EQ(resumed.p(), uninterrupted.p());
  EXPECT_EQ(resumed_controller.windows(), uninterrupted_controller.windows());
  EXPECT_EQ(resumed.total_kept(), uninterrupted.total_kept());
  ExpectCountersEqual(uninterrupted.merged(), resumed.merged(), 0);
}

// A second Run on the same engine continues from where the first stopped —
// the same contract as resuming from a checkpoint at that boundary.
TEST(ShardEngineTest, ReRunContinuesWhereTheFirstStopped) {
  const std::vector<uint64_t> values = MakeStream(20000, 19, 1000);
  const FagmsSketch proto{SmallParams()};

  ShardEngineOptions opts;
  opts.shards = 2;
  opts.shed_p = 0.6;
  opts.seed = kRootSeed;
  ShardEngine<FagmsSketch> reference(proto, opts);
  RunEngine(reference, values);

  ShardEngineOptions stop_opts = opts;
  stop_opts.max_tuples = 7000;
  ShardEngine<FagmsSketch> engine(proto, stop_opts);
  VectorSource source(values);
  const ShardEngineStats first = engine.Run(source);
  EXPECT_EQ(first.tuples, 7000u);
  EXPECT_FALSE(first.ended);
  // max_tuples caps each run, so pumping the rest takes two more runs
  // (7000 + 7000 + 6000 = 20000).
  const ShardEngineStats second = engine.Run(source);
  EXPECT_EQ(second.tuples, 7000u);
  const ShardEngineStats third = engine.Run(source);
  EXPECT_TRUE(third.ended);

  EXPECT_EQ(engine.total_seen(), reference.total_seen());
  EXPECT_EQ(engine.total_kept(), reference.total_kept());
  ExpectCountersEqual(reference.merged(), engine.merged(), 0);
}

// --- Restore validation -------------------------------------------------

TEST(ShardEngineTest, RestoreRejectsCheckpointWithoutShardSection) {
  PipelineCheckpoint cp;
  cp.source_tuples = 10;
  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()),
                                  ShardEngineOptions{});
  VectorSource source(MakeStream(100, 1, 10));
  EXPECT_THROW(engine.Restore(cp, source), CheckpointError);
}

TEST(ShardEngineTest, RestoreRejectsIncompatibleShardSketch) {
  SketchParams other = SmallParams();
  other.seed = kSketchSeed + 1;  // different hash seed: incompatible
  PipelineCheckpoint cp;
  cp.source_tuples = 1;
  cp.has_shards = true;
  ShardCheckpointState shard;
  shard.seen = 1;
  shard.kept = 1;
  shard.sketch = SerializeSketch(FagmsSketch(other));
  cp.shards.push_back(shard);

  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()),
                                  ShardEngineOptions{});
  VectorSource source(MakeStream(100, 1, 10));
  EXPECT_THROW(engine.Restore(cp, source), CheckpointError);
  EXPECT_EQ(engine.total_seen(), 0u);  // failed restore must not half-apply
}

TEST(ShardEngineTest, RestoreRejectsShardCountsNotCoveringPosition) {
  PipelineCheckpoint cp;
  cp.source_tuples = 100;
  cp.has_shards = true;
  ShardCheckpointState shard;
  shard.seen = 60;  // 40 tuples unaccounted for
  cp.shards.push_back(shard);

  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()),
                                  ShardEngineOptions{});
  VectorSource source(MakeStream(200, 1, 10));
  EXPECT_THROW(engine.Restore(cp, source), CheckpointError);
}

TEST(ShardEngineTest, RestoreRejectsSourceShorterThanCheckpoint) {
  const std::vector<uint64_t> values = MakeStream(5000, 23, 100);
  LatestCheckpointSink sink;
  ShardEngineOptions opts;
  opts.shards = 2;
  opts.seed = kRootSeed;
  opts.checkpoint_sink = &sink;
  opts.checkpoint_every = 2000;
  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()), opts);
  RunEngine(engine, values);

  ShardEngine<FagmsSketch> resumed(FagmsSketch(SmallParams()),
                                   ShardEngineOptions{});
  VectorSource short_source(MakeStream(1000, 23, 100));
  EXPECT_THROW(
      resumed.Restore(DeserializeCheckpoint(sink.bytes()), short_source),
      CheckpointError);
}

// --- Fault accounting ---------------------------------------------------

// Each worker owns an independent fault stream and a per-shard counter;
// the global stream.faults.injected counter must stay the exact sum of the
// per-shard ones, and both must match the operators' own counts.
TEST(ShardEngineTest, PerShardFaultCountsSumToGlobalCounter) {
  const std::vector<uint64_t> values = MakeStream(30000, 29, 1000);

  FaultProfile profile;
  profile.corrupt_prob = 0.01;
  profile.duplicate_prob = 0.01;
  profile.reorder_prob = 0.005;

  metrics::SetEnabled(true);
  metrics::Registry& registry = metrics::Registry::Global();
  const uint64_t global_before =
      registry.GetCounter("stream.faults.injected").Get();
  const size_t shards = 4;
  std::vector<uint64_t> shard_before;
  for (size_t s = 0; s < shards; ++s) {
    shard_before.push_back(
        registry.GetCounter("stream.faults.injected.shard" + std::to_string(s))
            .Get());
  }

  ShardEngineOptions opts;
  opts.shards = shards;
  opts.seed = kRootSeed;
  opts.fault_profile = &profile;
  opts.fault_seed = 77;
  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()), opts);
  const ShardEngineStats stats = RunEngine(engine, values);
  metrics::SetEnabled(false);

  ASSERT_EQ(stats.shard_faults.size(), shards);
  uint64_t fault_sum = 0;
  uint64_t nonzero_shards = 0;
  for (size_t s = 0; s < shards; ++s) {
    const uint64_t shard_delta =
        registry.GetCounter("stream.faults.injected.shard" + std::to_string(s))
            .Get() -
        shard_before[s];
    EXPECT_EQ(shard_delta, stats.shard_faults[s]) << "shard " << s;
    fault_sum += stats.shard_faults[s];
    if (stats.shard_faults[s] > 0) ++nonzero_shards;
  }
  EXPECT_GT(fault_sum, 0u);
  EXPECT_GT(nonzero_shards, 1u);  // faults really are spread across shards
  const uint64_t global_delta =
      registry.GetCounter("stream.faults.injected").Get() - global_before;
  EXPECT_EQ(global_delta, fault_sum);
}

// --- Stats accounting ---------------------------------------------------

TEST(ShardEngineTest, PerShardStatsSumToTotals) {
  const std::vector<uint64_t> values = MakeStream(10000, 31, 500);
  ShardEngineOptions opts;
  opts.shards = 3;
  opts.shed_p = 0.5;
  opts.seed = kRootSeed;
  opts.chunk_tuples = 100;
  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()), opts);
  const ShardEngineStats stats = RunEngine(engine, values);

  EXPECT_TRUE(stats.ended);
  EXPECT_EQ(stats.tuples, 10000u);
  ASSERT_EQ(stats.shard_tuples.size(), 3u);
  ASSERT_EQ(stats.shard_kept.size(), 3u);
  uint64_t tuple_sum = 0;
  uint64_t kept_sum = 0;
  for (size_t s = 0; s < 3; ++s) {
    tuple_sum += stats.shard_tuples[s];
    kept_sum += stats.shard_kept[s];
    EXPECT_GT(stats.shard_tuples[s], 0u) << s;  // round-robin reaches all
  }
  EXPECT_EQ(tuple_sum, stats.tuples);
  EXPECT_EQ(kept_sum, stats.kept);
  EXPECT_EQ(engine.total_kept(), stats.kept);
  EXPECT_EQ(stats.chunks, 100u);
}

// --- Snapshot hook + auxiliary distinct counter -------------------------

class CollectingHook final : public ShardSnapshotHook<FagmsSketch> {
 public:
  void Publish(ShardEngineSnapshot<FagmsSketch> snapshot) override {
    snapshots.push_back(std::move(snapshot));
  }
  std::vector<ShardEngineSnapshot<FagmsSketch>> snapshots;
};

TEST(ShardEngineSnapshotTest, HookPublishesAtPhaseLockedBoundaries) {
  const std::vector<uint64_t> values = MakeStream(10000, 7, 500);
  ShardEngineOptions opts;
  opts.shards = 2;
  opts.shed_p = 0.4;
  opts.seed = kRootSeed;
  opts.chunk_tuples = 512;
  opts.distinct_k = 32;
  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()), opts);
  CollectingHook hook;
  engine.SetSnapshotHook(&hook, 2048);
  const ShardEngineStats stats = RunEngine(engine, values);

  ASSERT_TRUE(stats.ended);
  // Boundaries are phase-locked to absolute offsets: every multiple of
  // 2048, plus the final state when the run stops.
  ASSERT_EQ(hook.snapshots.size(), 5u);
  EXPECT_EQ(stats.snapshots, 5u);
  const uint64_t expected_positions[] = {2048, 4096, 6144, 8192, 10000};
  uint64_t last_kept = 0;
  for (size_t i = 0; i < hook.snapshots.size(); ++i) {
    const ShardEngineSnapshot<FagmsSketch>& snap = hook.snapshots[i];
    EXPECT_EQ(snap.position, expected_positions[i]) << i;
    EXPECT_EQ(snap.sequence, i + 1) << i;
    EXPECT_LE(snap.kept, snap.position) << i;
    EXPECT_GE(snap.kept, last_kept) << i;
    last_kept = snap.kept;
    EXPECT_DOUBLE_EQ(snap.p, 0.4) << i;
    ASSERT_TRUE(snap.distinct.has_value()) << i;
  }
  // The final snapshot is exactly the engine's merged end state.
  const ShardEngineSnapshot<FagmsSketch>& last = hook.snapshots.back();
  EXPECT_EQ(last.kept, engine.total_kept());
  EXPECT_EQ(SerializeSketch(last.sketch), SerializeSketch(engine.merged()));
  ASSERT_TRUE(engine.distinct().has_value());
  EXPECT_EQ(SerializeSketch(*last.distinct),
            SerializeSketch(*engine.distinct()));
}

TEST(ShardEngineSnapshotTest, SnapshotsAreBitExactAcrossShardCounts) {
  const std::vector<uint64_t> values = MakeStream(20000, 13, 1000);
  CollectingHook hooks[2];
  const size_t shard_counts[2] = {1, 3};
  for (int run = 0; run < 2; ++run) {
    ShardEngineOptions opts;
    opts.shards = shard_counts[run];
    opts.shed_p = 0.4;
    opts.seed = kRootSeed;
    opts.chunk_tuples = 512;
    opts.distinct_k = 64;
    ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()), opts);
    engine.SetSnapshotHook(&hooks[run], 4096);
    ASSERT_TRUE(RunEngine(engine, values).ended);
  }
  ASSERT_EQ(hooks[0].snapshots.size(), hooks[1].snapshots.size());
  for (size_t i = 0; i < hooks[0].snapshots.size(); ++i) {
    const auto& a = hooks[0].snapshots[i];
    const auto& b = hooks[1].snapshots[i];
    EXPECT_EQ(a.position, b.position) << i;
    EXPECT_EQ(a.kept, b.kept) << i;
    EXPECT_EQ(a.sequence, b.sequence) << i;
    // The published sketch and distinct counter — not just the estimates —
    // must be identical at every boundary, at any shard count.
    EXPECT_EQ(SerializeSketch(a.sketch), SerializeSketch(b.sketch)) << i;
    ASSERT_TRUE(a.distinct.has_value());
    ASSERT_TRUE(b.distinct.has_value());
    EXPECT_EQ(SerializeSketch(*a.distinct), SerializeSketch(*b.distinct))
        << i;
  }
}

TEST(ShardEngineTest, DistinctCounterMatchesDirectKmvOverKeptStream) {
  // With shed_p = 1 every tuple survives, so the engine's distinct counter
  // must equal a KMV built directly over the whole stream with the derived
  // seed — at any shard count.
  const std::vector<uint64_t> values = MakeStream(30000, 17, 2000);
  KmvSketch direct(64, ShardDistinctSeed(kRootSeed));
  for (uint64_t v : values) direct.Update(v);

  for (size_t shards : {size_t{1}, size_t{4}}) {
    ShardEngineOptions opts;
    opts.shards = shards;
    opts.shed_p = 1.0;
    opts.seed = kRootSeed;
    opts.chunk_tuples = 512;
    opts.distinct_k = 64;
    ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()), opts);
    ASSERT_TRUE(RunEngine(engine, values).ended);
    ASSERT_TRUE(engine.distinct().has_value()) << shards;
    EXPECT_EQ(SerializeSketch(*engine.distinct()), SerializeSketch(direct))
        << shards;
    EXPECT_DOUBLE_EQ(engine.distinct()->EstimateDistinct(),
                     direct.EstimateDistinct())
        << shards;
  }
}

TEST(ShardEngineTest, RestoreRequiresDistinctBlobsWhenEnabled) {
  // A checkpoint written without distinct state cannot restore into an
  // engine that promises distinct answers — silent loss of the counter
  // would break the service's bit-exactness contract.
  PipelineCheckpoint cp;
  cp.source_tuples = 10;
  cp.has_shards = true;
  ShardCheckpointState shard;
  shard.seen = 10;
  shard.kept = 10;
  shard.sketch = SerializeSketch(FagmsSketch(SmallParams()));
  cp.shards.push_back(shard);

  ShardEngineOptions opts;
  opts.distinct_k = 32;
  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()), opts);
  VectorSource source(MakeStream(100, 1, 10));
  EXPECT_THROW(engine.Restore(cp, source), CheckpointError);
  EXPECT_EQ(engine.total_seen(), 0u);
}

TEST(ShardEngineTest, RestoreRejectsIncompatibleDistinctBlob) {
  // Same shape, different root seed → different derived KMV hash seed; the
  // blob must be rejected, not merged into a silently-wrong union.
  ShardEngineOptions writer_opts;
  writer_opts.distinct_k = 32;
  writer_opts.seed = kRootSeed + 1;
  KmvSketch foreign(32, ShardDistinctSeed(writer_opts.seed));
  foreign.Update(1);

  PipelineCheckpoint cp;
  cp.source_tuples = 1;
  cp.has_shards = true;
  cp.has_shard_distinct = true;
  ShardCheckpointState shard;
  shard.seen = 1;
  shard.kept = 1;
  shard.sketch = SerializeSketch(FagmsSketch(SmallParams()));
  shard.distinct = SerializeSketch(foreign);
  cp.shards.push_back(shard);

  ShardEngineOptions opts;
  opts.distinct_k = 32;
  opts.seed = kRootSeed;
  ShardEngine<FagmsSketch> engine(FagmsSketch(SmallParams()), opts);
  VectorSource source(MakeStream(100, 1, 10));
  EXPECT_THROW(engine.Restore(cp, source), CheckpointError);
}

}  // namespace
}  // namespace sketchsample
