// Tests for the util/metrics counter/timer registry and its hot-path hook
// macros, including the disabled-by-default contract the instrumented
// sketch/sampling paths rely on.
#include "src/util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/sketch/fagms.h"
#include "src/sketch/sketch.h"

namespace sketchsample {
namespace metrics {
namespace {

// The registry is process-global; every test restores the disabled default
// and zeroed state so ordering does not matter.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    Registry::Global().ResetAll();
  }
  void TearDown() override {
    SetEnabled(false);
    Registry::Global().ResetAll();
  }
};

TEST_F(MetricsTest, DisabledByDefault) { EXPECT_FALSE(Enabled()); }

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  Counter& c = Registry::Global().GetCounter("test.counter");
  EXPECT_EQ(c.Get(), 0u);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.Get(), 7u);
  c.Reset();
  EXPECT_EQ(c.Get(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsStableReferences) {
  Counter& a = Registry::Global().GetCounter("test.stable");
  Counter& b = Registry::Global().GetCounter("test.stable");
  EXPECT_EQ(&a, &b);
  // Creating other metrics must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    Registry::Global().GetCounter("test.other." + std::to_string(i));
  }
  EXPECT_EQ(&a, &Registry::Global().GetCounter("test.stable"));
}

TEST_F(MetricsTest, MacroIsNoOpWhenDisabled) {
  SetEnabled(false);
  for (int i = 0; i < 10; ++i) SKETCHSAMPLE_METRIC_INC("test.macro.disabled");
  // The counter may not even exist; if it does, it must be zero.
  EXPECT_EQ(Registry::Global().GetCounter("test.macro.disabled").Get(), 0u);
}

TEST_F(MetricsTest, MacroCountsWhenEnabled) {
  SetEnabled(true);
  for (int i = 0; i < 10; ++i) SKETCHSAMPLE_METRIC_INC("test.macro.enabled");
  SKETCHSAMPLE_METRIC_ADD("test.macro.enabled", 5);
  EXPECT_EQ(Registry::Global().GetCounter("test.macro.enabled").Get(), 15u);
}

TEST_F(MetricsTest, MacroRespectsRuntimeToggle) {
  SetEnabled(true);
  SKETCHSAMPLE_METRIC_INC("test.macro.toggle");
  SetEnabled(false);
  SKETCHSAMPLE_METRIC_INC("test.macro.toggle");
  SetEnabled(true);
  SKETCHSAMPLE_METRIC_INC("test.macro.toggle");
  EXPECT_EQ(Registry::Global().GetCounter("test.macro.toggle").Get(), 2u);
}

TEST_F(MetricsTest, SketchUpdateHookCountsFagmsUpdates) {
  SketchParams params;
  params.rows = 2;
  params.buckets = 64;
  params.scheme = XiScheme::kEh3;
  params.seed = 1;
  FagmsSketch sketch(params);

  SetEnabled(true);
  Registry::Global().ResetAll();
  for (uint64_t k = 0; k < 123; ++k) sketch.Update(k);
  EXPECT_EQ(Registry::Global().GetCounter("sketch.fagms.updates").Get(), 123u);

  // And the hook goes quiet again once disabled.
  SetEnabled(false);
  for (uint64_t k = 0; k < 50; ++k) sketch.Update(k);
  EXPECT_EQ(Registry::Global().GetCounter("sketch.fagms.updates").Get(), 123u);
}

TEST_F(MetricsTest, TimerRecordsCountTotalAndQuantiles) {
  TimerStat& t = Registry::Global().GetTimer("test.timer");
  for (int i = 1; i <= 100; ++i) t.Record(static_cast<double>(i));
  EXPECT_EQ(t.Count(), 100u);
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 5050.0);
  EXPECT_DOUBLE_EQ(t.MeanSeconds(), 50.5);
  EXPECT_NEAR(t.QuantileSeconds(0.5), 50.5, 1e-9);
  EXPECT_NEAR(t.QuantileSeconds(0.9), 90.1, 1e-9);
  t.Reset();
  EXPECT_EQ(t.Count(), 0u);
}

TEST_F(MetricsTest, ScopedTimerRecordsOnlyWhenEnabled) {
  SetEnabled(false);
  { SKETCHSAMPLE_METRIC_SCOPED_TIMER("test.scoped"); }
  EXPECT_EQ(Registry::Global().GetTimer("test.scoped").Count(), 0u);

  SetEnabled(true);
  { SKETCHSAMPLE_METRIC_SCOPED_TIMER("test.scoped"); }
  { SKETCHSAMPLE_METRIC_SCOPED_TIMER("test.scoped"); }
  EXPECT_EQ(Registry::Global().GetTimer("test.scoped").Count(), 2u);
  EXPECT_GE(Registry::Global().GetTimer("test.scoped").TotalSeconds(), 0.0);
}

TEST_F(MetricsTest, CountersAreThreadSafe) {
  SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIncrements; ++i) {
        SKETCHSAMPLE_METRIC_INC("test.threads");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(Registry::Global().GetCounter("test.threads").Get(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST_F(MetricsTest, SnapshotAndJsonExposeAllMetrics) {
  SetEnabled(true);
  Registry::Global().GetCounter("test.snap.a").Add(7);
  Registry::Global().GetTimer("test.snap.t").Record(0.25);

  bool found_counter = false;
  for (const auto& snap : Registry::Global().Counters()) {
    if (snap.name == "test.snap.a") {
      found_counter = true;
      EXPECT_EQ(snap.value, 7u);
    }
  }
  EXPECT_TRUE(found_counter);

  bool found_timer = false;
  for (const auto& snap : Registry::Global().Timers()) {
    if (snap.name == "test.snap.t") {
      found_timer = true;
      EXPECT_EQ(snap.count, 1u);
      EXPECT_DOUBLE_EQ(snap.total_seconds, 0.25);
    }
  }
  EXPECT_TRUE(found_timer);

  const JsonValue json = Registry::Global().ToJson();
  const JsonValue* counters = json.Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetNumber("test.snap.a"), 7.0);
  const JsonValue* timers = json.Get("timers");
  ASSERT_NE(timers, nullptr);
  const JsonValue* t = timers->Get("test.snap.t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->GetNumber("count"), 1.0);
}

}  // namespace
}  // namespace metrics
}  // namespace sketchsample
