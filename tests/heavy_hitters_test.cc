// Tests for Count-Sketch heavy-hitter extraction.
#include <gtest/gtest.h>

#include <set>

#include "src/data/zipf.h"
#include "src/sampling/bernoulli.h"
#include "src/sketch/heavy_hitters.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

SketchParams Params(uint64_t seed) {
  SketchParams p;
  p.rows = 5;
  p.buckets = 1024;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

TEST(HeavyHittersTest, FindsPlantedHeavyKeys) {
  FagmsSketch sketch(Params(1));
  // Plant three heavy keys in a sea of light ones.
  for (int i = 0; i < 5000; ++i) sketch.Update(10);
  for (int i = 0; i < 3000; ++i) sketch.Update(20);
  for (int i = 0; i < 2000; ++i) sketch.Update(30);
  Xoshiro256 rng(2);
  for (int i = 0; i < 4000; ++i) sketch.Update(100 + rng.NextBounded(900));

  const auto hitters = FindHeavyHitters(sketch, 1000, 1000.0);
  std::set<uint64_t> keys;
  for (const auto& h : hitters) keys.insert(h.key);
  EXPECT_TRUE(keys.count(10));
  EXPECT_TRUE(keys.count(20));
  EXPECT_TRUE(keys.count(30));
  // Nothing light should cross a 1000-frequency threshold: the light keys
  // have expected frequency ~4.4 each and Count-Sketch noise is ~sqrt(F2/b).
  EXPECT_LE(hitters.size(), 5u);
  // Sorted descending; the top hit is the heaviest planted key.
  EXPECT_EQ(hitters.front().key, 10u);
  EXPECT_NEAR(hitters.front().estimated_frequency, 5000.0, 300.0);
}

TEST(HeavyHittersTest, TopKOrdersByFrequency) {
  FagmsSketch sketch(Params(3));
  for (int i = 0; i < 900; ++i) sketch.Update(1);
  for (int i = 0; i < 600; ++i) sketch.Update(2);
  for (int i = 0; i < 300; ++i) sketch.Update(3);
  const auto top = TopKFrequent(sketch, 100, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 2u);
  EXPECT_GT(top[0].estimated_frequency, top[1].estimated_frequency);
}

TEST(HeavyHittersTest, TopKClampsToDomain) {
  FagmsSketch sketch(Params(4));
  sketch.Update(0);
  EXPECT_EQ(TopKFrequent(sketch, 3, 10).size(), 3u);
}

TEST(HeavyHittersTest, ScaleValidated) {
  FagmsSketch sketch(Params(5));
  EXPECT_THROW(FindHeavyHitters(sketch, 10, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(TopKFrequent(sketch, 10, 1, -1.0), std::invalid_argument);
}

TEST(HeavyHittersTest, WorksThroughBernoulliShedding) {
  // Heavy hitters survive load shedding: sketch a 10% sample, scale
  // estimates by 1/p, and the planted key is recovered at its full-stream
  // frequency.
  constexpr double kP = 0.1;
  FagmsSketch sketch(Params(6));
  BernoulliSampler sampler(kP, 7);
  Xoshiro256 rng(8);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = (i % 4 == 0) ? 5 : 100 + rng.NextBounded(900);
    if (sampler.Keep()) sketch.Update(key);
  }
  const auto top = TopKFrequent(sketch, 1000, 1, 1.0 / kP);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 5u);
  EXPECT_NEAR(top[0].estimated_frequency, 5000.0, 1000.0);
}

TEST(HeavyHittersTest, EmptySketchYieldsNothingAboveThreshold) {
  FagmsSketch sketch(Params(9));
  EXPECT_TRUE(FindHeavyHitters(sketch, 100, 1.0).empty());
}

}  // namespace
}  // namespace sketchsample
