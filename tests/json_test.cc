// Tests for the minimal JSON value type backing bench reports and the
// regression gate.
#include "src/util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace sketchsample {
namespace {

TEST(JsonTest, DefaultIsNull) {
  JsonValue v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.Dump(), "null");
}

TEST(JsonTest, ScalarConstructionAndDump) {
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Number(3.0).Dump(), "3");
  EXPECT_EQ(JsonValue::Number(-0.5).Dump(), "-0.5");
  EXPECT_EQ(JsonValue::String("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, StringEscapesAreDumpedAndReparsed) {
  const std::string raw = "line\nquote\"back\\slash\ttab\x01";
  const JsonValue v = JsonValue::String(raw);
  const std::string dumped = v.Dump();
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), raw);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Number(1));
  obj.Set("apple", JsonValue::Number(2));
  obj.Set("mango", JsonValue::Number(3));
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  // Overwrite keeps position.
  obj.Set("apple", JsonValue::Number(9));
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(JsonTest, GetAndTypedLookups) {
  JsonValue obj = JsonValue::Object();
  obj.Set("n", JsonValue::Number(2.5));
  obj.Set("s", JsonValue::String("x"));
  ASSERT_NE(obj.Get("n"), nullptr);
  EXPECT_EQ(obj.Get("missing"), nullptr);
  EXPECT_EQ(obj.GetNumber("n"), 2.5);
  EXPECT_EQ(obj.GetString("s"), "x");
  EXPECT_FALSE(obj.GetNumber("s").has_value());   // wrong type
  EXPECT_FALSE(obj.GetString("missing").has_value());
}

TEST(JsonTest, TypedAccessorsThrowOnMismatch) {
  const JsonValue v = JsonValue::Number(1);
  EXPECT_THROW(v.AsString(), std::logic_error);
  EXPECT_THROW(v.AsArray(), std::logic_error);
  EXPECT_THROW(v.AsObject(), std::logic_error);
  EXPECT_THROW(JsonValue::String("x").AsNumber(), std::logic_error);
}

TEST(JsonTest, ParseRoundTripsNestedDocument) {
  const std::string text =
      "{\"name\":\"bench\",\"points\":[{\"labels\":{\"skew\":\"0.8\"},"
      "\"metrics\":{\"err\":0.0125,\"n\":100}}],\"flag\":true,\"none\":null}";
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->GetString("name"), "bench");
  const JsonValue* points = parsed->Get("points");
  ASSERT_NE(points, nullptr);
  ASSERT_TRUE(points->is_array());
  ASSERT_EQ(points->AsArray().size(), 1u);
  const JsonValue& point = points->AsArray()[0];
  EXPECT_EQ(point.Get("labels")->GetString("skew"), "0.8");
  EXPECT_DOUBLE_EQ(*point.Get("metrics")->GetNumber("err"), 0.0125);
  EXPECT_TRUE(parsed->Get("flag")->AsBool());
  EXPECT_TRUE(parsed->Get("none")->is_null());
  // Dump → parse again must agree.
  auto reparsed = JsonValue::Parse(parsed->Dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->Dump(), parsed->Dump());
}

TEST(JsonTest, ParseAcceptsNumberForms) {
  for (const char* text : {"0", "-0", "12345", "-7.25", "1e3", "1.5E-2",
                           "2.25e+1"}) {
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_TRUE(parsed->is_number()) << text;
  }
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1.5E-2")->AsNumber(), 0.015);
}

TEST(JsonTest, NumbersSurviveRoundTripExactly) {
  for (double d : {0.1, 1.0 / 3.0, 1e-300, 123456789.123456789, -2.5e17}) {
    auto parsed = JsonValue::Parse(JsonValue::Number(d).Dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->AsNumber(), d);
  }
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* text :
       {"", "   ", "{", "}", "[1,", "[1,]", "{\"a\":}", "{\"a\" 1}",
        "{\"a\":1,}", "\"unterminated", "tru", "nul", "01", "+1", "1.",
        ".5", "NaN", "Infinity", "{'a':1}", "\"bad\\x\"", "\"\\u12\"",
        "[1] trailing", "{} {}", "1 2"}) {
    EXPECT_FALSE(JsonValue::Parse(text).has_value()) << "accepted: " << text;
  }
}

TEST(JsonTest, ParseRejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += '[';
  for (int i = 0; i < 500; ++i) deep += ']';
  EXPECT_FALSE(JsonValue::Parse(deep).has_value());
  // But reasonable nesting is fine.
  std::string ok = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(JsonValue::Parse(ok).has_value());
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  auto parsed = JsonValue::Parse("\"\\u00e9\\u4e2d\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), "\xc3\xa9\xe4\xb8\xad");
}

TEST(JsonTest, PrettyPrintIsStable) {
  JsonValue obj = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Number(1));
  arr.Append(JsonValue::Number(2));
  obj.Set("a", std::move(arr));
  const std::string pretty = obj.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto parsed = JsonValue::Parse(pretty);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Dump(), obj.Dump());
}

}  // namespace
}  // namespace sketchsample
