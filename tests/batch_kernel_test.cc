// Tests for the batched update kernels: SignBatch/BucketBatch parity with
// their scalar counterparts, bit-exactness of UpdateBatch on every sketch
// family, the chunked stream layer, and the memory/metrics accounting that
// rides along with the batch paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/prng/hash.h"
#include "src/prng/materialized.h"
#include "src/prng/xi.h"
#include "src/sketch/agms.h"
#include "src/sketch/countmin.h"
#include "src/sketch/fagms.h"
#include "src/sketch/fastcount.h"
#include "src/sketch/sketch.h"
#include "src/stream/operators.h"
#include "src/stream/parallel.h"
#include "src/stream/pipeline.h"
#include "src/stream/source.h"
#include "src/util/metrics.h"

namespace sketchsample {
namespace {

constexpr XiScheme kAllSchemes[] = {
    XiScheme::kBch3, XiScheme::kEh3,  XiScheme::kBch5,
    XiScheme::kCw2,  XiScheme::kCw4,  XiScheme::kTabulation,
};

// A key set that exercises partial final blocks (5000 = 19 * 256 + 136) and,
// when materialization is capped below the domain, the out-of-table
// fallback.
std::vector<uint64_t> TestKeys(size_t count, size_t domain, uint64_t seed) {
  ZipfSource source(domain, 1.0, count, seed);
  std::vector<uint64_t> keys;
  keys.reserve(count);
  while (auto v = source.Next()) keys.push_back(*v);
  return keys;
}

// ---------------------------------------------------------------------------
// prng layer: batch kernels agree with scalar evaluation.

TEST(SignBatchTest, MatchesScalarForAllSchemes) {
  std::vector<uint64_t> keys = TestKeys(1000, 1 << 20, 7);
  keys.push_back(0);
  keys.push_back(~0ull);  // out of Mersenne range: exercises Mod61 folding
  keys.push_back((1ull << 61) - 1);
  std::vector<int8_t> out(keys.size());
  for (XiScheme scheme : kAllSchemes) {
    const auto xi = MakeXiFamily(scheme, 12345);
    xi->SignBatch(keys.data(), keys.size(), out.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(static_cast<int>(out[i]), xi->Sign(keys[i]))
          << XiSchemeName(scheme) << " key " << keys[i];
    }
  }
}

TEST(SignBatchTest, MaterializedMatchesScalarIncludingFallback) {
  constexpr size_t kDomain = 512;
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 2 * kDomain; ++k) keys.push_back(k);  // half out
  std::vector<int8_t> out(keys.size());
  for (XiScheme scheme : kAllSchemes) {
    const auto xi = MakeMaterializedXiFamily(scheme, 99, kDomain);
    const auto base = MakeXiFamily(scheme, 99);
    xi->SignBatch(keys.data(), keys.size(), out.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(static_cast<int>(out[i]), base->Sign(keys[i]))
          << XiSchemeName(scheme) << " key " << keys[i];
    }
  }
}

TEST(BucketBatchTest, MatchesScalarBucket) {
  const std::vector<uint64_t> keys = TestKeys(1000, 1 << 20, 3);
  std::vector<uint64_t> out(keys.size());
  for (uint64_t buckets : {1ull, 2ull, 5000ull, 65537ull}) {
    const PairwiseHash hash(4242, buckets);
    hash.BucketBatch(keys.data(), keys.size(), out.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(out[i], hash.Bucket(keys[i])) << "key " << keys[i];
    }
  }
}

// ---------------------------------------------------------------------------
// sketch layer: UpdateBatch is bit-identical to scalar Update.

template <typename SketchT>
void ExpectBatchMatchesScalar(const SketchParams& params,
                              const std::vector<uint64_t>& keys,
                              double weight) {
  SketchT scalar(params);
  SketchT batch(params);
  for (uint64_t key : keys) scalar.Update(key, weight);
  batch.UpdateBatch(keys.data(), keys.size(), weight);
  EXPECT_EQ(scalar.counters(), batch.counters());
}

TEST(UpdateBatchTest, BitExactAcrossSchemesAndWeights) {
  const std::vector<uint64_t> keys = TestKeys(5000, 6000, 17);
  for (XiScheme scheme : kAllSchemes) {
    for (size_t materialize : {size_t{0}, size_t{4096}}) {
      for (double weight : {1.0, -3.0, 0.5}) {
        SketchParams params;
        params.rows = 3;
        params.buckets = 64;
        params.scheme = scheme;
        params.seed = 23;
        params.materialize_domain = materialize;  // < domain: fallback keys
        ExpectBatchMatchesScalar<AgmsSketch>(params, keys, weight);
        ExpectBatchMatchesScalar<FagmsSketch>(params, keys, weight);
      }
    }
  }
}

// The fused CW4 kernel special-cases a single-bucket row and the benchmark
// configuration (5000 buckets) takes the magic-modulo scatter path; pin both
// to scalar bit-exactness explicitly.
TEST(UpdateBatchTest, BitExactForFusedCw4EdgeBucketCounts) {
  const std::vector<uint64_t> keys = TestKeys(5000, 100000, 41);
  for (uint64_t buckets : {1ull, 2ull, 5000ull}) {
    SketchParams params;
    params.rows = 2;
    params.buckets = buckets;
    params.scheme = XiScheme::kCw4;
    params.seed = 57;
    ExpectBatchMatchesScalar<FagmsSketch>(params, keys, 1.0);
    ExpectBatchMatchesScalar<FagmsSketch>(params, keys, -2.5);
  }
}

TEST(UpdateBatchTest, BitExactForHashOnlySketches) {
  const std::vector<uint64_t> keys = TestKeys(5000, 6000, 29);
  SketchParams params;
  params.rows = 3;
  params.buckets = 64;
  params.seed = 31;
  for (double weight : {1.0, -3.0, 0.5}) {
    ExpectBatchMatchesScalar<CountMinSketch>(params, keys, weight);
    ExpectBatchMatchesScalar<FastCountSketch>(params, keys, weight);
  }
}

TEST(UpdateBatchTest, EmptyBatchIsANoop) {
  SketchParams params;
  params.rows = 2;
  params.buckets = 16;
  FagmsSketch sketch(params);
  const auto before = sketch.counters();
  sketch.UpdateBatch(nullptr, 0);
  EXPECT_EQ(sketch.counters(), before);
}

TEST(UpdateBatchTest, MixedScalarAndBatchUpdatesCompose) {
  const std::vector<uint64_t> keys = TestKeys(700, 2000, 41);
  SketchParams params;
  params.rows = 2;
  params.buckets = 32;
  params.scheme = XiScheme::kCw4;
  FagmsSketch scalar(params);
  FagmsSketch mixed(params);
  for (uint64_t key : keys) scalar.Update(key);
  mixed.Update(keys[0]);
  mixed.UpdateBatch(keys.data() + 1, keys.size() - 2);
  mixed.Update(keys.back());
  EXPECT_EQ(scalar.counters(), mixed.counters());
}

TEST(ParallelBuildTest, MatchesSerialScalarBuildWithCw4) {
  const std::vector<uint64_t> stream = TestKeys(10000, 5000, 53);
  SketchParams params;
  params.rows = 3;
  params.buckets = 128;
  params.scheme = XiScheme::kCw4;
  params.seed = 59;
  FagmsSketch serial(params);
  for (uint64_t key : stream) serial.Update(key);
  const FagmsSketch parallel = ParallelBuildFagms(stream, params, 4);
  EXPECT_EQ(serial.counters(), parallel.counters());
}

// ---------------------------------------------------------------------------
// stream layer: chunked sources, operators, pipeline.

class RecordingOperator final : public Operator {
 public:
  // Deliberately does NOT override OnTuples: chunks must reach OnTuple
  // through the base-class forwarding in order.
  void OnTuple(uint64_t value) override { seen_.push_back(value); }
  const std::vector<uint64_t>& seen() const { return seen_; }

 private:
  std::vector<uint64_t> seen_;
};

TEST(OperatorTest, OnTuplesDefaultForwardsInOrder) {
  RecordingOperator op;
  const std::vector<uint64_t> chunk = {4, 8, 15, 16, 23, 42};
  op.OnTuples(chunk.data(), chunk.size());
  EXPECT_EQ(op.seen(), chunk);
}

TEST(SourceTest, ZipfNextChunkMatchesScalarNext) {
  ZipfSource scalar(1000, 1.0, 5000, 61);
  ZipfSource chunked(1000, 1.0, 5000, 61);  // same seed -> same RNG stream
  std::vector<uint64_t> expect;
  while (auto v = scalar.Next()) expect.push_back(*v);
  std::vector<uint64_t> got;
  uint64_t buf[64];
  while (size_t n = chunked.NextChunk(buf, 64)) {
    got.insert(got.end(), buf, buf + n);
  }
  EXPECT_EQ(got, expect);
}

TEST(SourceTest, VectorNextChunkHandlesPartialTail) {
  VectorSource source(TestKeys(130, 100, 67));
  uint64_t buf[64];
  EXPECT_EQ(source.NextChunk(buf, 64), 64u);
  EXPECT_EQ(source.NextChunk(buf, 64), 64u);
  EXPECT_EQ(source.NextChunk(buf, 64), 2u);
  EXPECT_EQ(source.NextChunk(buf, 64), 0u);
  EXPECT_FALSE(source.Next().has_value());
}

TEST(ShedOperatorTest, BatchKeepAllForwardsWholeChunks) {
  std::vector<uint64_t> got;
  SinkOperator sink([&](const uint64_t* values, size_t n) {
    got.insert(got.end(), values, values + n);
  });
  ShedOperator shed(1.0, 71, &sink);
  const std::vector<uint64_t> chunk = {1, 2, 3, 4, 5};
  shed.OnTuples(chunk.data(), chunk.size());
  EXPECT_EQ(got, chunk);
  EXPECT_EQ(shed.forwarded(), 5u);
  EXPECT_EQ(sink.count(), 5u);
}

TEST(ShedOperatorTest, BatchKeepNoneForwardsNothing) {
  SinkOperator sink([](uint64_t) { FAIL() << "p=0 must shed everything"; });
  ShedOperator shed(0.0, 73, &sink);
  const std::vector<uint64_t> chunk = {1, 2, 3};
  shed.OnTuples(chunk.data(), chunk.size());
  EXPECT_EQ(shed.seen(), 3u);
  EXPECT_EQ(shed.forwarded(), 0u);
}

TEST(ShedOperatorTest, BatchKeepsBernoulliFractionAcrossTinyChunks) {
  // Chunks smaller than typical skips force the carry-over path.
  SinkOperator sink([](uint64_t) {});
  ShedOperator shed(0.25, 79, &sink);
  const std::vector<uint64_t> stream = TestKeys(10000, 100, 83);
  for (size_t pos = 0; pos < stream.size(); pos += 7) {
    const size_t n = std::min<size_t>(7, stream.size() - pos);
    shed.OnTuples(stream.data() + pos, n);
  }
  EXPECT_EQ(shed.seen(), 10000u);
  EXPECT_EQ(shed.forwarded(), sink.count());
  EXPECT_NEAR(static_cast<double>(shed.forwarded()), 2500.0, 250.0);
}

TEST(SinkOperatorTest, BatchCallbackHandlesScalarTuples) {
  uint64_t sum = 0;
  SinkOperator sink([&](const uint64_t* values, size_t n) {
    for (size_t i = 0; i < n; ++i) sum += values[i];
  });
  sink.OnTuple(5);
  const std::vector<uint64_t> chunk = {1, 2, 3};
  sink.OnTuples(chunk.data(), chunk.size());
  EXPECT_EQ(sum, 11u);
  EXPECT_EQ(sink.count(), 4u);
}

TEST(PipelineTest, ChunkedPumpCountsChunksAndMatchesScalarSketch) {
  SketchParams params;
  params.rows = 2;
  params.buckets = 256;
  params.seed = 89;
  const std::vector<uint64_t> stream = TestKeys(2500, 1000, 97);

  FagmsSketch expect(params);
  for (uint64_t key : stream) expect.Update(key);

  FagmsSketch sketch(params);
  SinkOperator sink = MakeSketchSink(sketch);
  VectorSource source(stream);
  const PipelineStats stats = RunPipeline(source, sink);
  EXPECT_EQ(stats.tuples, 2500u);
  EXPECT_EQ(stats.chunks, 3u);  // ceil(2500 / 1024)
  EXPECT_EQ(sink.count(), 2500u);
  EXPECT_EQ(sketch.counters(), expect.counters());
}

TEST(PipelineTest, ScalarFallbackReportsZeroChunks) {
  VectorSource source(std::vector<uint64_t>(100, 3));
  SinkOperator sink([](uint64_t) {});
  const PipelineStats stats = RunPipeline(source, sink, /*chunk_size=*/1);
  EXPECT_EQ(stats.tuples, 100u);
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_EQ(sink.count(), 100u);
}

// ---------------------------------------------------------------------------
// accounting: MemoryBytes covers hash/ξ state; metrics count batch sizes.

TEST(MemoryBytesTest, IncludesHashAndXiState) {
  SketchParams params;
  params.rows = 4;
  params.buckets = 64;
  params.scheme = XiScheme::kCw4;
  const FagmsSketch fagms(params);
  EXPECT_GT(fagms.MemoryBytes(),
            params.rows * params.buckets * sizeof(double));
  const AgmsSketch agms(params);
  EXPECT_GT(agms.MemoryBytes(), params.rows * sizeof(double));
  const CountMinSketch cm(params);
  EXPECT_GT(cm.MemoryBytes(), params.rows * params.buckets * sizeof(double));
  const FastCountSketch fc(params);
  EXPECT_GT(fc.MemoryBytes(), params.rows * params.buckets * sizeof(double));
}

TEST(MemoryBytesTest, CountsMaterializedSignTables) {
  SketchParams plain;
  plain.rows = 2;
  plain.buckets = 32;
  SketchParams materialized = plain;
  materialized.materialize_domain = 4096;
  const FagmsSketch small(plain);
  const FagmsSketch big(materialized);
  // Each row's table holds 4096 sign bits = 512 bytes.
  EXPECT_GE(big.MemoryBytes(), small.MemoryBytes() + 2 * (4096 / 8));
}

TEST(MetricsTest, BatchUpdatesCountTuplesNotCalls) {
  metrics::SetEnabled(true);
  metrics::Registry::Global().ResetAll();
  SketchParams params;
  params.rows = 1;
  params.buckets = 16;
  FagmsSketch sketch(params);
  const std::vector<uint64_t> keys = TestKeys(1000, 100, 101);
  sketch.UpdateBatch(keys.data(), keys.size());
  sketch.Update(7);
  FagmsSketch other(params);
  sketch.Merge(other);
  auto& registry = metrics::Registry::Global();
  EXPECT_EQ(registry.GetCounter("sketch.fagms.updates").Get(), 1001u);
  EXPECT_EQ(registry.GetCounter("sketch.fagms.batch_updates").Get(), 1u);
  EXPECT_EQ(registry.GetCounter("sketch.fagms.merges").Get(), 1u);
  metrics::Registry::Global().ResetAll();
  metrics::SetEnabled(false);
}

}  // namespace
}  // namespace sketchsample
