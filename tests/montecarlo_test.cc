// Monte-Carlo validation: the *measured* mean and variance of the actual
// sampling + AGMS pipeline must match the analytic predictions (Eqs 25-28
// and the generic-engine self-join variances). This closes the loop between
// the estimator implementations and the variance formulas: a bug in either
// makes these tests fail.
//
// AGMS with CW4 ξ families is used because the analysis assumes exactly
// 4-wise independent signs. With T trials the sample variance of the
// variance estimate is roughly Var·sqrt((κ−1)/T), so tolerances are set to
// ~20% with T = 4000.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/corrections.h"
#include "src/core/decomposition.h"
#include "src/core/generic_variance.h"
#include "src/core/sketch_estimators.h"
#include "src/core/sketch_over_sample.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/sampling/bernoulli.h"
#include "src/sampling/with_replacement.h"
#include "src/sampling/without_replacement.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

constexpr size_t kDomain = 30;
constexpr size_t kTuples = 400;
constexpr size_t kRows = 4;       // averaged basic estimators
constexpr int kTrials = 4000;
constexpr double kVarTol = 0.20;  // 20% relative tolerance on variances

SketchParams AgmsParams(uint64_t seed) {
  SketchParams p;
  p.rows = kRows;
  p.scheme = XiScheme::kCw4;
  p.seed = seed;
  return p;
}

class MonteCarloSkewTest : public ::testing::TestWithParam<double> {
 protected:
  void SetUp() override {
    f_ = ZipfFrequencies(kDomain, kTuples, GetParam());
    g_ = ZipfFrequencies(kDomain, kTuples, GetParam() * 0.5);
    stream_f_ = f_.ToTupleStream();
    stream_g_ = g_.ToTupleStream();
  }

  FrequencyVector f_, g_;
  std::vector<uint64_t> stream_f_, stream_g_;
};

TEST_P(MonteCarloSkewTest, BernoulliJoinMatchesEq25) {
  constexpr double kP = 0.3, kQ = 0.5;
  RunningStats stats;
  for (int t = 0; t < kTrials; ++t) {
    const SketchParams params = AgmsParams(MixSeed(1000, t));
    BernoulliSampler sf(kP, MixSeed(2000, t));
    BernoulliSampler sg(kQ, MixSeed(3000, t));
    AgmsSketch a = BuildAgmsSketch(sf.Sample(stream_f_), params);
    AgmsSketch b = BuildAgmsSketch(sg.Sample(stream_g_), params);
    stats.Add(BernoulliJoinCorrection(kP, kQ).Apply(a.EstimateJoin(b)));
  }
  const double truth = ExactJoinSize(f_, g_);
  const JoinStatistics s = ComputeJoinStatistics(f_, g_);
  const double predicted = BernoulliJoinVariance(s, kP, kQ, kRows).Total();
  EXPECT_NEAR(stats.Mean(), truth, 6.0 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), predicted, kVarTol * predicted);
}

TEST_P(MonteCarloSkewTest, BernoulliSelfJoinMatchesEq26) {
  constexpr double kP = 0.4;
  RunningStats stats;
  for (int t = 0; t < kTrials; ++t) {
    BernoulliSampler sf(kP, MixSeed(4000, t));
    const auto sample = sf.Sample(stream_f_);
    AgmsSketch a = BuildAgmsSketch(sample, AgmsParams(MixSeed(5000, t)));
    stats.Add(BernoulliSelfJoinCorrection(kP, sample.size())
                  .Apply(a.EstimateSelfJoin()));
  }
  const JoinStatistics s = ComputeJoinStatistics(f_, f_);
  const double predicted = BernoulliSelfJoinVariance(s, kP, kRows).Total();
  EXPECT_NEAR(stats.Mean(), f_.F2(), 6.0 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), predicted, kVarTol * predicted);
}

TEST_P(MonteCarloSkewTest, WrJoinMatchesEq27) {
  const uint64_t mf = kTuples / 4, mg = kTuples / 5;
  RunningStats stats;
  for (int t = 0; t < kTrials; ++t) {
    const SketchParams params = AgmsParams(MixSeed(6000, t));
    Xoshiro256 rng(MixSeed(7000, t));
    AgmsSketch a =
        BuildAgmsSketch(SampleWithReplacement(stream_f_, mf, rng), params);
    AgmsSketch b =
        BuildAgmsSketch(SampleWithReplacement(stream_g_, mg, rng), params);
    const auto cf = ComputeCoefficients(kTuples, mf);
    const auto cg = ComputeCoefficients(kTuples, mg);
    stats.Add(WrJoinCorrection(cf, cg).Apply(a.EstimateJoin(b)));
  }
  const JoinStatistics s = ComputeJoinStatistics(f_, g_);
  const auto cf = ComputeCoefficients(kTuples, mf);
  const auto cg = ComputeCoefficients(kTuples, mg);
  const double predicted = WrJoinVariance(s, cf, cg, kRows).Total();
  EXPECT_NEAR(stats.Mean(), ExactJoinSize(f_, g_), 6.0 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), predicted, kVarTol * predicted);
}

TEST_P(MonteCarloSkewTest, WorJoinMatchesEq28) {
  const uint64_t mf = kTuples / 4, mg = kTuples / 3;
  RunningStats stats;
  for (int t = 0; t < kTrials; ++t) {
    const SketchParams params = AgmsParams(MixSeed(8000, t));
    Xoshiro256 rng(MixSeed(9000, t));
    AgmsSketch a = BuildAgmsSketch(
        SampleWithoutReplacement(stream_f_, mf, rng), params);
    AgmsSketch b = BuildAgmsSketch(
        SampleWithoutReplacement(stream_g_, mg, rng), params);
    const auto cf = ComputeCoefficients(kTuples, mf);
    const auto cg = ComputeCoefficients(kTuples, mg);
    stats.Add(WorJoinCorrection(cf, cg).Apply(a.EstimateJoin(b)));
  }
  const JoinStatistics s = ComputeJoinStatistics(f_, g_);
  const auto cf = ComputeCoefficients(kTuples, mf);
  const auto cg = ComputeCoefficients(kTuples, mg);
  const double predicted = WorJoinVariance(s, cf, cg, kRows).Total();
  EXPECT_NEAR(stats.Mean(), ExactJoinSize(f_, g_), 6.0 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), predicted, kVarTol * predicted);
}

TEST_P(MonteCarloSkewTest, WrSelfJoinMatchesGenericEngine) {
  // The paper omits this closed form; the generic engine's prediction is
  // validated here against the real pipeline.
  const uint64_t m = kTuples / 4;
  RunningStats stats;
  const auto coef = ComputeCoefficients(kTuples, m);
  const Correction correction = WrSelfJoinCorrection(coef);
  for (int t = 0; t < kTrials; ++t) {
    Xoshiro256 rng(MixSeed(10000, t));
    AgmsSketch a = BuildAgmsSketch(SampleWithReplacement(stream_f_, m, rng),
                                   AgmsParams(MixSeed(11000, t)));
    stats.Add(correction.Apply(a.EstimateSelfJoin()));
  }
  const auto gv = ComputeGenericSelfJoinVariance(
      FrequencyMomentModel::WithReplacement(f_, m), correction.scale,
      correction.shift, /*random_shift=*/false);
  const double predicted = gv.VarianceAveraged(kRows);
  EXPECT_NEAR(stats.Mean(), f_.F2(), 6.0 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), predicted, kVarTol * predicted);
}

TEST_P(MonteCarloSkewTest, WorSelfJoinMatchesGenericEngine) {
  const uint64_t m = kTuples / 3;
  RunningStats stats;
  const auto coef = ComputeCoefficients(kTuples, m);
  const Correction correction = WorSelfJoinCorrection(coef);
  for (int t = 0; t < kTrials; ++t) {
    Xoshiro256 rng(MixSeed(12000, t));
    AgmsSketch a =
        BuildAgmsSketch(SampleWithoutReplacement(stream_f_, m, rng),
                        AgmsParams(MixSeed(13000, t)));
    stats.Add(correction.Apply(a.EstimateSelfJoin()));
  }
  const auto gv = ComputeGenericSelfJoinVariance(
      FrequencyMomentModel::WithoutReplacement(f_, m), correction.scale,
      correction.shift, /*random_shift=*/false);
  const double predicted = gv.VarianceAveraged(kRows);
  EXPECT_NEAR(stats.Mean(), f_.F2(), 6.0 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), predicted, kVarTol * predicted);
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, MonteCarloSkewTest,
                         ::testing::Values(0.0, 1.0, 2.5),
                         [](const auto& info) {
                           return "skew_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 10));
                         });

// Averaging more basic estimators shrinks the empirical variance toward the
// sampling floor but not below it (§V-E conclusion).
TEST(MonteCarloAveragingTest, VarianceApproachesSamplingFloor) {
  const FrequencyVector f = ZipfFrequencies(kDomain, kTuples, 1.0);
  const auto stream = f.ToTupleStream();
  constexpr double kP = 0.3;
  const JoinStatistics s = ComputeJoinStatistics(f, f);

  auto empirical_variance = [&](size_t rows) {
    RunningStats stats;
    for (int t = 0; t < 2500; ++t) {
      SketchParams params;
      params.rows = rows;
      params.scheme = XiScheme::kCw4;
      params.seed = MixSeed(rows * 131, t);
      BernoulliSampler sampler(kP, MixSeed(rows * 977, t));
      const auto sample = sampler.Sample(stream);
      AgmsSketch sketch = BuildAgmsSketch(sample, params);
      stats.Add(BernoulliSelfJoinCorrection(kP, sample.size())
                    .Apply(sketch.EstimateSelfJoin()));
    }
    return stats.Variance();
  };

  const double var2 = empirical_variance(2);
  const double var32 = empirical_variance(32);
  const double floor = BernoulliSelfJoinVariance(s, kP, 1).sampling;
  EXPECT_GT(var2, var32);                     // averaging helps...
  EXPECT_GT(var32, 0.5 * floor);              // ...but not past the floor
  const double predicted32 = BernoulliSelfJoinVariance(s, kP, 32).Total();
  EXPECT_NEAR(var32, predicted32, 0.25 * predicted32);
}

}  // namespace
}  // namespace sketchsample
