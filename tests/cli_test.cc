// Tests for the sketchsample command-line tool (driven in-process).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cli.h"

namespace sketchsample {
namespace cli {
namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sketchsample_cli_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // Runs the CLI with the given arguments, capturing stdout.
  int Run(std::vector<std::string> args, std::string* output = nullptr) {
    args.insert(args.begin(), "sketchsample");
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (auto& a : args) argv.push_back(a.data());
    ::testing::internal::CaptureStdout();
    const int code = RunCli(static_cast<int>(argv.size()), argv.data());
    const std::string captured = ::testing::internal::GetCapturedStdout();
    if (output != nullptr) *output = captured;
    return code;
  }

  fs::path dir_;
};

TEST_F(CliTest, ValuesFileRoundTrip) {
  const std::vector<uint64_t> values = {0, 42, 7, 1000000007};
  WriteValuesFile(Path("v.txt"), values);
  EXPECT_EQ(ReadValuesFile(Path("v.txt")), values);
}

TEST_F(CliTest, ValuesFileSkipsCommentsAndBlanks) {
  {
    std::FILE* f = std::fopen(Path("v.txt").c_str(), "w");
    std::fputs("# header\n1\n\n2\n# trailing\n3\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(ReadValuesFile(Path("v.txt")),
            (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(CliTest, ValuesFileRejectsGarbage) {
  {
    std::FILE* f = std::fopen(Path("v.txt").c_str(), "w");
    std::fputs("1\nbanana\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(ReadValuesFile(Path("v.txt")), std::runtime_error);
  EXPECT_THROW(ReadValuesFile(Path("missing.txt")), std::runtime_error);
}

TEST_F(CliTest, NoArgsFails) {
  EXPECT_NE(Run({}), 0);
  EXPECT_NE(Run({"frobnicate"}), 0);
}

TEST_F(CliTest, GenerateZipfWritesRequestedCount) {
  std::string out;
  ASSERT_EQ(Run({"generate", "--kind=zipf", "--domain=100", "--tuples=5000",
                 "--skew=1", "--out=" + Path("z.txt")},
                &out),
            0);
  EXPECT_NE(out.find("5000"), std::string::npos);
  EXPECT_EQ(ReadValuesFile(Path("z.txt")).size(), 5000u);
}

TEST_F(CliTest, GenerateTpchKinds) {
  ASSERT_EQ(Run({"generate", "--kind=tpch-orders", "--scale=0.001",
                 "--out=" + Path("o.txt")}),
            0);
  ASSERT_EQ(Run({"generate", "--kind=tpch-lineitem", "--scale=0.001",
                 "--out=" + Path("l.txt")}),
            0);
  EXPECT_EQ(ReadValuesFile(Path("o.txt")).size(), 1500u);
  EXPECT_GT(ReadValuesFile(Path("l.txt")).size(), 1500u);
  EXPECT_NE(Run({"generate", "--kind=nope", "--out=" + Path("x.txt")}), 0);
}

TEST_F(CliTest, ExactSelfJoinMatchesHandComputation) {
  WriteValuesFile(Path("v.txt"), {1, 1, 1, 2, 2, 5});  // F2 = 9 + 4 + 1
  std::string out;
  ASSERT_EQ(Run({"exact", "--agg=selfjoin", "--in=" + Path("v.txt")}, &out),
            0);
  EXPECT_DOUBLE_EQ(std::stod(out), 14.0);
}

TEST_F(CliTest, ExactJoinMatchesHandComputation) {
  WriteValuesFile(Path("f.txt"), {1, 1, 2});
  WriteValuesFile(Path("g.txt"), {1, 2, 2, 3});
  std::string out;
  ASSERT_EQ(Run({"exact", "--agg=join", "--in=" + Path("f.txt"),
                 "--in-g=" + Path("g.txt")},
                &out),
            0);
  EXPECT_DOUBLE_EQ(std::stod(out), 2 * 1 + 1 * 2);
}

TEST_F(CliTest, EstimateFullSketchIsAccurate) {
  ASSERT_EQ(Run({"generate", "--kind=zipf", "--domain=500", "--tuples=20000",
                 "--skew=1", "--out=" + Path("z.txt")}),
            0);
  std::string exact_out, est_out;
  ASSERT_EQ(Run({"exact", "--agg=selfjoin", "--in=" + Path("z.txt")},
                &exact_out),
            0);
  ASSERT_EQ(Run({"estimate", "--agg=selfjoin", "--in=" + Path("z.txt"),
                 "--buckets=2048"},
                &est_out),
            0);
  const double exact = std::stod(exact_out);
  const double est = std::stod(est_out);
  EXPECT_LT(std::abs(est - exact) / exact, 0.1);
}

TEST_F(CliTest, EstimateWithSamplingModes) {
  ASSERT_EQ(Run({"generate", "--kind=zipf", "--domain=500", "--tuples=20000",
                 "--skew=1", "--out=" + Path("z.txt")}),
            0);
  std::string exact_out;
  ASSERT_EQ(Run({"exact", "--agg=selfjoin", "--in=" + Path("z.txt")},
                &exact_out),
            0);
  const double exact = std::stod(exact_out);
  for (const std::string mode : {"bernoulli", "wr", "wor"}) {
    std::string est_out;
    ASSERT_EQ(Run({"estimate", "--agg=selfjoin", "--in=" + Path("z.txt"),
                   "--sampling=" + mode, "--p=0.2", "--fraction=0.2",
                   "--buckets=2048"},
                  &est_out),
              0)
        << mode;
    EXPECT_LT(std::abs(std::stod(est_out) - exact) / exact, 0.3) << mode;
  }
  EXPECT_NE(Run({"estimate", "--agg=selfjoin", "--in=" + Path("z.txt"),
                 "--sampling=alien"}),
            0);
}

TEST_F(CliTest, SketchCombineWorkflow) {
  ASSERT_EQ(Run({"generate", "--kind=zipf", "--domain=300", "--tuples=10000",
                 "--skew=1", "--out=" + Path("f.txt")}),
            0);
  ASSERT_EQ(Run({"generate", "--kind=zipf", "--domain=300", "--tuples=10000",
                 "--skew=1", "--seed=2", "--out=" + Path("g.txt")}),
            0);
  ASSERT_EQ(Run({"sketch", "--in=" + Path("f.txt"),
                 "--out=" + Path("f.sk"), "--buckets=2048"}),
            0);
  ASSERT_EQ(Run({"sketch", "--in=" + Path("g.txt"),
                 "--out=" + Path("g.sk"), "--buckets=2048"}),
            0);

  std::string exact_out, combine_out;
  ASSERT_EQ(Run({"exact", "--agg=join", "--in=" + Path("f.txt"),
                 "--in-g=" + Path("g.txt")},
                &exact_out),
            0);
  ASSERT_EQ(Run({"combine", "--agg=join", "--a=" + Path("f.sk"),
                 "--b=" + Path("g.sk")},
                &combine_out),
            0);
  const double exact = std::stod(exact_out);
  EXPECT_LT(std::abs(std::stod(combine_out) - exact) / exact, 0.1);
}

TEST_F(CliTest, CombineMergeEqualsUnionSketch) {
  WriteValuesFile(Path("a.txt"), {1, 2, 3, 4, 5});
  WriteValuesFile(Path("b.txt"), {6, 7, 8, 9, 10});
  WriteValuesFile(Path("all.txt"), {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  ASSERT_EQ(Run({"sketch", "--in=" + Path("a.txt"), "--out=" + Path("a.sk"),
                 "--buckets=64"}),
            0);
  ASSERT_EQ(Run({"sketch", "--in=" + Path("b.txt"), "--out=" + Path("b.sk"),
                 "--buckets=64"}),
            0);
  ASSERT_EQ(Run({"sketch", "--in=" + Path("all.txt"),
                 "--out=" + Path("all.sk"), "--buckets=64"}),
            0);
  ASSERT_EQ(Run({"combine", "--agg=merge", "--a=" + Path("a.sk"),
                 "--b=" + Path("b.sk"), "--out=" + Path("merged.sk")}),
            0);
  std::string merged_out, all_out;
  ASSERT_EQ(
      Run({"combine", "--agg=selfjoin", "--a=" + Path("merged.sk")},
          &merged_out),
      0);
  ASSERT_EQ(Run({"combine", "--agg=selfjoin", "--a=" + Path("all.sk")},
                &all_out),
            0);
  EXPECT_DOUBLE_EQ(std::stod(merged_out), std::stod(all_out));
}

TEST_F(CliTest, StatsReportsCountDistinctF2) {
  WriteValuesFile(Path("v.txt"), {1, 1, 1, 2, 2, 5});
  std::string out;
  ASSERT_EQ(Run({"stats", "--in=" + Path("v.txt"), "--buckets=512"}, &out),
            0);
  EXPECT_NE(out.find("count    6"), std::string::npos);
  // 3 distinct values, small enough for KMV to be exact.
  EXPECT_NE(out.find("distinct 3"), std::string::npos);
  // F2 = 9 + 4 + 1 = 14, exact for 3 values in 512 buckets w.h.p.; parse it.
  const auto pos = out.find("f2       ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(out.substr(pos + 9)), 14.0);
}

TEST_F(CliTest, StatsRejectsEmptyFile) {
  WriteValuesFile(Path("v.txt"), {});
  EXPECT_NE(Run({"stats", "--in=" + Path("v.txt")}), 0);
}

TEST_F(CliTest, TopKFindsHeavyValue) {
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(7);
  for (uint64_t v = 0; v < 200; ++v) values.push_back(v);
  WriteValuesFile(Path("v.txt"), values);
  std::string out;
  ASSERT_EQ(Run({"topk", "--in=" + Path("v.txt"), "--k=1",
                 "--buckets=1024"},
                &out),
            0);
  EXPECT_EQ(out.rfind("7 ", 0), 0u) << out;  // key 7 is the top hitter
}

TEST_F(CliTest, RangeAndQuantileQueries) {
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 100; ++v) values.push_back(v);
  WriteValuesFile(Path("v.txt"), values);
  std::string out;
  ASSERT_EQ(Run({"range", "--in=" + Path("v.txt"), "--log-universe=7",
                 "--lo=10", "--hi=19", "--buckets=2048"},
                &out),
            0);
  EXPECT_NEAR(std::stod(out), 10.0, 1.5);

  ASSERT_EQ(Run({"range", "--in=" + Path("v.txt"), "--log-universe=7",
                 "--quantile=0.5", "--buckets=2048"},
                &out),
            0);
  EXPECT_NEAR(std::stod(out), 50.0, 10.0);
}

// Extracts the value printed after `key` on its own line of `stream`
// output (e.g. Field(out, "estimate") -> "1234.5").
std::string Field(const std::string& out, const std::string& key) {
  size_t pos = out.rfind(key, 0) == 0 ? 0 : out.find("\n" + key);
  EXPECT_NE(pos, std::string::npos) << "no field '" << key << "' in:\n"
                                    << out;
  if (pos == std::string::npos) return "";
  pos = out.find_first_not_of(" ", pos + key.size() + (out[pos] == '\n'));
  const size_t end = out.find('\n', pos);
  return out.substr(pos, end - pos);
}

TEST_F(CliTest, StreamFixedRateReportsHonestEstimate) {
  std::string out;
  ASSERT_EQ(Run({"stream", "--domain=300", "--tuples=20000", "--skew=1",
                 "--shed-p=0.5", "--buckets=2048"},
                &out),
            0);
  EXPECT_EQ(Field(out, "outcome"), "ended");
  EXPECT_EQ(Field(out, "tuples"), "20000");
  const double realized_p = std::stod(Field(out, "realized_p"));
  EXPECT_NEAR(realized_p, 0.5, 0.05);
  const double exact = std::stod(Field(out, "exact"));
  const double estimate = std::stod(Field(out, "estimate"));
  EXPECT_LT(std::abs(estimate - exact) / exact, 0.3);
  // The Eq 26 interval is a proper interval around the estimate.
  std::istringstream ci(Field(out, "ci"));
  double lo = 0, hi = 0;
  ASSERT_TRUE(ci >> lo >> hi);
  EXPECT_LT(lo, hi);
  EXPECT_LE(lo, estimate);
  EXPECT_GE(hi, estimate);
}

TEST_F(CliTest, StreamAdaptiveShedsDownToTheBudget) {
  std::string out;
  ASSERT_EQ(Run({"stream", "--domain=300", "--tuples=60000", "--skew=1",
                 "--shed-budget=700", "--shed-window=5000", "--min-p=0.02",
                 "--buckets=2048"},
                &out),
            0);
  EXPECT_EQ(Field(out, "outcome"), "ended");
  // 5000 offered per window against a budget of 700: the controller must
  // shed hard — the full-rate start is not sustained.
  EXPECT_LT(std::stod(Field(out, "final_p")), 0.3);
  EXPECT_LT(std::stod(Field(out, "realized_p")), 0.5);
  EXPECT_GT(std::stoull(Field(out, "windows")), 5u);
}

TEST_F(CliTest, StreamCheckpointResumeMatchesUninterrupted) {
  const std::vector<std::string> base = {
      "stream",          "--domain=300",
      "--tuples=60000",  "--skew=1",
      "--shed-p=0.3",    "--shed-seed=41",
      "--shed-budget=700", "--shed-window=5000",
      "--min-p=0.02",    "--buckets=512",
      "--checkpoint-every=12000", "--checkpoint-out=" + Path("ck")};

  std::string full_out;
  ASSERT_EQ(Run(base, &full_out), 0);
  ASSERT_EQ(Field(full_out, "outcome"), "ended");

  // Kill mid-stream (after the checkpoint at 24000), then resume.
  auto killed = base;
  killed.push_back("--max-tuples=29000");
  std::string killed_out;
  ASSERT_EQ(Run(killed, &killed_out), 0);
  EXPECT_EQ(Field(killed_out, "outcome"), "stopped");
  EXPECT_GE(std::stoull(Field(killed_out, "checkpoints")), 2u);

  auto resumed = base;
  resumed.push_back("--resume=" + Path("ck"));
  std::string resumed_out;
  ASSERT_EQ(Run(resumed, &resumed_out), 0);

  // Bit-exact resume: every estimator-relevant field matches the
  // uninterrupted run to the last digit (both print with %.17g).
  EXPECT_EQ(Field(resumed_out, "outcome"), "ended");
  EXPECT_EQ(Field(resumed_out, "tuples"), Field(full_out, "tuples"));
  EXPECT_EQ(Field(resumed_out, "kept"), Field(full_out, "kept"));
  EXPECT_EQ(Field(resumed_out, "realized_p"),
            Field(full_out, "realized_p"));
  EXPECT_EQ(Field(resumed_out, "final_p"), Field(full_out, "final_p"));
  EXPECT_EQ(Field(resumed_out, "estimate"), Field(full_out, "estimate"));
}

TEST_F(CliTest, StreamCorruptCheckpointFailsCleanly) {
  {
    std::FILE* f = std::fopen(Path("bad.ck").c_str(), "wb");
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  EXPECT_NE(Run({"stream", "--tuples=1000", "--resume=" + Path("bad.ck")}),
            0);
  EXPECT_NE(
      Run({"stream", "--tuples=1000", "--resume=" + Path("missing.ck")}),
      0);
}

TEST_F(CliTest, StreamFaultRunsAreSeedDeterministic) {
  const std::vector<std::string> base = {
      "stream",        "--domain=300",       "--tuples=20000",
      "--skew=1",      "--buckets=512",      "--fault-profile=harsh",
      "--shed-p=0.5",  "--stall-retries=64"};
  auto with_seed = [&](const std::string& seed) {
    auto args = base;
    args.push_back("--fault-seed=" + seed);
    return args;
  };
  std::string a, b, c;
  ASSERT_EQ(Run(with_seed("123"), &a), 0);
  ASSERT_EQ(Run(with_seed("123"), &b), 0);
  ASSERT_EQ(Run(with_seed("124"), &c), 0);
  EXPECT_EQ(a, b);  // same seed: identical run, byte for byte
  EXPECT_NE(a, c);  // different seed: different fault sequence
  EXPECT_EQ(Field(a, "fault_seed"), "123");
  EXPECT_GT(std::stoull(Field(a, "faults")), 0u);

  EXPECT_NE(Run({"stream", "--tuples=100", "--fault-profile=bogus"}), 0);
}

TEST_F(CliTest, CorruptSketchFileFailsCleanly) {
  {
    std::FILE* f = std::fopen(Path("bad.sk").c_str(), "wb");
    std::fputs("not a sketch", f);
    std::fclose(f);
  }
  EXPECT_NE(Run({"combine", "--agg=selfjoin", "--a=" + Path("bad.sk")}), 0);
}

}  // namespace
}  // namespace cli
}  // namespace sketchsample
