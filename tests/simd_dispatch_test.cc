// Tests for the runtime ISA dispatch layer (src/prng/simd/): every vector
// kernel level reachable on the host must produce byte-identical results to
// the scalar twins, for all six ξ families, all four sketch types, positive
// and negative weights, and key mixes that exercise both the small-key
// (x < 2^32) and general 64-bit vector mulmod paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/prng/hash.h"
#include "src/prng/simd/dispatch.h"
#include "src/prng/xi.h"
#include "src/sketch/agms.h"
#include "src/sketch/countmin.h"
#include "src/sketch/fagms.h"
#include "src/sketch/fastcount.h"
#include "src/sketch/sketch.h"
#include "src/stream/source.h"
#include "src/util/aligned.h"

namespace sketchsample {
namespace {

using simd::IsaLevel;

constexpr XiScheme kAllSchemes[] = {
    XiScheme::kBch3, XiScheme::kEh3,  XiScheme::kBch5,
    XiScheme::kCw2,  XiScheme::kCw4,  XiScheme::kTabulation,
};

std::vector<IsaLevel> ReachableLevels() {
  std::vector<IsaLevel> levels = {IsaLevel::kScalar};
  if (simd::DetectBestIsaLevel() >= IsaLevel::kAvx2) {
    levels.push_back(IsaLevel::kAvx2);
  }
  if (simd::DetectBestIsaLevel() >= IsaLevel::kAvx512) {
    levels.push_back(IsaLevel::kAvx512);
  }
  return levels;
}

// Keys that hit every kernel path: small keys (vector small-key mulmod),
// keys >= 2^32 (general mulmod), keys beyond the Mersenne modulus
// (Mod61 folding), block-interleaved so one vector group can mix both
// classes, and a length that leaves vector-width tails (1037 = 129*8 + 5).
std::vector<uint64_t> MixedKeys(size_t count, uint64_t seed) {
  ZipfSource small(1 << 20, 1.0, count, seed);
  std::vector<uint64_t> keys;
  keys.reserve(count + 8);
  uint64_t i = 0;
  while (auto v = small.Next()) {
    uint64_t k = *v;
    // Promote every third key into the >= 2^32 range so vector groups see
    // mixed small/general lanes; every seventh beyond 2^61 - 1.
    if (i % 3 == 1) k |= (k + seed + 1) << 32;
    if (i % 7 == 3) k |= 1ull << 62;
    keys.push_back(k);
    ++i;
  }
  keys.push_back(0);
  keys.push_back(~0ull);
  keys.push_back((1ull << 61) - 1);
  keys.push_back(1ull << 32);
  keys.push_back((1ull << 32) - 1);
  return keys;
}

// --------------------------------------------------------------------------
// Level/name plumbing.

TEST(IsaDispatchTest, LevelNamesRoundTrip) {
  for (IsaLevel level :
       {IsaLevel::kScalar, IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    IsaLevel parsed;
    ASSERT_TRUE(simd::IsaLevelFromName(simd::IsaLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  IsaLevel parsed;
  EXPECT_FALSE(simd::IsaLevelFromName("sse9", &parsed));
  EXPECT_FALSE(simd::IsaLevelFromName("", &parsed));
  EXPECT_FALSE(simd::IsaLevelFromName(nullptr, &parsed));
}

TEST(IsaDispatchTest, ActiveLevelNeverExceedsDetected) {
  EXPECT_LE(simd::ActiveIsaLevel(), simd::DetectBestIsaLevel());
}

TEST(IsaDispatchTest, KernelsForRejectsLevelsAboveHost) {
  const IsaLevel best = simd::DetectBestIsaLevel();
  if (best < IsaLevel::kAvx512) {
    EXPECT_THROW(simd::KernelsFor(IsaLevel::kAvx512), std::invalid_argument);
  }
  if (best < IsaLevel::kAvx2) {
    EXPECT_THROW(simd::KernelsFor(IsaLevel::kAvx2), std::invalid_argument);
  }
  // The scalar table is always available and is its own twin.
  EXPECT_STREQ(simd::KernelsFor(IsaLevel::kScalar).name, "scalar");
}

TEST(IsaDispatchTest, ScopedOverrideSwitchesAndRestores) {
  const IsaLevel before = simd::ActiveIsaLevel();
  {
    simd::ScopedIsaForTesting scoped(IsaLevel::kScalar);
    EXPECT_EQ(simd::ActiveIsaLevel(), IsaLevel::kScalar);
    EXPECT_STREQ(simd::Kernels().name, "scalar");
  }
  EXPECT_EQ(simd::ActiveIsaLevel(), before);
}

TEST(IsaDispatchTest, DispatchStateBytesIsNonZero) {
  EXPECT_GT(simd::DispatchStateBytes(), 0u);
}

// --------------------------------------------------------------------------
// Kernel-level equivalence: vector levels vs the scalar twins.

TEST(IsaDispatchTest, SignBatchBitExactAcrossLevels) {
  const std::vector<uint64_t> keys = MixedKeys(1037, 11);
  std::vector<int8_t> scalar_out(keys.size());
  std::vector<int8_t> level_out(keys.size());
  for (XiScheme scheme : kAllSchemes) {
    const auto xi = MakeXiFamily(scheme, 4242);
    {
      simd::ScopedIsaForTesting scoped(IsaLevel::kScalar);
      xi->SignBatch(keys.data(), keys.size(), scalar_out.data());
    }
    for (IsaLevel level : ReachableLevels()) {
      simd::ScopedIsaForTesting scoped(level);
      xi->SignBatch(keys.data(), keys.size(), level_out.data());
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(level_out[i], scalar_out[i])
            << XiSchemeName(scheme) << " at " << simd::IsaLevelName(level)
            << " key " << keys[i];
      }
    }
  }
}

TEST(IsaDispatchTest, BucketBatchBitExactAcrossLevels) {
  const std::vector<uint64_t> keys = MixedKeys(1037, 13);
  std::vector<uint64_t> scalar_out(keys.size());
  std::vector<uint64_t> level_out(keys.size());
  // Bucket counts covering the degenerate d == 1 path, the paper's default,
  // powers of two, and a divisor >= 2^32 (AVX2 falls back to scalar there
  // because its low-64 q*d product would be inexact).
  const uint64_t bucket_counts[] = {1,    2,          5000,
                                    4096, 1u << 16,   (1ull << 33) + 5};
  for (uint64_t buckets : bucket_counts) {
    PairwiseHash hash(99, buckets);
    {
      simd::ScopedIsaForTesting scoped(IsaLevel::kScalar);
      hash.BucketBatch(keys.data(), keys.size(), scalar_out.data());
    }
    for (IsaLevel level : ReachableLevels()) {
      simd::ScopedIsaForTesting scoped(level);
      hash.BucketBatch(keys.data(), keys.size(), level_out.data());
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(level_out[i], scalar_out[i])
            << buckets << " buckets at " << simd::IsaLevelName(level)
            << " key " << keys[i];
        ASSERT_EQ(scalar_out[i], hash.Bucket(keys[i]));
      }
    }
  }
}

// --------------------------------------------------------------------------
// Sketch-level equivalence: full UpdateBatch counters byte-identical.

template <typename SketchT>
SketchT BuildAt(IsaLevel level, const SketchParams& params,
                const std::vector<uint64_t>& keys) {
  simd::ScopedIsaForTesting scoped(level);
  SketchT sketch(params);
  // Mixed positive and negative weights (turnstile updates) in several
  // batches so per-counter FP accumulation order matters.
  sketch.UpdateBatch(keys.data(), keys.size() / 2, 1.0);
  sketch.UpdateBatch(keys.data() + keys.size() / 2, keys.size() / 2, -2.5);
  sketch.UpdateBatch(keys.data(), keys.size() / 3, 0.125);
  return sketch;
}

template <typename SketchT>
void ExpectCountersIdenticalAcrossLevels() {
  const std::vector<uint64_t> keys = MixedKeys(4096, 17);
  for (XiScheme scheme : kAllSchemes) {
    SketchParams params;
    params.rows = 5;
    params.buckets = 101;
    params.scheme = scheme;
    params.seed = 31337;
    const SketchT reference =
        BuildAt<SketchT>(IsaLevel::kScalar, params, keys);
    for (IsaLevel level : ReachableLevels()) {
      const SketchT candidate = BuildAt<SketchT>(level, params, keys);
      ASSERT_EQ(candidate.counters().size(), reference.counters().size());
      ASSERT_EQ(std::memcmp(candidate.counters().data(),
                            reference.counters().data(),
                            reference.counters().size() * sizeof(double)),
                0)
          << XiSchemeName(scheme) << " at " << simd::IsaLevelName(level);
    }
  }
}

TEST(IsaDispatchTest, FagmsCountersBitExactAcrossLevels) {
  ExpectCountersIdenticalAcrossLevels<FagmsSketch>();
}

TEST(IsaDispatchTest, AgmsCountersBitExactAcrossLevels) {
  ExpectCountersIdenticalAcrossLevels<AgmsSketch>();
}

TEST(IsaDispatchTest, CountMinCountersBitExactAcrossLevels) {
  ExpectCountersIdenticalAcrossLevels<CountMinSketch>();
}

TEST(IsaDispatchTest, FastCountCountersBitExactAcrossLevels) {
  ExpectCountersIdenticalAcrossLevels<FastCountSketch>();
}

// The fused F-AGMS CW4 kernel also has a d == 1 degenerate row path.
TEST(IsaDispatchTest, FagmsFusedSingleBucketBitExactAcrossLevels) {
  const std::vector<uint64_t> keys = MixedKeys(1037, 23);
  SketchParams params;
  params.rows = 3;
  params.buckets = 1;
  params.scheme = XiScheme::kCw4;
  params.seed = 7;
  const FagmsSketch reference =
      BuildAt<FagmsSketch>(IsaLevel::kScalar, params, keys);
  for (IsaLevel level : ReachableLevels()) {
    const FagmsSketch candidate = BuildAt<FagmsSketch>(level, params, keys);
    ASSERT_EQ(std::memcmp(candidate.counters().data(),
                          reference.counters().data(),
                          reference.counters().size() * sizeof(double)),
              0)
        << simd::IsaLevelName(level);
  }
}

// UpdateBatch must also equal per-key Update() at the active level (stream
// order preserved by the scalar scatter).
TEST(IsaDispatchTest, BatchEqualsPerKeyUpdateAtBestLevel) {
  const std::vector<uint64_t> keys = MixedKeys(1037, 29);
  SketchParams params;
  params.scheme = XiScheme::kCw4;
  params.rows = 3;
  params.buckets = 128;
  params.seed = 55;
  FagmsSketch batch(params);
  FagmsSketch single(params);
  batch.UpdateBatch(keys.data(), keys.size(), -1.75);
  for (uint64_t key : keys) single.Update(key, -1.75);
  ASSERT_EQ(std::memcmp(batch.counters().data(), single.counters().data(),
                        batch.counters().size() * sizeof(double)),
            0);
}

// --------------------------------------------------------------------------
// Aligned counter storage.

TEST(AlignedCountersTest, CounterBaseIs64ByteAligned) {
  SketchParams params;
  params.rows = 3;
  params.buckets = 77;
  FagmsSketch fagms(params);
  CountMinSketch cm(params);
  FastCountSketch fc(params);
  AgmsSketch agms(params);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(fagms.counters().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(cm.counters().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(fc.counters().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(agms.counters().data()) % 64, 0u);
}

TEST(AlignedCountersTest, AlignedCounterBytesRoundsUpToCacheLines) {
  EXPECT_EQ(AlignedCounterBytes(0), 0u);
  EXPECT_EQ(AlignedCounterBytes(1), 64u);
  EXPECT_EQ(AlignedCounterBytes(8), 64u);
  EXPECT_EQ(AlignedCounterBytes(9), 128u);
  EXPECT_EQ(AlignedCounterBytes(16), 128u);
}

TEST(AlignedCountersTest, MemoryBytesCoversAlignedCounters) {
  SketchParams params;
  params.rows = 2;
  params.buckets = 33;  // 66 counters -> 528 raw bytes -> 576 aligned
  FagmsSketch sketch(params);
  EXPECT_GE(sketch.MemoryBytes(),
            AlignedCounterBytes(params.rows * params.buckets));
}

}  // namespace
}  // namespace sketchsample
