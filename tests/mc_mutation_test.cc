// Self-validation of the model checker: every memory order in the three
// production protocols is load-bearing, and the checker proves it by
// finding a violating schedule for each seeded one-notch weakening.
//
// Each mutant weakens every dynamic occurrence of one (variable, op,
// declared order) site — load: seq_cst->acquire->relaxed, store:
// seq_cst->release->relaxed, rmw: seq_cst->acq_rel — and re-runs the
// primitive's spec. A mutant the checker cannot kill would mean either a
// redundant order in production code or a hole in the checker; both are
// failures here. The smoke run explores every mutant; deep mode
// (SKETCHSAMPLE_MC_DEEP=1) raises the bounds.

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/mc/mc.h"
#include "src/service/snapshot.h"
#include "src/util/once_latch.h"
#include "src/util/spsc_queue.h"

namespace sketchsample {
namespace {

using mc::CensusEntry;
using mc::Env;
using mc::Explore;
using mc::McAtomics;
using mc::MemOrderName;
using mc::Mutation;
using mc::OpKind;
using mc::OpKindName;
using mc::Options;
using mc::Result;

bool DeepMode() { return std::getenv("SKETCHSAMPLE_MC_DEEP") != nullptr; }

Options MutantOptions() {
  Options opts;
  if (DeepMode()) {
    opts.max_runs = 2000000;
    opts.max_steps = 100000;
  }
  return opts;
}

// ---------------------------------------------------------------------------
// The specs under mutation: same protocols as mc_spec_test.cc, kept at the
// smallest shapes that exercise every order (the SPSC spec wraps the ring).

void SpscSpec(Env& env) {
  SpscQueue<int, McAtomics> queue(2);
  std::vector<int> popped;
  env.Spawn([&] {
    for (int i = 1; i <= 3; ++i) {
      int v = i;
      while (!queue.TryPush(v)) McAtomics::Yield();
    }
  });
  env.Spawn([&] {
    int out = 0;
    for (int i = 0; i < 3; ++i) {
      while (!queue.TryPop(out)) McAtomics::Yield();
      popped.push_back(out);
    }
  });
  env.Join();
  MC_ASSERT(popped.size() == 3);
  for (int i = 0; i < 3; ++i) {
    MC_ASSERT(popped[static_cast<size_t>(i)] == i + 1);
  }
}

void LatchSpec(Env& env) {
  OnceLatch<int, McAtomics> latch;
  mc::var<int> init_count(0, "init_count");
  for (int c = 0; c < 2; ++c) {
    env.Spawn([&] {
      const int got = latch.Get([&] {
        init_count.Store(init_count.Read() + 1);
        return 7;
      });
      MC_ASSERT(got == 7);
    });
  }
  env.Join();
  MC_ASSERT(init_count.Read() == 1);
}

struct RcuNode {
  explicit RcuNode(int v) : freed(0, "rcu.canary"), value(v) {}
  mc::var<int> freed;
  int value;
};

struct CanaryDeleter {
  void operator()(const RcuNode* node) const {
    const_cast<RcuNode*>(node)->freed.Store(1);
  }
};

void RcuSpec(Env& env) {
  RcuNode n0(1);
  RcuNode n1(2);
  RcuNode n2(3);
  std::array<RcuNode*, 3> pool{&n0, &n1, &n2};
  RcuCell<RcuNode, McAtomics, CanaryDeleter> cell(1);
  env.Spawn([&] {
    for (int i = 0; i < 2; ++i) {
      cell.Publish(std::unique_ptr<const RcuNode, CanaryDeleter>(
          pool[static_cast<size_t>(i)]));
    }
  });
  env.Spawn([&] {
    for (int i = 0; i < 2; ++i) {
      auto guard = cell.Read(0);
      if (guard) {
        MC_ASSERT(guard->freed.Read() == 0);
      }
    }
  });
  env.Join();
  cell.Publish(std::unique_ptr<const RcuNode, CanaryDeleter>(&n2));
  MC_ASSERT(cell.retired_count() == 0);
}

// ---------------------------------------------------------------------------
// The seeded mutant table. Acceptance requires the checker to kill at
// least 6; the table seeds 7 killable mutants across the three protocols
// plus 2 documented survivors (kKnownSurvivors below).

struct SeededMutant {
  const char* label;
  void (*spec)(Env&);
  Mutation mutation;
};

const SeededMutant kMutants[] = {
    {"spsc.head release-store -> relaxed", SpscSpec,
     {"spsc.head", OpKind::kStore, MemOrder::kRelease}},
    {"spsc.tail release-store -> relaxed", SpscSpec,
     {"spsc.tail", OpKind::kStore, MemOrder::kRelease}},
    {"spsc.head acquire-load -> relaxed", SpscSpec,
     {"spsc.head", OpKind::kLoad, MemOrder::kAcquire}},
    {"spsc.tail acquire-load -> relaxed", SpscSpec,
     {"spsc.tail", OpKind::kLoad, MemOrder::kAcquire}},
    {"latch.state ready-publish release -> relaxed", LatchSpec,
     {"latch.state", OpKind::kStore, MemOrder::kRelease}},
    {"latch.state acquire-load -> relaxed", LatchSpec,
     {"latch.state", OpKind::kLoad, MemOrder::kAcquire}},
    // ReadGuard's hazard release (store of nullptr): weakened, the writer's
    // scan may keep seeing a stale announcement forever, so the
    // bounded-reclamation assertion (retired_count()==0 at quiescence)
    // trips.
    {"rcu.hazard guard-release release -> relaxed", RcuSpec,
     {"rcu.hazard", OpKind::kStore, MemOrder::kRelease}},
};

// Mutants of the seq_cst announce/scan handshake that this checker
// provably CANNOT kill: the simulator fixes the seq_cst total order S to
// the execution order (a sound over-approximation, see
// docs/STATIC_ANALYSIS.md), and the hazard-pointer bug these weakenings
// introduce only manifests through an S order that disagrees with
// execution order (the store-buffer "announce misses the scan" window).
// TSan and the nightly service soak cover that gap on real hardware. The
// test EXPECTS survival: if the memory model is ever strengthened to
// enumerate S orders, these start failing here and must be promoted into
// kMutants.
const SeededMutant kKnownSurvivors[] = {
    {"rcu.hazard announce seq_cst -> release", RcuSpec,
     {"rcu.hazard", OpKind::kStore, MemOrder::kSeqCst}},
    {"rcu.current publish-exchange seq_cst -> acq_rel", RcuSpec,
     {"rcu.current", OpKind::kRmw, MemOrder::kSeqCst}},
};

// Every seeded mutation must target a site that actually exists: the
// unmutated exploration's census contains the (var, op, order) tuple.
TEST(McMutationTest, SeededSitesExistInCensus) {
  Result spsc = Explore(SpscSpec, MutantOptions());
  Result latch = Explore(LatchSpec, MutantOptions());
  Result rcu = Explore(RcuSpec, MutantOptions());
  ASSERT_FALSE(spsc.found) << spsc.report;
  ASSERT_FALSE(latch.found) << latch.report;
  ASSERT_FALSE(rcu.found) << rcu.report;

  auto census_has = [](const Result& r, const Mutation& m) {
    for (const CensusEntry& e : r.census) {
      if (e.var == m.var && e.op == m.op && e.order == m.from) return true;
    }
    return false;
  };
  for (const SeededMutant& mutant : kMutants) {
    const Result& r = mutant.spec == SpscSpec   ? spsc
                      : mutant.spec == LatchSpec ? latch
                                                 : rcu;
    EXPECT_TRUE(census_has(r, mutant.mutation))
        << mutant.label << ": site absent from census";
  }
  for (const SeededMutant& mutant : kKnownSurvivors) {
    EXPECT_TRUE(census_has(rcu, mutant.mutation))
        << mutant.label << ": site absent from census";
  }
}

// The core self-validation: each weakened protocol has a violating
// schedule and the checker finds it.
TEST(McMutationTest, EverySeededMutantIsKilled) {
  int killed = 0;
  std::vector<std::string> survivors;
  for (const SeededMutant& mutant : kMutants) {
    Options opts = MutantOptions();
    opts.mutation = &mutant.mutation;
    Result r = Explore(mutant.spec, opts);
    if (r.found) {
      ++killed;
      EXPECT_FALSE(r.report.empty()) << mutant.label;
    } else {
      survivors.push_back(mutant.label);
    }
  }
  EXPECT_EQ(killed, static_cast<int>(std::size(kMutants)))
      << "surviving mutants: " << ::testing::PrintToString(survivors);
  // Hard floor from the issue's acceptance criteria.
  ASSERT_GE(killed, 6);
}

// The seq_cst-handshake mutants survive *by construction* of the memory
// model (S order == execution order; see the kKnownSurvivors comment).
// Asserting survival keeps the limitation visible: a stronger model makes
// this test fail, which is the signal to promote these into kMutants.
TEST(McMutationTest, KnownSurvivorsDocumentTheSeqCstGap) {
  for (const SeededMutant& mutant : kKnownSurvivors) {
    Options opts = MutantOptions();
    opts.mutation = &mutant.mutation;
    Result r = Explore(mutant.spec, opts);
    EXPECT_FALSE(r.found)
        << mutant.label
        << " was killed: the seq_cst model got stronger -- promote this "
           "mutant into kMutants. Report:\n"
        << r.report;
    EXPECT_TRUE(r.complete) << mutant.label;
  }
}

// ---------------------------------------------------------------------------
// Deterministic replay: the decision trace of a failing exploration, fed
// back through Options::replay_trace, reproduces the identical violation —
// and produces the identical report twice in a row.
TEST(McMutationTest, FailingTraceReplaysDeterministically) {
  Options opts = MutantOptions();
  Mutation m{"spsc.head", OpKind::kStore, MemOrder::kRelease};
  opts.mutation = &m;
  Result found = Explore(SpscSpec, opts);
  ASSERT_TRUE(found.found);
  ASSERT_FALSE(found.decisions.empty());

  Options replay = opts;
  replay.replay = true;
  replay.replay_trace = found.decisions;
  Result again = Explore(SpscSpec, replay);
  ASSERT_TRUE(again.found);
  EXPECT_EQ(again.message, found.message);
  EXPECT_EQ(again.decisions, found.decisions);
  EXPECT_EQ(again.runs, 1u);

  Result third = Explore(SpscSpec, replay);
  ASSERT_TRUE(third.found);
  EXPECT_EQ(third.report, again.report);
}

}  // namespace
}  // namespace sketchsample
