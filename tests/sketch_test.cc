// Unit + property tests for src/sketch: AGMS, F-AGMS, Count-Min, FastCount.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/sketch_estimators.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/sketch/agms.h"
#include "src/sketch/countmin.h"
#include "src/sketch/fagms.h"
#include "src/sketch/fastcount.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

SketchParams SmallAgms(uint64_t seed, size_t rows = 64) {
  SketchParams p;
  p.rows = rows;
  p.scheme = XiScheme::kCw4;
  p.seed = seed;
  return p;
}

SketchParams SmallFagms(uint64_t seed, size_t rows = 1,
                        size_t buckets = 256) {
  SketchParams p;
  p.rows = rows;
  p.buckets = buckets;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

// ---------------------------------------------------------------------------
// AGMS.
// ---------------------------------------------------------------------------

TEST(AgmsTest, SingleValueSelfJoinIsExact) {
  // A stream with one distinct value: S = ±f, so S² = f² exactly.
  AgmsSketch sketch(SmallAgms(1));
  for (int i = 0; i < 25; ++i) sketch.Update(42);
  EXPECT_DOUBLE_EQ(sketch.EstimateSelfJoin(), 625.0);
}

TEST(AgmsTest, WeightedUpdatesEqualRepeatedUpdates) {
  AgmsSketch a(SmallAgms(2)), b(SmallAgms(2));
  for (int i = 0; i < 7; ++i) a.Update(5);
  b.Update(5, 7.0);
  EXPECT_EQ(a.counters(), b.counters());
}

TEST(AgmsTest, NegativeWeightDeletes) {
  AgmsSketch sketch(SmallAgms(3));
  sketch.Update(1, 4.0);
  sketch.Update(2, 2.0);
  sketch.Update(1, -4.0);
  sketch.Update(2, -2.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateSelfJoin(), 0.0);
}

TEST(AgmsTest, SelfJoinIsUnbiasedOverSeeds) {
  const FrequencyVector f = ZipfFrequencies(30, 500, 1.0);
  const double truth = f.F2();
  const auto stream = f.ToTupleStream();
  RunningStats estimates;
  for (int rep = 0; rep < 400; ++rep) {
    AgmsSketch sketch = BuildAgmsSketch(stream, SmallAgms(MixSeed(5, rep), 16));
    estimates.Add(sketch.EstimateSelfJoin());
  }
  EXPECT_NEAR(estimates.Mean(), truth, 5.0 * estimates.StdError());
}

TEST(AgmsTest, JoinIsUnbiasedOverSeeds) {
  const FrequencyVector f = ZipfFrequencies(30, 400, 0.8);
  const FrequencyVector g = ZipfFrequencies(30, 300, 1.2);
  const double truth = ExactJoinSize(f, g);
  const auto sf = f.ToTupleStream();
  const auto sg = g.ToTupleStream();
  RunningStats estimates;
  for (int rep = 0; rep < 400; ++rep) {
    const SketchParams params = SmallAgms(MixSeed(6, rep), 16);
    AgmsSketch a = BuildAgmsSketch(sf, params);
    AgmsSketch b = BuildAgmsSketch(sg, params);
    estimates.Add(a.EstimateJoin(b));
  }
  EXPECT_NEAR(estimates.Mean(), truth, 5.0 * estimates.StdError());
}

TEST(AgmsTest, MergeEqualsConcatenatedStream) {
  const SketchParams params = SmallAgms(7);
  AgmsSketch a(params), b(params), whole(params);
  for (uint64_t v = 0; v < 50; ++v) {
    (v % 2 ? a : b).Update(v);
    whole.Update(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.counters(), whole.counters());
}

TEST(AgmsTest, IncompatibleSketchesThrow) {
  AgmsSketch a(SmallAgms(1)), b(SmallAgms(2));
  EXPECT_THROW(a.EstimateJoin(b), std::invalid_argument);
  EXPECT_THROW(a.Merge(b), std::invalid_argument);
  AgmsSketch c(SmallAgms(1, 32));
  EXPECT_THROW(a.EstimateJoin(c), std::invalid_argument);
}

TEST(AgmsTest, MedianOfMeansIsSane) {
  AgmsSketch sketch(SmallAgms(8, 64));
  for (int i = 0; i < 10; ++i) sketch.Update(3);
  EXPECT_DOUBLE_EQ(sketch.EstimateSelfJoinMedianOfMeans(8), 100.0);
  EXPECT_THROW(sketch.EstimateSelfJoinMedianOfMeans(0), std::invalid_argument);
  EXPECT_THROW(sketch.EstimateSelfJoinMedianOfMeans(100),
               std::invalid_argument);
}

TEST(AgmsTest, ZeroRowsThrows) {
  SketchParams p = SmallAgms(1, 0);
  EXPECT_THROW(AgmsSketch{p}, std::invalid_argument);
}

TEST(AgmsTest, CopyIsIndependent) {
  AgmsSketch a(SmallAgms(9));
  a.Update(1);
  AgmsSketch b = a;
  b.Update(2);
  EXPECT_NE(a.counters(), b.counters());
  EXPECT_TRUE(a.CompatibleWith(b));
}

// ---------------------------------------------------------------------------
// F-AGMS.
// ---------------------------------------------------------------------------

TEST(FagmsTest, SingleValueSelfJoinIsExact) {
  FagmsSketch sketch(SmallFagms(1));
  for (int i = 0; i < 9; ++i) sketch.Update(17);
  EXPECT_DOUBLE_EQ(sketch.EstimateSelfJoin(), 81.0);
}

TEST(FagmsTest, SelfJoinIsUnbiasedOverSeeds) {
  const FrequencyVector f = ZipfFrequencies(100, 2000, 1.0);
  const double truth = f.F2();
  const auto stream = f.ToTupleStream();
  RunningStats estimates;
  for (int rep = 0; rep < 300; ++rep) {
    // A single row: the row estimate is unbiased; medians of multiple rows
    // are only near-unbiased.
    estimates.Add(FagmsSelfJoinEstimate(stream, SmallFagms(MixSeed(11, rep))));
  }
  EXPECT_NEAR(estimates.Mean(), truth, 5.0 * estimates.StdError());
}

TEST(FagmsTest, JoinIsUnbiasedOverSeeds) {
  const FrequencyVector f = ZipfFrequencies(100, 1500, 0.5);
  const FrequencyVector g = ZipfFrequencies(100, 1500, 1.5);
  const double truth = ExactJoinSize(f, g);
  const auto sf = f.ToTupleStream();
  const auto sg = g.ToTupleStream();
  RunningStats estimates;
  for (int rep = 0; rep < 300; ++rep) {
    estimates.Add(FagmsJoinEstimate(sf, sg, SmallFagms(MixSeed(12, rep))));
  }
  EXPECT_NEAR(estimates.Mean(), truth, 5.0 * estimates.StdError());
}

TEST(FagmsTest, MoreBucketsGiveSmallerError) {
  const FrequencyVector f = ZipfFrequencies(500, 5000, 0.6);
  const double truth = f.F2();
  const auto stream = f.ToTupleStream();
  auto mean_err = [&](size_t buckets) {
    std::vector<double> estimates;
    for (int rep = 0; rep < 60; ++rep) {
      estimates.push_back(FagmsSelfJoinEstimate(
          stream, SmallFagms(MixSeed(13, rep), 1, buckets)));
    }
    return SummarizeErrors(estimates, truth).mean_error;
  };
  EXPECT_LT(mean_err(1024), mean_err(16));
}

TEST(FagmsTest, PointQueryRecoversHeavyHitter) {
  FagmsSketch sketch(SmallFagms(2, 5, 512));
  for (int i = 0; i < 1000; ++i) sketch.Update(7);
  for (uint64_t v = 100; v < 200; ++v) sketch.Update(v);
  EXPECT_NEAR(sketch.EstimateFrequency(7), 1000.0, 60.0);
}

TEST(FagmsTest, MergeEqualsConcatenatedStream) {
  const SketchParams params = SmallFagms(3);
  FagmsSketch a(params), b(params), whole(params);
  for (uint64_t v = 0; v < 100; ++v) {
    (v % 3 == 0 ? a : b).Update(v);
    whole.Update(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.counters(), whole.counters());
}

TEST(FagmsTest, IncompatibleThrows) {
  FagmsSketch a(SmallFagms(1)), b(SmallFagms(2));
  EXPECT_THROW(a.EstimateJoin(b), std::invalid_argument);
  FagmsSketch c(SmallFagms(1, 1, 128));
  EXPECT_THROW(a.Merge(c), std::invalid_argument);
}

TEST(FagmsTest, InvalidShapeThrows) {
  SketchParams p = SmallFagms(1, 0, 10);
  EXPECT_THROW(FagmsSketch{p}, std::invalid_argument);
  SketchParams q = SmallFagms(1, 1, 0);
  EXPECT_THROW(FagmsSketch{q}, std::invalid_argument);
}

TEST(FagmsTest, RowEstimatesHaveRowCount) {
  FagmsSketch sketch(SmallFagms(4, 7, 64));
  sketch.Update(1);
  EXPECT_EQ(sketch.SelfJoinRowEstimates().size(), 7u);
  // Footprint covers counters plus the per-row hash and ξ state.
  EXPECT_GT(sketch.MemoryBytes(), 7u * 64u * sizeof(double));
}

// ---------------------------------------------------------------------------
// Count-Min.
// ---------------------------------------------------------------------------

TEST(CountMinTest, PointQueryNeverUnderestimates) {
  SketchParams p;
  p.rows = 3;
  p.buckets = 64;
  p.seed = 5;
  CountMinSketch sketch(p);
  const FrequencyVector f = ZipfFrequencies(200, 2000, 1.0);
  for (uint64_t key : f.ToTupleStream()) sketch.Update(key);
  for (size_t v = 0; v < 50; ++v) {
    EXPECT_GE(sketch.EstimateFrequency(v) + 1e-9,
              static_cast<double>(f.count(v)));
  }
}

TEST(CountMinTest, JoinAndSelfJoinNeverUnderestimate) {
  SketchParams p;
  p.rows = 3;
  p.buckets = 128;
  p.seed = 6;
  const FrequencyVector f = ZipfFrequencies(300, 3000, 0.8);
  const FrequencyVector g = ZipfFrequencies(300, 3000, 1.2);
  CountMinSketch a(p), b(p);
  for (uint64_t key : f.ToTupleStream()) a.Update(key);
  for (uint64_t key : g.ToTupleStream()) b.Update(key);
  EXPECT_GE(a.EstimateSelfJoin() + 1e-6, f.F2());
  EXPECT_GE(a.EstimateJoin(b) + 1e-6, ExactJoinSize(f, g));
}

TEST(CountMinTest, MergeAndCompatibility) {
  SketchParams p;
  p.rows = 2;
  p.buckets = 32;
  p.seed = 7;
  CountMinSketch a(p), b(p);
  a.Update(1);
  b.Update(1);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateFrequency(1), 2.0);
  SketchParams q = p;
  q.seed = 8;
  CountMinSketch c(q);
  EXPECT_THROW(a.Merge(c), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FastCount.
// ---------------------------------------------------------------------------

TEST(FastCountTest, NeedsTwoBuckets) {
  SketchParams p;
  p.rows = 1;
  p.buckets = 1;
  EXPECT_THROW(FastCountSketch{p}, std::invalid_argument);
}

TEST(FastCountTest, SelfJoinIsUnbiasedOverSeeds) {
  const FrequencyVector f = ZipfFrequencies(100, 2000, 1.0);
  const double truth = f.F2();
  const auto stream = f.ToTupleStream();
  RunningStats estimates;
  for (int rep = 0; rep < 300; ++rep) {
    SketchParams p;
    p.rows = 1;
    p.buckets = 128;
    p.seed = MixSeed(21, rep);
    FastCountSketch sketch(p);
    for (uint64_t key : stream) sketch.Update(key);
    estimates.Add(sketch.EstimateSelfJoin());
  }
  EXPECT_NEAR(estimates.Mean(), truth, 5.0 * estimates.StdError());
}

TEST(FastCountTest, JoinIsUnbiasedOverSeeds) {
  const FrequencyVector f = ZipfFrequencies(100, 1000, 0.7);
  const FrequencyVector g = ZipfFrequencies(100, 1200, 1.1);
  const double truth = ExactJoinSize(f, g);
  const auto sf = f.ToTupleStream();
  const auto sg = g.ToTupleStream();
  RunningStats estimates;
  for (int rep = 0; rep < 300; ++rep) {
    SketchParams p;
    p.rows = 1;
    p.buckets = 128;
    p.seed = MixSeed(22, rep);
    FastCountSketch a(p), b(p);
    for (uint64_t key : sf) a.Update(key);
    for (uint64_t key : sg) b.Update(key);
    estimates.Add(a.EstimateJoin(b));
  }
  EXPECT_NEAR(estimates.Mean(), truth, 5.0 * estimates.StdError());
}

TEST(FastCountTest, SingleDistinctValueIsExact) {
  SketchParams p;
  p.rows = 1;
  p.buckets = 16;
  p.seed = 9;
  FastCountSketch sketch(p);
  for (int i = 0; i < 12; ++i) sketch.Update(3);
  // One bucket holds 12: (16·144 − 144)/15 = 144.
  EXPECT_DOUBLE_EQ(sketch.EstimateSelfJoin(), 144.0);
}

}  // namespace
}  // namespace sketchsample

// Appended coverage: conservative Count-Min updates.
namespace sketchsample {
namespace {

TEST(CountMinTest, ConservativeUpdateNeverUnderestimates) {
  SketchParams p;
  p.rows = 3;
  p.buckets = 64;
  p.seed = 31;
  CountMinSketch sketch(p);
  const FrequencyVector f = ZipfFrequencies(200, 2000, 1.0);
  for (uint64_t key : f.ToTupleStream()) sketch.UpdateConservative(key);
  for (size_t v = 0; v < 50; ++v) {
    EXPECT_GE(sketch.EstimateFrequency(v) + 1e-9,
              static_cast<double>(f.count(v)));
  }
}

TEST(CountMinTest, ConservativeBeatsPlainOnPointQueries) {
  SketchParams p;
  p.rows = 3;
  p.buckets = 64;  // deliberately tight: collisions everywhere
  p.seed = 32;
  const FrequencyVector f = ZipfFrequencies(500, 5000, 1.2);
  CountMinSketch plain(p), conservative(p);
  for (uint64_t key : f.ToTupleStream()) {
    plain.Update(key);
    conservative.UpdateConservative(key);
  }
  double plain_err = 0, conservative_err = 0;
  for (size_t v = 0; v < 200; ++v) {
    const double truth = static_cast<double>(f.count(v));
    plain_err += plain.EstimateFrequency(v) - truth;
    conservative_err += conservative.EstimateFrequency(v) - truth;
  }
  EXPECT_LT(conservative_err, plain_err);
}

TEST(CountMinTest, ConservativeRejectsDeletions) {
  SketchParams p;
  p.rows = 2;
  p.buckets = 16;
  CountMinSketch sketch(p);
  EXPECT_THROW(sketch.UpdateConservative(1, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace sketchsample
