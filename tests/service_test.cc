// In-process end-to-end tests for the query-serving sketch service
// (src/service/service.h): router dispatch, ingest parsing, bit-exact
// online-vs-offline responses through the shared builders, error paths,
// kill-and-resume, and queries racing live ingest (the racing test runs
// under the `tsan` ctest label).
//
// No sockets here — requests go straight through Router::Dispatch, which is
// the exact code path the HTTP server drives; the socket layer itself is
// covered by tests/http_test.cc and the service-smoke CI job.

// lint:allow-file(raw-atomic-confined): stop flags coordinating real
// query/ingest threads in the racing end-to-end test; harness-side only.
#include "src/service/service.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/service/router.h"
#include "src/sketch/serialize.h"
#include "src/stream/checkpoint.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

constexpr uint64_t kSketchSeed = 33;
constexpr uint64_t kRootSeed = 42;

std::vector<uint64_t> MakeStream(size_t n, uint64_t seed, uint64_t domain) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(rng() % domain);
  return out;
}

SketchServiceOptions SmallOptions() {
  SketchServiceOptions options;
  options.sketch.rows = 3;
  options.sketch.buckets = 128;
  options.sketch.seed = kSketchSeed;
  options.engine.shards = 2;
  options.engine.shed_p = 0.5;
  options.engine.seed = kRootSeed;
  options.engine.chunk_tuples = 512;
  options.engine.distinct_k = 64;
  options.engine.quantile_k = 64;
  options.engine.subpop_k = 32;
  options.snapshot_every = 2048;
  options.max_readers = 8;
  return options;
}

HttpRequest Get(const std::string& path,
                std::vector<std::pair<std::string, std::string>> query = {}) {
  HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.query = std::move(query);
  return request;
}

HttpRequest Post(const std::string& path, std::string body = {}) {
  HttpRequest request;
  request.method = "POST";
  request.path = path;
  request.body = std::move(body);
  return request;
}

// Runs the whole lifecycle: push `stream` in `batch`-sized chunks, close,
// wait for the ingest thread to drain.
void RunToCompletion(SketchService& service, const std::vector<uint64_t>& stream,
                     size_t batch) {
  service.Start();
  for (size_t i = 0; i < stream.size(); i += batch) {
    const size_t n = std::min(batch, stream.size() - i);
    ASSERT_EQ(service.Push(stream.data() + i, n), n);
  }
  service.CloseIngest();
  while (!service.ingest_done()) {
    std::this_thread::yield();
  }
  ASSERT_EQ(service.ingest_error(), "");
}

// The query-endpoint bodies as served, for byte comparison.
struct QueryBodies {
  std::string selfjoin;
  std::string point;
  std::string distinct;
  std::string quantile;
  std::string subpop;
  std::string stats_snapshot;
};

QueryBodies CollectBodies(const Router& router, const RequestContext& context) {
  QueryBodies bodies;
  HttpResponse response = router.Dispatch(Get("/query/selfjoin"), context);
  EXPECT_EQ(response.status, 200);
  bodies.selfjoin = response.body;
  response = router.Dispatch(Get("/query/point", {{"key", "7"}}), context);
  EXPECT_EQ(response.status, 200);
  bodies.point = response.body;
  response = router.Dispatch(Get("/query/distinct"), context);
  EXPECT_EQ(response.status, 200);
  bodies.distinct = response.body;
  response = router.Dispatch(Get("/query/quantile", {{"q", "0.9"}}), context);
  EXPECT_EQ(response.status, 200);
  bodies.quantile = response.body;
  response =
      router.Dispatch(Get("/query/subpop", {{"filter", "mod:7-3"}}), context);
  EXPECT_EQ(response.status, 200);
  bodies.subpop = response.body;
  response = router.Dispatch(Get("/stats"), context);
  EXPECT_EQ(response.status, 200);
  bodies.stats_snapshot = response.body;
  return bodies;
}

TEST(ServiceRouterTest, UnknownPathIs404KnownPathWrongMethodIs405) {
  SketchService service(SmallOptions());
  Router router;
  service.Register(router);
  RequestContext context;

  EXPECT_EQ(router.Dispatch(Get("/nope"), context).status, 404);
  EXPECT_EQ(router.Dispatch(Post("/query/selfjoin"), context).status, 405);
  EXPECT_EQ(router.Dispatch(Get("/ingest"), context).status, 405);
  EXPECT_EQ(router.Dispatch(Get("/healthz"), context).status, 200);
}

TEST(ServiceOptionsTest, BadLevelAndIncompatibleJoinSketchThrow) {
  SketchServiceOptions bad_level = SmallOptions();
  bad_level.default_level = 1.0;
  EXPECT_THROW(SketchService{bad_level}, std::invalid_argument);

  SketchServiceOptions bad_join = SmallOptions();
  SketchParams other = bad_join.sketch;
  other.seed = kSketchSeed + 1;  // shape matches, seed does not
  bad_join.join_sketch = SerializeSketch(FagmsSketch(other));
  EXPECT_THROW(SketchService{bad_join}, std::invalid_argument);
}

TEST(ServiceIngestTest, ParsesBodyStrictlyAndAtomically) {
  SketchService service(SmallOptions());
  Router router;
  service.Register(router);
  RequestContext context;
  service.Start();

  HttpResponse ok = router.Dispatch(Post("/ingest", " 1 2\t3\r\n4\n"), context);
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(service.pushed(), 4u);

  // A malformed batch must reject without pushing anything.
  HttpResponse bad = router.Dispatch(Post("/ingest", "5 6 x7 8"), context);
  EXPECT_EQ(bad.status, 400);
  EXPECT_EQ(service.pushed(), 4u);
  HttpResponse negative = router.Dispatch(Post("/ingest", "-3"), context);
  EXPECT_EQ(negative.status, 400);
  HttpResponse overflow =
      router.Dispatch(Post("/ingest", "99999999999999999999999"), context);
  EXPECT_EQ(overflow.status, 400);
  EXPECT_EQ(service.pushed(), 4u);

  // Close via the endpoint; further ingest posts answer 409.
  HttpResponse close = router.Dispatch(Post("/ingest/close"), context);
  EXPECT_EQ(close.status, 200);
  EXPECT_EQ(router.Dispatch(Post("/ingest", "9"), context).status, 409);
  service.Stop();
}

TEST(ServiceQueryTest, ErrorPathsAnswerTypedStatuses) {
  SketchServiceOptions options = SmallOptions();
  options.engine.distinct_k = 0;   // distinct endpoint disabled
  options.engine.quantile_k = 0;   // quantile endpoint disabled
  options.engine.subpop_k = 0;     // subpop endpoint disabled
  SketchService service(options);
  Router router;
  service.Register(router);
  RequestContext context;

  // Queries answer from the initial empty snapshot before ingest starts.
  EXPECT_EQ(router.Dispatch(Get("/query/selfjoin"), context).status, 200);
  // Point query key validation.
  EXPECT_EQ(router.Dispatch(Get("/query/point"), context).status, 400);
  EXPECT_EQ(
      router.Dispatch(Get("/query/point", {{"key", "12x"}}), context).status,
      400);
  // Level validation: must be a finite number in (0, 1).
  for (const char* level : {"0", "1", "1.5", "-0.5", "nan", "abc", ""}) {
    EXPECT_EQ(router
                  .Dispatch(Get("/query/selfjoin", {{"level", level}}), context)
                  .status,
              400)
        << "level=" << level;
  }
  // No reference sketch configured.
  EXPECT_EQ(router.Dispatch(Get("/query/join"), context).status, 400);
  // Distinct counting, quantiles, subpopulations all disabled.
  EXPECT_EQ(router.Dispatch(Get("/query/distinct"), context).status, 400);
  const HttpResponse quantile =
      router.Dispatch(Get("/query/quantile", {{"q", "0.5"}}), context);
  EXPECT_EQ(quantile.status, 400);
  EXPECT_NE(quantile.body.find("quantile queries disabled"),
            std::string::npos);
  const HttpResponse subpop =
      router.Dispatch(Get("/query/subpop", {{"filter", "mod:2-1"}}), context);
  EXPECT_EQ(subpop.status, 400);
  EXPECT_NE(subpop.body.find("subpopulation queries disabled"),
            std::string::npos);
}

// Every malformed quantile/subpop parameter is a typed 400 from the
// parameter validators — never a 500, never a crash, never a partial
// answer. The predicate grammar failures come out of ParseSubpopFilter
// with its message passed through verbatim.
TEST(ServiceQueryTest, HostileQuantileAndSubpopParamsAnswer400) {
  SketchService service(SmallOptions());
  Router router;
  service.Register(router);
  RequestContext context;

  // Missing and malformed ranks.
  EXPECT_EQ(router.Dispatch(Get("/query/quantile"), context).status, 400);
  for (const char* q :
       {"1.5", "-0.1", "abc", "nan", "inf", "", "0.5x", "0..5"}) {
    EXPECT_EQ(
        router.Dispatch(Get("/query/quantile", {{"q", q}}), context).status,
        400)
        << "q=" << q;
  }
  // Boundary ranks are legal.
  EXPECT_EQ(router.Dispatch(Get("/query/quantile", {{"q", "0"}}), context)
                .status,
            200);
  EXPECT_EQ(router.Dispatch(Get("/query/quantile", {{"q", "1"}}), context)
                .status,
            200);

  // Missing and malformed filters.
  EXPECT_EQ(router.Dispatch(Get("/query/subpop"), context).status, 400);
  for (const char* filter :
       {"garbage", "mod:0-0", "mod:5-5", "range:9-2", "mask:3-4", "mod:5",
        "between:1-2", "range:a-b", "mod:-1-0", "range:1-2-3x", ""}) {
    EXPECT_EQ(router.Dispatch(Get("/query/subpop", {{"filter", filter}}),
                              context)
                  .status,
              400)
        << "filter=" << filter;
  }
  // All three predicate kinds parse and answer.
  for (const char* filter : {"range:10-20", "mod:7-3", "mask:255-129"}) {
    EXPECT_EQ(router.Dispatch(Get("/query/subpop", {{"filter", filter}}),
                              context)
                  .status,
              200)
        << "filter=" << filter;
  }
}

TEST(ServiceQueryTest, ResponsesComeFromTheSharedBuilders) {
  SketchService service(SmallOptions());
  Router router;
  service.Register(router);
  RequestContext context;
  const std::vector<uint64_t> stream = MakeStream(20000, 7, 500);
  RunToCompletion(service, stream, 4096);

  // Reader slot distinct from the dispatch context's slot 0.
  auto guard = service.registry().Read(1);
  ASSERT_TRUE(guard);
  EXPECT_EQ(guard->position, stream.size());

  const double level = service.options().default_level;
  HttpResponse selfjoin = router.Dispatch(Get("/query/selfjoin"), context);
  EXPECT_EQ(selfjoin.body,
            SelfJoinResponseJson(*guard, std::nullopt, level).Dump() + "\n");
  HttpResponse point =
      router.Dispatch(Get("/query/point", {{"key", "123"}}), context);
  EXPECT_EQ(point.body,
            PointResponseJson(*guard, 123, std::nullopt, level).Dump() + "\n");
  HttpResponse distinct = router.Dispatch(Get("/query/distinct"), context);
  EXPECT_EQ(distinct.body, DistinctResponseJson(*guard, level).Dump() + "\n");
  HttpResponse quantile =
      router.Dispatch(Get("/query/quantile", {{"q", "0.5"}}), context);
  EXPECT_EQ(quantile.body,
            QuantileResponseJson(*guard, 0.5, level).Dump() + "\n");
  HttpResponse subpop =
      router.Dispatch(Get("/query/subpop", {{"filter", "mod:7-3"}}), context);
  EXPECT_EQ(subpop.body,
            SubpopResponseJson(*guard, ParseSubpopFilter("mod:7-3"), level)
                    .Dump() +
                "\n");

  // ?level= flows through to the interval.
  HttpResponse wide =
      router.Dispatch(Get("/query/selfjoin", {{"level", "0.5"}}), context);
  EXPECT_EQ(wide.body,
            SelfJoinResponseJson(*guard, std::nullopt, 0.5).Dump() + "\n");
  EXPECT_NE(wide.body, selfjoin.body);
}

TEST(ServiceQueryTest, JoinEndpointUsesTheReferenceSketch) {
  SketchServiceOptions options = SmallOptions();
  FagmsSketch reference(options.sketch);
  const std::vector<uint64_t> other = MakeStream(5000, 11, 500);
  reference.UpdateBatch(other);
  options.join_sketch = SerializeSketch(reference);

  SketchService service(options);
  Router router;
  service.Register(router);
  RequestContext context;
  const std::vector<uint64_t> stream = MakeStream(20000, 7, 500);
  RunToCompletion(service, stream, 4096);

  auto guard = service.registry().Read(1);
  ASSERT_TRUE(guard);
  HttpResponse join = router.Dispatch(Get("/query/join"), context);
  EXPECT_EQ(join.status, 200);
  EXPECT_EQ(join.body,
            JoinResponseJson(*guard, reference, std::nullopt, std::nullopt,
                             options.default_level)
                    .Dump() +
                "\n");
}

// The bit-exactness contract the service-smoke CI job holds over HTTP:
// the same (configuration, stream) must produce byte-identical query
// responses no matter how the producer chunked its pushes.
TEST(ServiceDeterminismTest, ResponsesAreBitExactAcrossPushChunkings) {
  const std::vector<uint64_t> stream = MakeStream(30000, 13, 1000);

  QueryBodies bodies[2];
  const size_t batches[2] = {30000, 777};  // one big push vs ragged pushes
  for (int run = 0; run < 2; ++run) {
    SketchService service(SmallOptions());
    Router router;
    service.Register(router);
    RequestContext context;
    RunToCompletion(service, stream, batches[run]);
    bodies[run] = CollectBodies(router, context);
  }
  EXPECT_EQ(bodies[0].selfjoin, bodies[1].selfjoin);
  EXPECT_EQ(bodies[0].point, bodies[1].point);
  EXPECT_EQ(bodies[0].distinct, bodies[1].distinct);
  EXPECT_EQ(bodies[0].quantile, bodies[1].quantile);
  EXPECT_EQ(bodies[0].subpop, bodies[1].subpop);
}

TEST(ServiceDeterminismTest, ShardCountDoesNotChangeResponses) {
  const std::vector<uint64_t> stream = MakeStream(30000, 13, 1000);
  QueryBodies bodies[2];
  const size_t shard_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    SketchServiceOptions options = SmallOptions();
    options.engine.shards = shard_counts[run];
    SketchService service(options);
    Router router;
    service.Register(router);
    RequestContext context;
    RunToCompletion(service, stream, 4096);
    bodies[run] = CollectBodies(router, context);
  }
  EXPECT_EQ(bodies[0].selfjoin, bodies[1].selfjoin);
  EXPECT_EQ(bodies[0].point, bodies[1].point);
  EXPECT_EQ(bodies[0].distinct, bodies[1].distinct);
  EXPECT_EQ(bodies[0].quantile, bodies[1].quantile);
  EXPECT_EQ(bodies[0].subpop, bodies[1].subpop);
}

// Kill-and-resume: checkpoint mid-stream, build a fresh service from the
// checkpoint, re-push the stream from the beginning (restore fast-forwards
// past the prefix), and require the resumed responses to match an
// uninterrupted run byte-for-byte — modulo the `sequence` field, which is a
// per-process publication counter.
TEST(ServiceResumeTest, ResumedServiceMatchesUninterruptedRun) {
  const std::vector<uint64_t> stream = MakeStream(30000, 19, 1000);

  // Uninterrupted reference run.
  SketchService reference(SmallOptions());
  {
    Router router;
    reference.Register(router);
    RunToCompletion(reference, stream, 4096);
  }

  // Checkpointing run, stopped early by max_tuples (the in-process stand-in
  // for kill -9: the engine simply never sees the rest of the stream).
  LatestCheckpointSink sink;
  SketchServiceOptions first = SmallOptions();
  first.engine.checkpoint_sink = &sink;
  first.engine.checkpoint_every = 4096;
  first.engine.max_tuples = 20000;
  SketchService interrupted(first);
  {
    Router router;
    interrupted.Register(router);
    RunToCompletion(interrupted, stream, 4096);
  }
  ASSERT_GT(sink.writes(), 0u);
  ASSERT_GT(sink.source_tuples(), 0u);
  ASSERT_LT(sink.source_tuples(), stream.size());

  // Resumed run: fresh service, restore, re-push from the beginning.
  SketchServiceOptions second = SmallOptions();
  second.resume = sink.bytes();
  SketchService resumed(second);
  Router router;
  resumed.Register(router);
  RunToCompletion(resumed, stream, 4096);

  auto ref_guard = reference.registry().Read(1);
  auto res_guard = resumed.registry().Read(1);
  ASSERT_TRUE(ref_guard);
  ASSERT_TRUE(res_guard);
  EXPECT_EQ(res_guard->position, stream.size());
  EXPECT_EQ(res_guard->kept, ref_guard->kept);

  // Compare through the builders with the sequence pinned, exactly how the
  // smoke script compares (it filters "sequence" before diffing).
  ServiceSnapshot ref_view = *ref_guard;
  ServiceSnapshot res_view = *res_guard;
  ref_view.sequence = 0;
  res_view.sequence = 0;
  EXPECT_EQ(SelfJoinResponseJson(ref_view, std::nullopt, 0.95).Dump(),
            SelfJoinResponseJson(res_view, std::nullopt, 0.95).Dump());
  EXPECT_EQ(PointResponseJson(ref_view, 7, std::nullopt, 0.95).Dump(),
            PointResponseJson(res_view, 7, std::nullopt, 0.95).Dump());
  EXPECT_EQ(DistinctResponseJson(ref_view, 0.95).Dump(),
            DistinctResponseJson(res_view, 0.95).Dump());
  // The checkpoint carried the KLL and keyed-KMV state (flag bit 4), so
  // the resumed quantile/subpop answers must be byte-identical too.
  EXPECT_EQ(QuantileResponseJson(ref_view, 0.9, 0.95).Dump(),
            QuantileResponseJson(res_view, 0.9, 0.95).Dump());
  const SubpopPredicate pred = ParseSubpopFilter("mod:7-3");
  EXPECT_EQ(SubpopResponseJson(ref_view, pred, 0.95).Dump(),
            SubpopResponseJson(res_view, pred, 0.95).Dump());
}

TEST(ServiceStatsTest, StatsTrackIngestAndQueryCounters) {
  SketchService service(SmallOptions());
  Router router;
  service.Register(router);
  RequestContext context;
  const std::vector<uint64_t> stream = MakeStream(10000, 5, 200);
  RunToCompletion(service, stream, 2048);

  router.Dispatch(Get("/query/selfjoin"), context);
  router.Dispatch(Get("/query/selfjoin"), context);
  router.Dispatch(Get("/query/distinct"), context);
  for (const char* q : {"0.1", "0.5", "0.9"}) {
    router.Dispatch(Get("/query/quantile", {{"q", q}}), context);
  }
  router.Dispatch(Get("/query/subpop", {{"filter", "mod:4-0"}}), context);
  // Rejected queries must not bump the served counters.
  router.Dispatch(Get("/query/quantile", {{"q", "2"}}), context);
  router.Dispatch(Get("/query/subpop", {{"filter", "bogus"}}), context);

  HttpResponse stats = router.Dispatch(Get("/stats"), context);
  ASSERT_EQ(stats.status, 200);
  const std::optional<JsonValue> body = JsonValue::Parse(stats.body);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->GetNumber("pushed"), 10000.0);
  EXPECT_FALSE(body->Get("ingest_open")->AsBool());
  EXPECT_TRUE(body->Get("ingest_done")->AsBool());
  EXPECT_EQ(body->Get("queries")->GetNumber("selfjoin"), 2.0);
  EXPECT_EQ(body->Get("queries")->GetNumber("distinct"), 1.0);
  EXPECT_EQ(body->Get("queries")->GetNumber("quantile"), 3.0);
  EXPECT_EQ(body->Get("queries")->GetNumber("subpop"), 1.0);
  const JsonValue* snapshot = body->Get("snapshot");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->GetNumber("position"), 10000.0);
  EXPECT_TRUE(snapshot->Get("distinct_enabled")->AsBool());
  EXPECT_TRUE(snapshot->Get("quantile_enabled")->AsBool());
  EXPECT_TRUE(snapshot->Get("subpop_enabled")->AsBool());
}

// Queries racing live ingest: every response must be internally consistent
// (kept <= position <= total pushed, 200 status, parseable JSON). Runs
// under TSan via the `tsan` ctest label; torn snapshots or a query touching
// the write path would be flagged there.
TEST(ServiceConcurrencyTest, QueriesRacingIngestSeeOnlyConsistentSnapshots) {
  SketchServiceOptions options = SmallOptions();
  options.snapshot_every = 512;  // force frequent rollover under the race
  SketchService service(options);
  Router router;
  service.Register(router);
  service.Start();

  const std::vector<uint64_t> stream = MakeStream(60000, 23, 1000);
  constexpr size_t kReaders = 3;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      RequestContext context;
      context.reader_slot = r;
      uint64_t last_position = 0;
      while (!stop.load(std::memory_order_acquire)) {
        HttpResponse response =
            router.Dispatch(Get(r % 2 == 0 ? "/query/selfjoin"
                                           : "/query/distinct"),
                            context);
        ASSERT_EQ(response.status, 200);
        const std::optional<JsonValue> body = JsonValue::Parse(response.body);
        ASSERT_TRUE(body.has_value());
        const double position = body->GetNumber("position").value();
        const double kept = body->GetNumber("kept").value();
        ASSERT_GE(position, 0.0);
        ASSERT_LE(kept, position);
        ASSERT_LE(position, static_cast<double>(stream.size()));
        // Snapshots a single reader observes advance monotonically.
        ASSERT_GE(position, static_cast<double>(last_position));
        last_position = static_cast<uint64_t>(position);
      }
    });
  }

  for (size_t i = 0; i < stream.size(); i += 1024) {
    const size_t n = std::min<size_t>(1024, stream.size() - i);
    ASSERT_EQ(service.Push(stream.data() + i, n), n);
  }
  service.CloseIngest();
  while (!service.ingest_done()) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ASSERT_EQ(service.ingest_error(), "");
  RequestContext context;
  context.reader_slot = kReaders;
  HttpResponse final_response =
      router.Dispatch(Get("/query/selfjoin"), context);
  const std::optional<JsonValue> body = JsonValue::Parse(final_response.body);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->GetNumber("position"), static_cast<double>(stream.size()));
}

}  // namespace
}  // namespace sketchsample
