// Litmus tests for the model checker itself (src/mc/): known outcomes of
// the C++ memory model, checked both ways — the checker must find the
// violating schedule when the model permits one, and must NOT invent one
// when the model forbids it. This is the checker's own correctness suite;
// the production-protocol specs live in mc_spec_test.cc.
//
// Shared state lives on the spec body's stack (model thread 0) and is
// captured by reference: the scheduler unwinds threads in reverse spawn
// order, so borrowing fibers die before the owning frame does, and an
// aborted run leaks nothing (the sanitizers CI job runs this binary under
// ASan with leak detection on).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/mc/mc.h"

namespace sketchsample::mc {
namespace {

// ---------------------------------------------------------------------------
// Message passing: data = 1; flag.store(release) || if (flag.load(acquire))
// assert(data == 1). The canonical acquire/release pattern — must pass.
TEST(McModelTest, MessagePassingAcqRelPasses) {
  Result r = Explore([](Env& env) {
    atomic<int> flag(0, "flag");
    var<int> data(0, "data");
    env.Spawn([&] {
      data.Store(1);
      flag.store(1, MemOrder::kRelease);
    });
    env.Spawn([&] {
      if (flag.load(MemOrder::kAcquire) == 1) {
        MC_ASSERT(data.Read() == 1);
      }
    });
    env.Join();
  });
  EXPECT_FALSE(r.found) << r.report;
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.runs, 1u);  // multiple interleavings actually explored
}

// Same shape with a relaxed publish: the reader may observe flag == 1
// without the data write having happened-before — a data race the checker
// must detect.
TEST(McModelTest, MessagePassingRelaxedStoreRaces) {
  Result r = Explore([](Env& env) {
    atomic<int> flag(0, "flag");
    var<int> data(0, "data");
    env.Spawn([&] {
      data.Store(1);
      flag.store(1, MemOrder::kRelaxed);
    });
    env.Spawn([&] {
      if (flag.load(MemOrder::kAcquire) == 1) {
        (void)data.Read();
      }
    });
    env.Join();
  });
  EXPECT_TRUE(r.found);
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
  EXPECT_FALSE(r.report.empty());
}

// Relaxed acquire-side load races too: the value may be fresh while the
// happens-before edge is missing.
TEST(McModelTest, MessagePassingRelaxedLoadRaces) {
  Result r = Explore([](Env& env) {
    atomic<int> flag(0, "flag");
    var<int> data(0, "data");
    env.Spawn([&] {
      data.Store(1);
      flag.store(1, MemOrder::kRelease);
    });
    env.Spawn([&] {
      if (flag.load(MemOrder::kRelaxed) == 1) {
        (void)data.Read();
      }
    });
    env.Join();
  });
  EXPECT_TRUE(r.found);
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
}

// ---------------------------------------------------------------------------
// Store buffering: x.store(1); r1 = y.load() || y.store(1); r2 = x.load().
// With seq_cst everywhere r1 == 0 && r2 == 0 is forbidden; with relaxed
// ops the outcome is allowed and the checker must exhibit it.
TEST(McModelTest, StoreBufferingSeqCstForbidsZeroZero) {
  Result r = Explore([](Env& env) {
    atomic<int> x(0, "x");
    atomic<int> y(0, "y");
    var<int> r1(-1, "r1");
    var<int> r2(-1, "r2");
    env.Spawn([&] {
      x.store(1, MemOrder::kSeqCst);
      r1.Store(y.load(MemOrder::kSeqCst));
    });
    env.Spawn([&] {
      y.store(1, MemOrder::kSeqCst);
      r2.Store(x.load(MemOrder::kSeqCst));
    });
    env.Join();
    MC_ASSERT(!(r1.Read() == 0 && r2.Read() == 0));
  });
  EXPECT_FALSE(r.found) << r.report;
  EXPECT_TRUE(r.complete);
}

TEST(McModelTest, StoreBufferingRelaxedExhibitsZeroZero) {
  Result r = Explore([](Env& env) {
    atomic<int> x(0, "x");
    atomic<int> y(0, "y");
    var<int> r1(-1, "r1");
    var<int> r2(-1, "r2");
    env.Spawn([&] {
      x.store(1, MemOrder::kRelaxed);
      r1.Store(y.load(MemOrder::kRelaxed));
    });
    env.Spawn([&] {
      y.store(1, MemOrder::kRelaxed);
      r2.Store(x.load(MemOrder::kRelaxed));
    });
    env.Join();
    MC_ASSERT(!(r1.Read() == 0 && r2.Read() == 0));
  });
  EXPECT_TRUE(r.found);  // the weak outcome exists and must be found
}

// ---------------------------------------------------------------------------
// Coherence: a thread that read value 2 can never subsequently read the
// older value 1 of the same variable, at any order.
TEST(McModelTest, CoherenceNoReadBackwards) {
  Result r = Explore([](Env& env) {
    atomic<int> x(0, "x");
    env.Spawn([&] {
      x.store(1, MemOrder::kRelaxed);
      x.store(2, MemOrder::kRelaxed);
    });
    env.Spawn([&] {
      int a = x.load(MemOrder::kRelaxed);
      int b = x.load(MemOrder::kRelaxed);
      if (a == 2) MC_ASSERT(b == 2);
    });
    env.Join();
  });
  EXPECT_FALSE(r.found) << r.report;
  EXPECT_TRUE(r.complete);
}

// ---------------------------------------------------------------------------
// RMW atomicity: two concurrent fetch_adds may never both read the same
// old value — the sum is exact even fully relaxed.
TEST(McModelTest, RmwAtomicity) {
  Result r = Explore([](Env& env) {
    atomic<uint64_t> counter(0, "counter");
    env.Spawn([&] { counter.fetch_add(1, MemOrder::kRelaxed); });
    env.Spawn([&] { counter.fetch_add(1, MemOrder::kRelaxed); });
    env.Join();
    MC_ASSERT(counter.load(MemOrder::kRelaxed) == 2);
  });
  EXPECT_FALSE(r.found) << r.report;
  EXPECT_TRUE(r.complete);
}

// ---------------------------------------------------------------------------
// Fences: relaxed store + release fence / relaxed load + acquire fence is
// the fence-based message-passing idiom and must synchronize.
TEST(McModelTest, FenceMessagePassingPasses) {
  Result r = Explore([](Env& env) {
    atomic<int> flag(0, "flag");
    var<int> data(0, "data");
    env.Spawn([&] {
      data.Store(1);
      fence(MemOrder::kRelease);
      flag.store(1, MemOrder::kRelaxed);
    });
    env.Spawn([&] {
      if (flag.load(MemOrder::kRelaxed) == 1) {
        fence(MemOrder::kAcquire);
        MC_ASSERT(data.Read() == 1);
      }
    });
    env.Join();
  });
  EXPECT_FALSE(r.found) << r.report;
  EXPECT_TRUE(r.complete);
}

// Dropping the release fence reintroduces the race.
TEST(McModelTest, FenceMissingReleaseRaces) {
  Result r = Explore([](Env& env) {
    atomic<int> flag(0, "flag");
    var<int> data(0, "data");
    env.Spawn([&] {
      data.Store(1);
      flag.store(1, MemOrder::kRelaxed);
    });
    env.Spawn([&] {
      if (flag.load(MemOrder::kRelaxed) == 1) {
        fence(MemOrder::kAcquire);
        (void)data.Read();
      }
    });
    env.Join();
  });
  EXPECT_TRUE(r.found);
}

// ---------------------------------------------------------------------------
// Plain-plain race with no synchronization at all.
TEST(McModelTest, UnsynchronizedPlainWritesRace) {
  Result r = Explore([](Env& env) {
    var<int> data(0, "data");
    env.Spawn([&] { data.Store(1); });
    env.Spawn([&] { data.Store(2); });
    env.Join();
  });
  EXPECT_TRUE(r.found);
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
}

// ---------------------------------------------------------------------------
// DPOR cross-validation: partial-order reduction must reach the same
// verdict as full schedule branching, in no more runs.
// ---------------------------------------------------------------------------
// Hazard-pointer miniature, correctly fenced: reader announces its pointer
// and re-checks (both seq_cst), guard release is a release store; the
// writer retires then scans (seq_cst). The writer either sees the
// announcement or the reader saw the newer pointer — the canary is never
// poisoned while the reader can still read it. Must pass.
TEST(McModelTest, HazardPointerReleaseGuardPasses) {
  Result r = Explore([](Env& env) {
    atomic<int> current(1, "current");
    atomic<int> hazard(0, "hazard");
    var<int> canary(0, "canary");
    env.Spawn([&] {                              // writer
      current.store(2, MemOrder::kSeqCst);       // retire snapshot 1
      if (hazard.load(MemOrder::kSeqCst) != 1) {
        canary.Store(1);                         // reclaim (poison)
      }
    });
    env.Spawn([&] {                              // reader
      int p = current.load(MemOrder::kAcquire);
      if (p == 1) {
        hazard.store(p, MemOrder::kSeqCst);      // announce
        if (current.load(MemOrder::kSeqCst) == p) {
          (void)canary.Read();                   // use guarded snapshot
        }
        hazard.store(0, MemOrder::kRelease);     // guard release
      }
    });
    env.Join();
  });
  EXPECT_FALSE(r.found) << r.report;
  EXPECT_TRUE(r.complete);
}

// Same shape with the guard release weakened to relaxed: the writer's scan
// can read the relaxed null without synchronizing with the reader's canary
// read, so the poison write races with it. DPOR must find this under its
// default pruning — this is the regression for two exploration bugs: the
// seq_cst S-order edges must not feed DPOR's "already ordered" test (they
// would make every pair of seq_cst ops unreorderable), and the conflict
// with the last write must be judged before the load's acquire join (a
// load that reads-from a store is not thereby ordered after it for
// exploration purposes).
TEST(McModelTest, HazardPointerRelaxedGuardReleaseRaces) {
  auto spec = [](Env& env) {
    atomic<int> current(1, "current");
    atomic<int> hazard(0, "hazard");
    var<int> canary(0, "canary");
    env.Spawn([&] {
      current.store(2, MemOrder::kSeqCst);
      if (hazard.load(MemOrder::kSeqCst) != 1) {
        canary.Store(1);
      }
    });
    env.Spawn([&] {
      int p = current.load(MemOrder::kAcquire);
      if (p == 1) {
        hazard.store(p, MemOrder::kSeqCst);
        if (current.load(MemOrder::kSeqCst) == p) {
          (void)canary.Read();
        }
        hazard.store(0, MemOrder::kRelaxed);     // one notch too weak
      }
    });
    env.Join();
  };
  Result dpor = Explore(spec);
  EXPECT_TRUE(dpor.found) << "DPOR pruned the seq_cst reversal";
  EXPECT_NE(dpor.message.find("canary"), std::string::npos) << dpor.message;
  Options full_opts;
  full_opts.full_branching = true;
  Result full = Explore(spec, full_opts);
  EXPECT_TRUE(full.found);
}

TEST(McModelTest, DporMatchesFullBranchingVerdicts) {
  auto spec_pass = [](Env& env) {
    atomic<int> flag(0, "flag");
    var<int> data(0, "data");
    env.Spawn([&] {
      data.Store(1);
      flag.store(1, MemOrder::kRelease);
    });
    env.Spawn([&] {
      if (flag.load(MemOrder::kAcquire) == 1) MC_ASSERT(data.Read() == 1);
    });
    env.Join();
  };
  auto spec_fail = [](Env& env) {
    atomic<int> flag(0, "flag");
    var<int> data(0, "data");
    env.Spawn([&] {
      data.Store(1);
      flag.store(1, MemOrder::kRelaxed);
    });
    env.Spawn([&] {
      if (flag.load(MemOrder::kRelaxed) == 1) (void)data.Read();
    });
    env.Join();
  };

  Options dpor;
  Options full;
  full.full_branching = true;

  Result pass_dpor = Explore(spec_pass, dpor);
  Result pass_full = Explore(spec_pass, full);
  EXPECT_FALSE(pass_dpor.found) << pass_dpor.report;
  EXPECT_FALSE(pass_full.found) << pass_full.report;
  EXPECT_LE(pass_dpor.runs, pass_full.runs);

  Result fail_dpor = Explore(spec_fail, dpor);
  Result fail_full = Explore(spec_fail, full);
  EXPECT_TRUE(fail_dpor.found);
  EXPECT_TRUE(fail_full.found);
}

// ---------------------------------------------------------------------------
// Census: exploration reports every (var, op, declared order) site, which
// the mutation suite enumerates.
TEST(McModelTest, CensusReportsSites) {
  Result r = Explore([](Env& env) {
    atomic<int> flag(0, "flag");
    env.Spawn([&] { flag.store(1, MemOrder::kRelease); });
    env.Spawn([&] { (void)flag.load(MemOrder::kAcquire); });
    env.Join();
  });
  ASSERT_FALSE(r.found) << r.report;
  bool saw_store = false;
  bool saw_load = false;
  for (const CensusEntry& e : r.census) {
    if (e.var == "flag" && e.op == OpKind::kStore &&
        e.order == MemOrder::kRelease) {
      saw_store = true;
    }
    if (e.var == "flag" && e.op == OpKind::kLoad &&
        e.order == MemOrder::kAcquire) {
      saw_load = true;
    }
  }
  EXPECT_TRUE(saw_store);
  EXPECT_TRUE(saw_load);
}

// ---------------------------------------------------------------------------
// Mutation plumbing: weakening the release publish in the passing MP spec
// turns it into the racing one.
TEST(McModelTest, MutationWeakensOneSite) {
  auto spec = [](Env& env) {
    atomic<int> flag(0, "flag");
    var<int> data(0, "data");
    env.Spawn([&] {
      data.Store(1);
      flag.store(1, MemOrder::kRelease);
    });
    env.Spawn([&] {
      if (flag.load(MemOrder::kAcquire) == 1) (void)data.Read();
    });
    env.Join();
  };
  Result clean = Explore(spec);
  EXPECT_FALSE(clean.found) << clean.report;

  Mutation m{"flag", OpKind::kStore, MemOrder::kRelease};
  Options opts;
  opts.mutation = &m;
  Result mutated = Explore(spec, opts);
  EXPECT_TRUE(mutated.found);
}

}  // namespace
}  // namespace sketchsample::mc
