#!/usr/bin/env python3
"""Self-tests for tools/lint_invariants.py.

Each rule is exercised against synthetic sources laid out in a temp repo
root, both in its firing and its waived/clean configuration — the linter
gates CI, so the linter itself is under test (same policy as the bench
gate). Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))
import lint_invariants as lint  # noqa: E402


def make_source(path_rel, text, root):
    path = os.path.join(root, path_rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return lint.SourceFile.load(root, path_rel)


class StripTest(unittest.TestCase):
    def test_preserves_line_structure(self):
        text = 'int a; // rand()\nconst char* s = "std::random_device";\nint b;\n'
        stripped = lint.strip_comments_and_strings(text)
        self.assertEqual(text.count("\n"), stripped.count("\n"))
        self.assertNotIn("rand", stripped)
        self.assertNotIn("random_device", stripped)

    def test_block_comments_and_char_literals(self):
        text = "/* rand() \n rand() */ char c = '%';\n"
        stripped = lint.strip_comments_and_strings(text)
        self.assertNotIn("rand", stripped)
        self.assertNotIn("%", stripped)


class RulesTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="lint_test_")
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def violations(self, path_rel, text, check):
        return check(make_source(path_rel, text, self.root))

    # ---- forbidden-rng ----

    def test_forbidden_rng_fires(self):
        v = self.violations(
            "src/sampling/bad.cc",
            "int f() { return rand(); }\n",
            lint.check_forbidden_rng,
        )
        self.assertEqual([x.rule for x in v], ["forbidden-rng"])

    def test_forbidden_rng_random_device(self):
        v = self.violations(
            "src/core/bad.cc",
            "#include <random>\nstd::random_device rd;\n",
            lint.check_forbidden_rng,
        )
        self.assertTrue(v)

    def test_forbidden_rng_ignores_comments_and_home(self):
        self.assertFalse(
            self.violations(
                "src/core/ok.cc",
                "// rand() is banned here\nint x;\n",
                lint.check_forbidden_rng,
            )
        )
        self.assertFalse(
            self.violations(
                "src/util/rng.h",
                "int seed() { return rand(); }\n",  # home file is exempt
                lint.check_forbidden_rng,
            )
        )

    def test_forbidden_rng_does_not_flag_suffix_identifiers(self):
        self.assertFalse(
            self.violations(
                "src/core/ok2.cc",
                "int expand(int x) { return do_expand(x); }\n"
                "double integrand(double t);\n",
                lint.check_forbidden_rng,
            )
        )

    # ---- hot-path-std-function ----

    def test_hot_path_std_function_fires_and_waives(self):
        bad = "#include <functional>\nstd::function<void()> cb;\n"
        v = self.violations(
            "src/sketch/bad.h", bad, lint.check_hot_path_std_function
        )
        self.assertEqual([x.rule for x in v], ["hot-path-std-function"])

        waived = (
            "#include <functional>\n"
            "// lint:allow(hot-path-std-function): invoked once per chunk\n"
            "std::function<void()> cb;\n"
        )
        self.assertFalse(
            self.violations(
                "src/sketch/ok.h", waived, lint.check_hot_path_std_function
            )
        )

    def test_hot_path_rule_ignores_cold_layers(self):
        self.assertFalse(
            self.violations(
                "src/core/ok.cc",
                "#include <functional>\nstd::function<void()> cb;\n",
                lint.check_hot_path_std_function,
            )
        )

    # ---- batch-kernel-modulo ----

    def test_batch_modulo_fires_inside_batch_kernel_only(self):
        text = (
            "void SignBatch(const uint64_t* k, size_t n, uint64_t* out) {\n"
            "  for (size_t i = 0; i < n; ++i) out[i] = k[i] % 7;\n"
            "}\n"
            "uint64_t Scalar(uint64_t k) { return k % 7; }\n"
        )
        v = self.violations(
            "src/prng/bad.cc", text, lint.check_batch_kernel_modulo
        )
        self.assertEqual(len(v), 1)
        self.assertEqual(v[0].rule, "batch-kernel-modulo")

    def test_batch_modulo_ignores_declarations_and_strings(self):
        text = (
            "void SignBatch(const uint64_t* k, size_t n, uint64_t* out);\n"
            'void BucketBatch() { printf("100%%\\n"); }\n'
        )
        self.assertFalse(
            self.violations(
                "src/prng/ok.cc", text, lint.check_batch_kernel_modulo
            )
        )

    # ---- mutator-metrics ----

    def test_mutator_metrics_fires(self):
        text = "void FooSketch::Update(uint64_t k) { table_[k] += 1; }\n"
        v = self.violations(
            "src/sketch/foo.cc", text, lint.check_mutator_metrics
        )
        self.assertEqual([x.rule for x in v], ["mutator-metrics"])

    def test_mutator_metrics_accepts_hook_and_forwarders(self):
        hooked = (
            "void FooSketch::Update(uint64_t k) {\n"
            '  SKETCHSAMPLE_METRIC_INC("sketch.foo.updates");\n'
            "  table_[k] += 1;\n"
            "}\n"
        )
        self.assertFalse(
            self.violations(
                "src/sketch/hooked.cc", hooked, lint.check_mutator_metrics
            )
        )
        forwarder = (
            "void FooSketch::Update(uint64_t k) { UpdateBatch(&k, 1); }\n"
        )
        self.assertFalse(
            self.violations(
                "src/sketch/fwd.cc", forwarder, lint.check_mutator_metrics
            )
        )

    def test_mutator_metrics_only_scoped_dirs(self):
        text = "void Foo::Update(uint64_t k) { table_[k] += 1; }\n"
        self.assertFalse(
            self.violations("src/core/foo.cc", text, lint.check_mutator_metrics)
        )
        # The sketch vocabulary does not apply in src/stream and vice versa.
        self.assertFalse(
            self.violations(
                "src/stream/foo.cc", text, lint.check_mutator_metrics
            )
        )

    def test_mutator_metrics_covers_stream_operators(self):
        bare = "void FooOperator::OnTuple(uint64_t v) { count_ += v; }\n"
        v = self.violations(
            "src/stream/foo.cc", bare, lint.check_mutator_metrics
        )
        self.assertEqual([x.rule for x in v], ["mutator-metrics"])

        hooked = (
            "size_t FooSource::NextChunk(uint64_t* out, size_t n) {\n"
            '  SKETCHSAMPLE_METRIC_ADD("stream.foo.tuples", n);\n'
            "  return n;\n"
            "}\n"
        )
        self.assertFalse(
            self.violations(
                "src/stream/hooked.cc", hooked, lint.check_mutator_metrics
            )
        )
        # Next -> NextChunk forwarding inherits the callee's hook.
        forwarder = (
            "std::optional<uint64_t> FooSource::Next() {\n"
            "  uint64_t v;\n"
            "  return NextChunk(&v, 1) ? std::optional<uint64_t>(v)\n"
            "                          : std::nullopt;\n"
            "}\n"
        )
        self.assertFalse(
            self.violations(
                "src/stream/fwd.cc", forwarder, lint.check_mutator_metrics
            )
        )

    def test_mutator_metrics_covers_shard_engine_entry_points(self):
        # Template-qualified definitions (ShardEngine<SketchT>::Run) must
        # match, and the shard_engine scope must win over the broader
        # src/stream prefix.
        bare = (
            "template <typename SketchT>\n"
            "ShardEngineStats ShardEngine<SketchT>::Run(StreamSource& s) {\n"
            "  return ShardEngineStats{};\n"
            "}\n"
        )
        v = self.violations(
            "src/stream/shard_engine.cc", bare, lint.check_mutator_metrics
        )
        self.assertEqual([x.rule for x in v], ["mutator-metrics"])

        hooked = (
            "template <typename SketchT>\n"
            "void ShardEngine<SketchT>::Restore(const Checkpoint& cp) {\n"
            '  SKETCHSAMPLE_METRIC_INC("engine.shard.restores");\n'
            "}\n"
        )
        self.assertFalse(
            self.violations(
                "src/stream/shard_engine_hooked.cc",
                hooked,
                lint.check_mutator_metrics,
            )
        )
        # The stream vocabulary does not leak into the shard_engine scope:
        # a bare OnTuple defined here is outside its mutator list.
        stream_vocab = (
            "void ShardEngineHelper::OnTuple(uint64_t v) { count_ += v; }\n"
        )
        self.assertFalse(
            self.violations(
                "src/stream/shard_engine_helper.cc",
                stream_vocab,
                lint.check_mutator_metrics,
            )
        )

    # ---- direct-include ----

    def test_direct_include_fires(self):
        v = self.violations(
            "src/core/bad.h",
            "inline int f() { return std::min(1, 2); }\n",
            lint.check_direct_include,
        )
        self.assertEqual([x.rule for x in v], ["direct-include"])
        self.assertIn("<algorithm>", v[0].message)

    def test_direct_include_satisfied_directly_or_via_own_header(self):
        self.assertFalse(
            self.violations(
                "src/core/ok.h",
                "#include <algorithm>\n"
                "inline int f() { return std::min(1, 2); }\n",
                lint.check_direct_include,
            )
        )
        make_source("src/core/pair.h", "#include <algorithm>\n", self.root)
        self.assertFalse(
            self.violations(
                "src/core/pair.cc",
                '#include "src/core/pair.h"\n'
                "int g() { return std::min(1, 2); }\n",
                lint.check_direct_include,
            )
        )

    def test_direct_include_skips_tests_and_bench(self):
        self.assertFalse(
            self.violations(
                "tests/whatever_test.cc",
                "int f() { return std::min(1, 2); }\n",
                lint.check_direct_include,
            )
        )

    # ---- simd-intrinsics-confined ----

    def test_simd_intrinsics_fire_outside_kernel_tus(self):
        v = self.violations(
            "src/sketch/bad.cc",
            "#include <immintrin.h>\n"
            "__m256i f(__m256i a) { return _mm256_add_epi64(a, a); }\n",
            lint.check_simd_intrinsics_confined,
        )
        self.assertTrue(v)
        self.assertTrue(all(x.rule == "simd-intrinsics-confined" for x in v))
        # Both the include and the intrinsic tokens are reported.
        self.assertGreaterEqual(len(v), 2)

    def test_simd_intrinsics_allowed_in_kernel_tus_and_waivable(self):
        self.assertFalse(
            self.violations(
                "src/prng/simd/kernels_avx2.cc",
                "#include <immintrin.h>\n"
                "__m256i f(__m256i a) { return _mm256_add_epi64(a, a); }\n",
                lint.check_simd_intrinsics_confined,
            )
        )
        self.assertFalse(
            self.violations(
                "src/util/special.cc",
                "// lint:allow(simd-intrinsics-confined) measured reason\n"
                "#include <immintrin.h>\n",
                lint.check_simd_intrinsics_confined,
            )
        )

    def test_simd_intrinsics_ignores_comments_and_lookalikes(self):
        self.assertFalse(
            self.violations(
                "src/sketch/ok.cc",
                "// _mm256_add_epi64 is only named in this comment\n"
                "int _mm_lookalike;  // declaration, not a call\n",
                lint.check_simd_intrinsics_confined,
            )
        )

    # ---- simd-scalar-twin ----

    SCALAR_TABLE = (
        "const int t = 0;\n"
        "KernelTable k{\n"
        "    .name = s,\n"
        "    .eh3_sign = ScalarEh3Sign,\n"
        "    .bucket_batch = ScalarBucketBatch,\n"
        "};\n"
    )

    def test_simd_scalar_twin_passes_when_slots_match(self):
        make_source(
            "src/prng/simd/kernels_scalar.cc", self.SCALAR_TABLE, self.root
        )
        self.assertFalse(
            self.violations(
                "src/prng/simd/kernels_avx2.cc",
                "KernelTable k{\n"
                "    .name = s,\n"
                "    .eh3_sign = Avx2Eh3Sign,\n"
                "};\n",
                lint.check_simd_scalar_twin,
            )
        )

    def test_simd_scalar_twin_fires_on_unregistered_slot(self):
        make_source(
            "src/prng/simd/kernels_scalar.cc", self.SCALAR_TABLE, self.root
        )
        v = self.violations(
            "src/prng/simd/kernels_avx512.cc",
            "KernelTable k{\n"
            "    .name = s,\n"
            "    .vector_only_kernel = Avx512Thing,\n"
            "};\n",
            lint.check_simd_scalar_twin,
        )
        self.assertEqual([x.rule for x in v], ["simd-scalar-twin"])
        self.assertIn("vector_only_kernel", v[0].message)

    def test_simd_scalar_twin_skips_scalar_table_and_other_files(self):
        make_source(
            "src/prng/simd/kernels_scalar.cc", self.SCALAR_TABLE, self.root
        )
        self.assertFalse(
            self.violations(
                "src/prng/simd/kernels_scalar.cc",
                self.SCALAR_TABLE,
                lint.check_simd_scalar_twin,
            )
        )
        self.assertFalse(
            self.violations(
                "src/sketch/fagms.cc",
                "struct P p{.x = 1};\n",
                lint.check_simd_scalar_twin,
            )
        )

    # ---- raw-atomic-confined ----

    def test_raw_atomic_fires_outside_policy_seam(self):
        v = self.violations(
            "src/service/cell.h",
            "#include <atomic>\n"
            "std::atomic<int> flag{0};\n"
            "auto o = std::memory_order_acquire;\n",
            lint.check_raw_atomic_confined,
        )
        self.assertEqual([x.rule for x in v], ["raw-atomic-confined"] * 2)
        self.assertEqual([x.line for x in v], [2, 3])

    def test_raw_atomic_allowed_in_policy_and_metrics(self):
        for home in (
            "src/util/atomics_policy.h",
            "src/util/metrics.h",
            "src/util/metrics.cc",
        ):
            self.assertFalse(
                self.violations(
                    home,
                    "#include <atomic>\nstd::atomic<long> hits{0};\n",
                    lint.check_raw_atomic_confined,
                )
            )

    def test_raw_atomic_line_and_file_waivers(self):
        self.assertFalse(
            self.violations(
                "src/util/other.h",
                "// lint:allow(raw-atomic-confined): measured reason\n"
                "std::atomic<int> x{0};\n",
                lint.check_raw_atomic_confined,
            )
        )
        self.assertFalse(
            self.violations(
                "tests/harness_test.cc",
                "// lint:allow-file(raw-atomic-confined): real-thread harness\n"
                "std::atomic<int> gate{0};\n"
                "std::atomic<bool> stop{false};\n",
                lint.check_raw_atomic_confined,
            )
        )

    def test_raw_atomic_ignores_comments_and_strings(self):
        self.assertFalse(
            self.violations(
                "src/sketch/fagms.cc",
                "// replaces the old std::atomic<uint64_t> counter\n"
                'const char* s = "std::memory_order_seq_cst";\n',
                lint.check_raw_atomic_confined,
            )
        )

    # ---- tsan-supp-rationale ----

    def write_tsan_supp(self, text):
        with open(os.path.join(self.root, "tsan.supp"), "w") as fh:
            fh.write(text)

    def test_tsan_supp_empty_or_comment_only_is_clean(self):
        self.assertFalse(lint.check_tsan_supp_rationale(self.root))  # absent
        self.write_tsan_supp("# policy: entries need a rationale\n\n")
        self.assertFalse(lint.check_tsan_supp_rationale(self.root))

    def test_tsan_supp_entry_without_rationale_fires(self):
        self.write_tsan_supp(
            "# third-party noise\nrace:libthirdparty.so\n"
        )
        v = lint.check_tsan_supp_rationale(self.root)
        self.assertEqual([x.rule for x in v], ["tsan-supp-rationale"])
        self.assertEqual(v[0].line, 2)

    def test_tsan_supp_entry_with_rationale_passes(self):
        self.write_tsan_supp(
            "# rationale: libthirdparty interns strings racily; upstream\n"
            "# bug 123, benign under our usage.\n"
            "race:libthirdparty.so\n"
            "called_from_lib:libthirdparty.so\n"
            "\n"
            "race:unexplained_function\n"
        )
        v = lint.check_tsan_supp_rationale(self.root)
        # The rationale covers the contiguous block; the entry after the
        # blank line starts a new block and needs its own.
        self.assertEqual([x.line for x in v], [6])


class HeaderCheckTest(unittest.TestCase):
    def test_non_self_contained_header_fails(self):
        cxx = os.environ.get("CXX", "c++")
        import shutil

        if shutil.which(cxx) is None:
            self.skipTest(f"no compiler '{cxx}'")
        with tempfile.TemporaryDirectory(prefix="lint_hdr_test_") as root:
            good = os.path.join(root, "src", "good.h")
            bad = os.path.join(root, "src", "bad.h")
            os.makedirs(os.path.dirname(good))
            with open(good, "w") as fh:
                fh.write(
                    "#ifndef GOOD_H_\n#define GOOD_H_\n"
                    "#include <vector>\n"
                    "inline bool f(const std::vector<int>& v) "
                    "{ return v.empty(); }\n"
                    "#endif\n"
                )
            with open(bad, "w") as fh:
                # Uses std::vector without including it: only compiles when
                # some other header happened to pull <vector> in first.
                fh.write(
                    "#ifndef BAD_H_\n#define BAD_H_\n"
                    "inline bool f(const std::vector<int>& v) "
                    "{ return v.empty(); }\n"
                    "#endif\n"
                )
            v = lint.check_headers(root, ["src/good.h", "src/bad.h"], cxx)
            self.assertEqual([x.path for x in v], ["src/bad.h"])
            self.assertEqual(v[0].rule, "self-contained-header")


if __name__ == "__main__":
    unittest.main()
