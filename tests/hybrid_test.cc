// Tests for hybrid sampling: different sampling processes per relation —
// the mixed case the generic engine supports beyond the paper.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/decomposition.h"
#include "src/core/sketch_estimators.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/sampling/bernoulli.h"
#include "src/sampling/with_replacement.h"
#include "src/sampling/without_replacement.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

TEST(HybridScaleTest, BernoulliScaleIsP) {
  RelationSampling s;
  s.scheme = SamplingScheme::kBernoulli;
  s.p = 0.25;
  EXPECT_DOUBLE_EQ(RelationSamplingScale(s, 1234), 0.25);
}

TEST(HybridScaleTest, FixedSizeScaleIsAlpha) {
  RelationSampling s;
  s.scheme = SamplingScheme::kWithoutReplacement;
  s.sample_size = 50;
  EXPECT_DOUBLE_EQ(RelationSamplingScale(s, 200), 0.25);
  s.scheme = SamplingScheme::kWithReplacement;
  EXPECT_DOUBLE_EQ(RelationSamplingScale(s, 200), 0.25);
}

TEST(HybridScaleTest, InvalidParametersThrow) {
  RelationSampling s;
  s.scheme = SamplingScheme::kBernoulli;
  s.p = 0.0;
  EXPECT_THROW(RelationSamplingScale(s, 10), std::invalid_argument);
  s.scheme = SamplingScheme::kWithoutReplacement;
  s.sample_size = 0;
  EXPECT_THROW(RelationSamplingScale(s, 10), std::invalid_argument);
  s.sample_size = 5;
  EXPECT_THROW(RelationSamplingScale(s, 0), std::invalid_argument);
}

TEST(HybridCorrectionTest, ComposesScales) {
  RelationSampling bern;
  bern.scheme = SamplingScheme::kBernoulli;
  bern.p = 0.1;
  RelationSampling wor;
  wor.scheme = SamplingScheme::kWithoutReplacement;
  wor.sample_size = 30;
  const Correction c = HybridJoinCorrection(bern, 1000, wor, 300);
  EXPECT_DOUBLE_EQ(c.scale, 1.0 / (0.1 * 0.1));
  EXPECT_DOUBLE_EQ(c.shift, 0.0);
}

TEST(HybridVarianceTest, ReducesToHomogeneousBernoulliCase) {
  const FrequencyVector f = ZipfFrequencies(50, 600, 1.0);
  const FrequencyVector g = ZipfFrequencies(50, 500, 0.5);
  RelationSampling bf, bg;
  bf.scheme = bg.scheme = SamplingScheme::kBernoulli;
  bf.p = 0.2;
  bg.p = 0.3;
  const auto hybrid = HybridJoinVariance(f, bf, g, bg);

  const JoinStatistics s = ComputeJoinStatistics(f, g);
  const VarianceTerms closed = BernoulliJoinVariance(s, 0.2, 0.3, 10);
  EXPECT_NEAR(hybrid.VarianceAveraged(10), closed.Total(),
              1e-9 * closed.Total());
  EXPECT_NEAR(hybrid.expectation, s.fg, 1e-9 * s.fg);
}

// The headline hybrid scenario: a Bernoulli-shed live stream joined with a
// WOR scan prefix. The analytic prediction must match the Monte-Carlo
// moments of the real pipeline.
TEST(HybridVarianceTest, BernoulliTimesWorMatchesMonteCarlo) {
  constexpr size_t kDomain = 30;
  constexpr uint64_t kTuples = 400;
  const FrequencyVector f = ZipfFrequencies(kDomain, kTuples, 1.0);
  const FrequencyVector g = ZipfFrequencies(kDomain, kTuples, 0.5);
  const auto stream_f = f.ToTupleStream();
  const auto stream_g = g.ToTupleStream();
  constexpr double kP = 0.3;
  constexpr uint64_t kWorSample = kTuples / 4;
  constexpr size_t kRows = 4;

  RelationSampling bern;
  bern.scheme = SamplingScheme::kBernoulli;
  bern.p = kP;
  RelationSampling wor;
  wor.scheme = SamplingScheme::kWithoutReplacement;
  wor.sample_size = kWorSample;
  const auto prediction = HybridJoinVariance(f, bern, g, wor);
  const Correction correction =
      HybridJoinCorrection(bern, kTuples, wor, kTuples);

  RunningStats stats;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    SketchParams params;
    params.rows = kRows;
    params.scheme = XiScheme::kCw4;
    params.seed = MixSeed(101, t);
    BernoulliSampler shed(kP, MixSeed(102, t));
    Xoshiro256 rng(MixSeed(103, t));
    AgmsSketch a = BuildAgmsSketch(shed.Sample(stream_f), params);
    AgmsSketch b = BuildAgmsSketch(
        SampleWithoutReplacement(stream_g, kWorSample, rng), params);
    stats.Add(correction.Apply(a.EstimateJoin(b)));
  }
  const double truth = ExactJoinSize(f, g);
  const double predicted_var = prediction.VarianceAveraged(kRows);
  EXPECT_NEAR(stats.Mean(), truth, 6.0 * stats.StdError());
  EXPECT_NEAR(prediction.expectation, truth, 1e-9 * truth);
  EXPECT_NEAR(stats.Variance(), predicted_var, 0.2 * predicted_var);
}

TEST(HybridVarianceTest, BernoulliTimesWrMatchesMonteCarlo) {
  constexpr size_t kDomain = 25;
  constexpr uint64_t kTuples = 300;
  const FrequencyVector f = ZipfFrequencies(kDomain, kTuples, 0.8);
  const FrequencyVector g = ZipfFrequencies(kDomain, kTuples, 1.5);
  const auto stream_f = f.ToTupleStream();
  const auto stream_g = g.ToTupleStream();
  constexpr double kP = 0.4;
  constexpr uint64_t kWrSample = kTuples / 3;
  constexpr size_t kRows = 4;

  RelationSampling bern;
  bern.scheme = SamplingScheme::kBernoulli;
  bern.p = kP;
  RelationSampling wr;
  wr.scheme = SamplingScheme::kWithReplacement;
  wr.sample_size = kWrSample;
  const auto prediction = HybridJoinVariance(f, bern, g, wr);
  const Correction correction =
      HybridJoinCorrection(bern, kTuples, wr, kTuples);

  RunningStats stats;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    SketchParams params;
    params.rows = kRows;
    params.scheme = XiScheme::kCw4;
    params.seed = MixSeed(201, t);
    BernoulliSampler shed(kP, MixSeed(202, t));
    Xoshiro256 rng(MixSeed(203, t));
    AgmsSketch a = BuildAgmsSketch(shed.Sample(stream_f), params);
    AgmsSketch b = BuildAgmsSketch(
        SampleWithReplacement(stream_g, kWrSample, rng), params);
    stats.Add(correction.Apply(a.EstimateJoin(b)));
  }
  const double truth = ExactJoinSize(f, g);
  const double predicted_var = prediction.VarianceAveraged(kRows);
  EXPECT_NEAR(stats.Mean(), truth, 6.0 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), predicted_var, 0.2 * predicted_var);
}

}  // namespace
}  // namespace sketchsample
