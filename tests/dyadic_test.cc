// Tests for dyadic range sketches.
#include <gtest/gtest.h>

#include <vector>

#include "src/data/zipf.h"
#include "src/sketch/dyadic.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

SketchParams Params(uint64_t seed) {
  SketchParams p;
  p.rows = 3;
  p.buckets = 1024;
  p.scheme = XiScheme::kEh3;
  p.seed = seed;
  return p;
}

TEST(DyadicTest, ConstructionValidation) {
  EXPECT_THROW(DyadicRangeSketch(0, Params(1)), std::invalid_argument);
  EXPECT_THROW(DyadicRangeSketch(64, Params(1)), std::invalid_argument);
  EXPECT_NO_THROW(DyadicRangeSketch(16, Params(1)));
}

TEST(DyadicTest, RejectsOutOfUniverseKeysAndRanges) {
  DyadicRangeSketch sketch(8, Params(2));  // universe [0, 256)
  EXPECT_THROW(sketch.Update(256), std::invalid_argument);
  EXPECT_NO_THROW(sketch.Update(255));
  EXPECT_THROW(sketch.EstimateRange(10, 5), std::invalid_argument);
  EXPECT_THROW(sketch.EstimateRange(0, 256), std::invalid_argument);
}

TEST(DyadicTest, ExactOnSparseData) {
  // With far fewer distinct keys than buckets, all estimates are exact.
  DyadicRangeSketch sketch(10, Params(3));  // universe [0, 1024)
  sketch.Update(5, 10.0);
  sketch.Update(100, 20.0);
  sketch.Update(1000, 30.0);

  EXPECT_NEAR(sketch.EstimateFrequency(5), 10.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateFrequency(6), 0.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateRange(0, 1023), 60.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateRange(0, 99), 10.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateRange(5, 100), 30.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateRange(101, 1023), 30.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateRange(5, 5), 10.0, 1e-9);
}

TEST(DyadicTest, RangeMatchesBruteForceOnDenseData) {
  constexpr int kLogU = 10;  // universe 1024
  constexpr size_t kU = 1 << kLogU;
  DyadicRangeSketch sketch(kLogU, Params(4));
  std::vector<double> exact(kU, 0.0);
  ZipfSampler sampler(kU, 1.0);
  Xoshiro256 rng(5);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t key = sampler.Next(rng);
    sketch.Update(key);
    exact[key] += 1.0;
  }
  // Several ranges of different shapes.
  const std::vector<std::pair<uint64_t, uint64_t>> ranges = {
      {0, 1023}, {0, 511}, {512, 1023}, {3, 700}, {100, 101}, {1, 1}};
  for (const auto& [lo, hi] : ranges) {
    double truth = 0;
    for (uint64_t v = lo; v <= hi; ++v) truth += exact[v];
    const double estimate = sketch.EstimateRange(lo, hi);
    EXPECT_NEAR(estimate, truth, std::max(0.06 * truth, 600.0))
        << "[" << lo << ", " << hi << "]";
  }
}

TEST(DyadicTest, QuantilesTrackDistribution) {
  constexpr int kLogU = 10;
  constexpr size_t kU = 1 << kLogU;
  DyadicRangeSketch sketch(kLogU, Params(6));
  std::vector<double> exact(kU, 0.0);
  ZipfSampler sampler(kU, 1.0);
  Xoshiro256 rng(7);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const uint64_t key = sampler.Next(rng);
    sketch.Update(key);
    exact[key] += 1.0;
  }
  for (double q : {0.25, 0.5, 0.9}) {
    // True quantile from the exact histogram.
    double cum = 0;
    uint64_t truth = 0;
    for (uint64_t v = 0; v < kU; ++v) {
      cum += exact[v];
      if (cum >= q * kN) {
        truth = v;
        break;
      }
    }
    const uint64_t estimate = sketch.EstimateQuantile(q);
    // Compare by rank mass rather than key distance (keys are skewed):
    double mass_at_estimate = 0;
    for (uint64_t v = 0; v <= estimate && v < kU; ++v) {
      mass_at_estimate += exact[v];
    }
    EXPECT_NEAR(mass_at_estimate / kN, q, 0.08)
        << "q=" << q << " truth=" << truth << " est=" << estimate;
  }
  EXPECT_THROW(sketch.EstimateQuantile(0.0), std::invalid_argument);
  EXPECT_THROW(sketch.EstimateQuantile(1.5), std::invalid_argument);
}

TEST(DyadicTest, MergeEqualsUnionStream) {
  DyadicRangeSketch a(8, Params(8)), b(8, Params(8)), whole(8, Params(8));
  Xoshiro256 rng(9);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = rng.NextBounded(256);
    (i % 2 ? a : b).Update(key);
    whole.Update(key);
  }
  a.Merge(b);
  EXPECT_NEAR(a.EstimateRange(0, 255), whole.EstimateRange(0, 255), 1e-9);
  EXPECT_NEAR(a.EstimateRange(17, 100), whole.EstimateRange(17, 100), 1e-9);
  EXPECT_DOUBLE_EQ(a.total_weight(), whole.total_weight());
}

TEST(DyadicTest, MergeRequiresCompatibility) {
  DyadicRangeSketch a(8, Params(10)), b(8, Params(11)), c(9, Params(10));
  EXPECT_THROW(a.Merge(b), std::invalid_argument);
  EXPECT_THROW(a.Merge(c), std::invalid_argument);
}

TEST(DyadicTest, TurnstileDeletesAffectRanges) {
  DyadicRangeSketch sketch(8, Params(12));
  sketch.Update(10, 5.0);
  sketch.Update(20, 7.0);
  sketch.Update(10, -5.0);  // delete all copies of 10
  EXPECT_NEAR(sketch.EstimateRange(0, 255), 7.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateFrequency(10), 0.0, 1e-9);
}

}  // namespace
}  // namespace sketchsample
