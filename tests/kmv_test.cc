// Tests for the KMV distinct-count sketch.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/data/zipf.h"
#include "src/sketch/kmv.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

TEST(KmvTest, NeedsKAtLeastTwo) {
  EXPECT_THROW(KmvSketch(1, 1), std::invalid_argument);
  EXPECT_NO_THROW(KmvSketch(2, 1));
}

TEST(KmvTest, ExactBelowK) {
  KmvSketch sketch(64, 7);
  for (uint64_t v = 0; v < 40; ++v) sketch.Update(v);
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 40.0);
  // Duplicates don't change anything.
  for (uint64_t v = 0; v < 40; ++v) sketch.Update(v);
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 40.0);
  EXPECT_EQ(sketch.retained(), 40u);
}

TEST(KmvTest, EstimatesLargeCardinalities) {
  constexpr uint64_t kDistinct = 100000;
  KmvSketch sketch(1024, 3);
  for (uint64_t v = 0; v < kDistinct; ++v) sketch.Update(v);
  // Relative error ~ 1/sqrt(k) ≈ 3%; allow 5 sigma.
  EXPECT_NEAR(sketch.EstimateDistinct(), static_cast<double>(kDistinct),
              5.0 * kDistinct / std::sqrt(1024.0));
}

TEST(KmvTest, DuplicateHeavyStreamCountsDistinctOnly) {
  constexpr size_t kDomain = 5000;
  ZipfSampler sampler(kDomain, 1.0);
  Xoshiro256 rng(5);
  KmvSketch sketch(512, 9);
  std::vector<bool> seen(kDomain, false);
  size_t truth = 0;
  for (int i = 0; i < 200000; ++i) {
    const uint64_t v = sampler.Next(rng);
    if (!seen[v]) {
      seen[v] = true;
      ++truth;
    }
    sketch.Update(v);
  }
  EXPECT_NEAR(sketch.EstimateDistinct(), static_cast<double>(truth),
              5.0 * truth / std::sqrt(512.0));
}

TEST(KmvTest, IsUnbiasedOverSeeds) {
  constexpr uint64_t kDistinct = 5000;
  RunningStats stats;
  for (int rep = 0; rep < 300; ++rep) {
    KmvSketch sketch(256, MixSeed(11, rep));
    for (uint64_t v = 0; v < kDistinct; ++v) sketch.Update(v);
    stats.Add(sketch.EstimateDistinct());
  }
  EXPECT_NEAR(stats.Mean(), static_cast<double>(kDistinct),
              5.0 * stats.StdError());
}

TEST(KmvTest, MergeEstimatesUnionCardinality) {
  KmvSketch a(512, 21), b(512, 21);
  // Overlapping streams: |A| = 30000, |B| = 30000, |A ∪ B| = 45000.
  for (uint64_t v = 0; v < 30000; ++v) a.Update(v);
  for (uint64_t v = 15000; v < 45000; ++v) b.Update(v);
  a.Merge(b);
  EXPECT_NEAR(a.EstimateDistinct(), 45000.0,
              5.0 * 45000.0 / std::sqrt(512.0));
}

TEST(KmvTest, MergeRequiresSameSeedAndK) {
  KmvSketch a(64, 1), b(64, 2), c(128, 1);
  EXPECT_THROW(a.Merge(b), std::invalid_argument);
  EXPECT_THROW(a.Merge(c), std::invalid_argument);
}

TEST(KmvTest, MergeWithEmptyIsIdentity) {
  KmvSketch a(64, 3), empty(64, 3);
  for (uint64_t v = 0; v < 1000; ++v) a.Update(v);
  const double before = a.EstimateDistinct();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.EstimateDistinct(), before);
}

}  // namespace
}  // namespace sketchsample
