// Tests for the deterministic fault-injection harness (src/stream/
// faults.h). Every scenario is a pure function of its 64-bit seed; failing
// assertions print the seed so the exact fault sequence reproduces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/stream/faults.h"
#include "src/stream/operators.h"
#include "src/stream/pipeline.h"
#include "src/stream/source.h"

namespace sketchsample {
namespace {

// CI overrides the seed via SKETCHSAMPLE_FAULT_SEED; a reported failure
// must carry it for reproduction.
const uint64_t kSeed = FaultSeedFromEnv(0xFA017u);

std::vector<uint64_t> SequentialValues(size_t n) {
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = i;
  return values;
}

// Drains `source` through chunked pulls, riding out up to `stall_budget`
// consecutive stalls, and returns everything it emitted.
std::vector<uint64_t> Drain(StreamSource& source, size_t chunk,
                            int stall_budget = 1000) {
  std::vector<uint64_t> out;
  std::vector<uint64_t> scratch(chunk);
  int stalls = 0;
  while (true) {
    const size_t n = source.NextChunk(scratch.data(), chunk);
    if (n == 0) {
      if (source.Stalled() && ++stalls <= stall_budget) continue;
      break;
    }
    stalls = 0;
    out.insert(out.end(), scratch.begin(), scratch.begin() + n);
  }
  return out;
}

TEST(FaultProfileTest, NamedPresets) {
  EXPECT_FALSE(FaultProfile::FromName("none").Active());
  EXPECT_TRUE(FaultProfile::FromName("mild").Active());
  EXPECT_TRUE(FaultProfile::FromName("harsh").Active());
  EXPECT_THROW(FaultProfile::FromName("bogus"), std::invalid_argument);
}

TEST(FaultInjectingSourceTest, SameSeedSameFaults) {
  const FaultProfile profile = FaultProfile::FromName("harsh");
  const std::vector<uint64_t> input = SequentialValues(20000);

  VectorSource a(input), b(input), c(input);
  FaultInjectingSource fa(&a, profile, kSeed);
  FaultInjectingSource fb(&b, profile, kSeed);
  FaultInjectingSource fc(&c, profile, kSeed + 1);

  const auto out_a = Drain(fa, 256);
  const auto out_b = Drain(fb, 256);
  const auto out_c = Drain(fc, 256);
  EXPECT_EQ(out_a, out_b) << "fault seed " << kSeed
                          << " did not reproduce its own sequence";
  EXPECT_NE(out_a, out_c) << "fault seed " << kSeed
                          << ": distinct seeds produced identical faults";
  EXPECT_EQ(fa.faults_injected(), fb.faults_injected());
  EXPECT_GT(fa.faults_injected(), 0u);
}

TEST(FaultInjectingSourceTest, CorruptionFlipsValuesNotCounts) {
  FaultProfile profile;
  profile.corrupt_prob = 0.5;
  profile.corrupt_mask = 0xFF00ULL;
  const std::vector<uint64_t> input = SequentialValues(4096);
  VectorSource inner(input);
  FaultInjectingSource source(&inner, profile, kSeed);
  const auto out = Drain(source, 128);
  ASSERT_EQ(out.size(), input.size()) << "fault seed " << kSeed;
  size_t changed = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] != input[i]) {
      ++changed;
      // Corruption only touches bits under the mask.
      EXPECT_EQ((out[i] ^ input[i]) & ~profile.corrupt_mask, 0u);
    }
  }
  EXPECT_GT(changed, input.size() / 4) << "fault seed " << kSeed;
  // A corruption may XOR in all-zero bits under the mask, so the injected
  // count bounds the changed count from above.
  EXPECT_GE(source.faults_injected(), changed);
}

TEST(FaultInjectingSourceTest, DuplicationEmitsEveryTupleTwice) {
  FaultProfile profile;
  profile.duplicate_prob = 1.0;
  const std::vector<uint64_t> input = SequentialValues(1000);
  VectorSource inner(input);
  FaultInjectingSource source(&inner, profile, kSeed);
  const auto out = Drain(source, 64);
  ASSERT_EQ(out.size(), 2 * input.size()) << "fault seed " << kSeed;
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(out[2 * i], input[i]);
    EXPECT_EQ(out[2 * i + 1], input[i]);
  }
}

TEST(FaultInjectingSourceTest, TruncatedPullsStillDeliverEverything) {
  FaultProfile profile;
  profile.truncate_prob = 1.0;  // every pull is a short read
  const std::vector<uint64_t> input = SequentialValues(5000);
  VectorSource inner(input);
  FaultInjectingSource source(&inner, profile, kSeed);

  std::vector<uint64_t> scratch(256);
  std::vector<uint64_t> out;
  bool saw_short_read = false;
  while (size_t n = source.NextChunk(scratch.data(), scratch.size())) {
    saw_short_read |= n < scratch.size() && out.size() + n < input.size();
    out.insert(out.end(), scratch.begin(), scratch.begin() + n);
  }
  EXPECT_TRUE(saw_short_read) << "fault seed " << kSeed;
  EXPECT_EQ(out, input) << "fault seed " << kSeed;
}

TEST(FaultInjectingSourceTest, ReorderingPermutesWithinStream) {
  FaultProfile profile;
  profile.reorder_prob = 0.2;
  const std::vector<uint64_t> input = SequentialValues(4096);
  VectorSource inner(input);
  FaultInjectingSource source(&inner, profile, kSeed);
  auto out = Drain(source, 256);
  ASSERT_EQ(out.size(), input.size());
  EXPECT_NE(out, input) << "fault seed " << kSeed;  // order changed...
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, input);  // ...but it is a permutation, nothing lost
}

TEST(FaultInjectingSourceTest, BoundedStallIsRiddenOut) {
  FaultProfile profile;
  profile.stall_every = 1000;
  profile.stall_pulls = 3;
  const std::vector<uint64_t> input = SequentialValues(5000);
  VectorSource inner(input);
  FaultInjectingSource source(&inner, profile, kSeed);

  SinkOperator sink([](uint64_t) {});
  PipelineOptions opts;
  opts.chunk_size = 256;
  opts.stall_retries = 8;
  const PipelineStats stats = RunPipeline(source, sink, opts);
  EXPECT_TRUE(stats.ended) << "fault seed " << kSeed;
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.tuples, input.size());
  EXPECT_GT(stats.stall_retries, 0u);
}

TEST(FaultInjectingSourceTest, ExhaustedRetryBudgetDegradesNotHangs) {
  FaultProfile profile;
  profile.stall_every = 100;
  profile.stall_pulls = 50;  // longer than the pipeline's patience
  VectorSource inner(SequentialValues(5000));
  FaultInjectingSource source(&inner, profile, kSeed);

  SinkOperator sink([](uint64_t) {});
  PipelineOptions opts;
  opts.chunk_size = 64;
  opts.stall_retries = 4;
  const PipelineStats stats = RunPipeline(source, sink, opts);
  EXPECT_TRUE(stats.stalled) << "fault seed " << kSeed;
  EXPECT_FALSE(stats.ended);
  // The partial answer survives: everything emitted before the stall.
  EXPECT_EQ(sink.count(), stats.tuples);
  EXPECT_GT(stats.tuples, 0u);
}

TEST(FaultInjectingSourceTest, MidStreamDeathStopsThePipeline) {
  FaultProfile profile;
  profile.die_after = 500;
  VectorSource inner(SequentialValues(10000));
  FaultInjectingSource source(&inner, profile, kSeed);

  SinkOperator sink([](uint64_t) {});
  PipelineOptions opts;
  opts.chunk_size = 128;
  opts.stall_retries = 4;
  const PipelineStats stats = RunPipeline(source, sink, opts);
  EXPECT_TRUE(stats.stalled) << "fault seed " << kSeed;
  EXPECT_FALSE(stats.ended);  // death is not a clean end of stream
  EXPECT_TRUE(source.dead());
  EXPECT_EQ(stats.tuples, 500u);
  EXPECT_EQ(sink.count(), 500u);
}

TEST(FaultInjectingSourceTest, ScalarNextMatchesFaultSemantics) {
  FaultProfile profile;
  profile.duplicate_prob = 1.0;
  VectorSource inner(SequentialValues(10));
  FaultInjectingSource source(&inner, profile, kSeed);
  std::vector<uint64_t> out;
  int stalls = 0;
  while (true) {
    const std::optional<uint64_t> v = source.Next();
    if (!v) {
      if (source.Stalled() && ++stalls < 100) continue;
      break;
    }
    out.push_back(*v);
  }
  EXPECT_EQ(out.size(), 20u);
}

TEST(FaultInjectingOperatorTest, InjectsOnThePushPath) {
  FaultProfile profile;
  profile.duplicate_prob = 1.0;
  SinkOperator sink([](uint64_t) {});
  FaultInjectingOperator faulty(&sink, profile, kSeed);
  const std::vector<uint64_t> input = SequentialValues(100);
  faulty.OnTuples(input.data(), input.size());
  EXPECT_EQ(sink.count(), 200u);
  EXPECT_EQ(faulty.faults_injected(), 100u);

  FaultProfile corrupt;
  corrupt.corrupt_prob = 1.0;
  corrupt.corrupt_mask = 0xFULL;
  uint64_t received = 0;
  SinkOperator capture([&](uint64_t v) { received = v; });
  FaultInjectingOperator faulty2(&capture, corrupt, kSeed);
  faulty2.OnTuple(0x100);
  EXPECT_EQ(received & ~0xFULL, 0x100u) << "fault seed " << kSeed;
  EXPECT_EQ(faulty2.faults_injected(), 1u);
}

TEST(FaultSeedFromEnvTest, ParsesOverridesAndFallsBack) {
  ASSERT_EQ(unsetenv("SKETCHSAMPLE_FAULT_SEED"), 0);
  EXPECT_EQ(FaultSeedFromEnv(42), 42u);
  ASSERT_EQ(setenv("SKETCHSAMPLE_FAULT_SEED", "12345", 1), 0);
  EXPECT_EQ(FaultSeedFromEnv(42), 12345u);
  ASSERT_EQ(setenv("SKETCHSAMPLE_FAULT_SEED", "not-a-number", 1), 0);
  EXPECT_EQ(FaultSeedFromEnv(42), 42u);
  ASSERT_EQ(unsetenv("SKETCHSAMPLE_FAULT_SEED"), 0);
}

}  // namespace
}  // namespace sketchsample
