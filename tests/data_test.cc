// Unit tests for src/data: Zipf generation, frequency vectors, TPC-H-lite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "src/data/frequency_vector.h"
#include "src/data/tpch_lite.h"
#include "src/data/zipf.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

// ---------------------------------------------------------------------------
// FrequencyVector.
// ---------------------------------------------------------------------------

TEST(FrequencyVectorTest, MomentsMatchBruteForce) {
  FrequencyVector f(std::vector<uint64_t>{3, 0, 2, 5, 1});
  EXPECT_DOUBLE_EQ(f.F1(), 11.0);
  EXPECT_DOUBLE_EQ(f.F2(), 9 + 4 + 25 + 1);
  EXPECT_DOUBLE_EQ(f.F3(), 27 + 8 + 125 + 1);
  EXPECT_DOUBLE_EQ(f.F4(), 81 + 16 + 625 + 1);
  EXPECT_EQ(f.DistinctValues(), 4u);
}

TEST(FrequencyVectorTest, EmptyVector) {
  FrequencyVector f(4);
  EXPECT_DOUBLE_EQ(f.F1(), 0.0);
  EXPECT_DOUBLE_EQ(f.F2(), 0.0);
  EXPECT_EQ(f.DistinctValues(), 0u);
  EXPECT_TRUE(f.ToTupleStream().empty());
}

TEST(FrequencyVectorTest, FromStreamCountsValues) {
  const std::vector<uint64_t> stream = {0, 2, 2, 5, 0, 0};
  const FrequencyVector f = FrequencyVector::FromStream(stream);
  EXPECT_EQ(f.domain_size(), 6u);
  EXPECT_EQ(f.count(0), 3u);
  EXPECT_EQ(f.count(2), 2u);
  EXPECT_EQ(f.count(5), 1u);
  EXPECT_EQ(f.count(1), 0u);
}

TEST(FrequencyVectorTest, FromStreamRespectsMinimumDomain) {
  const FrequencyVector f = FrequencyVector::FromStream({1}, 10);
  EXPECT_EQ(f.domain_size(), 10u);
}

TEST(FrequencyVectorTest, TupleStreamRoundTrips) {
  FrequencyVector f(std::vector<uint64_t>{2, 0, 3});
  const auto stream = f.ToTupleStream();
  EXPECT_EQ(stream.size(), 5u);
  const FrequencyVector back = FrequencyVector::FromStream(stream, 3);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(back.count(i), f.count(i));
}

TEST(JoinStatisticsTest, MatchesBruteForce) {
  FrequencyVector f(std::vector<uint64_t>{1, 2, 0, 4});
  FrequencyVector g(std::vector<uint64_t>{3, 0, 5, 2});
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  EXPECT_DOUBLE_EQ(s.fg, 1 * 3 + 2 * 0 + 0 * 5 + 4 * 2);
  EXPECT_DOUBLE_EQ(s.fg2, 1 * 9 + 0 + 0 + 4 * 4);
  EXPECT_DOUBLE_EQ(s.f2g, 1 * 3 + 0 + 0 + 16 * 2);
  EXPECT_DOUBLE_EQ(s.f2g2, 1 * 9 + 0 + 0 + 16 * 4);
  EXPECT_DOUBLE_EQ(s.f1, 7.0);
  EXPECT_DOUBLE_EQ(s.g2, 9 + 25 + 4);
}

TEST(JoinStatisticsTest, HandlesMismatchedDomains) {
  FrequencyVector f(std::vector<uint64_t>{1, 2});
  FrequencyVector g(std::vector<uint64_t>{3, 1, 7});
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  EXPECT_DOUBLE_EQ(s.fg, 1 * 3 + 2 * 1);
  EXPECT_DOUBLE_EQ(s.g2, 9 + 1 + 49);
}

TEST(JoinStatisticsTest, OffDiagonalIdentity) {
  // Σ_{i≠j} a_i b_j over explicit double loop equals the identity.
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {4, 5, 6};
  double brute = 0, sum_a = 0, sum_b = 0, diag = 0;
  for (size_t i = 0; i < 3; ++i) {
    sum_a += a[i];
    sum_b += b[i];
    diag += a[i] * b[i];
    for (size_t j = 0; j < 3; ++j) {
      if (i != j) brute += a[i] * b[j];
    }
  }
  EXPECT_DOUBLE_EQ(JoinStatistics::OffDiagonal(sum_a, sum_b, diag), brute);
}

TEST(ExactAggregatesTest, JoinAndSelfJoin) {
  FrequencyVector f(std::vector<uint64_t>{2, 3});
  FrequencyVector g(std::vector<uint64_t>{4, 1});
  EXPECT_DOUBLE_EQ(ExactJoinSize(f, g), 8 + 3);
  EXPECT_DOUBLE_EQ(ExactSelfJoinSize(f), 4 + 9);
}

// ---------------------------------------------------------------------------
// Zipf generation.
// ---------------------------------------------------------------------------

TEST(ZipfTest, ProbabilitiesNormalizeAndDecay) {
  const auto p = ZipfProbabilities(100, 1.0);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
  for (size_t i = 1; i < p.size(); ++i) EXPECT_LE(p[i], p[i - 1]);
  EXPECT_NEAR(p[0] / p[1], 2.0, 1e-12);  // 1/1 vs 1/2 at skew 1
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  const auto p = ZipfProbabilities(10, 0.0);
  for (double x : p) EXPECT_NEAR(x, 0.1, 1e-12);
}

TEST(ZipfTest, EmptyDomainThrows) {
  EXPECT_THROW(ZipfProbabilities(0, 1.0), std::invalid_argument);
}

TEST(ZipfTest, FrequenciesSumExactly) {
  for (double skew : {0.0, 0.5, 1.0, 2.0, 5.0}) {
    const FrequencyVector f = ZipfFrequencies(1000, 123457, skew);
    EXPECT_DOUBLE_EQ(f.F1(), 123457.0) << "skew " << skew;
  }
}

TEST(ZipfTest, FrequenciesTrackProbabilities) {
  const FrequencyVector f = ZipfFrequencies(100, 1000000, 1.0);
  const auto p = ZipfProbabilities(100, 1.0);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(static_cast<double>(f.count(i)), 1e6 * p[i], 1.0);
  }
}

TEST(ZipfTest, HighSkewConcentratesMass) {
  const FrequencyVector f = ZipfFrequencies(1000, 100000, 5.0);
  EXPECT_GT(static_cast<double>(f.count(0)) / f.F1(), 0.9);
}

TEST(ZipfSamplerTest, DrawsMatchProbabilities) {
  constexpr size_t kDomain = 50;
  constexpr size_t kDraws = 200000;
  ZipfSampler sampler(kDomain, 1.0);
  Xoshiro256 rng(17);
  std::vector<size_t> hist(kDomain, 0);
  for (size_t i = 0; i < kDraws; ++i) ++hist[sampler.Next(rng)];
  const auto p = ZipfProbabilities(kDomain, 1.0);
  for (size_t i = 0; i < kDomain; ++i) {
    const double expected = p[i] * kDraws;
    // 5-sigma binomial tolerance.
    const double tol = 5.0 * std::sqrt(expected * (1.0 - p[i])) + 1.0;
    EXPECT_NEAR(static_cast<double>(hist[i]), expected, tol) << "value " << i;
  }
}

TEST(ZipfSamplerTest, StreamHasRequestedLength) {
  ZipfSampler sampler(10, 2.0);
  Xoshiro256 rng(3);
  EXPECT_EQ(sampler.Stream(1234, rng).size(), 1234u);
}

TEST(ZipfSamplerTest, SingleValueDomain) {
  ZipfSampler sampler(1, 3.0);
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Next(rng), 0u);
}

TEST(ShuffleTest, IsAPermutation) {
  std::vector<uint64_t> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  Xoshiro256 rng(5);
  Shuffle(shuffled, rng);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ShuffleTest, HandlesTinyInputs) {
  std::vector<uint64_t> empty;
  std::vector<uint64_t> one = {7};
  Xoshiro256 rng(6);
  Shuffle(empty, rng);
  Shuffle(one, rng);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one[0], 7u);
}

// ---------------------------------------------------------------------------
// TPC-H-lite.
// ---------------------------------------------------------------------------

TEST(TpchLiteTest, OrderCountScales) {
  EXPECT_EQ(TpchLiteOrderCount(1.0), 1500000u);
  EXPECT_EQ(TpchLiteOrderCount(0.01), 15000u);
  EXPECT_EQ(TpchLiteOrderCount(0.0), 1u);  // floor at one order
}

TEST(TpchLiteTest, OrdersHaveUnitFrequency) {
  const TpchLiteData data = GenerateTpchLite(0.001, 42);
  EXPECT_EQ(data.orders.size(), 1500u);
  for (size_t i = 0; i < data.orders_freq.domain_size(); ++i) {
    EXPECT_EQ(data.orders_freq.count(i), 1u);
  }
}

TEST(TpchLiteTest, LineitemMultiplicityInOneToSeven) {
  const TpchLiteData data = GenerateTpchLite(0.001, 42);
  double total = 0;
  for (size_t i = 0; i < data.lineitem_freq.domain_size(); ++i) {
    const uint64_t m = data.lineitem_freq.count(i);
    EXPECT_GE(m, 1u);
    EXPECT_LE(m, 7u);
    total += static_cast<double>(m);
  }
  EXPECT_EQ(static_cast<double>(data.lineitem.size()), total);
  // Average multiplicity is 4 (uniform on 1..7).
  EXPECT_NEAR(total / 1500.0, 4.0, 0.25);
}

TEST(TpchLiteTest, StreamsMatchFrequencies) {
  const TpchLiteData data = GenerateTpchLite(0.002, 7);
  const FrequencyVector from_stream = FrequencyVector::FromStream(
      data.lineitem, data.lineitem_freq.domain_size());
  for (size_t i = 0; i < from_stream.domain_size(); ++i) {
    EXPECT_EQ(from_stream.count(i), data.lineitem_freq.count(i));
  }
}

TEST(TpchLiteTest, StreamsAreShuffled) {
  const TpchLiteData data = GenerateTpchLite(0.01, 9);
  // A sorted scan would be monotonically non-decreasing; a shuffled one has
  // many descents.
  size_t descents = 0;
  for (size_t i = 1; i < data.orders.size(); ++i) {
    descents += (data.orders[i] < data.orders[i - 1]);
  }
  EXPECT_GT(descents, data.orders.size() / 4);
}

TEST(TpchLiteTest, JoinSizeEqualsLineitemCount) {
  // Because every orderkey appears exactly once in orders, the join size is
  // exactly |lineitem|.
  const TpchLiteData data = GenerateTpchLite(0.005, 11);
  EXPECT_DOUBLE_EQ(ExactJoinSize(data.lineitem_freq, data.orders_freq),
                   static_cast<double>(data.lineitem.size()));
}

TEST(TpchLiteTest, DeterministicUnderSeed) {
  const TpchLiteData a = GenerateTpchLite(0.001, 3);
  const TpchLiteData b = GenerateTpchLite(0.001, 3);
  EXPECT_EQ(a.lineitem, b.lineitem);
  EXPECT_EQ(a.orders, b.orders);
}

}  // namespace
}  // namespace sketchsample
