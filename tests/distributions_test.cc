// Tests for special functions and the chi-square goodness-of-fit utility.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/data/zipf.h"
#include "src/util/distributions.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

TEST(LogGammaTest, MatchesFactorials) {
  // Γ(n) = (n−1)!
  EXPECT_NEAR(LogGamma(1), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(2), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5), std::log(24.0), 1e-9);
  EXPECT_NEAR(LogGamma(11), std::log(3628800.0), 1e-8);
}

TEST(LogGammaTest, HalfIntegerValues) {
  EXPECT_NEAR(LogGamma(0.5), std::log(std::sqrt(M_PI)), 1e-9);
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-9);
}

TEST(LogGammaTest, DomainChecked) {
  EXPECT_THROW(LogGamma(0.0), std::invalid_argument);
  EXPECT_THROW(LogGamma(-1.0), std::invalid_argument);
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 1e9), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 − e^−x.
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaTest, DomainChecked) {
  EXPECT_THROW(RegularizedGammaP(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RegularizedGammaP(1.0, -1.0), std::invalid_argument);
}

TEST(ChiSquareCdfTest, KnownQuantiles) {
  // Standard chi-square table values.
  EXPECT_NEAR(ChiSquareCdf(3.841, 1), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareCdf(5.991, 2), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareCdf(18.307, 10), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareCdf(2.706, 1), 0.90, 1e-3);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(-1.0, 3), 0.0);
}

TEST(ChiSquareCdfTest, MedianNearDof) {
  // The chi-square median is approximately dof(1 − 2/(9 dof))³.
  const double dof = 20;
  const double median = dof * std::pow(1.0 - 2.0 / (9.0 * dof), 3);
  EXPECT_NEAR(ChiSquareCdf(median, dof), 0.5, 0.01);
}

TEST(GoodnessOfFitTest, PerfectFitHasHighPValue) {
  const std::vector<double> expected = {100, 200, 300};
  const auto result = ChiSquareGoodnessOfFit(expected, expected);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_NEAR(result.p_value, 1.0, 1e-12);
}

TEST(GoodnessOfFitTest, GrossMisfitHasLowPValue) {
  const std::vector<double> observed = {300, 100, 200};
  const std::vector<double> expected = {100, 200, 300};
  const auto result = ChiSquareGoodnessOfFit(observed, expected);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(GoodnessOfFitTest, ZeroExpectedCategoriesHandled) {
  const std::vector<double> observed = {100, 0, 200};
  const std::vector<double> expected = {100, 0, 200};
  const auto result = ChiSquareGoodnessOfFit(observed, expected);
  EXPECT_DOUBLE_EQ(result.dof, 1.0);  // one category dropped
  EXPECT_NEAR(result.p_value, 1.0, 1e-12);

  const std::vector<double> impossible = {100, 5, 200};
  EXPECT_DOUBLE_EQ(
      ChiSquareGoodnessOfFit(impossible, expected).p_value, 0.0);
}

TEST(GoodnessOfFitTest, InvalidInputsThrow) {
  EXPECT_THROW(ChiSquareGoodnessOfFit({1}, {1}), std::invalid_argument);
  EXPECT_THROW(ChiSquareGoodnessOfFit({1, 2}, {1, 2, 3}),
               std::invalid_argument);
}

// End-to-end statistical use: the Zipf alias sampler passes a chi-square
// goodness-of-fit test against its target distribution.
TEST(GoodnessOfFitTest, ZipfSamplerPassesChiSquare) {
  constexpr size_t kDomain = 20;
  constexpr size_t kDraws = 100000;
  ZipfSampler sampler(kDomain, 1.0);
  Xoshiro256 rng(3);
  std::vector<double> observed(kDomain, 0);
  for (size_t i = 0; i < kDraws; ++i) observed[sampler.Next(rng)] += 1;
  const auto probs = ZipfProbabilities(kDomain, 1.0);
  std::vector<double> expected;
  expected.reserve(kDomain);
  for (double p : probs) expected.push_back(p * kDraws);
  const auto result = ChiSquareGoodnessOfFit(observed, expected);
  EXPECT_GT(result.p_value, 0.001);
}

// Conversely the test has power: a skew-0.8 sampler against skew-1.0
// expectations must fail decisively at this sample size.
TEST(GoodnessOfFitTest, DetectsWrongSkew) {
  constexpr size_t kDomain = 20;
  constexpr size_t kDraws = 100000;
  ZipfSampler sampler(kDomain, 0.8);
  Xoshiro256 rng(4);
  std::vector<double> observed(kDomain, 0);
  for (size_t i = 0; i < kDraws; ++i) observed[sampler.Next(rng)] += 1;
  const auto probs = ZipfProbabilities(kDomain, 1.0);
  std::vector<double> expected;
  expected.reserve(kDomain);
  for (double p : probs) expected.push_back(p * kDraws);
  EXPECT_LT(ChiSquareGoodnessOfFit(observed, expected).p_value, 1e-6);
}

}  // namespace
}  // namespace sketchsample
