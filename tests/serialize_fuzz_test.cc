// Robustness fuzzing for the sketch wire format: random corruptions must
// never be silently accepted, and random garbage — including forged
// headers carrying a *valid* checksum — must never crash or allocate
// unboundedly.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <stdexcept>
#include <vector>

#include "src/sketch/serialize.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

std::vector<uint8_t> ValidBuffer() {
  SketchParams p;
  p.rows = 2;
  p.buckets = 32;
  p.scheme = XiScheme::kEh3;
  p.seed = 77;
  FagmsSketch sketch(p);
  for (uint64_t v = 0; v < 500; ++v) sketch.Update(v % 40);
  return SerializeSketch(sketch);
}

// Header layout (serialize.cc): magic 0..3 | version 4..7 | kind 8..11 |
// rows 12..19 | buckets 20..27 | scheme 28..31 | seed 32..39 |
// counter_count 40..47 | doubles | fnv1a u64 footer.
constexpr size_t kKindOffset = 8;
constexpr size_t kRowsOffset = 12;
constexpr size_t kBucketsOffset = 20;
constexpr size_t kCountOffset = 40;

void PatchBytes(std::vector<uint8_t>& bytes, size_t offset,
                const void* data, size_t size) {
  ASSERT_LE(offset + size, bytes.size());
  std::memcpy(bytes.data() + offset, data, size);
}

// Recomputes the FNV-1a footer after a mutation. An attacker can always do
// this — the checksum guards against accidents, so every structural check
// must hold even when the checksum is valid.
void RefitChecksum(std::vector<uint8_t>& bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i + sizeof(uint64_t) < bytes.size(); ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  std::memcpy(bytes.data() + bytes.size() - sizeof(hash), &hash,
              sizeof(hash));
}

void ExpectAllDeserializersReject(const std::vector<uint8_t>& buffer) {
  EXPECT_THROW(DeserializeAgms(buffer), std::invalid_argument);
  EXPECT_THROW(DeserializeFagms(buffer), std::invalid_argument);
  EXPECT_THROW(DeserializeCountMin(buffer), std::invalid_argument);
  EXPECT_THROW(DeserializeFastCount(buffer), std::invalid_argument);
}

// Table-driven hostile headers: each case forges one field (and refits the
// checksum) in a way that, pre-hardening, drove a huge allocation, an
// integer overflow, or type confusion.
TEST(SerializeFuzzTest, ForgedHeadersWithValidChecksumsRejected) {
  const std::vector<uint8_t> valid = ValidBuffer();
  ASSERT_NO_THROW(DeserializeFagms(valid));

  struct Case {
    const char* name;
    std::function<void(std::vector<uint8_t>&)> mutate;
  };
  const uint64_t zero64 = 0;
  const uint64_t huge64 = uint64_t{1} << 40;
  const uint64_t overflow_rows = uint64_t{1} << 33;
  const uint64_t overflow_buckets = uint64_t{1} << 33;  // rows*buckets wraps
  const uint32_t alien_kind = 0xDEADu;
  const Case cases[] = {
      {"zero rows",
       [&](std::vector<uint8_t>& b) { PatchBytes(b, kRowsOffset, &zero64, 8); }},
      {"zero buckets",
       [&](std::vector<uint8_t>& b) {
         PatchBytes(b, kBucketsOffset, &zero64, 8);
       }},
      {"huge rows (allocation bomb)",
       [&](std::vector<uint8_t>& b) { PatchBytes(b, kRowsOffset, &huge64, 8); }},
      {"huge buckets (allocation bomb)",
       [&](std::vector<uint8_t>& b) {
         PatchBytes(b, kBucketsOffset, &huge64, 8);
       }},
      {"rows*buckets overflows 64 bits",
       [&](std::vector<uint8_t>& b) {
         PatchBytes(b, kRowsOffset, &overflow_rows, 8);
         PatchBytes(b, kBucketsOffset, &overflow_buckets, 8);
       }},
      {"oversized counter count",
       [&](std::vector<uint8_t>& b) {
         PatchBytes(b, kCountOffset, &huge64, 8);
       }},
      {"counter count wraps the size math",
       [&](std::vector<uint8_t>& b) {
         const uint64_t wrap = ~uint64_t{0} / sizeof(double) + 1;
         PatchBytes(b, kCountOffset, &wrap, 8);
       }},
      {"unknown kind tag",
       [&](std::vector<uint8_t>& b) {
         PatchBytes(b, kKindOffset, &alien_kind, 4);
       }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    std::vector<uint8_t> bytes = valid;
    c.mutate(bytes);
    RefitChecksum(bytes);
    ExpectAllDeserializersReject(bytes);
  }
}

TEST(SerializeFuzzTest, WrongKindTagIsATypedError) {
  // A valid F-AGMS buffer handed to the other deserializers must raise the
  // kind mismatch, not reinterpret the counters.
  const std::vector<uint8_t> fagms = ValidBuffer();
  EXPECT_THROW(DeserializeAgms(fagms), std::invalid_argument);
  EXPECT_THROW(DeserializeCountMin(fagms), std::invalid_argument);
  EXPECT_THROW(DeserializeFastCount(fagms), std::invalid_argument);
  EXPECT_EQ(PeekSketchKind(fagms), SketchKind::kFagms);

  // Forging the kind tag alone cannot work either: the AGMS counter-count
  // law (rows, not rows*buckets) no longer matches the payload.
  std::vector<uint8_t> forged = fagms;
  const uint32_t agms_kind = static_cast<uint32_t>(SketchKind::kAgms);
  PatchBytes(forged, kKindOffset, &agms_kind, 4);
  RefitChecksum(forged);
  EXPECT_THROW(DeserializeAgms(forged), std::invalid_argument);
}

TEST(SerializeFuzzTest, TruncatedPayloadWithRefittedChecksumRejected) {
  // Keep the header intact but drop half the counter payload; the declared
  // counter_count then exceeds the remaining bytes.
  std::vector<uint8_t> bytes = ValidBuffer();
  bytes.resize(bytes.size() - 8 * 20);  // drop 20 doubles, keep footer room
  RefitChecksum(bytes);
  ExpectAllDeserializersReject(bytes);
}

class CorruptionTest : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionTest, SingleByteFlipIsRejected) {
  auto buffer = ValidBuffer();
  // Map the parameter onto a byte offset spread across the buffer.
  const size_t offset =
      static_cast<size_t>(GetParam()) * (buffer.size() - 1) / 19;
  buffer[offset] ^= 0xa5;
  EXPECT_THROW(DeserializeFagms(buffer), std::invalid_argument)
      << "offset " << offset << " of " << buffer.size();
}

INSTANTIATE_TEST_SUITE_P(Offsets, CorruptionTest, ::testing::Range(0, 20));

TEST(SerializeFuzzTest, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> garbage(rng.NextBounded(200));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng());
    EXPECT_THROW(DeserializeFagms(garbage), std::invalid_argument);
    EXPECT_THROW(DeserializeAgms(garbage), std::invalid_argument);
  }
}

TEST(SerializeFuzzTest, RandomTruncationsNeverCrash) {
  const auto buffer = ValidBuffer();
  Xoshiro256 rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> truncated(
        buffer.begin(), buffer.begin() + rng.NextBounded(buffer.size()));
    EXPECT_THROW(DeserializeFagms(truncated), std::invalid_argument);
  }
}

TEST(SerializeFuzzTest, ExtensionBytesRejected) {
  auto buffer = ValidBuffer();
  buffer.push_back(0x00);
  EXPECT_THROW(DeserializeFagms(buffer), std::invalid_argument);
}

TEST(SerializeFuzzTest, RoundTripSurvivesManyShapes) {
  Xoshiro256 rng(55);
  for (int trial = 0; trial < 40; ++trial) {
    SketchParams p;
    p.rows = 1 + rng.NextBounded(5);
    p.buckets = 1 + rng.NextBounded(256);
    p.scheme = static_cast<XiScheme>(rng.NextBounded(6));
    p.seed = rng();
    FagmsSketch sketch(p);
    const uint64_t updates = rng.NextBounded(300);
    for (uint64_t u = 0; u < updates; ++u) sketch.Update(rng());
    const FagmsSketch restored = DeserializeFagms(SerializeSketch(sketch));
    ASSERT_EQ(restored.counters(), sketch.counters()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sketchsample
