// Robustness fuzzing for the sketch wire format: random corruptions must
// never be silently accepted, and random garbage must never crash.
#include <gtest/gtest.h>

#include <vector>

#include "src/sketch/serialize.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

std::vector<uint8_t> ValidBuffer() {
  SketchParams p;
  p.rows = 2;
  p.buckets = 32;
  p.scheme = XiScheme::kEh3;
  p.seed = 77;
  FagmsSketch sketch(p);
  for (uint64_t v = 0; v < 500; ++v) sketch.Update(v % 40);
  return SerializeSketch(sketch);
}

class CorruptionTest : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionTest, SingleByteFlipIsRejected) {
  auto buffer = ValidBuffer();
  // Map the parameter onto a byte offset spread across the buffer.
  const size_t offset =
      static_cast<size_t>(GetParam()) * (buffer.size() - 1) / 19;
  buffer[offset] ^= 0xa5;
  EXPECT_THROW(DeserializeFagms(buffer), std::invalid_argument)
      << "offset " << offset << " of " << buffer.size();
}

INSTANTIATE_TEST_SUITE_P(Offsets, CorruptionTest, ::testing::Range(0, 20));

TEST(SerializeFuzzTest, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> garbage(rng.NextBounded(200));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng());
    EXPECT_THROW(DeserializeFagms(garbage), std::invalid_argument);
    EXPECT_THROW(DeserializeAgms(garbage), std::invalid_argument);
  }
}

TEST(SerializeFuzzTest, RandomTruncationsNeverCrash) {
  const auto buffer = ValidBuffer();
  Xoshiro256 rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> truncated(
        buffer.begin(), buffer.begin() + rng.NextBounded(buffer.size()));
    EXPECT_THROW(DeserializeFagms(truncated), std::invalid_argument);
  }
}

TEST(SerializeFuzzTest, ExtensionBytesRejected) {
  auto buffer = ValidBuffer();
  buffer.push_back(0x00);
  EXPECT_THROW(DeserializeFagms(buffer), std::invalid_argument);
}

TEST(SerializeFuzzTest, RoundTripSurvivesManyShapes) {
  Xoshiro256 rng(55);
  for (int trial = 0; trial < 40; ++trial) {
    SketchParams p;
    p.rows = 1 + rng.NextBounded(5);
    p.buckets = 1 + rng.NextBounded(256);
    p.scheme = static_cast<XiScheme>(rng.NextBounded(6));
    p.seed = rng();
    FagmsSketch sketch(p);
    const uint64_t updates = rng.NextBounded(300);
    for (uint64_t u = 0; u < updates; ++u) sketch.Update(rng());
    const FagmsSketch restored = DeserializeFagms(SerializeSketch(sketch));
    ASSERT_EQ(restored.counters(), sketch.counters()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sketchsample
