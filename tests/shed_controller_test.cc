// Tests for the adaptive load-shedding controller (src/stream/
// shed_controller.h): control-law convergence under overload, honest
// estimation at the realized (not nominal) rate per Props 13/14, and Eq 26
// confidence-interval coverage across seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/core/corrections.h"
#include "src/core/variance.h"
#include "src/data/frequency_vector.h"
#include "src/sketch/agms.h"
#include "src/sketch/fagms.h"
#include "src/stream/operators.h"
#include "src/stream/pipeline.h"
#include "src/stream/shed_controller.h"
#include "src/stream/source.h"
#include "src/util/rng.h"

namespace sketchsample {
namespace {

TEST(ShedControllerTest, RejectsInvalidOptions) {
  ShedControllerOptions opts;
  opts.min_p = 0.0;
  EXPECT_THROW(ShedController{opts}, std::invalid_argument);
  opts = ShedControllerOptions{};
  opts.min_p = 0.6;
  opts.max_p = 0.5;
  EXPECT_THROW(ShedController{opts}, std::invalid_argument);
  opts = ShedControllerOptions{};
  opts.initial_p = 0.01;  // below default min_p = 0.05
  EXPECT_THROW(ShedController{opts}, std::invalid_argument);
  opts = ShedControllerOptions{};
  opts.window_tuples = 0;
  EXPECT_THROW(ShedController{opts}, std::invalid_argument);
}

TEST(ShedControllerTest, ConvergesUnderTenfoldOverload) {
  // Source offers 10x what the sink can absorb. The proportional law must
  // bring the kept count within 10% of the budget and hold it there.
  ShedControllerOptions opts;
  opts.capacity_per_window = 1000.0;
  opts.min_p = 0.01;
  ShedController controller(opts);

  constexpr uint64_t kOffered = 10000;
  double p = controller.p();
  double kept = 0;
  for (int w = 0; w < 20; ++w) {
    kept = std::round(p * static_cast<double>(kOffered));
    p = controller.OnWindow(kOffered, static_cast<uint64_t>(kept));
  }
  EXPECT_NEAR(p, 0.1, 0.02);
  EXPECT_NEAR(kept, 1000.0, 100.0);  // throughput within 10% of target
  EXPECT_EQ(controller.windows(), 20u);
}

TEST(ShedControllerTest, ProbesUpwardUnderHeadroom) {
  ShedControllerOptions opts;
  opts.initial_p = 0.2;
  opts.capacity_per_window = 1000.0;
  opts.increase_step = 0.05;
  ShedController controller(opts);
  // Kept far below headroom * capacity: additive probe, one step per window.
  double p = controller.OnWindow(1000, 200);
  EXPECT_DOUBLE_EQ(p, 0.25);
  p = controller.OnWindow(1000, 250);
  EXPECT_DOUBLE_EQ(p, 0.30);
  // Probing never exceeds max_p.
  for (int i = 0; i < 50; ++i) p = controller.OnWindow(1000, 100);
  EXPECT_DOUBLE_EQ(p, opts.max_p);
}

TEST(ShedControllerTest, BacklogSuppressesRecovery) {
  ShedControllerOptions opts;
  opts.capacity_per_window = 1000.0;
  opts.min_p = 0.01;
  ShedController controller(opts);
  // One huge burst leaves a backlog; subsequent in-budget windows must not
  // probe upward (additively) until the backlog drains — only retarget
  // toward the capacity-minus-drain budget.
  controller.OnWindow(10000, 10000);
  EXPECT_GT(controller.backlog(), 0.0);
  const double p_after_burst = controller.p();
  const double p_next = controller.OnWindow(1000, 400);
  EXPECT_GT(controller.backlog(), 0.0);  // still draining
  EXPECT_LT(p_next, p_after_burst + opts.increase_step);  // no probe fired
  // The retarget aims kept at capacity minus the drain allowance.
  EXPECT_NEAR(p_next, p_after_burst * 500.0 / 400.0, 1e-12);
}

TEST(ShedControllerTest, NoCapacityMeansNoReaction) {
  ShedControllerOptions opts;  // capacity 0, target_tps 0
  ShedController controller(opts);
  EXPECT_DOUBLE_EQ(controller.OnWindow(5000, 5000), 1.0);
  EXPECT_EQ(controller.total_offered(), 5000u);
}

TEST(ShedControllerTest, RealizedRateAndStateRoundtrip) {
  ShedControllerOptions opts;
  opts.capacity_per_window = 500.0;
  ShedController controller(opts);
  controller.OnWindow(1000, 700);
  controller.OnWindow(1000, 300);
  EXPECT_DOUBLE_EQ(controller.RealizedRate(), 0.5);

  const ShedController::State saved = controller.SaveState();
  ShedController other(opts);
  other.RestoreState(saved);
  EXPECT_DOUBLE_EQ(other.p(), controller.p());
  EXPECT_DOUBLE_EQ(other.backlog(), controller.backlog());
  EXPECT_EQ(other.windows(), controller.windows());
  EXPECT_DOUBLE_EQ(other.RealizedRate(), controller.RealizedRate());
}

TEST(ShedControllerTest, RealizedEstimatesMatchManualCorrections) {
  const double raw = 1234.5, p = 0.3, q = 0.6;
  const uint64_t kept = 789;
  EXPECT_DOUBLE_EQ(
      RealizedSelfJoinEstimate(raw, p, kept),
      raw / (p * p) - (1.0 - p) / (p * p) * static_cast<double>(kept));
  EXPECT_DOUBLE_EQ(RealizedJoinEstimate(raw, p, q), raw / (p * q));
}

// End-to-end §VI-A overload deployment: source -> adaptive shed -> sketch,
// with the source offering 10x what the sink can absorb. The controller
// must converge to a steady rate with tail throughput within 10% of the
// budget, and the answer corrected at the realized rate with an Eq 26
// interval must cover the exact self-join size.
struct OverloadRun {
  uint64_t forwarded = 0;
  double final_p = 0;
  double realized_p = 0;
  double raw_selfjoin = 0;
  PipelineStats stats;
};

OverloadRun RunOverloadPipeline(uint64_t max_tuples) {
  constexpr uint64_t kCount = 400000;
  ZipfSource source(500, 1.0, kCount, 21);
  SketchParams params;
  params.rows = 256;
  params.seed = 31;
  AgmsSketch sketch(params);
  SinkOperator sink = MakeSketchSink(sketch);
  ShedOperator shed(0.3, 41, &sink);

  ShedControllerOptions copts;
  copts.initial_p = 0.3;
  copts.capacity_per_window = 2000.0;  // 10x overload at 20000 per window
  copts.min_p = 0.02;
  copts.window_tuples = 20000;
  ShedController controller(copts);

  PipelineOptions popts;
  popts.max_tuples = max_tuples;
  popts.shed = &shed;
  popts.controller = &controller;
  OverloadRun run;
  run.stats = RunPipeline(source, shed, popts);
  run.forwarded = shed.forwarded();
  run.final_p = shed.p();
  run.realized_p = shed.realized_rate();
  run.raw_selfjoin = sketch.EstimateSelfJoin();
  return run;
}

TEST(ShedControllerTest, AdaptivePipelineOverloadEndToEnd) {
  constexpr uint64_t kCount = 400000;
  constexpr size_t kDomain = 500;
  constexpr uint64_t kWindow = 20000;
  constexpr double kCapacity = 2000.0;

  const OverloadRun full = RunOverloadPipeline(0);
  EXPECT_TRUE(full.stats.ended);
  EXPECT_EQ(full.stats.tuples, kCount);
  EXPECT_EQ(full.stats.windows, kCount / kWindow);
  // Converged: steady p near capacity/window = 0.1.
  EXPECT_NEAR(full.final_p, 0.1, 0.03);

  // Tail throughput: rerun the identical deterministic trajectory, stopped
  // five windows early, and diff the kept counts — per-window kept over the
  // steady tail must sit within 10% of the budget.
  const OverloadRun prefix = RunOverloadPipeline(kCount - 5 * kWindow);
  const double tail_kept_per_window =
      static_cast<double>(full.forwarded - prefix.forwarded) / 5.0;
  EXPECT_NEAR(tail_kept_per_window, kCapacity, 0.1 * kCapacity);

  // Honest answer at the realized rate.
  std::vector<uint64_t> all;
  ZipfSource mirror(kDomain, 1.0, kCount, 21);  // same seed -> same stream
  while (auto v = mirror.Next()) all.push_back(*v);
  const FrequencyVector fv = FrequencyVector::FromStream(all, kDomain);
  const double truth = fv.F2();

  const double estimate = RealizedSelfJoinEstimate(
      full.raw_selfjoin, full.realized_p, full.forwarded);
  const JoinStatistics s = ComputeJoinStatistics(fv, fv);
  const ConfidenceInterval ci =
      RealizedSelfJoinInterval(estimate, s, full.realized_p, 256, 0.99);
  EXPECT_GT(truth, ci.low);
  EXPECT_LT(truth, ci.high);
  EXPECT_LT(std::abs(estimate - truth) / truth, 0.2);
}

// Satellite: the Bernoulli join estimator evaluated at the *realized* rate
// stays within the Prop 13 (Eq 25) error bound on a skewed Zipf workload.
TEST(ShedControllerTest, RealizedRateJoinWithinProp13Bound) {
  constexpr uint64_t kCount = 50000;
  constexpr size_t kDomain = 300;
  constexpr double kSkew = 1.5;  // skewed: heavy hitters dominate the join

  SketchParams params;
  params.rows = 256;
  params.seed = 77;
  AgmsSketch sa(params), sb(params);  // same seed: joinable pair

  SinkOperator sink_a = MakeSketchSink(sa);
  SinkOperator sink_b = MakeSketchSink(sb);
  ShedOperator shed_a(0.3, 101, &sink_a);
  ShedOperator shed_b(0.5, 103, &sink_b);

  ZipfSource src_a(kDomain, kSkew, kCount, 1);
  ZipfSource src_b(kDomain, kSkew, kCount, 2);
  RunPipeline(src_a, shed_a);
  RunPipeline(src_b, shed_b);

  std::vector<uint64_t> all_a, all_b;
  ZipfSource mirror_a(kDomain, kSkew, kCount, 1);
  ZipfSource mirror_b(kDomain, kSkew, kCount, 2);
  while (auto v = mirror_a.Next()) all_a.push_back(*v);
  while (auto v = mirror_b.Next()) all_b.push_back(*v);
  const FrequencyVector fa = FrequencyVector::FromStream(all_a, kDomain);
  const FrequencyVector fb = FrequencyVector::FromStream(all_b, kDomain);
  const double truth = ExactJoinSize(fa, fb);

  const double rp = shed_a.realized_rate();
  const double rq = shed_b.realized_rate();
  // Realized rates track the nominal ones but are not equal to them; the
  // estimator must scale by what actually happened.
  EXPECT_NEAR(rp, 0.3, 0.02);
  EXPECT_NEAR(rq, 0.5, 0.02);

  const double estimate =
      RealizedJoinEstimate(sa.EstimateJoin(sb), rp, rq);
  const JoinStatistics s = ComputeJoinStatistics(fa, fb);
  const double sigma =
      std::sqrt(BernoulliJoinVariance(s, rp, rq, params.rows).Total());
  // Prop 13 bound: a single draw lands within 3 sigma with probability
  // ~99.7%; the seeds above are fixed, so this is deterministic.
  EXPECT_LT(std::abs(estimate - truth), 3.0 * sigma)
      << "estimate=" << estimate << " truth=" << truth
      << " sigma=" << sigma;
}

// Eq 26 coverage: across 30 independent (stream, sample, sketch) seeds, the
// 95% CLT interval evaluated at the realized rate must cover the truth in
// at least 24 runs. The threshold is deliberately below the nominal 28.5 =
// 0.95 * 30: with 30 draws the 1st percentile of Binomial(30, 0.95) is 25,
// so 24 leaves margin for the CLT approximation itself while still
// detecting a mis-scaled variance (which collapses coverage entirely).
TEST(ShedControllerTest, Eq26IntervalCoversAcrossSeeds) {
  constexpr uint64_t kCount = 30000;
  constexpr size_t kDomain = 400;
  constexpr int kTrials = 30;
  constexpr double kP = 0.2;

  std::vector<uint64_t> all;
  ZipfSource mirror(kDomain, 1.0, kCount, 5);
  while (auto v = mirror.Next()) all.push_back(*v);
  const FrequencyVector fv = FrequencyVector::FromStream(all, kDomain);
  const double truth = fv.F2();
  const JoinStatistics s = ComputeJoinStatistics(fv, fv);

  int covered = 0;
  for (int t = 0; t < kTrials; ++t) {
    SketchParams params;
    params.rows = 128;
    params.seed = MixSeed(9000, static_cast<uint64_t>(t));
    AgmsSketch sketch(params);
    SinkOperator sink = MakeSketchSink(sketch);
    ShedOperator shed(kP, MixSeed(9500, static_cast<uint64_t>(t)), &sink);
    VectorSource source(all);
    RunPipeline(source, shed);

    const double rp = shed.realized_rate();
    const double estimate = RealizedSelfJoinEstimate(
        sketch.EstimateSelfJoin(), rp, shed.forwarded());
    const ConfidenceInterval ci =
        RealizedSelfJoinInterval(estimate, s, rp, params.rows, 0.95);
    if (truth > ci.low && truth < ci.high) ++covered;
  }
  EXPECT_GE(covered, 24) << "95% Eq 26 intervals covered the truth in only "
                         << covered << "/" << kTrials << " runs";
}

}  // namespace
}  // namespace sketchsample
