// Exact validation of the generic factorial-moment variance engine against
// brute-force enumeration of the whole sample space.
//
// For tiny relations, every possible sample can be enumerated with its exact
// probability. Conditioned on a sample, the AGMS ξ moments are known in
// closed form (for exactly 4-wise independent families):
//
//   E[S·T | f', g']    = Σ f'_i g'_i
//   E[S²T² | f', g']   = Σf'² Σg'² + 2(Σf'g')² − 2Σf'²g'²
//   E[S² | f']         = Σ f'_i²
//   E[S⁴ | f']         = 3(Σf'²)² − 2Σf'⁴
//   E[S_k T_k S_l T_l | ·] = (Σf'g')²   for independent families k ≠ l
//
// so the exact expectation and variance of the averaged combined estimator
// follow by summing over the sample space. The engine must match to
// floating-point accuracy. These tests are the ground truth that arbitrates
// between the engine and the paper's closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "src/core/corrections.h"
#include "src/core/generic_variance.h"
#include "src/data/frequency_vector.h"
#include "src/sampling/coefficients.h"

namespace sketchsample {
namespace {

// A sample outcome: per-value frequencies plus its probability.
struct Outcome {
  std::vector<double> freq;
  double probability = 0;
};

// All Bernoulli(p) sample outcomes of a relation given as a frequency
// vector: each of the F1 tuples is independently kept. Enumerate over kept
// counts per value using binomial weights (equivalent to subsets).
std::vector<Outcome> EnumerateBernoulli(const std::vector<uint64_t>& freq,
                                        double p) {
  std::vector<Outcome> outcomes{{std::vector<double>(), 1.0}};
  auto binomial = [](uint64_t n, uint64_t k) {
    double r = 1;
    for (uint64_t i = 0; i < k; ++i) {
      r *= static_cast<double>(n - i) / static_cast<double>(i + 1);
    }
    return r;
  };
  for (uint64_t fi : freq) {
    std::vector<Outcome> next;
    for (const auto& o : outcomes) {
      for (uint64_t k = 0; k <= fi; ++k) {
        Outcome extended = o;
        extended.freq.push_back(static_cast<double>(k));
        extended.probability *= binomial(fi, k) * std::pow(p, k) *
                                std::pow(1 - p, fi - k);
        next.push_back(std::move(extended));
      }
    }
    outcomes = std::move(next);
  }
  return outcomes;
}

// All WR outcomes: m ordered draws, each uniform over tuples; collapse to
// frequency vectors via the multinomial pmf.
std::vector<Outcome> EnumerateWr(const std::vector<uint64_t>& freq,
                                 uint64_t m) {
  double n = 0;
  for (uint64_t f : freq) n += static_cast<double>(f);
  std::vector<Outcome> outcomes;
  // Enumerate compositions of m over the values.
  std::function<void(size_t, uint64_t, std::vector<double>&, double)> rec =
      [&](size_t idx, uint64_t left, std::vector<double>& cur,
          double multinom) {
        if (idx + 1 == freq.size()) {
          cur.push_back(static_cast<double>(left));
          double prob = multinom;
          for (size_t i = 0; i < freq.size(); ++i) {
            prob *= std::pow(static_cast<double>(freq[i]) / n, cur[i]);
          }
          outcomes.push_back({cur, prob});
          cur.pop_back();
          return;
        }
        for (uint64_t k = 0; k <= left; ++k) {
          // multinomial coefficient built incrementally: C(left, k).
          double c = 1;
          for (uint64_t i = 0; i < k; ++i) {
            c *= static_cast<double>(left - i) / static_cast<double>(i + 1);
          }
          cur.push_back(static_cast<double>(k));
          rec(idx + 1, left - k, cur, multinom * c);
          cur.pop_back();
        }
      };
  std::vector<double> cur;
  rec(0, m, cur, 1.0);
  return outcomes;
}

// All WOR outcomes: per-value kept counts with multivariate hypergeometric
// probabilities.
std::vector<Outcome> EnumerateWor(const std::vector<uint64_t>& freq,
                                  uint64_t m) {
  auto choose = [](double n, uint64_t k) {
    double r = 1;
    for (uint64_t i = 0; i < k; ++i) r *= (n - i) / static_cast<double>(i + 1);
    return r;
  };
  double n = 0;
  for (uint64_t f : freq) n += static_cast<double>(f);
  const double total = choose(n, m);
  std::vector<Outcome> outcomes;
  std::function<void(size_t, uint64_t, std::vector<double>&, double)> rec =
      [&](size_t idx, uint64_t left, std::vector<double>& cur, double ways) {
        if (idx + 1 == freq.size()) {
          if (left > freq.back()) return;
          cur.push_back(static_cast<double>(left));
          outcomes.push_back(
              {cur, ways * choose(static_cast<double>(freq.back()), left) /
                        total});
          cur.pop_back();
          return;
        }
        for (uint64_t k = 0; k <= std::min<uint64_t>(left, freq[idx]); ++k) {
          cur.push_back(static_cast<double>(k));
          rec(idx + 1, left - k,
              cur, ways * choose(static_cast<double>(freq[idx]), k));
          cur.pop_back();
        }
      };
  std::vector<double> cur;
  rec(0, m, cur, 1.0);
  return outcomes;
}

double SumP(const std::vector<Outcome>& outcomes) {
  double s = 0;
  for (const auto& o : outcomes) s += o.probability;
  return s;
}

// Exact moments of the averaged combined JOIN estimator X = (C/n) Σ_k S_kT_k
// over independent sample spaces for f and g.
void BruteForceJoin(const std::vector<Outcome>& fs,
                    const std::vector<Outcome>& gs, double scale, size_t n,
                    double* expectation, double* variance) {
  double ex = 0, ex2 = 0;
  const double dn = static_cast<double>(n);
  for (const auto& of : fs) {
    for (const auto& og : gs) {
      const double prob = of.probability * og.probability;
      double dot = 0, f2 = 0, g2 = 0, f2g2 = 0;
      for (size_t i = 0; i < of.freq.size(); ++i) {
        dot += of.freq[i] * og.freq[i];
        f2 += of.freq[i] * of.freq[i];
        g2 += og.freq[i] * og.freq[i];
        f2g2 += of.freq[i] * of.freq[i] * og.freq[i] * og.freq[i];
      }
      const double e_st2 = f2 * g2 + 2 * dot * dot - 2 * f2g2;
      ex += prob * dot;
      ex2 += prob * (e_st2 / dn + (1.0 - 1.0 / dn) * dot * dot);
    }
  }
  *expectation = scale * ex;
  *variance = scale * scale * (ex2 - ex * ex);
}

// Exact moments of the averaged corrected SELF-JOIN estimator
// X = (A/n) Σ_k S_k² − shift, shift = B·Σf'_i (random) or constant.
void BruteForceSelfJoin(const std::vector<Outcome>& fs, double a, double b,
                        bool random_shift, size_t n, double* expectation,
                        double* variance) {
  double ex = 0, ex2 = 0;
  const double dn = static_cast<double>(n);
  for (const auto& of : fs) {
    double f1 = 0, f2 = 0, f4 = 0;
    for (double x : of.freq) {
      f1 += x;
      f2 += x * x;
      f4 += x * x * x * x;
    }
    const double shift = random_shift ? b * f1 : b;
    const double e_s4 = 3 * f2 * f2 - 2 * f4;
    // E[X|sample] and E[X²|sample]:
    const double mean_given = a * f2 - shift;
    const double var_avg_s2_given = (e_s4 - f2 * f2) / dn;
    const double second_given =
        a * a * (var_avg_s2_given + f2 * f2) - 2 * a * f2 * shift +
        shift * shift;
    ex += of.probability * mean_given;
    ex2 += of.probability * second_given;
  }
  *expectation = ex;
  *variance = ex2 - ex * ex;
}

constexpr double kRelTol = 1e-9;

void ExpectClose(double actual, double expected, const char* what) {
  const double tol = kRelTol * std::max(1.0, std::abs(expected));
  EXPECT_NEAR(actual, expected, tol) << what;
}

class GenericEngineParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GenericEngineParamTest, BernoulliJoinMatchesBruteForce) {
  const size_t n = GetParam();
  const std::vector<uint64_t> f = {2, 1, 3};
  const std::vector<uint64_t> g = {1, 2, 0};
  const double p = 0.4, q = 0.7;
  const auto fs = EnumerateBernoulli(f, p);
  const auto gs = EnumerateBernoulli(g, q);
  ASSERT_NEAR(SumP(fs), 1.0, 1e-12);
  ASSERT_NEAR(SumP(gs), 1.0, 1e-12);

  const double scale = 1.0 / (p * q);
  double bf_e, bf_var;
  BruteForceJoin(fs, gs, scale, n, &bf_e, &bf_var);

  const FrequencyVector ff{std::vector<uint64_t>(f)};
  const FrequencyVector gg{std::vector<uint64_t>(g)};
  const auto mf = FrequencyMomentModel::Bernoulli(ff, p);
  const auto mg = FrequencyMomentModel::Bernoulli(gg, q);
  const auto gv = ComputeGenericJoinVariance(mf, mg, scale);

  ExpectClose(gv.expectation, bf_e, "expectation");
  ExpectClose(gv.VarianceAveraged(n), bf_var, "variance");
  // Expectation equals the true join size (unbiasedness).
  ExpectClose(gv.expectation, ExactJoinSize(ff, gg), "unbiased");
}

TEST_P(GenericEngineParamTest, WrJoinMatchesBruteForce) {
  const size_t n = GetParam();
  const std::vector<uint64_t> f = {2, 1, 1};
  const std::vector<uint64_t> g = {1, 2, 1};
  const uint64_t mf_size = 3, mg_size = 2;
  const auto fs = EnumerateWr(f, mf_size);
  const auto gs = EnumerateWr(g, mg_size);
  ASSERT_NEAR(SumP(fs), 1.0, 1e-12);
  ASSERT_NEAR(SumP(gs), 1.0, 1e-12);

  const auto cf = ComputeCoefficients(4, mf_size);
  const auto cg = ComputeCoefficients(4, mg_size);
  const double scale = 1.0 / (cf.alpha * cg.alpha);
  double bf_e, bf_var;
  BruteForceJoin(fs, gs, scale, n, &bf_e, &bf_var);

  const FrequencyVector ff{std::vector<uint64_t>(f)};
  const FrequencyVector gg{std::vector<uint64_t>(g)};
  const auto mmf = FrequencyMomentModel::WithReplacement(ff, mf_size);
  const auto mmg = FrequencyMomentModel::WithReplacement(gg, mg_size);
  const auto gv = ComputeGenericJoinVariance(mmf, mmg, scale);

  ExpectClose(gv.expectation, bf_e, "expectation");
  ExpectClose(gv.VarianceAveraged(n), bf_var, "variance");
  ExpectClose(gv.expectation, ExactJoinSize(ff, gg), "unbiased");
}

TEST_P(GenericEngineParamTest, WorJoinMatchesBruteForce) {
  const size_t n = GetParam();
  const std::vector<uint64_t> f = {2, 2, 1};
  const std::vector<uint64_t> g = {1, 1, 2};
  const uint64_t mf_size = 3, mg_size = 2;
  const auto fs = EnumerateWor(f, mf_size);
  const auto gs = EnumerateWor(g, mg_size);
  ASSERT_NEAR(SumP(fs), 1.0, 1e-12);
  ASSERT_NEAR(SumP(gs), 1.0, 1e-12);

  const auto cf = ComputeCoefficients(5, mf_size);
  const auto cg = ComputeCoefficients(4, mg_size);
  const double scale = 1.0 / (cf.alpha * cg.alpha);
  double bf_e, bf_var;
  BruteForceJoin(fs, gs, scale, n, &bf_e, &bf_var);

  const FrequencyVector ff{std::vector<uint64_t>(f)};
  const FrequencyVector gg{std::vector<uint64_t>(g)};
  const auto mmf = FrequencyMomentModel::WithoutReplacement(ff, mf_size);
  const auto mmg = FrequencyMomentModel::WithoutReplacement(gg, mg_size);
  const auto gv = ComputeGenericJoinVariance(mmf, mmg, scale);

  ExpectClose(gv.expectation, bf_e, "expectation");
  ExpectClose(gv.VarianceAveraged(n), bf_var, "variance");
  ExpectClose(gv.expectation, ExactJoinSize(ff, gg), "unbiased");
}

TEST_P(GenericEngineParamTest, BernoulliSelfJoinMatchesBruteForce) {
  const size_t n = GetParam();
  const std::vector<uint64_t> f = {3, 1, 2};
  const double p = 0.35;
  const auto fs = EnumerateBernoulli(f, p);
  const Correction c = BernoulliSelfJoinCorrection(p, /*sample_size=*/1);
  const double b = (1.0 - p) / (p * p);

  double bf_e, bf_var;
  BruteForceSelfJoin(fs, c.scale, b, /*random_shift=*/true, n, &bf_e,
                     &bf_var);

  const FrequencyVector ff{std::vector<uint64_t>(f)};
  const auto model = FrequencyMomentModel::Bernoulli(ff, p);
  const auto gv =
      ComputeGenericSelfJoinVariance(model, c.scale, b, /*random=*/true);

  ExpectClose(gv.expectation, bf_e, "expectation");
  ExpectClose(gv.VarianceAveraged(n), bf_var, "variance");
  ExpectClose(gv.expectation, ff.F2(), "unbiased");
}

TEST_P(GenericEngineParamTest, WrSelfJoinMatchesBruteForce) {
  const size_t n = GetParam();
  const std::vector<uint64_t> f = {2, 1, 2};
  const uint64_t m = 3;
  const auto fs = EnumerateWr(f, m);
  const auto coef = ComputeCoefficients(5, m);
  const Correction c = WrSelfJoinCorrection(coef);

  double bf_e, bf_var;
  BruteForceSelfJoin(fs, c.scale, c.shift, /*random_shift=*/false, n, &bf_e,
                     &bf_var);

  const FrequencyVector ff{std::vector<uint64_t>(f)};
  const auto model = FrequencyMomentModel::WithReplacement(ff, m);
  const auto gv = ComputeGenericSelfJoinVariance(model, c.scale, c.shift,
                                                 /*random=*/false);

  ExpectClose(gv.expectation, bf_e, "expectation");
  ExpectClose(gv.VarianceAveraged(n), bf_var, "variance");
  ExpectClose(gv.expectation, ff.F2(), "unbiased");
}

TEST_P(GenericEngineParamTest, WorSelfJoinMatchesBruteForce) {
  const size_t n = GetParam();
  const std::vector<uint64_t> f = {3, 2, 1};
  const uint64_t m = 4;
  const auto fs = EnumerateWor(f, m);
  const auto coef = ComputeCoefficients(6, m);
  const Correction c = WorSelfJoinCorrection(coef);

  double bf_e, bf_var;
  BruteForceSelfJoin(fs, c.scale, c.shift, /*random_shift=*/false, n, &bf_e,
                     &bf_var);

  const FrequencyVector ff{std::vector<uint64_t>(f)};
  const auto model = FrequencyMomentModel::WithoutReplacement(ff, m);
  const auto gv = ComputeGenericSelfJoinVariance(model, c.scale, c.shift,
                                                 /*random=*/false);

  ExpectClose(gv.expectation, bf_e, "expectation");
  ExpectClose(gv.VarianceAveraged(n), bf_var, "variance");
  ExpectClose(gv.expectation, ff.F2(), "unbiased");
}

INSTANTIATE_TEST_SUITE_P(AveragingDepths, GenericEngineParamTest,
                         ::testing::Values(1, 2, 5, 50),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Moment model internals.
// ---------------------------------------------------------------------------

TEST(FallingFactorialTest, KnownValues) {
  EXPECT_DOUBLE_EQ(FallingFactorial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(FallingFactorial(5, 1), 5.0);
  EXPECT_DOUBLE_EQ(FallingFactorial(5, 3), 60.0);
  EXPECT_DOUBLE_EQ(FallingFactorial(2, 3), 0.0);  // hits zero factor
  EXPECT_DOUBLE_EQ(FallingFactorial(0, 2), 0.0);
}

TEST(MomentModelTest, BernoulliRawMomentsMatchBinomial) {
  // f_i = 4, p = 0.5: f' ~ Binomial(4, 0.5).
  // E = 2, E[X²] = Var + E² = 1 + 4 = 5,
  // E[X³] = 4·3·2·(1/8) + 3·4·3·(1/4) + 2 = 3 + 9 + 2 = 14,
  // E[X⁴] = (4)₄/16 + 6·(4)₃·(1/8) + 7·(4)₂·(1/4) + 2 = 1.5+18+21+2 = 42.5.
  FrequencyVector f(std::vector<uint64_t>{4});
  const auto model = FrequencyMomentModel::Bernoulli(f, 0.5);
  EXPECT_DOUBLE_EQ(model.RawMoment(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(model.RawMoment(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(model.RawMoment(0, 3), 14.0);
  EXPECT_DOUBLE_EQ(model.RawMoment(0, 4), 42.5);
}

TEST(MomentModelTest, WorFullSampleIsDeterministic) {
  // m = |F|: the sample is the relation, so E[f'^k] = f^k exactly.
  FrequencyVector f(std::vector<uint64_t>{3, 2});
  const auto model = FrequencyMomentModel::WithoutReplacement(f, 5);
  EXPECT_NEAR(model.RawMoment(0, 1), 3.0, 1e-12);
  EXPECT_NEAR(model.RawMoment(0, 2), 9.0, 1e-12);
  EXPECT_NEAR(model.RawMoment(0, 4), 81.0, 1e-12);
  EXPECT_NEAR(model.RawMoment(1, 3), 8.0, 1e-12);
}

TEST(MomentModelTest, InvalidParametersThrow) {
  FrequencyVector f(std::vector<uint64_t>{3, 2});
  EXPECT_THROW(FrequencyMomentModel::Bernoulli(f, 0.0),
               std::invalid_argument);
  EXPECT_THROW(FrequencyMomentModel::Bernoulli(f, 1.5),
               std::invalid_argument);
  EXPECT_THROW(FrequencyMomentModel::WithReplacement(f, 0),
               std::invalid_argument);
  EXPECT_THROW(FrequencyMomentModel::WithoutReplacement(f, 6),
               std::invalid_argument);
}

TEST(MomentModelTest, MomentOrderBoundsChecked) {
  FrequencyVector f(std::vector<uint64_t>{1});
  const auto model = FrequencyMomentModel::Bernoulli(f, 0.5);
  EXPECT_THROW(model.RawMoment(0, 0), std::out_of_range);
  EXPECT_THROW(model.RawMoment(0, 5), std::out_of_range);
  EXPECT_THROW(model.Kappa(0, 0), std::out_of_range);
}

}  // namespace
}  // namespace sketchsample
