// Tests for the single-slot hazard-pointer RCU cell (src/service/snapshot.h)
// that carries published sketch snapshots from the ingest thread to query
// handlers. The racing tests run under the `tsan` ctest label: readers
// spinning on Read while one writer publishes must never observe a torn
// value, and reclamation must never free a snapshot a reader still holds.

// lint:allow-file(raw-atomic-confined): test harness scaffolding (start
// gates, per-reader counters) around the RcuCell under test; the cell
// itself is written against the atomics policy and model-checked in
// tests/mc_spec_test.cc.
#include "src/service/snapshot.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sketchsample {
namespace {

// A value whose invariant breaks visibly if a reader ever sees a partially
// constructed or reclaimed object: every field equals `tag`, and the
// checksum is a pure function of them.
struct Payload {
  uint64_t tag = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t checksum = 0;

  explicit Payload(uint64_t t) : tag(t), a(t * 3), b(t * 7), checksum(t * 11) {}
  bool Consistent() const {
    return a == tag * 3 && b == tag * 7 && checksum == tag * 11;
  }
};

TEST(RcuCellTest, EmptyBeforeFirstPublish) {
  RcuCell<Payload> cell(4);
  auto guard = cell.Read(0);
  EXPECT_FALSE(guard);
  EXPECT_EQ(guard.get(), nullptr);
  EXPECT_EQ(cell.published(), 0u);
}

TEST(RcuCellTest, ZeroReaderSlotsIsRejected) {
  EXPECT_THROW(RcuCell<Payload>(0), std::invalid_argument);
}

TEST(RcuCellTest, OutOfRangeSlotThrows) {
  RcuCell<Payload> cell(2);
  EXPECT_THROW(cell.Read(2), std::out_of_range);
}

TEST(RcuCellTest, PublishThenReadReturnsValue) {
  RcuCell<Payload> cell(2);
  cell.Publish(std::make_unique<const Payload>(5));
  auto guard = cell.Read(0);
  ASSERT_TRUE(guard);
  EXPECT_EQ(guard->tag, 5u);
  EXPECT_TRUE(guard->Consistent());
  EXPECT_EQ(cell.published(), 1u);
}

TEST(RcuCellTest, NewerPublishReplacesOlder) {
  RcuCell<Payload> cell(2);
  cell.Publish(std::make_unique<const Payload>(1));
  cell.Publish(std::make_unique<const Payload>(2));
  auto guard = cell.Read(0);
  ASSERT_TRUE(guard);
  EXPECT_EQ(guard->tag, 2u);
  // No reader held the first snapshot, so it must already be reclaimed.
  EXPECT_EQ(cell.retired_count(), 0u);
}

TEST(RcuCellTest, HeldSnapshotSurvivesPublishUntilReleased) {
  RcuCell<Payload> cell(2);
  cell.Publish(std::make_unique<const Payload>(1));
  {
    auto held = cell.Read(0);
    ASSERT_TRUE(held);
    cell.Publish(std::make_unique<const Payload>(2));
    // The old snapshot is retired but hazard-protected: still readable.
    EXPECT_EQ(cell.retired_count(), 1u);
    EXPECT_EQ(held->tag, 1u);
    EXPECT_TRUE(held->Consistent());
    // A fresh read from another slot sees the new value meanwhile.
    auto fresh = cell.Read(1);
    ASSERT_TRUE(fresh);
    EXPECT_EQ(fresh->tag, 2u);
  }
  // Guard released; the next publish reclaims every dangling retiree.
  cell.Publish(std::make_unique<const Payload>(3));
  EXPECT_EQ(cell.retired_count(), 0u);
}

TEST(RcuCellTest, MoveTransfersGuardOwnership) {
  RcuCell<Payload> cell(2);
  cell.Publish(std::make_unique<const Payload>(9));
  auto guard = cell.Read(0);
  auto moved = std::move(guard);
  EXPECT_FALSE(guard);  // NOLINT(bugprone-use-after-move): asserting the move
  ASSERT_TRUE(moved);
  EXPECT_EQ((*moved).tag, 9u);

  // Move-assign over a live guard releases the old slot first; slot 0 must
  // be reusable immediately after.
  auto other = cell.Read(1);
  other = std::move(moved);
  ASSERT_TRUE(other);
  cell.Publish(std::make_unique<const Payload>(10));
  auto again = cell.Read(1);
  ASSERT_TRUE(again);
  EXPECT_EQ(again->tag, 10u);
}

TEST(RcuCellTest, DestructionReclaimsEverything) {
  // No leak assertions here beyond what ASan/LSan provide: construct,
  // publish several values with one still retired, destroy.
  auto cell = std::make_unique<RcuCell<Payload>>(2);
  cell->Publish(std::make_unique<const Payload>(1));
  auto held = cell->Read(0);
  cell->Publish(std::make_unique<const Payload>(2));
  EXPECT_EQ(cell->retired_count(), 1u);
  held = {};       // quiesce before destruction, as the server does
  cell.reset();    // must free current + retired without touching readers
}

// The core concurrency contract: readers racing a publishing writer never
// see a torn, stale-freed, or inconsistent payload. Run under TSan via the
// `tsan` ctest label.
TEST(RcuCellConcurrencyTest, ReadersNeverObserveTornSnapshots) {
  constexpr size_t kReaders = 4;
  constexpr uint64_t kPublishes = 2000;
  RcuCell<Payload> cell(kReaders);
  cell.Publish(std::make_unique<const Payload>(0));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_tag = 0;
      // do-while: at least one read per reader even if the writer finishes
      // before this thread is first scheduled (single-core hosts).
      do {
        auto guard = cell.Read(r);
        ASSERT_TRUE(guard);
        ASSERT_TRUE(guard->Consistent()) << "torn payload tag " << guard->tag;
        // Publications are monotonic; a reader can lag but never rewind.
        ASSERT_GE(guard->tag, last_tag);
        last_tag = guard->tag;
        reads.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  for (uint64_t i = 1; i <= kPublishes; ++i) {
    cell.Publish(std::make_unique<const Payload>(i));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(cell.published(), kPublishes + 1);
  EXPECT_GT(reads.load(), 0u);
  auto final_guard = cell.Read(0);
  ASSERT_TRUE(final_guard);
  EXPECT_EQ(final_guard->tag, kPublishes);
}

// Readers that hold guards across publishes force the hazard machinery to
// defer reclamation; the retired list must stay bounded by the reader count.
TEST(RcuCellConcurrencyTest, ReclamationBoundedWithSlowReaders) {
  constexpr size_t kReaders = 3;
  constexpr uint64_t kPublishes = 1000;
  RcuCell<Payload> cell(kReaders + 1);
  cell.Publish(std::make_unique<const Payload>(0));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        auto guard = cell.Read(r);
        ASSERT_TRUE(guard);
        // Hold the guard long enough to overlap several publishes.
        const uint64_t seen = guard->tag;
        for (int spin = 0; spin < 64; ++spin) {
          ASSERT_TRUE(guard->Consistent()) << "freed under reader, tag " << seen;
        }
      }
    });
  }

  size_t max_retired = 0;
  for (uint64_t i = 1; i <= kPublishes; ++i) {
    cell.Publish(std::make_unique<const Payload>(i));
    max_retired = std::max(max_retired, cell.retired_count());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Each reader can pin at most one snapshot at a time, so the writer never
  // accumulates more retirees than reader slots.
  EXPECT_LE(max_retired, kReaders + 1);
}

}  // namespace
}  // namespace sketchsample
