// Tests for the bounded single-producer/single-consumer ring
// (src/util/spsc_queue.h). The property that matters is lossless FIFO
// transport under concurrency: across randomized producer/consumer
// interleavings, every pushed value arrives exactly once, in order —
// nothing lost, nothing duplicated, nothing reordered. All randomness is
// seeded, so a failure reproduces exactly.
// lint:allow-file(raw-atomic-confined): harness start gates and counters
// around the ring under test; the ring is written against the atomics
// policy and model-checked in tests/mc_spec_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/rng.h"
#include "src/util/spsc_queue.h"

namespace sketchsample {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueueTest, SingleThreadFifo) {
  SpscQueue<int> queue(4);
  int out = 0;
  EXPECT_FALSE(queue.TryPop(out));  // empty
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(queue.TryPush(v));
  }
  int overflow = 99;
  EXPECT_FALSE(queue.TryPush(overflow));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.TryPop(out));  // drained
}

TEST(SpscQueueTest, InterleavedPushPopWrapsAround) {
  SpscQueue<uint64_t> queue(2);
  uint64_t out = 0;
  // Push/pop far past the capacity so head/tail wrap the index mask many
  // times; FIFO must hold across every wrap.
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t v = i;
    ASSERT_TRUE(queue.TryPush(v));
    v = i + 1000000;
    ASSERT_TRUE(queue.TryPush(v));
    ASSERT_TRUE(queue.TryPop(out));
    EXPECT_EQ(out, i);
    ASSERT_TRUE(queue.TryPop(out));
    EXPECT_EQ(out, i + 1000000);
  }
}

TEST(SpscQueueTest, TransportsMoveOnlyTypes) {
  SpscQueue<std::unique_ptr<int>> queue(2);
  auto in = std::make_unique<int>(42);
  EXPECT_TRUE(queue.TryPush(std::move(in)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.TryPop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscQueueTest, SizeApproxTracksOccupancy) {
  SpscQueue<int> queue(8);
  EXPECT_EQ(queue.SizeApprox(), 0u);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    queue.TryPush(v);
  }
  EXPECT_EQ(queue.SizeApprox(), 5u);
  int out = 0;
  queue.TryPop(out);
  queue.TryPop(out);
  EXPECT_EQ(queue.SizeApprox(), 3u);
}

// The concurrency property: one producer pushing 0..n-1 and one consumer
// popping must see exactly 0..n-1 in order, for any scheduling. Seeded
// random busy-work on both sides varies the interleaving per round, and
// tiny capacities force constant full/empty boundary transitions — the
// cases where a broken ring loses or duplicates slots.
void RunTransferRound(size_t capacity, uint64_t n, uint64_t seed) {
  SpscQueue<uint64_t> queue(capacity);
  std::vector<uint64_t> received;
  received.reserve(n);

  std::thread consumer([&queue, &received, n, seed] {
    Xoshiro256 rng(MixSeed(seed, 1));
    uint64_t out = 0;
    while (received.size() < n) {
      if (queue.TryPop(out)) {
        received.push_back(out);
      } else {
        std::this_thread::yield();
      }
      if ((rng() & 0xFF) == 0) {
        for (int spin = 0; spin < 50; ++spin) {
          std::atomic_signal_fence(std::memory_order_seq_cst);  // busy-work
        }
      }
    }
  });

  Xoshiro256 rng(MixSeed(seed, 2));
  for (uint64_t i = 0; i < n;) {
    uint64_t v = i;
    if (queue.TryPush(v)) {
      ++i;
    } else {
      std::this_thread::yield();
    }
    if ((rng() & 0xFF) == 0) {
      for (int spin = 0; spin < 50; ++spin) {
        std::atomic_signal_fence(std::memory_order_seq_cst);  // busy-work
      }
    }
  }
  consumer.join();

  ASSERT_EQ(received.size(), n) << "capacity=" << capacity << " seed=" << seed;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(received[i], i)
        << "capacity=" << capacity << " seed=" << seed << " index=" << i;
  }
}

TEST(SpscQueueTest, ConcurrentTransferPreservesFifoNoLossNoDuplication) {
  for (const size_t capacity : {2u, 4u, 64u}) {
    for (const uint64_t seed : {1u, 2u, 3u}) {
      RunTransferRound(capacity, 20000, seed);
    }
  }
}

}  // namespace
}  // namespace sketchsample
