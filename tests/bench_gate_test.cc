// Tests for the bench regression gate (tools/gate.{h,cc}): schema
// validation, point matching, throughput-drop detection, error-bound
// gating, cross-host skipping, and malformed-input rejection.
#include "tools/gate.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "tools/bench_gate_main.h"

namespace sketchsample {
namespace gate {
namespace {

// Builds a schema-v1 report with a single point. `labels` and `metrics`
// are injected verbatim as JSON object bodies.
std::string ReportText(const std::string& host, const std::string& metrics,
                       const std::string& labels = "\"skew\":\"0.8\"") {
  return "{\"schema_version\":1,\"name\":\"fig3\",\"host\":\"" + host +
         "\",\"points\":[{\"labels\":{" + labels + "},\"metrics\":{" +
         metrics + "}}]}";
}

JsonValue MustParse(const std::string& text) {
  auto v = JsonValue::Parse(text);
  EXPECT_TRUE(v.has_value()) << text;
  return v.value_or(JsonValue::Null());
}

// Writes `text` to a unique temp file and returns its path. Files are
// tiny and live in the test's scratch dir; cleanup is handled by the
// destructor of the fixture-less helper (removed eagerly in TearDown-ish
// fashion by the caller when it matters, otherwise left to the OS tmp).
class TempFile {
 public:
  explicit TempFile(const std::string& text) {
    static int counter = 0;
    path_ = ::testing::TempDir() + "bench_gate_test_" +
            std::to_string(counter++) + ".json";
    std::ofstream out(path_);
    out << text;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ValidateReportTest, AcceptsWellFormedReport) {
  const JsonValue report =
      MustParse(ReportText("hostA", "\"updates_per_sec\":1e6"));
  EXPECT_EQ(ValidateReport(report), std::nullopt);
}

TEST(ValidateReportTest, RejectsSchemaViolations) {
  EXPECT_TRUE(ValidateReport(MustParse("[]")).has_value());
  EXPECT_TRUE(ValidateReport(MustParse("{\"name\":\"x\"}")).has_value());
  EXPECT_TRUE(ValidateReport(
                  MustParse("{\"schema_version\":2,\"name\":\"x\","
                            "\"points\":[]}"))
                  .has_value());
  EXPECT_TRUE(ValidateReport(
                  MustParse("{\"schema_version\":1,\"points\":[]}"))
                  .has_value());
  EXPECT_TRUE(ValidateReport(
                  MustParse("{\"schema_version\":1,\"name\":\"x\"}"))
                  .has_value());
  // Point without labels/metrics.
  EXPECT_TRUE(ValidateReport(
                  MustParse("{\"schema_version\":1,\"name\":\"x\","
                            "\"points\":[{}]}"))
                  .has_value());
  // Non-numeric metric value.
  EXPECT_TRUE(ValidateReport(
                  MustParse("{\"schema_version\":1,\"name\":\"x\",\"points\":"
                            "[{\"labels\":{},\"metrics\":{\"m\":\"fast\"}}]}"))
                  .has_value());
}

TEST(LoadReportTest, RejectsMissingAndMalformedFiles) {
  std::string error;
  EXPECT_FALSE(LoadReport("/nonexistent/path.json", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  TempFile garbage("{not json at all");
  EXPECT_FALSE(LoadReport(garbage.path(), &error).has_value());
  EXPECT_NE(error.find("malformed JSON"), std::string::npos);

  TempFile wrong_schema("{\"schema_version\":1}");
  EXPECT_FALSE(LoadReport(wrong_schema.path(), &error).has_value());

  TempFile good(ReportText("hostA", "\"updates_per_sec\":1e6"));
  EXPECT_TRUE(LoadReport(good.path(), &error).has_value());
}

TEST(CompareTest, IdenticalReportsPass) {
  const std::string text = ReportText(
      "hostA", "\"updates_per_sec\":1e6,\"mean_rel_error\":0.02,"
               "\"stderr_rel_error\":0.002");
  const Result r = Compare(MustParse(text), MustParse(text), Options());
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.failures.empty());
}

TEST(CompareTest, DetectsThroughputRegressionOnSameHost) {
  // 20% drop against the default 15% tolerance.
  const JsonValue base =
      MustParse(ReportText("hostA", "\"updates_per_sec\":1.0e6"));
  const JsonValue cur =
      MustParse(ReportText("hostA", "\"updates_per_sec\":0.8e6"));
  const Result r = Compare(base, cur, Options());
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("updates_per_sec dropped"), std::string::npos);
}

TEST(CompareTest, ToleratesDropWithinTolerance) {
  const JsonValue base =
      MustParse(ReportText("hostA", "\"updates_per_sec\":1.0e6"));
  const JsonValue cur =
      MustParse(ReportText("hostA", "\"updates_per_sec\":0.9e6"));
  EXPECT_TRUE(Compare(base, cur, Options()).ok);
}

TEST(CompareTest, ThroughputImprovementPasses) {
  const JsonValue base =
      MustParse(ReportText("hostA", "\"updates_per_sec\":1.0e6"));
  const JsonValue cur =
      MustParse(ReportText("hostA", "\"updates_per_sec\":2.0e6"));
  EXPECT_TRUE(Compare(base, cur, Options()).ok);
}

TEST(CompareTest, SkipsThroughputAcrossHostsUnlessForced) {
  const JsonValue base =
      MustParse(ReportText("hostA", "\"updates_per_sec\":1.0e6"));
  const JsonValue cur =
      MustParse(ReportText("hostB", "\"updates_per_sec\":0.5e6"));
  const Result skipped = Compare(base, cur, Options());
  EXPECT_TRUE(skipped.ok);
  ASSERT_FALSE(skipped.notes.empty());
  EXPECT_NE(skipped.notes[0].find("skipping throughput"), std::string::npos);

  Options forced;
  forced.force_throughput = true;
  EXPECT_FALSE(Compare(base, cur, forced).ok);
}

TEST(CompareTest, UnknownHostSkipsThroughput) {
  const JsonValue base =
      MustParse(ReportText("unknown", "\"updates_per_sec\":1.0e6"));
  const JsonValue cur =
      MustParse(ReportText("unknown", "\"updates_per_sec\":0.5e6"));
  EXPECT_TRUE(Compare(base, cur, Options()).ok);
}

// Builds a multi-point report where point i has throughput `tp[i]`.
std::string MultiPointReport(const std::string& host,
                             const std::vector<double>& tp) {
  std::string points;
  for (size_t i = 0; i < tp.size(); ++i) {
    if (i > 0) points += ",";
    points += "{\"labels\":{\"i\":\"" + std::to_string(i) +
              "\"},\"metrics\":{\"updates_per_sec\":" + std::to_string(tp[i]) +
              "}}";
  }
  return "{\"schema_version\":1,\"name\":\"fig3\",\"host\":\"" + host +
         "\",\"points\":[" + points + "]}";
}

TEST(CompareTest, PerPointJitterPassesButUniformShiftFails) {
  // Baseline: four points at 1e6. Jittered current alternates +-25% around
  // the baseline — every point individually exceeds the 15% tolerance in
  // one direction, but the geometric mean ratio is ~0.968, so it passes.
  const JsonValue base =
      MustParse(MultiPointReport("hostA", {1e6, 1e6, 1e6, 1e6}));
  const JsonValue jitter =
      MustParse(MultiPointReport("hostA", {1.25e6, 0.75e6, 1.25e6, 0.75e6}));
  EXPECT_TRUE(Compare(base, jitter, Options()).ok);

  // A uniform 20% drop on every point is a real regression.
  const JsonValue shifted =
      MustParse(MultiPointReport("hostA", {0.8e6, 0.8e6, 0.8e6, 0.8e6}));
  const Result r = Compare(base, shifted, Options());
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);  // one aggregate failure, not four
  EXPECT_NE(r.failures[0].find("geomean"), std::string::npos);
}

// Builds a report whose points carry both throughput and a "seconds"
// duration, exercising the duration-weighted gate path.
std::string TimedReport(const std::string& host,
                        const std::vector<std::pair<double, double>>&
                            rate_and_seconds) {
  std::string points;
  for (size_t i = 0; i < rate_and_seconds.size(); ++i) {
    if (i > 0) points += ",";
    points += "{\"labels\":{\"i\":\"" + std::to_string(i) +
              "\"},\"metrics\":{\"updates_per_sec\":" +
              std::to_string(rate_and_seconds[i].first) +
              ",\"seconds\":" + std::to_string(rate_and_seconds[i].second) +
              "}}";
  }
  return "{\"schema_version\":1,\"name\":\"fig3\",\"host\":\"" + host +
         "\",\"points\":[" + points + "]}";
}

TEST(CompareTest, WeightedGateSkipsJitterDominatedReports) {
  // Total baseline time 2ms < the 0.25s floor: a huge apparent drop is
  // jitter, so the result is a note, not a failure.
  const JsonValue base =
      MustParse(TimedReport("hostA", {{1e9, 0.001}, {1e9, 0.001}}));
  const JsonValue cur =
      MustParse(TimedReport("hostA", {{0.5e9, 0.002}, {0.5e9, 0.002}}));
  const Result r = Compare(base, cur, Options());
  EXPECT_TRUE(r.ok);
  ASSERT_FALSE(r.notes.empty());
  EXPECT_NE(r.notes[0].find("not gated"), std::string::npos);
}

TEST(CompareTest, WeightedGateCatchesRegressionAboveFloor) {
  // 1s of baseline measurement, uniform 20% regression: gated and failed.
  const JsonValue base =
      MustParse(TimedReport("hostA", {{1e9, 0.5}, {1e9, 0.5}}));
  const JsonValue cur =
      MustParse(TimedReport("hostA", {{0.8e9, 0.625}, {0.8e9, 0.625}}));
  const Result r = Compare(base, cur, Options());
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("duration-weighted"), std::string::npos);

  // The same shapes with matching rates pass.
  EXPECT_TRUE(Compare(base, base, Options()).ok);
}

TEST(CompareTest, WeightedGateDiscountsShortNoisyPoints) {
  // One long stable point (1s at 1e9/s, unchanged) dominates one tiny point
  // that swings wildly (10us, 3x slower): no failure.
  const JsonValue base =
      MustParse(TimedReport("hostA", {{1e9, 1.0}, {3e9, 1e-5}}));
  const JsonValue cur =
      MustParse(TimedReport("hostA", {{1e9, 1.0}, {1e9, 3e-5}}));
  EXPECT_TRUE(Compare(base, cur, Options()).ok);
}

TEST(CompareTest, RespectsCustomTolerance) {
  const JsonValue base =
      MustParse(ReportText("hostA", "\"updates_per_sec\":1.0e6"));
  const JsonValue cur =
      MustParse(ReportText("hostA", "\"updates_per_sec\":0.8e6"));
  Options loose;
  loose.throughput_tolerance = 0.25;
  EXPECT_TRUE(Compare(base, cur, loose).ok);
  Options tight;
  tight.throughput_tolerance = 0.10;
  EXPECT_FALSE(Compare(base, cur, tight).ok);
}

TEST(CompareTest, ErrorWithinNoisePasses) {
  // Current mean is one combined-sigma above baseline: inside the 3-sigma
  // bound.
  const JsonValue base = MustParse(ReportText(
      "hostA", "\"mean_rel_error\":0.020,\"stderr_rel_error\":0.002"));
  const JsonValue cur = MustParse(ReportText(
      "hostA", "\"mean_rel_error\":0.0228,\"stderr_rel_error\":0.002"));
  EXPECT_TRUE(Compare(base, cur, Options()).ok);
}

TEST(CompareTest, ErrorBeyondNoiseFails) {
  // Combined noise = sqrt(2)*0.002 ~ 0.00283; 3 sigma ~ 0.0085. A jump of
  // 0.02 is far outside.
  const JsonValue base = MustParse(ReportText(
      "hostA", "\"mean_rel_error\":0.020,\"stderr_rel_error\":0.002"));
  const JsonValue cur = MustParse(ReportText(
      "hostA", "\"mean_rel_error\":0.040,\"stderr_rel_error\":0.002"));
  const Result r = Compare(base, cur, Options());
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("mean_rel_error worsened"), std::string::npos);
}

TEST(CompareTest, ErrorImprovementPasses) {
  const JsonValue base = MustParse(ReportText(
      "hostA", "\"mean_rel_error\":0.040,\"stderr_rel_error\":0.002"));
  const JsonValue cur = MustParse(ReportText(
      "hostA", "\"mean_rel_error\":0.020,\"stderr_rel_error\":0.002"));
  EXPECT_TRUE(Compare(base, cur, Options()).ok);
}

TEST(CompareTest, MissingBaselinePointFails) {
  const JsonValue base = MustParse(
      ReportText("hostA", "\"mean_rel_error\":0.02", "\"skew\":\"0.8\""));
  const JsonValue cur = MustParse(
      ReportText("hostA", "\"mean_rel_error\":0.02", "\"skew\":\"0.5\""));
  const Result r = Compare(base, cur, Options());
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("missing from current"), std::string::npos);
  // The extra current-only point is a note, not a failure.
  ASSERT_FALSE(r.notes.empty());
}

TEST(CompareTest, LabelOrderDoesNotAffectMatching) {
  const JsonValue base = MustParse(ReportText(
      "hostA", "\"mean_rel_error\":0.02", "\"a\":\"1\",\"b\":\"2\""));
  const JsonValue cur = MustParse(ReportText(
      "hostA", "\"mean_rel_error\":0.02", "\"b\":\"2\",\"a\":\"1\""));
  EXPECT_TRUE(Compare(base, cur, Options()).ok);
}

TEST(CompareTest, NameMismatchFails) {
  const std::string base = ReportText("hostA", "\"mean_rel_error\":0.02");
  std::string cur = base;
  const size_t at = cur.find("fig3");
  cur.replace(at, 4, "fig4");
  EXPECT_FALSE(Compare(MustParse(base), MustParse(cur), Options()).ok);
}

TEST(CompareTest, ChecksCanBeDisabled) {
  const JsonValue base = MustParse(ReportText(
      "hostA", "\"updates_per_sec\":1.0e6,\"mean_rel_error\":0.020,"
               "\"stderr_rel_error\":0.002"));
  const JsonValue cur = MustParse(ReportText(
      "hostA", "\"updates_per_sec\":0.5e6,\"mean_rel_error\":0.040,"
               "\"stderr_rel_error\":0.002"));
  Options no_tp;
  no_tp.check_throughput = false;
  Result r = Compare(base, cur, no_tp);
  ASSERT_EQ(r.failures.size(), 1u);  // only the error failure remains
  Options no_err;
  no_err.check_errors = false;
  r = Compare(base, cur, no_err);
  ASSERT_EQ(r.failures.size(), 1u);  // only the throughput failure remains
  no_err.check_throughput = false;
  EXPECT_TRUE(Compare(base, cur, no_err).ok);
}

TEST(CompareTest, EmptyBaselinePointsGateNothing) {
  // An empty baseline is vacuous coverage: nothing can fail, and extra
  // current points are noted but never gated.
  const std::string empty =
      "{\"schema_version\":1,\"name\":\"fig3\",\"host\":\"hostA\","
      "\"points\":[]}";
  const Result both_empty =
      Compare(MustParse(empty), MustParse(empty), Options());
  EXPECT_TRUE(both_empty.ok);

  const JsonValue populated = MustParse(
      ReportText("hostA", "\"updates_per_sec\":1.0e6"));
  const Result extra = Compare(MustParse(empty), populated, Options());
  EXPECT_TRUE(extra.ok);
  ASSERT_FALSE(extra.notes.empty());
  EXPECT_NE(extra.notes.back().find("not present in the baseline"),
            std::string::npos);

  // The reverse — populated baseline, empty current — is a coverage
  // regression on every baseline point.
  const Result vanished = Compare(populated, MustParse(empty), Options());
  EXPECT_FALSE(vanished.ok);
  ASSERT_EQ(vanished.failures.size(), 1u);
  EXPECT_NE(vanished.failures[0].find("missing from current"),
            std::string::npos);
}

TEST(CompareTest, DisappearedErrorMetricFails) {
  // The accuracy metric vanishing from the current report must fail, not
  // silently skip: otherwise a bench that stops reporting accuracy passes
  // the gate forever.
  const JsonValue base = MustParse(ReportText(
      "hostA", "\"mean_rel_error\":0.02,\"stderr_rel_error\":0.002"));
  const JsonValue cur =
      MustParse(ReportText("hostA", "\"updates_per_sec\":1.0e6"));
  const Result r = Compare(base, cur, Options());
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("accuracy coverage regression"),
            std::string::npos);

  // With the accuracy gate disabled the same pair passes.
  Options no_err;
  no_err.check_errors = false;
  EXPECT_TRUE(Compare(base, cur, no_err).ok);
}

// Runs BenchGateMain with a synthetic argv (the CLI mutates nothing, but
// argv must be writable char* per the main() contract).
int RunBenchGateMain(const std::vector<std::string>& args) {
  std::vector<std::vector<char>> storage;
  storage.reserve(args.size() + 1);
  storage.emplace_back(std::vector<char>{'b', 'g', '\0'});
  for (const std::string& arg : args) {
    storage.emplace_back(arg.begin(), arg.end());
    storage.back().push_back('\0');
  }
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return BenchGateMain(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchGateMainTest, ExitCodeContract) {
  const std::string ok_metrics =
      "\"updates_per_sec\":1.0e6,\"mean_rel_error\":0.02,"
      "\"stderr_rel_error\":0.002";
  TempFile baseline(ReportText("hostA", ok_metrics));
  TempFile same(ReportText("hostA", ok_metrics));
  TempFile regressed(ReportText("hostA",
                                "\"updates_per_sec\":0.5e6,"
                                "\"mean_rel_error\":0.02,"
                                "\"stderr_rel_error\":0.002"));

  // 0: no regression.
  EXPECT_EQ(RunBenchGateMain({baseline.path(), same.path()}), 0);
  // 1: regression detected.
  EXPECT_EQ(RunBenchGateMain({baseline.path(), regressed.path()}), 1);
  // 0: the only regression is throughput, and that gate is disabled.
  EXPECT_EQ(RunBenchGateMain(
                {"--no_throughput=true", baseline.path(), regressed.path()}),
            0);
}

TEST(BenchGateMainTest, UsageAndMalformedInputExitTwo) {
  TempFile baseline(ReportText("hostA", "\"updates_per_sec\":1.0e6"));

  // Wrong arity.
  EXPECT_EQ(RunBenchGateMain({}), 2);
  EXPECT_EQ(RunBenchGateMain({baseline.path()}), 2);
  EXPECT_EQ(RunBenchGateMain(
                {baseline.path(), baseline.path(), baseline.path()}),
            2);
  // Unknown flag.
  EXPECT_EQ(RunBenchGateMain(
                {"--no_such_flag=1", baseline.path(), baseline.path()}),
            2);
  // Unreadable and malformed current reports.
  EXPECT_EQ(RunBenchGateMain({baseline.path(), "/nonexistent/cur.json"}), 2);
  TempFile malformed("{\"schema_version\":1,");
  EXPECT_EQ(RunBenchGateMain({baseline.path(), malformed.path()}), 2);
  // Schema-invalid (valid JSON, wrong shape) baseline.
  TempFile wrong_schema("{\"schema_version\":1}");
  EXPECT_EQ(RunBenchGateMain({wrong_schema.path(), baseline.path()}), 2);
  // Empty file.
  TempFile empty("");
  EXPECT_EQ(RunBenchGateMain({empty.path(), baseline.path()}), 2);
}

TEST(GateFilesTest, EndToEndRegressionAndPass) {
  TempFile baseline(ReportText(
      "hostA", "\"updates_per_sec\":1.0e6,\"mean_rel_error\":0.02,"
               "\"stderr_rel_error\":0.002"));
  TempFile same(ReportText(
      "hostA", "\"updates_per_sec\":1.0e6,\"mean_rel_error\":0.02,"
               "\"stderr_rel_error\":0.002"));
  TempFile regressed(ReportText(
      "hostA", "\"updates_per_sec\":0.8e6,\"mean_rel_error\":0.02,"
               "\"stderr_rel_error\":0.002"));

  EXPECT_TRUE(GateFiles(baseline.path(), same.path(), Options()).ok);
  EXPECT_FALSE(GateFiles(baseline.path(), regressed.path(), Options()).ok);

  TempFile malformed("{\"schema_version\":1,");
  const Result bad = GateFiles(baseline.path(), malformed.path(), Options());
  EXPECT_FALSE(bad.ok);
  ASSERT_EQ(bad.failures.size(), 1u);
  EXPECT_NE(bad.failures[0].find("malformed JSON"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Within-report ratio rules (bench/rules/*.json).

// A report with the fused-kernel ISA series: scalar at 1e6 updates/s and a
// vector level at `vector_rate`, plus an "isa" config stamp.
std::string IsaReport(const std::string& isa, double vector_rate) {
  char buf[600];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\":1,\"name\":\"bench_x\",\"host\":\"hostA\","
      "\"config\":{\"isa\":\"%s\"},\"points\":["
      "{\"labels\":{\"benchmark\":\"BM_Fused/scalar\"},"
      "\"metrics\":{\"updates_per_sec\":1e6}},"
      "{\"labels\":{\"benchmark\":\"BM_Fused/avx2\"},"
      "\"metrics\":{\"updates_per_sec\":%g}}]}",
      isa.c_str(), vector_rate);
  return buf;
}

std::string RuleText(double min_ratio, const std::string& require_isa,
                     const std::string& numerator = "BM_Fused/avx2") {
  char buf[500];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\":1,\"rules\":[{"
      "\"description\":\"vector >= %gx scalar\","
      "\"metric\":\"updates_per_sec\",\"min_ratio\":%g%s,"
      "\"numerator\":{\"benchmark\":\"%s\"},"
      "\"denominator\":{\"benchmark\":\"BM_Fused/scalar\"}}]}",
      min_ratio, min_ratio,
      require_isa.empty()
          ? ""
          : (",\"require_isa\":\"" + require_isa + "\"").c_str(),
      numerator.c_str());
  return buf;
}

std::vector<RatioRule> MustLoadRules(const std::string& text) {
  TempFile file(text);
  std::string error;
  auto rules = LoadRules(file.path(), &error);
  EXPECT_TRUE(rules.has_value()) << error;
  return rules.value_or(std::vector<RatioRule>{});
}

TEST(RatioRuleTest, ValidatesSchema) {
  EXPECT_TRUE(ValidateRules(MustParse("[]")).has_value());
  EXPECT_TRUE(ValidateRules(MustParse("{\"rules\":[]}")).has_value());
  // Missing min_ratio.
  EXPECT_TRUE(
      ValidateRules(
          MustParse("{\"schema_version\":1,\"rules\":[{"
                    "\"numerator\":{\"benchmark\":\"a\"},"
                    "\"denominator\":{\"benchmark\":\"b\"}}]}"))
          .has_value());
  // Empty numerator selector.
  EXPECT_TRUE(ValidateRules(
                  MustParse("{\"schema_version\":1,\"rules\":[{"
                            "\"min_ratio\":2,\"numerator\":{},"
                            "\"denominator\":{\"benchmark\":\"b\"}}]}"))
                  .has_value());
  EXPECT_EQ(ValidateRules(MustParse(RuleText(2.0, "avx2"))), std::nullopt);
  // The optional report stamp must be a string when present.
  EXPECT_TRUE(ValidateRules(
                  MustParse("{\"schema_version\":1,\"report\":7,"
                            "\"rules\":[]}"))
                  .has_value());
  EXPECT_EQ(ValidateRules(MustParse("{\"schema_version\":1,"
                                    "\"report\":\"bench_x\",\"rules\":[]}")),
            std::nullopt);
}

TEST(RatioRuleTest, LoadRulesSurfacesTheDeclaredReportName) {
  TempFile stamped("{\"schema_version\":1,\"report\":\"bench_x\","
                   "\"rules\":[]}");
  std::string error;
  std::string declared = "sentinel";
  EXPECT_TRUE(LoadRules(stamped.path(), &error, &declared).has_value())
      << error;
  EXPECT_EQ(declared, "bench_x");

  TempFile unstamped("{\"schema_version\":1,\"rules\":[]}");
  declared = "sentinel";
  EXPECT_TRUE(LoadRules(unstamped.path(), &error, &declared).has_value())
      << error;
  EXPECT_EQ(declared, "");
}

// A rules file written for a different benchmark series must be a usage
// error (exit 2) with its own diagnostic, not a pile of per-rule coverage
// regressions (exit 1): the fix is passing the right file, not the bench.
TEST(BenchGateMainTest, RulesForAnAbsentSeriesExitTwo) {
  TempFile report(ReportText("hostA", "\"updates_per_sec\":1.0e6"));
  TempFile wrong_series(
      "{\"schema_version\":1,\"report\":\"bench_other\",\"rules\":[{"
      "\"min_ratio\":2,\"metric\":\"updates_per_sec\","
      "\"numerator\":{\"benchmark\":\"a\"},"
      "\"denominator\":{\"benchmark\":\"b\"}}]}");
  EXPECT_EQ(RunBenchGateMain({"--rules=" + wrong_series.path(), report.path(),
                              report.path()}),
            2);

  // The same rule under the right series stamp proceeds to evaluation and
  // fails as a genuine coverage regression (exit 1), as before.
  TempFile right_series(
      "{\"schema_version\":1,\"report\":\"fig3\",\"rules\":[{"
      "\"min_ratio\":2,\"metric\":\"updates_per_sec\","
      "\"numerator\":{\"benchmark\":\"a\"},"
      "\"denominator\":{\"benchmark\":\"b\"}}]}");
  EXPECT_EQ(RunBenchGateMain({"--rules=" + right_series.path(), report.path(),
                              report.path()}),
            1);

  // An unstamped rules file keeps the old behavior: evaluated as-is.
  TempFile unstamped(
      "{\"schema_version\":1,\"rules\":[{"
      "\"min_ratio\":2,\"metric\":\"updates_per_sec\","
      "\"numerator\":{\"benchmark\":\"a\"},"
      "\"denominator\":{\"benchmark\":\"b\"}}]}");
  EXPECT_EQ(RunBenchGateMain({"--rules=" + unstamped.path(), report.path(),
                              report.path()}),
            1);
}

TEST(RatioRuleTest, PassesWhenRatioMet) {
  const auto rules = MustLoadRules(RuleText(2.0, ""));
  const Result result = CheckRules(MustParse(IsaReport("avx2", 2.5e6)), rules);
  EXPECT_TRUE(result.ok) << (result.failures.empty() ? ""
                                                     : result.failures[0]);
}

TEST(RatioRuleTest, FailsWhenRatioBelowMinimum) {
  const auto rules = MustLoadRules(RuleText(2.0, ""));
  const Result result = CheckRules(MustParse(IsaReport("avx2", 1.4e6)), rules);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.failures[0].find("below required"), std::string::npos);
}

TEST(RatioRuleTest, MissingNumeratorPointIsCoverageFailure) {
  // The rule names a point the report does not have: a vector kernel
  // silently falling off the dispatch table must fail, not skip.
  const auto rules = MustLoadRules(RuleText(2.0, "", "BM_Fused/avx512"));
  const Result result = CheckRules(MustParse(IsaReport("avx2", 2.5e6)), rules);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.failures[0].find("coverage regression"), std::string::npos);
}

TEST(RatioRuleTest, RequireIsaSkipsBelowLevelAndEngagesAtLevel) {
  const auto rules = MustLoadRules(RuleText(2.0, "avx512"));
  // Report ran capped at avx2: the avx512 rule is a note, not a failure.
  const Result skipped =
      CheckRules(MustParse(IsaReport("avx2", 1.0e6)), rules);
  EXPECT_TRUE(skipped.ok);
  ASSERT_EQ(skipped.notes.size(), 1u);
  EXPECT_NE(skipped.notes[0].find("skipped"), std::string::npos);
  // Report ran at avx512: the rule engages and fails on the same numbers.
  EXPECT_FALSE(CheckRules(MustParse(IsaReport("avx512", 1.0e6)), rules).ok);
}

TEST(RatioRuleTest, MainWiresRulesFlag) {
  TempFile baseline(IsaReport("avx2", 2.5e6));
  TempFile current(IsaReport("avx2", 2.5e6));
  TempFile good_rules(RuleText(2.0, "avx2"));
  TempFile tight_rules(RuleText(3.0, "avx2"));
  TempFile bad_rules("{\"schema_version\":1,");
  EXPECT_EQ(RunBenchGateMain({"--rules=" + good_rules.path(), baseline.path(),
                              current.path()}),
            0);
  EXPECT_EQ(RunBenchGateMain({"--rules=" + tight_rules.path(),
                              baseline.path(), current.path()}),
            1);
  EXPECT_EQ(RunBenchGateMain({"--rules=" + bad_rules.path(), baseline.path(),
                              current.path()}),
            2);
}

}  // namespace
}  // namespace gate
}  // namespace sketchsample
