// Property tests for the sampling-only estimators (Props 3-6): unbiasedness
// over Monte-Carlo trials and exactness on full samples.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/sampling_estimators.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/sampling/bernoulli.h"
#include "src/sampling/with_replacement.h"
#include "src/sampling/without_replacement.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {
namespace {

struct Workload {
  FrequencyVector f;
  FrequencyVector g;
  std::vector<uint64_t> stream_f;
  std::vector<uint64_t> stream_g;
  double join = 0;
  double self_join = 0;
};

Workload MakeWorkload(double skew_f, double skew_g) {
  Workload w;
  w.f = ZipfFrequencies(40, 600, skew_f);
  w.g = ZipfFrequencies(40, 500, skew_g);
  w.stream_f = w.f.ToTupleStream();
  w.stream_g = w.g.ToTupleStream();
  w.join = ExactJoinSize(w.f, w.g);
  w.self_join = w.f.F2();
  return w;
}

class SamplingEstimatorSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(SamplingEstimatorSkewTest, BernoulliJoinIsUnbiased) {
  const Workload w = MakeWorkload(GetParam(), 1.0);
  constexpr double kP = 0.25, kQ = 0.4;
  RunningStats stats;
  for (int rep = 0; rep < 600; ++rep) {
    BernoulliSampler sf(kP, MixSeed(1, rep));
    BernoulliSampler sg(kQ, MixSeed(2, rep));
    const auto fs = FrequencyVector::FromStream(sf.Sample(w.stream_f), 40);
    const auto gs = FrequencyVector::FromStream(sg.Sample(w.stream_g), 40);
    stats.Add(BernoulliJoinSampleEstimate(fs, gs, kP, kQ));
  }
  EXPECT_NEAR(stats.Mean(), w.join, 5.0 * stats.StdError());
}

TEST_P(SamplingEstimatorSkewTest, BernoulliSelfJoinIsUnbiased) {
  const Workload w = MakeWorkload(GetParam(), 1.0);
  constexpr double kP = 0.3;
  RunningStats stats;
  for (int rep = 0; rep < 600; ++rep) {
    BernoulliSampler sf(kP, MixSeed(3, rep));
    const auto fs = FrequencyVector::FromStream(sf.Sample(w.stream_f), 40);
    stats.Add(BernoulliSelfJoinSampleEstimate(fs, kP));
  }
  EXPECT_NEAR(stats.Mean(), w.self_join, 5.0 * stats.StdError());
}

TEST_P(SamplingEstimatorSkewTest, WrJoinIsUnbiased) {
  const Workload w = MakeWorkload(GetParam(), 0.5);
  RunningStats stats;
  for (int rep = 0; rep < 600; ++rep) {
    Xoshiro256 rng(MixSeed(4, rep));
    const auto fs = FrequencyVector::FromStream(
        SampleWithReplacement(w.stream_f, 150, rng), 40);
    const auto gs = FrequencyVector::FromStream(
        SampleWithReplacement(w.stream_g, 100, rng), 40);
    stats.Add(WrJoinSampleEstimate(fs, gs, w.stream_f.size(),
                                   w.stream_g.size()));
  }
  EXPECT_NEAR(stats.Mean(), w.join, 5.0 * stats.StdError());
}

TEST_P(SamplingEstimatorSkewTest, WrSelfJoinIsUnbiased) {
  const Workload w = MakeWorkload(GetParam(), 1.0);
  RunningStats stats;
  for (int rep = 0; rep < 600; ++rep) {
    Xoshiro256 rng(MixSeed(5, rep));
    const auto fs = FrequencyVector::FromStream(
        SampleWithReplacement(w.stream_f, 120, rng), 40);
    stats.Add(WrSelfJoinSampleEstimate(fs, w.stream_f.size()));
  }
  EXPECT_NEAR(stats.Mean(), w.self_join, 5.0 * stats.StdError());
}

TEST_P(SamplingEstimatorSkewTest, WorJoinIsUnbiased) {
  const Workload w = MakeWorkload(GetParam(), 1.5);
  RunningStats stats;
  for (int rep = 0; rep < 600; ++rep) {
    Xoshiro256 rng(MixSeed(6, rep));
    const auto fs = FrequencyVector::FromStream(
        SampleWithoutReplacement(w.stream_f, 150, rng), 40);
    const auto gs = FrequencyVector::FromStream(
        SampleWithoutReplacement(w.stream_g, 125, rng), 40);
    stats.Add(WorJoinSampleEstimate(fs, gs, w.stream_f.size(),
                                    w.stream_g.size()));
  }
  EXPECT_NEAR(stats.Mean(), w.join, 5.0 * stats.StdError());
}

TEST_P(SamplingEstimatorSkewTest, WorSelfJoinIsUnbiased) {
  const Workload w = MakeWorkload(GetParam(), 1.0);
  RunningStats stats;
  for (int rep = 0; rep < 600; ++rep) {
    Xoshiro256 rng(MixSeed(7, rep));
    const auto fs = FrequencyVector::FromStream(
        SampleWithoutReplacement(w.stream_f, 150, rng), 40);
    stats.Add(WorSelfJoinSampleEstimate(fs, w.stream_f.size()));
  }
  EXPECT_NEAR(stats.Mean(), w.self_join, 5.0 * stats.StdError());
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, SamplingEstimatorSkewTest,
                         ::testing::Values(0.0, 0.8, 2.0),
                         [](const auto& info) {
                           return "skew_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 10));
                         });

TEST(SamplingEstimatorExactnessTest, FullBernoulliSampleIsExact) {
  const Workload w = MakeWorkload(1.0, 1.0);
  EXPECT_DOUBLE_EQ(BernoulliJoinSampleEstimate(w.f, w.g, 1.0, 1.0), w.join);
  EXPECT_DOUBLE_EQ(BernoulliSelfJoinSampleEstimate(w.f, 1.0), w.self_join);
}

TEST(SamplingEstimatorExactnessTest, FullWorSampleIsExact) {
  const Workload w = MakeWorkload(1.0, 1.0);
  EXPECT_DOUBLE_EQ(
      WorJoinSampleEstimate(w.f, w.g, w.stream_f.size(), w.stream_g.size()),
      w.join);
  EXPECT_NEAR(WorSelfJoinSampleEstimate(w.f, w.stream_f.size()),
              w.self_join, 1e-9);
}

}  // namespace
}  // namespace sketchsample
