// The ξ families: limited-independence {+1, -1} random variables.
//
// An AGMS sketch (Eq 12 of the paper) adds ξ_{t.A} for every tuple t, where ξ
// is a family of 4-wise independent ±1 random variables indexed by the join
// attribute's domain. A "family" here is a seeded hash object: the seed fixes
// the whole (conceptually huge) vector of signs, and Sign(i) evaluates entry
// i on demand in O(1) without materializing the vector.
//
// The schemes implemented (following Rusu & Dobra, "Pseudo-Random Number
// Generation for Sketch-Based Estimations", TODS 2007 — the paper's ref [17]):
//
//   scheme      independence   generator cost      notes
//   ----------  -------------  ------------------  --------------------------
//   BCH3        3-wise         1 AND + parity      linear code, cheapest
//   EH3         3-wise         parity + pair-ORs   extended Hamming code
//   BCH5        5-wise         GF(2^64) cube       x + x^3 over GF(2^64)
//   CW2         2-wise         1 mulmod            degree-1 CW polynomial
//   CW4         exactly 4-wise 3 mulmod            degree-3 CW polynomial;
//                                                  the reference family for
//                                                  the AGMS variance bounds
//   Tabulation  3-wise         8 table lookups     simple tabulation hashing
//
// CW2/CW4 map a field element to a sign via its low bit; since |field| is
// odd this carries a bias of 2^-61 which is ignored (standard practice).
#ifndef SKETCHSAMPLE_PRNG_XI_H_
#define SKETCHSAMPLE_PRNG_XI_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace sketchsample {

/// Identifies a ξ-generation scheme; see the table in the file comment.
enum class XiScheme {
  kBch3,
  kEh3,
  kBch5,
  kCw2,
  kCw4,
  kTabulation,
};

/// Returns a human-readable name ("CW4", "EH3", ...).
std::string XiSchemeName(XiScheme scheme);

/// Parses a name as accepted by XiSchemeName (case-insensitive).
/// Throws std::invalid_argument for unknown names.
XiScheme XiSchemeFromName(const std::string& name);

/// Abstract seeded family of ±1 random variables over 64-bit keys.
///
/// Implementations are immutable after construction and safe to share across
/// threads. Equality of seeds implies equality of the whole family.
class XiFamily {
 public:
  virtual ~XiFamily() = default;

  /// ξ_key ∈ {+1, -1}.
  virtual int Sign(uint64_t key) const = 0;

  /// Batch evaluation: out[i] = Sign(keys[i]) for i in [0, n). One virtual
  /// dispatch per batch; every concrete family overrides this with a
  /// branchless, devirtualized inner loop so independent keys pipeline (and
  /// auto-vectorize where the arithmetic allows). The default forwards to
  /// Sign() per key and exists only for exotic out-of-tree families.
  virtual void SignBatch(const uint64_t* keys, size_t n, int8_t* out) const {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<int8_t>(Sign(keys[i]));
    }
  }

  /// Wise-ness of the family: k such that any k entries are independent.
  virtual int IndependenceLevel() const = 0;

  /// Bytes of state backing this family: the seeded parameters plus any
  /// heap-allocated tables (materialized sign bits, tabulation tables).
  /// Sketches sum this into their MemoryBytes() so reported footprints
  /// cover hash/ξ state, not just counters.
  virtual size_t MemoryBytes() const = 0;

  /// Scheme identifier for diagnostics.
  virtual XiScheme Scheme() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<XiFamily> Clone() const = 0;
};

/// Creates a fresh family of the given scheme, seeding all internal
/// parameters from `seed`. Distinct seeds give (statistically) independent
/// families, which is how averaged AGMS estimators are built.
std::unique_ptr<XiFamily> MakeXiFamily(XiScheme scheme, uint64_t seed);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_XI_H_
