// Pairwise-independent bucket hashing for hash-based sketches.
#ifndef SKETCHSAMPLE_PRNG_HASH_H_
#define SKETCHSAMPLE_PRNG_HASH_H_

#include <cstdint>

namespace sketchsample {

/// 2-universal hash h: uint64 -> [0, num_buckets), the bucket selector used
/// by F-AGMS (Count-Sketch), Count-Min, and FastCount. Implemented as a
/// Carter-Wegman degree-1 polynomial over GF(2^61 - 1) followed by a modulo
/// on the bucket count.
class PairwiseHash {
 public:
  /// Constructs a hash into `num_buckets` buckets (must be >= 1), with the
  /// random coefficients derived from `seed`.
  PairwiseHash(uint64_t seed, uint64_t num_buckets);

  /// Bucket for `key`, in [0, num_buckets()).
  uint64_t Bucket(uint64_t key) const;

  uint64_t num_buckets() const { return num_buckets_; }

 private:
  uint64_t a_ = 1;
  uint64_t b_ = 0;
  uint64_t num_buckets_ = 1;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_HASH_H_
