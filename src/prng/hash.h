// Pairwise-independent bucket hashing for hash-based sketches.
#ifndef SKETCHSAMPLE_PRNG_HASH_H_
#define SKETCHSAMPLE_PRNG_HASH_H_

#include <cstddef>
#include <cstdint>

#include "src/prng/simd/dispatch.h"

namespace sketchsample {

/// 2-universal hash h: uint64 -> [0, num_buckets), the bucket selector used
/// by F-AGMS (Count-Sketch), Count-Min, and FastCount. Implemented as a
/// Carter-Wegman degree-1 polynomial over GF(2^61 - 1) followed by a modulo
/// on the bucket count.
class PairwiseHash {
 public:
  /// Constructs a hash into `num_buckets` buckets (must be >= 1), with the
  /// random coefficients derived from `seed`.
  PairwiseHash(uint64_t seed, uint64_t num_buckets);

  /// Bucket for `key`, in [0, num_buckets()).
  uint64_t Bucket(uint64_t key) const;

  /// Batch evaluation: out[i] = Bucket(keys[i]) for i in [0, n). Uses the
  /// lazy Mersenne arithmetic and the reciprocal modulo below, so the loop
  /// is branch-free and pipelines across keys; results are identical to
  /// scalar Bucket().
  void BucketBatch(const uint64_t* keys, size_t n, uint64_t* out) const;

  uint64_t num_buckets() const { return num_buckets_; }

  // Internals exposed for fused batch kernels (see FagmsSketch::UpdateBatch)
  // that evaluate the hash inline next to a ξ polynomial over the same keys.
  uint64_t multiplier() const { return a_; }
  uint64_t offset() const { return b_; }
  /// Granlund-Montgomery round-up magic for division by num_buckets();
  /// callers can hoist these into locals to keep tight loops free of member
  /// reloads.
  uint64_t magic() const { return magic_; }
  uint32_t magic_shift() const { return shift_; }
  uint64_t magic_mask() const { return mask_; }

  /// Loop-invariant state bundled for the dispatched batch kernels
  /// (src/prng/simd/): plain-struct copies of the members above.
  simd::BucketParams KernelParams() const {
    return simd::BucketParams{a_, b_, num_buckets_, magic_, mask_, shift_};
  }

  /// Exact x % num_buckets() for x < 2^61 (every canonical GF(2^61 - 1)
  /// residue), computed with two multiplies instead of a hardware divide.
  /// With s the smallest shift such that 2^s >= d, s' = max(s - 3, 0), and
  /// M = floor(2^(64+s') / d) + 1, the error e = M·d - 2^(64+s') satisfies
  /// e <= d <= 2^(s'+3), so e·x < 2^(s'+3)·2^61 = 2^(64+s') for all
  /// x < 2^61 and q = mulhi(M, x) >> s' is the exact quotient. The quotient
  /// needs only the high 64 product bits plus one shift. d == 1 would need
  /// M = 2^64 + 1, which does not fit; the constructor instead stores an
  /// all-zero mask so the remainder collapses to the correct constant 0.
  uint64_t FastModBuckets(uint64_t x) const {
    const uint64_t q = static_cast<uint64_t>(
                           (static_cast<__uint128_t>(magic_) * x) >> 64) >>
                       shift_;
    return (x - q * num_buckets_) & mask_;
  }

 private:
  uint64_t a_ = 1;
  uint64_t b_ = 0;
  uint64_t num_buckets_ = 1;
  uint64_t magic_ = 0;   // floor(2^(64 + shift_) / num_buckets_) + 1
  uint64_t mask_ = 0;    // ~0 normally; 0 for the one-bucket degenerate case
  uint32_t shift_ = 0;   // max(ceil_log2(num_buckets_) - 3, 0)
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_HASH_H_
