#include "src/prng/mersenne61.h"

namespace sketchsample {

uint64_t PowMod61(uint64_t a, uint64_t e) {
  uint64_t result = 1;
  uint64_t base = Mod61(a);
  while (e > 0) {
    if (e & 1) result = MulMod61(result, base);
    base = MulMod61(base, base);
    e >>= 1;
  }
  return result;
}

uint64_t UniformMod61(Xoshiro256& rng) {
  // Draw 61 random bits; reject the single value p (2^61 - 1) so the result
  // is exactly uniform over the field.
  for (;;) {
    uint64_t x = rng() >> 3;  // 61 bits
    if (x != kMersenne61) return x;
  }
}

}  // namespace sketchsample
