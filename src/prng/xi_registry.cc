#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/prng/bch.h"
#include "src/prng/cw.h"
#include "src/prng/eh3.h"
#include "src/prng/tabulation.h"
#include "src/prng/xi.h"

namespace sketchsample {

std::string XiSchemeName(XiScheme scheme) {
  switch (scheme) {
    case XiScheme::kBch3:
      return "BCH3";
    case XiScheme::kEh3:
      return "EH3";
    case XiScheme::kBch5:
      return "BCH5";
    case XiScheme::kCw2:
      return "CW2";
    case XiScheme::kCw4:
      return "CW4";
    case XiScheme::kTabulation:
      return "Tabulation";
  }
  return "unknown";
}

XiScheme XiSchemeFromName(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "bch3") return XiScheme::kBch3;
  if (lower == "eh3") return XiScheme::kEh3;
  if (lower == "bch5") return XiScheme::kBch5;
  if (lower == "cw2") return XiScheme::kCw2;
  if (lower == "cw4") return XiScheme::kCw4;
  if (lower == "tabulation" || lower == "tab") return XiScheme::kTabulation;
  throw std::invalid_argument("unknown xi scheme: " + name);
}

std::unique_ptr<XiFamily> MakeXiFamily(XiScheme scheme, uint64_t seed) {
  switch (scheme) {
    case XiScheme::kBch3:
      return std::make_unique<Bch3Xi>(seed);
    case XiScheme::kEh3:
      return std::make_unique<Eh3Xi>(seed);
    case XiScheme::kBch5:
      return std::make_unique<Bch5Xi>(seed);
    case XiScheme::kCw2:
      return std::make_unique<Cw2Xi>(seed);
    case XiScheme::kCw4:
      return std::make_unique<Cw4Xi>(seed);
    case XiScheme::kTabulation:
      return std::make_unique<TabulationXi>(seed);
  }
  throw std::invalid_argument("unknown xi scheme enum value");
}

}  // namespace sketchsample
