// Materialized ξ families: precomputed sign tables for bounded domains.
//
// Evaluating CW4 costs three 61-bit modular multiplications per key; an
// AGMS sketch with hundreds of rows pays that per row per tuple. When the
// key domain is known and bounded (the paper's experiments use |I| = 1M),
// the whole family can be materialized once into a packed bit table —
// 1 bit per domain value — turning Sign() into a load + shift. The paper's
// ref [17] calls this the scheme that "trades space for generation time".
//
// A materialized family is observationally identical to its base family on
// [0, domain_size); keys outside the table fall back to the base family.
#ifndef SKETCHSAMPLE_PRNG_MATERIALIZED_H_
#define SKETCHSAMPLE_PRNG_MATERIALIZED_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/prng/xi.h"

namespace sketchsample {

/// Wraps any ξ family with a precomputed sign table over [0, domain_size).
class MaterializedXi final : public XiFamily {
 public:
  /// Evaluates `base` on every key in [0, domain_size) (O(domain) time,
  /// domain/8 bytes of space) and keeps `base` for out-of-table keys.
  MaterializedXi(std::unique_ptr<XiFamily> base, size_t domain_size);

  MaterializedXi(const MaterializedXi& other);
  MaterializedXi& operator=(const MaterializedXi& other) = delete;

  int Sign(uint64_t key) const override {
    if (key < domain_size_) {
      return (bits_[key >> 6] >> (key & 63)) & 1 ? -1 : +1;
    }
    return base_->Sign(key);
  }

  /// In-table keys are straight packed-bit loads; only out-of-table keys
  /// fall back to the base family's evaluation.
  void SignBatch(const uint64_t* keys, size_t n, int8_t* out) const override {
    const uint64_t* bits = bits_.data();
    const uint64_t domain = domain_size_;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = keys[i];
      if (key < domain) {
        const int bit = static_cast<int>(bits[key >> 6] >> (key & 63)) & 1;
        out[i] = static_cast<int8_t>(1 - 2 * bit);
      } else {
        out[i] = static_cast<int8_t>(base_->Sign(key));
      }
    }
  }

  int IndependenceLevel() const override {
    return base_->IndependenceLevel();
  }
  XiScheme Scheme() const override { return base_->Scheme(); }
  std::unique_ptr<XiFamily> Clone() const override {
    return std::make_unique<MaterializedXi>(*this);
  }

  size_t domain_size() const { return domain_size_; }
  /// Sign table plus the wrapped base family's state.
  size_t MemoryBytes() const override {
    return sizeof(*this) + bits_.size() * sizeof(uint64_t) +
           base_->MemoryBytes();
  }

 private:
  std::unique_ptr<XiFamily> base_;
  size_t domain_size_;
  std::vector<uint64_t> bits_;  // 1 bit per key; set bit means -1
};

/// Convenience: builds scheme-`scheme` family seeded with `seed` and
/// materializes it over [0, domain_size).
std::unique_ptr<XiFamily> MakeMaterializedXiFamily(XiScheme scheme,
                                                   uint64_t seed,
                                                   size_t domain_size);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_MATERIALIZED_H_
