#include "src/prng/cw.h"

#include "src/prng/mersenne61.h"
#include "src/util/rng.h"

namespace sketchsample {

Cw2Xi::Cw2Xi(uint64_t seed) {
  Xoshiro256 rng(seed);
  do {
    a_ = UniformMod61(rng);
  } while (a_ == 0);
  b_ = UniformMod61(rng);
}

int Cw2Xi::Sign(uint64_t key) const {
  uint64_t h = AddMod61(MulMod61(a_, Mod61(key)), b_);
  return (h & 1) ? -1 : +1;
}

void Cw2Xi::SignBatch(const uint64_t* keys, size_t n, int8_t* out) const {
  // Lazy arithmetic: the canonical MulMod61/AddMod61 hide data-dependent
  // conditional subtractions whose mispredicts serialize the loop; the
  // branch-free lazy chain (bounded by 3·2^61) pipelines across keys and
  // one CanonMod61 restores the exact low bit.
  const uint64_t a = a_, b = b_;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = CanonMod61(MulMod61Lazy(a, Fold61(keys[i])) + b);
    out[i] = static_cast<int8_t>(1 - 2 * static_cast<int>(h & 1));
  }
}

Cw4Xi::Cw4Xi(uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& c : c_) c = UniformMod61(rng);
  // A zero leading coefficient only lowers the polynomial degree for this
  // seed; 4-wise independence over random coefficient vectors is preserved,
  // so no rejection is needed.
}

int Cw4Xi::Sign(uint64_t key) const {
  // Horner evaluation: ((c3 x + c2) x + c1) x + c0.
  uint64_t x = Mod61(key);
  uint64_t h = c_[3];
  h = AddMod61(MulMod61(h, x), c_[2]);
  h = AddMod61(MulMod61(h, x), c_[1]);
  h = AddMod61(MulMod61(h, x), c_[0]);
  return (h & 1) ? -1 : +1;
}

void Cw4Xi::SignBatch(const uint64_t* keys, size_t n, int8_t* out) const {
  // Same Horner polynomial as Sign(), evaluated with the lazy branch-free
  // arithmetic (see mersenne61.h for the chain bounds). Per key the three
  // multiplies form a dependency chain, but different keys are independent;
  // without the canonical form's mispredicting conditional subtractions the
  // chains of neighboring keys overlap and the loop runs near multiplier
  // throughput (~3x the canonical batch loop, ~5ns/key at 2 GHz).
  const uint64_t c0 = c_[0], c1 = c_[1], c2 = c_[2], c3 = c_[3];
  for (size_t i = 0; i < n; ++i) {
    const uint64_t x = Fold61(keys[i]);
    uint64_t h = MulMod61Lazy(c3, x) + c2;
    h = MulMod61Lazy(h, x) + c1;
    h = MulMod61Lazy(h, x) + c0;
    out[i] = static_cast<int8_t>(1 - 2 * static_cast<int>(CanonMod61(h) & 1));
  }
}

}  // namespace sketchsample
