#include "src/prng/cw.h"

#include "src/prng/mersenne61.h"
#include "src/prng/simd/dispatch.h"
#include "src/util/rng.h"

namespace sketchsample {

Cw2Xi::Cw2Xi(uint64_t seed) {
  Xoshiro256 rng(seed);
  do {
    a_ = UniformMod61(rng);
  } while (a_ == 0);
  b_ = UniformMod61(rng);
}

int Cw2Xi::Sign(uint64_t key) const {
  uint64_t h = AddMod61(MulMod61(a_, Mod61(key)), b_);
  return (h & 1) ? -1 : +1;
}

void Cw2Xi::SignBatch(const uint64_t* keys, size_t n, int8_t* out) const {
  // Dispatched kernel (scalar twin in src/prng/simd/kernels_scalar.cc);
  // the lazy-arithmetic rationale lives with the kernel bodies.
  simd::Kernels().cw2_sign(a_, b_, keys, n, out);
}

Cw4Xi::Cw4Xi(uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& c : c_) c = UniformMod61(rng);
  // A zero leading coefficient only lowers the polynomial degree for this
  // seed; 4-wise independence over random coefficient vectors is preserved,
  // so no rejection is needed.
}

int Cw4Xi::Sign(uint64_t key) const {
  // Horner evaluation: ((c3 x + c2) x + c1) x + c0.
  uint64_t x = Mod61(key);
  uint64_t h = c_[3];
  h = AddMod61(MulMod61(h, x), c_[2]);
  h = AddMod61(MulMod61(h, x), c_[1]);
  h = AddMod61(MulMod61(h, x), c_[0]);
  return (h & 1) ? -1 : +1;
}

void Cw4Xi::SignBatch(const uint64_t* keys, size_t n, int8_t* out) const {
  // Dispatched kernel evaluating the same Horner polynomial as Sign() with
  // lazy branch-free arithmetic (chain bounds in mersenne61.h); bit-exact
  // at every ISA level.
  simd::Kernels().cw4_sign(c_, keys, n, out);
}

}  // namespace sketchsample
