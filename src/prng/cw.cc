#include "src/prng/cw.h"

#include "src/prng/mersenne61.h"
#include "src/util/rng.h"

namespace sketchsample {

Cw2Xi::Cw2Xi(uint64_t seed) {
  Xoshiro256 rng(seed);
  do {
    a_ = UniformMod61(rng);
  } while (a_ == 0);
  b_ = UniformMod61(rng);
}

int Cw2Xi::Sign(uint64_t key) const {
  uint64_t h = AddMod61(MulMod61(a_, Mod61(key)), b_);
  return (h & 1) ? -1 : +1;
}

Cw4Xi::Cw4Xi(uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& c : c_) c = UniformMod61(rng);
  // A zero leading coefficient only lowers the polynomial degree for this
  // seed; 4-wise independence over random coefficient vectors is preserved,
  // so no rejection is needed.
}

int Cw4Xi::Sign(uint64_t key) const {
  // Horner evaluation: ((c3 x + c2) x + c1) x + c0.
  uint64_t x = Mod61(key);
  uint64_t h = c_[3];
  h = AddMod61(MulMod61(h, x), c_[2]);
  h = AddMod61(MulMod61(h, x), c_[1]);
  h = AddMod61(MulMod61(h, x), c_[0]);
  return (h & 1) ? -1 : +1;
}

}  // namespace sketchsample
