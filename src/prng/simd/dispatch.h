// Runtime ISA dispatch for the sketch update hot path.
//
// The ξ sign kernels (EH3/BCH3/BCH5/CW2/CW4), the Granlund–Montgomery
// bucket reduction, and the fused CW4 bucket+sign row kernel each exist at
// up to three ISA levels — scalar, AVX2, AVX-512 — compiled into separate
// translation units with per-file -m flags (src/CMakeLists.txt) and
// selected once at startup from CPUID. Every vector kernel is bit-exact
// against its scalar twin: the lazy Mersenne-2^61 intermediates may differ
// in representation, but every emitted sign, bucket index, and counter
// increment is byte-identical, so sketches built at any dispatch level
// compare equal (tests/simd_dispatch_test.cc sweeps this).
//
// The environment variable SKETCHSAMPLE_ISA=scalar|avx2|avx512 caps the
// level below the detected one (requests above the host's capability are
// clamped, never trusted), and ScopedIsaForTesting overrides it in-process
// for tests and per-ISA benchmark series.
//
// This header is intrinsics-free by design: <immintrin.h> is confined to
// the kernels_*.cc files in this directory (lint_invariants.py enforces
// both the confinement and the scalar-twin registration).
#ifndef SKETCHSAMPLE_PRNG_SIMD_DISPATCH_H_
#define SKETCHSAMPLE_PRNG_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace sketchsample::simd {

enum class IsaLevel : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Stable lowercase name ("scalar" | "avx2" | "avx512").
const char* IsaLevelName(IsaLevel level);

/// Parses a level name; returns false (and leaves *out untouched) on any
/// unknown spelling. Matching is exact and case-sensitive — the accepted
/// spellings are the ones IsaLevelName produces.
bool IsaLevelFromName(const char* name, IsaLevel* out);

/// Loop-invariant PairwiseHash state handed to the bucket kernels as a
/// plain struct so the kernel TUs do not depend on the class layout. Built
/// by PairwiseHash::KernelParams().
struct BucketParams {
  uint64_t multiplier;   // a, nonzero, canonical mod 2^61-1
  uint64_t offset;       // b, canonical mod 2^61-1
  uint64_t num_buckets;  // d >= 1
  uint64_t magic;        // round-up reciprocal, 0 iff d == 1
  uint64_t mask;         // ~0 normally, 0 iff d == 1 (remainder forced to 0)
  uint32_t shift;        // post-mulhi shift
};

/// One dispatch level: every member is non-null and bit-exact with the
/// scalar table. Kernel contracts mirror the public batch APIs they back:
///   *_sign      — XiFamily::SignBatch for the named family
///   bucket_batch — PairwiseHash::BucketBatch
///   fused_cw4_row — the F-AGMS fused bucket+sign+scatter row update;
///                   counter increments land in stream order, so the row is
///                   byte-identical to per-key Update() calls.
struct KernelTable {
  const char* name;
  void (*eh3_sign)(uint64_t s, int s0, const uint64_t* keys, size_t n,
                   int8_t* out);
  void (*bch3_sign)(uint64_t s, int s0, const uint64_t* keys, size_t n,
                    int8_t* out);
  void (*bch5_sign)(uint64_t s1, uint64_t s2, int s0, const uint64_t* keys,
                    size_t n, int8_t* out);
  void (*cw2_sign)(uint64_t a, uint64_t b, const uint64_t* keys, size_t n,
                   int8_t* out);
  void (*cw4_sign)(const uint64_t* c, const uint64_t* keys, size_t n,
                   int8_t* out);
  void (*bucket_batch)(const BucketParams& hash, const uint64_t* keys,
                       size_t n, uint64_t* out);
  void (*fused_cw4_row)(const BucketParams& hash, const uint64_t* c,
                        const uint64_t* keys, size_t n, double weight,
                        double* row);
};

/// Best level the host CPU supports (CPUID only; ignores the environment).
IsaLevel DetectBestIsaLevel();

/// The level actually dispatched to: DetectBestIsaLevel() capped by
/// SKETCHSAMPLE_ISA (read once, first call) and by ScopedIsaForTesting.
IsaLevel ActiveIsaLevel();

/// The active kernel table. Cheap (one relaxed atomic load) — call sites
/// fetch it per batch, not per key.
const KernelTable& Kernels();

/// The table for an explicit level; `level` must not exceed
/// DetectBestIsaLevel() (checked, throws std::invalid_argument).
const KernelTable& KernelsFor(IsaLevel level);

/// Bytes of process-global dispatch state (the per-level tables plus the
/// selection atomics); recorded once in the metrics registry under
/// "simd.dispatch_state_bytes" so footprint reports include it.
size_t DispatchStateBytes();

/// RAII override of the active level for tests and per-ISA bench series.
/// Requests above the detected level throw. Not thread-safe against
/// concurrent Kernels() users by design — use on quiescent state only.
class ScopedIsaForTesting {
 public:
  explicit ScopedIsaForTesting(IsaLevel level);
  ~ScopedIsaForTesting();
  ScopedIsaForTesting(const ScopedIsaForTesting&) = delete;
  ScopedIsaForTesting& operator=(const ScopedIsaForTesting&) = delete;

 private:
  IsaLevel prev_;
};

}  // namespace sketchsample::simd

#endif  // SKETCHSAMPLE_PRNG_SIMD_DISPATCH_H_
