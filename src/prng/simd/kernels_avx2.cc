// AVX2 kernels (4 keys per vector). Same mathematical structure as the
// AVX-512 TU — 32-bit vpmuludq decomposition of the lazy Mersenne-2^61
// mulmod with a 2-multiply fast path when all four keys are < 2^32, vector
// Granlund–Montgomery bucket reduction, PCLMULQDQ GF(2^64) cubes for BCH5 —
// adapted to the AVX2 instruction set:
//   * no vpminuq: canonicalization uses a signed-compare blend (safe, all
//     folded values are < 2^62);
//   * no vpmullq: q·d assembles the low 64 bits from two vpmuludq, exact
//     only for d < 2^32, so larger bucket counts fall back to the scalar
//     twin (2^32 buckets of doubles would be a 32 GiB row — out of scope
//     for the vector path, not for correctness).
// Every kernel is bit-exact with its scalar twin; tails and excluded shapes
// call the scalar functions directly.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>
#include <cstdint>
#include <cstring>

#include "src/prng/simd/kernels.h"

namespace sketchsample::simd {

namespace {

constexpr uint64_t kM61 = (1ULL << 61) - 1;

inline __m256i Fold61Y(__m256i x, __m256i m61) {
  return _mm256_add_epi64(_mm256_and_si256(x, m61), _mm256_srli_epi64(x, 61));
}

// Lazy mulmod, x < 2^32 (two vpmuludq).
inline __m256i MulModSmallY(__m256i h, __m256i x, __m256i m61,
                            __m256i mask29) {
  const __m256i p00 = _mm256_mul_epu32(h, x);
  const __m256i p10 = _mm256_mul_epu32(_mm256_srli_epi64(h, 32), x);
  __m256i r = _mm256_add_epi64(_mm256_and_si256(p00, m61),
                               _mm256_srli_epi64(p00, 61));
  r = _mm256_add_epi64(r,
                       _mm256_slli_epi64(_mm256_and_si256(p10, mask29), 32));
  return _mm256_add_epi64(r, _mm256_srli_epi64(p10, 29));
}

// Lazy mulmod, general x < 2^61 + 7 (four vpmuludq); x1 = x >> 32. Requires
// h < 2^62 (callers fold between Horner steps).
inline __m256i MulModGenY(__m256i h, __m256i x, __m256i x1, __m256i m61,
                          __m256i mask29) {
  const __m256i h1 = _mm256_srli_epi64(h, 32);
  const __m256i p00 = _mm256_mul_epu32(h, x);
  const __m256i p01 = _mm256_mul_epu32(h, x1);
  const __m256i p10 = _mm256_mul_epu32(h1, x);
  const __m256i p11 = _mm256_mul_epu32(h1, x1);
  const __m256i m = _mm256_add_epi64(p01, p10);
  __m256i r = _mm256_add_epi64(_mm256_and_si256(p00, m61),
                               _mm256_srli_epi64(p00, 61));
  r = _mm256_add_epi64(r, _mm256_slli_epi64(_mm256_and_si256(m, mask29), 32));
  r = _mm256_add_epi64(r, _mm256_srli_epi64(m, 29));
  return _mm256_add_epi64(r, _mm256_slli_epi64(p11, 3));
}

// Canonical [0, p) from folded f < 2p (< 2^62, so the signed compare is
// exact): keep f where p > f, else f - p.
inline __m256i CanonY(__m256i f, __m256i m61) {
  const __m256i sub = _mm256_sub_epi64(f, m61);
  return _mm256_blendv_epi8(sub, f, _mm256_cmpgt_epi64(m61, f));
}

// Low 64 bits of q·d for d < 2^32.
inline __m256i MulLoSmallY(__m256i q, __m256i d) {
  const __m256i lo = _mm256_mul_epu32(q, d);
  const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(q, 32), d);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

// Granlund–Montgomery bucket reduction of canonical g < 2^61.
inline __m256i FastModY(__m256i g, __m256i m0, __m256i m1, __m256i mask32,
                        __m256i dv, unsigned shift) {
  const __m256i g1 = _mm256_srli_epi64(g, 32);
  const __m256i t = _mm256_srli_epi64(_mm256_mul_epu32(m0, g), 32);
  const __m256i u = _mm256_add_epi64(_mm256_mul_epu32(m1, g), t);
  const __m256i v = _mm256_add_epi64(_mm256_mul_epu32(m0, g1),
                                     _mm256_and_si256(u, mask32));
  const __m256i hi = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_mul_epu32(m1, g1), _mm256_srli_epi64(u, 32)),
      _mm256_srli_epi64(v, 32));
  const __m256i q = _mm256_srli_epi64(hi, static_cast<int>(shift));
  return _mm256_sub_epi64(g, MulLoSmallY(q, dv));
}

inline __m256i SignFlip63Y(__m256i h, __m256i m61, __m256i one) {
  const __m256i f = Fold61Y(h, m61);
  return _mm256_slli_epi64(
      _mm256_xor_si256(f, _mm256_srli_epi64(_mm256_add_epi64(f, one), 61)),
      63);
}

inline __m256i ParityY(__m256i v, __m256i par16, __m256i nib, __m256i one) {
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 32));
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 16));
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 8));
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 4));
  v = _mm256_and_si256(v, nib);
  return _mm256_and_si256(_mm256_srlv_epi64(par16, v), one);
}

uint64_t Gf64MulClmul(uint64_t a, uint64_t b) {
  const __m128i poly = _mm_cvtsi64_si128(0x1b);
  const __m128i prod = _mm_clmulepi64_si128(_mm_cvtsi64_si128(
                                                static_cast<long long>(a)),
                                            _mm_cvtsi64_si128(
                                                static_cast<long long>(b)),
                                            0x00);
  const __m128i r1 = _mm_clmulepi64_si128(_mm_srli_si128(prod, 8), poly, 0x00);
  const __m128i r2 = _mm_clmulepi64_si128(_mm_srli_si128(r1, 8), poly, 0x00);
  const __m128i res = _mm_xor_si128(_mm_xor_si128(prod, r1), r2);
  return static_cast<uint64_t>(_mm_cvtsi128_si64(res));
}

struct FusedConstsY {
  __m256i m61, mask29, mask32, av, bv, c0v, c1v, c2v, c3v, m0, m1, dv, one,
      wv;
  unsigned shift;
};

FusedConstsY MakeFusedConstsY(const BucketParams& hash, const uint64_t* c,
                              double weight) {
  FusedConstsY k;
  k.m61 = _mm256_set1_epi64x(static_cast<long long>(kM61));
  k.mask29 = _mm256_set1_epi64x((1LL << 29) - 1);
  k.mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  k.av = _mm256_set1_epi64x(static_cast<long long>(hash.multiplier));
  k.bv = _mm256_set1_epi64x(static_cast<long long>(hash.offset));
  k.c0v = _mm256_set1_epi64x(static_cast<long long>(c[0]));
  k.c1v = _mm256_set1_epi64x(static_cast<long long>(c[1]));
  k.c2v = _mm256_set1_epi64x(static_cast<long long>(c[2]));
  k.c3v = _mm256_set1_epi64x(static_cast<long long>(c[3]));
  k.m0 = _mm256_set1_epi64x(static_cast<long long>(hash.magic & 0xFFFFFFFFu));
  k.m1 = _mm256_set1_epi64x(static_cast<long long>(hash.magic >> 32));
  k.dv = _mm256_set1_epi64x(static_cast<long long>(hash.num_buckets));
  k.one = _mm256_set1_epi64x(1);
  uint64_t wbits;
  std::memcpy(&wbits, &weight, sizeof(wbits));
  k.wv = _mm256_set1_epi64x(static_cast<long long>(wbits));
  k.shift = hash.shift;
  return k;
}

template <bool kSmall>
inline void FusedCompute4(const FusedConstsY& k, __m256i x, uint64_t* bucket,
                          double* w) {
  __m256i x1;
  if constexpr (!kSmall) {
    x = Fold61Y(x, k.m61);
    x1 = _mm256_srli_epi64(x, 32);
  }
  const auto mulmod = [&](__m256i h) {
    if constexpr (kSmall) {
      return MulModSmallY(h, x, k.m61, k.mask29);
    } else {
      return MulModGenY(h, x, x1, k.m61, k.mask29);
    }
  };
  __m256i g = _mm256_add_epi64(mulmod(k.av), k.bv);
  g = CanonY(Fold61Y(g, k.m61), k.m61);
  const __m256i bkt = FastModY(g, k.m0, k.m1, k.mask32, k.dv, k.shift);
  __m256i h = _mm256_add_epi64(mulmod(k.c3v), k.c2v);
  h = Fold61Y(h, k.m61);
  h = _mm256_add_epi64(mulmod(h), k.c1v);
  h = Fold61Y(h, k.m61);
  h = _mm256_add_epi64(mulmod(h), k.c0v);
  const __m256i flip = SignFlip63Y(h, k.m61, k.one);
  _mm256_store_si256(reinterpret_cast<__m256i*>(bucket), bkt);
  _mm256_store_si256(reinterpret_cast<__m256i*>(w),
                     _mm256_xor_si256(k.wv, flip));
}

void Avx2FusedCw4Row(const BucketParams& hash, const uint64_t* c,
                     const uint64_t* keys, size_t n, double weight,
                     double* row) {
  if (hash.num_buckets == 1 || (hash.num_buckets >> 32) != 0) {
    ScalarFusedCw4Row(hash, c, keys, n, weight, row);
    return;
  }
  const FusedConstsY k = MakeFusedConstsY(hash, c, weight);
  const __m256i hi32 =
      _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFF00000000ULL));
  alignas(32) uint64_t bucket[2][4];
  alignas(32) double w[2][4];
  const size_t groups = n / 4;
  const auto compute = [&](size_t g, size_t slot) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + g * 4));
    if (_mm256_testz_si256(x, hi32) != 0) {
      FusedCompute4<true>(k, x, bucket[slot], w[slot]);
    } else {
      FusedCompute4<false>(k, x, bucket[slot], w[slot]);
    }
  };
  if (groups > 0) {
    compute(0, 0);
    for (size_t g = 1; g < groups; ++g) {
      compute(g, g & 1);
      const uint64_t* pb = bucket[(g - 1) & 1];
      const double* pw = w[(g - 1) & 1];
      for (size_t j = 0; j < 4; ++j) row[pb[j]] += pw[j];
    }
    const uint64_t* pb = bucket[(groups - 1) & 1];
    const double* pw = w[(groups - 1) & 1];
    for (size_t j = 0; j < 4; ++j) row[pb[j]] += pw[j];
  }
  if (n % 4 != 0) {
    ScalarFusedCw4Row(hash, c, keys + groups * 4, n % 4, weight, row);
  }
}

void Avx2BucketBatch(const BucketParams& hash, const uint64_t* keys, size_t n,
                     uint64_t* out) {
  if ((hash.num_buckets >> 32) != 0) {
    ScalarBucketBatch(hash, keys, n, out);
    return;
  }
  const __m256i m61 = _mm256_set1_epi64x(static_cast<long long>(kM61));
  const __m256i mask29 = _mm256_set1_epi64x((1LL << 29) - 1);
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i av =
      _mm256_set1_epi64x(static_cast<long long>(hash.multiplier));
  const __m256i bv = _mm256_set1_epi64x(static_cast<long long>(hash.offset));
  const __m256i m0 =
      _mm256_set1_epi64x(static_cast<long long>(hash.magic & 0xFFFFFFFFu));
  const __m256i m1 =
      _mm256_set1_epi64x(static_cast<long long>(hash.magic >> 32));
  const __m256i dv =
      _mm256_set1_epi64x(static_cast<long long>(hash.num_buckets));
  const __m256i maskv =
      _mm256_set1_epi64x(static_cast<long long>(hash.mask));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    x = Fold61Y(x, m61);
    const __m256i x1 = _mm256_srli_epi64(x, 32);
    __m256i g = _mm256_add_epi64(MulModGenY(av, x, x1, m61, mask29), bv);
    g = CanonY(Fold61Y(g, m61), m61);
    const __m256i bkt =
        _mm256_and_si256(FastModY(g, m0, m1, mask32, dv, hash.shift), maskv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bkt);
  }
  if (i < n) ScalarBucketBatch(hash, keys + i, n - i, out + i);
}

void Avx2Eh3Sign(uint64_t s, int s0, const uint64_t* keys, size_t n,
                 int8_t* out) {
  const __m256i sv = _mm256_set1_epi64x(static_cast<long long>(s));
  const __m256i fives =
      _mm256_set1_epi64x(static_cast<long long>(0x5555555555555555ULL));
  const __m256i par16 = _mm256_set1_epi64x(0x6996);
  const __m256i nib = _mm256_set1_epi64x(15);
  const __m256i one = _mm256_set1_epi64x(1);
  alignas(32) uint64_t lane[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i key =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i pair_or = _mm256_and_si256(
        _mm256_or_si256(key, _mm256_srli_epi64(key, 1)), fives);
    const __m256i v = _mm256_xor_si256(_mm256_and_si256(sv, key), pair_or);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane),
                       ParityY(v, par16, nib, one));
    for (size_t j = 0; j < 4; ++j) {
      out[i + j] =
          static_cast<int8_t>(1 - 2 * (static_cast<int>(lane[j]) ^ s0));
    }
  }
  if (i < n) ScalarEh3Sign(s, s0, keys + i, n - i, out + i);
}

void Avx2Bch3Sign(uint64_t s, int s0, const uint64_t* keys, size_t n,
                  int8_t* out) {
  const __m256i sv = _mm256_set1_epi64x(static_cast<long long>(s));
  const __m256i par16 = _mm256_set1_epi64x(0x6996);
  const __m256i nib = _mm256_set1_epi64x(15);
  const __m256i one = _mm256_set1_epi64x(1);
  alignas(32) uint64_t lane[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        sv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane),
                       ParityY(v, par16, nib, one));
    for (size_t j = 0; j < 4; ++j) {
      out[i + j] =
          static_cast<int8_t>(1 - 2 * (static_cast<int>(lane[j]) ^ s0));
    }
  }
  if (i < n) ScalarBch3Sign(s, s0, keys + i, n - i, out + i);
}

void Avx2Bch5Sign(uint64_t s1, uint64_t s2, int s0, const uint64_t* keys,
                  size_t n, int8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = keys[i];
    const uint64_t cube = Gf64MulClmul(Gf64MulClmul(key, key), key);
    int bit = std::popcount(s1 & key) & 1;
    bit ^= std::popcount(s2 & cube) & 1;
    bit ^= s0;
    out[i] = static_cast<int8_t>(1 - 2 * bit);
  }
}

void Avx2Cw2Sign(uint64_t a, uint64_t b, const uint64_t* keys, size_t n,
                 int8_t* out) {
  const __m256i m61 = _mm256_set1_epi64x(static_cast<long long>(kM61));
  const __m256i mask29 = _mm256_set1_epi64x((1LL << 29) - 1);
  const __m256i av = _mm256_set1_epi64x(static_cast<long long>(a));
  const __m256i bv = _mm256_set1_epi64x(static_cast<long long>(b));
  alignas(32) uint64_t lane[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    x = Fold61Y(x, m61);
    const __m256i x1 = _mm256_srli_epi64(x, 32);
    __m256i h = _mm256_add_epi64(MulModGenY(av, x, x1, m61, mask29), bv);
    h = CanonY(Fold61Y(h, m61), m61);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), h);
    for (size_t j = 0; j < 4; ++j) {
      out[i + j] =
          static_cast<int8_t>(1 - 2 * static_cast<int>(lane[j] & 1));
    }
  }
  if (i < n) ScalarCw2Sign(a, b, keys + i, n - i, out + i);
}

void Avx2Cw4Sign(const uint64_t* c, const uint64_t* keys, size_t n,
                 int8_t* out) {
  const __m256i m61 = _mm256_set1_epi64x(static_cast<long long>(kM61));
  const __m256i mask29 = _mm256_set1_epi64x((1LL << 29) - 1);
  const __m256i c0v = _mm256_set1_epi64x(static_cast<long long>(c[0]));
  const __m256i c1v = _mm256_set1_epi64x(static_cast<long long>(c[1]));
  const __m256i c2v = _mm256_set1_epi64x(static_cast<long long>(c[2]));
  const __m256i c3v = _mm256_set1_epi64x(static_cast<long long>(c[3]));
  alignas(32) uint64_t lane[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    x = Fold61Y(x, m61);
    const __m256i x1 = _mm256_srli_epi64(x, 32);
    __m256i h = _mm256_add_epi64(MulModGenY(c3v, x, x1, m61, mask29), c2v);
    h = Fold61Y(h, m61);
    h = _mm256_add_epi64(MulModGenY(h, x, x1, m61, mask29), c1v);
    h = Fold61Y(h, m61);
    h = _mm256_add_epi64(MulModGenY(h, x, x1, m61, mask29), c0v);
    h = CanonY(Fold61Y(h, m61), m61);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), h);
    for (size_t j = 0; j < 4; ++j) {
      out[i + j] =
          static_cast<int8_t>(1 - 2 * static_cast<int>(lane[j] & 1));
    }
  }
  if (i < n) ScalarCw4Sign(c, keys + i, n - i, out + i);
}

}  // namespace

const KernelTable* GetAvx2KernelTable() {
  static const KernelTable table = {
      .name = "avx2",
      .eh3_sign = Avx2Eh3Sign,
      .bch3_sign = Avx2Bch3Sign,
      .bch5_sign = Avx2Bch5Sign,
      .cw2_sign = Avx2Cw2Sign,
      .cw4_sign = Avx2Cw4Sign,
      .bucket_batch = Avx2BucketBatch,
      .fused_cw4_row = Avx2FusedCw4Row,
  };
  return &table;
}

}  // namespace sketchsample::simd

#else  // !x86

#include "src/prng/simd/kernels.h"

namespace sketchsample::simd {
const KernelTable* GetAvx2KernelTable() { return nullptr; }
}  // namespace sketchsample::simd

#endif
