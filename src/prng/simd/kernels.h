// Internal: per-level kernel table providers for the dispatch layer.
//
// Each provider lives in its own translation unit compiled with that
// level's -m flags; a provider returns nullptr when the level is not
// compiled in (non-x86 builds), and dispatch.cc additionally gates the
// vector tables on CPUID at runtime. Intrinsics stay inside the
// kernels_*.cc files — this header is plain C++.
#ifndef SKETCHSAMPLE_PRNG_SIMD_KERNELS_H_
#define SKETCHSAMPLE_PRNG_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "src/prng/simd/dispatch.h"

namespace sketchsample::simd {

/// Always available; every pointer non-null. The vector kernels fall back
/// to these twins for shapes they do not cover (tail keys, d == 1 rows,
/// d >= 2^32 bucket counts on AVX2).
const KernelTable* GetScalarKernelTable();

/// Null when the build has no AVX2 codegen (non-x86 target).
const KernelTable* GetAvx2KernelTable();

/// Null when the build has no AVX-512 codegen (non-x86 target).
const KernelTable* GetAvx512KernelTable();

/// Scalar twins, exported for the vector TUs' fallback paths (tails and
/// degenerate shapes must go through the exact same code the scalar table
/// dispatches to, so every level stays bit-identical).
void ScalarEh3Sign(uint64_t s, int s0, const uint64_t* keys, size_t n,
                   int8_t* out);
void ScalarBch3Sign(uint64_t s, int s0, const uint64_t* keys, size_t n,
                    int8_t* out);
void ScalarBch5Sign(uint64_t s1, uint64_t s2, int s0, const uint64_t* keys,
                    size_t n, int8_t* out);
void ScalarCw2Sign(uint64_t a, uint64_t b, const uint64_t* keys, size_t n,
                   int8_t* out);
void ScalarCw4Sign(const uint64_t* c, const uint64_t* keys, size_t n,
                   int8_t* out);
void ScalarBucketBatch(const BucketParams& hash, const uint64_t* keys,
                       size_t n, uint64_t* out);
void ScalarFusedCw4Row(const BucketParams& hash, const uint64_t* c,
                       const uint64_t* keys, size_t n, double weight,
                       double* row);

}  // namespace sketchsample::simd

#endif  // SKETCHSAMPLE_PRNG_SIMD_KERNELS_H_
