#include "src/prng/simd/dispatch.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "src/prng/simd/kernels.h"
#include "src/util/atomics_policy.h"
#include "src/util/metrics.h"
#include "src/util/once_latch.h"

namespace sketchsample::simd {

namespace {

// The vector levels additionally require PCLMUL + POPCNT (the BCH5 cube
// kernel and the parity tails); both predate AVX2 on every x86 vendor, so
// the joint check only matters for exotic virtualized CPU masks.
bool HostHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("pclmul") &&
         __builtin_cpu_supports("popcnt");
#else
  return false;
#endif
}

bool HostHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return HostHasAvx2() && __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

const KernelTable* TableFor(IsaLevel level) {
  switch (level) {
    case IsaLevel::kAvx512: {
      const KernelTable* t = GetAvx512KernelTable();
      if (t != nullptr) return t;
      break;
    }
    case IsaLevel::kAvx2: {
      const KernelTable* t = GetAvx2KernelTable();
      if (t != nullptr) return t;
      break;
    }
    case IsaLevel::kScalar:
      break;
  }
  return GetScalarKernelTable();
}

// Selection state. The one-time CPU detection runs under an explicit
// OnceLatch (src/util/once_latch.h) rather than a compiler magic-static
// guard: the latch is the policy-parameterized primitive the interleaving
// model checker verifies (tests/mc_spec_test.cc), so the publish edge every
// Kernels() caller relies on is code this repo can exhaustively check. The
// `active` pair stays mutable after the latch fires — ScopedIsaForTesting
// overrides it in-process — so those are relaxed policy atomics, re-read
// once per batch; the latch guarantees they are initialized before any
// reader returns.
struct DispatchState {
  OnceLatch<bool> selected;
  IsaLevel detected = IsaLevel::kScalar;
  StdAtomics::Atomic<const KernelTable*> active{nullptr, "simd.active"};
  StdAtomics::Atomic<IsaLevel> active_level{IsaLevel::kScalar,
                                            "simd.active_level"};
};

constinit DispatchState g_state;

DispatchState& State() {
  // First use detects the CPU, applies the SKETCHSAMPLE_ISA cap, and
  // records the selection in the metrics registry ("sketch.isa" carries the
  // numeric level so BENCH_*.json metrics dumps show what ran;
  // "simd.dispatch_state_bytes" accounts the table footprint).
  g_state.selected.Get([] {
    g_state.detected = HostHasAvx512()  ? IsaLevel::kAvx512
                       : HostHasAvx2()  ? IsaLevel::kAvx2
                                        : IsaLevel::kScalar;
    IsaLevel chosen = g_state.detected;
    if (const char* env = std::getenv("SKETCHSAMPLE_ISA")) {
      IsaLevel requested;
      if (IsaLevelFromName(env, &requested)) {
        // The override can only lower the level: a request above the
        // detected capability would dispatch to illegal instructions.
        if (requested < chosen) chosen = requested;
      }
      // Unknown spellings are ignored (default dispatch) rather than
      // fatal — a typo in an env var must not take down the service.
    }
    g_state.active.store(TableFor(chosen), MemOrder::kRelaxed);
    g_state.active_level.store(chosen, MemOrder::kRelaxed);
    SKETCHSAMPLE_METRIC_ADD("sketch.isa", static_cast<uint64_t>(chosen));
    SKETCHSAMPLE_METRIC_ADD("simd.dispatch_state_bytes", DispatchStateBytes());
    return true;
  });
  return g_state;
}

}  // namespace

const char* IsaLevelName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool IsaLevelFromName(const char* name, IsaLevel* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = IsaLevel::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = IsaLevel::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = IsaLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

IsaLevel DetectBestIsaLevel() { return State().detected; }

IsaLevel ActiveIsaLevel() {
  return State().active_level.load(MemOrder::kRelaxed);
}

const KernelTable& Kernels() {
  return *State().active.load(MemOrder::kRelaxed);
}

const KernelTable& KernelsFor(IsaLevel level) {
  if (level > State().detected) {
    throw std::invalid_argument(std::string("ISA level ") +
                                IsaLevelName(level) +
                                " exceeds host capability " +
                                IsaLevelName(State().detected));
  }
  return *TableFor(level);
}

size_t DispatchStateBytes() {
  // Three per-level tables plus the selection state; the per-level tables
  // are function-local statics but logically part of the dispatcher.
  return 3 * sizeof(KernelTable) + sizeof(DispatchState);
}

ScopedIsaForTesting::ScopedIsaForTesting(IsaLevel level)
    : prev_(ActiveIsaLevel()) {
  const KernelTable& table = KernelsFor(level);  // validates against host
  State().active.store(&table, MemOrder::kRelaxed);
  State().active_level.store(level, MemOrder::kRelaxed);
}

ScopedIsaForTesting::~ScopedIsaForTesting() {
  State().active.store(TableFor(prev_), MemOrder::kRelaxed);
  State().active_level.store(prev_, MemOrder::kRelaxed);
}

}  // namespace sketchsample::simd
