// Scalar twins of every dispatched kernel — the reference semantics all
// vector levels must reproduce byte-for-byte, and the guaranteed fallback
// on hosts (or builds) without vector support. Bodies are the PR-2 batch
// kernels moved out of eh3.cc/bch.cc/cw.cc/hash.cc/fagms.cc; the lazy
// Mersenne-2^61 chain bounds they rely on are documented in mersenne61.h.
#include <bit>
#include <cstdint>
#include <cstring>

#include "src/prng/bch.h"
#include "src/prng/mersenne61.h"
#include "src/prng/simd/kernels.h"

namespace sketchsample::simd {

namespace {

// ±weight via the IEEE sign bit: flipping the sign bit is exact negation
// for every double, so XorSign(w, flip63) produces bit-for-bit the same
// value as w * (1 - 2*bit) while replacing an int→double convert and a
// multiply with one XOR on the integer side. `flip63` carries the sign
// choice in bit 63 (all other bits must be zero).
inline double XorSign(double w, uint64_t flip63) {
  uint64_t bits;
  std::memcpy(&bits, &w, sizeof(bits));
  bits ^= flip63;
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

// Parity of (h mod p) for any 64-bit lazy residue h, delivered in bit 63.
// One fold leaves f = Fold61(h) <= 2^61 + 6 < 2p with f ≡ h (mod p); the
// canonical value is f or f - p, and since p is odd the subtraction flips
// the parity exactly when f >= p, i.e. when (f + 1) >> 61 is 1. XORing that
// carry bit into f's low bit gives the canonical parity with no compare.
inline uint64_t SignFlipBit63(uint64_t h) {
  const uint64_t f = Fold61(h);
  return (f ^ ((f + 1) >> 61)) << 63;
}

}  // namespace

void ScalarEh3Sign(uint64_t s, int s0, const uint64_t* keys, size_t n,
                   int8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = keys[i];
    int bit = std::popcount(s & key) & 1;
    const uint64_t pair_or = (key | (key >> 1)) & 0x5555555555555555ULL;
    bit ^= std::popcount(pair_or) & 1;
    bit ^= s0;
    out[i] = static_cast<int8_t>(1 - 2 * bit);
  }
}

void ScalarBch3Sign(uint64_t s, int s0, const uint64_t* keys, size_t n,
                    int8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const int bit = (std::popcount(s & keys[i]) & 1) ^ s0;
    out[i] = static_cast<int8_t>(1 - 2 * bit);
  }
}

void ScalarBch5Sign(uint64_t s1, uint64_t s2, int s0, const uint64_t* keys,
                    size_t n, int8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = keys[i];
    const uint64_t cube = Gf64Mul(Gf64Mul(key, key), key);
    int bit = std::popcount(s1 & key) & 1;
    bit ^= std::popcount(s2 & cube) & 1;
    bit ^= s0;
    out[i] = static_cast<int8_t>(1 - 2 * bit);
  }
}

void ScalarCw2Sign(uint64_t a, uint64_t b, const uint64_t* keys, size_t n,
                   int8_t* out) {
  // Lazy arithmetic: the canonical MulMod61/AddMod61 hide data-dependent
  // conditional subtractions whose mispredicts serialize the loop; the
  // branch-free lazy chain (bounded by 3·2^61) pipelines across keys and
  // one CanonMod61 restores the exact low bit.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = CanonMod61(MulMod61Lazy(a, Fold61(keys[i])) + b);
    out[i] = static_cast<int8_t>(1 - 2 * static_cast<int>(h & 1));
  }
}

void ScalarCw4Sign(const uint64_t* c, const uint64_t* keys, size_t n,
                   int8_t* out) {
  // Horner evaluation of the degree-3 polynomial with the lazy branch-free
  // arithmetic (chain bounds in mersenne61.h). Per key the three multiplies
  // form a dependency chain, but different keys are independent, so the
  // chains of neighboring keys overlap in the out-of-order core.
  const uint64_t c0 = c[0], c1 = c[1], c2 = c[2], c3 = c[3];
  for (size_t i = 0; i < n; ++i) {
    const uint64_t x = Fold61(keys[i]);
    uint64_t h = MulMod61Lazy(c3, x) + c2;
    h = MulMod61Lazy(h, x) + c1;
    h = MulMod61Lazy(h, x) + c0;
    out[i] = static_cast<int8_t>(1 - 2 * static_cast<int>(CanonMod61(h) & 1));
  }
}

void ScalarBucketBatch(const BucketParams& hash, const uint64_t* keys,
                       size_t n, uint64_t* out) {
  // Branch-free lazy evaluation of the degree-1 bucket polynomial followed
  // by the exact Granlund–Montgomery reciprocal modulo; identical to
  // PairwiseHash::FastModBuckets including the d == 1 degenerate case
  // (magic = 0, mask = 0 force the remainder to 0).
  const uint64_t a = hash.multiplier, b = hash.offset;
  const uint64_t d = hash.num_buckets, magic = hash.magic, mask = hash.mask;
  const uint32_t shift = hash.shift;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t x = CanonMod61(MulMod61Lazy(a, Fold61(keys[i])) + b);
    const uint64_t q = static_cast<uint64_t>(
                           (static_cast<__uint128_t>(magic) * x) >> 64) >>
                       shift;
    out[i] = (x - q * d) & mask;
  }
}

void ScalarFusedCw4Row(const BucketParams& hash, const uint64_t* c,
                       const uint64_t* keys, size_t n, double weight,
                       double* row) {
  // Fused bucket+sign kernel for the CW4 configuration: both the degree-1
  // bucket polynomial and the degree-3 sign polynomial are evaluated in one
  // pass over the keys, sharing one key fold and scattering directly into
  // the counter row. 6-way interleaving gives the out-of-order core
  // independent Horner chains to overlap. Bit-identical to Bucket()/Sign()
  // per key in order, so scalar and batch sketches match exactly.
  const uint64_t a = hash.multiplier, b = hash.offset;
  const uint64_t d = hash.num_buckets;
  const uint64_t magic = hash.magic;
  const uint32_t shift = hash.shift;
  const uint64_t c0 = c[0], c1 = c[1], c2 = c[2], c3 = c[3];
  if (d == 1) {
    // Degenerate single-bucket row: every key lands in bucket 0.
    for (size_t i = 0; i < n; ++i) {
      const uint64_t x = Fold61(keys[i]);
      uint64_t h = MulMod61Lazy(c3, x) + c2;
      h = MulMod61Lazy(h, x) + c1;
      h = MulMod61Lazy(h, x) + c0;
      row[0] += XorSign(weight, SignFlipBit63(h));
    }
    return;
  }
  // Same exact remainder as PairwiseHash::FastModBuckets (x < 2^61); the
  // d == 1 mask case is handled above, so the mask is dropped here.
  const auto fastmod = [magic, shift, d](uint64_t x) -> uint64_t {
    const uint64_t q = static_cast<uint64_t>(
                           (static_cast<__uint128_t>(magic) * x) >> 64) >>
                       shift;
    return x - q * d;
  };
  constexpr size_t kWay = 6;
  size_t i = 0;
  for (; i + kWay <= n; i += kWay) {
    uint64_t x[kWay], g[kWay], h[kWay], bucket[kWay];
    for (size_t k = 0; k < kWay; ++k) x[k] = Fold61(keys[i + k]);
    for (size_t k = 0; k < kWay; ++k) g[k] = MulMod61Lazy(a, x[k]) + b;
    for (size_t k = 0; k < kWay; ++k) h[k] = MulMod61Lazy(c3, x[k]) + c2;
    for (size_t k = 0; k < kWay; ++k) h[k] = MulMod61Lazy(h[k], x[k]) + c1;
    for (size_t k = 0; k < kWay; ++k) h[k] = MulMod61Lazy(h[k], x[k]) + c0;
    for (size_t k = 0; k < kWay; ++k) bucket[k] = fastmod(CanonMod61(g[k]));
    for (size_t k = 0; k < kWay; ++k) {
      row[bucket[k]] += XorSign(weight, SignFlipBit63(h[k]));
    }
  }
  for (; i < n; ++i) {
    const uint64_t x = Fold61(keys[i]);
    const uint64_t bucket = fastmod(CanonMod61(MulMod61Lazy(a, x) + b));
    uint64_t h = MulMod61Lazy(c3, x) + c2;
    h = MulMod61Lazy(h, x) + c1;
    h = MulMod61Lazy(h, x) + c0;
    row[bucket] += XorSign(weight, SignFlipBit63(h));
  }
}

const KernelTable* GetScalarKernelTable() {
  static const KernelTable table = {
      .name = "scalar",
      .eh3_sign = ScalarEh3Sign,
      .bch3_sign = ScalarBch3Sign,
      .bch5_sign = ScalarBch5Sign,
      .cw2_sign = ScalarCw2Sign,
      .cw4_sign = ScalarCw4Sign,
      .bucket_batch = ScalarBucketBatch,
      .fused_cw4_row = ScalarFusedCw4Row,
  };
  return &table;
}

}  // namespace sketchsample::simd
