// AVX-512 kernels (F+BW+DQ+VL; 8 keys per vector). Math notes:
//
// Lazy Mersenne-2^61 mulmod is decomposed into 32-bit vpmuludq products.
// For the full 64x64 case with a < 2^62 and b = Fold61(key) < 2^61 + 7:
//   a·b = p00 + 2^32(p01 + p10) + 2^64·p11, and with m = p01 + p10 < 2^63,
//   2^32·m ≡ ((m & (2^29-1)) << 32) + (m >> 29)   (since 2^61 ≡ 1 mod p)
//   2^64·p11 ≡ p11 << 3
// summing to < 2^63.2 — no 64-bit overflow, one Fold61 restores the lazy
// range. When every key in a vector is < 2^32 (checked per 8-key block with
// one test-mask), the p01/p11 terms vanish and the mulmod needs only two
// vpmuludq — the benchmark streams and all small-domain workloads take this
// path. Both paths are bit-exact with the scalar twins by construction
// (identical final canonicalization), which the dispatch sweep test checks.
//
// The fused CW4 row kernel pipelines 8-key groups with a lag of one: the
// vector engine computes group g+1's buckets and pre-signed weights
// (weight ^ signflip via one XOR on the IEEE sign bit) while the scalar
// side scatters group g in stream order — scatter order is what keeps
// counter bits identical to per-key updates under FP non-associativity.
//
// GF(2^64) cubes for BCH5 use PCLMULQDQ with the double-fold reduction by
// P(x) = x^64+x^4+x^3+x+1 (low word 0x1b), replacing the 64-iteration
// shift-xor loop.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>
#include <cstdint>
#include <cstring>

#include "src/prng/simd/kernels.h"

namespace sketchsample::simd {

namespace {

constexpr uint64_t kM61 = (1ULL << 61) - 1;

inline __m512i Fold61Z(__m512i x, __m512i m61) {
  return _mm512_add_epi64(_mm512_and_si512(x, m61), _mm512_srli_epi64(x, 61));
}

// Lazy mulmod, x < 2^32 (two vpmuludq): h·x = p00 + 2^32·p10.
inline __m512i MulModSmallZ(__m512i h, __m512i x, __m512i m61,
                            __m512i mask29) {
  const __m512i p00 = _mm512_mul_epu32(h, x);
  const __m512i p10 = _mm512_mul_epu32(_mm512_srli_epi64(h, 32), x);
  __m512i r = _mm512_add_epi64(_mm512_and_si512(p00, m61),
                               _mm512_srli_epi64(p00, 61));
  r = _mm512_add_epi64(r,
                       _mm512_slli_epi64(_mm512_and_si512(p10, mask29), 32));
  return _mm512_add_epi64(r, _mm512_srli_epi64(p10, 29));
}

// Lazy mulmod, general x < 2^61 + 7 (four vpmuludq); x1 = x >> 32.
inline __m512i MulModGenZ(__m512i h, __m512i x, __m512i x1, __m512i m61,
                          __m512i mask29) {
  const __m512i h1 = _mm512_srli_epi64(h, 32);
  const __m512i p00 = _mm512_mul_epu32(h, x);
  const __m512i p01 = _mm512_mul_epu32(h, x1);
  const __m512i p10 = _mm512_mul_epu32(h1, x);
  const __m512i p11 = _mm512_mul_epu32(h1, x1);
  const __m512i m = _mm512_add_epi64(p01, p10);
  __m512i r = _mm512_add_epi64(_mm512_and_si512(p00, m61),
                               _mm512_srli_epi64(p00, 61));
  r = _mm512_add_epi64(r, _mm512_slli_epi64(_mm512_and_si512(m, mask29), 32));
  r = _mm512_add_epi64(r, _mm512_srli_epi64(m, 29));
  return _mm512_add_epi64(r, _mm512_slli_epi64(p11, 3));
}

// Canonical [0, p) from a folded value f < 2p: f - p wraps above 2^63 when
// f < p, so the unsigned min picks the reduced representative.
inline __m512i CanonZ(__m512i f, __m512i m61) {
  return _mm512_min_epu64(f, _mm512_sub_epi64(f, m61));
}

// Granlund–Montgomery bucket reduction of canonical g < 2^61: the 64x64
// mulhi is assembled from four vpmuludq partial products.
inline __m512i FastModZ(__m512i g, __m512i m0, __m512i m1, __m512i mask32,
                        __m512i dv, unsigned shift) {
  const __m512i g1 = _mm512_srli_epi64(g, 32);
  const __m512i t = _mm512_srli_epi64(_mm512_mul_epu32(m0, g), 32);
  const __m512i u = _mm512_add_epi64(_mm512_mul_epu32(m1, g), t);
  const __m512i v = _mm512_add_epi64(_mm512_mul_epu32(m0, g1),
                                     _mm512_and_si512(u, mask32));
  const __m512i hi = _mm512_add_epi64(
      _mm512_add_epi64(_mm512_mul_epu32(m1, g1), _mm512_srli_epi64(u, 32)),
      _mm512_srli_epi64(v, 32));
  const __m512i q = _mm512_srli_epi64(hi, static_cast<int>(shift));
  return _mm512_sub_epi64(g, _mm512_mullo_epi64(q, dv));
}

// Sign-flip bit (bit 63) of the canonical parity of lazy h — the vector
// form of the scalar SignFlipBit63.
inline __m512i SignFlip63Z(__m512i h, __m512i m61, __m512i one) {
  const __m512i f = Fold61Z(h, m61);
  return _mm512_slli_epi64(
      _mm512_xor_si512(f, _mm512_srli_epi64(_mm512_add_epi64(f, one), 61)),
      63);
}

// Parity of each 64-bit lane, as 0/1 lanes: xor-fold to a nibble, then
// index the 16-bit parity table 0x6996 with a per-lane variable shift.
inline __m512i ParityZ(__m512i v, __m512i par16, __m512i nib, __m512i one) {
  v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 32));
  v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 16));
  v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 8));
  v = _mm512_xor_si512(v, _mm512_srli_epi64(v, 4));
  v = _mm512_and_si512(v, nib);
  return _mm512_and_si512(_mm512_srlv_epi64(par16, v), one);
}

uint64_t Gf64MulClmul(uint64_t a, uint64_t b) {
  const __m128i poly = _mm_cvtsi64_si128(0x1b);
  const __m128i prod = _mm_clmulepi64_si128(_mm_cvtsi64_si128(
                                                static_cast<long long>(a)),
                                            _mm_cvtsi64_si128(
                                                static_cast<long long>(b)),
                                            0x00);
  const __m128i r1 = _mm_clmulepi64_si128(_mm_srli_si128(prod, 8), poly, 0x00);
  const __m128i r2 = _mm_clmulepi64_si128(_mm_srli_si128(r1, 8), poly, 0x00);
  const __m128i res = _mm_xor_si128(_mm_xor_si128(prod, r1), r2);
  return static_cast<uint64_t>(_mm_cvtsi128_si64(res));
}

// Loop-invariant broadcast state for the fused row kernel.
struct FusedConstsZ {
  __m512i m61, mask29, mask32, av, bv, c0v, c1v, c2v, c3v, m0, m1, dv, one,
      wv;
  unsigned shift;
};

FusedConstsZ MakeFusedConstsZ(const BucketParams& hash, const uint64_t* c,
                              double weight) {
  FusedConstsZ k;
  k.m61 = _mm512_set1_epi64(static_cast<long long>(kM61));
  k.mask29 = _mm512_set1_epi64((1LL << 29) - 1);
  k.mask32 = _mm512_set1_epi64(0xFFFFFFFFLL);
  k.av = _mm512_set1_epi64(static_cast<long long>(hash.multiplier));
  k.bv = _mm512_set1_epi64(static_cast<long long>(hash.offset));
  k.c0v = _mm512_set1_epi64(static_cast<long long>(c[0]));
  k.c1v = _mm512_set1_epi64(static_cast<long long>(c[1]));
  k.c2v = _mm512_set1_epi64(static_cast<long long>(c[2]));
  k.c3v = _mm512_set1_epi64(static_cast<long long>(c[3]));
  k.m0 = _mm512_set1_epi64(static_cast<long long>(hash.magic & 0xFFFFFFFFu));
  k.m1 = _mm512_set1_epi64(static_cast<long long>(hash.magic >> 32));
  k.dv = _mm512_set1_epi64(static_cast<long long>(hash.num_buckets));
  k.one = _mm512_set1_epi64(1);
  uint64_t wbits;
  std::memcpy(&wbits, &weight, sizeof(wbits));
  k.wv = _mm512_set1_epi64(static_cast<long long>(wbits));
  k.shift = hash.shift;
  return k;
}

// Computes 8 bucket indices and 8 pre-signed weights (weight XOR sign-flip
// bit) for the loaded key vector. kSmall selects the 2-vpmuludq mulmod.
template <bool kSmall>
inline void FusedCompute8(const FusedConstsZ& k, __m512i x, uint64_t* bucket,
                          double* w) {
  __m512i x1;
  if constexpr (!kSmall) {
    x = Fold61Z(x, k.m61);
    x1 = _mm512_srli_epi64(x, 32);
  }
  const auto mulmod = [&](__m512i h) {
    if constexpr (kSmall) {
      return MulModSmallZ(h, x, k.m61, k.mask29);
    } else {
      return MulModGenZ(h, x, x1, k.m61, k.mask29);
    }
  };
  __m512i g = _mm512_add_epi64(mulmod(k.av), k.bv);
  g = CanonZ(Fold61Z(g, k.m61), k.m61);
  const __m512i bkt = FastModZ(g, k.m0, k.m1, k.mask32, k.dv, k.shift);
  __m512i h = _mm512_add_epi64(mulmod(k.c3v), k.c2v);
  h = Fold61Z(h, k.m61);
  h = _mm512_add_epi64(mulmod(h), k.c1v);
  h = Fold61Z(h, k.m61);
  h = _mm512_add_epi64(mulmod(h), k.c0v);
  const __m512i flip = SignFlip63Z(h, k.m61, k.one);
  _mm512_store_si512(bucket, bkt);
  _mm512_store_si512(w, _mm512_xor_si512(k.wv, flip));
}

void Avx512FusedCw4Row(const BucketParams& hash, const uint64_t* c,
                       const uint64_t* keys, size_t n, double weight,
                       double* row) {
  if (hash.num_buckets == 1) {
    // Degenerate single-bucket row: the scalar twin's dedicated loop is the
    // reference; nothing to vectorize around a single accumulator.
    ScalarFusedCw4Row(hash, c, keys, n, weight, row);
    return;
  }
  const FusedConstsZ k = MakeFusedConstsZ(hash, c, weight);
  const __m512i hi32 =
      _mm512_set1_epi64(static_cast<long long>(0xFFFFFFFF00000000ULL));
  alignas(64) uint64_t bucket[2][8];
  alignas(64) double w[2][8];
  const size_t groups = n / 8;
  const auto compute = [&](size_t g, size_t slot) {
    const __m512i x = _mm512_loadu_si512(keys + g * 8);
    if (_mm512_test_epi64_mask(x, hi32) != 0) {
      FusedCompute8<false>(k, x, bucket[slot], w[slot]);
    } else {
      FusedCompute8<true>(k, x, bucket[slot], w[slot]);
    }
  };
  if (groups > 0) {
    // Lag-1 software pipeline: vector-compute group g while scattering
    // group g-1, keeping the port-complementary halves overlapped.
    compute(0, 0);
    for (size_t g = 1; g < groups; ++g) {
      compute(g, g & 1);
      const uint64_t* pb = bucket[(g - 1) & 1];
      const double* pw = w[(g - 1) & 1];
      for (size_t j = 0; j < 8; ++j) row[pb[j]] += pw[j];
    }
    const uint64_t* pb = bucket[(groups - 1) & 1];
    const double* pw = w[(groups - 1) & 1];
    for (size_t j = 0; j < 8; ++j) row[pb[j]] += pw[j];
  }
  if (n % 8 != 0) {
    ScalarFusedCw4Row(hash, c, keys + groups * 8, n % 8, weight, row);
  }
}

void Avx512BucketBatch(const BucketParams& hash, const uint64_t* keys,
                       size_t n, uint64_t* out) {
  const __m512i m61 = _mm512_set1_epi64(static_cast<long long>(kM61));
  const __m512i mask29 = _mm512_set1_epi64((1LL << 29) - 1);
  const __m512i mask32 = _mm512_set1_epi64(0xFFFFFFFFLL);
  const __m512i av = _mm512_set1_epi64(static_cast<long long>(hash.multiplier));
  const __m512i bv = _mm512_set1_epi64(static_cast<long long>(hash.offset));
  const __m512i m0 =
      _mm512_set1_epi64(static_cast<long long>(hash.magic & 0xFFFFFFFFu));
  const __m512i m1 = _mm512_set1_epi64(static_cast<long long>(hash.magic >> 32));
  const __m512i dv =
      _mm512_set1_epi64(static_cast<long long>(hash.num_buckets));
  const __m512i maskv = _mm512_set1_epi64(static_cast<long long>(hash.mask));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i x = _mm512_loadu_si512(keys + i);
    x = Fold61Z(x, m61);
    const __m512i x1 = _mm512_srli_epi64(x, 32);
    __m512i g = _mm512_add_epi64(MulModGenZ(av, x, x1, m61, mask29), bv);
    g = CanonZ(Fold61Z(g, m61), m61);
    const __m512i bkt = _mm512_and_si512(
        FastModZ(g, m0, m1, mask32, dv, hash.shift), maskv);
    _mm512_storeu_si512(out + i, bkt);
  }
  if (i < n) ScalarBucketBatch(hash, keys + i, n - i, out + i);
}

void Avx512Eh3Sign(uint64_t s, int s0, const uint64_t* keys, size_t n,
                   int8_t* out) {
  const __m512i sv = _mm512_set1_epi64(static_cast<long long>(s));
  const __m512i fives =
      _mm512_set1_epi64(static_cast<long long>(0x5555555555555555ULL));
  const __m512i par16 = _mm512_set1_epi64(0x6996);
  const __m512i nib = _mm512_set1_epi64(15);
  const __m512i one = _mm512_set1_epi64(1);
  alignas(64) uint64_t lane[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i key = _mm512_loadu_si512(keys + i);
    const __m512i pair_or = _mm512_and_si512(
        _mm512_or_si512(key, _mm512_srli_epi64(key, 1)), fives);
    const __m512i v =
        _mm512_xor_si512(_mm512_and_si512(sv, key), pair_or);
    _mm512_store_si512(lane, ParityZ(v, par16, nib, one));
    for (size_t j = 0; j < 8; ++j) {
      out[i + j] =
          static_cast<int8_t>(1 - 2 * (static_cast<int>(lane[j]) ^ s0));
    }
  }
  if (i < n) ScalarEh3Sign(s, s0, keys + i, n - i, out + i);
}

void Avx512Bch3Sign(uint64_t s, int s0, const uint64_t* keys, size_t n,
                    int8_t* out) {
  const __m512i sv = _mm512_set1_epi64(static_cast<long long>(s));
  const __m512i par16 = _mm512_set1_epi64(0x6996);
  const __m512i nib = _mm512_set1_epi64(15);
  const __m512i one = _mm512_set1_epi64(1);
  alignas(64) uint64_t lane[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_and_si512(sv, _mm512_loadu_si512(keys + i));
    _mm512_store_si512(lane, ParityZ(v, par16, nib, one));
    for (size_t j = 0; j < 8; ++j) {
      out[i + j] =
          static_cast<int8_t>(1 - 2 * (static_cast<int>(lane[j]) ^ s0));
    }
  }
  if (i < n) ScalarBch3Sign(s, s0, keys + i, n - i, out + i);
}

void Avx512Bch5Sign(uint64_t s1, uint64_t s2, int s0, const uint64_t* keys,
                    size_t n, int8_t* out) {
  // The cube in GF(2^64) dominates; PCLMULQDQ computes it in a handful of
  // carry-less multiplies per key vs. the scalar twin's 64-iteration loop.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = keys[i];
    const uint64_t cube = Gf64MulClmul(Gf64MulClmul(key, key), key);
    int bit = std::popcount(s1 & key) & 1;
    bit ^= std::popcount(s2 & cube) & 1;
    bit ^= s0;
    out[i] = static_cast<int8_t>(1 - 2 * bit);
  }
}

void Avx512Cw2Sign(uint64_t a, uint64_t b, const uint64_t* keys, size_t n,
                   int8_t* out) {
  const __m512i m61 = _mm512_set1_epi64(static_cast<long long>(kM61));
  const __m512i mask29 = _mm512_set1_epi64((1LL << 29) - 1);
  const __m512i av = _mm512_set1_epi64(static_cast<long long>(a));
  const __m512i bv = _mm512_set1_epi64(static_cast<long long>(b));
  alignas(64) uint64_t lane[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i x = _mm512_loadu_si512(keys + i);
    x = Fold61Z(x, m61);
    const __m512i x1 = _mm512_srli_epi64(x, 32);
    __m512i h = _mm512_add_epi64(MulModGenZ(av, x, x1, m61, mask29), bv);
    h = CanonZ(Fold61Z(h, m61), m61);
    _mm512_store_si512(lane, h);
    for (size_t j = 0; j < 8; ++j) {
      out[i + j] =
          static_cast<int8_t>(1 - 2 * static_cast<int>(lane[j] & 1));
    }
  }
  if (i < n) ScalarCw2Sign(a, b, keys + i, n - i, out + i);
}

void Avx512Cw4Sign(const uint64_t* c, const uint64_t* keys, size_t n,
                   int8_t* out) {
  const __m512i m61 = _mm512_set1_epi64(static_cast<long long>(kM61));
  const __m512i mask29 = _mm512_set1_epi64((1LL << 29) - 1);
  const __m512i c0v = _mm512_set1_epi64(static_cast<long long>(c[0]));
  const __m512i c1v = _mm512_set1_epi64(static_cast<long long>(c[1]));
  const __m512i c2v = _mm512_set1_epi64(static_cast<long long>(c[2]));
  const __m512i c3v = _mm512_set1_epi64(static_cast<long long>(c[3]));
  alignas(64) uint64_t lane[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i x = _mm512_loadu_si512(keys + i);
    x = Fold61Z(x, m61);
    const __m512i x1 = _mm512_srli_epi64(x, 32);
    __m512i h = _mm512_add_epi64(MulModGenZ(c3v, x, x1, m61, mask29), c2v);
    h = Fold61Z(h, m61);
    h = _mm512_add_epi64(MulModGenZ(h, x, x1, m61, mask29), c1v);
    h = Fold61Z(h, m61);
    h = _mm512_add_epi64(MulModGenZ(h, x, x1, m61, mask29), c0v);
    h = CanonZ(Fold61Z(h, m61), m61);
    _mm512_store_si512(lane, h);
    for (size_t j = 0; j < 8; ++j) {
      out[i + j] =
          static_cast<int8_t>(1 - 2 * static_cast<int>(lane[j] & 1));
    }
  }
  if (i < n) ScalarCw4Sign(c, keys + i, n - i, out + i);
}

}  // namespace

const KernelTable* GetAvx512KernelTable() {
  static const KernelTable table = {
      .name = "avx512",
      .eh3_sign = Avx512Eh3Sign,
      .bch3_sign = Avx512Bch3Sign,
      .bch5_sign = Avx512Bch5Sign,
      .cw2_sign = Avx512Cw2Sign,
      .cw4_sign = Avx512Cw4Sign,
      .bucket_batch = Avx512BucketBatch,
      .fused_cw4_row = Avx512FusedCw4Row,
  };
  return &table;
}

}  // namespace sketchsample::simd

#else  // !x86

#include "src/prng/simd/kernels.h"

namespace sketchsample::simd {
const KernelTable* GetAvx512KernelTable() { return nullptr; }
}  // namespace sketchsample::simd

#endif
