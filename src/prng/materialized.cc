#include "src/prng/materialized.h"

#include <stdexcept>
#include <utility>

namespace sketchsample {

MaterializedXi::MaterializedXi(std::unique_ptr<XiFamily> base,
                               size_t domain_size)
    : base_(std::move(base)), domain_size_(domain_size) {
  if (base_ == nullptr) {
    throw std::invalid_argument("materialized xi needs a base family");
  }
  bits_.assign((domain_size + 63) / 64, 0);
  for (size_t key = 0; key < domain_size; ++key) {
    if (base_->Sign(key) < 0) {
      bits_[key >> 6] |= uint64_t{1} << (key & 63);
    }
  }
}

MaterializedXi::MaterializedXi(const MaterializedXi& other)
    : base_(other.base_->Clone()),
      domain_size_(other.domain_size_),
      bits_(other.bits_) {}

std::unique_ptr<XiFamily> MakeMaterializedXiFamily(XiScheme scheme,
                                                   uint64_t seed,
                                                   size_t domain_size) {
  return std::make_unique<MaterializedXi>(MakeXiFamily(scheme, seed),
                                          domain_size);
}

}  // namespace sketchsample
