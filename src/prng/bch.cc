#include "src/prng/bch.h"

#include <bit>

#include "src/prng/simd/dispatch.h"
#include "src/util/rng.h"

namespace sketchsample {

Bch3Xi::Bch3Xi(uint64_t seed) {
  uint64_t sm = seed;
  s_ = SplitMix64(&sm);
  s0_ = static_cast<int>(SplitMix64(&sm) & 1);
}

int Bch3Xi::Sign(uint64_t key) const {
  int bit = (std::popcount(s_ & key) & 1) ^ s0_;
  return bit ? -1 : +1;
}

void Bch3Xi::SignBatch(const uint64_t* keys, size_t n, int8_t* out) const {
  // Dispatched kernel (scalar twin in src/prng/simd/kernels_scalar.cc).
  simd::Kernels().bch3_sign(s_, s0_, keys, n, out);
}

uint64_t Gf64Mul(uint64_t a, uint64_t b) {
  // Carry-less 64x64 -> 128 multiplication.
  uint64_t lo = 0, hi = 0;
  while (b != 0) {
    int k = std::countr_zero(b);
    b &= b - 1;
    lo ^= a << k;
    if (k != 0) hi ^= a >> (64 - k);
  }
  // Reduce modulo x^64 + x^4 + x^3 + x + 1. A bit at position 64+k equals
  // x^(64+k) = x^(k+4) + x^(k+3) + x^(k+1) + x^k.
  uint64_t t = hi;
  uint64_t over = (t >> 63) ^ (t >> 61) ^ (t >> 60);  // bits pushed past 63
  lo ^= t ^ (t << 1) ^ (t << 3) ^ (t << 4);
  lo ^= over ^ (over << 1) ^ (over << 3) ^ (over << 4);
  return lo;
}

Bch5Xi::Bch5Xi(uint64_t seed) {
  uint64_t sm = seed;
  s1_ = SplitMix64(&sm);
  s2_ = SplitMix64(&sm);
  s0_ = static_cast<int>(SplitMix64(&sm) & 1);
}

int Bch5Xi::Sign(uint64_t key) const {
  uint64_t cube = Gf64Mul(Gf64Mul(key, key), key);
  int bit = std::popcount(s1_ & key) & 1;
  bit ^= std::popcount(s2_ & cube) & 1;
  bit ^= s0_;
  return bit ? -1 : +1;
}

void Bch5Xi::SignBatch(const uint64_t* keys, size_t n, int8_t* out) const {
  // Dispatched kernel: the vector levels replace the 64-iteration Gf64Mul
  // loop with PCLMULQDQ carry-less multiplies, bit-exact with Sign().
  simd::Kernels().bch5_sign(s1_, s2_, s0_, keys, n, out);
}

}  // namespace sketchsample
