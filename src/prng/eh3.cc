#include "src/prng/eh3.h"

#include <bit>

#include "src/util/rng.h"

namespace sketchsample {

Eh3Xi::Eh3Xi(uint64_t seed) {
  uint64_t sm = seed;
  s_ = SplitMix64(&sm);
  s0_ = static_cast<int>(SplitMix64(&sm) & 1);
}

int Eh3Xi::Sign(uint64_t key) const {
  // Linear part: parity of S AND key.
  int bit = std::popcount(s_ & key) & 1;
  // Non-linear part: XOR over adjacent bit pairs of (b_{2k} OR b_{2k+1}).
  uint64_t pair_or = (key | (key >> 1)) & 0x5555555555555555ULL;
  bit ^= std::popcount(pair_or) & 1;
  bit ^= s0_;
  return bit ? -1 : +1;
}

void Eh3Xi::SignBatch(const uint64_t* keys, size_t n, int8_t* out) const {
  const uint64_t s = s_;
  const int s0 = s0_;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = keys[i];
    int bit = std::popcount(s & key) & 1;
    const uint64_t pair_or = (key | (key >> 1)) & 0x5555555555555555ULL;
    bit ^= std::popcount(pair_or) & 1;
    bit ^= s0;
    out[i] = static_cast<int8_t>(1 - 2 * bit);
  }
}

}  // namespace sketchsample
