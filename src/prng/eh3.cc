#include "src/prng/eh3.h"

#include <bit>

#include "src/prng/simd/dispatch.h"
#include "src/util/rng.h"

namespace sketchsample {

Eh3Xi::Eh3Xi(uint64_t seed) {
  uint64_t sm = seed;
  s_ = SplitMix64(&sm);
  s0_ = static_cast<int>(SplitMix64(&sm) & 1);
}

int Eh3Xi::Sign(uint64_t key) const {
  // Linear part: parity of S AND key.
  int bit = std::popcount(s_ & key) & 1;
  // Non-linear part: XOR over adjacent bit pairs of (b_{2k} OR b_{2k+1}).
  uint64_t pair_or = (key | (key >> 1)) & 0x5555555555555555ULL;
  bit ^= std::popcount(pair_or) & 1;
  bit ^= s0_;
  return bit ? -1 : +1;
}

void Eh3Xi::SignBatch(const uint64_t* keys, size_t n, int8_t* out) const {
  // Dispatched kernel (scalar twin in src/prng/simd/kernels_scalar.cc);
  // every ISA level is bit-exact with per-key Sign().
  simd::Kernels().eh3_sign(s_, s0_, keys, n, out);
}

}  // namespace sketchsample
