// Simple tabulation hashing ±1 family.
#ifndef SKETCHSAMPLE_PRNG_TABULATION_H_
#define SKETCHSAMPLE_PRNG_TABULATION_H_

#include <array>
#include <cstdint>
#include <memory>

#include "src/prng/xi.h"

namespace sketchsample {

/// Simple tabulation: the key is split into 8 bytes; each byte indexes a
/// random 256-entry table of bits, and the sign is the XOR of the 8 lookups.
/// 3-wise independent and extremely fast when the tables are cache-resident
/// (2 KiB total here, stored as packed bit tables).
class TabulationXi final : public XiFamily {
 public:
  explicit TabulationXi(uint64_t seed);

  int Sign(uint64_t key) const override;
  void SignBatch(const uint64_t* keys, size_t n, int8_t* out) const override;
  int IndependenceLevel() const override { return 3; }
  size_t MemoryBytes() const override { return sizeof(*this); }
  XiScheme Scheme() const override { return XiScheme::kTabulation; }
  std::unique_ptr<XiFamily> Clone() const override {
    return std::make_unique<TabulationXi>(*this);
  }

 private:
  // tables_[byte_position][byte_value / 64] holds 64 packed sign bits.
  std::array<std::array<uint64_t, 4>, 8> tables_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_TABULATION_H_
