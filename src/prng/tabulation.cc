#include "src/prng/tabulation.h"

#include "src/util/rng.h"

namespace sketchsample {

TabulationXi::TabulationXi(uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& table : tables_) {
    for (auto& word : table) word = rng();
  }
}

int TabulationXi::Sign(uint64_t key) const {
  int bit = 0;
  for (int pos = 0; pos < 8; ++pos) {
    const unsigned byte = static_cast<unsigned>(key >> (8 * pos)) & 0xff;
    bit ^= static_cast<int>(tables_[pos][byte >> 6] >> (byte & 63)) & 1;
  }
  return bit ? -1 : +1;
}

}  // namespace sketchsample
