#include "src/prng/tabulation.h"

#include "src/util/rng.h"

namespace sketchsample {

TabulationXi::TabulationXi(uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& table : tables_) {
    for (auto& word : table) word = rng();
  }
}

int TabulationXi::Sign(uint64_t key) const {
  int bit = 0;
  for (int pos = 0; pos < 8; ++pos) {
    const unsigned byte = static_cast<unsigned>(key >> (8 * pos)) & 0xff;
    bit ^= static_cast<int>(tables_[pos][byte >> 6] >> (byte & 63)) & 1;
  }
  return bit ? -1 : +1;
}

void TabulationXi::SignBatch(const uint64_t* keys, size_t n,
                             int8_t* out) const {
  // The 2 KiB of tables stay L1-resident across the whole batch; the eight
  // lookups per key are independent loads the core can issue in parallel.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = keys[i];
    int bit = 0;
    for (int pos = 0; pos < 8; ++pos) {
      const unsigned byte = static_cast<unsigned>(key >> (8 * pos)) & 0xff;
      bit ^= static_cast<int>(tables_[pos][byte >> 6] >> (byte & 63)) & 1;
    }
    out[i] = static_cast<int8_t>(1 - 2 * bit);
  }
}

}  // namespace sketchsample
