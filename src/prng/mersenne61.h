// Arithmetic modulo the Mersenne prime p = 2^61 - 1.
//
// Carter-Wegman polynomial hash families (src/prng/cw.h) need a prime field
// larger than the 32/64-bit key domain; 2^61 - 1 admits a branch-light
// reduction (fold high bits into low bits) and fits products in __uint128_t.
#ifndef SKETCHSAMPLE_PRNG_MERSENNE61_H_
#define SKETCHSAMPLE_PRNG_MERSENNE61_H_

#include <cstdint>

#include "src/util/rng.h"

namespace sketchsample {

/// The Mersenne prime 2^61 - 1.
inline constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

/// Reduces an arbitrary 64-bit value into [0, p). Input may be >= p.
inline uint64_t Mod61(uint64_t x) {
  x = (x & kMersenne61) + (x >> 61);
  if (x >= kMersenne61) x -= kMersenne61;
  return x;
}

/// Reduces a 128-bit value (e.g. a product of two field elements) mod p.
inline uint64_t Mod61Wide(__uint128_t x) {
  // Fold twice: 128 -> 67 bits -> 61 bits.
  uint64_t lo = static_cast<uint64_t>(x & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  return Mod61(lo + Mod61(hi));
}

/// (a * b) mod p for a, b in [0, p).
inline uint64_t MulMod61(uint64_t a, uint64_t b) {
  return Mod61Wide(static_cast<__uint128_t>(a) * b);
}

/// (a + b) mod p for a, b in [0, p).
inline uint64_t AddMod61(uint64_t a, uint64_t b) {
  uint64_t s = a + b;  // < 2^62, no overflow
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

// --- Lazy (redundant-representation) arithmetic for batch kernels ---------
//
// The canonical Mod61/MulMod61 above keep every intermediate in [0, p) via
// data-dependent conditional subtractions. In a batch loop those compile to
// branches whose outcomes are per-key random, and the resulting mispredicts
// serialize what should be independent per-key chains. The Lazy variants
// below drop canonicality: values stay merely *congruent* mod p within
// documented bounds, all ops are branch-free, and one CanonMod61 at the end
// of a chain restores [0, p). The specific bounds below cover a degree-3
// Horner chain (CW4), the worst case in this codebase:
//
//   x  = Fold61(key)                     x <= 2^61 + 6
//   h  = MulMod61Lazy(c, x) + c'         h <= 3·2^61 + 4
//   h  = MulMod61Lazy(h, x) + c''        h <= 5·2^61 + 21
//   h  = MulMod61Lazy(h, x) + c'''       h <= 7·2^61 + 50  (< 2^64)
//   CanonMod61(h)                        in [0, p)

/// One folding step: 2^61 ≡ 1 (mod p), so this preserves the value mod p.
/// For any 64-bit x the result is <= p + 7.
inline uint64_t Fold61(uint64_t x) {
  return (x & kMersenne61) + (x >> 61);
}

/// Product congruent to a·b mod p, one fold, no conditional subtraction.
/// Requires a·b < 2^125 (e.g. a < 6.1·2^61, b <= 2^61 + 6); the result is
/// then <= a·b/2^61 + p.
inline uint64_t MulMod61Lazy(uint64_t a, uint64_t b) {
  const __uint128_t product = static_cast<__uint128_t>(a) * b;
  return (static_cast<uint64_t>(product) & kMersenne61) +
         static_cast<uint64_t>(product >> 61);
}

/// Canonicalizes a lazy value into [0, p). Valid whenever x < 8·2^61 (so
/// one fold lands in [0, p + 7] and a single subtraction finishes), which
/// holds for every chain documented above.
inline uint64_t CanonMod61(uint64_t x) {
  x = Fold61(x);
  return x >= kMersenne61 ? x - kMersenne61 : x;
}

/// a^e mod p by square-and-multiply.
uint64_t PowMod61(uint64_t a, uint64_t e);

/// Draws a uniform element of [0, p) from a driver RNG (rejection sampling).
uint64_t UniformMod61(Xoshiro256& rng);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_MERSENNE61_H_
