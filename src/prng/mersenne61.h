// Arithmetic modulo the Mersenne prime p = 2^61 - 1.
//
// Carter-Wegman polynomial hash families (src/prng/cw.h) need a prime field
// larger than the 32/64-bit key domain; 2^61 - 1 admits a branch-light
// reduction (fold high bits into low bits) and fits products in __uint128_t.
#ifndef SKETCHSAMPLE_PRNG_MERSENNE61_H_
#define SKETCHSAMPLE_PRNG_MERSENNE61_H_

#include <cstdint>

#include "src/util/rng.h"

namespace sketchsample {

/// The Mersenne prime 2^61 - 1.
inline constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

/// Reduces an arbitrary 64-bit value into [0, p). Input may be >= p.
inline uint64_t Mod61(uint64_t x) {
  x = (x & kMersenne61) + (x >> 61);
  if (x >= kMersenne61) x -= kMersenne61;
  return x;
}

/// Reduces a 128-bit value (e.g. a product of two field elements) mod p.
inline uint64_t Mod61Wide(__uint128_t x) {
  // Fold twice: 128 -> 67 bits -> 61 bits.
  uint64_t lo = static_cast<uint64_t>(x & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  return Mod61(lo + Mod61(hi));
}

/// (a * b) mod p for a, b in [0, p).
inline uint64_t MulMod61(uint64_t a, uint64_t b) {
  return Mod61Wide(static_cast<__uint128_t>(a) * b);
}

/// (a + b) mod p for a, b in [0, p).
inline uint64_t AddMod61(uint64_t a, uint64_t b) {
  uint64_t s = a + b;  // < 2^62, no overflow
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

/// a^e mod p by square-and-multiply.
uint64_t PowMod61(uint64_t a, uint64_t e);

/// Draws a uniform element of [0, p) from a driver RNG (rejection sampling).
uint64_t UniformMod61(Xoshiro256& rng);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_MERSENNE61_H_
