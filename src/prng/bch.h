// BCH-code-based ±1 families: BCH3 (3-wise) and BCH5 (5-wise).
#ifndef SKETCHSAMPLE_PRNG_BCH_H_
#define SKETCHSAMPLE_PRNG_BCH_H_

#include <cstdint>
#include <memory>

#include "src/prng/xi.h"

namespace sketchsample {

/// BCH3: ξ_i = (-1)^(s0 ⊕ <S,i>). The affine GF(2) scheme; any three entries
/// are independent (four are not: ξ_i ξ_j ξ_k ξ_l is constant whenever
/// i⊕j⊕k⊕l = 0). The cheapest usable generator.
class Bch3Xi final : public XiFamily {
 public:
  explicit Bch3Xi(uint64_t seed);

  int Sign(uint64_t key) const override;
  void SignBatch(const uint64_t* keys, size_t n, int8_t* out) const override;
  int IndependenceLevel() const override { return 3; }
  size_t MemoryBytes() const override { return sizeof(*this); }
  XiScheme Scheme() const override { return XiScheme::kBch3; }
  std::unique_ptr<XiFamily> Clone() const override {
    return std::make_unique<Bch3Xi>(*this);
  }

 private:
  uint64_t s_ = 0;
  int s0_ = 0;
};

/// Multiplies two elements of GF(2^64) represented as bit-vectors, reducing
/// modulo the irreducible polynomial x^64 + x^4 + x^3 + x + 1. Portable
/// (shift-and-xor) implementation; exposed for testing.
uint64_t Gf64Mul(uint64_t a, uint64_t b);

/// BCH5: ξ_i = (-1)^(s0 ⊕ <S1,i> ⊕ <S2,i³>) with the cube taken in GF(2^64).
/// The dual of a distance-5 BCH code; any five entries are independent.
class Bch5Xi final : public XiFamily {
 public:
  explicit Bch5Xi(uint64_t seed);

  int Sign(uint64_t key) const override;
  void SignBatch(const uint64_t* keys, size_t n, int8_t* out) const override;
  int IndependenceLevel() const override { return 5; }
  size_t MemoryBytes() const override { return sizeof(*this); }
  XiScheme Scheme() const override { return XiScheme::kBch5; }
  std::unique_ptr<XiFamily> Clone() const override {
    return std::make_unique<Bch5Xi>(*this);
  }

 private:
  uint64_t s1_ = 0;
  uint64_t s2_ = 0;
  int s0_ = 0;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_BCH_H_
