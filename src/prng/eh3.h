// EH3: 3-wise independent ±1 family from an extended Hamming code.
#ifndef SKETCHSAMPLE_PRNG_EH3_H_
#define SKETCHSAMPLE_PRNG_EH3_H_

#include <cstdint>
#include <memory>

#include "src/prng/xi.h"

namespace sketchsample {

/// EH3 scheme of ref [17]: ξ_i = (-1)^(s0 ⊕ <S,i> ⊕ h(i)) where <S,i> is the
/// GF(2) inner product of the random seed word S with the key bits, and h is
/// the fixed non-linear part XOR-ing together the ORs of adjacent key-bit
/// pairs. The non-linear part upgrades the 2-wise-independent affine scheme
/// to 3-wise independence at the cost of two extra bit operations.
class Eh3Xi final : public XiFamily {
 public:
  /// Derives (s0, S) from `seed`.
  explicit Eh3Xi(uint64_t seed);

  int Sign(uint64_t key) const override;
  void SignBatch(const uint64_t* keys, size_t n, int8_t* out) const override;
  int IndependenceLevel() const override { return 3; }
  size_t MemoryBytes() const override { return sizeof(*this); }
  XiScheme Scheme() const override { return XiScheme::kEh3; }
  std::unique_ptr<XiFamily> Clone() const override {
    return std::make_unique<Eh3Xi>(*this);
  }

 private:
  uint64_t s_ = 0;  // linear part
  int s0_ = 0;      // constant bit
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_EH3_H_
