#include "src/prng/hash.h"

#include <stdexcept>

#include "src/prng/mersenne61.h"
#include "src/util/rng.h"

namespace sketchsample {

PairwiseHash::PairwiseHash(uint64_t seed, uint64_t num_buckets)
    : num_buckets_(num_buckets) {
  if (num_buckets == 0) {
    throw std::invalid_argument("PairwiseHash needs at least one bucket");
  }
  Xoshiro256 rng(seed);
  do {
    a_ = UniformMod61(rng);
  } while (a_ == 0);
  b_ = UniformMod61(rng);
}

uint64_t PairwiseHash::Bucket(uint64_t key) const {
  return AddMod61(MulMod61(a_, Mod61(key)), b_) % num_buckets_;
}

}  // namespace sketchsample
