#include "src/prng/hash.h"

#include <stdexcept>

#include "src/prng/mersenne61.h"
#include "src/prng/simd/dispatch.h"
#include "src/util/rng.h"

namespace sketchsample {

PairwiseHash::PairwiseHash(uint64_t seed, uint64_t num_buckets)
    : num_buckets_(num_buckets) {
  if (num_buckets == 0) {
    throw std::invalid_argument("PairwiseHash needs at least one bucket");
  }
  // Round-up magic for FastModBuckets (see hash.h for the exactness bound).
  if (num_buckets == 1) {
    magic_ = 0;
    shift_ = 0;
    mask_ = 0;  // remainder is identically 0
  } else {
    uint32_t s = 1;
    while (s < 64 && (static_cast<__uint128_t>(1) << s) < num_buckets) ++s;
    shift_ = s > 3 ? s - 3 : 0;
    magic_ = static_cast<uint64_t>(
        ((static_cast<__uint128_t>(1) << (64 + shift_)) / num_buckets) + 1);
    mask_ = ~static_cast<uint64_t>(0);
  }
  Xoshiro256 rng(seed);
  do {
    a_ = UniformMod61(rng);
  } while (a_ == 0);
  b_ = UniformMod61(rng);
}

uint64_t PairwiseHash::Bucket(uint64_t key) const {
  return AddMod61(MulMod61(a_, Mod61(key)), b_) % num_buckets_;
}

void PairwiseHash::BucketBatch(const uint64_t* keys, size_t n,
                               uint64_t* out) const {
  // Dispatched kernel (scalar twin in src/prng/simd/kernels_scalar.cc):
  // branch-free lazy evaluation of the same polynomial as Bucket() followed
  // by the exact reciprocal modulo; identical results at every ISA level.
  simd::Kernels().bucket_batch(KernelParams(), keys, n, out);
}

}  // namespace sketchsample
