// Carter-Wegman polynomial ±1 families over GF(2^61 - 1).
#ifndef SKETCHSAMPLE_PRNG_CW_H_
#define SKETCHSAMPLE_PRNG_CW_H_

#include <cstdint>
#include <memory>

#include "src/prng/xi.h"

namespace sketchsample {

/// CW2: ξ_i = sign of the low bit of (a·i + b) mod p. Exactly 2-wise
/// independent (up to the 2^-61 parity bias of the odd field size).
class Cw2Xi final : public XiFamily {
 public:
  explicit Cw2Xi(uint64_t seed);

  int Sign(uint64_t key) const override;
  void SignBatch(const uint64_t* keys, size_t n, int8_t* out) const override;
  int IndependenceLevel() const override { return 2; }
  size_t MemoryBytes() const override { return sizeof(*this); }
  XiScheme Scheme() const override { return XiScheme::kCw2; }
  std::unique_ptr<XiFamily> Clone() const override {
    return std::make_unique<Cw2Xi>(*this);
  }

 private:
  uint64_t a_ = 1, b_ = 0;
};

/// CW4: ξ_i from the low bit of a random degree-3 polynomial evaluated at i
/// over GF(2^61 - 1). Exactly 4-wise independent — the family the AGMS
/// variance analysis (Props 7-16 of the paper) assumes. Keys are reduced
/// modulo p, which is injective for domains below 2^61 - 1.
class Cw4Xi final : public XiFamily {
 public:
  explicit Cw4Xi(uint64_t seed);

  int Sign(uint64_t key) const override;
  void SignBatch(const uint64_t* keys, size_t n, int8_t* out) const override;
  int IndependenceLevel() const override { return 4; }
  size_t MemoryBytes() const override { return sizeof(*this); }
  XiScheme Scheme() const override { return XiScheme::kCw4; }
  std::unique_ptr<XiFamily> Clone() const override {
    return std::make_unique<Cw4Xi>(*this);
  }

  /// Polynomial coefficients (c0..c3), exposed for fused batch kernels that
  /// evaluate the sign inline next to a bucket hash over the same keys.
  const uint64_t* coefficients() const { return c_; }

 private:
  uint64_t c_[4] = {0, 0, 0, 1};  // c0 + c1 x + c2 x^2 + c3 x^3
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_PRNG_CW_H_
