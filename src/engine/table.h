// A minimal column-store table: the relation substrate for the
// online-aggregation engine of §VI-C.
//
// Relations are append-only collections of fixed-arity rows of 64-bit
// attribute values (join attributes are categorical keys in this library's
// domain model). Storage is columnar so scans touch only the attributes a
// query needs.
#ifndef SKETCHSAMPLE_ENGINE_TABLE_H_
#define SKETCHSAMPLE_ENGINE_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sketchsample {

/// Append-only columnar table of uint64 attributes.
class Table {
 public:
  /// Creates an empty table with named columns (at least one).
  explicit Table(std::vector<std::string> column_names);

  /// Appends one row; `values` must match the column count.
  void AppendRow(const std::vector<uint64_t>& values);

  /// Bulk-appends a whole column-shaped relation: `columns[c]` holds the
  /// values of column c; all columns must have equal length.
  void AppendColumns(const std::vector<std::vector<uint64_t>>& columns);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return names_.size(); }
  const std::string& column_name(size_t index) const {
    return names_[index];
  }

  /// Index of a named column; throws std::out_of_range for unknown names.
  size_t ColumnIndex(const std::string& name) const;

  /// Raw column values (size() == num_rows()).
  const std::vector<uint64_t>& column(size_t index) const {
    return columns_[index];
  }
  const std::vector<uint64_t>& column(const std::string& name) const {
    return columns_[ColumnIndex(name)];
  }

  uint64_t value(size_t row, size_t column_index) const {
    return columns_[column_index][row];
  }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<uint64_t>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_ENGINE_TABLE_H_
