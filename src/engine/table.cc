#include "src/engine/table.h"

#include <stdexcept>
#include <utility>

namespace sketchsample {

Table::Table(std::vector<std::string> column_names)
    : names_(std::move(column_names)) {
  if (names_.empty()) {
    throw std::invalid_argument("a table needs at least one column");
  }
  for (size_t i = 0; i < names_.size(); ++i) {
    for (size_t j = i + 1; j < names_.size(); ++j) {
      if (names_[i] == names_[j]) {
        throw std::invalid_argument("duplicate column name: " + names_[i]);
      }
    }
  }
  columns_.resize(names_.size());
}

void Table::AppendRow(const std::vector<uint64_t>& values) {
  if (values.size() != names_.size()) {
    throw std::invalid_argument("row arity mismatch");
  }
  for (size_t c = 0; c < values.size(); ++c) {
    columns_[c].push_back(values[c]);
  }
  ++num_rows_;
}

void Table::AppendColumns(
    const std::vector<std::vector<uint64_t>>& columns) {
  if (columns.size() != names_.size()) {
    throw std::invalid_argument("column count mismatch");
  }
  const size_t added = columns.empty() ? 0 : columns.front().size();
  for (const auto& column : columns) {
    if (column.size() != added) {
      throw std::invalid_argument("ragged column append");
    }
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    columns_[c].insert(columns_[c].end(), columns[c].begin(),
                       columns[c].end());
  }
  num_rows_ += added;
}

size_t Table::ColumnIndex(const std::string& name) const {
  for (size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return c;
  }
  throw std::out_of_range("unknown column: " + name);
}

}  // namespace sketchsample
