// Online-aggregation queries: progressive answers over random-order scans.
//
// The executable shape of §VI-C: a query owns random-order scans of its
// input tables and a progressive sketch-over-WOR estimator; Step(k)
// advances the scans, Report() returns (estimate, CI, progress), and
// RunToConvergence drives the scan until the interval is tight enough —
// typically well before the scan completes. Alongside the query estimate,
// a per-column statistics collector (KMV distinct counts + F-AGMS F2)
// gathers the numbers a planner needs "with little computational overhead".
#ifndef SKETCHSAMPLE_ENGINE_ONLINE_QUERY_H_
#define SKETCHSAMPLE_ENGINE_ONLINE_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/progressive.h"
#include "src/engine/scan.h"
#include "src/engine/table.h"
#include "src/sketch/kmv.h"
#include "src/sketch/sketch.h"

namespace sketchsample {

/// Tuning knobs shared by the online queries.
struct OnlineQueryOptions {
  SketchParams sketch;        ///< per-block F-AGMS shape
  size_t num_blocks = 8;      ///< batch-means blocks
  double level = 0.95;        ///< confidence level for reports
  uint64_t scan_seed = 1;     ///< randomness of the scan order
};

/// Progressive SELECT |F ⋈_{F.a = G.b} G| (size of join).
class OnlineJoinQuery {
 public:
  OnlineJoinQuery(const Table& f, const std::string& column_f,
                  const Table& g, const std::string& column_g,
                  const OnlineQueryOptions& options);

  /// Advances both scans by up to `rows` rows each (paced proportionally so
  /// both sides finish together). Returns the number of rows consumed.
  size_t Step(size_t rows);

  /// Current snapshot (estimate, CI at options.level, scan progress).
  ProgressiveReport Report() const;

  /// Steps until the CI half-width falls below `relative_halfwidth` ×
  /// |estimate| or the scans finish; returns the final report.
  ProgressiveReport RunToConvergence(double relative_halfwidth,
                                     size_t step_rows = 1024);

  bool Done() const { return scan_f_.Done() && scan_g_.Done(); }
  double Progress() const { return scan_f_.Progress(); }

 private:
  const Table& table_f_;
  const Table& table_g_;
  size_t column_f_;
  size_t column_g_;
  double level_;
  RandomOrderScan scan_f_;
  RandomOrderScan scan_g_;
  ProgressiveJoinEstimator estimator_;
};

/// Progressive SELECT F2(F.a) (self-join size / second frequency moment).
class OnlineSelfJoinQuery {
 public:
  OnlineSelfJoinQuery(const Table& f, const std::string& column,
                      const OnlineQueryOptions& options);

  size_t Step(size_t rows);
  ProgressiveReport Report() const;
  ProgressiveReport RunToConvergence(double relative_halfwidth,
                                     size_t step_rows = 1024);

  bool Done() const { return scan_.Done(); }
  double Progress() const { return scan_.Progress(); }

 private:
  const Table& table_;
  size_t column_;
  double level_;
  RandomOrderScan scan_;
  ProgressiveF2Estimator estimator_;
};

/// Planner statistics gathered during a single scan of a table: per-column
/// distinct-count (KMV) and self-join size (F-AGMS + WOR correction at the
/// current scan position) — the §VI-C "statistics used by an online
/// aggregation engine to take decisions".
class ScanStatisticsCollector {
 public:
  ScanStatisticsCollector(const Table& table, const SketchParams& params,
                          size_t kmv_k = 1024);

  /// Consumes one row (all columns).
  void ConsumeRow(size_t row);

  /// Estimated number of distinct values in a column (over the rows seen).
  double EstimateDistinct(size_t column) const;

  /// Estimated full-table self-join size of a column, corrected for the
  /// fraction scanned so far (needs ≥ 2 rows).
  double EstimateSelfJoin(size_t column) const;

  uint64_t rows_seen() const { return rows_; }

 private:
  const Table& table_;
  uint64_t rows_ = 0;
  std::vector<KmvSketch> distinct_;
  std::vector<FagmsSketch> f2_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_ENGINE_ONLINE_QUERY_H_
