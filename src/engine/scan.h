// Random-order scans: the fundamental requirement of online aggregation.
//
// §VI-C: "the portions of the data the equivalent queries are executed on
// [must] represent random samples without replacement from the entire data
// as long as the order of the tuples is random." RandomOrderScan visits
// every row of a table exactly once in a seeded uniform random permutation
// (lazily generated Fisher-Yates), so the prefix seen at any point is a
// uniform WOR sample of the table.
#ifndef SKETCHSAMPLE_ENGINE_SCAN_H_
#define SKETCHSAMPLE_ENGINE_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/engine/table.h"
#include "src/util/rng.h"

namespace sketchsample {

/// One-pass random-permutation row scan over a table.
class RandomOrderScan {
 public:
  RandomOrderScan(const Table& table, uint64_t seed);

  /// The next row index, or nullopt when the scan is complete. Over the
  /// whole scan, every permutation of row indices is equally likely.
  std::optional<size_t> NextRow();

  /// Rows emitted so far.
  size_t rows_scanned() const { return scanned_; }
  /// Fraction of the table scanned, in [0, 1].
  double Progress() const;
  bool Done() const { return scanned_ == order_.size(); }

 private:
  std::vector<uint32_t> order_;  // lazily shuffled row indices
  size_t scanned_ = 0;
  Xoshiro256 rng_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_ENGINE_SCAN_H_
