#include "src/engine/online_query.h"

#include <algorithm>
#include <stdexcept>

#include "src/core/corrections.h"
#include "src/sampling/coefficients.h"
#include "src/util/rng.h"

namespace sketchsample {

OnlineJoinQuery::OnlineJoinQuery(const Table& f, const std::string& column_f,
                                 const Table& g, const std::string& column_g,
                                 const OnlineQueryOptions& options)
    : table_f_(f),
      table_g_(g),
      column_f_(f.ColumnIndex(column_f)),
      column_g_(g.ColumnIndex(column_g)),
      level_(options.level),
      scan_f_(f, MixSeed(options.scan_seed, 0xf)),
      scan_g_(g, MixSeed(options.scan_seed, 0x9)),
      estimator_(f.num_rows(), g.num_rows(), options.num_blocks,
                 options.sketch) {
  if (f.num_rows() == 0 || g.num_rows() == 0) {
    throw std::invalid_argument("online join needs non-empty tables");
  }
}

size_t OnlineJoinQuery::Step(size_t rows) {
  size_t consumed = 0;
  // Pace G against F so both scans complete at the same progress fraction.
  const double ratio = static_cast<double>(table_g_.num_rows()) /
                       static_cast<double>(table_f_.num_rows());
  for (size_t i = 0; i < rows; ++i) {
    const auto row_f = scan_f_.NextRow();
    if (row_f) {
      estimator_.UpdateF(table_f_.value(*row_f, column_f_));
      ++consumed;
    }
    const size_t target_g = std::min<size_t>(
        table_g_.num_rows(),
        static_cast<size_t>(ratio *
                            static_cast<double>(scan_f_.rows_scanned())));
    while (scan_g_.rows_scanned() < target_g) {
      const auto row_g = scan_g_.NextRow();
      if (!row_g) break;
      estimator_.UpdateG(table_g_.value(*row_g, column_g_));
      ++consumed;
    }
    if (!row_f && scan_g_.Done()) break;
  }
  // Drain G when F finishes first (e.g. |G| > |F| with rounding).
  if (scan_f_.Done()) {
    while (auto row_g = scan_g_.NextRow()) {
      estimator_.UpdateG(table_g_.value(*row_g, column_g_));
      ++consumed;
    }
  }
  return consumed;
}

ProgressiveReport OnlineJoinQuery::Report() const {
  return estimator_.Report(level_);
}

ProgressiveReport OnlineJoinQuery::RunToConvergence(
    double relative_halfwidth, size_t step_rows) {
  while (!Done()) {
    Step(step_rows);
    if (estimator_.HasConverged(relative_halfwidth, level_)) break;
  }
  return Report();
}

OnlineSelfJoinQuery::OnlineSelfJoinQuery(const Table& f,
                                         const std::string& column,
                                         const OnlineQueryOptions& options)
    : table_(f),
      column_(f.ColumnIndex(column)),
      level_(options.level),
      scan_(f, MixSeed(options.scan_seed, 0x2)),
      estimator_(f.num_rows(), options.num_blocks, options.sketch) {
  if (f.num_rows() == 0) {
    throw std::invalid_argument("online self-join needs a non-empty table");
  }
}

size_t OnlineSelfJoinQuery::Step(size_t rows) {
  size_t consumed = 0;
  for (size_t i = 0; i < rows; ++i) {
    const auto row = scan_.NextRow();
    if (!row) break;
    estimator_.Update(table_.value(*row, column_));
    ++consumed;
  }
  return consumed;
}

ProgressiveReport OnlineSelfJoinQuery::Report() const {
  return estimator_.Report(level_);
}

ProgressiveReport OnlineSelfJoinQuery::RunToConvergence(
    double relative_halfwidth, size_t step_rows) {
  while (!Done()) {
    Step(step_rows);
    if (estimator_.HasConverged(relative_halfwidth, level_)) break;
  }
  return Report();
}

ScanStatisticsCollector::ScanStatisticsCollector(const Table& table,
                                                 const SketchParams& params,
                                                 size_t kmv_k)
    : table_(table) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    distinct_.emplace_back(kmv_k, MixSeed(params.seed, 0xd15 + c));
    SketchParams column_params = params;
    column_params.seed = MixSeed(params.seed, 0xf2c + c);
    f2_.emplace_back(column_params);
  }
}

void ScanStatisticsCollector::ConsumeRow(size_t row) {
  for (size_t c = 0; c < table_.num_columns(); ++c) {
    const uint64_t value = table_.value(row, c);
    distinct_[c].Update(value);
    f2_[c].Update(value);
  }
  ++rows_;
}

double ScanStatisticsCollector::EstimateDistinct(size_t column) const {
  return distinct_.at(column).EstimateDistinct();
}

double ScanStatisticsCollector::EstimateSelfJoin(size_t column) const {
  const auto coef = ComputeCoefficients(table_.num_rows(), rows_);
  return WorSelfJoinCorrection(coef).Apply(
      f2_.at(column).EstimateSelfJoin());
}

}  // namespace sketchsample
