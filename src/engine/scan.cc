#include "src/engine/scan.h"

#include <numeric>
#include <stdexcept>
#include <utility>

namespace sketchsample {

RandomOrderScan::RandomOrderScan(const Table& table, uint64_t seed)
    : rng_(seed) {
  if (table.num_rows() > 0xffffffffull) {
    throw std::invalid_argument("scan supports up to 2^32 rows");
  }
  order_.resize(table.num_rows());
  std::iota(order_.begin(), order_.end(), 0);
}

std::optional<size_t> RandomOrderScan::NextRow() {
  if (scanned_ == order_.size()) return std::nullopt;
  // Incremental Fisher-Yates: pick a uniform element of the unscanned
  // suffix and swap it into position. The emitted prefix is a uniform WOR
  // sample at every step, without shuffling the whole table up front.
  const size_t remaining = order_.size() - scanned_;
  const size_t pick = scanned_ + rng_.NextBounded(remaining);
  std::swap(order_[scanned_], order_[pick]);
  return order_[scanned_++];
}

double RandomOrderScan::Progress() const {
  if (order_.empty()) return 1.0;
  return static_cast<double>(scanned_) / static_cast<double>(order_.size());
}

}  // namespace sketchsample
