// Sampling-fraction coefficients (Eq 8 of the paper).
#ifndef SKETCHSAMPLE_SAMPLING_COEFFICIENTS_H_
#define SKETCHSAMPLE_SAMPLING_COEFFICIENTS_H_

#include <cstdint>

namespace sketchsample {

/// The α coefficients of Eq 8 for one relation:
///   α  = |F'| / |F|          (the sampling fraction)
///   α₁ = (|F'| − 1)/(|F| − 1)
///   α₂ = (|F'| − 1)/|F|
/// These appear throughout the with/without-replacement estimator scalings
/// and variance formulas. β, β₁, β₂ are the same object for the second
/// relation.
struct SamplingCoefficients {
  double alpha = 1.0;
  double alpha1 = 1.0;
  double alpha2 = 1.0;
  uint64_t population = 0;  ///< |F|
  uint64_t sample = 0;      ///< |F'|
};

/// Computes the coefficients. Requires population >= 1 and sample >= 1
/// (the estimators divide by α and α₁/α₂; a 0- or 1-element edge is handled
/// by the callers). population == 1 sets α₁ = 1 by convention.
SamplingCoefficients ComputeCoefficients(uint64_t population, uint64_t sample);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SAMPLING_COEFFICIENTS_H_
