#include "src/sampling/with_replacement.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/metrics.h"

namespace sketchsample {

std::vector<uint64_t> SampleWithReplacement(
    const std::vector<uint64_t>& relation, uint64_t sample_size,
    Xoshiro256& rng) {
  if (relation.empty()) {
    throw std::invalid_argument("cannot sample from an empty relation");
  }
  std::vector<uint64_t> out;
  out.reserve(sample_size);
  for (uint64_t k = 0; k < sample_size; ++k) {
    out.push_back(relation[rng.NextBounded(relation.size())]);
  }
  SKETCHSAMPLE_METRIC_ADD("sampling.wr.sampled", out.size());
  return out;
}

std::vector<uint64_t> SampleWithReplacementFromFrequencies(
    const FrequencyVector& freq, uint64_t sample_size, Xoshiro256& rng) {
  std::vector<uint64_t> cumulative;
  cumulative.reserve(freq.domain_size());
  uint64_t total = 0;
  for (size_t i = 0; i < freq.domain_size(); ++i) {
    total += freq.count(i);
    cumulative.push_back(total);
  }
  if (total == 0) {
    throw std::invalid_argument("cannot sample from an empty relation");
  }
  std::vector<uint64_t> out;
  out.reserve(sample_size);
  for (uint64_t k = 0; k < sample_size; ++k) {
    const uint64_t r = rng.NextBounded(total);  // picks tuple index r
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), r);
    out.push_back(static_cast<uint64_t>(it - cumulative.begin()));
  }
  SKETCHSAMPLE_METRIC_ADD("sampling.wr.sampled", out.size());
  return out;
}

}  // namespace sketchsample
