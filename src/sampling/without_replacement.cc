#include "src/sampling/without_replacement.h"

#include <algorithm>

#include "src/util/metrics.h"

namespace sketchsample {

std::vector<uint64_t> SampleWithoutReplacement(
    const std::vector<uint64_t>& relation, uint64_t sample_size,
    Xoshiro256& rng) {
  const uint64_t n = relation.size();
  uint64_t m = std::min(sample_size, n);
  std::vector<uint64_t> out;
  out.reserve(m);
  // Selection sampling: position t is chosen with probability
  // (remaining needed) / (remaining scanned), which yields a uniform subset.
  uint64_t needed = m;
  for (uint64_t t = 0; t < n && needed > 0; ++t) {
    if (rng.NextBounded(n - t) < needed) {
      out.push_back(relation[t]);
      --needed;
    }
  }
  SKETCHSAMPLE_METRIC_ADD("sampling.wor.sampled", out.size());
  return out;
}

ReservoirSampler::ReservoirSampler(uint64_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  reservoir_.reserve(capacity);
}

void ReservoirSampler::Offer(uint64_t value) {
  SKETCHSAMPLE_METRIC_INC("sampling.reservoir.offered");
  ++seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(value);
    return;
  }
  const uint64_t j = rng_.NextBounded(seen_);
  if (j < capacity_) reservoir_[j] = value;
}

}  // namespace sketchsample
