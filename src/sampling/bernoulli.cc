#include "src/sampling/bernoulli.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/util/metrics.h"

namespace sketchsample {

BernoulliSampler::BernoulliSampler(double p, uint64_t seed)
    : p_(p), rng_(seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Bernoulli p must be in [0, 1]");
  }
}

void BernoulliSampler::SetP(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Bernoulli p must be in [0, 1]");
  }
  p_ = p;
}

std::vector<uint64_t> BernoulliSampler::Sample(
    const std::vector<uint64_t>& stream) {
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(p_ * static_cast<double>(stream.size())));
  for (uint64_t v : stream) {
    if (Keep()) out.push_back(v);
  }
  SKETCHSAMPLE_METRIC_ADD("sampling.bernoulli.seen", stream.size());
  SKETCHSAMPLE_METRIC_ADD("sampling.bernoulli.kept", out.size());
  return out;
}

GeometricSkipSampler::GeometricSkipSampler(double p, uint64_t seed)
    : p_(p), rng_(seed) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("skip sampler needs p in (0, 1]");
  }
  log1mp_ = p == 1.0 ? -std::numeric_limits<double>::infinity()
                     : std::log1p(-p);
}

void GeometricSkipSampler::SetP(double p) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("skip sampler needs p in (0, 1]");
  }
  p_ = p;
  log1mp_ = p == 1.0 ? -std::numeric_limits<double>::infinity()
                     : std::log1p(-p);
}

uint64_t GeometricSkipSampler::NextSkip() {
  if (p_ == 1.0) return 0;
  // Inverse-transform sample of Geometric(p) on {0, 1, 2, ...}: the count of
  // failures before the first success is floor(log(U)/log(1-p)).
  double u = rng_.NextDouble();
  while (u <= 0.0) u = rng_.NextDouble();  // guard log(0)
  return static_cast<uint64_t>(std::log(u) / log1mp_);
}

std::vector<uint64_t> GeometricSkipSampler::Sample(
    const std::vector<uint64_t>& stream) {
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(p_ * static_cast<double>(stream.size())));
  size_t pos = NextSkip();
  while (pos < stream.size()) {
    out.push_back(stream[pos]);
    pos += 1 + NextSkip();
  }
  SKETCHSAMPLE_METRIC_ADD("sampling.skip.seen", stream.size());
  SKETCHSAMPLE_METRIC_ADD("sampling.skip.kept", out.size());
  return out;
}

}  // namespace sketchsample
