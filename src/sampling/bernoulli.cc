#include "src/sampling/bernoulli.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/util/metrics.h"

namespace sketchsample {

BernoulliSampler::BernoulliSampler(double p, uint64_t seed)
    : p_(p), rng_(seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Bernoulli p must be in [0, 1]");
  }
}

void BernoulliSampler::SetP(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Bernoulli p must be in [0, 1]");
  }
  p_ = p;
}

std::vector<uint64_t> BernoulliSampler::Sample(
    const std::vector<uint64_t>& stream) {
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(p_ * static_cast<double>(stream.size())));
  for (uint64_t v : stream) {
    if (Keep()) out.push_back(v);
  }
  SKETCHSAMPLE_METRIC_ADD("sampling.bernoulli.seen", stream.size());
  SKETCHSAMPLE_METRIC_ADD("sampling.bernoulli.kept", out.size());
  return out;
}

GeometricSkipSampler::GeometricSkipSampler(double p, uint64_t seed)
    : p_(p), rng_(seed) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("skip sampler needs p in (0, 1]");
  }
  log1mp_ = p == 1.0 ? -std::numeric_limits<double>::infinity()
                     : std::log1p(-p);
}

void GeometricSkipSampler::SetP(double p) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("skip sampler needs p in (0, 1]");
  }
  p_ = p;
  log1mp_ = p == 1.0 ? -std::numeric_limits<double>::infinity()
                     : std::log1p(-p);
}

uint64_t GeometricSkipSampler::NextSkip() {
  if (p_ == 1.0) return 0;
  // Inverse-transform sample of Geometric(p) on {0, 1, 2, ...}: the count of
  // failures before the first success is floor(log(U)/log(1-p)).
  double u = rng_.NextDouble();
  while (u <= 0.0) u = rng_.NextDouble();  // guard log(0)
  return static_cast<uint64_t>(std::log(u) / log1mp_);
}

std::vector<uint64_t> GeometricSkipSampler::Sample(
    const std::vector<uint64_t>& stream) {
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(p_ * static_cast<double>(stream.size())));
  size_t pos = NextSkip();
  while (pos < stream.size()) {
    out.push_back(stream[pos]);
    pos += 1 + NextSkip();
  }
  SKETCHSAMPLE_METRIC_ADD("sampling.skip.seen", stream.size());
  SKETCHSAMPLE_METRIC_ADD("sampling.skip.kept", out.size());
  return out;
}

PositionalBernoulliSampler::PositionalBernoulliSampler(double p, uint64_t seed)
    : p_(p), seed_(seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Bernoulli p must be in [0, 1]");
  }
}

void PositionalBernoulliSampler::SetP(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Bernoulli p must be in [0, 1]");
  }
  p_ = p;
}

size_t PositionalBernoulliSampler::KeepBatch(uint64_t base,
                                             const uint64_t* values, size_t n,
                                             uint64_t* out) const {
  size_t kept = 0;
  if (p_ >= 1.0) {
    // Every position's coin is < 1, so keep the whole chunk. Copy only when
    // the caller gave a distinct destination.
    if (out != values) {
      for (size_t i = 0; i < n; ++i) out[i] = values[i];
    }
    kept = n;
  } else if (p_ > 0.0) {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t value = values[i];  // read before any aliasing write
      out[kept] = value;
      kept += static_cast<size_t>(Uniform(base + i) < p_);
    }
  }
  SKETCHSAMPLE_METRIC_ADD("sampling.positional.seen", n);
  SKETCHSAMPLE_METRIC_ADD("sampling.positional.kept", kept);
  return kept;
}

}  // namespace sketchsample
