// Sampling without replacement (§III-E): random subsets.
//
// The paper's third application (§VI-C) is online aggregation: the prefix of
// a random-order scan is a WOR sample of the whole relation. Three
// realizations are provided:
//
//   * SampleWithoutReplacement — selection sampling (Fan et al. / Knuth's
//     Algorithm S): one sequential pass, exact sample size, no copy;
//   * ReservoirSampler — Waterman/Vitter Algorithm R for streams of unknown
//     length;
//   * random-order prefixes — callers Shuffle() the relation once and take
//     prefixes, which is exactly what an online-aggregation scan sees.
#ifndef SKETCHSAMPLE_SAMPLING_WITHOUT_REPLACEMENT_H_
#define SKETCHSAMPLE_SAMPLING_WITHOUT_REPLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace sketchsample {

/// Draws a uniform random subset of `sample_size` tuples (by position) from
/// the relation in one sequential pass. sample_size is clamped to the
/// relation size. Every size-m subset of positions is equally likely.
std::vector<uint64_t> SampleWithoutReplacement(
    const std::vector<uint64_t>& relation, uint64_t sample_size,
    Xoshiro256& rng);

/// Reservoir sampling (Algorithm R): maintains a uniform WOR sample of a
/// stream whose length is not known in advance.
class ReservoirSampler {
 public:
  ReservoirSampler(uint64_t capacity, uint64_t seed);

  /// Offers the next stream element.
  void Offer(uint64_t value);

  /// The current reservoir (a uniform WOR sample of everything offered).
  const std::vector<uint64_t>& sample() const { return reservoir_; }

  /// Total number of elements offered so far (the population size |F|).
  uint64_t seen() const { return seen_; }

 private:
  uint64_t capacity_;
  uint64_t seen_ = 0;
  std::vector<uint64_t> reservoir_;
  Xoshiro256 rng_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SAMPLING_WITHOUT_REPLACEMENT_H_
