// Bernoulli sampling — the load-shedding sampler (§III-B, §VI-A).
//
// Each tuple is kept independently with probability p. Two implementations:
//
//   * BernoulliSampler: one uniform draw per tuple (the textbook algorithm);
//   * GeometricSkipSampler: draws the *gap* to the next kept tuple from a
//     geometric distribution (Olken's skip technique, the paper's ref [18]),
//     so work is done only for tuples that are actually kept. This is what
//     makes the sketch-update speed-up proportional to 1/p (§VI-A).
#ifndef SKETCHSAMPLE_SAMPLING_BERNOULLI_H_
#define SKETCHSAMPLE_SAMPLING_BERNOULLI_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace sketchsample {

/// Per-tuple coin-flip Bernoulli sampler.
class BernoulliSampler {
 public:
  /// p must lie in [0, 1].
  BernoulliSampler(double p, uint64_t seed);

  /// Returns true when the current tuple should be kept.
  bool Keep() { return rng_.NextDouble() < p_; }

  double p() const { return p_; }

  /// Retargets the keep-probability mid-stream (adaptive load shedding).
  /// Tuples arriving after the call are kept with the new p; the coin
  /// sequence continues from the same RNG state. p must lie in [0, 1].
  void SetP(double p);

  /// RNG state accessors for checkpoint/resume (bit-exact continuation).
  Xoshiro256::State SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const Xoshiro256::State& state) {
    rng_.RestoreState(state);
  }

  /// Filters a materialized stream; keeps order.
  std::vector<uint64_t> Sample(const std::vector<uint64_t>& stream);

 private:
  double p_;
  Xoshiro256 rng_;
};

/// Skip-based Bernoulli sampler: identical sampling law, O(1) work per
/// *kept* tuple. NextSkip() returns how many tuples to discard before the
/// next kept one (possibly 0).
class GeometricSkipSampler {
 public:
  /// p must lie in (0, 1]. (p == 0 would skip forever; callers handle it.)
  GeometricSkipSampler(double p, uint64_t seed);

  /// Number of tuples to skip before the next accepted tuple.
  uint64_t NextSkip();

  double p() const { return p_; }

  /// Retargets the keep-probability mid-stream. Gaps drawn after the call
  /// follow Geometric(new p); a pending gap drawn under the old rate should
  /// be re-drawn by the caller (ShedOperator does). p must lie in (0, 1].
  void SetP(double p);

  /// RNG state accessors for checkpoint/resume (bit-exact continuation).
  Xoshiro256::State SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const Xoshiro256::State& state) {
    rng_.RestoreState(state);
  }

  /// Filters a materialized stream using skips; keeps order. Produces a
  /// sample with exactly the Bernoulli(p) law of BernoulliSampler.
  std::vector<uint64_t> Sample(const std::vector<uint64_t>& stream);

 private:
  double p_;
  double log1mp_;  // log(1 - p); -inf for p == 1
  Xoshiro256 rng_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SAMPLING_BERNOULLI_H_
