// Bernoulli sampling — the load-shedding sampler (§III-B, §VI-A).
//
// Each tuple is kept independently with probability p. Two implementations:
//
//   * BernoulliSampler: one uniform draw per tuple (the textbook algorithm);
//   * GeometricSkipSampler: draws the *gap* to the next kept tuple from a
//     geometric distribution (Olken's skip technique, the paper's ref [18]),
//     so work is done only for tuples that are actually kept. This is what
//     makes the sketch-update speed-up proportional to 1/p (§VI-A).
#ifndef SKETCHSAMPLE_SAMPLING_BERNOULLI_H_
#define SKETCHSAMPLE_SAMPLING_BERNOULLI_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace sketchsample {

/// Per-tuple coin-flip Bernoulli sampler.
class BernoulliSampler {
 public:
  /// p must lie in [0, 1].
  BernoulliSampler(double p, uint64_t seed);

  /// Returns true when the current tuple should be kept.
  bool Keep() { return rng_.NextDouble() < p_; }

  double p() const { return p_; }

  /// Retargets the keep-probability mid-stream (adaptive load shedding).
  /// Tuples arriving after the call are kept with the new p; the coin
  /// sequence continues from the same RNG state. p must lie in [0, 1].
  void SetP(double p);

  /// RNG state accessors for checkpoint/resume (bit-exact continuation).
  Xoshiro256::State SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const Xoshiro256::State& state) {
    rng_.RestoreState(state);
  }

  /// Filters a materialized stream; keeps order.
  std::vector<uint64_t> Sample(const std::vector<uint64_t>& stream);

 private:
  double p_;
  Xoshiro256 rng_;
};

/// Skip-based Bernoulli sampler: identical sampling law, O(1) work per
/// *kept* tuple. NextSkip() returns how many tuples to discard before the
/// next kept one (possibly 0).
class GeometricSkipSampler {
 public:
  /// p must lie in (0, 1]. (p == 0 would skip forever; callers handle it.)
  GeometricSkipSampler(double p, uint64_t seed);

  /// Number of tuples to skip before the next accepted tuple.
  uint64_t NextSkip();

  double p() const { return p_; }

  /// Retargets the keep-probability mid-stream. Gaps drawn after the call
  /// follow Geometric(new p); a pending gap drawn under the old rate should
  /// be re-drawn by the caller (ShedOperator does). p must lie in (0, 1].
  void SetP(double p);

  /// RNG state accessors for checkpoint/resume (bit-exact continuation).
  Xoshiro256::State SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const Xoshiro256::State& state) {
    rng_.RestoreState(state);
  }

  /// Filters a materialized stream using skips; keeps order. Produces a
  /// sample with exactly the Bernoulli(p) law of BernoulliSampler.
  std::vector<uint64_t> Sample(const std::vector<uint64_t>& stream);

 private:
  double p_;
  double log1mp_;  // log(1 - p); -inf for p == 1
  Xoshiro256 rng_;
};

/// Stateless positional Bernoulli sampler: the keep/shed decision for the
/// tuple at absolute stream position i is a pure function of (seed, i, p) —
/// U(i) = MixSeed(seed, i) mapped to [0,1) with 53-bit precision, keep iff
/// U(i) < p.
///
/// Two properties the stateful samplers above cannot offer:
///   * partition independence: any routing of the stream across shards
///     (src/stream/shard_engine.h) sees the same per-position coins, so the
///     merged sample — and hence the merged sketch — is bit-identical at
///     every shard count;
///   * monotone retargeting: lowering p mid-stream can only flip kept
///     positions to shed (U(i) is fixed), so adaptive shedding composes
///     cleanly with resume — no RNG state needs checkpointing at all.
/// The per-position coins are i.i.d. uniform across positions (SplitMix64's
/// output quality), so the sample follows the exact Bernoulli(p) law of
/// BernoulliSampler, just indexed by position instead of arrival order.
class PositionalBernoulliSampler {
 public:
  /// p must lie in [0, 1].
  PositionalBernoulliSampler(double p, uint64_t seed);

  /// The uniform coin for absolute position `i` (same value every call).
  /// 53-bit mantissa of the MixSeed output, matching Xoshiro256::NextDouble's
  /// bit budget.
  double Uniform(uint64_t position) const {
    return static_cast<double>(MixSeed(seed_, position) >> 11) * 0x1.0p-53;
  }

  /// True when the tuple at absolute position `i` is kept.
  bool Keep(uint64_t position) const { return Uniform(position) < p_; }

  /// Compacts the kept values of a chunk whose first tuple sits at absolute
  /// position `base` into out[0..k); returns k. `out` may alias `values`.
  size_t KeepBatch(uint64_t base, const uint64_t* values, size_t n,
                   uint64_t* out) const;

  double p() const { return p_; }
  /// Retargets the keep-probability; affects all positions judged after the
  /// call (the coins themselves never change). p must lie in [0, 1].
  void SetP(double p);

 private:
  double p_;
  uint64_t seed_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SAMPLING_BERNOULLI_H_
