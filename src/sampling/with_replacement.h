// Sampling with replacement (§III-D): fixed-size i.i.d. draws.
//
// In the paper's second application (§VI-B) the *stream itself* is a
// with-replacement sample from a finite population or an i.i.d. sample from
// an unknown distribution; the utilities here both realize that generative
// model (for experiments) and draw WR samples from materialized relations.
#ifndef SKETCHSAMPLE_SAMPLING_WITH_REPLACEMENT_H_
#define SKETCHSAMPLE_SAMPLING_WITH_REPLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/data/frequency_vector.h"
#include "src/util/rng.h"

namespace sketchsample {

/// Draws `sample_size` tuples uniformly with replacement from a materialized
/// relation. The resulting per-value frequencies are the components of a
/// Multinomial(sample_size, f_i/|F|) vector, as the analysis assumes.
std::vector<uint64_t> SampleWithReplacement(
    const std::vector<uint64_t>& relation, uint64_t sample_size,
    Xoshiro256& rng);

/// Same, but draws directly from a frequency vector without materializing
/// the relation (inverse-CDF over the cumulative counts; O(log |I|)/draw).
std::vector<uint64_t> SampleWithReplacementFromFrequencies(
    const FrequencyVector& freq, uint64_t sample_size, Xoshiro256& rng);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SAMPLING_WITH_REPLACEMENT_H_
