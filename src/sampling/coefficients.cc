#include "src/sampling/coefficients.h"

#include <stdexcept>

namespace sketchsample {

SamplingCoefficients ComputeCoefficients(uint64_t population,
                                         uint64_t sample) {
  if (population == 0) {
    throw std::invalid_argument("population must be non-empty");
  }
  SamplingCoefficients c;
  c.population = population;
  c.sample = sample;
  const double n = static_cast<double>(population);
  const double m = static_cast<double>(sample);
  c.alpha = m / n;
  c.alpha1 = population > 1 ? (m - 1.0) / (n - 1.0) : 1.0;
  c.alpha2 = (m - 1.0) / n;
  return c;
}

}  // namespace sketchsample
