#include "src/service/router.h"

#include <exception>

#include "src/util/metrics.h"

namespace sketchsample {

void Router::Add(const std::string& method, const std::string& path,
                 HttpHandler* handler) {
  routes_.push_back(Route{method, path, handler});
}

HttpResponse Router::Dispatch(const HttpRequest& request,
                              const RequestContext& context) const {
  bool path_known = false;
  for (const Route& route : routes_) {
    if (route.path != request.path) continue;
    path_known = true;
    if (route.method != request.method) continue;
    try {
      return route.handler->Handle(request, context);
    } catch (const std::exception& error) {
      SKETCHSAMPLE_METRIC_INC("service.router.handler_errors");
      return ErrorResponse(500, error.what());
    }
  }
  if (path_known) {
    return ErrorResponse(405, "method not allowed for " + request.path);
  }
  return ErrorResponse(404, "no such endpoint: " + request.path);
}

}  // namespace sketchsample
