// Minimal blocking HTTP/1.1 client for driving the sketch service:
// tools/loadgen, the CI smoke script, and the integration tests all speak
// through this. Keep-alive by default (one TCP connection per client,
// reconnect on failure), Content-Length framing only — the exact subset the
// service emits.
//
// Resilience: transport failures retry under a deterministic capped
// exponential backoff with jitter (ClientRetryPolicy; the jitter stream is
// seeded, so a test replays the exact delay sequence). Plain retries are
// safe for the service's idempotent GETs; for POST /ingest use IngestClient,
// which numbers chunks with X-Ingest-Session / X-Ingest-Seq so the server
// deduplicates replays and retried ingest is exactly-once.
#ifndef SKETCHSAMPLE_SERVICE_CLIENT_H_
#define SKETCHSAMPLE_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sketchsample {

/// Deterministic retry schedule: attempt k (1-based failure count) sleeps
/// `base_backoff_ms << (k-1)` capped at `max_backoff_ms`, scaled by a
/// jitter factor in [0.5, 1.0] drawn positionally from `jitter_seed` — same
/// seed, same delays, no cross-client synchronization in the fleet.
struct ClientRetryPolicy {
  int max_attempts = 2;     ///< total tries (first + retries); >= 1
  int base_backoff_ms = 10;
  int max_backoff_ms = 2000;
  uint64_t jitter_seed = 1;
};

/// Delay before retry number `failures` (1-based); `salt` positions the
/// jitter draw (e.g. a per-client running retry counter). 0 when the policy
/// disables backoff (base_backoff_ms <= 0).
int BackoffDelayMs(const ClientRetryPolicy& policy, int failures,
                   uint64_t salt);

class HttpClient {
 public:
  struct Response {
    bool ok = false;       ///< transport-level success (any HTTP status)
    int status = 0;
    std::string body;
    std::string error;     ///< transport error description when !ok
  };

  using Headers = std::vector<std::pair<std::string, std::string>>;

  /// Connects lazily on the first request.
  HttpClient(std::string host, int port, int timeout_ms = 10000);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  void set_retry_policy(const ClientRetryPolicy& policy) { policy_ = policy; }
  const ClientRetryPolicy& retry_policy() const { return policy_; }
  /// Transport retries performed so far (also the jitter-draw position).
  uint64_t retries() const { return retries_; }

  /// One round-trip; `target` is the origin-form path (may carry a query
  /// string, already encoded). Reuses the connection; transport failures
  /// (dead keep-alive, reset, refused connect) retry per the policy with
  /// deterministic backoff. NOTE: a retried request may execute twice on
  /// the server — fine for the service's GETs, use IngestClient for ingest.
  Response Request(const std::string& method, const std::string& target,
                   const std::string& body = std::string(),
                   const Headers& headers = Headers());

  Response Get(const std::string& target) { return Request("GET", target); }
  Response Post(const std::string& target, const std::string& body) {
    return Request("POST", target, body);
  }

 private:
  bool Connect(std::string* error);
  void Disconnect();
  bool RoundTrip(const std::string& request, Response* out);

  std::string host_;
  int port_;
  int timeout_ms_;
  ClientRetryPolicy policy_;
  uint64_t retries_ = 0;
  int fd_ = -1;
  std::string leftover_;  // pipelined bytes past the last parsed response
};

/// Exactly-once ingest over a retrying HttpClient: stamps every chunk with
/// X-Ingest-Session / X-Ingest-Seq and advances the sequence only on a 2xx
/// ack, so a replay of an already-applied chunk is acknowledged as a
/// duplicate by the server instead of double-ingesting.
class IngestClient {
 public:
  /// `client` is borrowed (not owned). `session` must be unique among
  /// concurrent producers feeding one server.
  IngestClient(HttpClient* client, uint64_t session)
      : client_(client), session_(session) {}

  /// Posts one whitespace-separated tuple chunk to /ingest.
  HttpClient::Response Post(const std::string& body);

  uint64_t session() const { return session_; }
  uint64_t next_seq() const { return next_seq_; }

 private:
  HttpClient* client_;
  uint64_t session_;
  uint64_t next_seq_ = 0;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_CLIENT_H_
