// Minimal blocking HTTP/1.1 client for driving the sketch service:
// tools/loadgen, the CI smoke script, and the integration tests all speak
// through this. Keep-alive by default (one TCP connection per client,
// reconnect on failure), Content-Length framing only — the exact subset the
// service emits.
#ifndef SKETCHSAMPLE_SERVICE_CLIENT_H_
#define SKETCHSAMPLE_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

namespace sketchsample {

class HttpClient {
 public:
  struct Response {
    bool ok = false;       ///< transport-level success (any HTTP status)
    int status = 0;
    std::string body;
    std::string error;     ///< transport error description when !ok
  };

  /// Connects lazily on the first request.
  HttpClient(std::string host, int port, int timeout_ms = 10000);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One round-trip; `target` is the origin-form path (may carry a query
  /// string, already encoded). Reuses the connection; one reconnect-and-
  /// retry when a kept-alive connection turns out dead.
  Response Request(const std::string& method, const std::string& target,
                   const std::string& body = std::string());

  Response Get(const std::string& target) { return Request("GET", target); }
  Response Post(const std::string& target, const std::string& body) {
    return Request("POST", target, body);
  }

 private:
  bool Connect(std::string* error);
  void Disconnect();
  bool RoundTrip(const std::string& request, Response* out);

  std::string host_;
  int port_;
  int timeout_ms_;
  int fd_ = -1;
  std::string leftover_;  // pipelined bytes past the last parsed response
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_CLIENT_H_
