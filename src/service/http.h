// Minimal, hardened HTTP/1.1 message layer for the sketch service.
//
// Hand-rolled in the spirit of src/util/json.h: no external dependency, a
// small surface that does exactly what the service needs — parse requests
// off a socket byte stream (keep-alive and pipelining included) and
// serialize responses. The parser is held to the same standard as the
// checkpoint deserializer (src/stream/checkpoint.cc): every length is
// bounded before it drives an allocation, every character class is
// validated, and hostile input (truncated headers, oversized bodies,
// pipelined garbage) must produce a typed parse error — never a crash, an
// over-read, or an unbounded buffer.
//
// Scope (documented, enforced): methods are ASCII tokens; the only body
// framing understood is Content-Length (Transfer-Encoding is rejected with
// 501); request targets are origin-form `/path?query` with percent-encoding
// decoded and `+` left literal; header values are latin-1-free visible
// ASCII plus space/tab. That is every request tools/loadgen or a curl
// invocation produces, and everything else is an error response, not
// undefined behavior.
#ifndef SKETCHSAMPLE_SERVICE_HTTP_H_
#define SKETCHSAMPLE_SERVICE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/util/json.h"

namespace sketchsample {

/// Bounds enforced while parsing; exceeding any of them fails the request
/// with the given HTTP status instead of growing a buffer.
struct HttpLimits {
  size_t max_request_line = 4096;    ///< method + target + version
  size_t max_header_bytes = 16384;   ///< request line + all header lines
  size_t max_headers = 64;           ///< header count
  size_t max_body_bytes = 4u << 20;  ///< Content-Length cap (ingest posts)
};

/// One parsed request. Header names are lower-cased; values are trimmed of
/// optional whitespace. `path` is percent-decoded; `query` holds decoded
/// key=value pairs in arrival order.
struct HttpRequest {
  std::string method;
  std::string path;
  std::vector<std::pair<std::string, std::string>> query;
  std::map<std::string, std::string> headers;
  std::string body;
  int version_minor = 1;  ///< HTTP/1.<minor>; only 0 and 1 are accepted
  bool keep_alive = true;

  /// First query value for `key`, or nullptr.
  const std::string* QueryParam(const std::string& key) const;
};

/// Incremental request parser over a connection's byte stream. Feed bytes
/// as they arrive; Next() extracts complete requests in order (pipelining
/// falls out naturally: leftover bytes stay buffered for the next call).
///
/// After an error the parser is poisoned: the connection cannot be re-synced
/// to a message boundary, so the server sends `error_status` and closes.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(const HttpLimits& limits) : limits_(limits) {}

  /// Appends connection bytes. Returns false when the stream is already in
  /// the error state (bytes are discarded).
  bool Feed(const char* data, size_t n);

  /// True when a full request is buffered; fills `*out` and consumes it.
  bool Next(HttpRequest* out);

  bool error() const { return error_status_ != 0; }
  /// HTTP status to answer with when error() (400/413/431/501/505).
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size(); }

 private:
  bool Fail(int status, const std::string& message);
  bool ParseRequestLine(const std::string& line, HttpRequest* out);
  bool ParseHeaderLine(const std::string& line, HttpRequest* out);

  HttpLimits limits_;
  std::string buffer_;
  int error_status_ = 0;
  std::string error_message_;
};

/// One response; Serialize emits the status line, Content-Length, Content-
/// Type and Connection headers (plus Retry-After when set), and the body.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool keep_alive = true;
  /// Retry-After header in seconds for 429/503 rejections (0 = omitted).
  int retry_after_s = 0;

  std::string Serialize() const;
};

/// Reason phrase for the statuses the service emits ("Unknown" otherwise).
const char* HttpStatusText(int status);

/// JSON body response helper.
HttpResponse JsonResponse(int status, const JsonValue& body);

/// `{"error": message}` with the given status.
HttpResponse ErrorResponse(int status, const std::string& message);

/// Percent-decodes `text` into `*out`; false on malformed escapes or
/// embedded NUL/control bytes.
bool PercentDecode(const std::string& text, std::string* out);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_HTTP_H_
