#include "src/service/push_source.h"

#include <algorithm>
#include <optional>

#include "src/util/metrics.h"

namespace sketchsample {

PushSource::PushSource(size_t max_buffered)
    : max_buffered_(max_buffered == 0 ? 1 : max_buffered) {}

size_t PushSource::Push(const uint64_t* values, size_t n) {
  size_t accepted = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (accepted < n) {
    not_full_.wait(lock, [this] {
      return closed_ || queue_.size() < max_buffered_;
    });
    if (closed_) break;
    const size_t room = max_buffered_ - queue_.size();
    const size_t take = std::min(room, n - accepted);
    queue_.insert(queue_.end(), values + accepted, values + accepted + take);
    accepted += take;
    not_empty_.notify_all();
  }
  pushed_ += accepted;
  SKETCHSAMPLE_METRIC_ADD("service.ingest.pushed", accepted);
  return accepted;
}

void PushSource::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool PushSource::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

uint64_t PushSource::pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

std::optional<uint64_t> PushSource::Next() {
  uint64_t value = 0;
  return NextChunk(&value, 1) == 1 ? std::optional<uint64_t>(value)
                                   : std::nullopt;
}

size_t PushSource::NextChunk(uint64_t* out, size_t max_n) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  const size_t n = std::min(max_n, queue_.size());
  std::copy(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(n), out);
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(n));
  if (n > 0) not_full_.notify_all();
  return n;
}

}  // namespace sketchsample
