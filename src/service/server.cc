#include "src/service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/service/chaos.h"
#include "src/util/metrics.h"

namespace sketchsample {

namespace {

// Writes the whole buffer, riding out EINTR and partial writes. False when
// the peer is gone or SO_SNDTIMEO expires mid-write (EAGAIN) — a stalled
// reader must not hold the slot.
bool WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ChaosSend(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

void CloseFd(int fd) {
  if (fd >= 0) {
    ChaosOnClose(fd);
    ::close(fd);
  }
}

// Sets SO_RCVTIMEO / SO_SNDTIMEO; timeout_ms <= 0 means "no timeout".
void SetSocketTimeout(int fd, int which, int timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
  }
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

// Strict decimal uint64 for the X-Deadline-Ms header value.
bool ParseHeaderU64(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 19) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

using SteadyClock = std::chrono::steady_clock;

// Milliseconds until `deadline` (rounded up), clamped to >= 0.
int MsUntil(SteadyClock::time_point deadline, SteadyClock::time_point now) {
  if (now >= deadline) return 0;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - now)
                        .count() +
                    1;
  return left > INT_MAX ? INT_MAX : static_cast<int>(left);
}

}  // namespace

struct HttpServer::Connection {
  size_t slot = 0;
  StdAtomics::Atomic<int> fd{-1};
  bool busy = false;  // guarded by slots_mutex_
  std::thread thread;
};

HttpServer::HttpServer(const Router* router, const HttpServerOptions& options)
    : router_(router), options_(options) {
  if (options_.max_connections == 0) options_.max_connections = 1;
  slots_.reserve(options_.max_connections);
  for (size_t s = 0; s < options_.max_connections; ++s) {
    slots_.push_back(std::make_unique<Connection>());
    slots_.back()->slot = s;
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("HttpServer: bind failed: ") +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int err = errno;
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("HttpServer: listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, MemOrder::kRelease);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  SKETCHSAMPLE_METRIC_INC("service.server.starts");
}

void HttpServer::Stop() {
  if (!started_) return;
  stopping_.store(true, MemOrder::kRelease);
  // Shutting the listener down unblocks accept() in the acceptor thread.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (auto& slot : slots_) {
      const int fd = slot->fd.load(MemOrder::kAcquire);
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  // Joining outside the mutex: connection threads take it to release their
  // slot on exit.
  for (auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  started_ = false;
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(MemOrder::kRelaxed);
  stats.connections_rejected =
      connections_rejected_.load(MemOrder::kRelaxed);
  stats.admission_rejected = admission_rejected_.load(MemOrder::kRelaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(MemOrder::kRelaxed);
  stats.requests = requests_.load(MemOrder::kRelaxed);
  stats.parse_errors = parse_errors_.load(MemOrder::kRelaxed);
  return stats;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(MemOrder::kAcquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(MemOrder::kAcquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is gone; nothing sane to do but stop accepting
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetSocketTimeout(fd, SO_RCVTIMEO, options_.recv_timeout_ms);
    // Baseline send timeout so no write can ever block forever; per-response
    // writes re-derive it from the remaining deadline budget.
    SetSocketTimeout(fd, SO_SNDTIMEO,
                     options_.default_deadline_ms > 0
                         ? options_.default_deadline_ms
                         : options_.recv_timeout_ms);

    Connection* claimed = nullptr;
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      for (auto& slot : slots_) {
        if (slot->busy) continue;
        // The slot's previous thread (if any) has finished; reap it before
        // reuse.
        if (slot->thread.joinable()) slot->thread.join();
        slot->busy = true;
        slot->fd.store(fd, MemOrder::kRelease);
        claimed = slot.get();
        break;
      }
    }
    if (claimed == nullptr) {
      connections_rejected_.fetch_add(1, MemOrder::kRelaxed);
      SKETCHSAMPLE_METRIC_INC("service.server.rejected");
      HttpResponse response = ErrorResponse(503, "connection limit reached");
      response.keep_alive = false;
      // A full slot pool usually drains within a request's service time;
      // hint one second so well-behaved clients back off instead of
      // hammering the accept gate.
      response.retry_after_s = 1;
      const std::string bytes = response.Serialize();
      WriteAll(fd, bytes.data(), bytes.size());
      CloseFd(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, MemOrder::kRelaxed);
    SKETCHSAMPLE_METRIC_INC("service.server.connections");
    claimed->thread = std::thread([this, claimed] { ConnectionLoop(claimed); });
  }
}

void HttpServer::ConnectionLoop(Connection* connection) {
  const int fd = connection->fd.load(MemOrder::kAcquire);
  HttpRequestParser parser(options_.limits);
  char buffer[16384];
  bool open = true;
  // Read-phase deadline state: the clock starts when the first byte of a
  // request arrives and resets per request, so a slow-loris client — header
  // trickle or body trickle — can hold the slot for at most one budget.
  bool in_request = false;
  SteadyClock::time_point request_start{};
  const auto read_deadline = [&] {
    return request_start +
           std::chrono::milliseconds(options_.default_deadline_ms);
  };
  const auto send_timeout_408 = [&] {
    deadline_exceeded_.fetch_add(1, MemOrder::kRelaxed);
    SKETCHSAMPLE_METRIC_INC("service.deadline_exceeded");
    HttpResponse response =
        ErrorResponse(408, "request read deadline exceeded");
    response.keep_alive = false;
    const std::string bytes = response.Serialize();
    SetSocketTimeout(fd, SO_SNDTIMEO, 1000);
    WriteAll(fd, bytes.data(), bytes.size());
  };
  while (open && !stopping_.load(MemOrder::kAcquire)) {
    // Between requests the idle keep-alive timeout applies; mid-request the
    // remaining deadline budget governs every read.
    int wait_ms = options_.recv_timeout_ms;
    if (in_request && options_.default_deadline_ms > 0) {
      const int remaining = MsUntil(read_deadline(), SteadyClock::now());
      if (remaining == 0) {
        send_timeout_408();
        break;
      }
      wait_ms = wait_ms > 0 ? std::min(wait_ms, remaining) : remaining;
    }
    SetSocketTimeout(fd, SO_RCVTIMEO, wait_ms);
    const ssize_t r = ChaosRecv(fd, buffer, sizeof(buffer), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && in_request &&
          options_.default_deadline_ms > 0) {
        // recv timed out mid-request; if the budget survived (shorter
        // recv_timeout), keep waiting, otherwise tear the request down.
        if (SteadyClock::now() < read_deadline()) continue;
        send_timeout_408();
      }
      break;  // idle timeout or reset — close quietly
    }
    if (r == 0) break;  // peer closed
    if (!in_request) {
      in_request = true;
      request_start = SteadyClock::now();
    }
    parser.Feed(buffer, static_cast<size_t>(r));
    HttpRequest request;
    size_t processed = 0;
    while (open && parser.Next(&request)) {
      ++processed;
      requests_.fetch_add(1, MemOrder::kRelaxed);
      RequestContext context;
      context.reader_slot = connection->slot;
      // The request's budget runs from its first byte; X-Deadline-Ms lets a
      // client shrink or stretch it within the server's cap.
      if (options_.default_deadline_ms > 0) {
        uint64_t budget_ms = static_cast<uint64_t>(options_.default_deadline_ms);
        if (const auto it = request.headers.find("x-deadline-ms");
            it != request.headers.end()) {
          uint64_t requested = 0;
          if (ParseHeaderU64(it->second, &requested) && requested > 0) {
            budget_ms = std::min<uint64_t>(
                requested, static_cast<uint64_t>(options_.max_deadline_ms));
          }
        }
        context.deadline =
            request_start + std::chrono::milliseconds(budget_ms);
      }
      AdmissionController* admission = options_.admission;
      context.admission = admission;
      context.server.connections_rejected =
          connections_rejected_.load(MemOrder::kRelaxed);
      context.server.admission_rejected =
          admission_rejected_.load(MemOrder::kRelaxed);
      context.server.deadline_exceeded =
          deadline_exceeded_.load(MemOrder::kRelaxed);
      context.server.valid = true;

      // Admission gate at parse time: liveness endpoints always pass, the
      // rest pay the 429/503 + Retry-After toll when the controller sheds.
      const bool exempt =
          request.path == "/healthz" || request.path == "/stats";
      bool holding_slot = false;
      HttpResponse response;
      if (admission != nullptr && !exempt) {
        const AdmissionController::Decision decision = admission->Admit();
        if (!decision.admitted) {
          admission_rejected_.fetch_add(1, MemOrder::kRelaxed);
          SKETCHSAMPLE_METRIC_INC("service.admission.rejected");
          response = ErrorResponse(decision.status,
                                   decision.status == 429
                                       ? "admission control shed this request"
                                       : "service overloaded");
          response.retry_after_s = decision.retry_after_s;
        } else {
          holding_slot = true;
          SKETCHSAMPLE_METRIC_INC("service.admission.admitted");
        }
      }
      if (holding_slot || admission == nullptr || exempt) {
        context.admission_saturated =
            admission != nullptr && admission->saturated();
        response = router_->Dispatch(request, context);
      }
      if (holding_slot) admission->OnDone();
      response.keep_alive = response.keep_alive && request.keep_alive;
      // Write under the remaining budget: SO_SNDTIMEO makes a stalled
      // reader fail the write (EAGAIN) instead of wedging the slot.
      int send_ms = options_.recv_timeout_ms;
      if (context.HasDeadline()) {
        const int remaining = context.RemainingMs();
        send_ms = remaining > 0 ? remaining : 1;
      }
      SetSocketTimeout(fd, SO_SNDTIMEO, send_ms);
      const std::string bytes = response.Serialize();
      if (!WriteAll(fd, bytes.data(), bytes.size())) {
        open = false;
        if (context.DeadlineExpired()) {
          deadline_exceeded_.fetch_add(1, MemOrder::kRelaxed);
          SKETCHSAMPLE_METRIC_INC("service.deadline_exceeded");
        }
      }
      if (!response.keep_alive) open = false;
    }
    if (parser.error()) {
      parse_errors_.fetch_add(1, MemOrder::kRelaxed);
      HttpResponse response =
          ErrorResponse(parser.error_status(), parser.error_message());
      response.keep_alive = false;
      const std::string bytes = response.Serialize();
      WriteAll(fd, bytes.data(), bytes.size());
      break;
    }
    // Re-arm the read-phase clock: a fresh partial request (pipelined bytes
    // past the last complete one) gets a full budget from now.
    in_request = parser.buffered() > 0;
    if (in_request && processed > 0) request_start = SteadyClock::now();
  }
  CloseFd(fd);
  std::lock_guard<std::mutex> lock(slots_mutex_);
  connection->fd.store(-1, MemOrder::kRelease);
  connection->busy = false;
}

}  // namespace sketchsample
