#include "src/service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/util/metrics.h"

namespace sketchsample {

namespace {

// Writes the whole buffer, riding out EINTR and partial writes. False when
// the peer is gone.
bool WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

struct HttpServer::Connection {
  size_t slot = 0;
  StdAtomics::Atomic<int> fd{-1};
  bool busy = false;  // guarded by slots_mutex_
  std::thread thread;
};

HttpServer::HttpServer(const Router* router, const HttpServerOptions& options)
    : router_(router), options_(options) {
  if (options_.max_connections == 0) options_.max_connections = 1;
  slots_.reserve(options_.max_connections);
  for (size_t s = 0; s < options_.max_connections; ++s) {
    slots_.push_back(std::make_unique<Connection>());
    slots_.back()->slot = s;
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("HttpServer: bind failed: ") +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int err = errno;
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("HttpServer: listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, MemOrder::kRelease);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  SKETCHSAMPLE_METRIC_INC("service.server.starts");
}

void HttpServer::Stop() {
  if (!started_) return;
  stopping_.store(true, MemOrder::kRelease);
  // Shutting the listener down unblocks accept() in the acceptor thread.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (auto& slot : slots_) {
      const int fd = slot->fd.load(MemOrder::kAcquire);
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  // Joining outside the mutex: connection threads take it to release their
  // slot on exit.
  for (auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  started_ = false;
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(MemOrder::kRelaxed);
  stats.connections_rejected =
      connections_rejected_.load(MemOrder::kRelaxed);
  stats.requests = requests_.load(MemOrder::kRelaxed);
  stats.parse_errors = parse_errors_.load(MemOrder::kRelaxed);
  return stats;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(MemOrder::kAcquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(MemOrder::kAcquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is gone; nothing sane to do but stop accepting
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.recv_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.recv_timeout_ms / 1000;
      tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }

    Connection* claimed = nullptr;
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      for (auto& slot : slots_) {
        if (slot->busy) continue;
        // The slot's previous thread (if any) has finished; reap it before
        // reuse.
        if (slot->thread.joinable()) slot->thread.join();
        slot->busy = true;
        slot->fd.store(fd, MemOrder::kRelease);
        claimed = slot.get();
        break;
      }
    }
    if (claimed == nullptr) {
      connections_rejected_.fetch_add(1, MemOrder::kRelaxed);
      SKETCHSAMPLE_METRIC_INC("service.server.rejected");
      const std::string response =
          ErrorResponse(503, "connection limit reached").Serialize();
      WriteAll(fd, response.data(), response.size());
      CloseFd(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, MemOrder::kRelaxed);
    SKETCHSAMPLE_METRIC_INC("service.server.connections");
    claimed->thread = std::thread([this, claimed] { ConnectionLoop(claimed); });
  }
}

void HttpServer::ConnectionLoop(Connection* connection) {
  const int fd = connection->fd.load(MemOrder::kAcquire);
  HttpRequestParser parser(options_.limits);
  char buffer[16384];
  bool open = true;
  while (open && !stopping_.load(MemOrder::kAcquire)) {
    const ssize_t r = ::recv(fd, buffer, sizeof(buffer), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;  // timeout (idle keep-alive) or reset — close quietly
    }
    if (r == 0) break;  // peer closed
    parser.Feed(buffer, static_cast<size_t>(r));
    HttpRequest request;
    while (open && parser.Next(&request)) {
      requests_.fetch_add(1, MemOrder::kRelaxed);
      RequestContext context;
      context.reader_slot = connection->slot;
      HttpResponse response = router_->Dispatch(request, context);
      response.keep_alive = response.keep_alive && request.keep_alive;
      const std::string bytes = response.Serialize();
      if (!WriteAll(fd, bytes.data(), bytes.size())) open = false;
      if (!response.keep_alive) open = false;
    }
    if (parser.error()) {
      parse_errors_.fetch_add(1, MemOrder::kRelaxed);
      HttpResponse response =
          ErrorResponse(parser.error_status(), parser.error_message());
      response.keep_alive = false;
      const std::string bytes = response.Serialize();
      WriteAll(fd, bytes.data(), bytes.size());
      break;
    }
  }
  CloseFd(fd);
  std::lock_guard<std::mutex> lock(slots_mutex_);
  connection->fd.store(-1, MemOrder::kRelease);
  connection->busy = false;
}

}  // namespace sketchsample
