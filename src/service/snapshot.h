// Lock-free snapshot publication: the query side of SF-sketch's "fat
// ingest stage, slim query stage" split.
//
// The ingest engine (single writer) publishes immutable, fully-materialized
// snapshots; query handlers (many readers) borrow the current snapshot for
// the duration of one request without taking any lock. The registry is a
// single-slot hazard-pointer RCU cell:
//
//   * Readers are wait-free: load current, announce it in a per-reader
//     hazard slot, re-check current. If the re-check still matches, the
//     writer is guaranteed to see the announcement before it frees that
//     snapshot; if not, retry (bounded in practice by the publish rate,
//     which is phase-locked to thousands of ingested tuples per swap).
//   * The writer swaps in the new snapshot, retires the old one, and frees
//     any retired snapshot no hazard slot still names. Publication is
//     O(readers) and runs on the ingest thread at quiesce points — exactly
//     where the engine already pays a barrier.
//
// Chosen over std::atomic<std::shared_ptr> (libstdc++ routes it through a
// spinlock pool — readers would take a lock after all) and over a seqlock
// (retrying readers over a non-trivial sketch object is a data race by the
// memory model, and TSan rightly flags it). Readers never observe a torn
// snapshot: they only ever dereference a pointer that was fully constructed
// before the release-publish that made it visible.
#ifndef SKETCHSAMPLE_SERVICE_SNAPSHOT_H_
#define SKETCHSAMPLE_SERVICE_SNAPSHOT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace sketchsample {

/// Single-slot RCU cell. T must be immutable after publication. One writer
/// thread; up to `max_readers` concurrent reader threads, each using its own
/// slot index (the HTTP server hands every connection a distinct slot).
template <typename T>
class RcuCell {
 public:
  explicit RcuCell(size_t max_readers)
      : slots_(std::make_unique<Slot[]>(max_readers)),
        max_readers_(max_readers) {
    if (max_readers == 0) {
      throw std::invalid_argument("RcuCell needs at least one reader slot");
    }
  }

  ~RcuCell() {
    // Destruction requires quiescence (server stopped, ingest joined);
    // reclaim everything unconditionally.
    delete current_.exchange(nullptr, std::memory_order_acquire);
    for (const T* retired : retired_) delete retired;
  }

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  /// Borrowed reference to the current snapshot; releases the hazard slot
  /// on destruction. Holds no lock — copy out what you need and drop it
  /// promptly so the writer can reclaim.
  class ReadGuard {
   public:
    ReadGuard() = default;
    ReadGuard(std::atomic<const T*>* hazard, const T* ptr)
        : hazard_(hazard), ptr_(ptr) {}
    ReadGuard(ReadGuard&& other) noexcept
        : hazard_(other.hazard_), ptr_(other.ptr_) {
      other.hazard_ = nullptr;
      other.ptr_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&& other) noexcept {
      Release();
      hazard_ = other.hazard_;
      ptr_ = other.ptr_;
      other.hazard_ = nullptr;
      other.ptr_ = nullptr;
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { Release(); }

    const T* get() const { return ptr_; }
    const T& operator*() const { return *ptr_; }
    const T* operator->() const { return ptr_; }
    explicit operator bool() const { return ptr_ != nullptr; }

   private:
    void Release() {
      if (hazard_ != nullptr) {
        hazard_->store(nullptr, std::memory_order_release);
      }
    }

    std::atomic<const T*>* hazard_ = nullptr;
    const T* ptr_ = nullptr;
  };

  /// Wait-free borrow of the current snapshot from reader slot `reader`
  /// (must be < max_readers and not concurrently used by another thread).
  /// Returns an empty guard before the first Publish.
  ReadGuard Read(size_t reader) {
    if (reader >= max_readers_) {
      throw std::out_of_range("RcuCell reader slot out of range");
    }
    std::atomic<const T*>& hazard = slots_[reader].hazard;
    const T* ptr = current_.load(std::memory_order_acquire);
    while (true) {
      if (ptr == nullptr) return ReadGuard();
      // seq_cst on both the announcement and the re-check pairs with the
      // writer's seq_cst scan: either the writer sees our hazard, or we see
      // its newer pointer and retry.
      hazard.store(ptr, std::memory_order_seq_cst);
      const T* again = current_.load(std::memory_order_seq_cst);
      if (again == ptr) return ReadGuard(&hazard, ptr);
      ptr = again;
    }
  }

  /// Writer-only: swaps in `value`, retires the predecessor, reclaims every
  /// retired snapshot no reader still names.
  void Publish(std::unique_ptr<const T> value) {
    const T* next = value.release();
    // seq_cst: the swap must precede the hazard scan in the single total
    // order, or a reader could announce the old pointer after the scan
    // missed it (see file comment).
    const T* prev = current_.exchange(next, std::memory_order_seq_cst);
    if (prev != nullptr) retired_.push_back(prev);
    Reclaim();
    published_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Publications so far (any thread).
  uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }

  /// Retired-but-unreclaimed snapshots (writer thread only; tests).
  size_t retired_count() const { return retired_.size(); }

 private:
  struct alignas(64) Slot {
    std::atomic<const T*> hazard{nullptr};
  };

  void Reclaim() {
    size_t kept = 0;
    for (size_t i = 0; i < retired_.size(); ++i) {
      const T* candidate = retired_[i];
      bool hazardous = false;
      for (size_t r = 0; r < max_readers_; ++r) {
        if (slots_[r].hazard.load(std::memory_order_seq_cst) == candidate) {
          hazardous = true;
          break;
        }
      }
      if (hazardous) {
        retired_[kept++] = candidate;
      } else {
        delete candidate;
      }
    }
    retired_.resize(kept);
  }

  std::atomic<const T*> current_{nullptr};
  std::unique_ptr<Slot[]> slots_;
  size_t max_readers_;
  std::vector<const T*> retired_;  // writer-owned
  std::atomic<uint64_t> published_{0};
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_SNAPSHOT_H_
