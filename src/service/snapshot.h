// Lock-free snapshot publication: the query side of SF-sketch's "fat
// ingest stage, slim query stage" split.
//
// The ingest engine (single writer) publishes immutable, fully-materialized
// snapshots; query handlers (many readers) borrow the current snapshot for
// the duration of one request without taking any lock. The registry is a
// single-slot hazard-pointer RCU cell:
//
//   * Readers are wait-free: load current, announce it in a per-reader
//     hazard slot, re-check current. If the re-check still matches, the
//     writer is guaranteed to see the announcement before it frees that
//     snapshot; if not, retry (bounded in practice by the publish rate,
//     which is phase-locked to thousands of ingested tuples per swap).
//   * The writer swaps in the new snapshot, retires the old one, and frees
//     any retired snapshot no hazard slot still names. Publication is
//     O(readers) and runs on the ingest thread at quiesce points — exactly
//     where the engine already pays a barrier.
//
// Chosen over std::atomic<std::shared_ptr> (libstdc++ routes it through a
// spinlock pool — readers would take a lock after all) and over a seqlock
// (retrying readers over a non-trivial sketch object is a data race by the
// memory model, and TSan rightly flags it). Readers never observe a torn
// snapshot: they only ever dereference a pointer that was fully constructed
// before the release-publish that made it visible.
//
// The protocol is parameterized over an atomics policy
// (src/util/atomics_policy.h): production uses `StdAtomics` (identical
// codegen to the raw std::atomic version), the interleaving model checker
// uses `mc::McAtomics` to prove no reader ever dereferences a reclaimed
// snapshot and that reclamation completes at quiescence
// (tests/mc_spec_test.cc). The `Deleter` parameter exists for the same
// reason: the checker's spec substitutes a deleter that poisons a canary
// instead of freeing, so use-after-reclaim becomes an assertable value
// (or a detectable race) rather than undefined behavior.
#ifndef SKETCHSAMPLE_SERVICE_SNAPSHOT_H_
#define SKETCHSAMPLE_SERVICE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/util/atomics_policy.h"

namespace sketchsample {

/// Single-slot RCU cell. T must be immutable after publication. One writer
/// thread; up to `max_readers` concurrent reader threads, each using its own
/// slot index (the HTTP server hands every connection a distinct slot).
template <typename T, typename Policy = StdAtomics,
          typename Deleter = std::default_delete<const T>>
class RcuCell {
 public:
  using PtrAtomic = typename Policy::template Atomic<const T*>;

  explicit RcuCell(size_t max_readers, Deleter deleter = Deleter())
      : slots_(std::make_unique<Slot[]>(max_readers)),
        max_readers_(max_readers),
        deleter_(std::move(deleter)) {
    if (max_readers == 0) {
      throw std::invalid_argument("RcuCell needs at least one reader slot");
    }
  }

  ~RcuCell() {
    // Destruction requires quiescence (server stopped, ingest joined);
    // reclaim everything unconditionally.
    const T* last = current_.exchange(nullptr, MemOrder::kAcquire);
    if (last != nullptr) deleter_(last);
    for (const T* retired : retired_) deleter_(retired);
  }

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  /// Borrowed reference to the current snapshot; releases the hazard slot
  /// on destruction. Holds no lock — copy out what you need and drop it
  /// promptly so the writer can reclaim.
  class ReadGuard {
   public:
    ReadGuard() = default;
    ReadGuard(PtrAtomic* hazard, const T* ptr) : hazard_(hazard), ptr_(ptr) {}
    ReadGuard(ReadGuard&& other) noexcept
        : hazard_(other.hazard_), ptr_(other.ptr_) {
      other.hazard_ = nullptr;
      other.ptr_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&& other) noexcept {
      Release();
      hazard_ = other.hazard_;
      ptr_ = other.ptr_;
      other.hazard_ = nullptr;
      other.ptr_ = nullptr;
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { Release(); }

    const T* get() const { return ptr_; }
    const T& operator*() const { return *ptr_; }
    const T* operator->() const { return ptr_; }
    explicit operator bool() const { return ptr_ != nullptr; }

   private:
    void Release() {
      if (hazard_ != nullptr) {
        hazard_->store(nullptr, MemOrder::kRelease);
      }
    }

    PtrAtomic* hazard_ = nullptr;
    const T* ptr_ = nullptr;
  };

  /// Wait-free borrow of the current snapshot from reader slot `reader`
  /// (must be < max_readers and not concurrently used by another thread).
  /// Returns an empty guard before the first Publish.
  ReadGuard Read(size_t reader) {
    if (reader >= max_readers_) {
      throw std::out_of_range("RcuCell reader slot out of range");
    }
    PtrAtomic& hazard = slots_[reader].hazard;
    const T* ptr = current_.load(MemOrder::kAcquire);
    while (true) {
      if (ptr == nullptr) return ReadGuard();
      // seq_cst on both the announcement and the re-check pairs with the
      // writer's seq_cst scan: either the writer sees our hazard, or we see
      // its newer pointer and retry.
      hazard.store(ptr, MemOrder::kSeqCst);
      const T* again = current_.load(MemOrder::kSeqCst);
      if (again == ptr) return ReadGuard(&hazard, ptr);
      ptr = again;
    }
  }

  /// Writer-only: swaps in `value`, retires the predecessor, reclaims every
  /// retired snapshot no reader still names.
  void Publish(std::unique_ptr<const T, Deleter> value) {
    const T* next = value.release();
    // seq_cst: the swap must precede the hazard scan in the single total
    // order, or a reader could announce the old pointer after the scan
    // missed it (see file comment).
    const T* prev = current_.exchange(next, MemOrder::kSeqCst);
    if (prev != nullptr) retired_.push_back(prev);
    Reclaim();
    published_.fetch_add(1, MemOrder::kRelaxed);
  }

  /// Publications so far (any thread).
  uint64_t published() const { return published_.load(MemOrder::kRelaxed); }

  /// Retired-but-unreclaimed snapshots (writer thread only; tests).
  size_t retired_count() const { return retired_.size(); }

 private:
  struct alignas(64) Slot {
    PtrAtomic hazard{nullptr, "rcu.hazard"};
  };

  void Reclaim() {
    size_t kept = 0;
    for (size_t i = 0; i < retired_.size(); ++i) {
      const T* candidate = retired_[i];
      bool hazardous = false;
      for (size_t r = 0; r < max_readers_; ++r) {
        if (slots_[r].hazard.load(MemOrder::kSeqCst) == candidate) {
          hazardous = true;
          break;
        }
      }
      if (hazardous) {
        retired_[kept++] = candidate;
      } else {
        deleter_(candidate);
      }
    }
    retired_.resize(kept);
  }

  typename Policy::template Atomic<const T*> current_{nullptr, "rcu.current"};
  std::unique_ptr<Slot[]> slots_;
  size_t max_readers_;
  Deleter deleter_;
  std::vector<const T*> retired_;  // writer-owned
  typename Policy::template Atomic<uint64_t> published_{0, "rcu.published"};
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_SNAPSHOT_H_
