// Method+path request dispatch for the sketch service: exact-match routes
// only (the API has no path parameters), with correct 404/405 behavior.
#ifndef SKETCHSAMPLE_SERVICE_ROUTER_H_
#define SKETCHSAMPLE_SERVICE_ROUTER_H_

#include <chrono>
#include <climits>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/service/http.h"

namespace sketchsample {

class AdmissionController;

/// Server-side overload counters a /stats handler surfaces; copied into the
/// RequestContext per request by the HTTP server (absent when a handler
/// runs without one, e.g. offline or router-level tests).
struct ServerOverloadView {
  uint64_t connections_rejected = 0;  ///< accept-gate 503s (no free slot)
  uint64_t admission_rejected = 0;    ///< parse-time 429/503 admission rejects
  uint64_t deadline_exceeded = 0;     ///< read/write-phase deadline expiries
  bool valid = false;                 ///< true when filled by a server
};

/// Per-request server context. `reader_slot` is the connection's private
/// RcuCell reader index — handlers use it to borrow the current snapshot
/// without coordination. `deadline` is the request's wall-clock budget
/// (read + compute + write); handlers shed work that is already late
/// instead of burning it.
struct RequestContext {
  size_t reader_slot = 0;
  /// Absolute deadline; time_point::max() = none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// True while the admission controller is shedding or at capacity — the
  /// query-path degradation signal stamped into answers.
  bool admission_saturated = false;
  /// The server's admission controller (not owned; may be null).
  const AdmissionController* admission = nullptr;
  ServerOverloadView server;

  bool HasDeadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
  bool DeadlineExpired() const {
    return HasDeadline() && std::chrono::steady_clock::now() >= deadline;
  }
  /// Milliseconds left in the budget, clamped to >= 0 (INT_MAX = no
  /// deadline).
  int RemainingMs() const {
    if (!HasDeadline()) return INT_MAX;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return 0;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    return left > INT_MAX ? INT_MAX : static_cast<int>(left);
  }
};

/// One endpoint implementation. Handle runs on a connection thread and must
/// be safe to call concurrently with itself and with ingest.
class HttpHandler {
 public:
  virtual ~HttpHandler() = default;
  virtual HttpResponse Handle(const HttpRequest& request,
                              const RequestContext& context) = 0;
};

/// Route table; build once, then Dispatch is const and thread-safe.
class Router {
 public:
  /// Registers `handler` (not owned; must outlive the router) for exact
  /// `method` + `path`.
  void Add(const std::string& method, const std::string& path,
           HttpHandler* handler);

  /// Finds the route and runs the handler. Unknown path → 404; known path,
  /// wrong method → 405; a handler throwing → 500 with the exception
  /// message.
  HttpResponse Dispatch(const HttpRequest& request,
                        const RequestContext& context) const;

 private:
  struct Route {
    std::string method;
    std::string path;
    HttpHandler* handler;
  };
  std::vector<Route> routes_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_ROUTER_H_
