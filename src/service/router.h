// Method+path request dispatch for the sketch service: exact-match routes
// only (the API has no path parameters), with correct 404/405 behavior.
#ifndef SKETCHSAMPLE_SERVICE_ROUTER_H_
#define SKETCHSAMPLE_SERVICE_ROUTER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/service/http.h"

namespace sketchsample {

/// Per-request server context. `reader_slot` is the connection's private
/// RcuCell reader index — handlers use it to borrow the current snapshot
/// without coordination.
struct RequestContext {
  size_t reader_slot = 0;
};

/// One endpoint implementation. Handle runs on a connection thread and must
/// be safe to call concurrently with itself and with ingest.
class HttpHandler {
 public:
  virtual ~HttpHandler() = default;
  virtual HttpResponse Handle(const HttpRequest& request,
                              const RequestContext& context) = 0;
};

/// Route table; build once, then Dispatch is const and thread-safe.
class Router {
 public:
  /// Registers `handler` (not owned; must outlive the router) for exact
  /// `method` + `path`.
  void Add(const std::string& method, const std::string& path,
           HttpHandler* handler);

  /// Finds the route and runs the handler. Unknown path → 404; known path,
  /// wrong method → 405; a handler throwing → 500 with the exception
  /// message.
  HttpResponse Dispatch(const HttpRequest& request,
                        const RequestContext& context) const;

 private:
  struct Route {
    std::string method;
    std::string path;
    HttpHandler* handler;
  };
  std::vector<Route> routes_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_ROUTER_H_
