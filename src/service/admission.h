// Query-side admission control: the ShedController's AIMD discipline
// (src/stream/shed_controller.h) applied to HTTP requests instead of
// tuples.
//
// The paper's shedding principle — when the system cannot keep up, drop a
// deterministic fraction of the offered load instead of degrading every
// answer — holds for the query path exactly as it does for ingest. The
// controller watches the inflight-request depth (the queue signal the slot
// pool exposes for free), compares its per-window peak against a capacity
// budget, and retargets the admit rate the same way the shed controller
// retargets p: a proportional clamp down when the window saturated, an
// additive probe up when it ran under headroom, clamped to
// [min_admit, max_admit].
//
// Admission itself is positional, mirroring the Bernoulli shed sampler: the
// i-th offered request is admitted iff the MixSeed(seed, i) draw falls
// under the current admit rate, so a test replaying the same arrival order
// replays the exact admit/shed sequence. Rejections are typed: 429 for a
// rate shed (retryable soon), 503 for the hard inflight cap (back off
// harder); both carry a deterministic Retry-After hint that grows with the
// severity of the shed.
#ifndef SKETCHSAMPLE_SERVICE_ADMISSION_H_
#define SKETCHSAMPLE_SERVICE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace sketchsample {

/// Tuning knobs; defaults suit a small slot pool (see HttpServerOptions).
struct AdmissionOptions {
  /// Starting admit rate.
  double initial_admit = 1.0;
  /// Admit rate clamp. min_admit > 0 keeps probing alive under sustained
  /// overload (an admit rate of 0 could never observe recovery).
  double min_admit = 0.05;
  double max_admit = 1.0;
  /// Inflight-request budget — the capacity signal, playing the role of
  /// ShedControllerOptions::capacity_per_window.
  size_t capacity = 32;
  /// Hard inflight cap: at or beyond this depth requests are rejected with
  /// 503 regardless of the admit rate (0 = 2 × capacity).
  size_t hard_limit = 0;
  /// Controller window in offered requests.
  uint64_t window_requests = 128;
  /// Probe the admit rate upward only when the window's peak inflight depth
  /// stayed below headroom × capacity (the deadband absorbs arrival noise).
  double headroom = 0.9;
  /// Additive step for upward probing.
  double increase_step = 0.05;
  /// Positional admission randomness (the query-path analogue of the shed
  /// seed).
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Retry-After ceiling in seconds; the hint scales with (1 − admit rate).
  int retry_after_max_s = 8;
};

/// Deterministic AIMD admission controller. Thread-safe; decisions are a
/// pure function of (seed, arrival index, observed inflight depths), so a
/// single-threaded replay is bit-exact and a concurrent run is exact given
/// its arrival order.
class AdmissionController {
 public:
  struct Decision {
    bool admitted = true;
    int status = 0;         ///< 429 (rate shed) or 503 (hard cap) when rejected
    int retry_after_s = 0;  ///< Retry-After hint for rejected requests
  };

  /// Monotonic counters + current control state, for /stats.
  struct Stats {
    uint64_t offered = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;      ///< 429 rate sheds
    uint64_t rejected = 0;  ///< 503 hard-cap rejects
    uint64_t windows = 0;
    double admit_rate = 1.0;
    uint64_t inflight = 0;
  };

  explicit AdmissionController(const AdmissionOptions& options);

  /// Gate one request. An admitted request holds an inflight slot until the
  /// caller's matching OnDone().
  Decision Admit();

  /// Releases the inflight slot of an admitted request.
  void OnDone();

  /// True while the controller is actively shedding (admit rate below max)
  /// or running at/over its capacity budget — the query-path "degraded"
  /// signal.
  bool saturated() const;

  Stats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  // Window retarget; caller holds mutex_.
  void CloseWindow();
  int RetryAfterSeconds() const;  // caller holds mutex_

  AdmissionOptions options_;
  size_t hard_limit_;
  mutable std::mutex mutex_;
  double admit_rate_;
  size_t inflight_ = 0;
  uint64_t offered_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t windows_ = 0;
  uint64_t window_offered_ = 0;
  size_t window_peak_inflight_ = 0;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_ADMISSION_H_
