// Blocking-socket HTTP/1.1 server for the sketch service.
//
// Topology: one acceptor thread plus one thread per live connection, drawn
// from a fixed slot pool of `max_connections`. Each slot doubles as the
// connection's RcuCell reader index (src/service/snapshot.h), so a request
// handler can borrow the current snapshot wait-free with no coordination
// beyond "my slot is mine". Over-capacity connections get an immediate 503
// and close — the service degrades loudly instead of queueing invisibly.
//
// Keep-alive and pipelining are handled by the incremental parser
// (src/service/http.h); a parse error answers with the parser's status and
// closes (the stream cannot be re-synced). Stop() shuts down the listener
// and every live connection socket, then joins all threads — safe to call
// from any thread, idempotent.
//
// Overload resilience (docs/ROBUSTNESS.md "query-side shedding"): every
// request runs under a wall-clock deadline budget covering read, compute,
// and write — a slow-loris header or body trickle gets 408 when the budget
// expires, and the response write runs under SO_SNDTIMEO derived from the
// remaining budget so a stalled reader cannot hold a slot. An optional
// AdmissionController (src/service/admission.h) gates parsed requests with
// 429/503 + Retry-After before any handler work; /healthz and /stats are
// always admitted. All socket I/O routes through the chaos seams
// (src/service/chaos.h) so tests inject partial reads/writes, resets, and
// delays deterministically.
#ifndef SKETCHSAMPLE_SERVICE_SERVER_H_
#define SKETCHSAMPLE_SERVICE_SERVER_H_

#include "src/util/atomics_policy.h"
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/admission.h"
#include "src/service/http.h"
#include "src/service/router.h"

namespace sketchsample {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port from port()
  /// Live-connection cap == reader-slot count == max handler concurrency.
  size_t max_connections = 64;
  /// Per-read socket timeout; an idle keep-alive connection is closed after
  /// this long (0 = never).
  int recv_timeout_ms = 10000;
  /// Per-request wall-clock budget in ms, enforced across read, compute,
  /// and write: the clock starts at the first byte of a request, a header
  /// or body trickle past the budget answers 408 and closes, and the
  /// response write runs under SO_SNDTIMEO set from the remaining budget so
  /// a stalled reader cannot wedge the slot. 0 disables deadlines (writes
  /// then fall back to recv_timeout_ms as the send timeout).
  int default_deadline_ms = 5000;
  /// Cap for the client-requested X-Deadline-Ms header; a request may
  /// shrink or stretch its own budget within [1, max_deadline_ms].
  int max_deadline_ms = 30000;
  /// Admission controller gating requests at parse time (not owned; null =
  /// admit everything). /healthz and /stats are always admitted.
  AdmissionController* admission = nullptr;
  HttpLimits limits;
};

struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< 503s at the accept gate
  uint64_t admission_rejected = 0;    ///< parse-time 429/503 admission rejects
  uint64_t deadline_exceeded = 0;     ///< read/write-phase deadline expiries
  uint64_t requests = 0;
  uint64_t parse_errors = 0;
};

class HttpServer {
 public:
  /// `router` must outlive the server.
  HttpServer(const Router* router, const HttpServerOptions& options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor. Throws std::runtime_error on
  /// socket/bind failure.
  void Start();

  /// Stops accepting, shuts down live connections, joins every thread.
  void Stop();

  /// The bound port (valid after Start; resolves port 0).
  int port() const { return port_; }

  HttpServerStats stats() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(Connection* connection);

  const Router* router_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  StdAtomics::Atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread acceptor_;

  // Fixed connection slots; slot index == RcuCell reader slot.
  std::vector<std::unique_ptr<Connection>> slots_;
  std::mutex slots_mutex_;  // slot claim/release + thread reaping only

  StdAtomics::Atomic<uint64_t> connections_accepted_{0};
  StdAtomics::Atomic<uint64_t> connections_rejected_{0};
  StdAtomics::Atomic<uint64_t> admission_rejected_{0};
  StdAtomics::Atomic<uint64_t> deadline_exceeded_{0};
  StdAtomics::Atomic<uint64_t> requests_{0};
  StdAtomics::Atomic<uint64_t> parse_errors_{0};
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_SERVER_H_
