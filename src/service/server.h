// Blocking-socket HTTP/1.1 server for the sketch service.
//
// Topology: one acceptor thread plus one thread per live connection, drawn
// from a fixed slot pool of `max_connections`. Each slot doubles as the
// connection's RcuCell reader index (src/service/snapshot.h), so a request
// handler can borrow the current snapshot wait-free with no coordination
// beyond "my slot is mine". Over-capacity connections get an immediate 503
// and close — the service degrades loudly instead of queueing invisibly.
//
// Keep-alive and pipelining are handled by the incremental parser
// (src/service/http.h); a parse error answers with the parser's status and
// closes (the stream cannot be re-synced). Stop() shuts down the listener
// and every live connection socket, then joins all threads — safe to call
// from any thread, idempotent.
#ifndef SKETCHSAMPLE_SERVICE_SERVER_H_
#define SKETCHSAMPLE_SERVICE_SERVER_H_

#include "src/util/atomics_policy.h"
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/http.h"
#include "src/service/router.h"

namespace sketchsample {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port from port()
  /// Live-connection cap == reader-slot count == max handler concurrency.
  size_t max_connections = 64;
  /// Per-read socket timeout; an idle keep-alive connection is closed after
  /// this long (0 = never).
  int recv_timeout_ms = 10000;
  HttpLimits limits;
};

struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< 503s at the accept gate
  uint64_t requests = 0;
  uint64_t parse_errors = 0;
};

class HttpServer {
 public:
  /// `router` must outlive the server.
  HttpServer(const Router* router, const HttpServerOptions& options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor. Throws std::runtime_error on
  /// socket/bind failure.
  void Start();

  /// Stops accepting, shuts down live connections, joins every thread.
  void Stop();

  /// The bound port (valid after Start; resolves port 0).
  int port() const { return port_; }

  HttpServerStats stats() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(Connection* connection);

  const Router* router_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  StdAtomics::Atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread acceptor_;

  // Fixed connection slots; slot index == RcuCell reader slot.
  std::vector<std::unique_ptr<Connection>> slots_;
  std::mutex slots_mutex_;  // slot claim/release + thread reaping only

  StdAtomics::Atomic<uint64_t> connections_accepted_{0};
  StdAtomics::Atomic<uint64_t> connections_rejected_{0};
  StdAtomics::Atomic<uint64_t> requests_{0};
  StdAtomics::Atomic<uint64_t> parse_errors_{0};
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_SERVER_H_
